(* Tests for the constant folder: behaviour preservation (including traps
   and evaluation order) and actual simplification. *)

module Fold = Minic.Fold

let run_src src =
  Vm.Machine.run ~fuel:5_000_000 (Vm.Compile.compile_source src)

let run_folded src =
  let ast = Minic.Frontend.load src in
  let folded = Fold.program ast in
  Minic.Typecheck.check folded;
  Vm.Machine.run ~fuel:5_000_000 (Vm.Compile.compile folded)

let check_same name src =
  let a = run_src src and b = run_folded src in
  Alcotest.(check int) (name ^ ": exit") a.Vm.Machine.exit_value
    b.Vm.Machine.exit_value;
  Alcotest.(check (list int)) (name ^ ": output") a.Vm.Machine.output
    b.Vm.Machine.output

let test_arith_folds () =
  let ast = Minic.Frontend.load "int main() { return (2 + 3) * (10 - 6); }" in
  let folded, n = Fold.stats ast in
  Alcotest.(check bool) "some folds" true (n >= 2);
  (* the body should now return a literal *)
  let f = List.find (fun (f : Minic.Ast.func) -> f.fname = "main") folded.funcs in
  match (List.hd f.fbody).sdesc with
  | Minic.Ast.Return (Some { edesc = Minic.Ast.IntLit 20; _ }) -> ()
  | _ -> Alcotest.fail "expected literal 20"

let test_behaviour_preserved () =
  check_same "arith" "int main() { print(2 * 3 + 4 / 2); return 1 << 4; }";
  check_same "identities"
    "int g = 7; int main() { return (g + 0) * 1 + (0 + g) - 0; }";
  check_same "const if"
    "int main() { if (1) print(10); else print(20); if (0) print(30); return 0; }";
  check_same "const while" "int g; int main() { while (0) { g = 9; } return g; }";
  check_same "const do-while"
    "int g; int main() { do { g += 5; } while (0); return g; }";
  check_same "const for"
    "int g; int main() { for (g = 3; 0; g++) { g = 100; } return g; }";
  check_same "shortcut and"
    "int g; int f() { g = 1; return 1; } int main() { int r = 0 && f(); print(g); return r; }";
  check_same "shortcut and true"
    "int g; int f() { g = 1; return 7; } int main() { int r = 1 && f(); print(g); return r; }";
  check_same "shortcut or"
    "int g; int f() { g = 1; return 0; } int main() { int r = 1 || f(); print(g); return r; }";
  check_same "shortcut or false"
    "int g; int f() { g = 1; return 2; } int main() { int r = 0 || f(); print(g); return r; }"

let test_trap_preserved () =
  (* A literal division by zero must still trap after folding. *)
  let src = "int main() { return 1 / 0; }" in
  (match run_src src with
  | exception Vm.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "original should trap");
  (match run_folded src with
  | exception Vm.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "folded should still trap");
  (* ... but a trap behind a dead short-circuit stays dead. *)
  check_same "dead trap" "int main() { int r = 0 && (1 / 0); return r; }"

let test_dead_branch_constructs_disappear () =
  let src =
    {|int g;
      int main() {
        if (0) { for (int i = 0; i < 10; i++) g += i; }
        if (1) { g = 5; } else { while (g < 100) g++; }
        return g;
      }|}
  in
  let plain = Vm.Compile.compile_source src in
  let folded = Vm.Compile.compile (Fold.program (Minic.Frontend.load src)) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer constructs (%d -> %d)"
       (Array.length plain.Vm.Program.constructs)
       (Array.length folded.Vm.Program.constructs))
    true
    (Array.length folded.Vm.Program.constructs
    < Array.length plain.Vm.Program.constructs)

let test_folded_programs_verify () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"folded generated programs verify + behave" ~count:50
       Testgen.arbitrary_program (fun p ->
         let folded = Fold.program p in
         (match Minic.Typecheck.check_result folded with
         | Ok () -> ()
         | Error m -> QCheck.Test.fail_reportf "folded ill-typed: %s" m);
         let c1 = Vm.Compile.compile p in
         let c2 = Vm.Compile.compile folded in
         (match Vm.Verify.verify c2 with
         | [] -> ()
         | e :: _ ->
             QCheck.Test.fail_reportf "folded fails verify: %s"
               e.Vm.Verify.message);
         match Vm.Machine.run ~fuel:3_000_000 c1 with
         | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
         | r1 -> (
             match Vm.Machine.run ~fuel:3_000_000 c2 with
             | exception Vm.Machine.Trap (m, pc) ->
                 QCheck.Test.fail_reportf "folded trapped at %d: %s" pc m
             | r2 ->
                 r1.Vm.Machine.exit_value = r2.Vm.Machine.exit_value
                 && r1.Vm.Machine.output = r2.Vm.Machine.output)))

let test_fold_shrinks_generated () =
  (* On literal-rich random programs the folder usually finds something. *)
  let total = ref 0 in
  let gen = QCheck.Gen.generate ~n:30 Testgen.gen_program in
  List.iter
    (fun p ->
      let _, n = Fold.stats p in
      total := !total + n)
    gen;
  Alcotest.(check bool)
    (Printf.sprintf "folds found across samples (%d)" !total)
    true (!total > 10)

let suite =
  [
    ("arith folds", `Quick, test_arith_folds);
    ("behaviour preserved", `Quick, test_behaviour_preserved);
    ("trap preserved", `Quick, test_trap_preserved);
    ("dead branches drop constructs", `Quick, test_dead_branch_constructs_disappear);
    ("folded programs verify (qcheck)", `Slow, test_folded_programs_verify);
    ("fold shrinks generated", `Quick, test_fold_shrinks_generated);
  ]
