(* Tests for the whole-trace recorder and offline profiling, including the
   paper's §V memory argument (online index tree vs whole-trace cost). *)

module Trace = Vm.Trace
module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile

let sample =
  {|int g;
    int acc;
    int out[16];
    int work(int i) {
      int s = acc;
      for (int k = 0; k < 15; k++) s += (i * k) & 7;
      acc = s & 1023;
      out[i & 15] = s;
      return s;
    }
    int main() {
      for (int i = 0; i < 20; i++) g += work(i);
      return g & 255;
    }|}

let test_record_replay_counts () =
  let prog = Vm.Compile.compile_source sample in
  let t, res = Trace.record ~trace_locals:false prog in
  Alcotest.(check bool) "events recorded" true (Trace.events t > 1000);
  Alcotest.(check int) "result kept" res.Vm.Machine.instructions
    (Trace.result t).Vm.Machine.instructions;
  (* replay produces the same event multiset through counting hooks *)
  let instrs = ref 0 and reads = ref 0 and writes = ref 0 in
  let calls = ref 0 and rets = ref 0 and branches = ref 0 and rel = ref 0 in
  Trace.replay t
    {
      Vm.Hooks.on_instr = (fun ~pc:_ -> incr instrs);
      on_read = (fun ~pc:_ ~addr:_ -> incr reads);
      on_write = (fun ~pc:_ ~addr:_ -> incr writes);
      on_branch = (fun ~pc:_ ~kind:_ ~cid:_ ~taken:_ -> incr branches);
      on_call = (fun ~pc:_ ~fid:_ -> incr calls);
      on_ret = (fun ~pc:_ ~fid:_ -> incr rets);
      on_frame_release = (fun ~base:_ ~size:_ -> incr rel);
    };
  Alcotest.(check int) "one instr event per instruction"
    res.Vm.Machine.instructions !instrs;
  Alcotest.(check int) "calls = rets" !calls !rets;
  Alcotest.(check int) "rets = releases" !rets !rel;
  Alcotest.(check int) "total matches"
    (Trace.events t)
    (!instrs + !reads + !writes + !branches + !calls + !rets + !rel)

(* The headline differential: offline profiling from the trace produces
   the same profile as online profiling. *)
let test_offline_equals_online () =
  let prog = Vm.Compile.compile_source sample in
  let online = Profiler.run ~fuel:5_000_000 prog in
  let trace, _ = Trace.record ~trace_locals:false ~fuel:5_000_000 prog in
  let offline = Profiler.run_trace trace prog in
  Alcotest.(check int) "same instructions"
    online.Profiler.stats.Profiler.instructions
    offline.Profiler.stats.Profiler.instructions;
  Alcotest.(check int) "same dynamic constructs"
    online.Profiler.stats.Profiler.dynamic_constructs
    offline.Profiler.stats.Profiler.dynamic_constructs;
  Alcotest.(check int) "same dependence events"
    online.Profiler.stats.Profiler.deps_detected
    offline.Profiler.stats.Profiler.deps_detected;
  Alcotest.(check string) "identical report"
    (Alchemist.Report.render online.Profiler.profile)
    (Alchemist.Report.render offline.Profiler.profile);
  (* and identical serialized profiles *)
  Alcotest.(check string) "identical serialization"
    (Alchemist.Profile_io.to_string online.Profiler.profile)
    (Alchemist.Profile_io.to_string offline.Profiler.profile)

let test_offline_equals_online_random () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"offline replay = online profile" ~count:25
       Testgen.arbitrary_program (fun p ->
         let prog = Vm.Compile.compile p in
         match Profiler.run ~fuel:2_000_000 prog with
         | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
         | online ->
             let trace, _ =
               Trace.record ~trace_locals:false ~fuel:2_000_000 prog
             in
             let offline = Profiler.run_trace trace prog in
             Alchemist.Profile_io.to_string online.Profiler.profile
             = Alchemist.Profile_io.to_string offline.Profiler.profile))

(* The §V memory argument: the whole trace grows linearly with the run,
   the online profiler's pool does not. *)
let test_trace_grows_pool_does_not () =
  let prog_of n =
    Vm.Compile.compile_source
      (Printf.sprintf
         "int g; int main() { for (int i = 0; i < %d; i++) g += i & 7; return g; }"
         n)
  in
  let words n = Trace.words (fst (Trace.record (prog_of n))) in
  let pool n =
    (Profiler.run ~pool_capacity:64 (prog_of n)).Profiler.stats
      .Profiler.pool_allocated
  in
  let w1 = words 500 and w2 = words 5_000 in
  Alcotest.(check bool)
    (Printf.sprintf "trace grows ~linearly (%d -> %d)" w1 w2)
    true
    (w2 > 8 * w1);
  let p1 = pool 500 and p2 = pool 5_000 in
  Alcotest.(check bool)
    (Printf.sprintf "pool stays bounded (%d -> %d)" p1 p2)
    true
    (p2 <= p1 + 8)

let suite =
  [
    ("record/replay counts", `Quick, test_record_replay_counts);
    ("offline = online", `Quick, test_offline_equals_online);
    ("offline = online (qcheck)", `Slow, test_offline_equals_online_random);
    ("trace grows, pool bounded", `Quick, test_trace_grows_pool_does_not);
  ]
