(* Tests for the bytecode compiler and the interpreter. *)

module Machine = Vm.Machine
module Compile = Vm.Compile
module Program = Vm.Program

let run src =
  let prog = Compile.compile_source src in
  Machine.run ~fuel:50_000_000 prog

let check_exit name src expected =
  Alcotest.(check int) name expected (run src).Machine.exit_value

let check_output name src expected =
  Alcotest.(check (list int)) name expected (run src).Machine.output

(* --- arithmetic and expressions ----------------------------------------- *)

let test_arith () =
  check_exit "add" "int main() { return 1 + 2; }" 3;
  check_exit "precedence" "int main() { return 2 + 3 * 4; }" 14;
  check_exit "sub assoc" "int main() { return 10 - 4 - 3; }" 3;
  check_exit "div" "int main() { return 17 / 5; }" 3;
  check_exit "mod" "int main() { return 17 % 5; }" 2;
  check_exit "neg" "int main() { return -(3 - 5); }" 2;
  check_exit "shifts" "int main() { return (1 << 10) >> 3; }" 128;
  check_exit "bitops" "int main() { return (12 & 10) | (1 ^ 3); }" 10;
  check_exit "bitnot" "int main() { return ~0; }" (-1);
  check_exit "relational" "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }" 4

let test_logical () =
  check_exit "and" "int main() { return 1 && 2; }" 1;
  check_exit "and zero" "int main() { return 1 && 0; }" 0;
  check_exit "or" "int main() { return 0 || 3; }" 1;
  check_exit "not" "int main() { return !0 + !5; }" 1;
  (* Short-circuit: the second operand must not run. *)
  check_output "sc and"
    "int g; int f() { g = 1; return 1; } int main() { 0 && f(); print(g); return 0; }"
    [ 0 ];
  check_output "sc or"
    "int g; int f() { g = 1; return 1; } int main() { 1 || f(); print(g); return 0; }"
    [ 0 ]

(* --- control flow -------------------------------------------------------- *)

let test_if () =
  check_exit "then" "int main() { if (1) return 10; return 20; }" 10;
  check_exit "else" "int main() { if (0) return 10; else return 20; return 30; }" 20;
  check_exit "nested"
    "int main() { int x = 5; if (x > 3) { if (x > 4) return 1; return 2; } return 3; }"
    1

let test_loops () =
  check_exit "while" "int main() { int s = 0; int i = 0; while (i < 10) { s += i; i++; } return s; }" 45;
  check_exit "for" "int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }" 45;
  check_exit "do-while" "int main() { int i = 0; do { i++; } while (i < 5); return i; }" 5;
  check_exit "do-while runs once" "int main() { int i = 9; do { i++; } while (0); return i; }" 10;
  check_exit "zero-trip while" "int main() { int i = 0; while (0) i = 9; return i; }" 0;
  check_exit "break" "int main() { int i = 0; while (1) { if (i == 7) break; i++; } return i; }" 7;
  check_exit "continue"
    "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }"
    20;
  check_exit "nested break"
    "int main() { int c = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 10; j++) { if (j == 2) break; c++; } } return c; }"
    6

(* Mini-C has no forward declarations; mutual recursion works because all
   functions are in scope regardless of definition order. *)
let test_functions () =
  check_exit "call" "int add(int a, int b) { return a + b; } int main() { return add(40, 2); }" 42;
  check_exit "recursion"
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(12); }"
    144;
  check_exit "mutual recursion"
    {| int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
       int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
       int main() { return is_even(10) + is_odd(7); } |}
    2;
  check_exit "void function"
    "int g; void set(int v) { g = v; } int main() { set(9); return g; }" 9;
  check_exit "fall-off returns 0" "int f() { } int main() { return f() + 5; }" 5

let test_arrays () =
  check_exit "global array"
    "int a[10]; int main() { for (int i = 0; i < 10; i++) a[i] = i * i; return a[7]; }"
    49;
  check_exit "local array"
    "int main() { int a[5]; a[0] = 3; a[4] = 4; return a[0] + a[4]; }" 7;
  check_exit "array param (by reference)"
    {| void fill(int a[], int n) { for (int i = 0; i < n; i++) a[i] = i + 1; }
       int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }
       int main() { int b[6]; fill(b, 6); return sum(b, 6); } |}
    21;
  check_exit "global array by reference"
    {| int buf[4];
       void bump(int a[]) { a[2] += 5; }
       int main() { buf[2] = 1; bump(buf); return buf[2]; } |}
    6;
  check_exit "op-assign on element"
    "int a[3]; int main() { a[1] = 10; a[1] *= 3; a[1]++; return a[1]; }" 31;
  check_exit "zero-initialized locals" "int main() { int x; int a[4]; return x + a[3]; }" 0

let test_globals () =
  check_exit "init value" "int g = 41; int main() { return g + 1; }" 42;
  check_exit "default zero" "int g; int main() { return g; }" 0;
  check_exit "shared state"
    "int c; void inc() { c++; } int main() { inc(); inc(); inc(); return c; }" 3

let test_print () =
  check_output "prints in order"
    "int main() { for (int i = 0; i < 3; i++) print(i * 10); return 0; }"
    [ 0; 10; 20 ]

(* --- traps --------------------------------------------------------------- *)

let expect_trap name src =
  match run src with
  | exception Machine.Trap _ -> ()
  | _ -> Alcotest.failf "%s: expected a trap" name

let test_traps () =
  expect_trap "div by zero" "int main() { int z = 0; return 1 / z; }";
  expect_trap "mod by zero" "int main() { int z = 0; return 1 % z; }";
  expect_trap "index oob high" "int a[3]; int main() { return a[3]; }";
  expect_trap "index oob low" "int a[3]; int main() { int i = -1; return a[i]; }";
  expect_trap "stack overflow" "int f(int n) { return f(n + 1); } int main() { return f(0); }";
  expect_trap "out of fuel" "int main() { while (1) { } return 0; }"

(* --- differential: hooked run must not change semantics ------------------ *)

let test_hooked_equivalence () =
  let srcs =
    [
      "int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }";
      {| int a[32];
         int f(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) { if (a[i] % 2) s += a[i]; else s -= 1; } return s; }
         int main() { for (int i = 0; i < 32; i++) a[i] = i * 7 % 13; print(f(a, 32)); return f(a, 16); } |};
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(15); }";
    ]
  in
  List.iter
    (fun src ->
      let prog = Compile.compile_source src in
      let r1 = Machine.run ~fuel:10_000_000 prog in
      let events = ref 0 in
      let hooks =
        {
          Vm.Hooks.noop with
          on_instr = (fun ~pc:_ -> incr events);
          on_read = (fun ~pc:_ ~addr:_ -> incr events);
          on_write = (fun ~pc:_ ~addr:_ -> incr events);
        }
      in
      let r2 = Machine.run_hooked ~fuel:10_000_000 hooks prog in
      Alcotest.(check int) "exit" r1.Machine.exit_value r2.Machine.exit_value;
      Alcotest.(check (list int)) "output" r1.Machine.output r2.Machine.output;
      Alcotest.(check int) "instructions" r1.Machine.instructions r2.Machine.instructions;
      Alcotest.(check bool) "events fired" true (!events > r1.Machine.instructions))
    srcs

(* --- event stream sanity -------------------------------------------------- *)

let test_event_counts () =
  (* Each loop iteration: i read for cond, body write g, i update r/w.
     Just check reads/writes are plausible and reads >= writes. *)
  let src = "int g; int main() { for (int i = 0; i < 50; i++) g += i; return g; }" in
  let prog = Compile.compile_source src in
  let reads = ref 0 and writes = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_read = (fun ~pc:_ ~addr:_ -> incr reads);
      on_write = (fun ~pc:_ ~addr:_ -> incr writes);
    }
  in
  ignore (Machine.run_hooked hooks prog);
  Alcotest.(check bool) "reads > 100" true (!reads > 100);
  Alcotest.(check bool) "writes > 50" true (!writes > 50);
  Alcotest.(check bool) "reads >= writes" true (!reads >= !writes)

let test_branch_events () =
  let src = "int main() { int s = 0; for (int i = 0; i < 5; i++) { if (i == 2) s++; } return s; }" in
  let prog = Compile.compile_source src in
  let loop_evals = ref 0 and loop_exits = ref 0 and if_evals = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_branch =
        (fun ~pc:_ ~kind ~cid:_ ~taken ->
          match kind with
          | Vm.Instr.BrLoop ->
              incr loop_evals;
              if taken then incr loop_exits
          | Vm.Instr.BrIf -> incr if_evals
          | Vm.Instr.BrSc -> ());
    }
  in
  ignore (Machine.run_hooked hooks prog);
  Alcotest.(check int) "loop predicate evals" 6 !loop_evals;
  Alcotest.(check int) "loop exits" 1 !loop_exits;
  Alcotest.(check int) "if predicate evals" 5 !if_evals

let test_call_events () =
  let src = "int f(int x) { return x + 1; } int main() { return f(f(f(0))); }" in
  let prog = Compile.compile_source src in
  let calls = ref [] and rets = ref 0 and releases = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_call = (fun ~pc:_ ~fid -> calls := fid :: !calls);
      on_ret = (fun ~pc:_ ~fid:_ -> incr rets);
      on_frame_release = (fun ~base:_ ~size:_ -> incr releases);
    }
  in
  let r = Machine.run_hooked hooks prog in
  Alcotest.(check int) "exit" 3 r.Machine.exit_value;
  Alcotest.(check int) "calls (3 f + 1 main)" 4 (List.length !calls);
  Alcotest.(check int) "rets" 4 !rets;
  Alcotest.(check int) "frame releases" 4 !releases

(* --- frame address freshness ---------------------------------------------- *)

let test_frame_freshness () =
  (* Two sibling calls at the same depth share stack addresses, but the
     VM reports a release between them, allowing shadow cleanup. Verify the
     second frame's base equals the first's (reuse), and that release events
     cover it. *)
  let src = "int f() { int x = 1; return x; } int main() { f(); return f(); }" in
  let prog = Compile.compile_source src in
  let bases = ref [] and released = ref [] in
  let hooks =
    {
      Vm.Hooks.noop with
      on_write = (fun ~pc:_ ~addr -> bases := addr :: !bases);
      on_frame_release = (fun ~base ~size -> released := (base, size) :: !released);
    }
  in
  ignore (Machine.run_hooked hooks prog);
  Alcotest.(check int) "three releases" 3 (List.length !released)

let test_disasm_smoke () =
  let prog = Compile.compile_source "int main() { if (1) return 2; return 3; }" in
  let text = Vm.Disasm.to_string prog in
  Alcotest.(check bool) "mentions main" true
    (Testutil.contains text "function main")

let suite =
  [
    ("arith", `Quick, test_arith);
    ("logical", `Quick, test_logical);
    ("if", `Quick, test_if);
    ("loops", `Quick, test_loops);
    ("functions", `Quick, test_functions);
    ("arrays", `Quick, test_arrays);
    ("globals", `Quick, test_globals);
    ("print", `Quick, test_print);
    ("traps", `Quick, test_traps);
    ("hooked equivalence", `Quick, test_hooked_equivalence);
    ("event counts", `Quick, test_event_counts);
    ("branch events", `Quick, test_branch_events);
    ("call events", `Quick, test_call_events);
    ("frame freshness", `Quick, test_frame_freshness);
    ("disasm smoke", `Quick, test_disasm_smoke);
  ]
