(* A QCheck generator of random, well-typed, terminating Mini-C programs.

   Termination by construction: all loops are [for] loops with constant
   trip counts over fresh counters (optionally exited early by break /
   skipped by continue), and the call graph is a DAG (main -> f0 -> f1 ->
   f2). Runtime traps are avoided by construction too: divisions and
   modulos use non-zero constants, shifts use small constants, and array
   indices are masked. *)

open Minic.Ast
module Gen = QCheck.Gen

let loc = Minic.Srcloc.dummy
let e d = { edesc = d; eloc = loc }
let s d = { sdesc = d; sloc = loc }

type genv = {
  scalars : string list;  (** in-scope scalar names (locals + globals) *)
  arrays : string list;  (** in-scope array names *)
  callees : string list;  (** int functions this function may call *)
  mutable fresh : int;
}

let fresh env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "%s%d" prefix env.fresh

let safe_binops = [ Add; Sub; Mul; BitAnd; BitOr; BitXor; Lt; Le; Gt; Ge; Eq; Ne ]

let rec gen_expr env depth : expr Gen.t =
  let open Gen in
  let leaf =
    frequency
      [
        (3, map (fun n -> e (IntLit n)) (int_range (-20) 40));
        ( (if env.scalars = [] then 0 else 4),
          map (fun v -> e (Var v)) (oneofl env.scalars) );
        ( (if env.arrays = [] then 0 else 2),
          oneofl env.arrays >>= fun a ->
          map
            (fun ix ->
              e (Index (a, e (Binop (BitAnd, ix, e (IntLit 15))))))
            (if depth > 0 then gen_expr env (depth - 1)
             else map (fun n -> e (IntLit n)) (int_range 0 15)) );
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 4,
          oneofl safe_binops >>= fun op ->
          gen_expr env (depth - 1) >>= fun a ->
          map (fun b -> e (Binop (op, a, b))) (gen_expr env (depth - 1)) );
        ( 1,
          (* safe division / modulo / shift by constants *)
          oneofl [ `Div; `Mod; `Shl; `Shr ] >>= fun which ->
          gen_expr env (depth - 1) >>= fun a ->
          map
            (fun k ->
              match which with
              | `Div -> e (Binop (Div, a, e (IntLit (k + 1))))
              | `Mod -> e (Binop (Mod, a, e (IntLit (k + 2))))
              | `Shl -> e (Binop (Shl, e (Binop (BitAnd, a, e (IntLit 1023))), e (IntLit (k mod 5))))
              | `Shr -> e (Binop (Shr, a, e (IntLit (k mod 5)))))
            (int_range 0 6) );
        ( 1,
          oneofl [ Neg; LogNot; BitNot ] >>= fun op ->
          map (fun a -> e (Unop (op, a))) (gen_expr env (depth - 1)) );
        ( 1,
          oneofl [ LogAnd; LogOr ] >>= fun op ->
          gen_expr env (depth - 1) >>= fun a ->
          map (fun b -> e (Binop (op, a, b))) (gen_expr env (depth - 1)) );
        ( (if env.callees = [] then 0 else 1),
          map (fun f -> e (Call (f, [ e (IntLit 1) ]))) (oneofl env.callees) );
      ]

let gen_lvalue env : (lvalue * bool) Gen.t =
  (* bool: lvalue is an array slot (needs masked index) *)
  let open Gen in
  frequency
    [
      ( (if env.scalars = [] then 0 else 3),
        map (fun v -> (LVar (v, loc), false)) (oneofl env.scalars) );
      ( (if env.arrays = [] then 0 else 2),
        oneofl env.arrays >>= fun a ->
        map
          (fun ix ->
            (LIndex (a, e (Binop (BitAnd, ix, e (IntLit 15))), loc), true))
          (gen_expr env 1) );
    ]

let rec gen_stmt env ~in_loop ~depth : stmt Gen.t =
  let open Gen in
  let simple =
    frequency
      [
        ( 4,
          gen_lvalue env >>= fun (lv, _) ->
          map (fun ex -> s (Assign (lv, ex))) (gen_expr env 2) );
        ( 2,
          gen_lvalue env >>= fun (lv, _) ->
          oneofl [ Add; Sub; BitXor; BitOr ] >>= fun op ->
          map (fun ex -> s (OpAssign (op, lv, ex))) (gen_expr env 1) );
        (1, map (fun ex -> s (Print ex)) (gen_expr env 1));
        ( (if env.callees = [] then 0 else 1),
          map
            (fun f -> s (ExprStmt (e (Call (f, [ e (IntLit 2) ])))))
            (oneofl env.callees) );
      ]
  in
  if depth = 0 then simple
  else
    frequency
      [
        (4, simple);
        ( 2,
          (* if / if-else *)
          gen_expr env 2 >>= fun cond ->
          gen_block env ~in_loop ~depth:(depth - 1) ~len:2 >>= fun then_ ->
          frequency
            [
              (1, return (s (If (cond, s (Block then_), None))));
              ( 1,
                map
                  (fun else_ -> s (If (cond, s (Block then_), Some (s (Block else_)))))
                  (gen_block env ~in_loop ~depth:(depth - 1) ~len:2) );
            ] );
        ( 2,
          (* bounded for loop with a fresh counter *)
          int_range 0 6 >>= fun trips ->
          let i = fresh env "i" in
          let env' = { env with scalars = i :: env.scalars } in
          gen_block env' ~in_loop:true ~depth:(depth - 1) ~len:3 >>= fun body ->
          (* occasionally add break/continue guards *)
          frequency
            [
              (3, return body);
              ( 1,
                return
                  (s (If (e (Binop (Eq, e (Var i), e (IntLit 3))), s Break, None))
                  :: body) );
              ( 1,
                return
                  (s
                     (If
                        ( e (Binop (Eq, e (Var i), e (IntLit 2))),
                          s Continue,
                          None ))
                  :: body) );
            ]
          >>= fun body ->
          return
            (s
               (For
                  ( Some (s (DeclScalar (i, Some (e (IntLit 0))))),
                    Some (e (Binop (Lt, e (Var i), e (IntLit trips)))),
                    Some (s (OpAssign (Add, LVar (i, loc), e (IntLit 1)))),
                    s (Block body) ))) );
        ( 1,
          (* local declaration + use *)
          let x = fresh env "x" in
          gen_expr env 2 >>= fun init ->
          let env' = { env with scalars = x :: env.scalars } in
          map
            (fun rest -> s (Block (s (DeclScalar (x, Some init)) :: rest)))
            (gen_block env' ~in_loop ~depth:(depth - 1) ~len:2) );
      ]
  |> fun g ->
  ignore in_loop;
  g

and gen_block env ~in_loop ~depth ~len : stmt list Gen.t =
  let open Gen in
  int_range 1 len >>= fun n ->
  let rec go k acc =
    if k = 0 then return (List.rev acc)
    else gen_stmt env ~in_loop ~depth >>= fun st -> go (k - 1) (st :: acc)
  in
  go n []

let gen_func ~name ~callees ~globals ~garrays : func Gen.t =
  let open Gen in
  let params = [ PScalar "p" ] in
  let env =
    { scalars = "p" :: globals; arrays = garrays; callees; fresh = 0 }
  in
  gen_block env ~in_loop:false ~depth:3 ~len:4 >>= fun body ->
  gen_expr env 2 >>= fun ret ->
  return
    {
      fname = name;
      fret = RetInt;
      fparams = params;
      fbody = body @ [ s (Return (Some ret)) ];
      floc = loc;
    }

let gen_program : program Gen.t =
  let open Gen in
  let globals = [ "g0"; "g1"; "g2" ] in
  let garrays = [ "arr0"; "arr1" ] in
  gen_func ~name:"f2" ~callees:[] ~globals ~garrays >>= fun f2 ->
  gen_func ~name:"f1" ~callees:[ "f2" ] ~globals ~garrays >>= fun f1 ->
  gen_func ~name:"f0" ~callees:[ "f1"; "f2" ] ~globals ~garrays >>= fun f0 ->
  let env =
    { scalars = globals; arrays = garrays; callees = [ "f0"; "f1"; "f2" ]; fresh = 100 }
  in
  gen_block env ~in_loop:false ~depth:3 ~len:5 >>= fun body ->
  gen_expr env 1 >>= fun ret ->
  let main =
    {
      fname = "main";
      fret = RetInt;
      fparams = [];
      fbody = body @ [ s (Return (Some (e (Binop (BitAnd, ret, e (IntLit 255)))))) ];
      floc = loc;
    }
  in
  return
    {
      globals =
        List.map (fun g -> GScalar (g, 1, loc)) globals
        @ List.map (fun a -> GArray (a, 16, loc)) garrays;
      funcs = [ f2; f1; f0; main ];
    }

let arbitrary_program =
  QCheck.make ~print:(fun p -> Minic.Pretty.program_to_string p) gen_program
