test/test_minic_extra.ml: Alcotest Array List Minic Printf String Vm
