test/test_reporting.ml: Alchemist Alcotest Array Format Hashtbl Indexing List Option Parsim Printf Shadow Testutil Vm
