test/test_parsim.ml: Alcotest Array Format List Parsim Printf String Testutil Vm
