test/testgen.ml: List Minic Printf QCheck
