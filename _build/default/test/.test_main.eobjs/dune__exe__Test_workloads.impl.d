test/test_workloads.ml: Alchemist Alcotest Cfa Indexing List Option Parsim Printf Shadow String Testutil Vm Workloads
