test/test_properties.ml: Alchemist Array Baselines Cfa Hashtbl List Minic Option Parsim Printf QCheck Shadow Testgen Vm
