test/test_profile_io.ml: Alchemist Alcotest Array Filename Fun Hashtbl List Printf Result Sys Testutil Vm
