test/test_cfa.ml: Alcotest Array Cfa List Option Printf Vm
