test/test_minic.ml: Alcotest Array List Minic
