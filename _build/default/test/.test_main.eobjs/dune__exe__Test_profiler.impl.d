test/test_profiler.ml: Alchemist Alcotest Array Hashtbl List Minic Option Printf Shadow Testutil Vm
