test/test_indexing.ml: Alcotest Cfa Indexing List Minic Option Printf QCheck Vm
