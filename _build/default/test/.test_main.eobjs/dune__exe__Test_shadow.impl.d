test/test_shadow.ml: Alcotest Array Indexing List QCheck Shadow
