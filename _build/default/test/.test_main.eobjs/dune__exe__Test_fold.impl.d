test/test_fold.ml: Alcotest Array List Minic Printf QCheck Testgen Vm
