test/test_explore.ml: Alchemist Alcotest Driver Format List Option Parsim Printf String Vm Workloads
