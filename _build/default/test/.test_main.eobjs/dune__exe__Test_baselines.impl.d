test/test_baselines.ml: Alcotest Baselines List Printf Vm
