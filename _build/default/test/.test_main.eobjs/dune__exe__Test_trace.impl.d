test/test_trace.ml: Alchemist Alcotest Printf QCheck Testgen Vm
