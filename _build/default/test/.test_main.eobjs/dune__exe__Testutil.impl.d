test/testutil.ml: String
