test/test_vm.ml: Alcotest List Testutil Vm
