test/test_advice.ml: Alchemist Alcotest Array Format Hashtbl List Option Parsim Printf Shadow String Testutil Vm Workloads
