test/test_verify.ml: Alcotest Array List Printf QCheck Testgen Vm Workloads
