(* Tests for the baseline profilers, including the paper's §III argument
   that calling-context sensitivity cannot separate loop-boundary cases. *)

module Flat = Baselines.Flat_profiler
module Ctx = Baselines.Context_profiler

let compile = Vm.Compile.compile_source

(* The paper's example: F(){ for i { for j { A(); B(); } } } with four
   dependence flavours between A and B. *)
let section3_src =
  {|int same[4];
    int crossj[4];
    int crossi[4];
    void A(int i, int j) {
      same[0] = i;
      crossj[j % 2] = i + j;
      crossi[i % 2] = i;
    }
    int sink;
    void B(int i, int j) {
      sink += same[0];
      if (j > 0) sink += crossj[(j + 1) % 2];
      sink += crossi[(i + 1) % 2];
    }
    void F() {
      for (int i = 0; i < 4; i++) {
        crossj[0] = 0;
        crossj[1] = 0;
        for (int j = 0; j < 4; j++) {
          A(i, j);
          B(i, j);
        }
      }
    }
    int main() { F(); F(); return sink; }|}

let test_flat_detects_pairs () =
  let prog = compile section3_src in
  let r = Flat.run prog in
  (* All three writes in A produce RAW edges to B's reads. *)
  let raw_head_lines =
    r.Flat.edges
    |> List.filter (fun (e : Flat.edge) -> e.kind = `Raw)
    |> List.map (fun (e : Flat.edge) -> Vm.Program.line_of_pc prog e.head_pc)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "head line 5" true (List.mem 5 raw_head_lines);
  Alcotest.(check bool) "head line 6" true (List.mem 6 raw_head_lines);
  Alcotest.(check bool) "head line 7" true (List.mem 7 raw_head_lines)

let test_flat_min_distance_positive () =
  let prog = compile section3_src in
  let r = Flat.run prog in
  List.iter
    (fun (e : Flat.edge) ->
      Alcotest.(check bool) "positive distance" true (e.min_distance > 0);
      Alcotest.(check bool) "count >= 1" true (e.count >= 1))
    r.Flat.edges

(* The flat profiler is construct-blind: the three dependence flavours all
   collapse to one entry per static pair — nothing tells the user whether
   the i loop or only the j loop carries them. We check this by observing
   that it produces exactly one edge per (head line, tail line, kind). *)
let test_flat_collapses () =
  let prog = compile section3_src in
  let r = Flat.run prog in
  let key (e : Flat.edge) =
    (Vm.Program.line_of_pc prog e.head_pc, Vm.Program.line_of_pc prog e.tail_pc, e.kind)
  in
  let keys = List.map key r.Flat.edges in
  Alcotest.(check int) "no duplicate static entries"
    (List.length (List.sort_uniq compare keys))
    (List.length keys)

(* Context sensitivity: A and B are always called from the same chain
   (main -> F -> A/B appears twice: two F call sites? No - F called twice
   from the same static call site, so ONE context). All four flavours of
   the A->B dependence carry the same context id: the §III claim. *)
let test_context_collapses_loop_cases () =
  let prog = compile section3_src in
  let r = Ctx.run prog in
  (* Pick the crossj RAW pair: write line 6 -> read line 12. *)
  let head_pc_of_line line kind =
    r.Ctx.edges
    |> List.filter_map (fun (e : Ctx.edge) ->
           if Vm.Program.line_of_pc prog e.head_pc = line && e.kind = kind then
             Some (e.head_pc, e.tail_pc)
           else None)
  in
  match head_pc_of_line 6 `Raw with
  | (head_pc, tail_pc) :: _ ->
      let ctxs = Ctx.contexts_of_pair r ~head_pc ~tail_pc in
      (* A is reached via the single chain main->F->A: one context only,
         despite the dependence crossing j, i, or neither. *)
      Alcotest.(check int) "single calling context" 1 (List.length ctxs)
  | [] -> Alcotest.fail "crossj RAW edge not found"

(* But context sensitivity does distinguish distinct call CHAINS — sanity
   check that it is not weaker than it should be. *)
let test_context_distinguishes_call_sites () =
  let src =
    {|int g;
      void w() { g = 1; }
      void from_a() { w(); g += 1; }
      void from_b() { w(); g += 2; }
      int main() { from_a(); from_b(); return g; }|}
  in
  let prog = compile src in
  let r = Ctx.run prog in
  (* The write in w() heads edges under two different contexts. *)
  let ctxs =
    r.Ctx.edges
    |> List.filter_map (fun (e : Ctx.edge) ->
           if Vm.Program.line_of_pc prog e.head_pc = 2 then Some e.head_ctx
           else None)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "two contexts (got %d)" (List.length ctxs))
    true
    (List.length ctxs >= 2)

let test_context_chains_recorded () =
  let prog = compile section3_src in
  let r = Ctx.run prog in
  Alcotest.(check bool) "has contexts" true (List.length r.Ctx.contexts >= 3);
  (* Root context exists with empty chain. *)
  Alcotest.(check bool) "root" true
    (List.exists (fun (id, chain) -> id = 0 && chain = []) r.Ctx.contexts)

let suite =
  [
    ("flat detects pairs", `Quick, test_flat_detects_pairs);
    ("flat min distance positive", `Quick, test_flat_min_distance_positive);
    ("flat collapses constructs", `Quick, test_flat_collapses);
    ("context collapses loop cases", `Quick, test_context_collapses_loop_cases);
    ("context distinguishes call sites", `Quick, test_context_distinguishes_call_sites);
    ("context chains recorded", `Quick, test_context_chains_recorded);
  ]
