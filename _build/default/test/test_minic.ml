(* Tests for the Mini-C frontend: lexer, parser, typechecker, pretty. *)

module Ast = Minic.Ast
module Lexer = Minic.Lexer
module Parser = Minic.Parser
module Typecheck = Minic.Typecheck
module Pretty = Minic.Pretty

let tokens src = Array.to_list (Lexer.tokenize src) |> List.map fst

let token = Alcotest.testable Minic.Token.pp ( = )

let check_tokens name src expected =
  Alcotest.(check (list token)) name (expected @ [ Minic.Token.EOF ]) (tokens src)

(* --- lexer -------------------------------------------------------------- *)

let test_lex_simple () =
  check_tokens "arith" "1 + 2*x"
    Minic.Token.[ INT_LIT 1; PLUS; INT_LIT 2; STAR; IDENT "x" ]

let test_lex_operators () =
  check_tokens "compound ops" "<<= >>= << >> <= >= == != && || ++ -- += -="
    Minic.Token.
      [
        SHL_ASSIGN;
        SHR_ASSIGN;
        SHL;
        SHR;
        LE;
        GE;
        EQEQ;
        NEQ;
        ANDAND;
        OROR;
        PLUSPLUS;
        MINUSMINUS;
        PLUS_ASSIGN;
        MINUS_ASSIGN;
      ]

let test_lex_keywords () =
  check_tokens "keywords vs idents" "if iffy while whiles do for int void"
    Minic.Token.
      [
        KW_IF;
        IDENT "iffy";
        KW_WHILE;
        IDENT "whiles";
        KW_DO;
        KW_FOR;
        KW_INT;
        KW_VOID;
      ]

let test_lex_literals () =
  check_tokens "hex and char" "0x10 255 'a' '\\n' '\\0'"
    Minic.Token.[ INT_LIT 16; INT_LIT 255; INT_LIT 97; INT_LIT 10; INT_LIT 0 ]

let test_lex_comments () =
  check_tokens "comments" "1 // line comment\n /* block \n comment */ 2"
    Minic.Token.[ INT_LIT 1; INT_LIT 2 ]

let test_lex_locations () =
  let toks = Lexer.tokenize "x\n  y" in
  let _, loc0 = toks.(0) and _, loc1 = toks.(1) in
  Alcotest.(check int) "x line" 1 loc0.Minic.Srcloc.line;
  Alcotest.(check int) "y line" 2 loc1.Minic.Srcloc.line;
  Alcotest.(check int) "y col" 3 loc1.Minic.Srcloc.col

let test_lex_errors () =
  let fails src =
    match Lexer.tokenize src with
    | exception Minic.Diag.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  fails "/* unterminated";
  fails "'x";
  fails "@";
  fails "0xg";
  fails "1abc"

(* --- parser ------------------------------------------------------------- *)

let parse_ok src =
  match Minic.Diag.wrap (fun () -> Parser.parse src) with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let parse_fails src =
  match Minic.Diag.wrap (fun () -> Parser.parse src) with
  | Ok _ -> Alcotest.failf "expected parse error on %S" src
  | Error _ -> ()

let test_parse_minimal () =
  let p = parse_ok "int main() { return 0; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Ast.funcs);
  Alcotest.(check string) "name" "main" (List.hd p.Ast.funcs).Ast.fname

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e.Ast.edesc with
  | Ast.Binop (Ast.Add, { edesc = Ast.IntLit 1; _ }, { edesc = Ast.Binop (Ast.Mul, _, _); _ })
    ->
      ()
  | _ -> Alcotest.fail "wrong precedence for 1 + 2 * 3");
  let e = Parser.parse_expr "1 < 2 && 3 < 4 || x" in
  match e.Ast.edesc with
  | Ast.Binop (Ast.LogOr, { edesc = Ast.Binop (Ast.LogAnd, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "wrong precedence for && / ||"

let test_parse_associativity () =
  let e = Parser.parse_expr "10 - 4 - 3" in
  match e.Ast.edesc with
  | Ast.Binop (Ast.Sub, { edesc = Ast.Binop (Ast.Sub, _, _); _ }, { edesc = Ast.IntLit 3; _ })
    ->
      ()
  | _ -> Alcotest.fail "subtraction must be left-associative"

let test_parse_statements () =
  let src =
    {|
    int g;
    int buf[16];
    int helper(int x, int a[]) {
      int acc = 0;
      for (int i = 0; i < x; i++) {
        if (a[i] > 0) { acc += a[i]; } else { acc--; }
      }
      do { acc -= 1; } while (acc > 100);
      while (acc > 10) { acc /= 2; if (acc == 11) break; }
      return acc;
    }
    void main() {
      g = helper(16, buf);
      print(g);
    }
  |}
  in
  let p = parse_ok src in
  Alcotest.(check int) "two globals" 2 (List.length p.Ast.globals);
  Alcotest.(check int) "two functions" 2 (List.length p.Ast.funcs)

let test_parse_for_variants () =
  ignore (parse_ok "int main() { for (;;) { break; } return 0; }");
  ignore (parse_ok "int main() { int i; for (i = 0; i < 3; i++) {} return i; }");
  ignore
    (parse_ok "int main() { int s = 0; for (int i = 9; i; i--) s += i; return s; }")

let test_parse_dangling_else () =
  let p = parse_ok "int main() { if (1) if (0) return 1; else return 2; return 3; }" in
  let f = List.hd p.Ast.funcs in
  match (List.hd f.Ast.fbody).Ast.sdesc with
  | Ast.If (_, { sdesc = Ast.If (_, _, Some _); _ }, None) -> ()
  | _ -> Alcotest.fail "else must bind to the inner if"

let test_parse_errors () =
  parse_fails "int main() { return 0 }";
  parse_fails "int main() { if 1 return 0; }";
  parse_fails "int main( { return 0; }";
  parse_fails "main() { return 0; }";
  parse_fails "int main() { int a[]; return 0; }";
  parse_fails "int main() { 1 +; }"

(* --- typechecker -------------------------------------------------------- *)

let check_ok src = Typecheck.check (parse_ok src)

let check_fails name src =
  match Typecheck.check_result (parse_ok src) with
  | Ok () -> Alcotest.failf "%s: expected type error" name
  | Error _ -> ()

let test_tc_accepts () =
  check_ok "int main() { return 0; }";
  check_ok
    {| int a[4];
       int f(int a[], int n) { return a[n]; }
       int main() { return f(a, 2); } |};
  check_ok "int main() { int x = 1; { int x = 2; } return x; }"

let test_tc_rejects () =
  check_fails "undeclared" "int main() { return x; }";
  check_fails "dup local" "int main() { int x; int x; return 0; }";
  check_fails "scalar as array" "int main() { int x; return x[0]; }";
  check_fails "array as scalar" "int a[3]; int main() { return a + 1; }";
  check_fails "arity" "int f(int x) { return x; } int main() { return f(); }";
  check_fails "array arg for scalar param"
    "int a[3]; int f(int x) { return x; } int main() { return f(a); }";
  check_fails "scalar arg for array param"
    "int f(int a[]) { return a[0]; } int main() { return f(3); }";
  check_fails "void as value" "void f() { } int main() { return f(); }";
  check_fails "break outside loop" "int main() { break; return 0; }";
  check_fails "continue outside loop" "int main() { continue; return 0; }";
  check_fails "return value in void" "void f() { return 3; } int main() { return 0; }";
  check_fails "bare return in int" "int f() { return; } int main() { return 0; }";
  check_fails "no main" "int f() { return 0; }";
  check_fails "main with params" "int main(int x) { return x; }";
  check_fails "zero-length array" "int a[0]; int main() { return 0; }";
  check_fails "dup function" "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  check_fails "dup global" "int g; int g; int main() { return 0; }";
  check_fails "undeclared function" "int main() { return g(); }"

let test_tc_scoping () =
  (* for-loop variable is scoped to the loop *)
  check_fails "for scope"
    "int main() { for (int i = 0; i < 3; i++) {} return i; }";
  check_ok "int main() { for (int i = 0; i < 3; i++) {} for (int i = 0; i < 2; i++) {} return 0; }"

(* --- pretty round trip --------------------------------------------------- *)

(* Equality modulo locations: compare printed forms after one round trip. *)
let test_pretty_roundtrip () =
  let srcs =
    [
      "int main() { return (1 + 2) * 3; }";
      {| int g = 5;
         int a[8];
         int f(int x, int b[]) {
           int s = 0;
           for (int i = 0; i < x; i++) { s += b[i]; }
           while (s > 100 && x != 0) { s >>= 1; }
           do { s++; } while (s < 0);
           if (s == 12) { return s; } else { s = -s; }
           return s % 7;
         }
         void main() { a[0] = g; print(f(8, a)); } |};
      "int main() { int x = 0; x |= 6; x &= 14; x ^= 1; x <<= 2; x >>= 1; return ~x + !x; }";
    ]
  in
  List.iter
    (fun src ->
      let p1 = parse_ok src in
      let printed = Pretty.program_to_string p1 in
      let p2 =
        match Minic.Diag.wrap (fun () -> Parser.parse printed) with
        | Ok p -> p
        | Error msg ->
            Alcotest.failf "re-parse failed: %s\nprinted:\n%s" msg printed
      in
      Alcotest.(check string)
        "idempotent print" printed
        (Pretty.program_to_string p2))
    srcs

let test_count_loc () =
  let src = "int main() {\n// comment only\n/* block */\n  return 0;\n}\n" in
  Alcotest.(check int) "loc" 3 (Minic.Frontend.count_loc src)

let suite =
  [
    ("lex simple", `Quick, test_lex_simple);
    ("lex operators", `Quick, test_lex_operators);
    ("lex keywords", `Quick, test_lex_keywords);
    ("lex literals", `Quick, test_lex_literals);
    ("lex comments", `Quick, test_lex_comments);
    ("lex locations", `Quick, test_lex_locations);
    ("lex errors", `Quick, test_lex_errors);
    ("parse minimal", `Quick, test_parse_minimal);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse associativity", `Quick, test_parse_associativity);
    ("parse statements", `Quick, test_parse_statements);
    ("parse for variants", `Quick, test_parse_for_variants);
    ("parse dangling else", `Quick, test_parse_dangling_else);
    ("parse errors", `Quick, test_parse_errors);
    ("typecheck accepts", `Quick, test_tc_accepts);
    ("typecheck rejects", `Quick, test_tc_rejects);
    ("typecheck scoping", `Quick, test_tc_scoping);
    ("pretty roundtrip", `Quick, test_pretty_roundtrip);
    ("count_loc", `Quick, test_count_loc);
  ]
