(* Tests for the parallel-execution simulator: task extraction, the
   dependence-respecting scheduler, and privatization transforms. *)

module TG = Parsim.Task_graph
module Sched = Parsim.Scheduler
module Speedup = Parsim.Speedup
module Transform = Parsim.Transform

let compile = Vm.Compile.compile_source

(* A loop whose iterations are independent except for the induction
   variable (untraced): near-perfect data parallelism. *)
let independent_src =
  {|int out[16];
    int work(int i) {
      int s = 0;
      for (int k = 0; k < 200; k++) s += i * k % 7;
      return s;
    }
    int main() {
      for (int i = 0; i < 16; i++) {
        out[i] = work(i);
      }
      return 0;
    }|}

(* A serial chain: each iteration reads the previous one's result. *)
let chain_src =
  {|int acc;
    int step(int i) {
      int s = acc;
      for (int k = 0; k < 200; k++) s += k % 5;
      return s;
    }
    int main() {
      for (int i = 0; i < 16; i++) {
        acc = step(i);
      }
      return acc;
    }|}

let loop_pc src line =
  let prog = compile src in
  (prog, Speedup.loop_head_at_line prog line)

(* --- task extraction -------------------------------------------------------- *)

let test_collect_instances () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  Alcotest.(check int) "16 iterations = 16 tasks" 16 (Array.length g.TG.instances);
  (* Intervals are ordered and disjoint. *)
  Array.iteri
    (fun i (inst : TG.instance) ->
      Alcotest.(check bool) "positive duration" true (inst.stop > inst.start);
      if i > 0 then
        Alcotest.(check bool) "ordered" true
          (inst.start >= g.TG.instances.(i - 1).TG.stop))
    g.TG.instances

let test_collect_no_cross_deps_for_independent () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  (* out[i] slots are disjoint; no RAW/WAR/WAW across iterations. *)
  Alcotest.(check (list string)) "no constraints" []
    (List.map
       (fun (c : TG.folded_constraint) ->
         Printf.sprintf "i%d" c.head_instance)
       g.TG.constraints)

let test_collect_chain_has_constraints () =
  let prog, pc = loop_pc chain_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  Alcotest.(check bool) "constraints exist" true (g.TG.constraints <> []);
  Alcotest.(check bool) "cross deps counted" true (g.TG.cross_deps > 0);
  (* Every constraint's head precedes its tail location. *)
  List.iter
    (fun (c : TG.folded_constraint) ->
      match c.location with
      | TG.CInstance j ->
          Alcotest.(check bool) "head < tail instance" true (c.head_instance < j)
      | TG.CSegment m ->
          Alcotest.(check bool) "head < segment" true (c.head_instance < m))
    g.TG.constraints

let test_collect_bad_pc () =
  let prog = compile independent_src in
  match TG.collect prog ~head_pc:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- scheduler --------------------------------------------------------------- *)

let test_independent_speedup () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let s = Sched.simulate ~config:{ Sched.cores = 4; spawn_overhead = 10; join_overhead = 5 } g in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f in [2.5, 4.0]" s.Sched.speedup)
    true
    (s.Sched.speedup > 2.5 && s.Sched.speedup <= 4.0);
  Alcotest.(check int) "no stalls" 0 s.Sched.stall_time

let test_chain_no_speedup () =
  let prog, pc = loop_pc chain_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let s = Sched.simulate g in
  Alcotest.(check bool)
    (Printf.sprintf "chain speedup %.2f stays ~1" s.Sched.speedup)
    true
    (s.Sched.speedup < 1.3);
  Alcotest.(check bool) "stalls happened" true (s.Sched.stall_time > 0)

let test_more_cores_help_until_width () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let at cores =
    (Sched.simulate ~config:{ Sched.cores; spawn_overhead = 10; join_overhead = 5 } g)
      .Sched.par_time
  in
  Alcotest.(check bool) "2 cores beat 1" true (at 2 < at 1);
  Alcotest.(check bool) "4 cores beat 2" true (at 4 < at 2);
  Alcotest.(check bool) "1 core roughly sequential" true
    (at 1 >= g.TG.total * 9 / 10)

let test_empty_graph () =
  let g =
    {
      TG.total = 1000;
      instances = [||];
      constraints = [];
      dropped_privatized = 0;
      cross_deps = 0;
    }
  in
  let s = Sched.simulate g in
  Alcotest.(check int) "par = seq" 1000 s.Sched.par_time;
  Alcotest.(check int) "no tasks" 0 s.Sched.tasks

let test_spawn_overhead_costs () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let cheap =
    Sched.simulate ~config:{ Sched.cores = 4; spawn_overhead = 0; join_overhead = 0 } g
  in
  let costly =
    Sched.simulate
      ~config:{ Sched.cores = 4; spawn_overhead = 5000; join_overhead = 0 }
      g
  in
  Alcotest.(check bool) "overhead hurts" true
    (costly.Sched.par_time > cheap.Sched.par_time)

(* --- privatization ----------------------------------------------------------- *)

let war_src =
  {|int scratch;
    int out[16];
    int use(int i) {
      int v = scratch;
      int s = 0;
      for (int k = 0; k < 150; k++) s += v + k;
      scratch = s % 100;
      return s;
    }
    int main() {
      for (int i = 0; i < 16; i++) {
        out[i] = use(i);
      }
      return out[3];
    }|}

let test_privatization_removes_war_waw () =
  let prog, pc = loop_pc war_src 11 in
  let naive = TG.collect prog ~head_pc:pc in
  let priv =
    TG.collect
      ~privatized:(Transform.privatize_globals prog [ "scratch" ])
      prog ~head_pc:pc
  in
  Alcotest.(check bool) "privatized constraints dropped" true
    (priv.TG.dropped_privatized > 0);
  (* RAW on scratch remains, so constraints don't vanish entirely; but
     WAR/WAW folding must shrink. *)
  Alcotest.(check bool) "fewer or equal constraints" true
    (List.length priv.TG.constraints <= List.length naive.TG.constraints)

let test_privatize_unknown_global () =
  let prog = compile war_src in
  match Transform.privatize_globals prog [ "nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_all_globals () =
  let prog = compile war_src in
  Alcotest.(check (list string)) "globals" [ "scratch"; "out" ]
    (Transform.all_globals prog)

(* --- placements / gantt ------------------------------------------------------- *)

let test_placements_consistent () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let s = Sched.simulate g in
  Alcotest.(check int) "one placement per task" s.Sched.tasks
    (Array.length s.Sched.placements);
  Array.iter
    (fun (p : Sched.task_schedule) ->
      Alcotest.(check bool) "start < finish" true (p.start < p.finish);
      Alcotest.(check bool) "finish within par_time" true
        (p.finish <= s.Sched.par_time);
      Alcotest.(check bool) "core in range" true (p.core >= 0 && p.core < 4))
    s.Sched.placements;
  (* no two tasks overlap on the same core *)
  Array.iter
    (fun (a : Sched.task_schedule) ->
      Array.iter
        (fun (b : Sched.task_schedule) ->
          if a.task < b.task && a.core = b.core then
            Alcotest.(check bool)
              (Printf.sprintf "tasks %d/%d disjoint on core %d" a.task b.task
                 a.core)
              true
              (a.finish <= b.start || b.finish <= a.start))
        s.Sched.placements)
    s.Sched.placements

let test_gantt_renders () =
  let prog, pc = loop_pc independent_src 8 in
  let g = TG.collect prog ~head_pc:pc in
  let s = Sched.simulate g in
  let text = Parsim.Gantt.render ~width:60 g s in
  Alcotest.(check bool) "has main row" true (Testutil.contains text "main");
  Alcotest.(check bool) "has core rows" true (Testutil.contains text "core 3");
  Alcotest.(check bool) "has bars" true (Testutil.contains text "#")

(* --- end-to-end report -------------------------------------------------------- *)

let test_analyze_report () =
  let prog, pc = loop_pc independent_src 8 in
  let r = Speedup.analyze ~cores:4 prog ~head_pc:pc in
  Alcotest.(check int) "tasks" 16 r.Speedup.tasks;
  Alcotest.(check bool) "speedup > 2" true (r.Speedup.speedup > 2.0);
  Alcotest.(check bool) "construct named" true
    (Testutil.contains r.Speedup.construct "Loop");
  (* Report is printable. *)
  let s = Format.asprintf "%a" Speedup.pp_report r in
  Alcotest.(check bool) "pp" true (String.length s > 20)

let test_proc_head_lookup () =
  let prog = compile independent_src in
  let pc = Speedup.proc_head prog "work" in
  let r = Speedup.analyze prog ~head_pc:pc in
  Alcotest.(check int) "16 calls" 16 r.Speedup.tasks

let suite =
  [
    ("collect instances", `Quick, test_collect_instances);
    ("collect independent: no constraints", `Quick, test_collect_no_cross_deps_for_independent);
    ("collect chain: constraints", `Quick, test_collect_chain_has_constraints);
    ("collect bad pc", `Quick, test_collect_bad_pc);
    ("independent speedup", `Quick, test_independent_speedup);
    ("chain no speedup", `Quick, test_chain_no_speedup);
    ("more cores help", `Quick, test_more_cores_help_until_width);
    ("empty graph", `Quick, test_empty_graph);
    ("spawn overhead costs", `Quick, test_spawn_overhead_costs);
    ("privatization removes war/waw", `Quick, test_privatization_removes_war_waw);
    ("privatize unknown global", `Quick, test_privatize_unknown_global);
    ("all globals", `Quick, test_all_globals);
    ("placements consistent", `Quick, test_placements_consistent);
    ("gantt renders", `Quick, test_gantt_renders);
    ("analyze report", `Quick, test_analyze_report);
    ("proc head lookup", `Quick, test_proc_head_lookup);
  ]
