(* Tests for the bytecode verifier. *)

module Verify = Vm.Verify
module Program = Vm.Program

let compile = Vm.Compile.compile_source

let assert_clean name src =
  let prog = compile src in
  Alcotest.(check (list string)) name []
    (List.map (fun (e : Verify.error) -> e.message) (Verify.verify prog))

let test_clean_programs () =
  assert_clean "minimal" "int main() { return 0; }";
  assert_clean "control flow"
    {|int g;
      int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { if (i % 2) s += i; else s -= 1; }
        while (s > 100) { s /= 2; if (s == 51) break; }
        do { s++; } while (s < 0);
        return s;
      }
      int main() { g = f(40) && f(3) || !f(1); return g; }|};
  assert_clean "arrays and calls"
    {|int a[7];
      void fill(int b[], int n) { for (int i = 0; i < n; i++) b[i] = i; }
      int main() { fill(a, 7); a[2] += a[3]; return a[2]; }|};
  assert_clean "recursion"
    "int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); } int main() { return f(10); }"

let test_all_workloads_verify () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = Workloads.Workload.compile w ~scale:w.Workloads.Workload.test_scale in
      Alcotest.(check (list string))
        (w.Workloads.Workload.name ^ " verifies")
        []
        (List.map (fun (e : Verify.error) -> e.message) (Verify.verify prog)))
    Workloads.Registry.all

(* --- corrupted programs are rejected -------------------------------------- *)

let corrupt src f =
  let prog = compile src in
  let code = Array.copy prog.Program.code in
  f code prog;
  Verify.verify { prog with Program.code = code }

let sample =
  {|int g;
    int f(int x) { if (x > 0) g = x; return g + x; }
    int main() { return f(4) + f(5); }|}

let expect_errors name errs =
  Alcotest.(check bool)
    (Printf.sprintf "%s rejected (%d errors)" name (List.length errs))
    true (errs <> [])

let find_instr prog pred =
  let found = ref (-1) in
  Array.iteri
    (fun pc i -> if !found = -1 && pred i then found := pc)
    prog.Program.code;
  Alcotest.(check bool) "target instr found" true (!found >= 0);
  !found

let test_rejects_escaping_branch () =
  expect_errors "escaping branch"
    (corrupt sample (fun code prog ->
         let pc =
           find_instr prog (function Vm.Instr.Br _ -> true | _ -> false)
         in
         match code.(pc) with
         | Vm.Instr.Br { kind; cid; _ } ->
             code.(pc) <- Vm.Instr.Br { target = 0; kind; cid }
         | _ -> assert false))

let test_rejects_bad_fid () =
  expect_errors "bad call fid"
    (corrupt sample (fun code prog ->
         let pc =
           find_instr prog (function Vm.Instr.Call _ -> true | _ -> false)
         in
         (* the preamble call is pc 0; corrupt a call inside main instead *)
         let pc = if pc = 0 then
             let f = ref (-1) in
             Array.iteri (fun i instr ->
               if !f = -1 && i > 1 && (match instr with Vm.Instr.Call _ -> true | _ -> false)
               then f := i) prog.Program.code;
             !f
           else pc
         in
         code.(pc) <- Vm.Instr.Call 99))

let test_rejects_stack_underflow () =
  expect_errors "stack underflow"
    (corrupt sample (fun code prog ->
         (* replace a Const (push) with a Pop: depths go negative *)
         let pc =
           find_instr prog (function Vm.Instr.Const _ -> true | _ -> false)
         in
         code.(pc) <- Vm.Instr.Pop))

let test_rejects_unbalanced_join () =
  expect_errors "unbalanced join"
    (corrupt sample (fun code prog ->
         (* insert an extra push on one branch path by replacing a
            StoreGlobal with a Const: the join sees two depths *)
         let pc =
           find_instr prog (function Vm.Instr.StoreGlobal _ -> true | _ -> false)
         in
         code.(pc) <- Vm.Instr.Const 1))

let test_rejects_bad_slot () =
  expect_errors "slot out of frame"
    (corrupt sample (fun code prog ->
         let pc =
           find_instr prog (function Vm.Instr.LoadLocal _ -> true | _ -> false)
         in
         code.(pc) <- Vm.Instr.LoadLocal 999))

let test_rejects_bad_global () =
  expect_errors "global out of range"
    (corrupt sample (fun code prog ->
         let pc =
           find_instr prog (function Vm.Instr.LoadGlobal _ -> true | _ -> false)
         in
         code.(pc) <- Vm.Instr.LoadGlobal 12345))

let test_rejects_stray_halt () =
  expect_errors "halt inside function"
    (corrupt sample (fun code prog ->
         let pc =
           find_instr prog (function Vm.Instr.Const _ -> true | _ -> false)
         in
         ignore prog;
         code.(pc) <- Vm.Instr.Halt))

let test_verify_exn () =
  let prog = compile sample in
  Verify.verify_exn prog;
  (* corrupted: raises *)
  let code = Array.copy prog.Program.code in
  code.(0) <- Vm.Instr.Halt;
  match Verify.verify_exn { prog with Program.code = code } with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

(* Property: every generated program verifies. *)
let test_generated_verify () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"generated programs verify" ~count:60
       Testgen.arbitrary_program (fun p ->
         match Verify.verify (Vm.Compile.compile p) with
         | [] -> true
         | e :: _ -> QCheck.Test.fail_reportf "verify: %s" e.Verify.message))

let suite =
  [
    ("clean programs", `Quick, test_clean_programs);
    ("all workloads verify", `Quick, test_all_workloads_verify);
    ("rejects escaping branch", `Quick, test_rejects_escaping_branch);
    ("rejects bad fid", `Quick, test_rejects_bad_fid);
    ("rejects stack underflow", `Quick, test_rejects_stack_underflow);
    ("rejects unbalanced join", `Quick, test_rejects_unbalanced_join);
    ("rejects bad slot", `Quick, test_rejects_bad_slot);
    ("rejects bad global", `Quick, test_rejects_bad_global);
    ("rejects stray halt", `Quick, test_rejects_stray_halt);
    ("verify_exn", `Quick, test_verify_exn);
    ("generated programs verify (qcheck)", `Slow, test_generated_verify);
  ]
