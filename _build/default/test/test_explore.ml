(* Tests for the automated workflow driver (rank -> advise -> simulate). *)

module Explore = Driver.Explore
module Advice = Alchemist.Advice

let test_explore_finds_parallel_loop () =
  let src =
    {|int out[32];
      int work(int i) {
        int s = 0;
        for (int k = 0; k < 100; k++) s += i ^ k;
        return s;
      }
      int main() {
        for (int i = 0; i < 16; i++) out[i & 31] = work(i);
        return out[3];
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let t = Explore.explore ~fuel:10_000_000 ~cores:4 prog in
  match Explore.best t with
  | None -> Alcotest.fail "no candidate found"
  | Some c ->
      let r = Option.get c.Explore.simulated in
      Alcotest.(check bool)
        (Printf.sprintf "best speedup %.2f > 2" r.Parsim.Speedup.speedup)
        true
        (r.Parsim.Speedup.speedup > 2.0)

let test_explore_detects_reduction () =
  (* A sum loop: blocked by the accumulator chain, but the chain is a
     recognized reduction, so the driver still simulates it with the
     reduction transform and finds the speedup. *)
  let src =
    {|int total;
      int step(int i) {
        int s = 0;
        for (int k = 0; k < 120; k++) s += (i * k) & 31;
        return s;
      }
      int main() {
        for (int i = 0; i < 16; i++) total += step(i);
        return total;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let t = Explore.explore ~fuel:10_000_000 ~cores:4 prog in
  (* the main loop must carry a Reduce suggestion for total *)
  let has_reduce =
    List.exists
      (fun (c : Explore.candidate) ->
        List.exists
          (function Advice.Reduce { var = "total"; _ } -> true | _ -> false)
          c.Explore.advice.Advice.suggestions)
      t.Explore.candidates
  in
  Alcotest.(check bool) "reduction recognized" true has_reduce;
  match Explore.best t with
  | Some c ->
      let r = Option.get c.Explore.simulated in
      Alcotest.(check bool)
        (Printf.sprintf "speedup %.2f > 2 after reduction" r.Parsim.Speedup.speedup)
        true
        (r.Parsim.Speedup.speedup > 2.0)
  | None -> Alcotest.fail "no candidate"

let test_explore_rejects_true_chain () =
  (* Value-dependent chain: each step's input is the previous step's
     output through a non-associative transformation -> not a reduction,
     not amenable. *)
  let src =
    {|int state;
      int step() {
        int v = state;
        int s = 0;
        for (int k = 0; k < 80; k++) s += (v >> 1) ^ k;
        return s & 2047;
      }
      int main() {
        for (int i = 0; i < 16; i++) state = step();
        return state;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let t = Explore.explore ~fuel:10_000_000 ~cores:4 prog in
  (* The loop carries the non-associative chain: not amenable. *)
  let find name =
    List.find
      (fun (c : Explore.candidate) ->
        c.Explore.entry.Alchemist.Ranking.name = name)
      t.Explore.candidates
  in
  let loop = find "Loop (main,9)" in
  Alcotest.(check bool) "loop not amenable" true
    (loop.Explore.advice.Advice.verdict = `Not_amenable);
  Alcotest.(check bool) "loop not simulated" true
    (loop.Explore.simulated = None);
  (* Method step itself has no outgoing violating RAW (the chain's write
     is at the call site), so Alchemist calls it spawnable — but each
     call's return value is claimed immediately, so the simulator finds
     no profit in it. *)
  let step = find "Method step" in
  (match step.Explore.simulated with
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "claims serialize step (%.2f)" r.Parsim.Speedup.speedup)
        true
        (r.Parsim.Speedup.speedup < 1.15)
  | None -> Alcotest.fail "step should be simulated");
  (* And no candidate at all reaches a real speedup. *)
  List.iter
    (fun (c : Explore.candidate) ->
      match c.Explore.simulated with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s speedup %.2f stays ~1"
               c.Explore.entry.Alchemist.Ranking.name r.Parsim.Speedup.speedup)
            true
            (r.Parsim.Speedup.speedup < 1.3)
      | None -> ())
    t.Explore.candidates

let test_explore_on_bzip2 () =
  (* End-to-end on a bundled workload: the driver should find a
     multi-core speedup on the block loop fully automatically. *)
  let w = Workloads.Registry.find "bzip2" in
  let prog = Workloads.Workload.compile w ~scale:2_000 in
  let t = Explore.explore ~fuel:50_000_000 ~cores:4 prog in
  match Explore.best t with
  | None -> Alcotest.fail "no candidate on bzip2"
  | Some c ->
      let r = Option.get c.Explore.simulated in
      Alcotest.(check bool)
        (Printf.sprintf "automatic speedup %.2f > 1.5 (%s)"
           r.Parsim.Speedup.speedup c.Explore.entry.Alchemist.Ranking.name)
        true
        (r.Parsim.Speedup.speedup > 1.5)

let test_explore_printable () =
  let src = "int g; int main() { for (int i = 0; i < 30; i++) g += i; return g; }" in
  let prog = Vm.Compile.compile_source src in
  let t = Explore.explore ~fuel:1_000_000 prog in
  let s = Format.asprintf "%a" Explore.pp t in
  Alcotest.(check bool) "renders" true (String.length s > 40)

let suite =
  [
    ("finds parallel loop", `Quick, test_explore_finds_parallel_loop);
    ("detects reduction", `Quick, test_explore_detects_reduction);
    ("rejects true chain", `Quick, test_explore_rejects_true_chain);
    ("end-to-end on bzip2", `Slow, test_explore_on_bzip2);
    ("printable", `Quick, test_explore_printable);
  ]
