(* Quickstart: profile a small program and read the report.

   Run with: dune exec examples/quickstart.exe

   The program below has two call sites worth looking at:
   - [stage1] fills a buffer that [stage2] consumes much later: the RAW
     distance out of stage1 is long, so stage1 is a future candidate;
   - each [tick] call feeds the next through [clock]: the RAW distance
     matches the gap between calls exactly, so ticks cannot overlap. *)

let src =
  {|int buf[256];
    int clock;
    int sink;

    void stage1() {
      for (int i = 0; i < 256; i++) {
        buf[i] = (i * 17) % 251;
      }
    }

    void tick() {
      clock = clock + 1;
    }

    int stage2() {
      int s = 0;
      for (int i = 0; i < 256; i++) {
        s += buf[i];
      }
      return s;
    }

    int main() {
      stage1();
      // unrelated work between producer and consumer
      for (int k = 0; k < 40; k++) {
        tick();
      }
      sink = stage2();
      print(sink);
      return 0;
    }|}

let () =
  (* Compile and profile in one call: every construct (procedures, loops,
     conditionals) is profiled transparently in a single run. *)
  let result = Alchemist.Profiler.run_source src in
  let profile = result.Alchemist.Profiler.profile in

  print_endline "=== RAW dependence profile (Fig. 2 style) ===";
  print_string
    (Alchemist.Report.render ~top:6 ~kinds:[ Shadow.Dependence.Raw ] profile);

  (* [*] marks violating edges: minimum distance <= construct duration,
     i.e. a future would reach the read before the construct finished. *)
  print_endline "\n=== Ranked candidates ===";
  Alchemist.Ranking.rank profile
  |> List.iteri (fun i e ->
         if i < 6 then Format.printf "%d. %a@." (i + 1) Alchemist.Ranking.pp_entry e);

  (* Now ask the what-if simulator: what happens if we spawn every call
     to [tick] as a future? The clock chain serializes them. *)
  let prog = Vm.Compile.compile_source src in
  let tick = Parsim.Speedup.proc_head prog "tick" in
  let r = Parsim.Speedup.analyze ~cores:4 prog ~head_pc:tick in
  Format.printf "@.=== Simulated parallelization of tick() ===@.%a@."
    Parsim.Speedup.pp_report r;
  Format.printf
    "tick() speedup ~1.0: the clock chain makes its calls inherently serial.@."
