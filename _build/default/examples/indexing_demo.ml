(* Execution indexing on the paper's Fig. 4 examples.

   Run with: dune exec examples/indexing_demo.exe

   Drives the instrumentation rules of Fig. 5 over real executions of the
   three example programs and prints every execution index observed — the
   path from the root to the current construct. Loop iterations appear as
   siblings (same depth), not nested. *)

let trace name src =
  let prog = Vm.Compile.compile_source src in
  let analysis = Cfa.Analysis.analyze prog in
  let tree = Indexing.Index_tree.create () in
  let rules =
    Indexing.Rules.create ~ipdom:analysis.Cfa.Analysis.ipdom_of_pc ~tree
  in
  let label_of pc =
    match Vm.Program.construct_at prog pc with
    | Some c -> (
        match c.Vm.Program.kind with
        | Vm.Program.CProc -> c.Vm.Program.cname
        | Vm.Program.CLoop ->
            Printf.sprintf "loop@%d" c.Vm.Program.loc.Minic.Srcloc.line
        | Vm.Program.CCond ->
            Printf.sprintf "if@%d" c.Vm.Program.loc.Minic.Srcloc.line)
    | None -> Printf.sprintf "pc%d" pc
  in
  Printf.printf "--- %s ---\n" name;
  let show () =
    let index = Indexing.Index_tree.index_of_top tree in
    Printf.printf "  [%s]\n" (String.concat "; " (List.map label_of index))
  in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr = (fun ~pc -> Indexing.Rules.on_instr rules ~pc);
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          Indexing.Rules.on_branch rules ~pc ~kind ~taken;
          if kind <> Vm.Instr.BrSc then show ());
      on_call =
        (fun ~pc ~fid:_ ->
          Indexing.Rules.on_call rules ~entry_pc:pc;
          show ());
      on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
    }
  in
  ignore (Vm.Machine.run_hooked hooks prog);
  Indexing.Rules.finish rules;
  Printf.printf "  (pool: %s)\n\n" (Indexing.Index_tree.stats tree)

let () =
  (* Fig. 4(a): procedures nest. *)
  trace "Fig. 4(a): A calls B"
    {|void B() { int s2 = 0; }
      void A() { int s1 = 0; B(); }
      int main() { A(); return 0; }|};
  (* Fig. 4(b): conditionals nest, and the statement heading a construct
     belongs to the enclosing construct, not its own. *)
  trace "Fig. 4(b): nested conditionals"
    {|int main() {
        int x = 1;
        if (x) {
          int s3 = 0;
          if (x) { int s4 = 0; }
        }
        return 0;
      }|};
  (* Fig. 4(c): loop iterations are siblings — the two iterations of the
     inner loop both print at depth 3. *)
  trace "Fig. 4(c): nested loops, iterations as siblings"
    {|int main() {
        int s = 0;
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) { s++; }
        }
        return s;
      }|}
