(* Reproducing the paper's AES-CTR parallelization experience (§IV-B2).

   Run with: dune exec examples/aes_parallelize.exe

   1. Profile the counter-mode encryption loop: no violating RAW, but
      WAW/WAR conflicts on ivec — so the loop is parallelizable once each
      thread gets a private ivec ("each thread has its own ivec and must
      compute its value before starting encryption").
   2. Simulate the naive parallelization (conflicts respected) and the
      transformed one (ivec/ks privatized), and compare. *)

module W = Workloads.Workload

let () =
  let w = Workloads.Registry.find "aes" in
  let prog = W.compile w ~scale:1_024 in
  let site = List.hd w.W.sites in
  let head_pc = site.W.locate prog in
  let result = Alchemist.Profiler.run prog in
  let profile = result.Alchemist.Profiler.profile in
  let cid = Option.get (Alchemist.Profile.cid_of_head_pc profile head_pc) in

  print_endline "=== Profile of the block loop (the paper's line 855) ===";
  print_string
    (Alchemist.Report.render_construct ~max_edges:6
       ~kinds:[ Shadow.Dependence.Raw ] profile ~cid);
  print_string
    (Alchemist.Report.render_construct ~max_edges:6
       ~kinds:[ Shadow.Dependence.War; Shadow.Dependence.Waw ]
       profile ~cid);
  let v = Alchemist.Violation.summarize profile ~cid in
  Printf.printf
    "\nviolating static deps: RAW %d (the paper found 0), WAW %d, WAR %d\n"
    v.Alchemist.Violation.raw_violating v.Alchemist.Violation.waw_violating
    v.Alchemist.Violation.war_violating;

  (* Name the conflicting variables, as the paper's prose does. *)
  (match Vm.Program.find_global prog "ivec" with
  | Some (base, _len) ->
      Printf.printf "the WAW/WAR conflicts are on %s\n"
        (Option.value ~default:"?" (Alchemist.Report.name_of_addr prog base))
  | None -> ());

  (* What-if simulation, naive vs transformed. The per-task dispatch cost
     reflects pthread overhead on 16-byte blocks (see EXPERIMENTS.md). *)
  let spawn = Option.value ~default:50 site.W.spawn_overhead in
  let naive =
    Parsim.Speedup.analyze ~cores:4 ~spawn_overhead:spawn prog ~head_pc
  in
  let transformed =
    Parsim.Speedup.analyze ~cores:4 ~spawn_overhead:spawn
      ~privatize:site.W.privatize ~reduce:site.W.reduce prog ~head_pc
  in
  Format.printf "@.=== Simulated on 4 cores ===@.";
  Format.printf "naive       : %a@." Parsim.Speedup.pp_report naive;
  Format.printf "transformed : %a@." Parsim.Speedup.pp_report transformed;
  Format.printf
    "@.privatizing ivec/ks removes every WAW/WAR constraint; the remaining@.\
     modest speedup (the paper measured 1.63x) is dispatch overhead on@.\
     16-byte-block tasks.@."
