examples/indexing_demo.ml: Cfa Indexing List Minic Printf String Vm
