examples/gzip_study.mli:
