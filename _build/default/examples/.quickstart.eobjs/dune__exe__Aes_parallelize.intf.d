examples/aes_parallelize.mli:
