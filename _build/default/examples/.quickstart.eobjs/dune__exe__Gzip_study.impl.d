examples/gzip_study.ml: Alchemist List Option Parsim Shadow Workloads
