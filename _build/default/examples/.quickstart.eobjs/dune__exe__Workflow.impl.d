examples/workflow.ml: Alchemist Driver Format Option Parsim Workloads
