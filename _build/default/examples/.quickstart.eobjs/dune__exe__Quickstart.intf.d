examples/quickstart.mli:
