examples/aes_parallelize.ml: Alchemist Format List Option Parsim Printf Shadow Vm Workloads
