examples/indexing_demo.mli:
