examples/workflow.mli:
