examples/quickstart.ml: Alchemist Format List Parsim Shadow Vm
