(* The full Alchemist workflow, automated (paper §IV-B2):

     "We first run the sequential version through Alchemist to collect
      profiles. We then look for large constructs with few violating
      static RAW dependences and try to parallelize those constructs,
      using the WAW and WAR profiles as hints for where to insert
      variable privatization."

   Run with: dune exec examples/workflow.exe

   Driver.Explore does all of it in one call: profile, rank, derive
   advice (futures / joins / privatization / hoisting / reductions), and
   simulate each viable candidate on 4 cores. We run it on mini-bzip2 and
   watch it find the per-block parallelism with its transforms — the
   rewrite the paper describes doing by hand. *)

let () =
  let w = Workloads.Registry.find "bzip2" in
  let prog = Workloads.Workload.compile w ~scale:4_000 in
  let t = Driver.Explore.explore ~fuel:200_000_000 ~cores:4 ~top:6 prog in
  Format.printf "%a@." Driver.Explore.pp t;
  match Driver.Explore.best t with
  | Some c ->
      let r = Option.get c.Driver.Explore.simulated in
      Format.printf
        "@.==> best candidate: %s, simulated %.2fx on 4 cores@.    (the \
         paper's hand parallelization of bzip2 reached 3.46x)@."
        c.Driver.Explore.entry.Alchemist.Ranking.name r.Parsim.Speedup.speedup
  | None -> print_endline "no candidate found"
