(* The paper's running example, end to end (Figs. 2, 3, 6(a), 6(b)).

   Run with: dune exec examples/gzip_study.exe

   Profiles the bundled mini-gzip, prints the flush_block RAW profile
   (Fig. 2), its WAR/WAW profile (Fig. 3), the size-vs-violations scatter
   (Fig. 6a), applies the "remove C1 and its singletons" step, and shows
   flush_block emerging as the next candidate (Fig. 6b). *)

module W = Workloads.Workload

let () =
  let w = Workloads.Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:10_000 in
  let result = Alchemist.Profiler.run prog in
  let profile = result.Alchemist.Profiler.profile in

  (* Fig. 2: the RAW profile of flush_block. Only the edges flowing into
     the checksum emitted after the final call violate Tdep > Tdur; the
     long self-RAW on input_len (the paper's line 14 -> 14, Tdep 4.5M)
     does not. *)
  let fb_cid =
    Option.get
      (Alchemist.Profile.cid_of_head_pc profile
         (Parsim.Speedup.proc_head prog "flush_block"))
  in
  print_endline "=== Fig. 2: RAW profile of flush_block ===";
  print_string
    (Alchemist.Report.render_construct ~max_edges:10
       ~kinds:[ Shadow.Dependence.Raw ] profile ~cid:fb_cid);

  (* Fig. 3: WAR and WAW. The WAW on outcnt and the WARs on flag_buf and
     last_flags are the transforms the paper discusses (privatize the
     flag buffer; hoist the last_flags reset). Note there is no WAW on
     outbuf itself: slots are disjoint, the conflict rides on the index. *)
  print_endline "\n=== Fig. 3: WAR/WAW profile of flush_block ===";
  print_string
    (Alchemist.Report.render_construct ~max_edges:10
       ~kinds:[ Shadow.Dependence.War; Shadow.Dependence.Waw ]
       profile ~cid:fb_cid);

  (* Fig. 6(a): normalized size vs violating static RAW for the top
     constructs ("a construct is a good candidate if it has many
     instructions and few violating dependences"). *)
  let entries =
    Alchemist.Ranking.rank profile
    |> List.filter (fun (e : Alchemist.Ranking.entry) -> e.name <> "Method main")
  in
  let top12 = List.filteri (fun i _ -> i < 12) entries in
  print_endline "\n=== Fig. 6(a): size vs violating static RAW ===";
  print_string (Alchemist.Scatter.render (Alchemist.Scatter.points_of_entries profile top12));

  (* Fig. 6(b): parallelizing C1 (the per-file loop) also parallelizes
     every construct that runs once per C1 instance; remove them and look
     again. flush_block is now the large low-violation construct. *)
  let c1 =
    Option.get
      (Alchemist.Profile.cid_of_head_pc profile (W.loop_in "main" ~nth:0 prog))
  in
  let remaining = Alchemist.Ranking.remove_with_singletons profile entries ~cid:c1 in
  print_endline "\n=== Fig. 6(b): after removing C1 and its singletons ===";
  print_string
    (Alchemist.Scatter.render
       (Alchemist.Scatter.points_of_entries profile
          (List.filteri (fun i _ -> i < 10) remaining)));
  print_endline
    "\nflush_block: large, two-to-four violating RAW edges, all flowing into\n\
     the post-loop checksum -- so the calls made inside the processing loop\n\
     can still be spawned as futures, exactly the paper's conclusion."
