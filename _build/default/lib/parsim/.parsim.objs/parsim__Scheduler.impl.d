lib/parsim/scheduler.ml: Array Hashtbl List Task_graph
