lib/parsim/gantt.ml: Array Buffer Bytes Char Printf Scheduler Task_graph
