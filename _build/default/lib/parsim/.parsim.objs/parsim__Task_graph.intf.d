lib/parsim/task_graph.mli: Shadow Vm
