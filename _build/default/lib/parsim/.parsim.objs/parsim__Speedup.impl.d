lib/parsim/speedup.ml: Array Format List Minic Option Printf Scheduler Task_graph Transform Vm
