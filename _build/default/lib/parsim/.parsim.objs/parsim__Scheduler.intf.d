lib/parsim/scheduler.mli: Task_graph
