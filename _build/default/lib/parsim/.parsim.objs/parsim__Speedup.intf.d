lib/parsim/speedup.mli: Format Vm
