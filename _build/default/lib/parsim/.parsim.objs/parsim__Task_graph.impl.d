lib/parsim/task_graph.ml: Array Cfa Hashtbl Indexing List Option Printf Shadow Vm
