lib/parsim/transform.mli: Vm
