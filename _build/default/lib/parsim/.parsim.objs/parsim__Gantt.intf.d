lib/parsim/gantt.mli: Scheduler Task_graph
