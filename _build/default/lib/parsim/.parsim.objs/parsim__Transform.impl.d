lib/parsim/transform.ml: List Printf Vm
