(** Task extraction for the parallel-execution simulator.

    Given the construct chosen for parallelization (by head pc), one
    instrumented sequential run yields:
    - the intervals of the construct's (outermost) dynamic instances —
      the tasks a future-based transformation would spawn;
    - every dependence whose head lies inside an instance and whose tail
      executes later, folded into scheduling constraints.

    A constraint says: the parallel-run point corresponding to a tail
    cannot execute before [start_par(head_instance) + head_offset] (the
    head executes that many instructions after its task starts). Tails
    are located either in a later instance ([CInstance]) or in the serial
    backbone segment following instance [m] ([CSegment], where segment 0
    precedes the first instance). Constraints of the same (head instance,
    location) are folded keeping the binding (maximum) value, so the
    graph stays small regardless of dynamic dependence counts.

    Privatization (the manual WAR/WAW transform of §IV-B) is modelled by
    dropping WAR/WAW constraints on the privatized address ranges before
    folding; RAW constraints always remain. *)

type instance = { idx : int; start : int; stop : int }

type constraint_location =
  | CInstance of int  (** tail inside instance [j] *)
  | CSegment of int  (** tail in the backbone after instance [m] *)

type folded_constraint = {
  head_instance : int;
  location : constraint_location;
  head_off : int;  (** head position relative to its instance start *)
  tail_off : int;
      (** tail position: relative to the tail instance's start for
          [CInstance], absolute sequential time for [CSegment] *)
  kinds : Shadow.Dependence.kind list;  (** kinds folded into this entry *)
}
(** Constraints with the same (head instance, location) are folded keeping
    the one with maximum [head_off - tail_off] — the binding stall. *)

type t = {
  total : int;  (** sequential duration (instructions) *)
  instances : instance array;  (** in sequential order *)
  constraints : folded_constraint list;
  dropped_privatized : int;  (** WAR/WAW constraints removed by transforms *)
  cross_deps : int;  (** dynamic dependences that generated constraints *)
}

val collect :
  ?fuel:int ->
  ?trace_locals:bool ->
  ?privatized:(int * int) list ->
  ?reductions:(int * int) list ->
  Vm.Program.t ->
  head_pc:int ->
  t
(** [privatized] address ranges drop WAR/WAW constraints (thread-local
    copies); [reductions] drop {e all} dependence kinds (associative
    accumulators rewritten as per-thread partials merged at the join).
    Both come from {!Transform}. @raise Invalid_argument if [head_pc]
    heads no construct. *)
