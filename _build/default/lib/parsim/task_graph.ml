type instance = { idx : int; start : int; stop : int }
type constraint_location = CInstance of int | CSegment of int

type folded_constraint = {
  head_instance : int;
  location : constraint_location;
  head_off : int;
  tail_off : int;
  kinds : Shadow.Dependence.kind list;
}

type t = {
  total : int;
  instances : instance array;
  constraints : folded_constraint list;
  dropped_privatized : int;
  cross_deps : int;
}

type fold_cell = {
  mutable head_off : int;
  mutable tail_off : int;
  mutable kinds : Shadow.Dependence.kind list;
}

let collect ?fuel ?(trace_locals = false) ?(privatized = []) ?(reductions = [])
    (prog : Vm.Program.t) ~head_pc =
  let is_proc =
    match Vm.Program.construct_at prog head_pc with
    | Some c -> c.kind = Vm.Program.CProc
    | None ->
        invalid_arg
          (Printf.sprintf "Task_graph.collect: pc %d heads no construct" head_pc)
  in
  let analysis = Cfa.Analysis.analyze prog in
  let in_ranges ranges addr =
    List.exists (fun (base, len) -> addr >= base && addr < base + len) ranges
  in
  let is_privatized = in_ranges privatized in
  let is_reduction = in_ranges reductions in
  (* Instance tracking: outermost activations of the chosen construct. *)
  let completed : (int * int) array ref = ref [||] in
  let n_completed = ref 0 in
  let depth = ref 0 in
  let cur_start = ref 0 in
  let push_completed iv =
    let arr = !completed in
    if !n_completed = Array.length arr then begin
      let bigger = Array.make (max 64 (2 * Array.length arr)) (0, 0) in
      Array.blit arr 0 bigger 0 !n_completed;
      completed := bigger
    end;
    !completed.(!n_completed) <- iv;
    incr n_completed
  in
  let on_push (c : Indexing.Node.t) =
    if c.Indexing.Node.label = head_pc then begin
      if !depth = 0 then cur_start := c.Indexing.Node.tenter;
      incr depth
    end
  in
  let pending_claim = ref false in
  let on_pop (c : Indexing.Node.t) =
    if c.Indexing.Node.label = head_pc then begin
      decr depth;
      if !depth = 0 then begin
        push_completed (!cur_start, c.Indexing.Node.texit);
        (* a procedure future is claimed where its return value is
           consumed — immediately after the call unless the value is
           discarded (a [Pop] at the return target) *)
        if is_proc then pending_claim := true
      end
    end
  in
  let tree = Indexing.Index_tree.create ~on_push ~on_pop () in
  let rules =
    Indexing.Rules.create ~ipdom:analysis.Cfa.Analysis.ipdom_of_pc ~tree
  in
  (* Locate a head timestamp: the open instance, a completed one (binary
     search over disjoint ordered intervals), or none (backbone). *)
  let instance_of_time th =
    if !depth > 0 && th >= !cur_start then Some !n_completed
    else begin
      let lo = ref 0 and hi = ref (!n_completed - 1) in
      let found = ref None in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let s, e = !completed.(mid) in
        if th < s then hi := mid - 1
        else if th >= e then lo := mid + 1
        else begin
          found := Some mid;
          lo := !hi + 1
        end
      done;
      !found
    end
  in
  let folds : (int * constraint_location, fold_cell) Hashtbl.t =
    Hashtbl.create 256
  in
  let dropped = ref 0 in
  let cross = ref 0 in
  let fold_constraint ~head_instance ~location ~head_off ~tail_off ~kind =
    incr cross;
    let key = (head_instance, location) in
    match Hashtbl.find_opt folds key with
    | Some cell ->
        if head_off - tail_off > cell.head_off - cell.tail_off then begin
          cell.head_off <- head_off;
          cell.tail_off <- tail_off
        end;
        if not (List.mem kind cell.kinds) then cell.kinds <- kind :: cell.kinds
    | None -> Hashtbl.add folds key { head_off; tail_off; kinds = [ kind ] }
  in
  let on_dep (d : Shadow.Dependence.t) =
    match d.kind with
    | _ when is_reduction d.addr -> incr dropped
    | (Shadow.Dependence.War | Shadow.Dependence.Waw)
      when is_privatized d.addr ->
        incr dropped
    | _ -> (
        let th = d.head.Shadow.Dependence.time in
        match instance_of_time th with
        | None -> () (* head in the backbone: sequentially ordered anyway *)
        | Some i ->
            let head_start =
              if i = !n_completed then !cur_start else fst !completed.(i)
            in
            let head_off = th - head_start in
            let tt = d.tail.Shadow.Dependence.time in
            if !depth > 0 && tt >= !cur_start then begin
              (* tail inside the open instance *)
              if i <> !n_completed then
                fold_constraint ~head_instance:i
                  ~location:(CInstance !n_completed)
                  ~head_off
                  ~tail_off:(tt - !cur_start)
                  ~kind:d.kind
            end
            else if i <> !n_completed then
              (* tail in the backbone after [!n_completed] instances *)
              fold_constraint ~head_instance:i ~location:(CSegment !n_completed)
                ~head_off ~tail_off:tt ~kind:d.kind)
  in
  let shadow = Shadow.Shadow_memory.create ~on_dep () in
  let enclosing () = Option.get (Indexing.Index_tree.top tree) in
  let hooks =
    {
      Vm.Hooks.on_instr =
        (fun ~pc ->
          Indexing.Rules.on_instr rules ~pc;
          if !pending_claim then begin
            pending_claim := false;
            if prog.code.(pc) <> Vm.Instr.Pop then begin
              let i = !n_completed - 1 in
              let s, e = !completed.(i) in
              fold_constraint ~head_instance:i ~location:(CSegment !n_completed)
                ~head_off:(e - s)
                ~tail_off:(Indexing.Index_tree.now tree)
                ~kind:Shadow.Dependence.Raw
            end
          end);
      on_read =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.read shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_write =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.write shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          Indexing.Rules.on_branch rules ~pc ~kind ~taken);
      on_call = (fun ~pc ~fid:_ -> Indexing.Rules.on_call rules ~entry_pc:pc);
      on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
      on_frame_release =
        (fun ~base ~size ->
          Shadow.Shadow_memory.clear_range shadow ~base ~size);
    }
  in
  let r = Vm.Machine.run_hooked ~trace_locals ?fuel hooks prog in
  Indexing.Rules.finish rules;
  let instances =
    Array.init !n_completed (fun i ->
        let start, stop = !completed.(i) in
        { idx = i; start; stop })
  in
  let constraints =
    Hashtbl.fold
      (fun (head_instance, location) (cell : fold_cell) acc ->
        {
          head_instance;
          location;
          head_off = cell.head_off;
          tail_off = cell.tail_off;
          kinds = cell.kinds;
        }
        :: acc)
      folds []
  in
  {
    total = r.Vm.Machine.instructions;
    instances;
    constraints;
    dropped_privatized = !dropped;
    cross_deps = !cross;
  }
