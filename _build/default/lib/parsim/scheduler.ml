type config = { cores : int; spawn_overhead : int; join_overhead : int }

let default_config = { cores = 4; spawn_overhead = 50; join_overhead = 25 }

type task_schedule = { task : int; core : int; start : int; finish : int }

type schedule = {
  seq_time : int;
  par_time : int;
  speedup : float;
  tasks : int;
  stall_time : int;
  busy : int array;
  placements : task_schedule array;
}

(* Per-instance stall profile: (tail_off, accumulated stall at and after
   that offset), ascending. The head of a downstream constraint executes at
   [start + off + stalls_before off]. *)
type profile = { start : int; stalls : (int * int) list }

let stalls_before (p : profile) off =
  let rec go acc = function
    | (o, s) :: rest when o <= off -> go (acc + s) rest
    | _ -> acc
  in
  go 0 p.stalls

let exec_time (p : profile) off = p.start + off + stalls_before p off

let simulate ?(config = default_config) (g : Task_graph.t) =
  let n = Array.length g.instances in
  let profiles = Array.make (max n 1) { start = 0; stalls = [] } in
  let finish = Array.make (max n 1) 0 in
  let cores_of = Array.make (max n 1) 0 in
  let free = Array.make config.cores 0 in
  let busy = Array.make config.cores 0 in
  let total_stalls = ref 0 in
  (* Constraints grouped by tail location, sorted by tail offset so stall
     accumulation within an instance/segment is processed in order. *)
  let seg_constraints = Hashtbl.create 64 in
  let inst_constraints = Hashtbl.create 64 in
  List.iter
    (fun (c : Task_graph.folded_constraint) ->
      match c.location with
      | Task_graph.CSegment m -> Hashtbl.add seg_constraints m c
      | Task_graph.CInstance j -> Hashtbl.add inst_constraints j c)
    g.constraints;
  let sorted tbl key =
    Hashtbl.find_all tbl key
    |> List.sort (fun (a : Task_graph.folded_constraint) b ->
           compare a.tail_off b.tail_off)
  in
  let backbone = ref 0 in
  let prev_end = ref 0 in
  for m = 0 to n do
    (* Segment m: backbone between instance m-1's end and instance m's
       start (or program end for m = n). *)
    let seg_start_seq = !prev_end in
    let seg_end_seq =
      if m < n then g.instances.(m).Task_graph.start else g.total
    in
    let seg_stall = ref 0 in
    List.iter
      (fun (c : Task_graph.folded_constraint) ->
        if c.head_instance < m then begin
          let arrival = !backbone + (c.tail_off - seg_start_seq) + !seg_stall in
          let required = exec_time profiles.(c.head_instance) c.head_off in
          if required > arrival then seg_stall := !seg_stall + (required - arrival)
        end)
      (sorted seg_constraints m);
    total_stalls := !total_stalls + !seg_stall;
    backbone := !backbone + (seg_end_seq - seg_start_seq) + !seg_stall;
    if m < n then begin
      (* Spawn instance m on the first free worker. *)
      backbone := !backbone + config.spawn_overhead;
      let core = ref 0 in
      for c = 1 to config.cores - 1 do
        if free.(c) < free.(!core) then core := c
      done;
      let st = max !backbone free.(!core) in
      let dur =
        g.instances.(m).Task_graph.stop - g.instances.(m).Task_graph.start
      in
      (* Internal stalls at this instance's dependence tails. *)
      let stalls = ref [] in
      let acc = ref 0 in
      List.iter
        (fun (c : Task_graph.folded_constraint) ->
          if c.head_instance < m then begin
            let arrival = st + c.tail_off + !acc in
            let required = exec_time profiles.(c.head_instance) c.head_off in
            if required > arrival then begin
              let s = required - arrival in
              acc := !acc + s;
              stalls := (c.tail_off, s) :: !stalls
            end
          end)
        (sorted inst_constraints m);
      total_stalls := !total_stalls + !acc;
      profiles.(m) <- { start = st; stalls = List.rev !stalls };
      finish.(m) <- st + dur + !acc;
      cores_of.(m) <- !core;
      free.(!core) <- finish.(m) + config.join_overhead;
      busy.(!core) <- busy.(!core) + dur;
      prev_end := g.instances.(m).Task_graph.stop
    end
  done;
  (* Join all futures at program exit. *)
  let par_time = Array.fold_left max !backbone (Array.sub finish 0 n) in
  {
    seq_time = g.total;
    par_time = max par_time 1;
    speedup = float_of_int g.total /. float_of_int (max par_time 1);
    tasks = n;
    stall_time = !total_stalls;
    busy;
    placements =
      Array.init n (fun m ->
          {
            task = m;
            core = cores_of.(m);
            start = profiles.(m).start;
            finish = finish.(m);
          });
  }
