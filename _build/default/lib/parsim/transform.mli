(** Source-level transforms modelled at simulation time.

    The paper's §IV-B parallelizations required manual WAR/WAW-breaking
    edits (thread-local [BZFILE] copies, per-thread [ivec], private
    [errors] flags, hoisted [last_flags] resets). In the simulator those
    edits correspond to dropping anti-/output-dependence constraints on
    the privatized variables. *)

val privatize_globals : Vm.Program.t -> string list -> (int * int) list
(** Address ranges of the named globals (scalars and arrays).
    @raise Invalid_argument for an unknown name. *)

val all_globals : Vm.Program.t -> string list
(** Names of all globals — "privatize everything" upper-bound ablation. *)
