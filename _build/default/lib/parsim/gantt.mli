(** ASCII Gantt rendering of a simulated schedule.

    One row per core plus one for the backbone (main thread). Each task
    occupies its [start, finish) interval scaled to the terminal width;
    stall time shows up as gaps. Used by the examples and the CLI to make
    the simulator's answer inspectable. *)

val render : ?width:int -> Task_graph.t -> Scheduler.schedule -> string
(** [width] is the number of timeline columns (default 72). *)
