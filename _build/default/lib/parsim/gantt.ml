let render ?(width = 72) (g : Task_graph.t) (s : Scheduler.schedule) =
  let buf = Buffer.create 1024 in
  let span = max 1 s.par_time in
  let col t = min (width - 1) (t * width / span) in
  let ncores =
    Array.fold_left
      (fun m (p : Scheduler.task_schedule) -> max m (p.core + 1))
      (Array.length s.busy) s.placements
  in
  (* Backbone row: busy throughout (its stalls are already folded into
     par_time); we render it as the full span for orientation. *)
  let backbone = Bytes.make width '-' in
  Buffer.add_string buf (Printf.sprintf "%-8s|%s|\n" "main" (Bytes.to_string backbone));
  for core = 0 to ncores - 1 do
    let row = Bytes.make width ' ' in
    Array.iter
      (fun (p : Scheduler.task_schedule) ->
        if p.core = core then begin
          let a = col p.start and b = max (col p.start) (col p.finish - 1) in
          for i = a to b do
            Bytes.set row i '#'
          done;
          (* label the task start with its index (single digit) *)
          Bytes.set row a
            (Char.chr (Char.code '0' + (p.task mod 10)))
        end)
      s.placements;
    Buffer.add_string buf (Printf.sprintf "core %-3d|%s|\n" core (Bytes.to_string row))
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "%d tasks over %d instrs: par %d, speedup %.2f, stalls %d (seq total %d)\n"
       (Array.length s.placements)
       span s.par_time s.speedup s.stall_time g.total);
  Buffer.contents buf
