(** Discrete scheduler for future-style parallel execution.

    Replays the task graph under the paper's execution model (Fig. 1): the
    backbone (main thread) runs serial segments in sequential order and
    spawns each instance at its sequential entry point; instances run on
    the first free of [cores] workers; every folded constraint stalls its
    tail until [start_par(head_instance) + value] — the Fig. 1 shift of
    the dependence interval by [Tdep - Tdur]. Program exit joins all
    outstanding futures.

    The simulated clock counts bytecode instructions, so
    [speedup = seq_time / par_time] is directly comparable to Table V's
    wall-clock ratios. *)

type config = {
  cores : int;  (** worker threads (the paper uses 4) *)
  spawn_overhead : int;  (** backbone instructions per spawn *)
  join_overhead : int;  (** worker instructions per task completion *)
}

val default_config : config
(** 4 cores, 50-instruction spawn, 25-instruction join. *)

type task_schedule = {
  task : int;  (** instance index *)
  core : int;
  start : int;  (** simulated start time *)
  finish : int;  (** simulated completion (including internal stalls) *)
}

type schedule = {
  seq_time : int;
  par_time : int;
  speedup : float;
  tasks : int;
  stall_time : int;  (** total backbone + worker stalls from constraints *)
  busy : int array;  (** per-core busy instructions *)
  placements : task_schedule array;  (** one per instance, in spawn order *)
}

val simulate : ?config:config -> Task_graph.t -> schedule
