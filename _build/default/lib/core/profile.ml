type edge_key = { head_pc : int; tail_pc : int; kind : Shadow.Dependence.kind }

type edge_stats = {
  mutable min_tdep : int;
  mutable count : int;
  mutable addrs : int list;
  mutable tail_internal : bool;
}

type construct_profile = {
  cid : int;
  mutable ttotal : int;
  mutable instances : int;
  edges : (edge_key, edge_stats) Hashtbl.t;
  parents : (int, int) Hashtbl.t;
  mutable nesting : int;
}

type t = {
  prog : Vm.Program.t;
  by_cid : construct_profile array;
  mutable total_instructions : int;
}

let create (prog : Vm.Program.t) =
  {
    prog;
    by_cid =
      Array.map
        (fun (c : Vm.Program.construct_info) ->
          {
            cid = c.cid;
            ttotal = 0;
            instances = 0;
            edges = Hashtbl.create 8;
            parents = Hashtbl.create 4;
            nesting = 0;
          })
        prog.constructs;
    total_instructions = 0;
  }

let get t cid = t.by_cid.(cid)

let enter t ~cid =
  let p = t.by_cid.(cid) in
  p.nesting <- p.nesting + 1

let leave t ~cid ~duration ~parent_cid =
  let p = t.by_cid.(cid) in
  p.nesting <- p.nesting - 1;
  p.instances <- p.instances + 1;
  (* §III-B: aggregate only at the outermost recursion level, otherwise
     nested activations would be double-counted. *)
  if p.nesting = 0 then p.ttotal <- p.ttotal + duration;
  Hashtbl.replace p.parents parent_cid
    (1 + Option.value ~default:0 (Hashtbl.find_opt p.parents parent_cid))

let note_addr s addr =
  if (not (List.mem addr s.addrs)) && List.length s.addrs < 3 then
    s.addrs <- addr :: s.addrs

let record_edge t ~cid ~head_pc ~tail_pc ~kind ~tdep ~addr =
  let p = t.by_cid.(cid) in
  (* the tail is happening right now: another instance of this construct
     is active iff its recursion/iteration nesting counter is nonzero *)
  let internal = p.nesting > 0 in
  let key = { head_pc; tail_pc; kind } in
  match Hashtbl.find_opt p.edges key with
  | Some s ->
      s.count <- s.count + 1;
      if tdep < s.min_tdep then s.min_tdep <- tdep;
      if internal then s.tail_internal <- true;
      note_addr s addr
  | None ->
      Hashtbl.add p.edges key
        { min_tdep = tdep; count = 1; addrs = [ addr ]; tail_internal = internal }

let mean_duration p = if p.instances = 0 then 0 else p.ttotal / p.instances

let merge a b =
  if a.prog.Vm.Program.code <> b.prog.Vm.Program.code then
    invalid_arg "Profile.merge: profiles of different programs";
  let out = create a.prog in
  out.total_instructions <- a.total_instructions + b.total_instructions;
  Array.iteri
    (fun cid (dst : construct_profile) ->
      let add (src : construct_profile) =
        dst.ttotal <- dst.ttotal + src.ttotal;
        dst.instances <- dst.instances + src.instances;
        Hashtbl.iter
          (fun key (s : edge_stats) ->
            (match Hashtbl.find_opt dst.edges key with
            | Some d ->
                d.count <- d.count + s.count;
                if s.min_tdep < d.min_tdep then d.min_tdep <- s.min_tdep;
                if s.tail_internal then d.tail_internal <- true;
                List.iter (note_addr d) s.addrs
            | None ->
                Hashtbl.add dst.edges key
                  {
                    min_tdep = s.min_tdep;
                    count = s.count;
                    addrs = s.addrs;
                    tail_internal = s.tail_internal;
                  }))
          src.edges;
        Hashtbl.iter
          (fun parent n ->
            Hashtbl.replace dst.parents parent
              (n + Option.value ~default:0 (Hashtbl.find_opt dst.parents parent)))
          src.parents
      in
      add a.by_cid.(cid);
      add b.by_cid.(cid))
    out.by_cid;
  out

let edges_sorted p =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.edges []
  |> List.sort (fun (_, a) (_, b) -> compare a.min_tdep b.min_tdep)

let cid_of_head_pc t pc =
  if pc < 0 || pc >= Array.length t.prog.cid_of_pc then None
  else
    let cid = t.prog.cid_of_pc.(pc) in
    if cid < 0 then None else Some cid
