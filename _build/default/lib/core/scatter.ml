type point = {
  cid : int;
  label : string;
  size : int;
  violations : int;
  norm_size : float;
  norm_violations : float;
}

let points_of_entries (t : Profile.t) entries =
  let total_insns = max 1 t.total_instructions in
  let total_viol = max 1 (Violation.total_violating_raw t) in
  List.mapi
    (fun i (e : Ranking.entry) ->
      {
        cid = e.cid;
        label = Printf.sprintf "C%d %s" (i + 1) e.name;
        size = e.ttotal;
        violations = e.violations.Violation.raw_violating;
        norm_size = float_of_int e.ttotal /. float_of_int total_insns;
        norm_violations =
          float_of_int e.violations.Violation.raw_violating
          /. float_of_int total_viol;
      })
    entries

let points ?(top = 12) (t : Profile.t) =
  let entries = Ranking.rank t in
  points_of_entries t (List.filteri (fun i _ -> i < top) entries)

let svg_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_svg ?(title = "size vs violating static RAW") pts =
  let w = 560 and h = 400 in
  let ml = 60 and mr = 20 and mt = 40 and mb = 50 in
  let pw = w - ml - mr and ph = h - mt - mb in
  let x v = ml + int_of_float (v *. float_of_int pw) in
  let y v = mt + ph - int_of_float (v *. float_of_int ph) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
       w h w h);
  Buffer.add_string buf
    (Printf.sprintf
       "  <text x=\"%d\" y=\"20\" font-size=\"14\" text-anchor=\"middle\">%s</text>\n"
       (w / 2) (svg_escape title));
  (* axes *)
  Buffer.add_string buf
    (Printf.sprintf
       "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n"
       ml (mt + ph) (ml + pw) (mt + ph));
  Buffer.add_string buf
    (Printf.sprintf
       "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n"
       ml mt ml (mt + ph));
  (* ticks at 0, .5, 1 *)
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf
           "  <text x=\"%d\" y=\"%d\" font-size=\"10\" \
            text-anchor=\"middle\">%.1f</text>\n"
           (x v) (mt + ph + 14) v);
      Buffer.add_string buf
        (Printf.sprintf
           "  <text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.1f</text>\n"
           (ml - 5) (y v + 3) v))
    [ 0.0; 0.5; 1.0 ];
  Buffer.add_string buf
    (Printf.sprintf
       "  <text x=\"%d\" y=\"%d\" font-size=\"11\" \
        text-anchor=\"middle\">normalized instructions</text>\n"
       (ml + (pw / 2)) (h - 12));
  Buffer.add_string buf
    (Printf.sprintf
       "  <text x=\"14\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\" \
        transform=\"rotate(-90 14 %d)\">normalized violating RAW</text>\n"
       (mt + (ph / 2)) (mt + (ph / 2)));
  (* points *)
  List.iteri
    (fun i p ->
      let cx = x p.norm_size and cy = y p.norm_violations in
      Buffer.add_string buf
        (Printf.sprintf
           "  <circle cx=\"%d\" cy=\"%d\" r=\"4\" fill=\"#246\" \
            fill-opacity=\"0.8\"/>\n"
           cx cy);
      Buffer.add_string buf
        (Printf.sprintf
           "  <text x=\"%d\" y=\"%d\" font-size=\"9\">C%d</text>\n"
           (cx + 6) (cy + 3) (i + 1)))
    pts;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render pts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-34s %10s %10s %12s %6s\n" "construct" "size" "viol"
       "norm.size" "norm.v");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-34s %10d %10d %12.4f %6.3f\n" p.label p.size
           p.violations p.norm_size p.norm_violations))
    pts;
  Buffer.contents buf
