lib/core/violation.mli: Profile
