lib/core/ranking.mli: Format Profile Violation Vm
