lib/core/profile.ml: Array Hashtbl List Option Shadow Vm
