lib/core/report.mli: Profile Shadow Vm
