lib/core/profile_io.mli: Buffer Profile Vm
