lib/core/profile_io.ml: Array Buffer Char Fun Hashtbl List Printf Profile Result Shadow String Vm
