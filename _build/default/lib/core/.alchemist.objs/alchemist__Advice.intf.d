lib/core/advice.mli: Format Profile Shadow
