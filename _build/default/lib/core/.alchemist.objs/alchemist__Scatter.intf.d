lib/core/scatter.mli: Profile Ranking
