lib/core/profile.mli: Hashtbl Shadow Vm
