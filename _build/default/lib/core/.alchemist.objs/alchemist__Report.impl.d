lib/core/report.ml: Array Buffer Format List Printf Profile Ranking Shadow String Violation Vm
