lib/core/scatter.ml: Buffer List Printf Profile Ranking String Violation
