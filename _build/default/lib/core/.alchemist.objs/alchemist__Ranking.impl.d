lib/core/ranking.ml: Array Format Hashtbl List Minic Profile Violation Vm
