lib/core/profiler.ml: Array Cfa Indexing Profile Shadow Vm
