lib/core/violation.ml: Array Hashtbl List Profile Shadow
