lib/core/advice.ml: Array Format Hashtbl List Minic Option Profile Shadow String Violation Vm
