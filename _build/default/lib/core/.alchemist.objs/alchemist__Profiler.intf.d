lib/core/profiler.mli: Profile Vm
