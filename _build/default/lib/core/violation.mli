(** Classification of profiled edges against the [Tdep > Tdur] criterion.

    An edge {e violates} when its minimum distance is at most the
    construct's per-instance duration: running the construct as a future
    would reach the tail before the head completes (Fig. 1's
    [Tdep - Tdur <= 0]). RAW violations gate parallelization outright;
    WAR/WAW violations call for privatization or hoisting transforms. *)

type summary = {
  cid : int;
  raw_violating : int;  (** static RAW edges with [min_tdep <= Tdur] *)
  war_violating : int;
  waw_violating : int;
  raw_total : int;
  war_total : int;
  waw_total : int;
}

val is_violating : Profile.construct_profile -> Profile.edge_stats -> bool
(** Against the construct's mean instance duration. *)

val summarize : Profile.t -> cid:int -> summary

val violating_edges :
  Profile.t -> cid:int ->
  (Profile.edge_key * Profile.edge_stats) list
(** Edges failing [Tdep > Tdur], ascending by distance. *)

val total_violating_raw : Profile.t -> int
(** Sum of static violating RAW edges over all constructs — Fig. 6's
    normalization denominator. *)
