(** Fig. 6 data: per-construct (size, violating-static-RAW) points.

    Size is normalized to the program's total executed instructions;
    violating RAW counts to the total violating static RAW edges of the
    profiled execution — exactly the paper's normalization. *)

type point = {
  cid : int;
  label : string;
  size : int;  (** Ttotal, instructions *)
  violations : int;  (** violating static RAW edges *)
  norm_size : float;
  norm_violations : float;
}

val points : ?top:int -> Profile.t -> point list
(** Top constructs by size (default 12), descending — the paper labels
    these C1, C2, ... in Fig. 6. *)

val points_of_entries : Profile.t -> Ranking.entry list -> point list
(** The same, from a caller-filtered ranking (used for Fig. 6(b) after
    {!Ranking.remove_with_singletons}). *)

val render : point list -> string
(** Plain-text table: label, norm. size, norm. violations, raw numbers. *)

val to_svg : ?title:string -> point list -> string
(** A self-contained SVG scatter plot in the paper's Fig. 6 layout:
    x = normalized instruction count, y = normalized violating static RAW
    dependences, one labelled dot per construct. *)
