(* Mini-C re-implementation of the dependence structure of 130.li (XLisp,
   SPEC95), paper §IV-B1, Fig. 6(d).

   XLisp's batch mode: [xlload] parses a file into cons cells, then the
   batch loop in [main] evaluates each loaded program. Per the paper:
   - C1 is Method [xlload]: called once before the batch loop (init.lsp)
     and once per iteration, so it executes slightly more instructions
     than the loop itself;
   - C2 is the batch loop — the construct prior work parallelized.

   The cons heap is the shared substrate: [xlload] resets the allocation
   cursor to a per-file region (a plain write, so iterations exchange no
   RAW through it — only privatizable WAW/WAR), mirroring XLisp's
   per-file workspace behaviour that made speculative parallelization of
   the batch loop viable. Results land in per-iteration slots. *)

let source ~scale =
  Printf.sprintf
    {|// mini-lisp: cons-heap s-expression builder and evaluator.
int car_[16384];
int cdr_[16384];
int tag_[16384];
int val_[16384];
int hp;
int hp_base;
int result_buf[256];
int load_count;
int seed;
int nfiles;
int depth;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// tag 0 = number, 1 = cons cell whose car is an op code (0 add, 1 mul,
// 2 sub) and cdr a list of operands.
int mknum(int v) {
  tag_[hp & 16383] = 0;
  val_[hp & 16383] = v;
  int c = hp;
  hp++;
  return c;
}

int cons(int a, int d) {
  tag_[hp & 16383] = 1;
  car_[hp & 16383] = a;
  cdr_[hp & 16383] = d;
  int c = hp;
  hp++;
  return c;
}

// Build a random expression tree of the given depth ("parsing a file").
int build_expr(int d) {
  if (d == 0) {
    return mknum(rnd(100));
  }
  int op = rnd(3);
  int args = -1;
  int n = 2 + rnd(2);
  for (int i = 0; i < n; i++) {
    args = cons(build_expr(d - 1), args);
  }
  return cons(op, args);
}

// Load one "file": reset the workspace cursor for this file and parse.
int xlload(int fid) {
  hp = (fid & 31) * 500;
  hp_base = hp;
  load_count++;
  return build_expr(depth);
}

// Evaluate an expression tree.
int xleval(int c) {
  if (tag_[c & 16383] == 0) {
    return val_[c & 16383];
  }
  int op = car_[c & 16383];
  int args = cdr_[c & 16383];
  int acc;
  if (op == 1) {
    acc = 1;
  } else {
    acc = 0;
  }
  while (args != -1) {
    int v = xleval(car_[args & 16383]);
    if (op == 0) {
      acc += v;
    } else if (op == 1) {
      acc = (acc * v) & 0xffff;
    } else {
      acc -= v;
    }
    args = cdr_[args & 16383];
  }
  return acc;
}

int main() {
  seed = 2024;
  nfiles = %d;
  depth = 5;
  // initial load, as xlisp loads init.lsp before entering batch mode
  int init_expr = xlload(99);
  result_buf[255] = xleval(init_expr);
  // C2: the batch loop over input files.
  for (int f = 0; f < nfiles; f++) {
    int e = xlload(f);
    result_buf[f & 255] = xleval(e);
  }
  print(load_count);
  print(result_buf[0]);
  return 0;
}
|}
    scale

let workload =
  {
    Workload.name = "130.li";
    description = "XLisp-style cons-heap loader and evaluator in batch mode";
    source;
    default_scale = 300;
    test_scale = 30;
    sites = [];
    prior_work_site =
      Some
        {
          Workload.site_name = "batch loop in main (C2 of Fig. 6d)";
          locate = Workload.loop_in "main" ~nth:0;
          privatize = [ "car_"; "cdr_"; "tag_"; "val_"; "hp"; "hp_base" ];
          reduce = [ "seed"; "load_count" ];
          spawn_overhead = None;
        };
  }
