(* Mini-C re-implementation of the dependence structure of gzip-1.3.5
   (single-file version), the paper's running example (Figs. 2, 3, 6a, 6b).

   Structure mirrored from the paper:
   - [main] holds the per-file loop (the paper's "Loop (main,3404)", C1);
   - [zip] processes one literal at a time, maintaining [flag_buf] /
     [last_flags] / [freq], and calls [flush_block] when the pending
     buffer fills, plus once more after the loop, then emits a checksum
     that reads [outcnt] and the block length;
   - [flush_block] records the current flag, bumps [input_len] (the
     line-14 self-RAW whose distance exceeds the construct duration),
     encodes pending literals into bits via [send_bits] (the
     [bi_buf]/[bi_valid]/[outcnt] state of the paper's lines 19-22),
     resets [last_flags] (the WAR the paper suggests hoisting), flushes
     trailing bits (the line-28 write), and publishes the block length
     (the analog of the line-29 return value the paper's first boxed
     violation flows through).

   Expected profile shape (verified in test/test_workloads.ml and bench
   fig2/fig3):
   - Method flush_block: exactly two violating static RAW edges, both
     exercised only by the call after the loop — block_len_out -> checksum
     and outcnt -> checksum — plus non-violating long-distance self-RAWs
     on input_len and outcnt;
   - WAW on outcnt and WARs on flag_buf / last_flags (Fig. 3's box);
   - no WAW on outbuf itself (disjoint slots — the conflict is carried by
     the index, as the paper observes);
   - the zip processing loop keeps several violating RAW chains (freq,
     strstart, prev_length, last_flags), so after Fig. 6(b)'s removal it
     stays ranked but flush_block is the largest LOW-violation construct. *)

let source ~scale =
  Printf.sprintf
    {|// mini-gzip: per-file driver, literal processor, block flusher.
int window[4096];
int flag_buf[512];
int outbuf[8192];
int freq[64];
int prev[4096];
int outcnt;
int bi_buf;
int bi_valid;
int last_flags;
int input_len;
int block_len_out;
int strstart;
int prev_length;
int match_start;
int seed;
int nin;
int nfiles;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Append [len] low bits of [value] to the bit buffer, flushing whole
// bytes into outbuf (gzip's send_bits / bi_windup pair).
void send_bits(int value, int len) {
  bi_buf = bi_buf | ((value & ((1 << len) - 1)) << bi_valid);
  bi_valid += len;
  while (bi_valid > 7) {
    outbuf[outcnt & 8191] = bi_buf & 255;
    outcnt++;
    bi_buf = bi_buf >> 8;
    bi_valid -= 8;
  }
}

// Encode the pending block of [len] literals starting at window[start].
void flush_block(int start, int len) {
  flag_buf[last_flags & 511] = 1;
  input_len += len;
  int i = 0;
  if (len > 0) {
    do {
      int flag = flag_buf[i & 511];
      int lit = window[(start + i) & 4095];
      if (flag & 1) {
        send_bits(freq[lit & 63] & 15, 5);
        send_bits(lit & 255, 8);
      } else {
        send_bits(lit & 127, 7);
      }
      i++;
    } while (i < len);
  }
  last_flags = 0;
  outbuf[outcnt & 8191] = bi_buf & 255;
  outcnt++;
  bi_buf = 0;
  bi_valid = 0;
  block_len_out = len;
}

// Compress one file's worth of literals (gzip's zip/deflate).
int zip() {
  int start = 0;
  int pending = 0;
  int processed = 0;
  while (processed < nin) {
    int lit = window[processed & 4095];
    freq[lit & 63] += 1;
    // longest_match, unrolled hash-chain probe: gzip spends most of its
    // per-literal time here, which is why the paper's inter-flush
    // distances (Tdep ~4.5M) dwarf flush_block's duration (~321K/call)
    int h = lit & 4095;
    h = ((h * 33) + window[(processed + 1) & 4095]) & 4095;
    h = ((h * 33) + window[(processed + 2) & 4095]) & 4095;
    h = ((h * 33) + window[(processed + 3) & 4095]) & 4095;
    int cand = prev[h];
    int score = 0;
    score += window[cand & 4095] == lit;
    score += window[(cand + 1) & 4095] == window[(processed + 1) & 4095];
    score += window[(cand + 2) & 4095] == window[(processed + 2) & 4095];
    score += window[(cand + 3) & 4095] == window[(processed + 3) & 4095];
    score += window[(cand + 4) & 4095] == window[(processed + 4) & 4095];
    score += window[(cand + 5) & 4095] == window[(processed + 5) & 4095];
    score += window[(cand + 6) & 4095] == window[(processed + 6) & 4095];
    score += window[(cand + 7) & 4095] == window[(processed + 7) & 4095];
    prev[h] = strstart;
    prev[strstart & 4095] = match_start;
    if (score > 1) {
      match_start = strstart - prev_length;
      prev_length = score & 7;
    } else {
      prev_length = 1;
    }
    strstart++;
    flag_buf[pending & 511] = lit & 1;
    pending++;
    last_flags = pending;
    processed++;
    if (pending >= 200) {
      flush_block(start, pending);
      start = processed;
      pending = 0;
    }
  }
  flush_block(start, pending);
  int checksum = block_len_out;
  outbuf[outcnt & 8191] = checksum & 255;
  outcnt++;
  return checksum;
}

int main() {
  seed = 12345;
  // leave a 150-literal tail so the final flush_block call is separated
  // from the last in-loop call by real work, as a real file's tail is
  nin = ((%d / 200) * 200) + 150;
  nfiles = %d;
  int total = 0;
  for (int f = 0; f < nfiles; f++) {
    for (int i = 0; i < 4096; i++) {
      window[i] = rnd(256);
    }
    total += zip();
  }
  print(total);
  print(outcnt);
  return 0;
}
|}
    scale 1

let workload =
  {
    Workload.name = "gzip-1.3.5";
    description =
      "literal compression with block flushing; the paper's running example";
    source;
    default_scale = 20_000;
    test_scale = 2_000;
    sites =
      [
        {
          Workload.site_name = "per-file loop in main";
          locate = Workload.loop_in "main" ~nth:0;
          privatize = [];
          reduce = [];
          spawn_overhead = None;
        };
        {
          Workload.site_name = "flush_block";
          locate = Workload.proc "flush_block";
          privatize = [ "flag_buf"; "last_flags" ];
          reduce = [];
          spawn_overhead = None;
        };
      ];
    prior_work_site =
      Some
        {
          Workload.site_name = "per-file loop in main (C1 of Fig. 6a)";
          locate = Workload.loop_in "main" ~nth:0;
          privatize = [];
          reduce = [];
          spawn_overhead = None;
        };
  }
