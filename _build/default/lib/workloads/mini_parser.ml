(* Mini-C re-implementation of the dependence structure of SPEC 197.parser
   (paper §IV-B1, Fig. 6(c)).

   Fig. 6(c)'s three named constructs:
   - C1: the loop in [read_dictionary] — the largest construct (sorted
     dictionary insertion is quadratic), with very few violating RAW
     chains, all through the serial "file reader" state ([fpos], [seed],
     [dict_count]). The paper could not parallelize it because the real
     one is I/O bound; our EXPERIMENTS.md notes that I/O-boundness is
     outside the simulation model, and we reproduce the ranking instead;
   - C2: [read_entry] — same size profile as C1, one call per entry;
   - C3: the sentence-processing loop (the paper's loop at line 1302,
     which prior work parallelized): per-sentence tokenize + dictionary
     lookups + an O(len^2) linkage pass; its cross-iteration chains are
     the sentence reader and the statistics accumulators. *)

let source ~scale =
  Printf.sprintf
    {|// mini-parser: dictionary reader + sentence linkage loop.
int dict_words[8192];
int dict_count;
int fpos;
int sent_buf[64];
int stats_matched;
int stats_unmatched;
int stats_links;
int sentences_done;
int seed;
int ndict;
int nsent;
int sent_len;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Read one word from the "dictionary file" (serial reader chain).
int read_word() {
  fpos++;
  return rnd(99991) + 1;
}

// Insert one entry into the sorted dictionary (197.parser keeps its
// dictionary ordered; insertion shifts the tail).
int read_entry() {
  int w = read_word();
  int i = dict_count;
  while (i > 0 && dict_words[i - 1] > w) {
    dict_words[i] = dict_words[i - 1];
    i--;
  }
  dict_words[i] = w;
  dict_count++;
  return w;
}

// C1: the dictionary-reading loop.
void read_dictionary() {
  for (int k = 0; k < ndict; k++) {
    read_entry();
  }
}

// Binary search over the sorted dictionary (read-only at parse time).
int lookup(int w) {
  int lo = 0;
  int hi = dict_count - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (dict_words[mid] == w) {
      return mid;
    }
    if (dict_words[mid] < w) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

// Parse one sentence: fill the token buffer, look every word up, then
// run the O(len^2) linkage compatibility pass.
void parse_sentence() {
  for (int i = 0; i < sent_len; i++) {
    sent_buf[i & 63] = rnd(99991) + 1;
  }
  int found = 0;
  for (int i = 0; i < sent_len; i++) {
    if (lookup(sent_buf[i & 63]) >= 0) {
      found++;
    }
  }
  int links = 0;
  for (int i = 0; i < sent_len; i++) {
    for (int j = i + 1; j < sent_len; j++) {
      int a = sent_buf[i & 63];
      int b = sent_buf[j & 63];
      if (((a ^ b) & 7) == 0) {
        links++;
      }
    }
  }
  stats_matched += found;
  stats_unmatched += sent_len - found;
  stats_links += links;
  sentences_done++;
}

int main() {
  seed = 777;
  ndict = %d;
  nsent = %d;
  sent_len = 24;
  read_dictionary();
  // C3: the batch sentence loop (the paper's loop at line 1302).
  for (int s = 0; s < nsent; s++) {
    parse_sentence();
  }
  print(stats_matched);
  print(stats_links);
  print(dict_count);
  return 0;
}
|}
    scale (scale / 8)

let workload =
  {
    Workload.name = "197.parser";
    description = "dictionary reader + per-sentence linkage loop (SPEC95)";
    source;
    default_scale = 1_600;
    test_scale = 240;
    sites = [];
    prior_work_site =
      Some
        {
          Workload.site_name = "sentence loop in main (line 1302-analog, C3)";
          locate = Workload.loop_in "main" ~nth:0;
          privatize = [ "sent_buf" ];
          reduce =
            [
              "stats_matched";
              "stats_unmatched";
              "stats_links";
              "sentences_done";
              "seed";
            ];
          spawn_overhead = None;
        };
  }
