(* Mini-C model of the dependence structure of sequential Delaunay mesh
   refinement (paper §IV-B1, the negative result).

   The paper ran Alchemist on the sequential refinement algorithm and
   found that its computation-intensive constructs carry {e hundreds} of
   violating static RAW dependences (720 on the largest), confirming the
   known difficulty of parallelizing it without optimistic abstractions
   [Kulkarni et al.]. The essential structure is a shared worklist of bad
   triangles plus a mesh whose cavity updates touch the neighborhood of
   each processed element: every iteration pops work, reads and rewrites
   shared mesh state along many distinct code paths, and pushes new work.

   To surface {e many distinct static} edges (not just hot dynamic ones),
   the cavity-update cases are written out explicitly (three neighbor
   slots x split/flip cases), as the real implementation's specialized
   cavity routines are. *)

let source ~scale =
  Printf.sprintf
    {|// mini-delaunay: worklist-driven mesh refinement on shared state.
int wl[8192];
int wl_tail;
int quality[4096];
int n0[4096];
int n1[4096];
int n2[4096];
int alive[4096];
int ntris;
int splits;
int flips;
int seed;
int budget;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

void push_work(int t) {
  wl[wl_tail & 8191] = t;
  wl_tail++;
}

// Allocate a new triangle adjacent to t.
int new_tri(int t, int q) {
  int c = ntris & 4095;
  ntris++;
  quality[c] = q;
  alive[c] = 1;
  n0[c] = t;
  n1[c] = rnd(ntris) & 4095;
  n2[c] = rnd(ntris) & 4095;
  return c;
}

// Split a bad triangle: retire it, create two children, fix the
// neighborhood, requeue suspect neighbors.
void split_tri(int t) {
  alive[t] = 0;
  splits++;
  int a = new_tri(t, (quality[t] + rnd(40)) & 63);
  int b = new_tri(t, (quality[t] + rnd(40)) & 63);
  // new triangles must themselves be checked for badness
  push_work(a);
  push_work(b);
  // rewire each neighbor slot and requeue it if its quality degraded
  int m0 = n0[t];
  if (alive[m0 & 4095] == 1) {
    n0[m0 & 4095] = a;
    quality[m0 & 4095] -= 1;
    if (quality[m0 & 4095] < 20) {
      push_work(m0 & 4095);
    }
  }
  int m1 = n1[t];
  if (alive[m1 & 4095] == 1) {
    n1[m1 & 4095] = b;
    quality[m1 & 4095] -= 2;
    if (quality[m1 & 4095] < 20) {
      push_work(m1 & 4095);
    }
  }
  int m2 = n2[t];
  if (alive[m2 & 4095] == 1) {
    n2[m2 & 4095] = a;
    quality[m2 & 4095] -= 1;
    if (quality[m2 & 4095] < 20) {
      push_work(m2 & 4095);
    }
  }
}

// Edge flip: improve two adjacent triangles in place.
void flip_tris(int t) {
  flips++;
  int m = n0[t];
  int qa = quality[t];
  int qb = quality[m & 4095];
  quality[t] = ((qa + qb) / 2 + 3) & 63;
  quality[m & 4095] = ((qa + qb) / 2 + 2) & 63;
  int tmp = n1[t];
  n1[t] = n2[m & 4095];
  n2[m & 4095] = tmp;
  // the partner's cavity changed: it must be re-examined
  push_work(m & 4095);
}

int main() {
  seed = 60606;
  budget = %d;
  // initial mesh
  for (int i = 0; i < 64; i++) {
    new_tri(i, rnd(64));
  }
  for (int i = 0; i < 64; i++) {
    push_work(i);
  }
  // the refinement loop: the hot construct with many violating RAWs.
  // The worklist is a stack (as in real refinement codes), so elements
  // pushed by a split are reprocessed immediately — the adjacent-
  // iteration dependences Alchemist reports as violating.
  int steps = 0;
  while (steps < budget) {
    if (wl_tail == 0) {
      // worklist drained: re-scan the mesh for live triangles, as
      // refinement drivers re-scan for remaining bad elements
      for (int i = 0; i < 2048; i++) {
        if (alive[i] == 1) {
          push_work(i);
        }
      }
      if (wl_tail == 0) {
        break;
      }
    }
    wl_tail--;
    int t = wl[wl_tail & 8191] & 4095;
    steps++;
    if (alive[t] == 1) {
      int q = quality[t];
      if (q < 16) {
        split_tri(t);
      } else if (q < 32) {
        flip_tris(t);
        if (quality[t] < 16) {
          push_work(t);
        }
      } else if (q < 48) {
        // local smoothing: average quality with a live neighbor
        int mA = n1[t] & 4095;
        if (alive[mA] == 1) {
          quality[t] = ((quality[t] + quality[mA] + 1) / 2) & 63;
          n2[t] = mA;
          if (quality[mA] > quality[t]) {
            quality[mA] -= 1;
            push_work(mA);
          }
        }
      } else {
        // boundary relaxation: rotate the neighbor ring
        int tmp = n0[t];
        n0[t] = n1[t];
        n1[t] = n2[t];
        n2[t] = tmp;
        quality[t] -= 3;
        push_work(t);
      }
    }
  }
  print(steps);
  print(splits);
  print(flips);
  print(ntris);
  return 0;
}
|}
    scale

let workload =
  {
    Workload.name = "delaunay";
    description =
      "worklist-driven mesh refinement; the paper's hard-to-parallelize case";
    source;
    default_scale = 20_000;
    test_scale = 2_000;
    sites = [];
    prior_work_site =
      Some
        {
          Workload.site_name = "refinement loop in main";
          locate = Workload.loop_in "main" ~nth:2;
          privatize = [];
          reduce = [];
          spawn_overhead = None;
        };
  }
