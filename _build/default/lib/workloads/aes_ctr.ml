(* Mini-C re-implementation of the dependence structure of AES counter
   mode as extracted from OpenSSL (paper §IV-B2, Tables IV and V).

   The paper's profile of the main block loop found no violating static
   RAW dependences, with the WAW/WAR conflicts concentrated on [ivec]
   (the counter block). That shape requires the counter update to be a
   recompute-from-base {e write} rather than a read-modify-write — which
   is also what makes the per-thread-ivec transform of the parallel
   version sound ("each thread has its own ivec and must compute its
   value before starting encryption"). We mirror that: each iteration
   derives [ivec] from [base_ctr] and the block index (writes only),
   encrypts it with a reduced-round SPN block cipher (an 8-round
   substitution-permutation network standing in for AES-128 — same
   table-lookup + key-mix structure, see DESIGN.md), and XORs the
   keystream into disjoint ciphertext slots.

   The cipher state lives in scalar locals (registers), as a compiled
   AES would keep it. *)

let source ~scale =
  Printf.sprintf
    {|// mini aes-ctr: reduced-round SPN block cipher in counter mode.
int sbox[256];
int rkey[40];
int ivec[4];
int base_ctr[4];
int pt[16384];
int ct[16384];
int ks[4];
int nblocks;
int seed;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Key schedule and S-box setup (done once).
void key_setup(int key0, int key1) {
  for (int i = 0; i < 256; i++) {
    sbox[i] = ((i * 167) + 13) & 255;
  }
  int k = key0;
  for (int r = 0; r < 40; r++) {
    k = (k * 31 + key1 + r) & 0xffffff;
    rkey[r] = k;
  }
}

// Encrypt the counter block in ivec into the keystream ks (the
// AES_encrypt analog): 8 rounds of S-box substitution, word rotation
// and round-key mixing over four 24-bit words.
void block_encrypt() {
  int s0 = ivec[0];
  int s1 = ivec[1];
  int s2 = ivec[2];
  int s3 = ivec[3];
  for (int r = 0; r < 8; r++) {
    int t0 = (sbox[s0 & 255] | (sbox[(s0 >> 8) & 255] << 8) | (sbox[(s0 >> 16) & 255] << 16)) ^ rkey[r * 4];
    int t1 = (sbox[s1 & 255] | (sbox[(s1 >> 8) & 255] << 8) | (sbox[(s1 >> 16) & 255] << 16)) ^ rkey[r * 4 + 1];
    int t2 = (sbox[s2 & 255] | (sbox[(s2 >> 8) & 255] << 8) | (sbox[(s2 >> 16) & 255] << 16)) ^ rkey[r * 4 + 2];
    int t3 = (sbox[s3 & 255] | (sbox[(s3 >> 8) & 255] << 8) | (sbox[(s3 >> 16) & 255] << 16)) ^ rkey[r * 4 + 3];
    s0 = (t0 ^ (t1 << 3) ^ (t3 >> 2)) & 0xffffff;
    s1 = (t1 ^ (t2 << 3) ^ (t0 >> 2)) & 0xffffff;
    s2 = (t2 ^ (t3 << 3) ^ (t1 >> 2)) & 0xffffff;
    s3 = (t3 ^ (t0 << 3) ^ (t2 >> 2)) & 0xffffff;
  }
  ks[0] = s0;
  ks[1] = s1;
  ks[2] = s2;
  ks[3] = s3;
}

// AES_ctr128_encrypt analog: the main loop over input blocks.
void ctr_encrypt() {
  for (int i = 0; i < nblocks; i++) {
    // derive the counter block for block i (write-only: the paper's
    // WAW/WAR-but-not-RAW conflict on ivec)
    ivec[0] = base_ctr[0];
    ivec[1] = base_ctr[1];
    ivec[2] = base_ctr[2];
    ivec[3] = (base_ctr[3] + i) & 0xffffff;
    block_encrypt();
    ct[(i * 4) & 16383] = pt[(i * 4) & 16383] ^ ks[0];
    ct[(i * 4 + 1) & 16383] = pt[(i * 4 + 1) & 16383] ^ ks[1];
    ct[(i * 4 + 2) & 16383] = pt[(i * 4 + 2) & 16383] ^ ks[2];
    ct[(i * 4 + 3) & 16383] = pt[(i * 4 + 3) & 16383] ^ ks[3];
  }
}

int main() {
  seed = 90210;
  nblocks = %d;
  key_setup(0x13579b, 0x2468ac);
  base_ctr[0] = 0x111111;
  base_ctr[1] = 0x222222;
  base_ctr[2] = 0x333333;
  base_ctr[3] = 0;
  for (int i = 0; i < 16384; i++) {
    pt[i] = rnd(0x1000000);
  }
  ctr_encrypt();
  // verify against the first block only: its keystream was produced at
  // the very start of the run, so this read does not manufacture a
  // short-distance RAW on the block loop (the paper profiled none)
  int check = ct[0] ^ ct[1] ^ ct[2] ^ ct[3];
  print(check);
  return 0;
}
|}
    scale

let workload =
  {
    Workload.name = "aes";
    description = "reduced-round SPN block cipher in counter mode (OpenSSL AES-CTR analog)";
    source;
    default_scale = 2_048;
    test_scale = 128;
    sites =
      [
        {
          Workload.site_name = "block loop in ctr_encrypt (855-analog)";
          locate = Workload.loop_in "ctr_encrypt" ~nth:0;
          privatize = [ "ivec"; "ks" ];
          reduce = [];
          spawn_overhead = Some 1200;
        };
      ];
    prior_work_site = None;
  }
