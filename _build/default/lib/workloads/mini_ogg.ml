(* Mini-C re-implementation of the dependence structure of oggenc-1.0.1
   (paper §IV-B2, Tables IV and V).

   The paper's profile of the main loop over input files found 6
   violating static RAW dependences, among them the [errors] flag and a
   running count of samples read; the parallel version gave every thread
   a local errors flag and sample count and achieved 3.95x on 4 files /
   4 threads. We mirror that: a per-file encode (windowed MDCT-style
   transform + quantization, the heavy part), shared [errors] /
   [samples_read] / [packets_out] counters chaining across files, and a
   serial PRNG standing in for the WAV reader. *)

let source ~scale =
  Printf.sprintf
    {|// mini-oggenc: per-file windowed transform encoder.
int samples[4096];
int window_lut[64];
int spectrum[64];
int outbuf[16384];
int outcnt;
int errors;
int samples_read;
int packets_out;
int granulepos;
int seed;
int nfiles;
int fsamples;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Read one file's samples from the "WAV reader" (serial source).
int read_wav(int f) {
  int n = 0;
  for (int i = 0; i < fsamples; i++) {
    samples[i & 4095] = rnd(65536) - 32768;
    n++;
  }
  samples_read += n;
  return n;
}

// Encode one frame of 64 samples: windowed transform + quantization.
void encode_frame(int base) {
  for (int k = 0; k < 64; k++) {
    int acc = 0;
    for (int j = 0; j < 64; j++) {
      int s = samples[(base + j) & 4095];
      acc += s * window_lut[(k * j) & 63];
    }
    spectrum[k] = acc >> 6;
  }
  int nz = 0;
  for (int k = 0; k < 64; k++) {
    int q = spectrum[k] >> 9;
    if (q != 0) {
      outbuf[outcnt & 16383] = q & 255;
      outcnt++;
      nz++;
    }
  }
  if (nz == 0) {
    errors = errors | 1;
  }
  granulepos += 64;
  packets_out++;
}

// Encode one file.
void encode_file(int f) {
  int got = read_wav(f);
  if (got <= 0) {
    errors = errors | 2;
    return;
  }
  int frames = got / 64;
  for (int fr = 0; fr < frames; fr++) {
    encode_frame(fr * 64);
  }
}

int main() {
  seed = 31337;
  nfiles = %d;
  fsamples = %d;
  for (int i = 0; i < 64; i++) {
    window_lut[i] = ((i * 37) %% 127) - 63;
  }
  // the paper's main loop over the files being encoded (line 802-analog)
  for (int f = 0; f < nfiles; f++) {
    encode_file(f);
  }
  print(outcnt);
  print(samples_read);
  print(errors);
  return 0;
}
|}
    4 scale

let workload =
  {
    Workload.name = "ogg";
    description = "oggenc-style per-file windowed transform encoder";
    source;
    default_scale = 1_600;
    test_scale = 256;
    sites =
      [
        {
          Workload.site_name = "loop over files in main (802-analog)";
          locate = Workload.loop_in "main" ~nth:1;
          privatize = [ "errors"; "samples"; "spectrum" ];
          reduce =
            [ "samples_read"; "packets_out"; "granulepos"; "outcnt"; "seed" ];
          spawn_overhead = None;
        };
      ];
    prior_work_site = None;
  }
