(** The benchmark registry: the eight Table III rows. *)

val all : Workload.t list
(** In Table III order: 197.parser, bzip2, gzip-1.3.5, 130.li, ogg, aes,
    par2, delaunay. *)

val find : string -> Workload.t
(** Look up by Table III name. @raise Not_found for unknown names. *)

val names : string list
