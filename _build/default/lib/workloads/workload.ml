type site = {
  site_name : string;
  locate : Vm.Program.t -> int;
  privatize : string list;
  reduce : string list;
  spawn_overhead : int option;
}

type t = {
  name : string;
  description : string;
  source : scale:int -> string;
  default_scale : int;
  test_scale : int;
  sites : site list;
  prior_work_site : site option;
}

let loop_at line prog = Parsim.Speedup.loop_head_at_line prog line

let loop_in fname ~nth (prog : Vm.Program.t) =
  let f =
    match Vm.Program.find_func prog fname with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Workload.loop_in: no function %s" fname)
  in
  let loops =
    Array.to_list prog.constructs
    |> List.filter (fun (c : Vm.Program.construct_info) ->
           c.kind = Vm.Program.CLoop && c.fid = f.fid)
    |> List.sort (fun (a : Vm.Program.construct_info) b ->
           compare a.head_pc b.head_pc)
  in
  match List.nth_opt loops nth with
  | Some c -> c.head_pc
  | None ->
      invalid_arg
        (Printf.sprintf "Workload.loop_in: %s has %d loops, wanted #%d" fname
           (List.length loops) nth)

let proc name prog = Parsim.Speedup.proc_head prog name

let compile t ~scale =
  match Minic.Frontend.load_result (t.source ~scale) with
  | Ok ast -> Vm.Compile.compile ast
  | Error msg ->
      invalid_arg (Printf.sprintf "workload %s does not compile: %s" t.name msg)

let loc t = Minic.Frontend.count_loc (t.source ~scale:t.default_scale)
