(** The benchmark-suite interface.

    Each workload is a Mini-C re-implementation of the dependence
    structure of one Table III benchmark (see DESIGN.md §2 for the
    substitution argument). A workload provides its source at a given
    [scale] (input size), the parallelization {e sites} the paper's §IV-B
    studied (with the privatizations its authors applied), and the
    construct the prior-work comparison of §IV-B1 parallelized, if any. *)

type site = {
  site_name : string;  (** e.g. ["loop over files in main"] *)
  locate : Vm.Program.t -> int;  (** head pc of the construct *)
  privatize : string list;  (** globals privatized by the manual transform *)
  reduce : string list;  (** accumulators rewritten as reductions *)
  spawn_overhead : int option;
      (** per-task dispatch cost override for the Table V simulation;
          [None] uses the scheduler default. Set only for aes, whose
          16-byte-block tasks make pthread dispatch the first-order cost
          (the paper's modest 1.63x) — see EXPERIMENTS.md. *)
}

type t = {
  name : string;  (** Table III row name, e.g. ["gzip-1.3.5"] *)
  description : string;
  source : scale:int -> string;  (** Mini-C source at an input size *)
  default_scale : int;  (** used by Table III / Fig. 6 reproductions *)
  test_scale : int;  (** small scale for unit tests *)
  sites : site list;  (** Table IV rows (may be empty) *)
  prior_work_site : site option;  (** §IV-B1 comparison construct *)
}

val loop_at : int -> Vm.Program.t -> int
(** Site locator: loop construct headed at a source line. *)

val loop_in : string -> nth:int -> Vm.Program.t -> int
(** Site locator: the [nth] loop (0-based, in code order, outer loops
    first) of the named function — robust against template reflow. *)

val proc : string -> Vm.Program.t -> int
(** Site locator: procedure construct by name. *)

val compile : t -> scale:int -> Vm.Program.t
(** Frontend + compiler, with workload-qualified error messages. *)

val loc : t -> int
(** Non-comment source lines at the default scale (Table III LOC column). *)
