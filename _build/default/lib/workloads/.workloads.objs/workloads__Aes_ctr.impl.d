lib/workloads/aes_ctr.ml: Printf Workload
