lib/workloads/mini_parser.ml: Printf Workload
