lib/workloads/mini_gzip.ml: Printf Workload
