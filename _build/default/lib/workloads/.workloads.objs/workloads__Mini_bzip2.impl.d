lib/workloads/mini_bzip2.ml: Printf Workload
