lib/workloads/registry.ml: Aes_ctr Delaunay List Mini_bzip2 Mini_gzip Mini_lisp Mini_ogg Mini_parser Par2 Workload
