lib/workloads/par2.ml: Printf Workload
