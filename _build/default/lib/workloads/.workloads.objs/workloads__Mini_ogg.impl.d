lib/workloads/mini_ogg.ml: Printf Workload
