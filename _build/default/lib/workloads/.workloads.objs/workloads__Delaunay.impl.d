lib/workloads/delaunay.ml: Printf Workload
