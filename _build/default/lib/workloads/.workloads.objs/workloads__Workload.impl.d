lib/workloads/workload.ml: Array List Minic Parsim Printf Vm
