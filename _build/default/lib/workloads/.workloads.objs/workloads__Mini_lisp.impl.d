lib/workloads/mini_lisp.ml: Printf Workload
