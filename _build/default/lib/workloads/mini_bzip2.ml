(* Mini-C re-implementation of the dependence structure of bzip2 v1.0
   (paper §IV-B2, Tables IV and V).

   Structure mirrored from the paper:
   - the loop in [main] iterates over the files to compress — the single
     largest construct, with only a handful of violating RAW chains
     (output cursor, total-bytes accumulator, input "reader" state) and
     many WAW conflicts on the shared [bzf_*] stream structure the paper
     calls out ("a naive parallelization would conflict on the shared
     BZFILE *bzf structure");
   - [compress_stream] processes one file in fixed-size blocks (the
     paper's 5000-byte loop at line 5340); each block runs an RLE +
     move-to-front + frequency pass whose per-block state is reset at
     block start, but the running CRC and output cursor chain across
     blocks (the "unusually high number of violating static RAW
     dependences");
   - [write_close] (the BZ2_bzWriteClose64 analog) handles the leftover
     tail after the block loop and flushes — the source of the RAW
     dependences the paper traced to the call after the loop.

   Parallelization (Table V: 3.46x on 4 threads): per-block tasks with the
   bzf structure privatized and CRC/output/total counters turned into
   reductions, exactly the rewrite the paper describes ("privatizing
   parts of the data in the bzf structure"). *)

let source ~scale =
  Printf.sprintf
    {|// mini-bzip2: multi-file block compressor with a shared stream struct.
int data[8192];
int bzf_buf[512];
int bzf_npend;
int bzf_handle;
int bzf_total_in;
int bzf_total_out;
int bzf_crc;
int bzf_state;
int bzf_mode;
int mtf[256];
int freq[256];
int outbuf[16384];
int outcnt;
int seed;
int fsize;
int nfiles;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Reset the shared stream structure for a new file (BZ2_bzWriteOpen).
void init_stream(int handle) {
  bzf_handle = handle;
  bzf_npend = 0;
  bzf_crc = 0xffff;
  bzf_state = 1;
  bzf_mode = 2;
}

// Compress one block: RLE detection, move-to-front, frequency counting,
// and emission. Per-block tables are reset here; the CRC and the output
// cursor chain across blocks.
void compress_block(int start, int len) {
  // per-block tables: MTF starts from the identity for every block (it
  // follows the per-block BWT in real bzip2), frequencies restart too
  for (int i = 0; i < 256; i++) {
    freq[i] = 0;
    mtf[i] = i;
  }
  int run = 0;
  int prev_byte = -1;
  for (int i = 0; i < len; i++) {
    int b = data[(start + i) & 8191];
    bzf_crc = ((bzf_crc << 1) ^ b ^ (bzf_crc >> 15)) & 0xffff;
    if (b == prev_byte) {
      run++;
    } else {
      if (run > 3) {
        outbuf[outcnt & 16383] = run & 255;
        outcnt++;
      }
      run = 0;
      prev_byte = b;
    }
    // move-to-front: locate b, shift, place at front
    int pos = 0;
    while (mtf[pos] != b && pos < 255) {
      pos++;
    }
    int j = pos;
    while (j > 0) {
      mtf[j] = mtf[j - 1];
      j--;
    }
    mtf[0] = b;
    freq[pos & 255] += 1;
    if (pos > 0) {
      outbuf[outcnt & 16383] = pos & 255;
      outcnt++;
    }
  }
  bzf_npend = len & 255;
  bzf_total_in += len;
}

// Finalize a file: compress the leftover tail, flush, record totals
// (BZ2_bzWriteClose64).
void write_close(int start, int leftover) {
  if (leftover > 0) {
    compress_block(start, leftover);
  }
  outbuf[outcnt & 16383] = bzf_crc & 255;
  outcnt++;
  outbuf[outcnt & 16383] = (bzf_crc >> 8) & 255;
  outcnt++;
  bzf_total_out += bzf_npend;
  bzf_state = 0;
}

// Compress one file in 500-element blocks (the paper's 5000-byte loop).
void compress_stream(int handle) {
  init_stream(handle);
  int pos = 0;
  while (pos + 500 <= fsize) {
    compress_block(pos, 500);
    pos += 500;
  }
  write_close(pos, fsize - pos);
}

int main() {
  seed = 4321;
  fsize = %d;
  nfiles = %d;
  for (int f = 0; f < nfiles; f++) {
    for (int i = 0; i < 8192; i++) {
      data[i] = rnd(64);
    }
    compress_stream(f);
  }
  print(outcnt);
  print(bzf_total_in);
  return 0;
}
|}
    scale 2

let privatize_bzf =
  [
    "bzf_buf";
    "bzf_npend";
    "bzf_handle";
    "bzf_state";
    "bzf_mode";
    "mtf";
    "freq";
    "data";
    "outbuf";
  ]

let reduce_counters =
  [ "bzf_crc"; "outcnt"; "bzf_total_in"; "bzf_total_out"; "seed" ]

let workload =
  {
    Workload.name = "bzip2";
    description = "multi-file block compressor with shared BZFILE-style state";
    source;
    default_scale = 12_000;
    test_scale = 1_500;
    sites =
      [
        {
          Workload.site_name = "loop over files in main (6932-analog)";
          locate = Workload.loop_in "main" ~nth:0;
          privatize = privatize_bzf;
          reduce = reduce_counters;
          spawn_overhead = None;
        };
        {
          Workload.site_name = "block loop in compressStream (5340-analog)";
          locate = Workload.loop_in "compress_stream" ~nth:0;
          privatize = privatize_bzf;
          reduce = reduce_counters;
          spawn_overhead = None;
        };
      ];
    prior_work_site = None;
  }
