type error = { pc : int; message : string }

let pp_error ppf e = Format.fprintf ppf "pc %d: %s" e.pc e.message

(* (pops, pushes) per instruction, from the caller's perspective. *)
let stack_effect (prog : Program.t) = function
  | Instr.Const _ | Instr.LoadLocal _ | Instr.LoadGlobal _
  | Instr.MakeRefGlobal _ | Instr.MakeRefLocal _ ->
      (0, 1)
  | Instr.StoreLocal _ | Instr.StoreGlobal _ | Instr.Pop | Instr.Print -> (1, 0)
  | Instr.LoadIndex -> (2, 1)
  | Instr.StoreIndex -> (3, 0)
  | Instr.Binop _ -> (2, 1)
  | Instr.Unop _ -> (1, 1)
  | Instr.Jmp _ -> (0, 0)
  | Instr.Br _ -> (1, 0)
  | Instr.Dup2 -> (2, 4)
  | Instr.Call fid ->
      if fid >= 0 && fid < Array.length prog.funcs then
        (prog.funcs.(fid).nparams, 1)
      else (0, 1) (* already reported structurally *)
  | Instr.Ret -> (1, 0)
  | Instr.Halt -> (0, 0)

let verify (prog : Program.t) =
  let errors = ref [] in
  let err pc fmt =
    Printf.ksprintf (fun message -> errors := { pc; message } :: !errors) fmt
  in
  let ncode = Array.length prog.code in
  let nfuncs = Array.length prog.funcs in
  (* --- structural checks -------------------------------------------------- *)
  Array.iter
    (fun (f : Program.func_info) ->
      if not (0 <= f.entry && f.entry < f.epilogue && f.epilogue < f.code_end
              && f.code_end <= ncode) then
        err f.entry "function %s has inconsistent extent" f.name;
      if prog.code.(f.epilogue) <> Instr.Ret then
        err f.epilogue "function %s: epilogue is not Ret" f.name;
      for pc = f.entry to f.code_end - 1 do
        (match prog.code.(pc) with
        | Instr.Ret when pc <> f.epilogue ->
            err pc "function %s has a second Ret" f.name
        | Instr.Halt -> err pc "Halt inside function %s" f.name
        | Instr.Jmp t | Instr.Br { target = t; _ } ->
            if t < f.entry || t >= f.code_end then
              err pc "branch target %d escapes function %s" t f.name
        | Instr.Call fid ->
            if fid < 0 || fid >= nfuncs then err pc "call to bad fid %d" fid
        | Instr.LoadLocal s | Instr.StoreLocal s ->
            if s < 0 || s >= f.frame_slots then
              err pc "local slot %d out of frame (%d slots)" s f.frame_slots
        | Instr.MakeRefLocal (off, len) ->
            if off < 0 || len <= 0 || off + len > f.frame_slots then
              err pc "local array ref %d:%d out of frame" off len
        | Instr.LoadGlobal a | Instr.StoreGlobal a ->
            if a < 0 || a >= prog.globals_size then
              err pc "global address %d out of range" a
        | Instr.MakeRefGlobal (base, len) ->
            if base < 0 || len <= 0 || base + len > prog.globals_size then
              err pc "global array ref %d:%d out of range" base len
        | _ -> ())
      done)
    prog.funcs;
  (* preamble: Call main; Halt *)
  (match (prog.code.(0), prog.code.(1)) with
  | Instr.Call fid, Instr.Halt when fid = prog.main_fid -> ()
  | _ -> err 0 "preamble is not [Call main; Halt]");
  (* --- construct table ------------------------------------------------------ *)
  Array.iter
    (fun (c : Program.construct_info) ->
      if prog.cid_of_pc.(c.head_pc) <> c.cid then
        err c.head_pc "construct %d not registered at its head" c.cid;
      let f = prog.funcs.(c.fid) in
      (match (c.kind, prog.code.(c.head_pc)) with
      | Program.CProc, _ when c.head_pc = f.entry -> ()
      | Program.CProc, _ -> err c.head_pc "proc construct not at entry"
      | Program.CLoop, Instr.Br { kind = Instr.BrLoop; cid; _ } when cid = c.cid
        ->
          ()
      | Program.CCond, Instr.Br { kind = Instr.BrIf; cid; _ } when cid = c.cid
        ->
          ()
      | (Program.CLoop | Program.CCond), i ->
          err c.head_pc "construct %d headed by %s" c.cid (Instr.to_string i));
      if c.body_first < f.entry || c.body_last >= f.code_end
         || c.body_first > c.body_last then
        err c.head_pc "construct %d body span [%d,%d] escapes %s" c.cid
          c.body_first c.body_last f.name)
    prog.constructs;
  (* --- operand-stack abstract interpretation -------------------------------- *)
  Array.iter
    (fun (f : Program.func_info) ->
      let n = f.code_end - f.entry in
      let depth = Array.make n (-1) in
      let work = Queue.create () in
      let push_state pc d =
        let i = pc - f.entry in
        if i < 0 || i >= n then
          err pc "control flows outside function %s" f.name
        else if depth.(i) = -1 then begin
          depth.(i) <- d;
          Queue.push pc work
        end
        else if depth.(i) <> d then
          err pc "inconsistent stack depth at join: %d vs %d" depth.(i) d
      in
      push_state f.entry 0;
      while not (Queue.is_empty work) do
        let pc = Queue.pop work in
        let d = depth.(pc - f.entry) in
        let instr = prog.code.(pc) in
        let pops, pushes = stack_effect prog instr in
        if d < pops then err pc "stack underflow (depth %d, needs %d)" d pops
        else begin
          let d' = d - pops + pushes in
          match instr with
          | Instr.Ret -> if d <> 1 then err pc "Ret at depth %d (expected 1)" d
          | Instr.Jmp t -> push_state t d'
          | Instr.Br { target; _ } ->
              push_state target d';
              push_state (pc + 1) d'
          | Instr.Halt -> ()
          | _ -> push_state (pc + 1) d'
        end
      done)
    prog.funcs;
  List.rev !errors

let verify_exn prog =
  match verify prog with
  | [] -> ()
  | errs ->
      let shown = List.filteri (fun i _ -> i < 5) errs in
      invalid_arg
        (Format.asprintf "Verify: %a"
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              pp_error)
           shown)
