let pp_program ppf (p : Program.t) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf ";; preamble@,";
  for pc = 0 to Array.length p.code - 1 do
    (match Array.find_opt (fun (f : Program.func_info) -> f.entry = pc) p.funcs
     with
    | Some f ->
        Format.fprintf ppf "@,;; function %s (fid %d, %d slots)@," f.name f.fid
          f.frame_slots
    | None -> ());
    (match Program.construct_at p pc with
    | Some c when c.kind <> Program.CProc ->
        Format.fprintf ppf ";; construct c%d %a@," c.cid Program.pp_construct c
    | _ -> ());
    Format.fprintf ppf "%4d  [line %3d]  %s@," pc (Program.line_of_pc p pc)
      (Instr.to_string p.code.(pc))
  done;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a" pp_program p
