(** Static well-formedness verification of compiled bytecode.

    Run after {!Compile.compile} (the test suite does, on every generated
    program) to catch compiler bugs before they become miscounted
    profiles:

    - structural: every jump/branch target lands inside the same
      function; every function ends in exactly one [Ret], at its
      recorded epilogue; [Call] targets are valid function ids; local
      slot and global address operands are in range; construct heads
      point at the instruction kind their table entry claims
      ([Br] for loops/conditionals, the entry for procedures) and body
      spans nest inside their function;
    - operand-stack safety: abstract interpretation over each function's
      CFG proves a consistent stack depth at every pc (no underflow, a
      single depth per join point, depth 1 at [Ret]). *)

type error = { pc : int; message : string }

val verify : Program.t -> error list
(** Empty list = well-formed. *)

val verify_exn : Program.t -> unit
(** @raise Invalid_argument listing the first errors. *)

val pp_error : Format.formatter -> error -> unit
