(** Bytecode disassembler (for debugging and the CLI's [dump] command). *)

val pp_program : Format.formatter -> Program.t -> unit
(** Prints every function with pc, source line, instruction, and construct
    heads annotated. *)

val to_string : Program.t -> string
