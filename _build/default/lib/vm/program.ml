type func_info = {
  fid : int;
  name : string;
  entry : int;
  epilogue : int;
  code_end : int;
  nparams : int;
  param_is_array : bool array;
  frame_slots : int;
  ret : Minic.Ast.ret_ty;
  loc : Minic.Srcloc.t;
}

type construct_kind = CProc | CLoop | CCond

type construct_info = {
  cid : int;
  kind : construct_kind;
  head_pc : int;
  fid : int;
  loc : Minic.Srcloc.t;
  cname : string;
  body_first : int;
  body_last : int;
}

type t = {
  code : Instr.t array;
  locs : Minic.Srcloc.t array;
  funcs : func_info array;
  constructs : construct_info array;
  cid_of_pc : int array;
  globals_size : int;
  global_layout : (string * int * int) list;
  global_inits : (int * int) list;
  main_fid : int;
}

let func_of_pc t pc =
  let found = ref None in
  Array.iter
    (fun f -> if pc >= f.entry && pc < f.code_end then found := Some f)
    t.funcs;
  match !found with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Program.func_of_pc: pc %d" pc)

let line_of_pc t pc =
  if pc >= 0 && pc < Array.length t.locs then t.locs.(pc).Minic.Srcloc.line
  else 0

let construct_at t pc =
  if pc < 0 || pc >= Array.length t.cid_of_pc then None
  else
    let cid = t.cid_of_pc.(pc) in
    if cid < 0 then None else Some t.constructs.(cid)

let find_func t name = Array.find_opt (fun f -> f.name = name) t.funcs

let find_global t name =
  List.find_map
    (fun (n, base, len) -> if n = name then Some (base, len) else None)
    t.global_layout

let pp_construct ppf c =
  let kind =
    match c.kind with CProc -> "Method" | CLoop -> "Loop" | CCond -> "Cond"
  in
  Format.fprintf ppf "%s %s" kind c.cname
