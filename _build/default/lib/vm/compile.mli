(** Compiler from the Mini-C AST to bytecode.

    Lowering decisions that matter for the profiler:

    - every function gets a {e single} epilogue [Ret]; [return] compiles to
      a jump there, so the epilogue post-dominates the whole body and
      pending construct pops are always well-defined;
    - [if]/[while]/[do]/[for] predicates compile to [Br] instructions
      tagged [BrIf]/[BrLoop] carrying a fresh construct id; short-circuit
      [&&]/[||] compile to [BrSc] branches, which are not constructs;
    - [x op= e] and [x++] are read-modify-write sequences, so they generate
      both a read and a write event at the same source line;
    - local slots are assigned monotonically per function (no slot reuse
      across block scopes), so two different locals never share an address
      within an activation. *)

val compile : Minic.Ast.program -> Program.t
(** Compiles a checked program. The first two pcs are a preamble
    [Call main; Halt].
    @raise Invalid_argument on programs that were not accepted by
    {!Minic.Typecheck.check}. *)

val compile_source : string -> Program.t
(** [Frontend.load] followed by {!compile}.
    @raise Minic.Diag.Error on frontend errors. *)
