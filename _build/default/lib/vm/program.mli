(** Compiled Mini-C program: flat code array plus static metadata tables. *)

type func_info = {
  fid : int;
  name : string;
  entry : int;  (** pc of the first instruction *)
  epilogue : int;  (** pc of the single [Ret]; post-dominates the body *)
  code_end : int;  (** one past the last pc belonging to this function *)
  nparams : int;
  param_is_array : bool array;
  frame_slots : int;  (** addresses a frame occupies (scalars + arrays) *)
  ret : Minic.Ast.ret_ty;
  loc : Minic.Srcloc.t;
}

type construct_kind = CProc | CLoop | CCond

type construct_info = {
  cid : int;
  kind : construct_kind;
  head_pc : int;  (** function entry pc, or the predicate's [Br] pc *)
  fid : int;  (** enclosing function *)
  loc : Minic.Srcloc.t;
  cname : string;  (** display name, e.g. ["Method flush_block"] *)
  body_first : int;
  body_last : int;
      (** the pcs of the construct's repeating region, inclusive: the
          whole function for [CProc], condition+body+update for loops
          (covering do-while bodies that precede their predicate), both
          arms for [CCond]. Used to tell continuation tails from
          intra-region tails. *)
}

type t = {
  code : Instr.t array;
  locs : Minic.Srcloc.t array;  (** source location per pc *)
  funcs : func_info array;
  constructs : construct_info array;
  cid_of_pc : int array;  (** pc -> construct id headed there, or [-1] *)
  globals_size : int;
  global_layout : (string * int * int) list;  (** name, base address, len *)
  global_inits : (int * int) list;  (** address, initial value *)
  main_fid : int;
}

val func_of_pc : t -> int -> func_info
(** The function whose code region contains the pc.
    @raise Invalid_argument if the pc belongs to the entry preamble. *)

val line_of_pc : t -> int -> int
(** Source line of the instruction at [pc] (0 for synthesized code). *)

val construct_at : t -> int -> construct_info option
(** The construct headed at [pc], if any. *)

val find_func : t -> string -> func_info option
val find_global : t -> string -> (int * int) option
(** [find_global p name] is [Some (base_address, length)]; length 1 for
    scalars. *)

val pp_construct : Format.formatter -> construct_info -> unit
