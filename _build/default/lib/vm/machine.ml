exception Trap of string * int

type result = { exit_value : int; instructions : int; output : int list }

type value = VInt of int | VRef of int * int  (* base, len *)

exception Halted of int

type state = {
  prog : Program.t;
  mutable mem : value array;
  mutable stack : value array;  (* operand stack *)
  mutable sp : int;
  mutable frame_base : int;
  mutable stack_top : int;  (* next free memory address *)
  (* call records: return pc, saved frame base, callee fid *)
  mutable calls : (int * int * int) array;
  mutable depth : int;
  max_depth : int;
  mutable out : int list;
  mutable instructions : int;
}

let trap st pc fmt =
  ignore st;
  Printf.ksprintf (fun msg -> raise (Trap (msg, pc))) fmt

let ensure_mem st needed =
  let n = Array.length st.mem in
  if needed > n then begin
    let mem = Array.make (max (2 * n) needed) (VInt 0) in
    Array.blit st.mem 0 mem 0 n;
    st.mem <- mem
  end

let push st v =
  if st.sp = Array.length st.stack then begin
    let stack = Array.make (2 * st.sp) (VInt 0) in
    Array.blit st.stack 0 stack 0 st.sp;
    st.stack <- stack
  end;
  st.stack.(st.sp) <- v;
  st.sp <- st.sp + 1

let pop st pc =
  if st.sp = 0 then trap st pc "operand stack underflow";
  st.sp <- st.sp - 1;
  st.stack.(st.sp)

let pop_int st pc =
  match pop st pc with
  | VInt n -> n
  | VRef _ -> trap st pc "expected integer, found array reference"

let pop_ref st pc =
  match pop st pc with
  | VRef (b, l) -> (b, l)
  | VInt _ -> trap st pc "expected array reference, found integer"

let eval_binop st pc (op : Minic.Ast.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap st pc "division by zero" else a / b
  | Mod -> if b = 0 then trap st pc "modulo by zero" else a mod b
  | Shl ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a lsl b
  | Shr ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a asr b
  | BitAnd -> a land b
  | BitOr -> a lor b
  | BitXor -> a lxor b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | LogAnd | LogOr ->
      trap st pc "short-circuit operator reached the interpreter"

let eval_unop (op : Minic.Ast.unop) a =
  match op with
  | Neg -> -a
  | LogNot -> if a = 0 then 1 else 0
  | BitNot -> lnot a

let exec ~hooked ?(trace_locals = true) (hooks : Hooks.t) ?fuel
    ?(max_depth = 10_000) (prog : Program.t) =
  let hook_locals = hooked && trace_locals in
  let st =
    {
      prog;
      mem = Array.make (max prog.globals_size 1024) (VInt 0);
      stack = Array.make 256 (VInt 0);
      sp = 0;
      frame_base = 0;
      stack_top = prog.globals_size;
      calls = Array.make 64 (0, 0, 0);
      depth = 0;
      max_depth;
      out = [];
      instructions = 0;
    }
  in
  ensure_mem st prog.globals_size;
  List.iter (fun (addr, v) -> st.mem.(addr) <- VInt v) prog.global_inits;
  let code = prog.code in
  let funcs = prog.funcs in
  let fuel = match fuel with Some f -> f | None -> max_int in
  let pc = ref 0 in
  let exit_value =
    try
     while true do
       let p = !pc in
       if st.instructions >= fuel then trap st p "out of fuel";
       st.instructions <- st.instructions + 1;
       if hooked then hooks.on_instr ~pc:p;
       (match code.(p) with
        | Const n ->
            push st (VInt n);
            incr pc
        | LoadLocal s ->
            let addr = st.frame_base + s in
            if hook_locals then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr);
            incr pc
        | StoreLocal s ->
            let addr = st.frame_base + s in
            let v = pop st p in
            if hook_locals then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- v;
            incr pc
        | LoadGlobal addr ->
            if hooked then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr);
            incr pc
        | StoreGlobal addr ->
            let v = pop st p in
            if hooked then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- v;
            incr pc
        | MakeRefGlobal (base, len) ->
            push st (VRef (base, len));
            incr pc
        | MakeRefLocal (off, len) ->
            push st (VRef (st.frame_base + off, len));
            incr pc
        | LoadIndex ->
            let idx = pop_int st p in
            let base, len = pop_ref st p in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            if hooked then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr);
            incr pc
        | StoreIndex ->
            let v = pop st p in
            let idx = pop_int st p in
            let base, len = pop_ref st p in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            if hooked then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- v;
            incr pc
        | Binop op ->
            let b = pop_int st p in
            let a = pop_int st p in
            push st (VInt (eval_binop st p op a b));
            incr pc
        | Unop op ->
            let a = pop_int st p in
            push st (VInt (eval_unop op a));
            incr pc
        | Jmp target -> pc := target
        | Br { target; kind; cid } ->
            let v = pop_int st p in
            let taken = v = 0 in
            if hooked then hooks.on_branch ~pc:p ~kind ~cid ~taken;
            pc := if taken then target else p + 1
        | Dup2 ->
            if st.sp < 2 then trap st p "dup2 on short stack";
            let a = st.stack.(st.sp - 2) and b = st.stack.(st.sp - 1) in
            push st a;
            push st b;
            incr pc
        | Call fid ->
            if st.depth >= st.max_depth then trap st p "call stack overflow";
            let f = funcs.(fid) in
            (* Pop arguments, last on top. *)
            let args = Array.make f.nparams (VInt 0) in
            for i = f.nparams - 1 downto 0 do
              args.(i) <- pop st p
            done;
            (* Push the call record. *)
            if st.depth = Array.length st.calls then begin
              let calls = Array.make (2 * st.depth) (0, 0, 0) in
              Array.blit st.calls 0 calls 0 st.depth;
              st.calls <- calls
            end;
            st.calls.(st.depth) <- (p + 1, st.frame_base, fid);
            st.depth <- st.depth + 1;
            (* Fresh zeroed frame. *)
            let base = st.stack_top in
            ensure_mem st (base + f.frame_slots);
            Array.fill st.mem base f.frame_slots (VInt 0);
            st.frame_base <- base;
            st.stack_top <- base + f.frame_slots;
            if hooked then hooks.on_call ~pc:f.entry ~fid;
            for i = 0 to f.nparams - 1 do
              if hook_locals then hooks.on_write ~pc:f.entry ~addr:(base + i);
              st.mem.(base + i) <- args.(i)
            done;
            pc := f.entry
        | Ret ->
            let v = pop st p in
            st.depth <- st.depth - 1;
            let ret_pc, saved_base, fid = st.calls.(st.depth) in
            let f = funcs.(fid) in
            if hooked then begin
              hooks.on_ret ~pc:p ~fid;
              hooks.on_frame_release ~base:st.frame_base ~size:f.frame_slots
            end;
            st.stack_top <- st.frame_base;
            st.frame_base <- saved_base;
            push st v;
            pc := ret_pc
        | Pop ->
            ignore (pop st p);
            incr pc
        | Print ->
            let v = pop_int st p in
            st.out <- v :: st.out;
            incr pc
        | Halt ->
            let v = if st.sp > 0 then pop_int st p else 0 in
            raise (Halted v))
      done;
      assert false
    with Halted v -> v
  in
  { exit_value; instructions = st.instructions; output = List.rev st.out }

let run ?fuel ?max_depth prog =
  exec ~hooked:false Hooks.noop ?fuel ?max_depth prog

let run_hooked ?trace_locals ?fuel ?max_depth hooks prog =
  exec ~hooked:true ?trace_locals hooks ?fuel ?max_depth prog
