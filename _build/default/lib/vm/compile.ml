open Minic.Ast
module Srcloc = Minic.Srcloc

type binding =
  | BScalarLocal of int
  | BArrayLocal of int * int  (* frame offset, len *)
  | BArrParam of int  (* slot holding a reference *)
  | BScalarGlobal of int
  | BArrayGlobal of int * int

type emitter = {
  mutable code : Instr.t array;
  mutable locs : Srcloc.t array;
  mutable len : int;
  mutable labels : int array;  (* label id -> pc, -1 if not yet placed *)
  mutable nlabels : int;
  mutable fixups : (int * int) list;  (* pc to patch, label id *)
  constructs : (int, pending_construct) Hashtbl.t;
  mutable n_constructs : int;
}

and pending_construct = {
  pcid : int;
  pkind : Program.construct_kind;
  phead : int;
  pfid : int;
  ploc : Srcloc.t;
  pcname : string;
  pbody_first : int;
  mutable pbody_last : int;
}

let new_emitter () =
  {
    code = Array.make 256 Instr.Halt;
    locs = Array.make 256 Srcloc.dummy;
    len = 0;
    labels = Array.make 64 (-1);
    nlabels = 0;
    fixups = [];
    constructs = Hashtbl.create 64;
    n_constructs = 0;
  }

let emit em instr loc =
  if em.len = Array.length em.code then begin
    let code = Array.make (2 * em.len) Instr.Halt in
    Array.blit em.code 0 code 0 em.len;
    em.code <- code;
    let locs = Array.make (2 * em.len) Srcloc.dummy in
    Array.blit em.locs 0 locs 0 em.len;
    em.locs <- locs
  end;
  em.code.(em.len) <- instr;
  em.locs.(em.len) <- loc;
  em.len <- em.len + 1

let here em = em.len

let fresh_label em =
  if em.nlabels = Array.length em.labels then begin
    let labels = Array.make (2 * em.nlabels) (-1) in
    Array.blit em.labels 0 labels 0 em.nlabels;
    em.labels <- labels
  end;
  let l = em.nlabels in
  em.nlabels <- em.nlabels + 1;
  l

let place_label em l = em.labels.(l) <- em.len

(* Emit a forward jump/branch to a label; patched in [finish]. *)
let emit_jmp em l loc =
  em.fixups <- (em.len, l) :: em.fixups;
  emit em (Instr.Jmp l) loc

let emit_br em ~kind ~cid l loc =
  em.fixups <- (em.len, l) :: em.fixups;
  emit em (Instr.Br { target = l; kind; cid }) loc

(* Constructs are opened with a provisional body span and closed once the
   emitter knows where their repeating region ends. *)
let new_construct em ~kind ~head_pc ~body_first ~fid ~loc ~cname =
  let cid = em.n_constructs in
  em.n_constructs <- cid + 1;
  Hashtbl.add em.constructs cid
    {
      pcid = cid;
      pkind = kind;
      phead = head_pc;
      pfid = fid;
      ploc = loc;
      pcname = cname;
      pbody_first = body_first;
      pbody_last = body_first;
    };
  cid

let close_construct em cid = (Hashtbl.find em.constructs cid).pbody_last <- em.len - 1

let patch_fixups em =
  List.iter
    (fun (pc, l) ->
      let target = em.labels.(l) in
      assert (target >= 0);
      em.code.(pc) <-
        (match em.code.(pc) with
        | Instr.Jmp _ -> Instr.Jmp target
        | Instr.Br { kind; cid; _ } -> Instr.Br { target; kind; cid }
        | i ->
            invalid_arg
              (Printf.sprintf "Compile.patch_fixups: pc %d holds %s" pc
                 (Instr.to_string i))))
    em.fixups;
  em.fixups <- []

(* --- per-function compilation state ------------------------------------ *)

type fstate = {
  em : emitter;
  fid : int;
  fname : string;
  globals : (string, binding) Hashtbl.t;
  fids : (string, int) Hashtbl.t;
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable next_slot : int;
  epilogue : int;  (* label *)
  (* loop context: (break label, continue label) *)
  mutable loops : (int * int) list;
}

let lookup fs name =
  let rec go = function
    | [] -> (
        match Hashtbl.find_opt fs.globals name with
        | Some b -> b
        | None -> invalid_arg ("Compile.lookup: unbound " ^ name))
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with Some b -> b | None -> go rest)
  in
  go fs.scopes

let declare fs name binding =
  match fs.scopes with
  | scope :: _ -> Hashtbl.replace scope name binding
  | [] -> invalid_arg "Compile.declare: no scope"

let alloc_slots fs n =
  let s = fs.next_slot in
  fs.next_slot <- s + n;
  s

let push_scope fs = fs.scopes <- Hashtbl.create 8 :: fs.scopes

let pop_scope fs =
  match fs.scopes with
  | _ :: rest -> fs.scopes <- rest
  | [] -> invalid_arg "Compile.pop_scope"

(* --- expressions -------------------------------------------------------- *)

let push_array_ref fs loc = function
  | BArrayLocal (off, len) -> emit fs.em (Instr.MakeRefLocal (off, len)) loc
  | BArrayGlobal (base, len) ->
      emit fs.em (Instr.MakeRefGlobal (base, len)) loc
  | BArrParam slot -> emit fs.em (Instr.LoadLocal slot) loc
  | BScalarLocal _ | BScalarGlobal _ ->
      invalid_arg "Compile.push_array_ref: scalar used as array"

let rec compile_expr fs (e : expr) =
  let em = fs.em in
  match e.edesc with
  | IntLit n -> emit em (Instr.Const n) e.eloc
  | Var x -> (
      match lookup fs x with
      | BScalarLocal s -> emit em (Instr.LoadLocal s) e.eloc
      | BScalarGlobal a -> emit em (Instr.LoadGlobal a) e.eloc
      | b -> push_array_ref fs e.eloc b)
  | Index (x, i) ->
      push_array_ref fs e.eloc (lookup fs x);
      compile_expr fs i;
      emit em Instr.LoadIndex e.eloc
  | Unop (op, e1) ->
      compile_expr fs e1;
      emit em (Instr.Unop op) e.eloc
  | Binop (LogAnd, a, b) ->
      let l_false = fresh_label em and l_end = fresh_label em in
      compile_expr fs a;
      emit_br em ~kind:Instr.BrSc ~cid:(-1) l_false e.eloc;
      compile_expr fs b;
      emit_br em ~kind:Instr.BrSc ~cid:(-1) l_false e.eloc;
      emit em (Instr.Const 1) e.eloc;
      emit_jmp em l_end e.eloc;
      place_label em l_false;
      emit em (Instr.Const 0) e.eloc;
      place_label em l_end
  | Binop (LogOr, a, b) ->
      let l_rhs = fresh_label em
      and l_false = fresh_label em
      and l_end = fresh_label em in
      compile_expr fs a;
      emit_br em ~kind:Instr.BrSc ~cid:(-1) l_rhs e.eloc;
      emit em (Instr.Const 1) e.eloc;
      emit_jmp em l_end e.eloc;
      place_label em l_rhs;
      compile_expr fs b;
      emit_br em ~kind:Instr.BrSc ~cid:(-1) l_false e.eloc;
      emit em (Instr.Const 1) e.eloc;
      emit_jmp em l_end e.eloc;
      place_label em l_false;
      emit em (Instr.Const 0) e.eloc;
      place_label em l_end
  | Binop (op, a, b) ->
      compile_expr fs a;
      compile_expr fs b;
      emit em (Instr.Binop op) e.eloc
  | Call (fname, args) ->
      List.iter (compile_expr fs) args;
      let fid = Hashtbl.find fs.fids fname in
      emit em (Instr.Call fid) e.eloc

(* --- statements --------------------------------------------------------- *)

let rec compile_stmt fs (s : stmt) =
  let em = fs.em in
  match s.sdesc with
  | DeclScalar (x, init) ->
      let slot = alloc_slots fs 1 in
      declare fs x (BScalarLocal slot);
      Option.iter
        (fun e ->
          compile_expr fs e;
          emit em (Instr.StoreLocal slot) s.sloc)
        init
  | DeclArray (x, n) ->
      let off = alloc_slots fs n in
      declare fs x (BArrayLocal (off, n))
  | Assign (LVar (x, loc), e) -> (
      compile_expr fs e;
      match lookup fs x with
      | BScalarLocal slot -> emit em (Instr.StoreLocal slot) loc
      | BScalarGlobal a -> emit em (Instr.StoreGlobal a) loc
      | _ -> invalid_arg "Compile: assignment to array")
  | Assign (LIndex (x, i, loc), e) ->
      push_array_ref fs loc (lookup fs x);
      compile_expr fs i;
      compile_expr fs e;
      emit em Instr.StoreIndex loc
  | OpAssign (op, LVar (x, loc), e) -> (
      match lookup fs x with
      | BScalarLocal slot ->
          emit em (Instr.LoadLocal slot) loc;
          compile_expr fs e;
          emit em (Instr.Binop op) loc;
          emit em (Instr.StoreLocal slot) loc
      | BScalarGlobal a ->
          emit em (Instr.LoadGlobal a) loc;
          compile_expr fs e;
          emit em (Instr.Binop op) loc;
          emit em (Instr.StoreGlobal a) loc
      | _ -> invalid_arg "Compile: op-assignment to array")
  | OpAssign (op, LIndex (x, i, loc), e) ->
      push_array_ref fs loc (lookup fs x);
      compile_expr fs i;
      emit em Instr.Dup2 loc;
      emit em Instr.LoadIndex loc;
      compile_expr fs e;
      emit em (Instr.Binop op) loc;
      emit em Instr.StoreIndex loc
  | If (cond, then_, else_) -> (
      compile_expr fs cond;
      let head = here em in
      let cid =
        new_construct em ~kind:Program.CCond ~head_pc:head ~body_first:(head + 1)
          ~fid:fs.fid ~loc:s.sloc
          ~cname:(Printf.sprintf "(%s,%d)" fs.fname s.sloc.Srcloc.line)
      in
      (match else_ with
      | None ->
          let l_end = fresh_label em in
          emit_br em ~kind:Instr.BrIf ~cid l_end cond.eloc;
          compile_scoped fs then_;
          place_label em l_end
      | Some e ->
          let l_else = fresh_label em and l_end = fresh_label em in
          emit_br em ~kind:Instr.BrIf ~cid l_else cond.eloc;
          compile_scoped fs then_;
          emit_jmp em l_end s.sloc;
          place_label em l_else;
          compile_scoped fs e;
          place_label em l_end);
      close_construct em cid)
  | While (cond, body) ->
      let l_head = fresh_label em and l_exit = fresh_label em in
      let body_first = here em in
      place_label em l_head;
      compile_expr fs cond;
      let cid =
        new_construct em ~kind:Program.CLoop ~head_pc:(here em) ~body_first
          ~fid:fs.fid ~loc:s.sloc
          ~cname:(Printf.sprintf "(%s,%d)" fs.fname s.sloc.Srcloc.line)
      in
      emit_br em ~kind:Instr.BrLoop ~cid l_exit cond.eloc;
      fs.loops <- (l_exit, l_head) :: fs.loops;
      compile_scoped fs body;
      fs.loops <- List.tl fs.loops;
      emit_jmp em l_head s.sloc;
      close_construct em cid;
      place_label em l_exit
  | DoWhile (body, cond) ->
      let l_body = fresh_label em
      and l_cont = fresh_label em
      and l_exit = fresh_label em in
      let body_first = here em in
      place_label em l_body;
      fs.loops <- (l_exit, l_cont) :: fs.loops;
      compile_scoped fs body;
      fs.loops <- List.tl fs.loops;
      place_label em l_cont;
      compile_expr fs cond;
      let cid =
        new_construct em ~kind:Program.CLoop ~head_pc:(here em) ~body_first
          ~fid:fs.fid ~loc:s.sloc
          ~cname:(Printf.sprintf "(%s,%d)" fs.fname s.sloc.Srcloc.line)
      in
      emit_br em ~kind:Instr.BrLoop ~cid l_exit cond.eloc;
      emit_jmp em l_body s.sloc;
      close_construct em cid;
      place_label em l_exit
  | For (init, cond, update, body) ->
      push_scope fs;
      Option.iter (compile_stmt fs) init;
      let l_head = fresh_label em
      and l_cont = fresh_label em
      and l_exit = fresh_label em in
      let body_first = here em in
      place_label em l_head;
      (match cond with
      | Some c -> compile_expr fs c
      | None -> emit em (Instr.Const 1) s.sloc);
      let cid =
        new_construct em ~kind:Program.CLoop ~head_pc:(here em) ~body_first
          ~fid:fs.fid ~loc:s.sloc
          ~cname:(Printf.sprintf "(%s,%d)" fs.fname s.sloc.Srcloc.line)
      in
      let cond_loc =
        match cond with Some c -> c.eloc | None -> s.sloc
      in
      emit_br em ~kind:Instr.BrLoop ~cid l_exit cond_loc;
      fs.loops <- (l_exit, l_cont) :: fs.loops;
      compile_scoped fs body;
      fs.loops <- List.tl fs.loops;
      place_label em l_cont;
      Option.iter (compile_stmt fs) update;
      emit_jmp em l_head s.sloc;
      close_construct em cid;
      place_label em l_exit;
      pop_scope fs
  | Break -> (
      match fs.loops with
      | (l_exit, _) :: _ -> emit_jmp em l_exit s.sloc
      | [] -> invalid_arg "Compile: break outside loop")
  | Continue -> (
      match fs.loops with
      | (_, l_cont) :: _ -> emit_jmp em l_cont s.sloc
      | [] -> invalid_arg "Compile: continue outside loop")
  | Return None ->
      emit em (Instr.Const 0) s.sloc;
      emit_jmp em fs.epilogue s.sloc
  | Return (Some e) ->
      compile_expr fs e;
      emit_jmp em fs.epilogue s.sloc
  | ExprStmt e ->
      compile_expr fs e;
      emit em Instr.Pop s.sloc
  | Print e ->
      compile_expr fs e;
      emit em Instr.Print s.sloc
  | Block stmts ->
      push_scope fs;
      List.iter (compile_stmt fs) stmts;
      pop_scope fs

and compile_scoped fs s =
  push_scope fs;
  compile_stmt fs s;
  pop_scope fs

(* --- top level ----------------------------------------------------------- *)

let compile (p : program) =
  let em = new_emitter () in
  (* Globals layout. *)
  let globals = Hashtbl.create 64 in
  let next_addr = ref 0 in
  let layout = ref [] and inits = ref [] in
  List.iter
    (fun g ->
      match g with
      | GScalar (name, v, _) ->
          let addr = !next_addr in
          incr next_addr;
          Hashtbl.replace globals name (BScalarGlobal addr);
          layout := (name, addr, 1) :: !layout;
          if v <> 0 then inits := (addr, v) :: !inits
      | GArray (name, len, _) ->
          let base = !next_addr in
          next_addr := base + len;
          Hashtbl.replace globals name (BArrayGlobal (base, len));
          layout := (name, base, len) :: !layout)
    p.globals;
  (* Function ids in declaration order. *)
  let fids = Hashtbl.create 64 in
  List.iteri (fun i (f : func) -> Hashtbl.replace fids f.fname i) p.funcs;
  let main_fid = Hashtbl.find fids "main" in
  (* Preamble. *)
  emit em (Instr.Call main_fid) Srcloc.dummy;
  emit em Instr.Halt Srcloc.dummy;
  (* Compile each function. *)
  let funcs =
    List.mapi
      (fun fid (f : func) ->
        let entry = here em in
        let proc_cid =
          new_construct em ~kind:Program.CProc ~head_pc:entry ~body_first:entry
            ~fid ~loc:f.floc ~cname:f.fname
        in
        let fs =
          {
            em;
            fid;
            fname = f.fname;
            globals;
            fids;
            scopes = [];
            next_slot = 0;
            epilogue = fresh_label em;
            loops = [];
          }
        in
        push_scope fs;
        let param_is_array =
          Array.of_list
            (List.map (function PArray _ -> true | PScalar _ -> false)
               f.fparams)
        in
        List.iter
          (fun p ->
            let slot = alloc_slots fs 1 in
            match p with
            | PScalar n -> declare fs n (BScalarLocal slot)
            | PArray n -> declare fs n (BArrParam slot))
          f.fparams;
        push_scope fs;
        List.iter (compile_stmt fs) f.fbody;
        (* Implicit return 0 (int) / return (void). *)
        emit em (Instr.Const 0) f.floc;
        place_label em fs.epilogue;
        let epilogue_pc = here em in
        emit em Instr.Ret f.floc;
        close_construct em proc_cid;
        {
          Program.fid;
          name = f.fname;
          entry;
          epilogue = epilogue_pc;
          code_end = here em;
          nparams = List.length f.fparams;
          param_is_array;
          frame_slots = max fs.next_slot 1;
          ret = f.fret;
          loc = f.floc;
        })
      p.funcs
  in
  patch_fixups em;
  let code = Array.sub em.code 0 em.len in
  let locs = Array.sub em.locs 0 em.len in
  let constructs =
    Array.init em.n_constructs (fun cid ->
        let p = Hashtbl.find em.constructs cid in
        {
          Program.cid = p.pcid;
          kind = p.pkind;
          head_pc = p.phead;
          fid = p.pfid;
          loc = p.ploc;
          cname = p.pcname;
          body_first = p.pbody_first;
          body_last = max p.pbody_last p.phead;
        })
  in
  let cid_of_pc = Array.make (Array.length code) (-1) in
  Array.iter (fun c -> cid_of_pc.(c.Program.head_pc) <- c.Program.cid) constructs;
  {
    Program.code;
    locs;
    funcs = Array.of_list funcs;
    constructs;
    cid_of_pc;
    globals_size = !next_addr;
    global_layout = List.rev !layout;
    global_inits = List.rev !inits;
    main_fid;
  }

let compile_source src = compile (Minic.Frontend.load src)
