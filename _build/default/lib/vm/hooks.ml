type t = {
  on_instr : pc:int -> unit;
  on_read : pc:int -> addr:int -> unit;
  on_write : pc:int -> addr:int -> unit;
  on_branch : pc:int -> kind:Instr.branch_kind -> cid:int -> taken:bool -> unit;
  on_call : pc:int -> fid:int -> unit;
  on_ret : pc:int -> fid:int -> unit;
  on_frame_release : base:int -> size:int -> unit;
}

let noop =
  {
    on_instr = (fun ~pc:_ -> ());
    on_read = (fun ~pc:_ ~addr:_ -> ());
    on_write = (fun ~pc:_ ~addr:_ -> ());
    on_branch = (fun ~pc:_ ~kind:_ ~cid:_ ~taken:_ -> ());
    on_call = (fun ~pc:_ ~fid:_ -> ());
    on_ret = (fun ~pc:_ ~fid:_ -> ());
    on_frame_release = (fun ~base:_ ~size:_ -> ());
  }
