lib/vm/machine.mli: Hooks Program
