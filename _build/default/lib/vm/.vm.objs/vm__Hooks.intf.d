lib/vm/hooks.mli: Instr
