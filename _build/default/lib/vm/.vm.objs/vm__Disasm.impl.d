lib/vm/disasm.ml: Array Format Instr Program
