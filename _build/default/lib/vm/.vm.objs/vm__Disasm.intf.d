lib/vm/disasm.mli: Format Program
