lib/vm/instr.ml: Format Minic Printf
