lib/vm/machine.ml: Array Hooks List Minic Printf Program
