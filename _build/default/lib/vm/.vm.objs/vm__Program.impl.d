lib/vm/program.ml: Array Format Instr List Minic Printf
