lib/vm/compile.ml: Array Hashtbl Instr List Minic Option Printf Program
