lib/vm/instr.mli: Format Minic
