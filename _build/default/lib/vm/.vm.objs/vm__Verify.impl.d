lib/vm/verify.ml: Array Format Instr List Printf Program Queue
