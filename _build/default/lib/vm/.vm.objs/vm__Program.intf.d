lib/vm/program.mli: Format Instr Minic
