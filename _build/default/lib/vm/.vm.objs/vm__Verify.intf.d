lib/vm/verify.mli: Format Program
