lib/vm/trace.mli: Hooks Machine Program
