lib/vm/compile.mli: Minic Program
