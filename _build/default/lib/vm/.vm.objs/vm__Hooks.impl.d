lib/vm/hooks.ml: Instr
