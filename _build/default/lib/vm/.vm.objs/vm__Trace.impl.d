lib/vm/trace.ml: Array Hooks Instr Machine Option Printf
