(** Instrumentation interface of the VM.

    The hooked interpreter calls these in a fixed order for each executed
    instruction: [on_instr] first (this is where the profiler advances its
    timestamp and performs rule-(5) index-stack pops), then the memory /
    control events the instruction generates.

    For [Call]: [on_call] fires before the parameter-binding writes, which
    are reported at the callee's entry pc. For [Ret]: [on_ret] fires before
    [on_frame_release] (which lets a dependence tracker drop shadow state
    for the dead frame, so stack-address reuse cannot fabricate
    dependences). *)

type t = {
  on_instr : pc:int -> unit;
  on_read : pc:int -> addr:int -> unit;
  on_write : pc:int -> addr:int -> unit;
  on_branch : pc:int -> kind:Instr.branch_kind -> cid:int -> taken:bool -> unit;
      (** [taken = true] means the branch jumped (condition was zero): for
          a [BrLoop] predicate this is loop exit. *)
  on_call : pc:int -> fid:int -> unit;  (** [pc] is the callee entry *)
  on_ret : pc:int -> fid:int -> unit;  (** [pc] is the [Ret] instruction *)
  on_frame_release : base:int -> size:int -> unit;
}

val noop : t
(** Hooks that do nothing; useful as a record to override. *)
