lib/indexing/rules.mli: Index_tree Vm
