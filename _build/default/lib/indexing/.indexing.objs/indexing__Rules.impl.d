lib/indexing/rules.ml: Array Index_tree Node Vm
