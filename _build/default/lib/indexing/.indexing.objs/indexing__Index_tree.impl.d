lib/indexing/index_tree.ml: Array Construct_pool List Node Printf
