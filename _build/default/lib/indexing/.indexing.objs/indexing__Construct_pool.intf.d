lib/indexing/construct_pool.mli: Node
