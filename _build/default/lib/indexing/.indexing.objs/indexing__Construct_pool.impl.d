lib/indexing/construct_pool.ml: Node Queue
