lib/indexing/index_tree.mli: Node
