lib/indexing/node.ml: Format
