lib/indexing/node.mli: Format
