type t = {
  ipdom : int array;
  tr : Index_tree.t;
  mutable forced : int;
}

let create ~ipdom ~tree = { ipdom; tr = tree; forced = 0 }
let tree t = t.tr

let on_instr t ~pc =
  Index_tree.tick t.tr;
  (* Rule (5): close every construct whose immediate post-dominator is
     this instruction. *)
  let rec pops () =
    match Index_tree.top t.tr with
    | Some c when (not c.Node.is_func) && t.ipdom.(c.Node.label) = pc ->
        ignore (Index_tree.pop t.tr);
        pops ()
    | _ -> ()
  in
  pops ()

let on_branch t ~pc ~kind ~taken =
  match kind with
  | Vm.Instr.BrSc -> ()
  | Vm.Instr.BrIf -> ignore (Index_tree.push t.tr ~label:pc ~is_func:false)
  | Vm.Instr.BrLoop ->
      (* Rule (4): close the previous iteration (and any break/continue
         guards it left open), then open the next one unless exiting. *)
      ignore (Index_tree.pop_through t.tr ~label:pc);
      if not taken then ignore (Index_tree.push t.tr ~label:pc ~is_func:false)

let on_call t ~entry_pc =
  ignore (Index_tree.push t.tr ~label:entry_pc ~is_func:true)

let on_ret t =
  (* Rule (2). Constructs above the function node whose ipdom was jumped
     over should not exist (the epilogue post-dominates the body); pop
     them defensively if present. *)
  let rec unwind () =
    match Index_tree.top t.tr with
    | Some c when not c.Node.is_func ->
        t.forced <- t.forced + 1;
        ignore (Index_tree.pop t.tr);
        unwind ()
    | Some _ -> ignore (Index_tree.pop t.tr)
    | None -> invalid_arg "Rules.on_ret: empty stack"
  in
  unwind ()

let finish t =
  while Index_tree.depth t.tr > 0 do
    ignore (Index_tree.pop t.tr)
  done

let forced_pops t = t.forced
