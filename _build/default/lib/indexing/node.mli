(** A node of the execution index tree: one dynamic construct instance.

    Nodes are mutable and recycled through the {!Construct_pool}; a
    reference held by shadow memory may therefore be stale. Staleness is
    detected by the paper's time-window check ([Tenter <= Th < Texit],
    Table II line 7): a recycled node's new [tenter] necessarily exceeds
    every timestamp recorded during its previous lifetime, because reuse
    requires [now - texit >= texit - tenter >= 0]. *)

type t = {
  mutable label : int;  (** head pc of the static construct *)
  mutable tenter : int;
  mutable texit : int;  (** 0 while the instance is active *)
  mutable parent : t option;
  mutable is_func : bool;
}

val make : unit -> t

val duration : t -> int
(** [texit - tenter] of a completed instance. *)

val active : t -> bool
(** An instance is active while [texit = 0] ([texit] is reset on entry,
    footnote 1 of the paper). *)

val covers : t -> int -> bool
(** [covers c th]: the Table II line-7 window check
    [tenter <= th < texit]; false for active or recycled nodes. *)

val pp : Format.formatter -> t -> unit
