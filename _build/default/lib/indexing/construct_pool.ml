type t = {
  q : Node.t Queue.t;
  scan_limit : int;
  capacity : int;
  mutable allocated : int;
  mutable reused : int;
}

let create ?(scan_limit = 8) ?(capacity = 1_000_000) () =
  { q = Queue.create (); scan_limit; capacity; allocated = 0; reused = 0 }

let retirable ~now (c : Node.t) = now - c.texit >= c.texit - c.tenter

let fresh t =
  t.allocated <- t.allocated + 1;
  Node.make ()

let acquire t ~now =
  (* Below capacity, allocate fresh nodes — the paper's pre-allocated 1M
     pool behaves this way, which is what keeps completed instances
     addressable long enough to report large-Tdep edges. At capacity,
     examine up to [scan_limit] entries from the head (the oldest
     completions); entries not yet retirable are rotated to the tail. *)
  if t.allocated < t.capacity then fresh t
  else
    let rec scan k =
      if k = 0 || Queue.is_empty t.q then None
      else
        let c = Queue.pop t.q in
        if retirable ~now c then Some c
        else begin
          Queue.push c t.q;
          scan (k - 1)
        end
    in
    match scan (min t.scan_limit (Queue.length t.q)) with
    | Some c ->
        t.reused <- t.reused + 1;
        c
    | None -> fresh t

let release t c = Queue.push c t.q
let allocated t = t.allocated
let reused t = t.reused
let size t = Queue.length t.q
