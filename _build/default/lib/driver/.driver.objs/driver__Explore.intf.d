lib/driver/explore.mli: Alchemist Format Parsim Vm
