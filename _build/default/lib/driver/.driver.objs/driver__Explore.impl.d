lib/driver/explore.ml: Alchemist Array Format List Parsim Vm
