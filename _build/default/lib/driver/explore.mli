(** The Alchemist workflow, automated (the paper's §IV-B2 methodology):

    "We first run the sequential version through Alchemist to collect
    profiles. We then look for large constructs with few violating static
    RAW dependences and try to parallelize those constructs, using the
    WAW and WAR profiles as hints for where to insert variable
    privatization."

    [explore] does exactly that: profile once; rank constructs; for each
    of the top candidates derive {!Alchemist.Advice}; for candidates that
    are parallelizable (possibly after transforms), run the what-if
    simulator with the advice-derived privatization list; report
    everything, best simulated speedup first. *)

type candidate = {
  rank : int;  (** position in the size ranking (1-based) *)
  entry : Alchemist.Ranking.entry;
  advice : Alchemist.Advice.t;
  simulated : Parsim.Speedup.report option;
      (** [None] when the advice verdict is [`Not_amenable] *)
}

type t = {
  candidates : candidate list;  (** best simulated speedup first *)
  instructions : int;
  profile : Alchemist.Profile.t;
}

val explore :
  ?fuel:int ->
  ?cores:int ->
  ?spawn_overhead:int ->
  ?top:int ->
  ?min_share:float ->
  Vm.Program.t ->
  t
(** Examine the [top] (default 8) largest constructs covering at least
    [min_share] (default 0.02) of the run, skipping the root [main].
    Candidates whose advice says [`Not_amenable] are reported but not
    simulated. *)

val best : t -> candidate option
(** The candidate with the highest simulated speedup, if any. *)

val pp : Format.formatter -> t -> unit
(** A §IV-B2-style narrative: each candidate with its verdict, advice and
    simulated speedup. *)
