type candidate = {
  rank : int;
  entry : Alchemist.Ranking.entry;
  advice : Alchemist.Advice.t;
  simulated : Parsim.Speedup.report option;
}

type t = {
  candidates : candidate list;
  instructions : int;
  profile : Alchemist.Profile.t;
}

let explore ?fuel ?(cores = 4) ?spawn_overhead ?(top = 8) ?(min_share = 0.02)
    (prog : Vm.Program.t) =
  let result = Alchemist.Profiler.run ?fuel prog in
  let profile = result.Alchemist.Profiler.profile in
  let instructions = result.Alchemist.Profiler.stats.Alchemist.Profiler.instructions in
  let threshold = int_of_float (min_share *. float_of_int instructions) in
  let entries =
    Alchemist.Ranking.rank profile
    |> List.filter (fun (e : Alchemist.Ranking.entry) ->
           e.cid <> prog.cid_of_pc.(prog.funcs.(prog.main_fid).entry)
           && e.ttotal >= threshold)
  in
  let candidates =
    List.filteri (fun i _ -> i < top) entries
    |> List.mapi (fun i (entry : Alchemist.Ranking.entry) ->
           let advice = Alchemist.Advice.advise profile ~cid:entry.cid in
           let simulated =
             match advice.Alchemist.Advice.verdict with
             | `Not_amenable -> None
             | `Parallelizable | `Needs_transforms ->
                 let head_pc = prog.constructs.(entry.cid).head_pc in
                 Some
                   (Parsim.Speedup.analyze ?fuel ~cores ?spawn_overhead
                      ~privatize:(Alchemist.Advice.privatization_list advice)
                      ~reduce:(Alchemist.Advice.reduction_list advice)
                      prog ~head_pc)
           in
           { rank = i + 1; entry; advice; simulated })
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        let s c =
          match c.simulated with
          | Some r -> r.Parsim.Speedup.speedup
          | None -> neg_infinity
        in
        compare (s b) (s a))
      candidates
  in
  { candidates = sorted; instructions; profile }

let best t =
  List.find_opt (fun c -> c.simulated <> None) t.candidates

let pp ppf t =
  Format.fprintf ppf "@[<v>explored %d candidates over a %d-instruction run:@,"
    (List.length t.candidates) t.instructions;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,#%d by size: %a@," c.rank Alchemist.Ranking.pp_entry
        c.entry;
      Format.fprintf ppf "%a@," Alchemist.Advice.pp c.advice;
      match c.simulated with
      | Some r ->
          Format.fprintf ppf "  simulated: %a@," Parsim.Speedup.pp_report r
      | None -> Format.fprintf ppf "  (not simulated)@,")
    t.candidates;
  Format.fprintf ppf "@]"
