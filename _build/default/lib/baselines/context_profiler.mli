(** Baseline 2: calling-context-sensitive dependence profiling ([2], [6],
    [8] in the paper).

    Each dependence endpoint is tagged with an interned calling-context id
    (the stack of call sites). This distinguishes dependences exercised
    under different call chains — but, as §III argues, it cannot separate
    the four loop-boundary cases of the [F(){for i{for j{A();B();}}}]
    example: all four dependence flavours occur under the {e same}
    context, so they collapse into one profile entry. Test
    [baselines/context collapses loop cases] and bench E13 demonstrate
    this against Alchemist's index-tree attribution. *)

type edge = {
  head_pc : int;
  tail_pc : int;
  kind : [ `Raw | `War | `Waw ];
  head_ctx : int;  (** interned context id *)
  min_distance : int;
  count : int;
}

type result = {
  edges : edge list;
  contexts : (int * int list) list;
      (** context id -> call-site pc chain, outermost first *)
  instructions : int;
}

val run : ?fuel:int -> ?trace_locals:bool -> Vm.Program.t -> result

val contexts_of_pair :
  result -> head_pc:int -> tail_pc:int -> int list
(** Distinct head contexts under which the static pair was observed. *)
