(** A lightweight shadow memory parameterized over a context payload.

    Shared substrate for the baseline profilers: like
    {!Shadow.Shadow_memory} it detects RAW/WAR/WAW between static program
    points, but attaches an arbitrary ['ctx] captured at the {e head}
    access (the flat baseline uses [unit]; the context-sensitive baseline
    a calling-context id) instead of an index-tree node. *)

type 'ctx dep = {
  kind : [ `Raw | `War | `Waw ];
  head_pc : int;
  tail_pc : int;
  head_ctx : 'ctx;
  tail_ctx : 'ctx;
  distance : int;
}

type 'ctx t

val create : on_dep:('ctx dep -> unit) -> unit -> 'ctx t
val read : 'ctx t -> addr:int -> pc:int -> time:int -> ctx:'ctx -> unit
val write : 'ctx t -> addr:int -> pc:int -> time:int -> ctx:'ctx -> unit
val clear_range : 'ctx t -> base:int -> size:int -> unit
