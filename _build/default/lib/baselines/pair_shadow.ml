type 'ctx dep = {
  kind : [ `Raw | `War | `Waw ];
  head_pc : int;
  tail_pc : int;
  head_ctx : 'ctx;
  tail_ctx : 'ctx;
  distance : int;
}

type 'ctx access = { pc : int; time : int; ctx : 'ctx }

type 'ctx cell = {
  mutable last_write : 'ctx access option;
  mutable reads : (int * 'ctx access) list;
}

type 'ctx t = {
  cells : (int, 'ctx cell) Hashtbl.t;
  on_dep : 'ctx dep -> unit;
}

let create ~on_dep () = { cells = Hashtbl.create 4096; on_dep }

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
      let c = { last_write = None; reads = [] } in
      Hashtbl.add t.cells addr c;
      c

let emit t kind (h : _ access) (a : _ access) =
  t.on_dep
    {
      kind;
      head_pc = h.pc;
      tail_pc = a.pc;
      head_ctx = h.ctx;
      tail_ctx = a.ctx;
      distance = a.time - h.time;
    }

let read t ~addr ~pc ~time ~ctx =
  let c = cell t addr in
  let acc = { pc; time; ctx } in
  (match c.last_write with Some w -> emit t `Raw w acc | None -> ());
  c.reads <- (pc, acc) :: List.remove_assoc pc c.reads

let write t ~addr ~pc ~time ~ctx =
  let c = cell t addr in
  let acc = { pc; time; ctx } in
  (match c.last_write with Some w -> emit t `Waw w acc | None -> ());
  List.iter (fun (_, r) -> emit t `War r acc) c.reads;
  c.reads <- [];
  c.last_write <- Some acc

let clear_range t ~base ~size =
  for addr = base to base + size - 1 do
    Hashtbl.remove t.cells addr
  done
