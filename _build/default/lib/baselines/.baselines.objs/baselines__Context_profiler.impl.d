lib/baselines/context_profiler.ml: Hashtbl List Pair_shadow Vm
