lib/baselines/flat_profiler.ml: Hashtbl List Pair_shadow Vm
