lib/baselines/context_profiler.mli: Vm
