lib/baselines/flat_profiler.mli: Vm
