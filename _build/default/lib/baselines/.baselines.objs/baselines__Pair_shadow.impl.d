lib/baselines/pair_shadow.ml: Hashtbl List
