lib/baselines/pair_shadow.mli:
