type edge = {
  head_pc : int;
  tail_pc : int;
  kind : [ `Raw | `War | `Waw ];
  min_distance : int;
  count : int;
}

type result = { edges : edge list; instructions : int }

type stats = { mutable min_distance : int; mutable count : int }

let run ?fuel ?(trace_locals = false) (prog : Vm.Program.t) =
  let table : (int * int * [ `Raw | `War | `Waw ], stats) Hashtbl.t =
    Hashtbl.create 256
  in
  let on_dep (d : unit Pair_shadow.dep) =
    let key = (d.head_pc, d.tail_pc, d.kind) in
    match Hashtbl.find_opt table key with
    | Some s ->
        s.count <- s.count + 1;
        if d.distance < s.min_distance then s.min_distance <- d.distance
    | None -> Hashtbl.add table key { min_distance = d.distance; count = 1 }
  in
  let sm = Pair_shadow.create ~on_dep () in
  let time = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr = (fun ~pc:_ -> incr time);
      on_read =
        (fun ~pc ~addr -> Pair_shadow.read sm ~addr ~pc ~time:!time ~ctx:());
      on_write =
        (fun ~pc ~addr -> Pair_shadow.write sm ~addr ~pc ~time:!time ~ctx:());
      on_frame_release =
        (fun ~base ~size -> Pair_shadow.clear_range sm ~base ~size);
    }
  in
  let r = Vm.Machine.run_hooked ~trace_locals ?fuel hooks prog in
  let edges =
    Hashtbl.fold
      (fun (head_pc, tail_pc, kind) (s : stats) acc ->
        ({ head_pc; tail_pc; kind; min_distance = s.min_distance; count = s.count }
          : edge)
        :: acc)
      table []
    |> List.sort (fun (a : edge) (b : edge) -> compare a.min_distance b.min_distance)
  in
  { edges; instructions = r.Vm.Machine.instructions }
