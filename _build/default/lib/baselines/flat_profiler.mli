(** Baseline 1: flat dependence profiling.

    Aggregates dependences purely by static program-point pair, the way
    "most dependence profilers attribute dependence information to
    syntactic artifacts" (paper §I "Precision"). It can report that a
    dependence between two lines exists, its frequency, and its minimum
    distance — but not whether it stays inside a loop iteration, crosses
    the loop, or crosses the enclosing call, which is exactly the
    information parallelization needs. The comparison bench (E13) shows
    this on the paper's §III example. *)

type edge = {
  head_pc : int;
  tail_pc : int;
  kind : [ `Raw | `War | `Waw ];
  min_distance : int;
  count : int;
}

type result = { edges : edge list; instructions : int }

val run : ?fuel:int -> ?trace_locals:bool -> Vm.Program.t -> result
(** Edges sorted by ascending minimum distance. *)
