type edge = {
  head_pc : int;
  tail_pc : int;
  kind : [ `Raw | `War | `Waw ];
  head_ctx : int;
  min_distance : int;
  count : int;
}

type result = {
  edges : edge list;
  contexts : (int * int list) list;
  instructions : int;
}

type stats = { mutable min_distance : int; mutable count : int }

let run ?fuel ?(trace_locals = false) (prog : Vm.Program.t) =
  (* Interned calling contexts: a context is its parent id + a call-site
     entry pc, hash-consed so ids are cheap to attach to accesses. *)
  let intern : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let chains : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add chains 0 [];
  let next_id = ref 1 in
  let ctx_stack = ref [ 0 ] in
  let current () = List.hd !ctx_stack in
  let push_ctx entry_pc =
    let parent = current () in
    let id =
      match Hashtbl.find_opt intern (parent, entry_pc) with
      | Some id -> id
      | None ->
          let id = !next_id in
          incr next_id;
          Hashtbl.add intern (parent, entry_pc) id;
          Hashtbl.add chains id (Hashtbl.find chains parent @ [ entry_pc ]);
          id
    in
    ctx_stack := id :: !ctx_stack
  in
  let pop_ctx () = ctx_stack := List.tl !ctx_stack in
  let table : (int * int * [ `Raw | `War | `Waw ] * int, stats) Hashtbl.t =
    Hashtbl.create 256
  in
  let on_dep (d : int Pair_shadow.dep) =
    let key = (d.head_pc, d.tail_pc, d.kind, d.head_ctx) in
    match Hashtbl.find_opt table key with
    | Some s ->
        s.count <- s.count + 1;
        if d.distance < s.min_distance then s.min_distance <- d.distance
    | None -> Hashtbl.add table key { min_distance = d.distance; count = 1 }
  in
  let sm = Pair_shadow.create ~on_dep () in
  let time = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr = (fun ~pc:_ -> incr time);
      on_read =
        (fun ~pc ~addr ->
          Pair_shadow.read sm ~addr ~pc ~time:!time ~ctx:(current ()));
      on_write =
        (fun ~pc ~addr ->
          Pair_shadow.write sm ~addr ~pc ~time:!time ~ctx:(current ()));
      on_call = (fun ~pc ~fid:_ -> push_ctx pc);
      on_ret = (fun ~pc:_ ~fid:_ -> pop_ctx ());
      on_frame_release =
        (fun ~base ~size -> Pair_shadow.clear_range sm ~base ~size);
    }
  in
  let r = Vm.Machine.run_hooked ~trace_locals ?fuel hooks prog in
  let edges =
    Hashtbl.fold
      (fun (head_pc, tail_pc, kind, head_ctx) (s : stats) acc ->
        ({
           head_pc;
           tail_pc;
           kind;
           head_ctx;
           min_distance = s.min_distance;
           count = s.count;
         }
          : edge)
        :: acc)
      table []
    |> List.sort (fun (a : edge) (b : edge) -> compare a.min_distance b.min_distance)
  in
  let contexts = Hashtbl.fold (fun id chain acc -> (id, chain) :: acc) chains [] in
  { edges; contexts; instructions = r.Vm.Machine.instructions }

let contexts_of_pair result ~head_pc ~tail_pc =
  result.edges
  |> List.filter_map (fun e ->
         if e.head_pc = head_pc && e.tail_pc = tail_pc then Some e.head_ctx
         else None)
  |> List.sort_uniq compare
