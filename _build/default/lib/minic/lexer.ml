type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = Srcloc.make ~line:st.line ~col:st.col
let is_eof st = st.pos >= String.length st.src
let peek st = if is_eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (is_eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_ws_and_comments st
  | '/' when peek2 st = '/' ->
      while (not (is_eof st)) && peek st <> '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | '/' when peek2 st = '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec finish () =
        if is_eof st then Diag.error start "unterminated block comment"
        else if peek st = '*' && peek2 st = '/' then begin
          advance st;
          advance st
        end
        else begin
          advance st;
          finish ()
        end
      in
      finish ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st =
  let start = loc st in
  let b = Buffer.create 16 in
  if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
    advance st;
    advance st;
    if not (is_hex (peek st)) then Diag.error start "malformed hex literal";
    while is_hex (peek st) do
      Buffer.add_char b (peek st);
      advance st
    done;
    Token.INT_LIT (int_of_string ("0x" ^ Buffer.contents b))
  end
  else begin
    while is_digit (peek st) do
      Buffer.add_char b (peek st);
      advance st
    done;
    if is_ident_start (peek st) then
      Diag.error (loc st) "identifier may not start with a digit";
    Token.INT_LIT (int_of_string (Buffer.contents b))
  end

let lex_char st =
  let start = loc st in
  advance st;
  (* opening quote *)
  let c =
    match peek st with
    | '\000' -> Diag.error start "unterminated character literal"
    | '\\' -> (
        advance st;
        let e = peek st in
        advance st;
        match e with
        | 'n' -> Char.code '\n'
        | 't' -> Char.code '\t'
        | 'r' -> Char.code '\r'
        | '0' -> 0
        | '\\' -> Char.code '\\'
        | '\'' -> Char.code '\''
        | c -> Diag.error start "unknown escape '\\%c'" c)
    | c ->
        advance st;
        Char.code c
  in
  if peek st <> '\'' then Diag.error start "unterminated character literal";
  advance st;
  Token.INT_LIT c

let lex_ident st =
  let b = Buffer.create 16 in
  while is_ident_char (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  let s = Buffer.contents b in
  match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

(* Operators, longest-match first. *)
let lex_operator st =
  let l = loc st in
  let c = peek st and c2 = peek2 st in
  let c3 =
    if st.pos + 2 < String.length st.src then st.src.[st.pos + 2] else '\000'
  in
  let take n tok =
    for _ = 1 to n do
      advance st
    done;
    tok
  in
  match (c, c2, c3) with
  | '<', '<', '=' -> take 3 Token.SHL_ASSIGN
  | '>', '>', '=' -> take 3 Token.SHR_ASSIGN
  | '<', '<', _ -> take 2 Token.SHL
  | '>', '>', _ -> take 2 Token.SHR
  | '<', '=', _ -> take 2 Token.LE
  | '>', '=', _ -> take 2 Token.GE
  | '=', '=', _ -> take 2 Token.EQEQ
  | '!', '=', _ -> take 2 Token.NEQ
  | '&', '&', _ -> take 2 Token.ANDAND
  | '|', '|', _ -> take 2 Token.OROR
  | '+', '+', _ -> take 2 Token.PLUSPLUS
  | '-', '-', _ -> take 2 Token.MINUSMINUS
  | '+', '=', _ -> take 2 Token.PLUS_ASSIGN
  | '-', '=', _ -> take 2 Token.MINUS_ASSIGN
  | '*', '=', _ -> take 2 Token.STAR_ASSIGN
  | '/', '=', _ -> take 2 Token.SLASH_ASSIGN
  | '%', '=', _ -> take 2 Token.PERCENT_ASSIGN
  | '&', '=', _ -> take 2 Token.AMP_ASSIGN
  | '|', '=', _ -> take 2 Token.PIPE_ASSIGN
  | '^', '=', _ -> take 2 Token.CARET_ASSIGN
  | '+', _, _ -> take 1 Token.PLUS
  | '-', _, _ -> take 1 Token.MINUS
  | '*', _, _ -> take 1 Token.STAR
  | '/', _, _ -> take 1 Token.SLASH
  | '%', _, _ -> take 1 Token.PERCENT
  | '&', _, _ -> take 1 Token.AMP
  | '|', _, _ -> take 1 Token.PIPE
  | '^', _, _ -> take 1 Token.CARET
  | '~', _, _ -> take 1 Token.TILDE
  | '!', _, _ -> take 1 Token.BANG
  | '<', _, _ -> take 1 Token.LT
  | '>', _, _ -> take 1 Token.GT
  | '=', _, _ -> take 1 Token.ASSIGN
  | '(', _, _ -> take 1 Token.LPAREN
  | ')', _, _ -> take 1 Token.RPAREN
  | '{', _, _ -> take 1 Token.LBRACE
  | '}', _, _ -> take 1 Token.RBRACE
  | '[', _, _ -> take 1 Token.LBRACKET
  | ']', _, _ -> take 1 Token.RBRACKET
  | ';', _, _ -> take 1 Token.SEMI
  | ',', _, _ -> take 1 Token.COMMA
  | c, _, _ -> Diag.error l "unexpected character '%c'" c

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let rec go () =
    skip_ws_and_comments st;
    let l = loc st in
    if is_eof st then toks := (Token.EOF, l) :: !toks
    else begin
      let tok =
        let c = peek st in
        if is_digit c then lex_number st
        else if c = '\'' then lex_char st
        else if is_ident_start c then lex_ident st
        else lex_operator st
      in
      toks := (tok, l) :: !toks;
      go ()
    end
  in
  go ();
  Array.of_list (List.rev !toks)
