(** Diagnostics for the Mini-C frontend. *)

exception Error of string * Srcloc.t
(** Raised by the lexer, parser and type checker on malformed input. *)

val error : Srcloc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)

val wrap : (unit -> 'a) -> ('a, string) result
(** Runs a frontend phase, converting {!Error} into [Error msg] where [msg]
    includes the source location. *)
