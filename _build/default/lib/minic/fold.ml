open Ast

let count = ref 0

let tick x =
  incr count;
  x

(* Mirror of the VM's arithmetic on literals; [None] where the VM traps
   (so the trap survives folding). *)
let eval_binop op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Mod -> if b = 0 then None else Some (a mod b)
  | Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
  | Shr -> if b < 0 || b > 62 then None else Some (a asr b)
  | BitAnd -> Some (a land b)
  | BitOr -> Some (a lor b)
  | BitXor -> Some (a lxor b)
  | Lt -> Some (if a < b then 1 else 0)
  | Le -> Some (if a <= b then 1 else 0)
  | Gt -> Some (if a > b then 1 else 0)
  | Ge -> Some (if a >= b then 1 else 0)
  | Eq -> Some (if a = b then 1 else 0)
  | Ne -> Some (if a <> b then 1 else 0)
  | LogAnd | LogOr -> None (* handled separately for evaluation order *)

let eval_unop op a =
  match op with
  | Neg -> -a
  | LogNot -> if a = 0 then 1 else 0
  | BitNot -> lnot a

let rec expr (e : Ast.expr) =
  let mk d = { e with edesc = d } in
  match e.edesc with
  | IntLit _ | Var _ -> e
  | Index (a, i) -> mk (Index (a, expr i))
  | Unop (op, e1) -> (
      match (expr e1 : Ast.expr) with
      | { edesc = IntLit n; _ } -> tick (mk (IntLit (eval_unop op n)))
      | e1' -> mk (Unop (op, e1')))
  | Binop (LogAnd, a, b) -> (
      match expr a with
      | { edesc = IntLit 0; _ } -> tick (mk (IntLit 0))
      | { edesc = IntLit _; _ } ->
          (* [k && e] with k<>0 is [e != 0]: e still evaluated *)
          tick (mk (Binop (Ne, expr b, mk (IntLit 0))))
      | a' -> mk (Binop (LogAnd, a', expr b)))
  | Binop (LogOr, a, b) -> (
      match expr a with
      | { edesc = IntLit 0; _ } -> tick (mk (Binop (Ne, expr b, mk (IntLit 0))))
      | { edesc = IntLit _; _ } -> tick (mk (IntLit 1))
      | a' -> mk (Binop (LogOr, a', expr b)))
  | Binop (op, a, b) -> (
      let a' = expr a and b' = expr b in
      match (a'.edesc, b'.edesc) with
      | IntLit x, IntLit y -> (
          match eval_binop op x y with
          | Some v -> tick (mk (IntLit v))
          | None -> mk (Binop (op, a', b')))
      (* effect-safe identities *)
      | _, IntLit 0 when op = Add || op = Sub -> tick a'
      | IntLit 0, _ when op = Add -> tick b'
      | _, IntLit 1 when op = Mul -> tick a'
      | IntLit 1, _ when op = Mul -> tick b'
      | _ -> mk (Binop (op, a', b')))
  | Call (f, args) -> mk (Call (f, List.map expr args))

let lvalue = function
  | LVar _ as lv -> lv
  | LIndex (a, i, loc) -> LIndex (a, expr i, loc)

let rec stmt (s : Ast.stmt) =
  let mk d = { s with sdesc = d } in
  match s.sdesc with
  | DeclScalar (x, init) -> mk (DeclScalar (x, Option.map expr init))
  | DeclArray _ | Break | Continue -> s
  | Assign (lv, e) -> mk (Assign (lvalue lv, expr e))
  | OpAssign (op, lv, e) -> mk (OpAssign (op, lvalue lv, expr e))
  | If (cond, then_, else_) -> (
      match (expr cond : Ast.expr) with
      | { edesc = IntLit 0; _ } -> (
          match else_ with
          | Some e -> tick (stmt e)
          | None -> tick (mk (Block [])))
      | { edesc = IntLit _; _ } -> tick (stmt then_)
      | cond' -> mk (If (cond', stmt then_, Option.map stmt else_)))
  | While (cond, body) -> (
      match (expr cond : Ast.expr) with
      | { edesc = IntLit 0; _ } -> tick (mk (Block []))
      | cond' -> mk (While (cond', stmt body)))
  | DoWhile (body, cond) -> (
      match (expr cond : Ast.expr) with
      | { edesc = IntLit 0; _ } ->
          (* runs exactly once; keep the body's own scope *)
          tick (mk (Block [ stmt body ]))
      | cond' -> mk (DoWhile (stmt body, cond')))
  | For (init, cond, update, body) -> (
      let cond' = Option.map expr cond in
      match cond' with
      | Some { edesc = IntLit 0; _ } ->
          (* only the init runs (its declarations are loop-scoped) *)
          tick
            (mk
               (Block
                  (match init with Some i -> [ stmt i ] | None -> [])))
      | _ -> mk (For (Option.map stmt init, cond', Option.map stmt update, stmt body)))
  | Return e -> mk (Return (Option.map expr e))
  | ExprStmt e -> mk (ExprStmt (expr e))
  | Print e -> mk (Print (expr e))
  | Block stmts -> mk (Block (List.map stmt stmts))

let func (f : Ast.func) = { f with fbody = List.map stmt f.fbody }

let program (p : Ast.program) = { p with funcs = List.map func p.funcs }

let stats p =
  count := 0;
  let p' = program p in
  (p', !count)

let expr e = expr e
let stmt s = stmt s
