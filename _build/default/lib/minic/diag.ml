exception Error of string * Srcloc.t

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (msg, loc))) fmt

let wrap f =
  match f () with
  | v -> Ok v
  | exception Error (msg, loc) ->
      Result.Error (Format.asprintf "%a: %s" Srcloc.pp loc msg)
