type unop = Neg | LogNot | BitNot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | BitAnd
  | BitOr
  | BitXor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LogAnd
  | LogOr

type expr = { edesc : edesc; eloc : Srcloc.t }

and edesc =
  | IntLit of int
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type lvalue = LVar of string * Srcloc.t | LIndex of string * expr * Srcloc.t
type stmt = { sdesc : sdesc; sloc : Srcloc.t }

and sdesc =
  | DeclScalar of string * expr option
  | DeclArray of string * int
  | Assign of lvalue * expr
  | OpAssign of binop * lvalue * expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | DoWhile of stmt * expr
  | For of stmt option * expr option * stmt option * stmt
  | Break
  | Continue
  | Return of expr option
  | ExprStmt of expr
  | Print of expr
  | Block of stmt list

type ret_ty = RetInt | RetVoid
type param = PScalar of string | PArray of string

type func = {
  fname : string;
  fret : ret_ty;
  fparams : param list;
  fbody : stmt list;
  floc : Srcloc.t;
}

type global =
  | GScalar of string * int * Srcloc.t
  | GArray of string * int * Srcloc.t

type program = { globals : global list; funcs : func list }

let global_name = function GScalar (n, _, _) | GArray (n, _, _) -> n
let param_name = function PScalar n | PArray n -> n

let unop_to_string = function Neg -> "-" | LogNot -> "!" | BitNot -> "~"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | LogAnd -> "&&"
  | LogOr -> "||"

let pp_unop ppf u = Format.pp_print_string ppf (unop_to_string u)
let pp_binop ppf b = Format.pp_print_string ppf (binop_to_string b)
