open Ast

let rec pp_expr ppf (e : expr) =
  match e.edesc with
  (* negative literals print like a negation, so the round trip through
     the parser (which reads [-n] as [Unop (Neg, n)]) is stable *)
  | IntLit n when n < 0 -> Format.fprintf ppf "(-%d)" (-n)
  | IntLit n -> Format.fprintf ppf "%d" n
  | Var x -> Format.pp_print_string ppf x
  | Index (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i
  | Unop (op, e1) -> Format.fprintf ppf "(%a%a)" pp_unop op pp_expr e1
  | Binop (op, e1, e2) ->
      Format.fprintf ppf "(%a %a %a)" pp_expr e1 pp_binop op pp_expr e2
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args

let pp_lvalue ppf = function
  | LVar (x, _) -> Format.pp_print_string ppf x
  | LIndex (a, i, _) -> Format.fprintf ppf "%s[%a]" a pp_expr i

let rec pp_stmt ppf (s : stmt) =
  match s.sdesc with
  | DeclScalar (x, None) -> Format.fprintf ppf "@[<h>int %s;@]" x
  | DeclScalar (x, Some e) -> Format.fprintf ppf "@[<h>int %s = %a;@]" x pp_expr e
  | DeclArray (x, n) -> Format.fprintf ppf "@[<h>int %s[%d];@]" x n
  | Assign (lv, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_lvalue lv pp_expr e
  | OpAssign (op, lv, e) ->
      Format.fprintf ppf "@[<h>%a %a= %a;@]" pp_lvalue lv pp_binop op pp_expr e
  | If (c, t, None) ->
      Format.fprintf ppf "@[<v 2>if (%a) %a@]" pp_expr c pp_stmt_as_block t
  | If (c, t, Some e) ->
      Format.fprintf ppf "@[<v 2>if (%a) %a@] else %a" pp_expr c
        pp_stmt_as_block t pp_stmt_as_block e
  | While (c, b) ->
      Format.fprintf ppf "@[<v 2>while (%a) %a@]" pp_expr c pp_stmt_as_block b
  | DoWhile (b, c) ->
      Format.fprintf ppf "@[<v 2>do %a while (%a);@]" pp_stmt_as_block b
        pp_expr c
  | For (init, cond, update, b) ->
      let pp_opt_simple ppf = function
        | None -> ()
        | Some s -> pp_simple ppf s
      in
      let pp_opt_expr ppf = function None -> () | Some e -> pp_expr ppf e in
      Format.fprintf ppf "@[<v 2>for (%a; %a; %a) %a@]" pp_opt_simple init
        pp_opt_expr cond pp_opt_simple update pp_stmt_as_block b
  | Break -> Format.pp_print_string ppf "break;"
  | Continue -> Format.pp_print_string ppf "continue;"
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "@[<h>return %a;@]" pp_expr e
  | ExprStmt e -> Format.fprintf ppf "@[<h>%a;@]" pp_expr e
  | Print e -> Format.fprintf ppf "@[<h>print(%a);@]" pp_expr e
  | Block stmts ->
      Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
        (Format.pp_print_list pp_stmt)
        stmts

(* [for] clauses have no trailing semicolon; strip it by printing the
   statement payload directly. *)
and pp_simple ppf (s : stmt) =
  match s.sdesc with
  | DeclScalar (x, Some e) -> Format.fprintf ppf "int %s = %a" x pp_expr e
  | Assign (lv, e) -> Format.fprintf ppf "%a = %a" pp_lvalue lv pp_expr e
  | OpAssign (op, lv, e) ->
      Format.fprintf ppf "%a %a= %a" pp_lvalue lv pp_binop op pp_expr e
  | ExprStmt e -> pp_expr ppf e
  | _ -> invalid_arg "Pretty.pp_simple: not a simple statement"

and pp_stmt_as_block ppf (s : stmt) =
  match s.sdesc with
  | Block _ -> pp_stmt ppf s
  | _ -> Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}" pp_stmt s

let pp_param ppf = function
  | PScalar x -> Format.fprintf ppf "int %s" x
  | PArray x -> Format.fprintf ppf "int %s[]" x

let pp_func ppf (f : func) =
  let ret = match f.fret with RetInt -> "int" | RetVoid -> "void" in
  Format.fprintf ppf "@[<v 2>%s %s(%a) {@,%a@]@,}" ret f.fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_param)
    f.fparams
    (Format.pp_print_list pp_stmt)
    f.fbody

let pp_global ppf = function
  | GScalar (x, 0, _) -> Format.fprintf ppf "int %s;" x
  | GScalar (x, v, _) -> Format.fprintf ppf "int %s = %d;" x v
  | GArray (x, n, _) -> Format.fprintf ppf "int %s[%d];" x n

let pp_program ppf (p : program) =
  Format.fprintf ppf "@[<v>%a%s%a@]@."
    (Format.pp_print_list pp_global)
    p.globals
    (if p.globals = [] then "" else "\n")
    (Format.pp_print_list pp_func)
    p.funcs

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a" pp_program p
