lib/minic/ast.ml: Format Srcloc
