lib/minic/pretty.ml: Ast Format
