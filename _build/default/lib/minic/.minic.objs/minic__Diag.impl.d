lib/minic/diag.ml: Format Result Srcloc
