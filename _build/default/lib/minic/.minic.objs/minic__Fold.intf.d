lib/minic/fold.mli: Ast
