lib/minic/srcloc.mli: Format
