lib/minic/diag.mli: Format Srcloc
