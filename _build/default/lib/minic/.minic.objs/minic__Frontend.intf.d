lib/minic/frontend.mli: Ast
