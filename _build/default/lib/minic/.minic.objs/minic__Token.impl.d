lib/minic/token.ml: Format
