lib/minic/lexer.mli: Srcloc Token
