lib/minic/lexer.ml: Array Buffer Char Diag List Srcloc String Token
