lib/minic/fold.ml: Ast List Option
