lib/minic/parser.ml: Array Ast Diag Lexer List Srcloc Token
