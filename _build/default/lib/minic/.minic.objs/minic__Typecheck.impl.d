lib/minic/typecheck.ml: Ast Diag Hashtbl List Option Srcloc
