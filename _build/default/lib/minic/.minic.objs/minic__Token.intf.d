lib/minic/token.mli: Format
