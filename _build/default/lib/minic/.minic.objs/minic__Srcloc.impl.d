lib/minic/srcloc.ml: Format Int
