lib/minic/frontend.ml: Buffer Diag List Parser String Typecheck
