lib/minic/ast.mli: Format Srcloc
