(** Source locations for Mini-C programs.

    A location is a [line]/[col] pair, both 1-based. Locations flow from the
    lexer through the AST into the bytecode so that profiling reports can
    refer back to source lines, as the paper's Fig. 2 profile does. *)

type t = { line : int; col : int }

val dummy : t
(** A location used for synthesized nodes (line 0, col 0). *)

val make : line:int -> col:int -> t

val compare : t -> t -> int
(** Lexicographic order: by line, then column. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints ["line:col"]. *)

val to_string : t -> string
