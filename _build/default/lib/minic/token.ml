type t =
  | INT_LIT of int
  | IDENT of string
  | KW_INT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_PRINT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return"
  | KW_PRINT -> "print"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | SHL -> "<<"
  | SHR -> ">>"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | PIPE_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "return" -> Some KW_RETURN
  | "print" -> Some KW_PRINT
  | _ -> None
