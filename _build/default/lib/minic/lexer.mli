(** Hand-written lexer for Mini-C.

    Supports decimal, hexadecimal ([0x...]) and character ([{'a'}]) integer
    literals, [//] line comments and [/* ... */] block comments. *)

val tokenize : string -> (Token.t * Srcloc.t) array
(** [tokenize src] lexes a whole compilation unit. The result always ends
    with an [EOF] token carrying the location just past the input.

    @raise Diag.Error on an unterminated comment, a malformed literal, or an
    unexpected character. *)
