open Ast

type kind = KScalar | KArray

let kind_name = function KScalar -> "scalar" | KArray -> "array"

type fsig = { ret : ret_ty; params : param list }

type env = {
  funcs : (string, fsig) Hashtbl.t;
  scopes : (string, kind) Hashtbl.t list;
}

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some k -> Some k
        | None -> go rest)
  in
  go env.scopes

let declare env loc name kind =
  match env.scopes with
  | [] -> invalid_arg "Typecheck.declare: empty scope stack"
  | scope :: _ ->
      if Hashtbl.mem scope name then
        Diag.error loc "duplicate declaration of '%s' in the same scope" name
      else Hashtbl.add scope name kind

let push_scope env = { env with scopes = Hashtbl.create 16 :: env.scopes }

let expect_kind env loc name expected =
  match lookup env name with
  | None -> Diag.error loc "undeclared identifier '%s'" name
  | Some k when k = expected -> ()
  | Some k ->
      Diag.error loc "'%s' is a %s but is used as a %s" name (kind_name k)
        (kind_name expected)

(* Check an expression in value position: it must produce an int. *)
let rec check_expr env (e : expr) =
  match e.edesc with
  | IntLit _ -> ()
  | Var name -> expect_kind env e.eloc name KScalar
  | Index (name, idx) ->
      expect_kind env e.eloc name KArray;
      check_expr env idx
  | Unop (_, e1) -> check_expr env e1
  | Binop (_, e1, e2) ->
      check_expr env e1;
      check_expr env e2
  | Call (fname, args) -> (
      match check_call env e.eloc fname args with
      | RetInt -> ()
      | RetVoid ->
          Diag.error e.eloc "void function '%s' used where a value is needed"
            fname)

and check_call env loc fname args =
  match Hashtbl.find_opt env.funcs fname with
  | None -> Diag.error loc "call to undeclared function '%s'" fname
  | Some { ret; params } ->
      let na = List.length args and np = List.length params in
      if na <> np then
        Diag.error loc "function '%s' expects %d argument(s) but got %d" fname
          np na;
      List.iter2
        (fun p a ->
          match p with
          | PScalar _ -> check_expr env a
          | PArray pname -> (
              match a.edesc with
              | Var vname -> expect_kind env a.eloc vname KArray
              | _ ->
                  Diag.error a.eloc
                    "argument for array parameter '%s' of '%s' must be an \
                     array name"
                    pname fname))
        params args;
      ret

let check_lvalue env = function
  | LVar (name, loc) -> expect_kind env loc name KScalar
  | LIndex (name, idx, loc) ->
      expect_kind env loc name KArray;
      check_expr env idx

let rec check_stmt env ~in_loop ~ret (s : stmt) =
  match s.sdesc with
  | DeclScalar (name, init) ->
      Option.iter (check_expr env) init;
      declare env s.sloc name KScalar
  | DeclArray (name, n) ->
      if n <= 0 then
        Diag.error s.sloc "array '%s' must have positive length, got %d" name n;
      declare env s.sloc name KArray
  | Assign (lv, e) ->
      check_lvalue env lv;
      check_expr env e
  | OpAssign (_, lv, e) ->
      check_lvalue env lv;
      check_expr env e
  | If (cond, then_, else_) ->
      check_expr env cond;
      check_stmt (push_scope env) ~in_loop ~ret then_;
      Option.iter (check_stmt (push_scope env) ~in_loop ~ret) else_
  | While (cond, body) ->
      check_expr env cond;
      check_stmt (push_scope env) ~in_loop:true ~ret body
  | DoWhile (body, cond) ->
      check_stmt (push_scope env) ~in_loop:true ~ret body;
      check_expr env cond
  | For (init, cond, update, body) ->
      let env' = push_scope env in
      Option.iter (check_stmt env' ~in_loop ~ret) init;
      Option.iter (check_expr env') cond;
      Option.iter (check_stmt env' ~in_loop:true ~ret) update;
      check_stmt (push_scope env') ~in_loop:true ~ret body
  | Break ->
      if not in_loop then Diag.error s.sloc "'break' outside of a loop"
  | Continue ->
      if not in_loop then Diag.error s.sloc "'continue' outside of a loop"
  | Return None ->
      if ret <> RetVoid then
        Diag.error s.sloc "'return;' in a function returning int"
  | Return (Some e) ->
      if ret <> RetInt then
        Diag.error s.sloc "'return <expr>;' in a void function";
      check_expr env e
  | ExprStmt e -> (
      (* A bare call may be void; any other expression must be an int
         (checked recursively), and is allowed for its effects only. *)
      match e.edesc with
      | Call (fname, args) -> ignore (check_call env e.eloc fname args)
      | _ -> check_expr env e)
  | Print e -> check_expr env e
  | Block stmts ->
      let env' = push_scope env in
      List.iter (check_stmt env' ~in_loop ~ret) stmts

let check_func env (f : func) =
  let env = push_scope env in
  List.iter
    (fun p ->
      let kind = match p with PScalar _ -> KScalar | PArray _ -> KArray in
      declare env f.floc (param_name p) kind)
    f.fparams;
  let env = push_scope env in
  List.iter (check_stmt env ~in_loop:false ~ret:f.fret) f.fbody

let check (p : program) =
  let funcs = Hashtbl.create 64 in
  List.iter
    (fun f ->
      if Hashtbl.mem funcs f.fname then
        Diag.error f.floc "duplicate function '%s'" f.fname;
      Hashtbl.add funcs f.fname { ret = f.fret; params = f.fparams })
    p.funcs;
  let globals = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let name = global_name g in
      let loc = match g with GScalar (_, _, l) | GArray (_, _, l) -> l in
      if Hashtbl.mem globals name then
        Diag.error loc "duplicate global '%s'" name;
      if Hashtbl.mem funcs name then
        Diag.error loc "global '%s' clashes with a function name" name;
      (match g with
      | GArray (_, n, _) when n <= 0 ->
          Diag.error loc "array '%s' must have positive length, got %d" name n
      | _ -> ());
      Hashtbl.add globals name
        (match g with GScalar _ -> KScalar | GArray _ -> KArray))
    p.globals;
  let env = { funcs; scopes = [ globals ] } in
  List.iter (check_func env) p.funcs;
  match Hashtbl.find_opt funcs "main" with
  | None -> Diag.error Srcloc.dummy "program has no 'main' function"
  | Some { params = []; _ } -> ()
  | Some _ -> Diag.error Srcloc.dummy "'main' must take no parameters"

let check_result p = Diag.wrap (fun () -> check p)
