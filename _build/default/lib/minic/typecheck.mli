(** Static checking for Mini-C.

    Mini-C has only two value kinds — [int] scalars and [int] arrays — so
    "type checking" is name resolution plus kind and arity checking:

    - every identifier is declared before use, with no duplicate
      declarations in the same scope (locals may shadow globals);
    - scalars and arrays are used consistently ([a[i]] needs an array,
      [x + 1] needs scalars, an argument passed to an array parameter must
      be an array name);
    - calls match the callee's arity and parameter kinds, and a [void]
      call cannot appear where a value is needed;
    - [break]/[continue] appear only inside loops, [return e] only in
      [int] functions and bare [return] only in [void] functions;
    - array lengths are positive, and a [main] function with no parameters
      exists. *)

val check : Ast.program -> unit
(** @raise Diag.Error on the first violation found. *)

val check_result : Ast.program -> (unit, string) result
(** Like {!check} but capturing the error as [Error message]. *)
