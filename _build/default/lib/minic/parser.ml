open Ast

type state = { toks : (Token.t * Srcloc.t) array; mutable pos : int }

let cur st = fst st.toks.(st.pos)
let cur_loc st = snd st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if fst t <> Token.EOF then st.pos <- st.pos + 1;
  t

let expect st tok =
  let got, loc = next st in
  if got <> tok then
    Diag.error loc "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string got)

let expect_ident st =
  match next st with
  | Token.IDENT s, _ -> s
  | got, loc ->
      Diag.error loc "expected identifier but found '%s'" (Token.to_string got)

let expect_int_lit st =
  match next st with
  | Token.INT_LIT n, _ -> n
  | got, loc ->
      Diag.error loc "expected integer literal but found '%s'"
        (Token.to_string got)

let accept st tok =
  if cur st = tok then begin
    ignore (next st);
    true
  end
  else false

let peek_ahead st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Token.EOF

(* --- expressions ------------------------------------------------------- *)

let binop_of_assign_op = function
  | Token.PLUS_ASSIGN -> Some Add
  | Token.MINUS_ASSIGN -> Some Sub
  | Token.STAR_ASSIGN -> Some Mul
  | Token.SLASH_ASSIGN -> Some Div
  | Token.PERCENT_ASSIGN -> Some Mod
  | Token.AMP_ASSIGN -> Some BitAnd
  | Token.PIPE_ASSIGN -> Some BitOr
  | Token.CARET_ASSIGN -> Some BitXor
  | Token.SHL_ASSIGN -> Some Shl
  | Token.SHR_ASSIGN -> Some Shr
  | _ -> None

(* Precedence climbing. Level 0 is loosest ([||]). *)
let binop_at_level lvl tok =
  match (lvl, tok) with
  | 0, Token.OROR -> Some LogOr
  | 1, Token.ANDAND -> Some LogAnd
  | 2, Token.PIPE -> Some BitOr
  | 3, Token.CARET -> Some BitXor
  | 4, Token.AMP -> Some BitAnd
  | 5, Token.EQEQ -> Some Eq
  | 5, Token.NEQ -> Some Ne
  | 6, Token.LT -> Some Lt
  | 6, Token.LE -> Some Le
  | 6, Token.GT -> Some Gt
  | 6, Token.GE -> Some Ge
  | 7, Token.SHL -> Some Shl
  | 7, Token.SHR -> Some Shr
  | 8, Token.PLUS -> Some Add
  | 8, Token.MINUS -> Some Sub
  | 9, Token.STAR -> Some Mul
  | 9, Token.SLASH -> Some Div
  | 9, Token.PERCENT -> Some Mod
  | _ -> None

let max_level = 9

let rec parse_expr_st st = parse_level st 0

and parse_level st lvl =
  if lvl > max_level then parse_unary st
  else begin
    let lhs = ref (parse_level st (lvl + 1)) in
    let continue = ref true in
    while !continue do
      match binop_at_level lvl (cur st) with
      | Some op ->
          let loc = cur_loc st in
          ignore (next st);
          let rhs = parse_level st (lvl + 1) in
          lhs := { edesc = Binop (op, !lhs, rhs); eloc = loc }
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  let loc = cur_loc st in
  match cur st with
  | Token.MINUS ->
      ignore (next st);
      { edesc = Unop (Neg, parse_unary st); eloc = loc }
  | Token.BANG ->
      ignore (next st);
      { edesc = Unop (LogNot, parse_unary st); eloc = loc }
  | Token.TILDE ->
      ignore (next st);
      { edesc = Unop (BitNot, parse_unary st); eloc = loc }
  | _ -> parse_primary st

and parse_primary st =
  let tok, loc = next st in
  match tok with
  | Token.INT_LIT n -> { edesc = IntLit n; eloc = loc }
  | Token.LPAREN ->
      let e = parse_expr_st st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      match cur st with
      | Token.LPAREN ->
          ignore (next st);
          let args = parse_args st in
          { edesc = Call (name, args); eloc = loc }
      | Token.LBRACKET ->
          ignore (next st);
          let idx = parse_expr_st st in
          expect st Token.RBRACKET;
          { edesc = Index (name, idx); eloc = loc }
      | _ -> { edesc = Var name; eloc = loc })
  | t -> Diag.error loc "unexpected token '%s' in expression" (Token.to_string t)

and parse_args st =
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr_st st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

(* --- statements --------------------------------------------------------- *)

(* A "simple" statement: assignment, op-assignment, ++/--, or a bare
   expression. Used both for ordinary statements and for/init/update
   clauses (which take no trailing semicolon). *)
let rec parse_simple st =
  let loc = cur_loc st in
  match (cur st, peek_ahead st) with
  | Token.IDENT name, (Token.ASSIGN | Token.PLUSPLUS | Token.MINUSMINUS) ->
      ignore (next st);
      let lv = LVar (name, loc) in
      mk_assign st loc lv
  | Token.IDENT name, tok when binop_of_assign_op tok <> None ->
      ignore (next st);
      let lv = LVar (name, loc) in
      mk_assign st loc lv
  | Token.IDENT name, Token.LBRACKET ->
      (* Could be [a[i] = e], [a[i] += e], [a[i]++] or the expression
         [a[i]] (e.g. inside a call). Parse the index, then decide. *)
      let save = st.pos in
      ignore (next st);
      ignore (next st);
      let idx = parse_expr_st st in
      expect st Token.RBRACKET;
      let is_assign =
        match cur st with
        | Token.ASSIGN | Token.PLUSPLUS | Token.MINUSMINUS -> true
        | t -> binop_of_assign_op t <> None
      in
      if is_assign then mk_assign st loc (LIndex (name, idx, loc))
      else begin
        st.pos <- save;
        let e = parse_expr_st st in
        { sdesc = ExprStmt e; sloc = loc }
      end
  | _ ->
      let e = parse_expr_st st in
      { sdesc = ExprStmt e; sloc = loc }

and mk_assign st loc lv =
  let tok, oploc = next st in
  match tok with
  | Token.ASSIGN ->
      let e = parse_expr_st st in
      { sdesc = Assign (lv, e); sloc = loc }
  | Token.PLUSPLUS ->
      { sdesc = OpAssign (Add, lv, { edesc = IntLit 1; eloc = loc }); sloc = loc }
  | Token.MINUSMINUS ->
      { sdesc = OpAssign (Sub, lv, { edesc = IntLit 1; eloc = loc }); sloc = loc }
  | t -> (
      match binop_of_assign_op t with
      | Some op ->
          let e = parse_expr_st st in
          { sdesc = OpAssign (op, lv, e); sloc = loc }
      | None ->
          Diag.error oploc "expected assignment operator, found '%s'"
            (Token.to_string t))

and parse_stmt st =
  let loc = cur_loc st in
  match cur st with
  | Token.KW_INT -> (
      ignore (next st);
      let name = expect_ident st in
      match cur st with
      | Token.LBRACKET ->
          ignore (next st);
          let n = expect_int_lit st in
          expect st Token.RBRACKET;
          expect st Token.SEMI;
          { sdesc = DeclArray (name, n); sloc = loc }
      | Token.ASSIGN ->
          ignore (next st);
          let e = parse_expr_st st in
          expect st Token.SEMI;
          { sdesc = DeclScalar (name, Some e); sloc = loc }
      | _ ->
          expect st Token.SEMI;
          { sdesc = DeclScalar (name, None); sloc = loc })
  | Token.KW_IF ->
      ignore (next st);
      expect st Token.LPAREN;
      let cond = parse_expr_st st in
      expect st Token.RPAREN;
      let then_ = parse_stmt st in
      let else_ = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      { sdesc = If (cond, then_, else_); sloc = loc }
  | Token.KW_WHILE ->
      ignore (next st);
      expect st Token.LPAREN;
      let cond = parse_expr_st st in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      { sdesc = While (cond, body); sloc = loc }
  | Token.KW_DO ->
      ignore (next st);
      let body = parse_stmt st in
      expect st Token.KW_WHILE;
      expect st Token.LPAREN;
      let cond = parse_expr_st st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      { sdesc = DoWhile (body, cond); sloc = loc }
  | Token.KW_FOR ->
      ignore (next st);
      expect st Token.LPAREN;
      let init =
        if cur st = Token.SEMI then None
        else if cur st = Token.KW_INT then begin
          (* [for (int i = 0; ...)] *)
          ignore (next st);
          let name = expect_ident st in
          expect st Token.ASSIGN;
          let e = parse_expr_st st in
          Some { sdesc = DeclScalar (name, Some e); sloc = loc }
        end
        else Some (parse_simple st)
      in
      expect st Token.SEMI;
      let cond = if cur st = Token.SEMI then None else Some (parse_expr_st st) in
      expect st Token.SEMI;
      let update =
        if cur st = Token.RPAREN then None else Some (parse_simple st)
      in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      { sdesc = For (init, cond, update, body); sloc = loc }
  | Token.KW_BREAK ->
      ignore (next st);
      expect st Token.SEMI;
      { sdesc = Break; sloc = loc }
  | Token.KW_CONTINUE ->
      ignore (next st);
      expect st Token.SEMI;
      { sdesc = Continue; sloc = loc }
  | Token.KW_RETURN ->
      ignore (next st);
      if accept st Token.SEMI then { sdesc = Return None; sloc = loc }
      else begin
        let e = parse_expr_st st in
        expect st Token.SEMI;
        { sdesc = Return (Some e); sloc = loc }
      end
  | Token.KW_PRINT ->
      ignore (next st);
      expect st Token.LPAREN;
      let e = parse_expr_st st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      { sdesc = Print e; sloc = loc }
  | Token.LBRACE ->
      ignore (next st);
      let stmts = parse_block_items st in
      { sdesc = Block stmts; sloc = loc }
  | _ ->
      let s = parse_simple st in
      expect st Token.SEMI;
      s

and parse_block_items st =
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc
    else if cur st = Token.EOF then
      Diag.error (cur_loc st) "unexpected end of input inside block"
    else go (parse_stmt st :: acc)
  in
  go []

(* --- top level ----------------------------------------------------------- *)

let parse_params st =
  if accept st Token.RPAREN then []
  else begin
    let parse_one () =
      expect st Token.KW_INT;
      let name = expect_ident st in
      if accept st Token.LBRACKET then begin
        expect st Token.RBRACKET;
        PArray name
      end
      else PScalar name
    in
    let rec go acc =
      let p = parse_one () in
      if accept st Token.COMMA then go (p :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (p :: acc)
      end
    in
    go []
  end

let parse_topdecl st =
  let loc = cur_loc st in
  let ret =
    match next st with
    | Token.KW_INT, _ -> RetInt
    | Token.KW_VOID, _ -> RetVoid
    | t, l ->
        Diag.error l "expected 'int' or 'void' at top level, found '%s'"
          (Token.to_string t)
  in
  let name = expect_ident st in
  match cur st with
  | Token.LPAREN ->
      ignore (next st);
      let params = parse_params st in
      expect st Token.LBRACE;
      let body = parse_block_items st in
      `Func { fname = name; fret = ret; fparams = params; fbody = body; floc = loc }
  | Token.LBRACKET ->
      if ret = RetVoid then Diag.error loc "array global must have type int";
      ignore (next st);
      let n = expect_int_lit st in
      expect st Token.RBRACKET;
      expect st Token.SEMI;
      `Global (GArray (name, n, loc))
  | Token.ASSIGN ->
      if ret = RetVoid then Diag.error loc "scalar global must have type int";
      ignore (next st);
      let v =
        if accept st Token.MINUS then -expect_int_lit st else expect_int_lit st
      in
      expect st Token.SEMI;
      `Global (GScalar (name, v, loc))
  | Token.SEMI ->
      if ret = RetVoid then Diag.error loc "scalar global must have type int";
      ignore (next st);
      `Global (GScalar (name, 0, loc))
  | t ->
      Diag.error (cur_loc st) "unexpected token '%s' after top-level name"
        (Token.to_string t)

let parse src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let rec go globals funcs =
    if cur st = Token.EOF then
      { globals = List.rev globals; funcs = List.rev funcs }
    else
      match parse_topdecl st with
      | `Global g -> go (g :: globals) funcs
      | `Func f -> go globals (f :: funcs)
  in
  go [] []

let parse_expr src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let e = parse_expr_st st in
  if cur st <> Token.EOF then
    Diag.error (cur_loc st) "trailing input after expression";
  e
