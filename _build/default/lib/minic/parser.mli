(** Recursive-descent parser for Mini-C.

    Operator precedence follows C:
    [|| < && < | < ^ < & < ==,!= < <,<=,>,>= < <<,>> < +,- < *,/,%]
    with unary [-], [!], [~] binding tightest. [&&] and [||] are
    short-circuiting (the compiler lowers them to branches). *)

val parse : string -> Ast.program
(** Parses a whole compilation unit.
    @raise Diag.Error on syntax errors, with the offending location. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression (used by tests and the REPL-ish examples).
    @raise Diag.Error on syntax errors or trailing input. *)
