type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }

let compare a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c

let equal a b = compare a b = 0
let pp ppf { line; col } = Format.fprintf ppf "%d:%d" line col
let to_string t = Format.asprintf "%a" pp t
