(** Constant folding and branch pruning on the AST.

    A conservative optimizer used to model profiling {e optimized}
    binaries (which is what the paper instrumented): it never changes
    observable behaviour, including traps —

    - arithmetic on literals folds only when the VM would not trap
      (division/modulo by a zero literal and out-of-range shifts are left
      in place);
    - short-circuit operators with a literal left side keep their
      evaluation (non-)order: [0 && e] folds to [0] without [e]'s
      effects, [1 && e] to [e != 0];
    - [if]/[while]/[do]/[for] with literal conditions keep only the code
      that would run, which removes the corresponding constructs from the
      profile (fewer, larger constructs — like [-O2] code).

    Differentially property-tested against the unfolded program. *)

val expr : Ast.expr -> Ast.expr
val stmt : Ast.stmt -> Ast.stmt
val program : Ast.program -> Ast.program

val stats : Ast.program -> Ast.program * int
(** The folded program and the number of nodes simplified. *)
