(** Pretty-printer for Mini-C.

    The output is valid Mini-C: the round trip
    [Parser.parse (program_to_string p)] yields a program equal to [p] up
    to source locations (property-tested). Expressions are printed fully
    parenthesized to avoid re-deriving precedence. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
