(** Convenience pipeline: lex, parse and check a Mini-C compilation unit. *)

val load : string -> Ast.program
(** [load src] parses and checks [src].
    @raise Diag.Error on any lexical, syntactic or semantic error. *)

val load_result : string -> (Ast.program, string) result
(** Like {!load}, with errors rendered as ["line:col: message"]. *)

val count_loc : string -> int
(** Number of non-blank, non-comment-only source lines — used to report the
    LOC column of Table III for our Mini-C workloads. *)
