(** Lexical tokens of Mini-C. *)

type t =
  | INT_LIT of int
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_PRINT
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

val pp : Format.formatter -> t -> unit
(** Prints the token as it appears in source (e.g. [">>="], ["while"]). *)

val to_string : t -> string

val keyword_of_string : string -> t option
(** Recognizes reserved words; [None] for ordinary identifiers. *)
