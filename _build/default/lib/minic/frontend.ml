let load src =
  let prog = Parser.parse src in
  Typecheck.check prog;
  prog

let load_result src = Diag.wrap (fun () -> load src)

let count_loc src =
  let lines = String.split_on_char '\n' src in
  let in_block = ref false in
  let count = ref 0 in
  List.iter
    (fun line ->
      (* Strip block comments spanning lines, then test for content. *)
      let b = Buffer.create (String.length line) in
      let n = String.length line in
      let i = ref 0 in
      while !i < n do
        if !in_block then
          if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = '/' then begin
            in_block := false;
            i := !i + 2
          end
          else incr i
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '*' then begin
          in_block := true;
          i := !i + 2
        end
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '/' then
          i := n
        else begin
          Buffer.add_char b line.[!i];
          incr i
        end
      done;
      if String.trim (Buffer.contents b) <> "" then incr count)
    lines;
  !count
