lib/cfa/cfg.mli: Format Vm
