lib/cfa/loops.ml: Array Cfg Dominance Hashtbl List Option Stack
