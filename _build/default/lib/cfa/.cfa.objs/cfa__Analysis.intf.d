lib/cfa/analysis.mli: Vm
