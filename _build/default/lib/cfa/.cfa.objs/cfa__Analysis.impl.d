lib/cfa/analysis.ml: Array Cfg Dominance List Loops Printf Vm
