lib/cfa/cfg.ml: Array Format List Vm
