lib/cfa/dominance.mli: Cfg
