lib/cfa/dominance.ml: Array Cfg List Stack
