lib/cfa/loops.mli: Cfg Dominance
