type block = {
  bid : int;
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  blocks : block array;
  entry_bid : int;
  exit_bid : int;
  func : Vm.Program.func_info;
  block_of_pc : int array;
}

let build (prog : Vm.Program.t) (f : Vm.Program.func_info) =
  let lo = f.entry and hi = f.code_end in
  let n = hi - lo in
  let leader = Array.make n false in
  leader.(0) <- true;
  let mark pc = if pc >= lo && pc < hi then leader.(pc - lo) <- true in
  for pc = lo to hi - 1 do
    match prog.code.(pc) with
    | Vm.Instr.Jmp t ->
        mark t;
        mark (pc + 1)
    | Vm.Instr.Br { target; _ } ->
        mark target;
        mark (pc + 1)
    | Vm.Instr.Ret -> mark (pc + 1)
    | _ -> ()
  done;
  (* Assign block ids in pc order. *)
  let block_of_pc = Array.make n (-1) in
  let nblocks = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then incr nblocks;
    block_of_pc.(i) <- !nblocks - 1
  done;
  let nblocks = !nblocks in
  let first = Array.make nblocks 0 and last = Array.make nblocks 0 in
  for i = 0 to n - 1 do
    let b = block_of_pc.(i) in
    if leader.(i) then first.(b) <- lo + i;
    last.(b) <- lo + i
  done;
  let succs = Array.make nblocks [] in
  let preds = Array.make nblocks [] in
  let exit_bid = ref (-1) in
  for b = 0 to nblocks - 1 do
    let term = last.(b) in
    let s =
      match prog.code.(term) with
      | Vm.Instr.Jmp t -> [ block_of_pc.(t - lo) ]
      | Vm.Instr.Br { target; _ } ->
          let t = block_of_pc.(target - lo) in
          let ft =
            if term + 1 < hi then [ block_of_pc.(term + 1 - lo) ] else []
          in
          if ft = [ t ] then [ t ] else t :: ft
      | Vm.Instr.Ret ->
          exit_bid := b;
          []
      | _ -> if term + 1 < hi then [ block_of_pc.(term + 1 - lo) ] else []
    in
    succs.(b) <- s;
    List.iter (fun s' -> preds.(s') <- b :: preds.(s')) s
  done;
  let blocks =
    Array.init nblocks (fun b ->
        {
          bid = b;
          first = first.(b);
          last = last.(b);
          succs = succs.(b);
          preds = List.rev preds.(b);
        })
  in
  assert (!exit_bid >= 0);
  { blocks; entry_bid = 0; exit_bid = !exit_bid; func = f; block_of_pc }

let block_at t pc = t.blocks.(t.block_of_pc.(pc - t.func.entry))

let pp ppf t =
  Format.fprintf ppf "@[<v>cfg %s (%d blocks)@," t.func.name
    (Array.length t.blocks);
  Array.iter
    (fun b ->
      Format.fprintf ppf "  b%d [%d..%d] -> %a@," b.bid b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        b.succs)
    t.blocks;
  Format.fprintf ppf "@]"
