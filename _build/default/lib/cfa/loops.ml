type loop = { header : int; body : int list; back_edges : (int * int) list }
type t = { loops : loop array; depth : int array }

let analyze (cfg : Cfg.t) (dom : Dominance.t) =
  let n = Array.length cfg.blocks in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s b.bid then
            Hashtbl.replace by_header s
              ((b.bid, s)
              :: (Option.value ~default:[] (Hashtbl.find_opt by_header s))))
        b.succs)
    cfg.blocks;
  let loops = ref [] in
  Hashtbl.iter
    (fun header back_edges ->
      (* Natural loop: header + reverse-reachable from tails w/o header. *)
      let in_body = Array.make n false in
      in_body.(header) <- true;
      let stack = Stack.create () in
      List.iter (fun (u, _) -> if not in_body.(u) then begin
            in_body.(u) <- true;
            Stack.push u stack
          end)
        back_edges;
      while not (Stack.is_empty stack) do
        let b = Stack.pop stack in
        List.iter
          (fun p ->
            if not in_body.(p) then begin
              in_body.(p) <- true;
              Stack.push p stack
            end)
          cfg.blocks.(b).preds
      done;
      let body = ref [] in
      for b = n - 1 downto 0 do
        if in_body.(b) then body := b :: !body
      done;
      loops := { header; body = !body; back_edges } :: !loops)
    by_header;
  let loops = Array.of_list !loops in
  let depth = Array.make n 0 in
  Array.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    loops;
  { loops; depth }

let in_loop t b = t.depth.(b) > 0
