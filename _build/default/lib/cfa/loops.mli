(** Natural-loop detection over a CFG.

    A back edge is an edge [u -> h] where [h] dominates [u]; the natural
    loop of the edge is [h] plus every block that reaches [u] without
    passing through [h]. Loops with the same header are merged. *)

type loop = {
  header : int;  (** header block id *)
  body : int list;  (** all block ids in the loop, including the header *)
  back_edges : (int * int) list;
}

type t = {
  loops : loop array;
  depth : int array;  (** per block: number of loops containing it *)
}

val analyze : Cfg.t -> Dominance.t -> t

val in_loop : t -> int -> bool
(** Is this block inside any natural loop? *)
