type t = { idom : int array; entry : int }

let compute ~nnodes ~entry ~succs ~preds =
  (* Reverse postorder from [entry]. *)
  let visited = Array.make nnodes false in
  let order = ref [] in
  (* Iterative DFS to avoid stack overflow on long CFGs. *)
  let stack = Stack.create () in
  Stack.push (`Node entry) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Node n ->
        if not visited.(n) then begin
          visited.(n) <- true;
          Stack.push (`Post n) stack;
          List.iter
            (fun s -> if not visited.(s) then Stack.push (`Node s) stack)
            (succs n)
        end
    | `Post n -> order := n :: !order
  done;
  let rpo = Array.of_list !order in
  let rpo_index = Array.make nnodes (-1) in
  Array.iteri (fun i n -> rpo_index.(n) <- i) rpo;
  let idom = Array.make nnodes (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
        if n <> entry then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None (preds n)
          in
          match new_idom with
          | Some d when idom.(n) <> d ->
              idom.(n) <- d;
              changed := true
          | _ -> ()
        end)
      rpo
  done;
  { idom; entry }

let dominates t a b =
  if a = b then true
  else
    let rec go n =
      if n = t.entry || n = -1 then false
      else
        let d = t.idom.(n) in
        if d = a then true else if d = n || d = -1 then false else go d
    in
    go b

let of_cfg (cfg : Cfg.t) =
  compute ~nnodes:(Array.length cfg.blocks) ~entry:cfg.entry_bid
    ~succs:(fun b -> cfg.blocks.(b).succs)
    ~preds:(fun b -> cfg.blocks.(b).preds)

let postdom_of_cfg (cfg : Cfg.t) =
  compute ~nnodes:(Array.length cfg.blocks) ~entry:cfg.exit_bid
    ~succs:(fun b -> cfg.blocks.(b).preds)
    ~preds:(fun b -> cfg.blocks.(b).succs)
