(** Generic dominator-tree computation (Cooper–Harvey–Kennedy).

    Used twice: with the CFG as-is it yields dominators (needed to find
    back edges and natural loops), and with edges reversed and the exit as
    entry it yields post-dominators (needed for the immediate
    post-dominator of each predicate, rule (5) of the paper's Fig. 5). *)

type t = {
  idom : int array;
      (** immediate dominator per node; [idom.(entry) = entry];
          [-1] for nodes unreachable from the entry *)
  entry : int;
}

val compute :
  nnodes:int -> entry:int -> succs:(int -> int list) -> preds:(int -> int list)
  -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b]? Reflexive. Linear in tree
    depth; a node unreachable from the entry is dominated only by itself. *)

val of_cfg : Cfg.t -> t
(** Forward dominators, entry = CFG entry. *)

val postdom_of_cfg : Cfg.t -> t
(** Post-dominators, computed on the reversed CFG from the exit block. *)
