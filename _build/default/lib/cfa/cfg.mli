(** Intraprocedural control-flow graphs over bytecode.

    One CFG per function; [Call] instructions are ordinary straight-line
    instructions (the analysis is intraprocedural — procedure constructs
    are delimited by entry/[Ret], not by post-dominance). *)

type block = {
  bid : int;
  first : int;  (** pc of the first instruction *)
  last : int;  (** pc of the terminating instruction *)
  succs : int list;  (** successor block ids *)
  preds : int list;
}

type t = {
  blocks : block array;
  entry_bid : int;
  exit_bid : int;  (** block containing the function's single [Ret] *)
  func : Vm.Program.func_info;
  block_of_pc : int array;  (** indexed by [pc - func.entry] *)
}

val build : Vm.Program.t -> Vm.Program.func_info -> t
(** Splits the function body at branch targets and terminators. *)

val block_at : t -> int -> block
(** Block containing an absolute pc of this function. *)

val pp : Format.formatter -> t -> unit
