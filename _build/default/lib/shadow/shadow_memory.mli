(** Shadow memory: per-address access history for dependence detection.

    For each address we keep the last write and, per static read pc, the
    latest read since that write. On a read we emit a RAW edge from the
    last write; on a write we emit a WAW edge from the last write and a
    WAR edge from each recorded read. Keeping only the {e latest} access
    per static pc is lossless for the profile, which records the
    {e minimum} [Tdep] per static edge.

    {!clear_range} drops history for a released stack frame, so
    stack-address reuse across activations cannot fabricate dependences
    (and the table stays bounded by live memory). *)

type t

val create : ?on_dep:(Dependence.t -> unit) -> unit -> t

val read :
  t -> addr:int -> pc:int -> time:int -> node:Indexing.Node.t -> unit

val write :
  t -> addr:int -> pc:int -> time:int -> node:Indexing.Node.t -> unit

val clear_range : t -> base:int -> size:int -> unit

val tracked_addresses : t -> int
(** Number of addresses currently carrying history (bounded-memory test). *)

val events : t -> int
(** Total read/write events processed. *)

val deps_emitted : t -> int
