lib/shadow/shadow_memory.ml: Dependence Hashtbl List
