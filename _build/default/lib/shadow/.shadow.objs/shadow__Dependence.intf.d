lib/shadow/dependence.mli: Format Indexing
