lib/shadow/dependence.ml: Format Indexing
