lib/shadow/shadow_memory.mli: Dependence Indexing
