(** Dynamic dependence edges. *)

type kind = Raw | War | Waw

type access = {
  pc : int;  (** static program point *)
  time : int;  (** instruction timestamp *)
  node : Indexing.Node.t;  (** enclosing construct instance at the event *)
}

type t = { kind : kind; head : access; tail : access; addr : int }
(** [head] happened before [tail] at memory address [addr]; [distance] is
    the paper's [Tdep]. *)

val distance : t -> int
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
