type kind = Raw | War | Waw
type access = { pc : int; time : int; node : Indexing.Node.t }
type t = { kind : kind; head : access; tail : access; addr : int }

let distance d = d.tail.time - d.head.time

let kind_to_string = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

let pp ppf d =
  Format.fprintf ppf "%s pc%d@%d -> pc%d@%d (Tdep=%d)" (kind_to_string d.kind)
    d.head.pc d.head.time d.tail.pc d.tail.time (distance d)
