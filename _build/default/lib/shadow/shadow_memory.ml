type cell = {
  mutable last_write : Dependence.access option;
  mutable reads : (int * Dependence.access) list;  (* keyed by static pc *)
}

type t = {
  cells : (int, cell) Hashtbl.t;
  on_dep : Dependence.t -> unit;
  mutable events : int;
  mutable deps : int;
}

let create ?(on_dep = fun _ -> ()) () =
  { cells = Hashtbl.create 4096; on_dep; events = 0; deps = 0 }

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
      let c = { last_write = None; reads = [] } in
      Hashtbl.add t.cells addr c;
      c

let emit t kind head tail addr =
  t.deps <- t.deps + 1;
  t.on_dep { Dependence.kind; head; tail; addr }

let read t ~addr ~pc ~time ~node =
  t.events <- t.events + 1;
  let c = cell t addr in
  let acc = { Dependence.pc; time; node } in
  (match c.last_write with
  | Some w -> emit t Dependence.Raw w acc addr
  | None -> ());
  c.reads <- (pc, acc) :: List.remove_assoc pc c.reads

let write t ~addr ~pc ~time ~node =
  t.events <- t.events + 1;
  let c = cell t addr in
  let acc = { Dependence.pc; time; node } in
  (match c.last_write with
  | Some w -> emit t Dependence.Waw w acc addr
  | None -> ());
  List.iter (fun (_, r) -> emit t Dependence.War r acc addr) c.reads;
  c.reads <- [];
  c.last_write <- Some acc

let clear_range t ~base ~size =
  for addr = base to base + size - 1 do
    Hashtbl.remove t.cells addr
  done

let tracked_addresses t = Hashtbl.length t.cells
let events t = t.events
let deps_emitted t = t.deps
