(* Bench harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), plus bechamel
   microbenches and ablations of the design choices.

   Usage:
     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- table3 fig6 ...   -- run a subset
   Sections: fig2 fig3 fig4 fig6 table3 table4 table5 baseline explore micro
   ablation perf register hookfloor static distance service legality race *)

module W = Workloads.Workload
module Registry = Workloads.Registry
module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Violation = Alchemist.Violation
module Ranking = Alchemist.Ranking
module Report = Alchemist.Report
module Scatter = Alchemist.Scatter
module Dep = Shadow.Dependence

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fuel = 2_000_000_000

(* Profiles are memoized: several sections reuse the same workload run. *)
let profile_cache : (string * int, Profiler.result * Vm.Program.t) Hashtbl.t =
  Hashtbl.create 16

let profiled ?scale name =
  let w = Registry.find name in
  let scale = Option.value ~default:w.W.default_scale scale in
  match Hashtbl.find_opt profile_cache (name, scale) with
  | Some v -> v
  | None ->
      let prog = W.compile w ~scale in
      let r = Profiler.run ~fuel prog in
      Hashtbl.replace profile_cache (name, scale) (r, prog);
      (r, prog)

let cid_of (p : Profile.t) pc = Option.get (Profile.cid_of_head_pc p pc)

(* --- Fig. 2 / Fig. 3: the gzip running example --------------------------- *)

let fig2 () =
  header "Fig. 2 — RAW dependence profile of mini-gzip";
  let r, prog = profiled "gzip-1.3.5" in
  let p = r.Profiler.profile in
  print_string (Report.render ~top:4 ~max_edges:3 p);
  let fb = cid_of p (Parsim.Speedup.proc_head prog "flush_block") in
  print_string (Report.render_construct ~max_edges:12 p ~cid:fb);
  print_endline
    "\npaper: Method flush_block had 15 static RAW edges, exactly the two\n\
     flowing into the post-loop checksum violating Tdep > Tdur (Tdep=1,3),\n\
     and a line-14->14 self-RAW at Tdep=4.5M >> Tdur. [*] marks violations."

let fig3 () =
  header "Fig. 3 — WAR/WAW profile of mini-gzip flush_block";
  let r, prog = profiled "gzip-1.3.5" in
  let p = r.Profiler.profile in
  let fb = cid_of p (Parsim.Speedup.proc_head prog "flush_block") in
  print_string
    (Report.render_construct ~max_edges:12 ~kinds:[ Dep.War; Dep.Waw ] p ~cid:fb);
  print_endline
    "\npaper: a violating WAW on outcnt (28->10, Tdep=7), violating WARs on\n\
     flag_buf (17->7) and last_flags (26->7); no WAW on outbuf itself --\n\
     the conflict rides on the index, not the buffer."

(* --- Fig. 4: execution indexing --------------------------------------------- *)

let fig4 () =
  header "Fig. 4 — execution index trees (via the Fig. 5 rules)";
  let trace name src =
    let prog = Vm.Compile.compile_source src in
    let a = Cfa.Analysis.analyze prog in
    let tree = Indexing.Index_tree.create () in
    let rules = Indexing.Rules.create ~ipdom:a.Cfa.Analysis.ipdom_of_pc ~tree in
    let label pc =
      match Vm.Program.construct_at prog pc with
      | Some c -> (
          match c.Vm.Program.kind with
          | Vm.Program.CProc -> c.Vm.Program.cname
          | Vm.Program.CLoop ->
              Printf.sprintf "L%d" c.Vm.Program.loc.Minic.Srcloc.line
          | Vm.Program.CCond ->
              Printf.sprintf "C%d" c.Vm.Program.loc.Minic.Srcloc.line)
      | None -> "?"
    in
    Printf.printf "%s\n" name;
    let show () =
      Printf.printf "  index: [%s]\n"
        (String.concat "; "
           (List.map label (Indexing.Index_tree.index_of_top tree)))
    in
    let hooks =
      {
        Vm.Hooks.noop with
        on_instr = (fun ~pc -> Indexing.Rules.on_instr rules ~pc);
        on_branch =
          (fun ~pc ~kind ~cid:_ ~taken ->
            Indexing.Rules.on_branch rules ~pc ~kind ~taken;
            if kind <> Vm.Instr.BrSc && not taken then show ());
        on_call =
          (fun ~pc ~fid:_ ->
            Indexing.Rules.on_call rules ~entry_pc:pc;
            show ());
        on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
      }
    in
    ignore (Vm.Machine.run_hooked hooks prog);
    Indexing.Rules.finish rules
  in
  trace "(a) procedures:"
    {|void B() { int s2 = 0; }
      void A() { int s1 = 0; B(); }
      int main() { A(); return 0; }|};
  trace "(b) conditionals:"
    {|int main() {
        int x = 1;
        if (x) { int s3 = 0; if (x) { int s4 = 0; } }
        return 0;
      }|};
  trace "(c) loops (iterations are siblings):"
    {|int main() {
        int s = 0;
        for (int i = 0; i < 2; i++) { for (int j = 0; j < 2; j++) { s++; } }
        return s;
      }|}

(* --- Table III: runtime overhead --------------------------------------------- *)

let table3 () =
  header "Table III — benchmarks, constructs, and profiling overhead";
  (* Paper values: LOC, static, dynamic, orig (s), prof (s). *)
  let paper =
    [
      ("197.parser", (11_000, 603, 31_763_541, 1.22, 279.5));
      ("bzip2", (7_000, 157, 134_832, 1.39, 990.8));
      ("gzip-1.3.5", (8_000, 100, 570_897, 1.06, 280.4));
      ("130.li", (15_000, 190, 13_772_859, 0.12, 28.8));
      ("ogg", (58_000, 466, 4_173_029, 0.30, 70.7));
      ("aes", (1_000, 11, 2_850, 0.001, 0.396));
      ("par2", (13_000, 125, 4_437, 1.95, 324.0));
      ("delaunay", (2_000, 111, 14_307_332, 0.81, 266.3));
    ]
  in
  Printf.printf "%-12s | %5s %6s %10s %8s %8s %6s | paper: %5s %6s %10s %9s\n"
    "benchmark" "LOC" "static" "dynamic" "orig(s)" "prof(s)" "slow" "LOC"
    "static" "dynamic" "slowdown";
  Printf.printf "%s\n" (String.make 118 '-');
  List.iter
    (fun (w : W.t) ->
      let prog = W.compile w ~scale:w.W.default_scale in
      let t0 = Unix.gettimeofday () in
      let orig = Vm.Machine.run ~fuel prog in
      let t1 = Unix.gettimeofday () in
      let r = Profiler.run ~fuel prog in
      let t2 = Unix.gettimeofday () in
      let loc = W.loc w in
      let ot = t1 -. t0 and pt = t2 -. t1 in
      ignore orig;
      (match List.assoc_opt w.W.name paper with
      | Some (ploc, pstatic, pdyn, porig, pprof) ->
          Printf.printf
            "%-12s | %5d %6d %10d %8.3f %8.3f %5.0fx | paper: %5d %6d %10d \
             %8.0fx\n"
            w.W.name loc
            r.Profiler.stats.Profiler.static_constructs
            r.Profiler.stats.Profiler.dynamic_constructs ot pt
            (pt /. max 1e-6 ot) ploc pstatic pdyn (pprof /. porig)
      | None ->
          (* not a Table III row (e.g. the stencil distance showcase) *)
          Printf.printf
            "%-12s | %5d %6d %10d %8.3f %8.3f %5.0fx | paper: %5s %6s %10s \
             %9s\n"
            w.W.name loc
            r.Profiler.stats.Profiler.static_constructs
            r.Profiler.stats.Profiler.dynamic_constructs ot pt
            (pt /. max 1e-6 ot) "-" "-" "-" "-"))
    Registry.all;
  print_endline
    "\nnote: the paper instruments native x86 under Valgrind (itself 5-10x),\n\
     so its slowdowns (166-712x) are vs. hardware; ours are vs. this VM.\n\
     The comparable shape: profiling costs 1-2 orders of magnitude, larger\n\
     for memory-dense workloads (gzip, bzip2) than compute-dense ones (aes)."

(* --- Fig. 6: profile quality on previously-parallelized programs ------------- *)

let scatter_for ?(top = 10) name =
  let r, prog = profiled name in
  let p = r.Profiler.profile in
  let entries =
    Ranking.rank p
    |> List.filter (fun (e : Ranking.entry) -> e.name <> "Method main")
  in
  ( p,
    prog,
    entries,
    Scatter.points_of_entries p (List.filteri (fun i _ -> i < top) entries) )

let write_svg name title pts =
  (try Unix.mkdir "figures" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat "figures" (name ^ ".svg") in
  let oc = open_out path in
  output_string oc (Scatter.to_svg ~title pts);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

let fig6 () =
  header "Fig. 6(a) — gzip: size vs violating static RAW (top constructs)";
  let p, prog, entries, pts = scatter_for "gzip-1.3.5" in
  print_string (Scatter.render pts);
  write_svg "fig6a" "gzip" pts;
  print_endline
    "paper: C1 (the per-file loop in main) is the largest construct with\n\
     near-zero violating RAW -> the first parallelization candidate.";
  header "Fig. 6(b) — gzip after removing C1 and its singletons";
  let c1 = cid_of p (W.loop_in "main" ~nth:0 prog) in
  let remaining = Ranking.remove_with_singletons p entries ~cid:c1 in
  let pts_b = Scatter.points_of_entries p (List.filteri (fun i _ -> i < 10) remaining) in
  print_string (Scatter.render pts_b);
  write_svg "fig6b" "gzip after removing C1" pts_b;
  print_endline
    "paper: flush_block (C9) emerges as the largest construct whose few\n\
     violating RAW edges all flow into the post-loop checksum.";
  header "Fig. 6(c) — 197.parser";
  let _, _, _, pts = scatter_for "197.parser" in
  print_string (Scatter.render pts);
  write_svg "fig6c" "197.parser" pts;
  print_endline
    "paper: the dictionary-reading loop (C1) and read_entry (C2) are larger\n\
     with fewer violations but I/O-bound (outside the simulation model);\n\
     the sentence loop (C3) is the construct prior work parallelized.";
  header "Fig. 6(d) — 130.li";
  let _, _, _, pts = scatter_for "130.li" in
  print_string (Scatter.render pts);
  write_svg "fig6d" "130.li" pts;
  print_endline
    "paper: xlload (C1) executes slightly more instructions than the batch\n\
     loop (C2) because of the initial call before the loop; parallelizing\n\
     C2 runs all but one xlload call in parallel.";
  header "Fig. 6 (delaunay) — the negative result";
  let r, prog = profiled "delaunay" in
  let p = r.Profiler.profile in
  let w = Registry.find "delaunay" in
  let site = Option.get w.W.prior_work_site in
  let v = Violation.summarize p ~cid:(cid_of p (site.W.locate prog)) in
  Printf.printf
    "refinement loop: %d violating static RAW (of %d static RAW edges)\n"
    v.Violation.raw_violating v.Violation.raw_total;
  print_endline
    "paper: most computation-intensive constructs have >100 violating static\n\
     RAW edges (720 on the largest): not amenable without optimistic\n\
     parallelization. Our mini workload reproduces the contrast in kind:\n\
     tens of violating edges vs. 0-6 everywhere else."

(* --- Table IV: parallelized sites and their conflicts ------------------------- *)

let table4 () =
  header "Table IV — parallelization sites: violating static conflicts";
  let paper =
    [
      ("bzip2", 0, (3, 103, 0));
      ("bzip2", 1, (23, 53, 63));
      ("ogg", 0, (6, 30, 17));
      ("aes", 0, (0, 7, 3));
      ("par2", 0, (1, 12, 19));
      ("par2", 1, (0, 2, 12));
    ]
  in
  Printf.printf "%-10s %-48s | %4s %4s %4s | paper: %4s %4s %4s\n" "program"
    "code location" "RAW" "WAW" "WAR" "RAW" "WAW" "WAR";
  Printf.printf "%s\n" (String.make 110 '-');
  List.iter
    (fun (name, idx, (praw, pwaw, pwar)) ->
      let w = Registry.find name in
      let site = List.nth w.W.sites idx in
      let r, prog = profiled name in
      let p = r.Profiler.profile in
      let v = Violation.summarize p ~cid:(cid_of p (site.W.locate prog)) in
      Printf.printf "%-10s %-48s | %4d %4d %4d | paper: %4d %4d %4d\n" name
        site.W.site_name v.Violation.raw_violating v.Violation.waw_violating
        v.Violation.war_violating praw pwaw pwar)
    paper;
  print_endline
    "\nshape check: RAW counts are near zero everywhere except bzip2's block\n\
     loop; WAW/WAR conflicts (the privatization work list) dominate.\n\
     (Our counts are violating static edges; absolute numbers differ with\n\
     program size, the ordering and near-zero RAW pattern is the result.)"

(* --- Table V: parallelization results ----------------------------------------- *)

let table5 () =
  header "Table V — simulated parallelization on 4 cores";
  let rows =
    [
      (* workload, site index, paper seq(s), paper par(s), paper speedup *)
      ("bzip2", 1, 40.92, 11.82, 3.46);
      ("ogg", 0, 136.27, 34.46, 3.95);
      ("par2", 0, 11.25, 6.33, 1.78);
      ("aes", 0, 9.46, 5.81, 1.63);
    ]
  in
  Printf.printf "%-10s | %12s %12s %7s %7s | paper: %8s %8s %7s\n" "benchmark"
    "seq (instr)" "par (instr)" "naive" "speedup" "seq(s)" "par(s)" "speedup";
  Printf.printf "%s\n" (String.make 104 '-');
  List.iter
    (fun (name, idx, pseq, ppar, pspd) ->
      let w = Registry.find name in
      let site = List.nth w.W.sites idx in
      let prog = W.compile w ~scale:w.W.default_scale in
      let head_pc = site.W.locate prog in
      let spawn = site.W.spawn_overhead in
      let naive =
        Parsim.Speedup.analyze ~fuel ~cores:4 ?spawn_overhead:spawn prog
          ~head_pc
      in
      let xf =
        Parsim.Speedup.analyze ~fuel ~cores:4 ?spawn_overhead:spawn
          ~privatize:site.W.privatize ~reduce:site.W.reduce prog ~head_pc
      in
      Printf.printf
        "%-10s | %12d %12d %7.2f %7.2f | paper: %8.2f %8.2f %7.2f\n" name
        xf.Parsim.Speedup.seq_instructions xf.Parsim.Speedup.par_instructions
        naive.Parsim.Speedup.speedup xf.Parsim.Speedup.speedup pseq ppar pspd)
    rows;
  print_endline
    "\n'naive' honors every profiled WAR/WAW; 'speedup' applies the paper's\n\
     transforms (privatization + reductions). Shape: near-linear for\n\
     ogg/bzip2, modest for par2 (serial hashing, Amdahl) and aes (per-16B-\n\
     block dispatch overhead; see EXPERIMENTS.md)."

(* --- baseline comparison (the paper's SIII argument) --------------------------- *)

let baseline_src =
  {|int same[4];
    int crossj[4];
    int crossi[4];
    void A(int i, int j) {
      same[0] = i;
      crossj[j % 2] = i + j;
      crossi[i % 2] = i;
    }
    int sink;
    void B(int i, int j) {
      sink += same[0];
      if (j > 0) sink += crossj[(j + 1) % 2];
      sink += crossi[(i + 1) % 2];
    }
    void F() {
      for (int i = 0; i < 4; i++) {
        crossj[0] = 0;
        crossj[1] = 0;
        for (int j = 0; j < 4; j++) { A(i, j); B(i, j); }
      }
    }
    int main() { F(); F(); return sink; }|}

let baseline () =
  header "SIII — why flat/context-sensitive profiling is not enough (E13)";
  let prog = Vm.Compile.compile_source baseline_src in
  print_endline
    "program: F() { for i { for j { A(); B(); } } } with three A->B RAW\n\
     flavours: same-j-iteration (same[0]), cross-j (crossj), cross-i \
     (crossi).\n";
  (* Flat: one entry per static pair — no construct info at all. *)
  let flat = Baselines.Flat_profiler.run prog in
  let flat_raw =
    List.filter
      (fun (e : Baselines.Flat_profiler.edge) -> e.kind = `Raw)
      flat.Baselines.Flat_profiler.edges
  in
  Printf.printf
    "flat profiler: %d static RAW pairs, each a bare (line,line,minDist):\n"
    (List.length flat_raw);
  List.iter
    (fun (e : Baselines.Flat_profiler.edge) ->
      if Vm.Program.line_of_pc prog e.head_pc <= 7 then
        Printf.printf "  line %d -> line %d  minDist=%d\n"
          (Vm.Program.line_of_pc prog e.head_pc)
          (Vm.Program.line_of_pc prog e.tail_pc)
          e.min_distance)
    flat_raw;
  (* Context-sensitive: still one context for all flavours. *)
  let ctx = Baselines.Context_profiler.run prog in
  let crossj_ctxs =
    ctx.Baselines.Context_profiler.edges
    |> List.filter_map (fun (e : Baselines.Context_profiler.edge) ->
           if Vm.Program.line_of_pc prog e.head_pc = 6 && e.kind = `Raw then
             Some e.head_ctx
           else None)
    |> List.sort_uniq compare
  in
  Printf.printf
    "\ncontext-sensitive profiler: the crossj edge occurs under %d calling\n\
     context(s) -- cross-j, cross-i and same-iteration cases collapse.\n"
    (List.length crossj_ctxs);
  (* Alchemist: the index tree attributes each flavour to the right loop. *)
  let r = Profiler.run ~fuel prog in
  let p = r.Profiler.profile in
  let has_edge cid line =
    let cp = Profile.get p cid in
    Profile.fold_edges cp
      (fun (k : Profile.edge_key) _ acc ->
        acc || (k.kind = Dep.Raw && Report.line_of_pc p k.head_pc = line))
      false
  in
  let loop_i = cid_of p (Parsim.Speedup.loop_head_at_line prog 16) in
  let loop_j = cid_of p (Parsim.Speedup.loop_head_at_line prog 19) in
  let meth_a = cid_of p (Parsim.Speedup.proc_head prog "A") in
  Printf.printf
    "\nAlchemist (index tree): head line -> which constructs see the edge\n";
  List.iter
    (fun (line, what) ->
      Printf.printf "  line %d (%s): Method A: %b, Loop j: %b, Loop i: %b\n"
        line what (has_edge meth_a line) (has_edge loop_j line)
        (has_edge loop_i line))
    [ (5, "same-iteration"); (6, "cross-j"); (7, "cross-i") ];
  print_endline
    "\nonly Alchemist separates the three cases: same-iteration deps vanish\n\
     from both loops, cross-j deps stop at loop j, cross-i deps reach loop i."

(* --- bechamel microbenches (E14) ----------------------------------------------- *)

let micro () =
  header "Microbenches (bechamel, ns/op) — indexing and shadow primitives";
  let open Bechamel in
  let tree = Indexing.Index_tree.create () in
  let bench_push_pop =
    Test.make ~name:"index/push+pop"
      (Staged.stage (fun () ->
           Indexing.Index_tree.tick tree;
           ignore (Indexing.Index_tree.push tree ~label:1 ~is_func:false);
           ignore (Indexing.Index_tree.pop tree)))
  in
  let pool = Indexing.Construct_pool.create ~capacity:16 () in
  let t = ref 0 in
  let bench_pool =
    Test.make ~name:"pool/acquire+release"
      (Staged.stage (fun () ->
           incr t;
           let n = Indexing.Construct_pool.acquire pool ~now:!t in
           n.Indexing.Node.tenter <- !t;
           n.Indexing.Node.texit <- !t;
           Indexing.Construct_pool.release pool n))
  in
  let sm = Shadow.Shadow_memory.create () in
  let node = Indexing.Node.make () in
  let t2 = ref 0 in
  let bench_shadow_w =
    Test.make ~name:"shadow/write"
      (Staged.stage (fun () ->
           incr t2;
           Shadow.Shadow_memory.write sm ~addr:(!t2 land 1023) ~pc:7 ~time:!t2
             ~node))
  in
  let t3 = ref 0 in
  let bench_shadow_rw =
    Test.make ~name:"shadow/read+write"
      (Staged.stage (fun () ->
           incr t3;
           Shadow.Shadow_memory.read sm ~addr:(!t3 land 1023) ~pc:8 ~time:!t3
             ~node;
           Shadow.Shadow_memory.write sm ~addr:(!t3 land 1023) ~pc:9 ~time:!t3
             ~node))
  in
  let small =
    Vm.Compile.compile_source
      "int g; int main() { for (int i = 0; i < 200; i++) g += i * i; return \
       g; }"
  in
  let bench_vm_plain =
    Test.make ~name:"vm/plain(2k instr)"
      (Staged.stage (fun () -> ignore (Vm.Machine.run small)))
  in
  let bench_vm_switch =
    Test.make ~name:"vm/switch(2k instr)"
      (Staged.stage (fun () ->
           ignore (Vm.Machine.run ~engine:Vm.Machine.Switch small)))
  in
  let bench_vm_nofuse =
    Test.make ~name:"vm/threaded-nofuse(2k instr)"
      (Staged.stage (fun () ->
           ignore (Vm.Lower.exec ~hooked:false ~fuse:false Vm.Hooks.noop small)))
  in
  let bench_vm_profiled =
    Test.make ~name:"vm/profiled(2k instr)"
      (Staged.stage (fun () -> ignore (Profiler.run small)))
  in
  let tests =
    Test.make_grouped ~name:"alchemist"
      [
        bench_push_pop;
        bench_pool;
        bench_shadow_w;
        bench_shadow_rw;
        bench_vm_plain;
        bench_vm_switch;
        bench_vm_nofuse;
        bench_vm_profiled;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-32s %12.1f ns/op\n" name est)
    rows;
  print_endline
    "\n(vm/profiled vs vm/plain is the per-program overhead Table III\n\
     aggregates; push+pop/shadow are the per-event costs behind it.)"

(* --- ablations ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation 1 — construct pool capacity vs profile retention";
  let w = Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:6_000 in
  Printf.printf "%-12s %12s %10s %12s\n" "capacity" "pool nodes" "reused"
    "static edges";
  List.iter
    (fun cap ->
      let r = Profiler.run ~fuel ~pool_capacity:cap prog in
      let p = r.Profiler.profile in
      let edges =
        Array.fold_left
          (fun acc (cp : Profile.construct_profile) ->
            acc + Profile.num_edges cp)
          0 p.Profile.by_cid
      in
      Printf.printf "%-12d %12d %10d %12d\n" cap
        r.Profiler.stats.Profiler.pool_allocated
        r.Profiler.stats.Profiler.pool_reused edges)
    [ 16; 256; 4096; 1_000_000 ];
  print_endline
    "smaller pools recycle instances sooner, dropping long-distance edges\n\
     (safe: only Tdep > Tdur edges can be lost — Theorem 1) at lower memory.";

  header "Ablation 2 — register-allocated locals vs -O0 stack traffic";
  let w = Registry.find "aes" in
  let prog = W.compile w ~scale:512 in
  let site = List.hd w.W.sites in
  List.iter
    (fun tl ->
      let r = Profiler.run ~fuel ~trace_locals:tl prog in
      let p = r.Profiler.profile in
      let v = Violation.summarize p ~cid:(cid_of p (site.W.locate prog)) in
      Printf.printf
        "trace_locals=%-5b violating RAW on the block loop: %d (events %d)\n"
        tl v.Violation.raw_violating r.Profiler.stats.Profiler.shadow_events)
    [ false; true ];
  print_endline
    "with stack traffic modelled (-O0), loop bookkeeping manufactures\n\
     violating RAW chains that registers would hide -- why Alchemist-style\n\
     tools profile optimized binaries.";

  header "Ablation 3 — online index tree vs whole-trace recording (SV)";
  let w = Registry.find "gzip-1.3.5" in
  List.iter
    (fun scale ->
      let prog = W.compile w ~scale in
      let trace, res = Vm.Trace.record prog in
      let r = Profiler.run ~fuel ~pool_capacity:4096 prog in
      Printf.printf
        "scale %-6d %9d instrs: trace %9d words vs pool %5d nodes (~%d words)\n"
        scale res.Vm.Machine.instructions (Vm.Trace.words trace)
        r.Profiler.stats.Profiler.pool_allocated
        (r.Profiler.stats.Profiler.pool_allocated * 6))
    [ 1_000; 4_000; 16_000 ];
  print_endline
    "the whole trace (ParaMeter-style) grows linearly with the run; the\n\
     online index tree stays within the Theorem 1 bound -- the paper's SV\n\
     argument for not recording the trace. Offline replay of the trace\n\
     reproduces the online profile bit-for-bit (test/test_trace.ml).";

  header "Ablation 4 — index-tree attribution vs flat/context baselines";
  let prog = Vm.Compile.compile_source baseline_src in
  let t0 = Unix.gettimeofday () in
  ignore (Baselines.Flat_profiler.run prog);
  let t1 = Unix.gettimeofday () in
  ignore (Baselines.Context_profiler.run prog);
  let t2 = Unix.gettimeofday () in
  ignore (Profiler.run prog);
  let t3 = Unix.gettimeofday () in
  Printf.printf "flat %.4fs, context %.4fs, alchemist %.4fs\n" (t1 -. t0)
    (t2 -. t1) (t3 -. t2);
  print_endline
    "the index tree costs within ~2x of a flat profiler while answering\n\
     the loop-boundary questions the baselines cannot (see 'baseline')."

(* --- automated workflow (Explore) ------------------------------------------------- *)

let explore_bench () =
  header "Automated workflow — profile, advise, simulate (driver.Explore)";
  List.iter
    (fun (name, scale) ->
      let w = Registry.find name in
      let prog = W.compile w ~scale in
      let t = Driver.Explore.explore ~fuel ~cores:4 ~top:6 prog in
      match Driver.Explore.best t with
      | Some c ->
          let r = Option.get c.Driver.Explore.simulated in
          Printf.printf
            "%-12s best: %-28s %.2fx  (advice: privatize %s; reduce %s)\n" name
            c.Driver.Explore.entry.Ranking.name r.Parsim.Speedup.speedup
            (String.concat ","
               (Alchemist.Advice.privatization_list c.Driver.Explore.advice))
            (String.concat ","
               (Alchemist.Advice.reduction_list c.Driver.Explore.advice))
      | None -> Printf.printf "%-12s no candidate\n" name)
    [ ("bzip2", 6_000); ("ogg", 800); ("par2", 64); ("aes", 1_024); ("delaunay", 8_000) ];
  print_endline
    "\nfully automatic reproduction of the SIV-B2 methodology: the driver\n\
     rediscovers the paper's hand-chosen sites and transforms (near-linear\n\
     bzip2/ogg, modest par2/aes, nothing on delaunay)."

(* --- perf: engine dispatch, end-to-end profiling and sharded speedup ------------- *)

let perf_jobs = ref (Driver.Parallel.default_jobs ())

(* The threaded engine's superinstruction windows, grouped by pattern
   name — emitted into the perf and register bench JSON so dispatch-level
   regressions are attributable to a pattern that stopped matching.
   Fusion collapses stack pcs into superinstructions the same way IR
   lowering collapses them into three-address instructions, so both
   sections report the same histogram shape. *)
let fusion_histogram prog =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Vm.Lower.fusion) ->
      let hits, pcs =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl f.Vm.Lower.name)
      in
      Hashtbl.replace tbl f.name (hits + 1, pcs + f.Vm.Lower.length))
    (Vm.Lower.fusions prog);
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (_, (a, _)) (_, (b, _)) -> compare b a)

let fusion_histogram_json hist =
  String.concat ",\n"
    (List.map
       (fun (name, (hits, pcs)) ->
         Printf.sprintf
           {|      { "pattern": "%s", "sites": %d, "stack_pcs": %d }|} name hits
           pcs)
       hist)

(* BENCH_2.json's gzip end-to-end figure, measured on the switch engine
   before the threaded engine existed — the "before" this PR is judged
   against. *)
let bench2_ns_per_event = 288.78

let perf () =
  header "Perf — closure-threaded dispatch + end-to-end profiling";
  let w = Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:w.W.default_scale in
  (* best-of-N so one scheduler hiccup cannot distort the throughput
     figures (a single-core host shares its CPU with everything else) *)
  let runs = 7 in
  let best_of f =
    let best = ref infinity and bv = ref None in
    for _ = 1 to runs do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !best then begin
        best := wall;
        bv := Some v
      end
    done;
    (Option.get !bv, !best)
  in
  (* --- gzip end-to-end profile per engine -------------------------------- *)
  (* Measured first, before the dispatch micro-rows: this is the headline
     figure, and on a shared host a few seconds of sustained benching is
     enough to attract scheduler interference. *)
  let r0 = Vm.Machine.run ~fuel prog in
  let instrs = r0.Vm.Machine.instructions in
  ignore (Profiler.run ~fuel prog);
  (* warm *)
  let r, wall =
    best_of (fun () -> Profiler.run ~engine:Vm.Machine.Threaded ~fuel prog)
  in
  let r_sw, wall_sw =
    best_of (fun () -> Profiler.run ~engine:Vm.Machine.Switch ~fuel prog)
  in
  let events = r.Profiler.stats.Profiler.shadow_events in
  let ns_per_event = wall *. 1e9 /. float_of_int events in
  let ns_per_event_sw = wall_sw *. 1e9 /. float_of_int events in
  let events_per_sec = float_of_int events /. wall in
  let profiles_identical =
    Alchemist.Profile_io.to_string r_sw.Profiler.profile
    = Alchemist.Profile_io.to_string r.Profiler.profile
  in
  Printf.printf
    "\nmini-gzip end-to-end profile (best of %d, %d shadow events):\n" runs
    events;
  Printf.printf "  switch    %.3fs wall  %6.1f ns/event\n" wall_sw
    ns_per_event_sw;
  Printf.printf
    "  threaded  %.3fs wall  %6.1f ns/event  (%.2fx vs switch, %+.1f%% vs \
     BENCH_2's %.1f)\n"
    wall ns_per_event (wall_sw /. wall)
    ((ns_per_event -. bench2_ns_per_event) /. bench2_ns_per_event *. 100.)
    bench2_ns_per_event;
  Printf.printf "  profiles byte-identical across engines: %b\n"
    profiles_identical;
  (* --- dispatch: ns/instr per engine, unhooked and hooked ---------------- *)
  (* Counting hooks cost one int bump per event: they isolate engine
     dispatch + hook-call overhead from the profiler's rule machinery. *)
  let hook_events = ref 0 in
  let cheap =
    {
      Vm.Hooks.on_instr = (fun ~pc:_ -> incr hook_events);
      on_read = (fun ~pc:_ ~addr:_ -> incr hook_events);
      on_write = (fun ~pc:_ ~addr:_ -> incr hook_events);
      on_branch = (fun ~pc:_ ~kind:_ ~cid:_ ~taken:_ -> incr hook_events);
      on_call = (fun ~pc:_ ~fid:_ -> incr hook_events);
      on_ret = (fun ~pc:_ ~fid:_ -> incr hook_events);
      on_frame_release = (fun ~base:_ ~size:_ -> incr hook_events);
    }
  in
  let ns_per_instr wall = wall *. 1e9 /. float_of_int instrs in
  Printf.printf "\ndispatch (gzip-1.3.5, %d instructions, best of %d):\n"
    instrs runs;
  let dispatch_row name unhooked hooked =
    let _, uw = best_of unhooked in
    let _, hw = best_of hooked in
    let u = ns_per_instr uw and h = ns_per_instr hw in
    Printf.printf "  %-22s %6.2f ns/instr unhooked  %6.2f ns/instr hooked\n"
      name u h;
    (u, h)
  in
  let sw_u, sw_h =
    dispatch_row "switch"
      (fun () -> Vm.Machine.run ~engine:Vm.Machine.Switch ~fuel prog)
      (fun () ->
        Vm.Machine.run_hooked ~engine:Vm.Machine.Switch ~trace_locals:false
          ~fuel cheap prog)
  in
  let th_u, th_h =
    dispatch_row "threaded"
      (fun () -> Vm.Machine.run ~fuel prog)
      (fun () -> Vm.Machine.run_hooked ~trace_locals:false ~fuel cheap prog)
  in
  let nf_u, nf_h =
    dispatch_row "threaded, fusion off"
      (fun () ->
        Vm.Lower.exec ~hooked:false ~fuse:false Vm.Hooks.noop ~fuel prog)
      (fun () ->
        Vm.Lower.exec ~hooked:true ~trace_locals:false ~fuse:false cheap ~fuel
          prog)
  in
  (* --- pool churn: scan_len telemetry under a capacity-bound pool -------- *)
  let churn_prog =
    Vm.Compile.compile_source
      {| int g;
         int main() {
           for (int i = 0; i < 20000; i++) { g += i; if (g > 100000) g = 0; }
           return g;
         } |}
  in
  let rc, _ = best_of (fun () -> Profiler.run ~pool_capacity:8 churn_prog) in
  let scan_count, scan_sum =
    match Obs.find (Profiler.telemetry rc) "pool.scan_len" with
    | Some (Obs.Dist { count; sum; _ }) -> (count, sum)
    | _ -> (0, 0)
  in
  Printf.printf
    "\npool churn (capacity 8): scan_len count %d, sum %d, reused %d\n"
    scan_count scan_sum rc.Profiler.stats.Profiler.pool_reused;
  let telemetry_json = Obs.render_json (Profiler.telemetry r) in
  (* Sharding is a throughput claim, so the job count must not exceed the
     cores that actually exist: oversubscribed domains time-slice one CPU
     and inter-domain GC coordination turns the "speedup" into a slowdown
     (the BENCH_1 0.34x artifact). Clamp, and say so. *)
  let cores = Domain.recommended_domain_count () in
  let requested = max 1 !perf_jobs in
  let jobs = min requested cores in
  let oversubscribed = requested > cores in
  if oversubscribed then
    Printf.printf
      "  warning: -j %d exceeds %d host core(s); clamping to -j %d\n" requested
      cores jobs;
  let scale_of (w : W.t) = w.W.default_scale in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let registry_json =
    if jobs <= 1 then begin
      Printf.printf
        "\nregistry sharding comparison skipped: %d host core(s) — domains\n\
         would time-slice one CPU and measure scheduler noise, not speedup\n"
        cores;
      Printf.sprintf
        {|{
    "skipped": true,
    "reason": "single-core host: a -jN vs -j1 comparison measures time-slicing, not sharding",
    "requested_jobs": %d,
    "host_cores": %d,
    "oversubscribed": %b
  }|}
        requested cores oversubscribed
    end
    else begin
      let seq, seq_wall =
        time (fun () ->
            Driver.Parallel.profile_registry ~jobs:1 ~fuel ~scale_of ())
      in
      let par, par_wall =
        time (fun () -> Driver.Parallel.profile_registry ~jobs ~fuel ~scale_of ())
      in
      let identical =
        List.for_all2
          (fun (_, (a : Profiler.result)) (_, (b : Profiler.result)) ->
            Alchemist.Profile_io.to_string a.Profiler.profile
            = Alchemist.Profile_io.to_string b.Profiler.profile)
          seq par
      in
      Printf.printf
        "\nregistry (%d workloads): -j1 %.2fs  -j%d %.2fs  (%.2fx), sharded \
         profiles byte-identical: %b\n"
        (List.length seq) seq_wall jobs par_wall (seq_wall /. par_wall)
        identical;
      Printf.sprintf
        {|{
    "workloads": %d,
    "j1_wall_s": %.4f,
    "jN_wall_s": %.4f,
    "requested_jobs": %d,
    "jobs": %d,
    "host_cores": %d,
    "oversubscribed": %b,
    "speedup": %.3f,
    "profiles_identical": %b
  }|}
        (List.length seq) seq_wall par_wall requested jobs cores oversubscribed
        (seq_wall /. par_wall) identical
    end
  in
  let hist = fusion_histogram prog in
  let fused_sites = List.fold_left (fun a (_, (h, _)) -> a + h) 0 hist in
  let fused_pcs = List.fold_left (fun a (_, (_, p)) -> a + p) 0 hist in
  let oc = open_out "BENCH_3.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "engine dispatch + gzip-1.3.5 end-to-end profile",
  "engine_default": "threaded",
  "fusion_histogram": {
    "engine": "threaded",
    "fused_sites": %d,
    "fused_stack_pcs": %d,
    "patterns": [
%s
    ]
  },
  "dispatch": {
    "instructions": %d,
    "switch": { "unhooked_ns_per_instr": %.2f, "hooked_ns_per_instr": %.2f },
    "threaded": { "unhooked_ns_per_instr": %.2f, "hooked_ns_per_instr": %.2f }
  },
  "ablation": {
    "name": "superinstructions-off",
    "engine": "threaded",
    "unhooked_ns_per_instr": %.2f,
    "hooked_ns_per_instr": %.2f
  },
  "gzip": {
    "wall_s": %.4f,
    "instructions": %d,
    "shadow_events": %d,
    "ns_per_event": %.2f,
    "events_per_sec": %.0f,
    "switch_wall_s": %.4f,
    "switch_ns_per_event": %.2f,
    "speedup_vs_switch": %.3f,
    "bench2_ns_per_event": %.2f,
    "improvement_vs_bench2": %.4f,
    "profiles_identical": %b
  },
  "pool_churn": {
    "pool_capacity": 8,
    "scan_len_count": %d,
    "scan_len_sum": %d,
    "pool_reused": %d
  },
  "registry": %s,
  "telemetry": %s
}
|}
    fused_sites fused_pcs
    (fusion_histogram_json hist)
    instrs sw_u sw_h th_u th_h nf_u nf_h wall instrs events ns_per_event
    events_per_sec wall_sw ns_per_event_sw (wall_sw /. wall)
    bench2_ns_per_event
    ((bench2_ns_per_event -. ns_per_event) /. bench2_ns_per_event)
    profiles_identical scan_count scan_sum rc.Profiler.stats.Profiler.pool_reused
    registry_json telemetry_json;
  close_out oc;
  print_endline "wrote BENCH_3.json"

(* --- register: register-IR backend ------------------------------------------------ *)

let register_bench () =
  header "Register — register-IR backend vs stack dispatch";
  let w = Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:w.W.default_scale in
  let runs = 7 in
  let best_of ?(n = runs) f =
    let best = ref infinity and bv = ref None in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !best then begin
        best := wall;
        bv := Some v
      end
    done;
    (Option.get !bv, !best)
  in
  let r0 = Vm.Machine.run ~fuel prog in
  let instrs = r0.Vm.Machine.instructions in
  (* --- gzip end-to-end profile: threaded vs register --------------------- *)
  (* The end-to-end rows are the headline figures and this host is
     time-shared: sample them harder than the micro rows so best-of can
     ride out scheduler interference. *)
  let e2e_runs = 15 in
  ignore (Profiler.run ~engine:Vm.Machine.Register ~fuel prog) (* warm *);
  let r_rg, wall_rg =
    best_of ~n:e2e_runs (fun () ->
        Profiler.run ~engine:Vm.Machine.Register ~fuel prog)
  in
  let r_th, wall_th =
    best_of ~n:e2e_runs (fun () ->
        Profiler.run ~engine:Vm.Machine.Threaded ~fuel prog)
  in
  let r_id, wall_id =
    best_of ~n:e2e_runs (fun () ->
        Profiler.run ~engine:Vm.Machine.Register ~regalloc:false ~fuel prog)
  in
  let events = r_rg.Profiler.stats.Profiler.shadow_events in
  let ns e wall = wall *. 1e9 /. float_of_int e in
  let ns_rg = ns events wall_rg
  and ns_th = ns events wall_th
  and ns_id = ns events wall_id in
  let profiles_identical =
    Alchemist.Profile_io.to_string r_th.Profiler.profile
    = Alchemist.Profile_io.to_string r_rg.Profiler.profile
    && Alchemist.Profile_io.to_string r_id.Profiler.profile
       = Alchemist.Profile_io.to_string r_rg.Profiler.profile
  in
  Printf.printf
    "\nmini-gzip end-to-end profile (best of %d, %d shadow events):\n" runs
    events;
  Printf.printf "  threaded          %.3fs wall  %6.1f ns/event\n" wall_th
    ns_th;
  (* The only load-robust comparison on this time-shared host is the
     same-session threaded run — absolute ns/event swings +-20% with
     background load, the engine ratio does not (see the bench
     methodology note in DESIGN.md). *)
  Printf.printf
    "  register          %.3fs wall  %6.1f ns/event  (%.2fx vs \
     same-session threaded)\n"
    wall_rg ns_rg (wall_th /. wall_rg);
  Printf.printf "  register, alloc off %.3fs wall %6.1f ns/event\n" wall_id
    ns_id;
  Printf.printf "  profiles byte-identical across engines and ablation: %b\n"
    profiles_identical;
  (* --- dispatch: ns/instr, unhooked and cheap-hooked --------------------- *)
  let hook_events = ref 0 in
  let cheap =
    {
      Vm.Hooks.on_instr = (fun ~pc:_ -> incr hook_events);
      on_read = (fun ~pc:_ ~addr:_ -> incr hook_events);
      on_write = (fun ~pc:_ ~addr:_ -> incr hook_events);
      on_branch = (fun ~pc:_ ~kind:_ ~cid:_ ~taken:_ -> incr hook_events);
      on_call = (fun ~pc:_ ~fid:_ -> incr hook_events);
      on_ret = (fun ~pc:_ ~fid:_ -> incr hook_events);
      on_frame_release = (fun ~base:_ ~size:_ -> incr hook_events);
    }
  in
  let ns_per_instr wall = wall *. 1e9 /. float_of_int instrs in
  Printf.printf "\ndispatch (gzip-1.3.5, %d instructions, best of %d):\n"
    instrs runs;
  let dispatch_row name unhooked hooked =
    let _, uw = best_of unhooked in
    let _, hw = best_of hooked in
    let u = ns_per_instr uw and h = ns_per_instr hw in
    Printf.printf "  %-22s %6.2f ns/instr unhooked  %6.2f ns/instr hooked\n"
      name u h;
    (u, h)
  in
  let th_u, th_h =
    dispatch_row "threaded"
      (fun () -> Vm.Machine.run ~fuel prog)
      (fun () -> Vm.Machine.run_hooked ~trace_locals:false ~fuel cheap prog)
  in
  let rg_u, rg_h =
    dispatch_row "register"
      (fun () -> Ir.Engine.run ~engine:Vm.Machine.Register ~fuel prog)
      (fun () ->
        Ir.Engine.run_hooked ~engine:Vm.Machine.Register ~trace_locals:false
          ~fuel cheap prog)
  in
  let id_u, id_h =
    dispatch_row "register, alloc off"
      (fun () ->
        Ir.Engine.run ~engine:Vm.Machine.Register ~regalloc:false ~fuel prog)
      (fun () ->
        Ir.Engine.run_hooked ~engine:Vm.Machine.Register ~regalloc:false
          ~trace_locals:false ~fuel cheap prog)
  in
  (* --- compression: fusion windows vs IR lowering ------------------------ *)
  let hist = fusion_histogram prog in
  let fused_sites = List.fold_left (fun a (_, (h, _)) -> a + h) 0 hist in
  let fused_pcs = List.fold_left (fun a (_, (_, p)) -> a + p) 0 hist in
  Printf.printf
    "\nfusion histogram (threaded engine, %d windows covering %d stack pcs):\n"
    fused_sites fused_pcs;
  List.iter
    (fun (name, (hits, pcs)) ->
      Printf.printf "  %-28s %4d sites  %5d stack pcs\n" name hits pcs)
    hist;
  let snap = Profiler.telemetry r_rg in
  let gauge name =
    match Obs.find snap name with Some (Obs.Level { last; _ }) -> last | _ -> 0
  in
  Printf.printf
    "register IR: %d IR instrs per 1000 stack instrs, %d spill(s)\n"
    (gauge "ir.instrs_per_stack_instr")
    (gauge "ir.spills");
  let telemetry_json = Obs.render_json snap in
  let oc = open_out "BENCH_6.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "register-IR backend + gzip-1.3.5 end-to-end profile",
  "engine_default": "threaded",
  "dispatch": {
    "instructions": %d,
    "threaded": { "unhooked_ns_per_instr": %.2f, "hooked_ns_per_instr": %.2f },
    "register": { "unhooked_ns_per_instr": %.2f, "hooked_ns_per_instr": %.2f }
  },
  "ablation": {
    "name": "regalloc-off",
    "engine": "register",
    "unhooked_ns_per_instr": %.2f,
    "hooked_ns_per_instr": %.2f,
    "wall_s": %.4f,
    "ns_per_event": %.2f
  },
  "gzip": {
    "wall_s": %.4f,
    "instructions": %d,
    "shadow_events": %d,
    "ns_per_event": %.2f,
    "threaded_wall_s": %.4f,
    "threaded_ns_per_event": %.2f,
    "speedup_vs_threaded": %.3f,
    "profiles_identical": %b
  },
  "fusion_histogram": {
    "engine": "threaded",
    "fused_sites": %d,
    "fused_stack_pcs": %d,
    "patterns": [
%s
    ]
  },
  "telemetry": %s
}
|}
    instrs th_u th_h rg_u rg_h id_u id_h wall_id ns_id wall_rg instrs events
    ns_rg wall_th ns_th (wall_th /. wall_rg)
    profiles_identical fused_sites fused_pcs
    (fusion_histogram_json hist)
    telemetry_json;
  close_out oc;
  print_endline "wrote BENCH_6.json"

(* --- hookfloor: event ring + freshen memo ------------------------------------------ *)

let hookfloor_bench () =
  header "Hookfloor — event ring + segment freshen memo vs the threaded floor";
  let w = Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:w.W.default_scale in
  (* The headline is a ratio of two same-session end-to-end runs on a
     time-shared host. Sampling the engines in separate blocks lets a
     noisy minute land on only one of them and skew the ratio, so the
     rounds interleave all three configurations back to back — sustained
     interference then inflates every best equally and the ratio
     survives. *)
  let e2e_runs = 15 in
  let sample f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let keep best (v, wall) = if wall < snd best then (v, wall) else best in
  ignore (Profiler.run ~engine:Vm.Machine.Register ~fuel prog) (* warm *);
  let ring_run () = Profiler.run ~engine:Vm.Machine.Register ~fuel prog in
  let nor_run () =
    Profiler.run ~engine:Vm.Machine.Register ~ring:false ~fuel prog
  in
  let th_run () = Profiler.run ~engine:Vm.Machine.Threaded ~fuel prog in
  let best_ring = ref (sample ring_run)
  and best_nor = ref (sample nor_run)
  and best_th = ref (sample th_run) in
  for _ = 2 to e2e_runs do
    best_ring := keep !best_ring (sample ring_run);
    best_nor := keep !best_nor (sample nor_run);
    best_th := keep !best_th (sample th_run)
  done;
  let r_ring, wall_ring = !best_ring in
  let r_nor, wall_nor = !best_nor in
  let r_th, wall_th = !best_th in
  let events = r_ring.Profiler.stats.Profiler.shadow_events in
  let ns w = w *. 1e9 /. float_of_int events in
  let profiles_identical =
    Alchemist.Profile_io.to_string r_ring.Profiler.profile
    = Alchemist.Profile_io.to_string r_nor.Profiler.profile
    && Alchemist.Profile_io.to_string r_th.Profiler.profile
       = Alchemist.Profile_io.to_string r_ring.Profiler.profile
  in
  let snap = Profiler.telemetry r_ring in
  let count name =
    match Obs.find snap name with Some (Obs.Count n) -> n | _ -> 0
  in
  let freshens = count "shadow.freshen_checks" in
  let ring_events = count "ir.ring_events" in
  let ring_drains = count "ir.ring_drains" in
  (* p99 ring depth: log2-bucket upper bound clamped to the observed
     max (a full ring of depth_max 8192 must not report 16383). *)
  let depth_p99 =
    Option.value ~default:0 (Obs.dist_percentile_upper snap "ir.ring_depth" 99)
  in
  let depth_max =
    match Obs.find snap "ir.ring_depth" with
    | Some (Obs.Dist { max; _ }) -> max
    | _ -> 0
  in
  let freshens_per_event = float_of_int freshens /. float_of_int events in
  Printf.printf
    "\nmini-gzip end-to-end profile (best of %d, %d shadow events):\n" e2e_runs
    events;
  Printf.printf "  threaded           %.3fs wall  %6.1f ns/event\n" wall_th
    (ns wall_th);
  Printf.printf "  register, no ring  %.3fs wall  %6.1f ns/event  (%.2fx)\n"
    wall_nor (ns wall_nor) (wall_th /. wall_nor);
  Printf.printf
    "  register, ring     %.3fs wall  %6.1f ns/event  (%.2fx vs \
     same-session threaded)\n"
    wall_ring (ns wall_ring) (wall_th /. wall_ring);
  Printf.printf "  profiles byte-identical (ring/no-ring/threaded): %b\n"
    profiles_identical;
  Printf.printf "\nring: %d events in %d drains (%.0f events/drain), depth \
                 p99 <= %d, max %d\n"
    ring_events ring_drains
    (if ring_drains = 0 then 0.
     else float_of_int ring_events /. float_of_int ring_drains)
    depth_p99 depth_max;
  Printf.printf
    "freshen memo: %.3f freshens/event (was 1.000 per event before the \
     per-address generation memo)\n"
    freshens_per_event;
  let oc = open_out "BENCH_7.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "hook floor: event ring + segment freshen memo (gzip-1.3.5)",
  "runs": %d,
  "shadow_events": %d,
  "threaded": { "wall_s": %.4f, "ns_per_event": %.2f },
  "register_no_ring": { "wall_s": %.4f, "ns_per_event": %.2f, "speedup_vs_threaded": %.3f },
  "register_ring": { "wall_s": %.4f, "ns_per_event": %.2f, "speedup_vs_threaded": %.3f },
  "ring": {
    "events": %d,
    "drains": %d,
    "events_per_drain": %.1f,
    "depth_p99_upper": %d,
    "depth_max": %d
  },
  "freshen_memo": {
    "freshen_checks": %d,
    "freshens_per_event": %.4f,
    "freshens_per_event_before": 1.0
  },
  "profiles_identical": %b,
  "telemetry": %s
}
|}
    e2e_runs events wall_th (ns wall_th) wall_nor (ns wall_nor)
    (wall_th /. wall_nor) wall_ring (ns wall_ring) (wall_th /. wall_ring)
    ring_events ring_drains
    (if ring_drains = 0 then 0.
     else float_of_int ring_events /. float_of_int ring_drains)
    depth_p99 depth_max freshens freshens_per_event profiles_identical
    (Obs.render_json snap);
  close_out oc;
  print_endline "wrote BENCH_7.json"

(* --- static: instrumentation pruning ---------------------------------------------- *)

let static_bench () =
  header "Static — dependence analysis + instrumentation pruning (gzip)";
  let w = Registry.find "gzip-1.3.5" in
  let prog = W.compile w ~scale:w.W.default_scale in
  let runs = 7 in
  let best_of f =
    let best = ref infinity and bv = ref None in
    for _ = 1 to runs do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !best then begin
        best := wall;
        bv := Some v
      end
    done;
    (Option.get !bv, !best)
  in
  (* Analysis cost alone: the whole static pipeline (CFA + reaching defs
     + points-to + verdicts) on the full workload program. *)
  let dep, analysis_wall = best_of (fun () -> Static.Depend.analyze prog) in
  ignore dep;
  (* Warm, then best-of-N end-to-end profile with pruning on and off.
     Both runs produce the same profile bytes (the acceptance criterion);
     the off run's shadow_events is the common normalizer so the two
     ns/event figures compare the same amount of profiling work. *)
  ignore (Profiler.run ~fuel prog);
  let r_on, wall_on = best_of (fun () -> Profiler.run ~fuel prog) in
  let r_off, wall_off =
    best_of (fun () -> Profiler.run ~static_prune:false ~fuel prog)
  in
  let events_off = r_off.Profiler.stats.Profiler.shadow_events in
  let ns_on = wall_on *. 1e9 /. float_of_int events_off in
  let ns_off = wall_off *. 1e9 /. float_of_int events_off in
  let identical =
    Alchemist.Profile_io.to_string r_on.Profiler.profile
    = Alchemist.Profile_io.to_string r_off.Profiler.profile
  in
  let pruned = r_on.Profiler.stats.Profiler.pruned_pcs in
  let event_pcs = r_on.Profiler.stats.Profiler.event_pcs in
  Printf.printf "\nstatic analysis: %.4fs (best of %d)\n" analysis_wall runs;
  Printf.printf "pruned %d of %d memory-event pcs\n" pruned event_pcs;
  Printf.printf
    "profile (normalized by the unpruned run's %d shadow events):\n" events_off;
  Printf.printf "  prune off  %.3fs wall  %6.1f ns/event\n" wall_off ns_off;
  Printf.printf "  prune on   %.3fs wall  %6.1f ns/event  (%.2fx)\n" wall_on
    ns_on (wall_off /. wall_on);
  Printf.printf "profiles byte-identical: %b\n" identical;
  let oc = open_out "BENCH_4.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "static dependence analysis + instrumentation pruning",
  "workload": "gzip-1.3.5",
  "runs": %d,
  "analysis_wall_s": %.4f,
  "pruned_pcs": %d,
  "event_pcs": %d,
  "shadow_events_unpruned": %d,
  "prune_off": { "wall_s": %.4f, "ns_per_event": %.2f },
  "prune_on": { "wall_s": %.4f, "ns_per_event": %.2f },
  "speedup": %.3f,
  "profiles_identical": %b
}
|}
    runs analysis_wall pruned event_pcs events_off wall_off ns_off wall_on
    ns_on (wall_off /. wall_on) identical;
  close_out oc;
  print_endline "wrote BENCH_4.json"

(* --- distance: dependence-distance engine ----------------------------------------- *)

let distance_bench () =
  header "Distance — static dependence-distance analysis across the registry";
  let runs = 7 in
  let best_of f =
    let best = ref infinity and bv = ref None in
    for _ = 1 to runs do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !best then begin
        best := wall;
        bv := Some v
      end
    done;
    (Option.get !bv, !best)
  in
  Printf.printf "\n%-14s %10s %9s %12s %12s %7s\n" "workload" "analysis"
    "event-pcs" "pruned-base" "pruned-dist" "bounds";
  let rows =
    List.map
      (fun (w : W.t) ->
        let prog = W.compile w ~scale:w.W.test_scale in
        (* Distance engine cost alone (induction + affine solve + query
           tables), best of N; the two full analyses below measure the
           prune coverage the distance facts add on top of the region
           rules. *)
        let _, dist_wall =
          best_of (fun () ->
              Static.Distance.analyze ~called_once:(fun _ -> false) prog)
        in
        let base = Static.Depend.analyze ~distance_promotion:false prog in
        let full = Static.Depend.analyze prog in
        let pruned_base = Static.Depend.pruned_count base in
        let pruned_full = Static.Depend.pruned_count full in
        let event_pcs = Static.Depend.event_count full in
        (* Proven bounds actually persisted for this workload's profile
           (the v3 distbound lines `alchemist check` cross-validates). *)
        let r = Profiler.run ~fuel prog in
        let bounds =
          match r.Profiler.profile.Profile.static_distbounds with
          | Some l -> List.length l
          | None -> 0
        in
        Printf.printf "%-14s %9.4fs %9d %12d %12d %7d\n" w.W.name dist_wall
          event_pcs pruned_base pruned_full bounds;
        Printf.sprintf
          {|    { "name": "%s", "distance_analysis_wall_s": %.4f,
      "event_pcs": %d, "pruned_base": %d, "pruned_with_distance": %d,
      "prune_delta": %d, "distance_bounds": %d }|}
          w.W.name dist_wall event_pcs pruned_base pruned_full
          (pruned_full - pruned_base) bounds)
      Registry.all
  in
  let oc = open_out "BENCH_5.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "static dependence-distance engine",
  "runs": %d,
  "scale": "test",
  "workloads": [
%s
  ]
}
|}
    runs
    (String.concat ",\n" rows);
  close_out oc;
  print_endline "wrote BENCH_5.json"

(* --- service: scheduler + content-addressed cache -------------------------------- *)

let service_bench () =
  header "Registry service — work-stealing scheduler + content-addressed cache";
  let workers = max 2 !perf_jobs in
  (* Two input scales per workload: 18 distinct cache keys over 9 code
     fingerprints, so the cold pass exercises both the miss path and
     the static-facts reuse (second scale of each workload shares the
     first's code). The warm pass replays the same requests against
     the same cache object through a fresh service — every reply must
     come from the cache, byte-identical, and an order of magnitude
     faster than profiling. *)
  let requests =
    List.concat_map
      (fun (w : W.t) ->
        List.map
          (fun scale ->
            ( Printf.sprintf "workload:%s:%d" w.W.name scale,
              W.compile w ~scale ))
          [ w.W.test_scale; max 2 (w.W.test_scale / 2) ])
      Registry.all
  in
  (* An input family: the input lives in an initialized global, so the
     four variants share code — distinct cache keys, one static
     analysis. This is the incremental re-profiling path (the 18
     workload requests above bake their scale into the code, so each
     needs its own facts). *)
  let family_requests =
    List.map
      (fun mode ->
        ( Printf.sprintf "family:mode=%d" mode,
          Vm.Compile.compile_source
            (Printf.sprintf
               {|int mode = %d;
                 int acc;
                 int out[64];
                 int main() {
                   for (int i = 0; i < 4000 + mode; i++) {
                     int s = 0;
                     for (int k = 0; k < 40; k++) s += i + k;
                     if (mode > 1) acc += s;
                     out[i & 63] = s + out[(i + mode) & 63];
                   }
                   return acc;
                 }|}
               mode) ))
      [ 0; 1; 2; 3 ]
  in
  let requests = requests @ family_requests in
  let n = List.length requests in
  let cache = Driver.Cache.create () in
  let run_pass () =
    let svc = Driver.Service.create ~workers ~cache () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (spec, prog) -> Driver.Service.submit svc ~fuel ~spec prog)
      requests;
    let replies = Driver.Service.drain svc in
    let wall = Unix.gettimeofday () -. t0 in
    let snap = Driver.Service.telemetry svc in
    Driver.Service.shutdown svc;
    (replies, wall, snap)
  in
  let cold_replies, cold_wall, cold_snap = run_pass () in
  let warm_replies, warm_wall, warm_snap = run_pass () in
  (* The reference output the service must reproduce byte-for-byte:
     plain profiler runs, the profile-all path. *)
  let direct =
    List.map
      (fun (spec, prog) ->
        (spec, Alchemist.Profile_io.to_string (Profiler.run ~fuel prog).Profiler.profile))
      requests
  in
  let bytes_of (r : Driver.Service.reply) =
    match r.Driver.Service.result with
    | Ok (_, _, bytes) -> bytes
    | Error msg -> failwith ("service error: " ^ msg)
  in
  let profiles_identical =
    List.for_all2
      (fun (cold, warm) (_, direct_bytes) ->
        String.equal (bytes_of cold) (bytes_of warm)
        && String.equal (bytes_of cold) direct_bytes)
      (List.combine cold_replies warm_replies)
      direct
  in
  let all_warm_hits =
    List.for_all
      (fun (r : Driver.Service.reply) ->
        match r.Driver.Service.result with
        | Ok (Driver.Service.Hit, _, _) -> true
        | _ -> false)
      warm_replies
  in
  let count snap name = Option.value ~default:0 (Obs.find_count snap name) in
  (* The cache is shared across the two passes, so warm-pass cache
     counters are the cumulative minus the cold snapshot. *)
  let warm_hits = count warm_snap "cache.hits" - count cold_snap "cache.hits" in
  let steals = count cold_snap "sched.steals" in
  let steal_batches = count cold_snap "sched.steal_batches" in
  let pctl p =
    Option.value ~default:0
      (Obs.dist_percentile_upper cold_snap "sched.job_latency_ns" p)
  in
  let jobs_per_s wall = float_of_int n /. wall in
  let speedup = cold_wall /. warm_wall in
  Printf.printf
    "%d requests (9 workloads x 2 scales + 4-input family) on %d workers:\n" n
    workers;
  Printf.printf "  cold  %.3fs wall  %7.1f jobs/s  (%d misses, %d steals in %d batches)\n"
    cold_wall (jobs_per_s cold_wall)
    (count cold_snap "cache.misses")
    steals steal_batches;
  Printf.printf "  warm  %.5fs wall  %7.1f jobs/s  (%d hits, all-hit %b)\n"
    warm_wall (jobs_per_s warm_wall) warm_hits all_warm_hits;
  Printf.printf "  warm speedup %.0fx, job latency p50 <= %.1fms p99 <= %.1fms\n"
    speedup
    (float_of_int (pctl 50) /. 1e6)
    (float_of_int (pctl 99) /. 1e6);
  Printf.printf "  static facts: %d computed, %d reused (input change reuses code facts)\n"
    (count cold_snap "service.facts_computed")
    (count cold_snap "service.facts_reused");
  Printf.printf "  profiles byte-identical (cold/warm/direct): %b\n"
    profiles_identical;
  let oc = open_out "BENCH_8.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "registry service: work-stealing scheduler + content-addressed profile cache",
  "workers": %d,
  "requests": %d,
  "cold": {
    "wall_s": %.4f,
    "jobs_per_s": %.1f,
    "misses": %d,
    "steals": %d,
    "steal_batches": %d,
    "latency_p50_ns_upper": %d,
    "latency_p99_ns_upper": %d
  },
  "warm": {
    "wall_s": %.6f,
    "jobs_per_s": %.1f,
    "hits": %d,
    "hit_rate": %.3f,
    "all_hits": %b
  },
  "warm_speedup": %.1f,
  "facts_computed": %d,
  "facts_reused": %d,
  "profiles_identical": %b,
  "cold_telemetry": %s
}
|}
    workers n cold_wall (jobs_per_s cold_wall)
    (count cold_snap "cache.misses")
    steals steal_batches (pctl 50) (pctl 99) warm_wall (jobs_per_s warm_wall)
    warm_hits
    (float_of_int warm_hits /. float_of_int n)
    all_warm_hits speedup
    (count cold_snap "service.facts_computed")
    (count cold_snap "service.facts_reused")
    profiles_identical
    (Obs.render_json (Obs.filter (fun _ v -> match v with Obs.Span _ -> false | _ -> true) cold_snap));
  close_out oc;
  print_endline "wrote BENCH_8.json"

(* --- transform legality: speedup from proven-removable edges only ---------------- *)

(* Table V's transforms drop the edges the paper's {e manual} rewrites
   remove. The honest middle ground is dropping only what the
   transform-legality engine {e proves} removable — no hand-named
   variable lists. For every loop parallelization site in the registry
   this compares all-edges-blocking scheduling against proven-edges-
   dropped scheduling at 16/64/256 cores: the gap is the speedup the
   static proofs alone unlock. *)
let legality_bench () =
  header "Transform legality — speedup from proven-removable edges only";
  let cores_list = [ 16; 64; 256 ] in
  let rows =
    List.concat_map
      (fun (w : W.t) ->
        let prog = W.compile w ~scale:w.W.default_scale in
        List.filter_map
          (fun (site : W.site) ->
            let head_pc = site.W.locate prog in
            match Vm.Program.construct_at prog head_pc with
            | Some c when c.Vm.Program.kind = Vm.Program.CLoop ->
                Some (w.W.name, site, prog, head_pc)
            | _ -> None)
          w.W.sites)
      Registry.all
    (* the same loop can back two sites (gzip's per-file loop) *)
    |> List.fold_left
         (fun acc ((name, _, _, head_pc) as row) ->
           if
             List.exists
               (fun (n, _, _, h) -> n = name && h = head_pc)
               acc
           then acc
           else row :: acc)
         []
    |> List.rev
  in
  let results =
    List.map
      (fun (name, (site : W.site), prog, head_pc) ->
        let dep = Static.Depend.analyze prog in
        let legality = Static.Depend.legality dep in
        let proven_priv, proven_red =
          Parsim.Transform.legality_ranges legality ~head_pc
        in
        let graph ~privatized ~reductions =
          Parsim.Task_graph.collect ~fuel ~privatized ~reductions prog ~head_pc
        in
        let naive_g = graph ~privatized:[] ~reductions:[] in
        let legal_g = graph ~privatized:proven_priv ~reductions:proven_red in
        let speedups g =
          List.map
            (fun cores ->
              let config =
                {
                  Parsim.Scheduler.cores;
                  spawn_overhead =
                    Option.value
                      ~default:
                        Parsim.Scheduler.default_config
                          .Parsim.Scheduler.spawn_overhead
                      site.W.spawn_overhead;
                  join_overhead =
                    Parsim.Scheduler.default_config
                      .Parsim.Scheduler.join_overhead;
                }
              in
              (Parsim.Scheduler.simulate ~config g).Parsim.Scheduler.speedup)
            cores_list
        in
        let naive = speedups naive_g and legal = speedups legal_g in
        let improved = List.exists2 (fun n l -> l > n) naive legal in
        (name, site.W.site_name, proven_priv, proven_red, naive, legal,
         improved))
      rows
  in
  Printf.printf "%-10s %-40s | %4s %4s | %24s | %24s\n" "workload" "site"
    "priv" "red" "blocking 16/64/256" "proven-legal 16/64/256";
  Printf.printf "%s\n" (String.make 120 '-');
  List.iter
    (fun (name, site_name, privs, reds, naive, legal, improved) ->
      let trio l =
        String.concat "/" (List.map (Printf.sprintf "%.2f") l)
      in
      Printf.printf "%-10s %-40s | %4d %4d | %24s | %24s%s\n" name
        (if String.length site_name > 40 then String.sub site_name 0 40
         else site_name)
        (List.length privs) (List.length reds) (trio naive) (trio legal)
        (if improved then "  <- proofs unlock speedup" else ""))
    results;
  let improved_names =
    List.filter_map
      (fun (name, _, _, _, _, _, improved) -> if improved then Some name else None)
      results
    |> List.sort_uniq compare
  in
  Printf.printf
    "\n%d of %d sites improve with proven-removable edges only (%s).\n"
    (List.length
       (List.filter (fun (_, _, _, _, _, _, i) -> i) results))
    (List.length results)
    (String.concat ", " improved_names);
  let oc = open_out "BENCH_9.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "transform legality: scheduling with only proven-removable edges dropped",
  "cores": [%s],
  "sites": [
%s
  ],
  "workloads_improved": [%s]
}
|}
    (String.concat ", " (List.map string_of_int cores_list))
    (String.concat ",\n"
       (List.map
          (fun (name, site_name, privs, reds, naive, legal, improved) ->
            let trio l =
              String.concat ", " (List.map (Printf.sprintf "%.3f") l)
            in
            Printf.sprintf
              "    {\"workload\": %S, \"site\": %S, \"proven_privatizable\": \
               %d, \"proven_reductions\": %d,\n\
              \     \"speedup_all_edges_blocking\": [%s], \
               \"speedup_proven_legal\": [%s], \"improved\": %b}"
              name site_name (List.length privs) (List.length reds)
              (trio naive) (trio legal) improved)
          results))
    (String.concat ", "
       (List.map (Printf.sprintf "%S") improved_names));
  close_out oc;
  print_endline "wrote BENCH_9.json"

(* --- static race detection: verdicts, cost, and the gated speedup ---------------- *)

(* The race detector is the gatekeeper between profile advice and an
   actual spawn. Three figures, per registry workload: what the
   detector says (status counts over the program's constructs), what it
   costs (wall time to build the analysis and classify every
   construct), and what the gate changes — for every loop
   parallelization site, the 64-core proven-legal speedup when edge
   dropping is conditioned on a race-free verdict (a racy construct
   schedules with every edge intact) next to the ungated figure. *)
let race_bench () =
  header "Static race detection — verdicts, cost, gated speedup";
  let cores = 64 in
  let results =
    List.map
      (fun (w : W.t) ->
        let prog = W.compile w ~scale:w.W.default_scale in
        let t0 = Unix.gettimeofday () in
        let dep = Static.Depend.analyze prog in
        let race = Static.Depend.race dep in
        let free = ref 0 and racy = ref 0 and unknown = ref 0 in
        Array.iter
          (fun (c : Vm.Program.construct_info) ->
            match Static.Race.status race ~cid:c.Vm.Program.cid with
            | Some Static.Race.Status.Race_free -> incr free
            | Some Static.Race.Status.Racy -> incr racy
            | Some Static.Race.Status.Unknown -> incr unknown
            | None -> ())
          prog.Vm.Program.constructs;
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let legality = Static.Depend.legality dep in
        let sites =
          List.filter_map
            (fun (site : W.site) ->
              let head_pc = site.W.locate prog in
              match Vm.Program.construct_at prog head_pc with
              | Some c when c.Vm.Program.kind = Vm.Program.CLoop ->
                  Some (site, head_pc, c.Vm.Program.cid)
              | _ -> None)
            w.W.sites
          |> List.fold_left
               (fun acc ((_, head_pc, _) as row) ->
                 if List.exists (fun (_, h, _) -> h = head_pc) acc then acc
                 else row :: acc)
               []
          |> List.rev
          |> List.map (fun ((site : W.site), head_pc, cid) ->
                 let status =
                   match Static.Race.status race ~cid with
                   | Some s -> Static.Race.Status.to_string s
                   | None -> "none"
                 in
                 let ungated =
                   Parsim.Speedup.analyze ~fuel ~cores ~legality prog ~head_pc
                 in
                 let gated =
                   Parsim.Speedup.analyze ~fuel ~cores ~legality ~race prog
                     ~head_pc
                 in
                 ( site.W.site_name,
                   status,
                   ungated.Parsim.Speedup.speedup,
                   gated.Parsim.Speedup.speedup,
                   gated.Parsim.Speedup.race_refusal <> None ))
        in
        (w.W.name, wall_ms, !free, !racy, !unknown, sites))
      Registry.all
  in
  Printf.printf "%-10s %8s | %5s %5s %8s\n" "workload" "wall ms" "free"
    "racy" "unknown";
  Printf.printf "%s\n" (String.make 48 '-');
  List.iter
    (fun (name, wall_ms, free, racy, unknown, _) ->
      Printf.printf "%-10s %8.1f | %5d %5d %8d\n" name wall_ms free racy
        unknown)
    results;
  Printf.printf "\n%-10s %-40s %-10s | %10s %10s\n" "workload" "site"
    "status" "ungated" "gated";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun (name, _, _, _, _, sites) ->
      List.iter
        (fun (site_name, status, ungated, gated, refused) ->
          Printf.printf "%-10s %-40s %-10s | %10.2f %10.2f%s\n" name
            (if String.length site_name > 40 then String.sub site_name 0 40
             else site_name)
            status ungated gated
            (if refused then "  <- racy: no edges dropped" else ""))
        sites)
    results;
  let oc = open_out "BENCH_10.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "static race detection: verdicts, analysis cost, race-gated scheduling",
  "cores": %d,
  "workloads": [
%s
  ]
}
|}
    cores
    (String.concat ",\n"
       (List.map
          (fun (name, wall_ms, free, racy, unknown, sites) ->
            Printf.sprintf
              "    {\"workload\": %S, \"detector_wall_ms\": %.2f, \
               \"race_free\": %d, \"racy\": %d, \"unknown\": %d,\n\
              \     \"sites\": [%s]}"
              name wall_ms free racy unknown
              (String.concat ", "
                 (List.map
                    (fun (site_name, status, ungated, gated, refused) ->
                      Printf.sprintf
                        "{\"site\": %S, \"status\": %S, \
                         \"speedup_ungated\": %.3f, \
                         \"speedup_race_gated\": %.3f, \"refused\": %b}"
                        site_name status ungated gated refused)
                    sites)))
          results));
  close_out oc;
  print_endline "wrote BENCH_10.json"

(* --- main ------------------------------------------------------------------------ *)

let sections =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table3", table3);
    ("fig6", fig6);
    ("table4", table4);
    ("table5", table5);
    ("baseline", baseline);
    ("explore", explore_bench);
    ("micro", micro);
    ("ablation", ablation);
    ("perf", perf);
    ("register", register_bench);
    ("hookfloor", hookfloor_bench);
    ("static", static_bench);
    ("distance", distance_bench);
    ("service", service_bench);
    ("legality", legality_bench);
    ("race", race_bench);
  ]

let () =
  (* -j N sets the worker-domain count for the perf section. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest ->
        perf_jobs := int_of_string n;
        parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let chosen = if args = [] then List.map fst sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %s (have: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    chosen
