(* The alchemist command-line tool.

   Sources are given either as a path to a Mini-C file or as
   "workload:NAME[:SCALE]" to use a bundled benchmark (see
   [alchemist workloads]). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program ?(fold = false) ?(warn = false) spec =
  let compile src =
    let ast = Minic.Frontend.load src in
    if warn then
      List.iter
        (fun w -> Format.eprintf "%a@." Minic.Diag.pp_warning w)
        (Minic.Lint.program ast);
    let ast = if fold then Minic.Fold.program ast else ast in
    Vm.Compile.compile ast
  in
  match String.split_on_char ':' spec with
  | [ "workload"; name ] ->
      let w = Workloads.Registry.find name in
      compile
        (w.Workloads.Workload.source ~scale:w.Workloads.Workload.default_scale)
  | [ "workload"; name; scale ] ->
      let w = Workloads.Registry.find name in
      compile (w.Workloads.Workload.source ~scale:(int_of_string scale))
  | _ -> compile (read_file spec)

let fold_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "fold" ]
        ~doc:"Constant-fold and prune dead branches before compiling \
              (models an optimized build).")

let warn_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "warn" ]
        ~doc:"Print frontend lints (unused variables, dead stores) to \
              stderr before running.")

let static_prune_arg =
  Cmdliner.Arg.(
    value & opt bool true
    & info [ "static-prune" ] ~docv:"BOOL"
        ~doc:"Skip shadow instrumentation on memory events the static \
              dependence analysis proves unable to affect the profile \
              (default on; the profile is byte-identical either way).")

let legality_arg =
  Cmdliner.Arg.(
    value & opt bool true
    & info [ "legality" ] ~docv:"BOOL"
        ~doc:"Classify every recorded edge with the transform-legality \
              engine and store the verdicts in the saved profile \
              (default on; with $(b,--legality=false) the profile \
              carries no legality block and serializes as a version-3 \
              file).")

let race_arg =
  Cmdliner.Arg.(
    value & opt bool true
    & info [ "race" ] ~docv:"BOOL"
        ~doc:"Run the static race detector over every recorded construct \
              and store the statuses in the saved profile (default on; \
              with $(b,--race=false) the profile carries no race block \
              and serializes as a version-4-or-lower file).")

let handle_errors f =
  match f () with
  | () -> 0
  | exception Minic.Diag.Error (msg, loc) ->
      Printf.eprintf "error at %s: %s\n" (Minic.Srcloc.to_string loc) msg;
      1
  | exception Vm.Machine.Trap (msg, pc) ->
      Printf.eprintf "runtime trap at pc %d: %s\n" pc msg;
      1
  | exception Not_found ->
      Printf.eprintf "unknown workload (try: alchemist workloads)\n";
      1
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

open Cmdliner

let src_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SRC" ~doc:"Mini-C file, or workload:NAME[:SCALE].")

let fuel_arg =
  Arg.(
    value
    & opt int 2_000_000_000
    & info [ "fuel" ] ~doc:"Instruction budget before trapping.")

let regalloc_arg =
  Arg.(
    value & opt bool true
    & info [ "regalloc" ] ~docv:"BOOL"
        ~doc:"Run the register engine's graph-coloring allocator (default \
              on). Only meaningful with $(b,--engine=register); the profile \
              is byte-identical either way.")

let ring_arg =
  Arg.(
    value & opt bool true
    & info [ "ring" ] ~docv:"BOOL"
        ~doc:"Deliver hook events through the register engine's batched \
              event ring (default on). Only meaningful with \
              $(b,--engine=register); the profile is byte-identical either \
              way.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("threaded", Vm.Machine.Threaded); ("switch", Vm.Machine.Switch);
             ("register", Vm.Machine.Register);
           ])
        Vm.Machine.Threaded
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"VM execution engine: $(b,threaded) (closure-threaded with               superinstruction fusion, the default), $(b,switch) (the               reference interpreter), or $(b,register) (stack bytecode               compiled to an allocated register IR). All three produce               identical results and profiles.")

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let run spec fuel fold warn engine =
    handle_errors (fun () ->
        let prog = load_program ~fold ~warn spec in
        let r = Ir.Engine.run ~engine ~fuel prog in
        List.iter (fun v -> Printf.printf "%d\n" v) r.Vm.Machine.output;
        Printf.printf "exit=%d instructions=%d\n" r.Vm.Machine.exit_value
          r.Vm.Machine.instructions)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Mini-C program on the VM.")
    Term.(const run $ src_arg $ fuel_arg $ fold_arg $ warn_arg $ engine_arg)

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Constructs to list.")
  in
  let edges =
    Arg.(value & opt int 8 & info [ "edges" ] ~doc:"Edges per construct.")
  in
  let kinds =
    Arg.(
      value
      & opt (enum [ ("raw", `Raw); ("warwaw", `WarWaw); ("all", `All) ]) `Raw
      & info [ "kinds" ] ~doc:"Edge kinds: raw (Fig. 2), warwaw (Fig. 3), all.")
  in
  let trace_locals =
    Arg.(
      value & flag
      & info [ "trace-locals" ]
          ~doc:"Also track scalar locals as memory (models -O0 binaries).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~doc:"Also write the profile to this file.")
  in
  let telemetry =
    (* --telemetry prints the text rendering; --telemetry=json the JSON one *)
    Arg.(
      value
      & opt ~vopt:(Some `Text)
          (some (enum [ ("text", `Text); ("json", `Json) ]))
          None
      & info [ "telemetry" ] ~docv:"FORMAT"
          ~doc:"Print internal metrics (VM, shadow memory, construct pool, \
                profiler) after the report, as $(b,text) (default) or \
                $(b,json).")
  in
  let profile spec fuel top edges kinds trace_locals save telemetry fold warn
      static_prune legality race engine regalloc ring =
    handle_errors (fun () ->
        let prog = load_program ~fold ~warn spec in
        let r =
          Alchemist.Profiler.run ~engine ~regalloc ~ring ~fuel ~trace_locals
            ~static_prune ~legality ~race prog
        in
        Option.iter
          (fun path -> Alchemist.Profile_io.save r.Alchemist.Profiler.profile path)
          save;
        let kinds =
          match kinds with
          | `Raw -> [ Shadow.Dependence.Raw ]
          | `WarWaw -> [ Shadow.Dependence.War; Shadow.Dependence.Waw ]
          | `All ->
              [ Shadow.Dependence.Raw; Shadow.Dependence.War; Shadow.Dependence.Waw ]
        in
        print_string
          (Alchemist.Report.render ~top ~max_edges:edges ~kinds
             r.Alchemist.Profiler.profile);
        let s = r.Alchemist.Profiler.stats in
        Printf.printf
          "\n%d instructions, %d static / %d dynamic constructs, %d \
           dependence events, pool %d nodes (%d reused)\n"
          s.Alchemist.Profiler.instructions
          s.Alchemist.Profiler.static_constructs
          s.Alchemist.Profiler.dynamic_constructs
          s.Alchemist.Profiler.deps_detected s.Alchemist.Profiler.pool_allocated
          s.Alchemist.Profiler.pool_reused;
        if s.Alchemist.Profiler.event_pcs > 0 then
          Printf.printf "static analysis: %d of %d event pcs pruned%s\n"
            s.Alchemist.Profiler.pruned_pcs s.Alchemist.Profiler.event_pcs
            (if static_prune then "" else " (mask not applied)");
        match telemetry with
        | None -> ()
        | Some fmt ->
            let snap = Alchemist.Profiler.telemetry r in
            print_newline ();
            print_string
              (match fmt with
              | `Text -> Obs.render_text snap
              | `Json -> Obs.render_json snap ^ "\n"))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile dependence distances (Fig. 2/3-style report).")
    Term.(
      const profile $ src_arg $ fuel_arg $ top $ edges $ kinds $ trace_locals
      $ save $ telemetry $ fold_arg $ warn_arg $ static_prune_arg
      $ legality_arg $ race_arg $ engine_arg $ regalloc_arg $ ring_arg)

(* --- rank ---------------------------------------------------------------- *)

let rank_cmd =
  let top = Arg.(value & opt int 15 & info [ "top" ] ~doc:"Entries to list.") in
  let rank spec fuel top =
    handle_errors (fun () ->
        let prog = load_program spec in
        let r = Alchemist.Profiler.run ~fuel prog in
        let entries = Alchemist.Ranking.rank r.Alchemist.Profiler.profile in
        List.iteri
          (fun i e ->
            if i < top then
              Format.printf "%2d. %a@." (i + 1) Alchemist.Ranking.pp_entry e)
          entries)
  in
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank parallelization candidates by size/violations.")
    Term.(const rank $ src_arg $ fuel_arg $ top)

(* --- simulate ------------------------------------------------------------ *)

let simulate_cmd =
  let loop_line =
    Arg.(
      value
      & opt (some int) None
      & info [ "loop-line" ] ~doc:"Parallelize the loop headed at this line.")
  in
  let proc =
    Arg.(
      value
      & opt (some string) None
      & info [ "proc" ] ~doc:"Parallelize calls to this procedure.")
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Worker threads.")
  in
  let privatize =
    Arg.(
      value
      & opt (list string) []
      & info [ "privatize" ] ~doc:"Globals given thread-local copies.")
  in
  let reduce =
    Arg.(
      value
      & opt (list string) []
      & info [ "reduce" ] ~doc:"Globals rewritten as reductions.")
  in
  let gantt =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Also draw the simulated schedule as ASCII.")
  in
  let simulate spec fuel loop_line proc cores privatize reduce gantt =
    handle_errors (fun () ->
        let prog = load_program spec in
        let head_pc =
          match (loop_line, proc) with
          | Some line, None -> Parsim.Speedup.loop_head_at_line prog line
          | None, Some name -> Parsim.Speedup.proc_head prog name
          | _ -> invalid_arg "pass exactly one of --loop-line or --proc"
        in
        let r =
          Parsim.Speedup.analyze ~fuel ~cores ~privatize ~reduce prog ~head_pc
        in
        Format.printf "%a@." Parsim.Speedup.pp_report r;
        if gantt then begin
          let privatized = Parsim.Transform.privatize_globals prog privatize in
          let reductions = Parsim.Transform.privatize_globals prog reduce in
          let g =
            Parsim.Task_graph.collect ~fuel ~privatized ~reductions prog ~head_pc
          in
          let s =
            Parsim.Scheduler.simulate
              ~config:{ Parsim.Scheduler.default_config with cores }
              g
          in
          print_string (Parsim.Gantt.render g s)
        end)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate future-style parallel execution of one construct.")
    Term.(
      const simulate $ src_arg $ fuel_arg $ loop_line $ proc $ cores $ privatize
      $ reduce $ gantt)

(* --- advise --------------------------------------------------------------- *)

let advise_cmd =
  let loop_line =
    Arg.(
      value
      & opt (some int) None
      & info [ "loop-line" ] ~doc:"Advise on the loop headed at this line.")
  in
  let proc =
    Arg.(
      value
      & opt (some string) None
      & info [ "proc" ] ~doc:"Advise on this procedure.")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~doc:"Without --loop-line/--proc: advise on the top N \
                             ranked constructs.")
  in
  let advise spec fuel loop_line proc top =
    handle_errors (fun () ->
        let prog = load_program spec in
        let r = Alchemist.Profiler.run ~fuel prog in
        let p = r.Alchemist.Profiler.profile in
        let advise_cid cid =
          Format.printf "%a@.@." Alchemist.Advice.pp
            (Alchemist.Advice.advise p ~cid)
        in
        match (loop_line, proc) with
        | Some line, None ->
            advise_cid
              (Option.get
                 (Alchemist.Profile.cid_of_head_pc p
                    (Parsim.Speedup.loop_head_at_line prog line)))
        | None, Some name ->
            advise_cid
              (Option.get
                 (Alchemist.Profile.cid_of_head_pc p
                    (Parsim.Speedup.proc_head prog name)))
        | None, None ->
            Alchemist.Ranking.rank p
            |> List.iteri (fun i (e : Alchemist.Ranking.entry) ->
                   if i < top then advise_cid e.cid)
        | Some _, Some _ -> invalid_arg "pass at most one of --loop-line/--proc")
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Suggest parallelization transforms (futures, joins, \
             privatization, hoisting).")
    Term.(const advise $ src_arg $ fuel_arg $ loop_line $ proc $ top)

(* --- report (from a saved profile) ------------------------------------------ *)

let report_cmd =
  let prof_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE" ~doc:"Saved profile (see profile --save).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Constructs to list.")
  in
  let report spec prof_file top =
    handle_errors (fun () ->
        let prog = load_program spec in
        match Alchemist.Profile_io.load prog prof_file with
        | Error msg -> invalid_arg msg
        | Ok p ->
            print_string (Alchemist.Report.render ~top p);
            List.iteri
              (fun i (e : Alchemist.Ranking.entry) ->
                if i < top then
                  Format.printf "%2d. %a@." (i + 1) Alchemist.Ranking.pp_entry e)
              (Alchemist.Ranking.rank p))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render reports from a previously saved profile (offline use).")
    Term.(const report $ src_arg $ prof_file $ top)

(* --- explore ---------------------------------------------------------------- *)

let explore_cmd =
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Worker threads.")
  in
  let top =
    Arg.(value & opt int 8 & info [ "top" ] ~doc:"Candidates to examine.")
  in
  let explore spec fuel cores top =
    handle_errors (fun () ->
        let prog = load_program spec in
        let t = Driver.Explore.explore ~fuel ~cores ~top prog in
        Format.printf "%a@." Driver.Explore.pp t;
        match Driver.Explore.best t with
        | Some c ->
            let r = Option.get c.Driver.Explore.simulated in
            Format.printf "@.best: %s at %.2fx on %d cores@."
              c.Driver.Explore.entry.Alchemist.Ranking.name
              r.Parsim.Speedup.speedup cores
        | None -> Format.printf "@.no parallelizable candidate found@.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Full workflow: profile, rank, advise, and simulate the top \
             candidates.")
    Term.(const explore $ src_arg $ fuel_arg $ cores $ top)

(* --- profile-all ----------------------------------------------------------- *)

let profile_all_cmd =
  let jobs =
    Arg.(
      value
      & opt int (Driver.Parallel.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: cores - 1). 1 disables sharding.")
  in
  let test_scale =
    Arg.(
      value & flag
      & info [ "test-scale" ]
          ~doc:"Use each workload's small test scale instead of the Table \
                III default.")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-dir" ] ~docv:"DIR"
          ~doc:"Also write each profile to DIR/NAME.prof.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Add a per-shard breakdown (wall time, events, walk depth) \
                and the merged telemetry snapshot.")
  in
  let profile_all fuel jobs test_scale save_dir telemetry static_prune engine =
    handle_errors (fun () ->
        let jobs = max 1 jobs in
        let scale_of (w : Workloads.Workload.t) =
          if test_scale then w.test_scale else w.default_scale
        in
        (* A thin client of the serve pool: lend one work-stealing
           scheduler to the registry sweep so --telemetry shows the
           sched.* metrics (steals, queue depth, job latency). *)
        let sched = Driver.Scheduler.create ~workers:jobs () in
        let t0 = Unix.gettimeofday () in
        let results =
          Driver.Parallel.profile_registry ~sched ~jobs ~engine ~fuel
            ~static_prune ~scale_of ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        Driver.Scheduler.drain sched;
        let sched_snap = Driver.Scheduler.telemetry sched in
        Driver.Scheduler.shutdown sched;
        Printf.printf "%-12s %14s %12s %10s\n" "workload" "instructions"
          "dep events" "constructs";
        List.iter
          (fun ((w : Workloads.Workload.t), (r : Alchemist.Profiler.result)) ->
            let s = r.Alchemist.Profiler.stats in
            Printf.printf "%-12s %14d %12d %10d\n" w.name
              s.Alchemist.Profiler.instructions
              s.Alchemist.Profiler.deps_detected
              s.Alchemist.Profiler.dynamic_constructs;
            Option.iter
              (fun dir ->
                Alchemist.Profile_io.save r.Alchemist.Profiler.profile
                  (Filename.concat dir (w.name ^ ".prof")))
              save_dir)
          results;
        Printf.printf "\n%d workloads in %.2fs on %d domain(s), %s engine\n"
          (List.length results) wall jobs
          (Vm.Machine.engine_to_string engine);
        if telemetry then begin
          (* Per-shard: each run's registry carries its own driver.shard_wall
             timer, so the breakdown shows where the domains spent time. *)
          let snaps =
            List.map
              (fun (_, (r : Alchemist.Profiler.result)) ->
                Alchemist.Profiler.telemetry r)
              results
          in
          Printf.printf "\n%-12s %10s %12s %12s %10s\n" "shard" "wall(ms)"
            "vm instrs" "shadow evts" "max depth";
          List.iter2
            (fun ((w : Workloads.Workload.t), _) snap ->
              let wall_ns =
                Option.value ~default:0 (Obs.find_span_ns snap "driver.shard_wall")
              in
              let count name =
                Option.value ~default:0 (Obs.find_count snap name)
              in
              let depth =
                match Obs.find snap "tree.depth" with
                | Some (Obs.Level { hwm; _ }) -> hwm
                | _ -> 0
              in
              Printf.printf "%-12s %10.1f %12d %12d %10d\n" w.name
                (float_of_int wall_ns /. 1e6)
                (count "vm.instructions") (count "shadow.events") depth)
            results snaps;
          print_newline ();
          print_string (Obs.render_text (Obs.merge (Obs.merge_all snaps) sched_snap))
        end)
  in
  Cmd.v
    (Cmd.info "profile-all"
       ~doc:"Profile every bundled workload, sharded across CPU cores.")
    Term.(
      const profile_all $ fuel_arg $ jobs $ test_scale $ save_dir $ telemetry
      $ static_prune_arg $ engine_arg)

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let jobs =
    Arg.(
      value
      & opt int (Driver.Scheduler.default_workers ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains in the profiling pool (default: cores - 1).")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"After each drain, print a throughput summary (jobs/s, cache \
                hit rate, steals, queue depth, job-latency p50/p99) and the \
                full merged metric snapshot to stderr.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Back the in-memory profile cache with an on-disk store \
                (one .prof file per key; created if missing). Warm results \
                survive across serve processes.")
  in
  let cache_capacity =
    Arg.(
      value
      & opt int Driver.Cache.default_capacity
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"In-memory cache entries before LRU eviction.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a unix domain socket instead of stdin, serving \
                clients one at a time until killed. Each connection speaks \
                the same newline-delimited protocol and is drained on \
                disconnect.")
  in
  let serve jobs telemetry cache_dir cache_capacity socket =
    handle_errors (fun () ->
        let cache =
          Driver.Cache.create ~capacity:cache_capacity ?dir:cache_dir ()
        in
        let svc = Driver.Service.create ~workers:(max 1 jobs) ~cache () in
        (* Per-drain deltas for the stderr summary. *)
        let last_requests = ref 0 and last_time = ref (Unix.gettimeofday ()) in
        let drains = ref 0 in
        let drain_telemetry () =
          let snap = Driver.Service.telemetry svc in
          let count n = Option.value ~default:0 (Obs.find_count snap n) in
          let requests = count "service.requests" in
          let now = Unix.gettimeofday () in
          let batch = requests - !last_requests in
          let dt = now -. !last_time in
          incr drains;
          let hits = count "cache.hits" + count "cache.disk_hits" in
          let lookups = hits + count "cache.misses" in
          let pctl p =
            match Obs.dist_percentile_upper snap "sched.job_latency_ns" p with
            | Some ns -> Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
            | None -> "n/a"
          in
          Printf.eprintf
            "# drain %d: %d request(s) in %.3fs (%.1f jobs/s) | cache %d/%d \
             hit | steals %d | queue hwm %d | latency p50<=%s p99<=%s\n"
            !drains batch dt
            (if dt > 0. then float_of_int batch /. dt else 0.)
            hits lookups (count "sched.steals")
            (match Obs.find snap "sched.queue_depth" with
            | Some (Obs.Level { hwm; _ }) -> hwm
            | _ -> 0)
            (pctl 50) (pctl 99);
          prerr_string (Obs.render_text snap);
          flush stderr;
          last_requests := requests;
          last_time := now
        in
        let serve_channel ic oc =
          let emit r =
            output_string oc (Driver.Service.render_reply r);
            output_char oc '\n';
            flush oc
          in
          let drain_now () =
            List.iter emit (Driver.Service.drain svc);
            if telemetry then drain_telemetry ()
          in
          (try
             while true do
               let line = input_line ic in
               match Driver.Service.feed svc line with
               | `Queued ->
                   (* Stream whatever prefix of submission order has
                      already completed; stragglers follow later. *)
                   List.iter emit (Driver.Service.ready svc)
               | `Drain -> drain_now ()
               | `Skip -> ()
             done
           with End_of_file -> ());
          List.iter emit (Driver.Service.drain svc);
          if telemetry then drain_telemetry ()
        in
        (match socket with
        | None -> serve_channel stdin stdout
        | Some path ->
            if Sys.file_exists path then Sys.remove path;
            let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.bind sock (Unix.ADDR_UNIX path);
            Unix.listen sock 8;
            let rec accept_loop () =
              let fd, _ = Unix.accept sock in
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              (try serve_channel ic oc
               with Sys_error _ | Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ());
              accept_loop ()
            in
            accept_loop ());
        Driver.Service.shutdown svc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the profile registry as a service: newline-delimited \
             profiling requests on stdin (or a unix socket), replies \
             streamed back in submission order, backed by the \
             work-stealing scheduler and the content-addressed profile \
             cache."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each request line is $(b,SPEC [fuel=N] \
              [engine=switch|threaded|register] [ring=B] [regalloc=B] \
              [trace_locals=B] [prune=B] [pool_capacity=N] [scan_limit=N] \
              [save=PATH]) where SPEC is workload:NAME[:SCALE] or a Mini-C \
              file. A request whose profile-determining inputs (program \
              code, global data, fuel, trace_locals, pool) match a cached \
              run is answered from the cache without profiling — engine \
              and instrumentation knobs are not part of the key because \
              profiles are proven byte-identical across them. The bare \
              word $(b,drain) waits for all outstanding jobs; EOF drains \
              and exits. Replies: $(b,ok SEQ SPEC key=K hit|disk-hit|miss \
              bytes=N [saved=PATH]) or $(b,error SEQ SPEC: message).";
         ])
    Term.(
      const serve $ jobs $ telemetry $ cache_dir $ cache_capacity $ socket)

(* --- check ----------------------------------------------------------------- *)

let check_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Check every bundled workload instead of one SRC.")
  in
  let test_scale =
    Arg.(
      value & flag
      & info [ "test-scale" ]
          ~doc:"With --all: use each workload's small test scale.")
  in
  let src =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SRC" ~doc:"Mini-C file, or workload:NAME[:SCALE].")
  in
  let prof_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Sanitize this saved profile against SRC instead of \
                profiling in-process.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON document: per-workload pass/fail, violation \
             counts by sanitizer category, and validated-edge counts.")
  in
  (* One workload's checks; returns the number of problems found plus
     the sanitizer issues and validated-edge counts (for --json). The
     in-process variant is the full gauntlet: CFA validation,
     prune-on/off byte-identity, serialization round-trip, and the
     sanitizer over the round-tripped profile. *)
  let check_one ~quiet ~fuel name prog saved =
    let problems = ref 0 in
    let issues = ref [] in
    let distbound_edges = ref 0 in
    let legality_edges = ref 0 in
    let race_constructs = ref 0 in
    let fail fmt =
      incr problems;
      Printf.ksprintf
        (fun m -> if not quiet then Printf.printf "%s: FAIL: %s\n" name m)
        fmt
    in
    let analysis = Cfa.Analysis.analyze prog in
    List.iter
      (fun m -> fail "cfa validation: %s" m)
      (Cfa.Analysis.validate prog analysis);
    let dep = Static.Depend.analyze ~analysis prog in
    let sanitize what p =
      let found = Alchemist.Sanitize.check ~dep p in
      issues := !issues @ found;
      List.iter
        (fun i ->
          fail "%s: %s" what
            (Format.asprintf "%a" Alchemist.Sanitize.pp_issue i))
        found
    in
    (* How many recorded edges carry a proven distance lower bound or a
       transform-legality verdict (each one a dynamic-vs-static
       cross-validation the sanitizer enforced). *)
    let report_validated (p : Alchemist.Profile.t) =
      (match p.Alchemist.Profile.static_distbounds with
      | Some ((_ :: _) as l) ->
          distbound_edges := List.length l;
          if not quiet then
            Printf.printf "%s: %d edge(s) validated against static distance \
                           bounds\n"
              name (List.length l)
      | _ -> ());
      (match p.Alchemist.Profile.static_legality with
      | Some ((_ :: _) as l) ->
          legality_edges := List.length l;
          if not quiet then
            Printf.printf "%s: %d edge(s) carry transform-legality verdicts\n"
              name (List.length l)
      | _ -> ());
      match p.Alchemist.Profile.static_race with
      | Some ((_ :: _) as l) ->
          race_constructs := List.length l;
          if not quiet then
            Printf.printf
              "%s: %d construct(s) carry race-detector statuses\n" name
              (List.length l)
      | _ -> ()
    in
    (match saved with
    | Some p ->
        sanitize "saved profile" p;
        report_validated p
    | None ->
        let on =
          (Alchemist.Profiler.run ~fuel ~static_prune:true prog)
            .Alchemist.Profiler.profile
        in
        let off =
          (Alchemist.Profiler.run ~fuel ~static_prune:false prog)
            .Alchemist.Profiler.profile
        in
        let s_on = Alchemist.Profile_io.to_string on in
        let s_off = Alchemist.Profile_io.to_string off in
        if not (String.equal s_on s_off) then
          fail "prune-on and prune-off profiles differ";
        (match Alchemist.Profile_io.read prog s_on with
        | Error msg -> fail "round-trip read: %s" msg
        | Ok p2 ->
            if not (String.equal (Alchemist.Profile_io.to_string p2) s_on) then
              fail "round-trip re-serialization differs";
            sanitize "profile" p2;
            report_validated p2));
    if !problems = 0 && not quiet then Printf.printf "%s: OK\n" name;
    (name, !problems, !issues, !distbound_edges, !legality_edges,
     !race_constructs)
  in
  let render_json results =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"workloads\": [\n";
    List.iteri
      (fun i (name, problems, issues, db, leg, race) ->
        let count c =
          List.length
            (List.filter
               (fun (x : Alchemist.Sanitize.issue) -> x.category = c)
               issues)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": %S, \"pass\": %b, \"problems\": %d,\n\
             \     \"violations\": {%s},\n\
             \     \"validated_distbound_edges\": %d, \
              \"validated_legality_edges\": %d, \
              \"validated_race_constructs\": %d}%s\n"
             name (problems = 0) problems
             (String.concat ", "
                (List.map
                   (fun c ->
                     Printf.sprintf "%S: %d"
                       (Alchemist.Sanitize.category_to_string c)
                       (count c))
                   Alchemist.Sanitize.all_categories))
             db leg race
             (if i = List.length results - 1 then "" else ",")))
      results;
    let failures =
      List.fold_left (fun acc (_, p, _, _, _, _) -> acc + min 1 p) 0 results
    in
    Buffer.add_string buf
      (Printf.sprintf "  ],\n  \"failed_workloads\": %d\n}\n" failures);
    Buffer.contents buf
  in
  let check src all test_scale prof_file json fuel =
    handle_errors (fun () ->
        let results =
          match (all, src) with
          | true, None ->
              List.map
                (fun (w : Workloads.Workload.t) ->
                  let scale =
                    if test_scale then w.test_scale else w.default_scale
                  in
                  let prog = Workloads.Workload.compile w ~scale in
                  check_one ~quiet:json ~fuel w.name prog None)
                Workloads.Registry.all
          | false, Some spec ->
              let prog = load_program spec in
              let saved =
                Option.map
                  (fun f ->
                    match Alchemist.Profile_io.load prog f with
                    | Ok p -> p
                    | Error msg -> invalid_arg msg)
                  prof_file
              in
              [ check_one ~quiet:json ~fuel spec prog saved ]
          | _ -> invalid_arg "pass exactly one of SRC or --all"
        in
        if json then print_string (render_json results);
        let failures =
          List.fold_left (fun acc (_, p, _, _, _, _) -> acc + min 1 p) 0 results
        in
        if failures > 0 then
          invalid_arg (Printf.sprintf "%d check(s) failed" failures))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Sanitize dynamic profiles against the static dependence \
             analysis (and validate the CFA, prune byte-identity, and \
             serialization round-trip).")
    Term.(
      const check $ src $ all $ test_scale $ prof_file $ json_flag $ fuel_arg)

(* --- verify ---------------------------------------------------------------- *)

let verify_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Verify every bundled workload instead of one SRC.")
  in
  let test_scale =
    Arg.(
      value & flag
      & info [ "test-scale" ]
          ~doc:"With --all: use each workload's small test scale.")
  in
  let src =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SRC" ~doc:"Mini-C file, or workload:NAME[:SCALE].")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON document: per-workload status counts plus every \
             racy construct with its interference witnesses.")
  in
  (* One program's verification: run the static race detector over every
     spawnable construct (loops and procedures — conditionals spawn no
     concurrent units) and report the verdicts. Purely static: no
     profiling run is needed. *)
  let verify_one name prog =
    let dep = Static.Depend.analyze prog in
    let race = Static.Depend.race dep in
    let rows =
      Array.to_list prog.Vm.Program.constructs
      |> List.filter_map (fun (c : Vm.Program.construct_info) ->
             Option.map
               (fun v -> (c, v))
               (Static.Race.verdict race ~cid:c.Vm.Program.cid))
    in
    (name, rows)
  in
  let pp_witness (w : Static.Race.witness) =
    Printf.sprintf "%s pc %d (line %d) <-> pc %d (line %d) on %s"
      (Static.Race.kind_to_string w.Static.Race.kind)
      w.Static.Race.pc1 w.Static.Race.line1 w.Static.Race.pc2
      w.Static.Race.line2 w.Static.Race.cell
  in
  let render_text (name, rows) =
    Printf.printf "%s:\n" name;
    let free = ref 0 and racy = ref 0 and unknown = ref 0 in
    List.iter
      (fun ((c : Vm.Program.construct_info), v) ->
        let cname = Format.asprintf "%a" Vm.Program.pp_construct c in
        match v with
        | Static.Race.Race_free ->
            incr free;
            Printf.printf "  %s: race-free\n" cname
        | Static.Race.Unknown reason ->
            incr unknown;
            Printf.printf "  %s: unknown (%s)\n" cname reason
        | Static.Race.Racy ws ->
            incr racy;
            Printf.printf "  %s: racy (%d witness%s)\n" cname (List.length ws)
              (if List.length ws = 1 then "" else "es");
            List.iter (fun w -> Printf.printf "    %s\n" (pp_witness w)) ws)
      rows;
    Printf.printf "  summary: %d race-free, %d racy, %d unknown\n" !free !racy
      !unknown
  in
  let render_json results =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"workloads\": [\n";
    let total_racy = ref 0 in
    List.iteri
      (fun i (name, rows) ->
        let count p = List.length (List.filter (fun (_, v) -> p v) rows) in
        let free = count (fun v -> v = Static.Race.Race_free) in
        let unknown =
          count (function Static.Race.Unknown _ -> true | _ -> false)
        in
        let racy_rows =
          List.filter
            (fun (_, v) ->
              match v with Static.Race.Racy _ -> true | _ -> false)
            rows
        in
        total_racy := !total_racy + List.length racy_rows;
        let racy_json =
          String.concat ", "
            (List.map
               (fun ((c : Vm.Program.construct_info), v) ->
                 let witnesses =
                   match v with Static.Race.Racy ws -> ws | _ -> []
                 in
                 Printf.sprintf
                   "{\"cid\": %d, \"name\": %S, \"witnesses\": [%s]}"
                   c.Vm.Program.cid
                   (Format.asprintf "%a" Vm.Program.pp_construct c)
                   (String.concat ", "
                      (List.map
                         (fun (w : Static.Race.witness) ->
                           Printf.sprintf
                             "{\"kind\": %S, \"pc1\": %d, \"line1\": %d, \
                              \"pc2\": %d, \"line2\": %d, \"cell\": %S}"
                             (Static.Race.kind_to_string w.Static.Race.kind)
                             w.Static.Race.pc1 w.Static.Race.line1
                             w.Static.Race.pc2 w.Static.Race.line2
                             w.Static.Race.cell)
                         witnesses)))
               racy_rows)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": %S, \"constructs\": %d, \"race_free\": %d, \
              \"racy\": %d, \"unknown\": %d,\n\
             \     \"racy_constructs\": [%s]}%s\n"
             name (List.length rows) free (List.length racy_rows) unknown
             racy_json
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string buf
      (Printf.sprintf "  ],\n  \"total_racy\": %d\n}\n" !total_racy);
    Buffer.contents buf
  in
  let verify src all test_scale json =
    handle_errors (fun () ->
        let results =
          match (all, src) with
          | true, None ->
              List.map
                (fun (w : Workloads.Workload.t) ->
                  let scale =
                    if test_scale then w.test_scale else w.default_scale
                  in
                  verify_one w.name (Workloads.Workload.compile w ~scale))
                Workloads.Registry.all
          | false, Some spec -> [ verify_one spec (load_program spec) ]
          | _ -> invalid_arg "pass exactly one of SRC or --all"
        in
        if json then print_string (render_json results)
        else List.iter render_text results)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Statically verify profile-advised parallelizations: run the \
             race detector over every loop and procedure construct and \
             report race-free/racy/unknown verdicts with interference \
             witnesses.")
    Term.(const verify $ src $ all $ test_scale $ json_flag)

(* --- disasm / workloads --------------------------------------------------- *)

let disasm_cmd =
  let ir_arg =
    Arg.(
      value & flag
      & info [ "ir" ]
          ~doc:
            "Also show the register IR: stack bytecode on the left, the \
             graph-colored three-address code the register engine executes \
             on the right, aligned by the instruction-clock segments each \
             IR instruction owns.")
  in
  let no_regalloc_arg =
    Arg.(
      value & flag
      & info [ "no-regalloc" ]
          ~doc:
            "With $(b,--ir): print identity-mapped virtual registers \
             instead of the colored physical window slots.")
  in
  let disasm spec ir no_regalloc =
    handle_errors (fun () ->
        let prog = load_program spec in
        if ir then
          print_string (Ir.Disasm.to_string ~regalloc:(not no_regalloc) prog)
        else print_string (Vm.Disasm.to_string prog))
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Disassemble the compiled bytecode, optionally side by side with \
          the allocated register IR.")
    Term.(const disasm $ src_arg $ ir_arg $ no_regalloc_arg)

let workloads_cmd =
  let list () =
    handle_errors (fun () ->
        List.iter
          (fun (w : Workloads.Workload.t) ->
            Printf.printf "%-12s scale=%-7d %s\n" w.name w.default_scale
              w.description)
          Workloads.Registry.all)
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the bundled Table III benchmarks.")
    Term.(const list $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "alchemist" ~version:"1.0.0"
       ~doc:"Transparent dependence distance profiling (CGO 2009 reproduction).")
    [
      run_cmd;
      profile_cmd;
      rank_cmd;
      simulate_cmd;
      advise_cmd;
      explore_cmd;
      profile_all_cmd;
      serve_cmd;
      report_cmd;
      check_cmd;
      verify_cmd;
      disasm_cmd;
      workloads_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
