(* The static race detector (Static.Race) against a brute-force
   simulation of the execution its Race_free verdict licenses.

   The random property compiles single-loop programs whose body takes
   one of eight shapes over an array [a] and two global scalars [g]
   (an arbitrary cell) and [s] (a sum some shapes feed), then replays
   them two ways:

     sequential      iterations in program order, all cells shared
     licensed        iterations in a permuted order — the spawned
                     schedule the advice licenses — with the transforms
                     the legality engine actually claims applied: a
                     proven-reduction cell goes to per-thread partials
                     (dealt by schedule position, folded into the
                     initial value at the join, in either order), a
                     proven-privatizable cell gets a per-iteration
                     private copy (seeded with a poisoned sentinel so a
                     wrong write-first claim shows) whose
                     sequentially-last copy is the live-out.

   Soundness is one-sided, exactly the detector's contract: whenever
   the detector says Race_free, EVERY permutation, thread count, and
   combine order must reproduce the sequential final state (g, s, and
   the array). Racy / Unknown verdicts constrain nothing — they may be
   conservative; only a Race_free claim over a divergent execution is
   a bug.

   The handcrafted table pins each verdict path — disjoint subscripts,
   same-iteration confinement, the legality exemption for proven
   reductions and privatizable cells, the serial refutation, the
   conditional-write refutation, and both procedure-spawn poles — so a
   detector that answers Unknown everywhere cannot pass vacuously. *)

module Race = Static.Race
module Depend = Static.Depend

type shape =
  | Disjoint of int (* a[i] = i + k *)
  | SelfShift of int (* a[i] = a[i] + k    same-iteration RAW *)
  | Shifted of int (* a[i] = a[i + 1] + k  neighbouring iterations *)
  | RedSum of Minic.Ast.binop * int (* s = s OP (i + k) *)
  | PrivG of int (* g = i + k; s = s + g *)
  | SerialG of int (* s = s + g; g = i + k *)
  | CondWrite of int (* if (i > k) { g = i; } *)
  | Strided of int (* a[(i * m) & 15] = i *)

type spec = { i0 : int; step : int; trip : int; shape : shape }

let body = function
  | Disjoint k -> Printf.sprintf "a[i] = i + %d;" k
  | SelfShift k -> Printf.sprintf "a[i] = a[i] + %d;" k
  | Shifted k -> Printf.sprintf "a[i] = a[i + 1] + %d;" k
  | RedSum (op, k) ->
      Printf.sprintf "s = s %s (i + %d);" (Minic.Ast.binop_to_string op) k
  | PrivG k -> Printf.sprintf "g = i + %d; s = s + g;" k
  | SerialG k -> Printf.sprintf "s = s + g; g = i + %d;" k
  | CondWrite k -> Printf.sprintf "if (i > %d) { g = i; }" k
  | Strided m -> Printf.sprintf "a[(i * %d) & 15] = i;" m

let source sp =
  let last = sp.i0 + ((sp.trip - 1) * sp.step) in
  Printf.sprintf
    "int a[64];\n\
     int g;\n\
     int s;\n\
     int main() {\n\
    \  int i;\n\
    \  g = 3;\n\
    \  s = 0;\n\
    \  for (i = %d; i < %d; i = i + %d) {\n\
    \    %s\n\
    \  }\n\
    \  return g + s + a[0];\n\
     }\n"
    sp.i0 (last + 1) sp.step (body sp.shape)

let find_construct (prog : Vm.Program.t) kind =
  let found = ref None in
  Array.iter
    (fun (c : Vm.Program.construct_info) ->
      if c.kind = kind && !found = None then found := Some c)
    prog.constructs;
  match !found with
  | Some c -> c
  | None -> Alcotest.fail "program lacks the requested construct kind"

let loop_cid prog = (find_construct prog Vm.Program.CLoop).Vm.Program.cid

(* --- what the legality engine claims (the licensed transforms) ------- *)

type claim = Claimed_red of Minic.Ast.binop | Claimed_priv | Unclaimed

let claims_for prog (dep : Depend.t) =
  let priv = Static.Legality.privatize (Depend.legality dep) in
  let head_pc = (find_construct prog Vm.Program.CLoop).Vm.Program.head_pc in
  match Static.Privatize.loop_at_header priv ~br_pc:head_pc with
  | None -> fun _ -> Unclaimed
  | Some loop -> (
      fun cell ->
        match Static.Privatize.prove_reduction priv loop ~cell with
        | Ok op -> Claimed_red op
        | Error _ -> (
            match Static.Privatize.prove_privatizable priv loop ~cell with
            | Ok () -> Claimed_priv
            | Error _ -> Unclaimed))

let global_addr prog name =
  match Vm.Program.find_global prog name with
  | Some (base, _) -> base
  | None -> Alcotest.failf "no global %s" name

(* --- brute-force replay ---------------------------------------------- *)

let g_init = 3
let s_init = 0
let a_len = 64

let step shape ~geta ~seta ~get ~set i =
  match shape with
  | Disjoint k -> seta i (i + k)
  | SelfShift k -> seta i (geta i + k)
  | Shifted k -> seta i (geta (i + 1) + k)
  | RedSum (op, k) ->
      let v =
        match op with
        | Minic.Ast.Add -> get `S + (i + k)
        | Minic.Ast.Mul -> get `S * (i + k)
        | Minic.Ast.BitAnd -> get `S land (i + k)
        | Minic.Ast.BitOr -> get `S lor (i + k)
        | Minic.Ast.BitXor -> get `S lxor (i + k)
        | Minic.Ast.Sub -> get `S - (i + k)
        | op ->
            Alcotest.failf "unsimulated operator %s"
              (Minic.Ast.binop_to_string op)
      in
      set `S v
  | PrivG k ->
      set `G (i + k);
      set `S (get `S + get `G)
  | SerialG k ->
      set `S (get `S + get `G);
      set `G (i + k)
  | CondWrite k -> if i > k then set `G i
  | Strided m -> seta ((i * m) land 15) i

let iters sp = Array.of_list (List.init sp.trip (fun t -> sp.i0 + (t * sp.step)))

type final = { g : int; s : int; a : int array }

let simulate_seq sp =
  let g = ref g_init and s = ref s_init and a = Array.make a_len 0 in
  Array.iter
    (fun i ->
      step sp.shape ~geta:(Array.get a) ~seta:(Array.set a)
        ~get:(function `G -> !g | `S -> !s)
        ~set:(function `G -> ( := ) g | `S -> ( := ) s)
        i)
    (iters sp);
  { g = !g; s = !s; a }

let identity = function
  | Minic.Ast.Add | Minic.Ast.BitOr | Minic.Ast.BitXor -> 0
  | Minic.Ast.Mul -> 1
  | Minic.Ast.BitAnd -> -1 (* all ones *)
  | op ->
      Alcotest.failf "no identity for claimed operator %s"
        (Minic.Ast.binop_to_string op)

let apply op a b =
  match op with
  | Minic.Ast.Add -> a + b
  | Minic.Ast.Mul -> a * b
  | Minic.Ast.BitAnd -> a land b
  | Minic.Ast.BitOr -> a lor b
  | Minic.Ast.BitXor -> a lxor b
  | op ->
      Alcotest.failf "no apply for claimed operator %s"
        (Minic.Ast.binop_to_string op)

(* One licensed execution: iterations run whole, in [perm] order, dealt
   round-robin over [threads] by schedule position. Claimed cells get
   the transform the claim licenses; everything else is shared. *)
let simulate_licensed sp ~g_claim ~s_claim ~perm ~threads ~combine_rev =
  let g = ref g_init and s = ref s_init and a = Array.make a_len 0 in
  let part_g = Array.make threads 0 and part_s = Array.make threads 0 in
  (match g_claim with
  | Claimed_red op -> Array.fill part_g 0 threads (identity op)
  | _ -> ());
  (match s_claim with
  | Claimed_red op -> Array.fill part_s 0 threads (identity op)
  | _ -> ());
  (* per-iteration private copies, poisoned so a read before the
     iteration's own write stands out *)
  let priv_g = Hashtbl.create 8 and priv_s = Hashtbl.create 8 in
  let order = iters sp in
  Array.iteri
    (fun pos idx ->
      let i = order.(idx) in
      let slot = pos mod threads in
      Hashtbl.replace priv_g idx (1_000_003 * (idx + 1));
      Hashtbl.replace priv_s idx (2_000_003 * (idx + 1));
      let get = function
        | `G -> (
            match g_claim with
            | Claimed_red _ -> part_g.(slot)
            | Claimed_priv -> Hashtbl.find priv_g idx
            | Unclaimed -> !g)
        | `S -> (
            match s_claim with
            | Claimed_red _ -> part_s.(slot)
            | Claimed_priv -> Hashtbl.find priv_s idx
            | Unclaimed -> !s)
      in
      let set cell v =
        match cell with
        | `G -> (
            match g_claim with
            | Claimed_red _ -> part_g.(slot) <- v
            | Claimed_priv -> Hashtbl.replace priv_g idx v
            | Unclaimed -> g := v)
        | `S -> (
            match s_claim with
            | Claimed_red _ -> part_s.(slot) <- v
            | Claimed_priv -> Hashtbl.replace priv_s idx v
            | Unclaimed -> s := v)
      in
      step sp.shape ~geta:(Array.get a) ~seta:(Array.set a) ~get ~set i)
    perm;
  let join claim parts init touched =
    match claim with
    | Claimed_red op ->
        let parts = Array.to_list parts in
        let parts = if combine_rev then List.rev parts else parts in
        List.fold_left (apply op) init parts
    | Claimed_priv ->
        (* live-out: the sequentially-last iteration's copy *)
        if sp.trip = 0 then init else Hashtbl.find touched (sp.trip - 1)
    | Unclaimed -> init
  in
  {
    g =
      (match g_claim with
      | Unclaimed -> !g
      | _ -> join g_claim part_g g_init priv_g);
    s =
      (match s_claim with
      | Unclaimed -> !s
      | _ -> join s_claim part_s s_init priv_s);
    a;
  }

(* All permutations of 0..n-1; trip is capped at 5 so this tops out at
   120 schedules. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (( <> ) x) l)))
        l

let schedules trip =
  permutations (List.init trip Fun.id) |> List.map Array.of_list

let finals_equal x y = x.g = y.g && x.s = y.s && x.a = y.a

(* The soundness check for one program: a Race_free verdict on the loop
   quantifies over every licensed schedule. *)
let check_sound sp =
  let prog = Vm.Compile.compile_source (source sp) in
  let dep = Depend.analyze prog in
  let race = Depend.race dep in
  match Race.status race ~cid:(loop_cid prog) with
  | Some Race.Status.Racy | Some Race.Status.Unknown | None -> None
  | Some Race.Status.Race_free ->
      let g_claim = claims_for prog dep (global_addr prog "g") in
      let s_claim = claims_for prog dep (global_addr prog "s") in
      let seq = simulate_seq sp in
      let divergent = ref None in
      List.iter
        (fun perm ->
          List.iter
            (fun threads ->
              List.iter
                (fun combine_rev ->
                  if !divergent = None then
                    let got =
                      simulate_licensed sp ~g_claim ~s_claim ~perm ~threads
                        ~combine_rev
                    in
                    if not (finals_equal got seq) then
                      divergent :=
                        Some
                          (Printf.sprintf
                             "claimed race-free, but schedule [%s] on %d \
                              thread(s) gives g=%d s=%d vs sequential g=%d \
                              s=%d"
                             (String.concat ";"
                                (List.map string_of_int
                                   (Array.to_list perm)))
                             threads got.g got.s seq.g seq.s))
                [ false; true ])
            [ 1; 2; 3 ])
        (schedules sp.trip);
      !divergent

(* --- handcrafted verdict pins ----------------------------------------- *)

let status_of_src src =
  let prog = Vm.Compile.compile_source src in
  let dep = Depend.analyze prog in
  (prog, dep, Race.status (Depend.race dep) ~cid:(loop_cid prog))

let show_status = function
  | Some s -> Race.Status.to_string s
  | None -> "none"

let test_handcrafted () =
  List.iter
    (fun (name, shape, expected) ->
      let sp = { i0 = 0; step = 1; trip = 6; shape } in
      let _, _, st = status_of_src (source sp) in
      Alcotest.(check string)
        name
        (Race.Status.to_string expected)
        (show_status st))
    [
      ("disjoint subscripts", Disjoint 1, Race.Status.Race_free);
      ("same-iteration confinement", SelfShift 2, Race.Status.Race_free);
      ("neighbouring iterations conflict", Shifted 1, Race.Status.Racy);
      ("proven reduction is exempt", RedSum (Minic.Ast.Add, 1),
       Race.Status.Race_free);
      ("proven privatizable is exempt", PrivG 1, Race.Status.Race_free);
      ("read-old-value serializes", SerialG 1, Race.Status.Racy);
      ("conditional write races", CondWrite 2, Race.Status.Racy);
      ("non-associative fold races", RedSum (Minic.Ast.Sub, 1),
       Race.Status.Racy);
    ]

(* A Racy loop's evidence: an ordered, capped, named witness list. *)
let test_witness_shape () =
  let sp = { i0 = 0; step = 1; trip = 6; shape = Shifted 1 } in
  let prog, dep, _ = status_of_src (source sp) in
  match Race.verdict (Depend.race dep) ~cid:(loop_cid prog) with
  | Some (Race.Racy (w :: _ as ws)) ->
      Alcotest.(check bool) "witnesses capped" true (List.length ws <= 16);
      Alcotest.(check bool) "pcs ordered" true (w.Race.pc1 <= w.Race.pc2);
      Alcotest.(check bool) "lines resolved" true
        (w.Race.line1 > 0 && w.Race.line2 > 0);
      Alcotest.(check bool) "cell names the array" true
        (Testutil.contains w.Race.cell "a");
      Alcotest.(check bool) "kind tag well-formed" true
        (List.mem
           (Race.kind_to_string w.Race.kind)
           [ "RAW"; "WAR"; "WAW" ])
  | _ -> Alcotest.fail "expected a Racy verdict with witnesses"

(* Procedure spawns: a procedure that runs once cannot race with
   itself; one called per iteration with an unprotected global write
   must be Racy. *)
let test_proc_poles () =
  let once =
    {|int g;
      void f() { g = g + 1; }
      int main() { f(); return g; }|}
  in
  let prog = Vm.Compile.compile_source once in
  let dep = Depend.analyze prog in
  let fcid =
    let found = ref None in
    Array.iter
      (fun (c : Vm.Program.construct_info) ->
        if c.kind = Vm.Program.CProc && c.cname = "f" then found := Some c.cid)
      prog.Vm.Program.constructs;
    Option.get !found
  in
  Alcotest.(check string) "called-once proc is race-free" "race-free"
    (show_status (Race.status (Depend.race dep) ~cid:fcid));
  let many =
    {|int g;
      void f(int i) { g = g + i; }
      int main() {
        int i;
        for (i = 0; i < 8; i = i + 1) f(i);
        return g;
      }|}
  in
  let prog = Vm.Compile.compile_source many in
  let dep = Depend.analyze prog in
  let fcid =
    let found = ref None in
    Array.iter
      (fun (c : Vm.Program.construct_info) ->
        if c.kind = Vm.Program.CProc && c.cname = "f" then found := Some c.cid)
      prog.Vm.Program.constructs;
    Option.get !found
  in
  Alcotest.(check string) "repeated proc write races" "racy"
    (show_status (Race.status (Depend.race dep) ~cid:fcid))

(* Conditionals carry no verdict — they have no concurrent units. *)
let test_cond_no_verdict () =
  let sp = { i0 = 0; step = 1; trip = 6; shape = CondWrite 2 } in
  let prog, dep, _ = status_of_src (source sp) in
  let ccid = (find_construct prog Vm.Program.CCond).Vm.Program.cid in
  Alcotest.(check bool) "no verdict on a conditional" true
    (Race.verdict (Depend.race dep) ~cid:ccid = None)

(* --- the random differential ------------------------------------------ *)

let gen_spec =
  QCheck.Gen.(
    let op_gen =
      oneofl
        [ Minic.Ast.Add; Minic.Ast.Mul; Minic.Ast.BitAnd; Minic.Ast.BitOr;
          Minic.Ast.BitXor; Minic.Ast.Sub ]
    in
    let shape_gen =
      frequency
        [
          (2, map (fun k -> Disjoint k) (int_range 0 4));
          (1, map (fun k -> SelfShift k) (int_range 1 4));
          (1, map (fun k -> Shifted k) (int_range 0 4));
          (3, map2 (fun op k -> RedSum (op, k)) op_gen (int_range 0 4));
          (2, map (fun k -> PrivG k) (int_range 0 4));
          (1, map (fun k -> SerialG k) (int_range 0 4));
          (1, map (fun k -> CondWrite k) (int_range 0 3));
          (1, map (fun m -> Strided m) (int_range 1 4));
        ]
    in
    map
      (fun ((i0, step, trip), shape) -> { i0; step; trip; shape })
      (pair (triple (int_range 0 3) (int_range 1 3) (int_range 1 5)) shape_gen))

let arb_spec = QCheck.make ~print:source gen_spec

let test_random_vs_brute_force () =
  QCheck.Test.check_exn
    (QCheck.Test.make
       ~name:"Race_free never licenses a divergent schedule" ~count:250
       arb_spec (fun sp ->
         match check_sound sp with
         | None -> true
         | Some reason ->
             QCheck.Test.fail_reportf "%s in\n%s" reason (source sp)))

let suite =
  [
    ("handcrafted verdicts", `Quick, test_handcrafted);
    ("witness shape", `Quick, test_witness_shape);
    ("procedure poles", `Quick, test_proc_poles);
    ("conditional has no verdict", `Quick, test_cond_no_verdict);
    ("random vs brute force", `Quick, test_random_vs_brute_force);
  ]
