(* Tests for profile serialization. *)

module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Pio = Alchemist.Profile_io

let sample_src =
  {|int g;
    int buf[8];
    void f(int i) { buf[i & 7] = g; g = i; }
    int main() {
      for (int i = 0; i < 25; i++) f(i);
      return g + buf[3];
    }|}

let profile_of src =
  let prog = Vm.Compile.compile_source src in
  let r = Profiler.run ~fuel:1_000_000 prog in
  (prog, r.Profiler.profile)

let profiles_equal (a : Profile.t) (b : Profile.t) =
  a.total_instructions = b.total_instructions
  && Array.for_all2
       (fun (x : Profile.construct_profile) (y : Profile.construct_profile) ->
         x.ttotal = y.ttotal && x.instances = y.instances
         && Profile.num_edges x = Profile.num_edges y
         && Profile.fold_edges x
              (fun (k : Profile.edge_key) (s : Profile.edge_stats) acc ->
                acc
                &&
                match
                  Profile.find_edge y ~head_pc:k.head_pc ~tail_pc:k.tail_pc
                    k.kind
                with
                | Some d ->
                    d.min_tdep = s.min_tdep && d.count = s.count
                    && d.tail_internal = s.tail_internal
                    && List.sort compare d.addrs = List.sort compare s.addrs
                | None -> false)
              true)
       a.by_cid b.by_cid

let test_roundtrip () =
  let prog, p = profile_of sample_src in
  let text = Pio.to_string p in
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 -> Alcotest.(check bool) "roundtrip equal" true (profiles_equal p p2)

let test_fingerprint_stable () =
  let prog1 = Vm.Compile.compile_source sample_src in
  let prog2 = Vm.Compile.compile_source sample_src in
  Alcotest.(check string) "same source same fingerprint" (Pio.fingerprint prog1)
    (Pio.fingerprint prog2);
  let prog3 = Vm.Compile.compile_source "int main() { return 7; }" in
  Alcotest.(check bool) "different source differs" true
    (Pio.fingerprint prog1 <> Pio.fingerprint prog3)

let test_rejects_wrong_program () =
  let _, p = profile_of sample_src in
  let other = Vm.Compile.compile_source "int main() { return 0; }" in
  match Pio.read other (Pio.to_string p) with
  | Error msg ->
      Alcotest.(check bool) "mentions program mismatch" true
        (Testutil.contains msg "different program")
  | Ok _ -> Alcotest.fail "expected mismatch error"

let test_rejects_garbage () =
  let prog = Vm.Compile.compile_source sample_src in
  List.iter
    (fun text ->
      match Pio.read prog text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %S" text)
    [
      "";
      "not a profile";
      "alchemist-profile 2\nfingerprint x\ntotal 1";
      Printf.sprintf
        "alchemist-profile 1\nfingerprint %s\ntotal 10\nconstruct 9999 1 1"
        (Pio.fingerprint prog);
      Printf.sprintf
        "alchemist-profile 1\nfingerprint %s\ntotal ten"
        (Pio.fingerprint prog);
    ]

(* Duplicate and malformed lines must be rejected with the 1-based line
   number of the offending input line, never silently overwritten. *)
let test_malformed_matrix () =
  let prog, p = profile_of sample_src in
  let text = Pio.to_string p in
  let lines = String.split_on_char '\n' text in
  let first_with prefix =
    List.find
      (fun l -> String.length l > 0 && String.starts_with ~prefix l)
      lines
  in
  (* duplicate a real line of each kind at the end of the file *)
  let with_extra extra = text ^ extra ^ "\n" in
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let dup_line = List.length (String.split_on_char '\n' text) in
  let expect_dup ~label ~kind_prefix =
    let msg_line = Printf.sprintf "line %d" dup_line in
    expect_error ~label ~needle:"duplicate"
      (with_extra (first_with kind_prefix));
    expect_error ~label:(label ^ " line number") ~needle:msg_line
      (with_extra (first_with kind_prefix))
  in
  expect_dup ~label:"duplicate construct" ~kind_prefix:"construct ";
  expect_dup ~label:"duplicate edge" ~kind_prefix:"edge ";
  expect_dup ~label:"duplicate parent" ~kind_prefix:"parent ";
  (* truncation *)
  expect_error ~label:"empty" ~needle:"truncated" "";
  expect_error ~label:"header only" ~needle:"truncated" "alchemist-profile 1\n";
  (* bad kind tag: corrupt the first edge line *)
  let edge = first_with "edge " in
  let bad_edge =
    String.concat " "
      (List.mapi
         (fun i f -> if i = 4 then "RAR" else f)
         (String.split_on_char ' ' edge))
  in
  expect_error ~label:"bad kind tag" ~needle:"RAR"
    (String.concat "\n"
       (List.map (fun l -> if l = edge then bad_edge else l) lines));
  (* malformed lines still carry their line number *)
  expect_error ~label:"junk line" ~needle:"malformed"
    (with_extra "frobnicate 1 2 3");
  expect_error ~label:"junk line number"
    ~needle:(Printf.sprintf "line %d" dup_line)
    (with_extra "frobnicate 1 2 3");
  (* non-integer field *)
  expect_error ~label:"bad int" ~needle:"not an integer"
    (with_extra "construct 0 xyz 1")

let test_save_load_file () =
  let prog, p = profile_of sample_src in
  let path = Filename.temp_file "alchemist" ".prof" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pio.save p path;
      match Pio.load prog path with
      | Ok p2 -> Alcotest.(check bool) "file roundtrip" true (profiles_equal p p2)
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_loaded_profile_usable () =
  (* Reports, ranking, advice all work on a deserialized profile. *)
  let prog, p = profile_of sample_src in
  let p2 = Result.get_ok (Pio.read prog (Pio.to_string p)) in
  let r1 = Alchemist.Report.render p and r2 = Alchemist.Report.render p2 in
  Alcotest.(check string) "identical report" r1 r2;
  let e1 = Alchemist.Ranking.rank p and e2 = Alchemist.Ranking.rank p2 in
  Alcotest.(check int) "same ranking size" (List.length e1) (List.length e2);
  List.iter2
    (fun (a : Alchemist.Ranking.entry) (b : Alchemist.Ranking.entry) ->
      Alcotest.(check string) "same order" a.name b.name)
    e1 e2

let test_merge_after_load () =
  (* Two runs saved and reloaded merge like live profiles. *)
  let prog = Vm.Compile.compile_source sample_src in
  let r1 = Profiler.run ~fuel:1_000_000 prog in
  let r2 = Profiler.run ~fuel:1_000_000 prog in
  let p1 = Result.get_ok (Pio.read prog (Pio.to_string r1.Profiler.profile)) in
  let p2 = Result.get_ok (Pio.read prog (Pio.to_string r2.Profiler.profile)) in
  let m = Profile.merge p1 p2 in
  let live = Profile.merge r1.Profiler.profile r2.Profiler.profile in
  Alcotest.(check bool) "merge equal" true (profiles_equal m live)

(* The paper's caveat: "the completeness of the dependencies identified by
   Alchemist is a function of the test inputs used to run the profiler."
   Input lives in initialized global data, so two inputs share one program
   (identical code, different global_inits) and their profiles merge. *)
let input_src mode =
  Printf.sprintf
    {|int mode = %d;
      int acc;
      int out[32];
      int step(int i) {
        int s = 0;
        for (int k = 0; k < 30; k++) s += i + k;
        if (mode > 0) {
          acc += s;     // only exercised by inputs with mode set
        }
        out[i & 31] = s;
        return s;
      }
      int main() {
        for (int i = 0; i < 12; i++) step(i);
        return acc;
      }|}
    mode

let test_inputs_extend_profile () =
  let prog0 = Vm.Compile.compile_source (input_src 0) in
  let prog1 = Vm.Compile.compile_source (input_src 1) in
  (* same code, different data: profiles are mergeable *)
  Alcotest.(check bool) "same code" true
    (prog0.Vm.Program.code = prog1.Vm.Program.code);
  Alcotest.(check string) "same fingerprint" (Pio.fingerprint prog0)
    (Pio.fingerprint prog1);
  let p0 = (Profiler.run ~fuel:1_000_000 prog0).Profiler.profile in
  let p1 = (Profiler.run ~fuel:1_000_000 prog1).Profiler.profile in
  let edges p =
    Array.fold_left
      (fun acc (cp : Profile.construct_profile) -> acc + Profile.num_edges cp)
      0 p.Profile.by_cid
  in
  Alcotest.(check bool)
    (Printf.sprintf "mode=1 exercises more deps (%d vs %d)" (edges p1) (edges p0))
    true
    (edges p1 > edges p0);
  let merged = Profile.merge p0 p1 in
  Alcotest.(check int) "merged keeps the union" (edges p1) (edges merged);
  Alcotest.(check bool) "merged counts both runs" true
    (merged.Profile.total_instructions
    = p0.Profile.total_instructions + p1.Profile.total_instructions)

(* --- version-2 static-verdict lines ------------------------------- *)

let has_verdict_line text =
  List.exists
    (String.starts_with ~prefix:"verdict ")
    (String.split_on_char '\n' text)

let test_v2_roundtrip () =
  let prog, p = profile_of sample_src in
  (* the default profiler attaches static verdicts *)
  Alcotest.(check bool) "profile carries verdicts" true
    (p.Profile.static_verdicts <> None);
  (* strip legality and race blocks: this test exercises the version-2
     path *)
  p.Profile.static_legality <- None;
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-2 header" true
    (String.starts_with ~prefix:"alchemist-profile 2\n" text);
  Alcotest.(check bool) "has verdict lines" true (has_verdict_line text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check string) "byte-identical reserialization" text
        (Pio.to_string p2);
      Alcotest.(check bool) "verdict list preserved" true
        (p.Profile.static_verdicts = p2.Profile.static_verdicts)

let test_v1_still_loads () =
  let prog, p = profile_of sample_src in
  (* A profile with no static blocks at all serializes to the exact
     version-1 format. *)
  p.Profile.static_verdicts <- None;
  p.Profile.static_legality <- None;
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-1 header" true
    (String.starts_with ~prefix:"alchemist-profile 1\n" text);
  Alcotest.(check bool) "no verdict lines" false (has_verdict_line text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "v1 read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check bool) "no verdicts after load" true
        (p2.Profile.static_verdicts = None);
      Alcotest.(check bool) "payload equal" true (profiles_equal p p2)

let test_v2_zero_verdicts () =
  let prog, p = profile_of sample_src in
  p.Profile.static_verdicts <- Some [];
  p.Profile.static_legality <- None;
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-2 header" true
    (String.starts_with ~prefix:"alchemist-profile 2\n" text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check bool) "empty verdict list survives" true
        (p2.Profile.static_verdicts = Some [])

let test_verdict_malformed_matrix () =
  let prog, p = profile_of sample_src in
  (* keep the file at version 2 so the version-gate case below applies *)
  p.Profile.static_legality <- None;
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let with_extra extra = text ^ extra ^ "\n" in
  let extra_line = List.length (String.split_on_char '\n' text) in
  (* unknown verdict tag *)
  expect_error ~label:"bad verdict tag" ~needle:"unknown static verdict"
    (with_extra "verdict 3 5 RAW bogus");
  (* unknown kind tag *)
  expect_error ~label:"bad kind in verdict" ~needle:"RAR"
    (with_extra "verdict 3 5 RAR must-indep");
  (* negative pc *)
  expect_error ~label:"negative pc" ~needle:"negative pc"
    (with_extra "verdict -1 5 RAW must-indep");
  (* wrong arity falls through to the malformed-line case *)
  expect_error ~label:"verdict arity" ~needle:"malformed"
    (with_extra "verdict 3 5 RAW");
  (* duplicate verdict carries the offending line number *)
  let first_verdict =
    List.find
      (String.starts_with ~prefix:"verdict ")
      (String.split_on_char '\n' text)
  in
  expect_error ~label:"duplicate verdict" ~needle:"duplicate verdict"
    (with_extra first_verdict);
  expect_error ~label:"duplicate verdict line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra first_verdict);
  (* verdict line inside a version-1 body *)
  p.Profile.static_verdicts <- None;
  p.Profile.static_legality <- None;
  let v1 = Pio.to_string p in
  expect_error ~label:"verdict in v1" ~needle:"version-1"
    (v1 ^ first_verdict ^ "\n")

(* --- version-3 distance-bound lines -------------------------------- *)

(* A single-entry loop with a strong-SIV pair three iterations apart:
   the write A[i+3] is read back by A[i] three iterations later, so the
   profile records the RAW edge and the static layer proves (and the
   file persists) its distance bound. *)
let dist_src =
  {|int A[64];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 20; i = i + 1) {
    A[i + 3] = A[i] + 1;
    s = s + A[i + 3];
  }
  return s;
}|}

let has_distbound_line text =
  List.exists
    (String.starts_with ~prefix:"distbound ")
    (String.split_on_char '\n' text)

let test_v3_roundtrip () =
  let prog, p = profile_of dist_src in
  Alcotest.(check bool) "profile carries distance bounds" true
    (match p.Profile.static_distbounds with Some (_ :: _) -> true | _ -> false);
  (* strip race statuses: this test exercises the version-3 path *)
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-3 header" true
    (String.starts_with ~prefix:"alchemist-profile 3\n" text);
  Alcotest.(check bool) "has distbound lines" true (has_distbound_line text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check string) "byte-identical reserialization" text
        (Pio.to_string p2);
      Alcotest.(check bool) "distance bounds preserved" true
        (p.Profile.static_distbounds = p2.Profile.static_distbounds)

let test_v3_v2_byte_exact () =
  (* Stripping the bounds from a loaded version-3 profile must produce
     the exact bytes the same data would have written as version 2 —
     the distbound block is a pure extension, not a reformatting. *)
  let prog, p = profile_of dist_src in
  p.Profile.static_race <- None;
  let text3 = Pio.to_string p in
  p.Profile.static_distbounds <- None;
  let text2 = Pio.to_string p in
  Alcotest.(check bool) "version-2 header after strip" true
    (String.starts_with ~prefix:"alchemist-profile 2\n" text2);
  Alcotest.(check bool) "no distbound lines" false (has_distbound_line text2);
  (match Pio.read prog text3 with
  | Error msg -> Alcotest.failf "v3 read failed: %s" msg
  | Ok p3 ->
      p3.Profile.static_distbounds <- None;
      Alcotest.(check string) "v3 minus bounds = v2 bytes" text2
        (Pio.to_string p3));
  (* An empty bound list serializes as version 2 too (the version only
     moves when a distbound line would follow)... *)
  (match Pio.read prog text2 with
  | Error msg -> Alcotest.failf "v2 read failed: %s" msg
  | Ok p2 ->
      p2.Profile.static_distbounds <- Some [];
      Alcotest.(check string) "empty bounds stay v2" text2 (Pio.to_string p2));
  (* ... and a declared-v3 file with no distbound lines normalizes back
     to version 2 on round-trip. *)
  let fake_v3 =
    "alchemist-profile 3"
    ^ String.sub text2 (String.length "alchemist-profile 2")
        (String.length text2 - String.length "alchemist-profile 2")
  in
  match Pio.read prog fake_v3 with
  | Error msg -> Alcotest.failf "bound-free v3 read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check string) "bound-free v3 normalizes to v2" text2
        (Pio.to_string p2)

let test_distbound_malformed_matrix () =
  let prog, p = profile_of dist_src in
  (* keep the file below version 5 so the version-gate cases apply *)
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let with_extra extra = text ^ extra ^ "\n" in
  let extra_line = List.length (String.split_on_char '\n' text) in
  let first_distbound =
    List.find
      (String.starts_with ~prefix:"distbound ")
      (String.split_on_char '\n' text)
  in
  (* a bound below 1 proves nothing and must not parse *)
  expect_error ~label:"zero bound" ~needle:"must be >= 1"
    (with_extra "distbound 3 5 RAW 0");
  expect_error ~label:"negative bound" ~needle:"must be >= 1"
    (with_extra "distbound 3 5 RAW -2");
  expect_error ~label:"garbled bound" ~needle:"not an integer"
    (with_extra "distbound 3 5 RAW x");
  expect_error ~label:"bad kind" ~needle:"RAR"
    (with_extra "distbound 3 5 RAR 2");
  expect_error ~label:"negative pc" ~needle:"negative pc"
    (with_extra "distbound -1 5 RAW 2");
  expect_error ~label:"arity" ~needle:"malformed"
    (with_extra "distbound 3 5 RAW");
  (* duplicates are rejected with the offending 1-based line number *)
  expect_error ~label:"duplicate distbound" ~needle:"duplicate distbound"
    (with_extra first_distbound);
  expect_error ~label:"duplicate distbound line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra first_distbound);
  (* a distbound line is rejected in any pre-v3 body *)
  p.Profile.static_distbounds <- None;
  let v2 = Pio.to_string p in
  expect_error ~label:"distbound in v2" ~needle:"version-2"
    (v2 ^ first_distbound ^ "\n");
  p.Profile.static_verdicts <- None;
  let v1 = Pio.to_string p in
  expect_error ~label:"distbound in v1" ~needle:"version-1"
    (v1 ^ first_distbound ^ "\n")

(* Seeded corruption: shrink a recorded edge's observed min Tdep below
   its stored (and recomputed) static lower bound. The file still
   parses — the contradiction is semantic — and the sanitizer must trip
   on exactly that edge. This proves the checker can actually fire, not
   just that clean profiles pass. *)
let test_seeded_corruption_trips_checker () =
  let prog, p = profile_of dist_src in
  let text = Pio.to_string p in
  let db_head, db_tail =
    Scanf.sscanf
      (List.find
         (String.starts_with ~prefix:"distbound ")
         (String.split_on_char '\n' text))
      "distbound %d %d" (fun h t -> (h, t))
  in
  let corrupted =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           match String.split_on_char ' ' line with
           | "edge" :: cid :: head :: tail :: kind :: _min_tdep :: rest
             when int_of_string head = db_head && int_of_string tail = db_tail
             ->
               String.concat " "
                 ("edge" :: cid :: head :: tail :: kind :: "1" :: rest)
           | _ -> line)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "corruption changed the text" true (corrupted <> text);
  match Pio.read prog corrupted with
  | Error msg -> Alcotest.failf "corrupted file no longer parses: %s" msg
  | Ok bad ->
      let issues = Alchemist.Sanitize.check bad in
      Alcotest.(check bool) "sanitizer fires" true (issues <> []);
      Alcotest.(check bool) "mentions the distance bound" true
        (List.exists
           (fun (i : Alchemist.Sanitize.issue) ->
             Testutil.contains i.reason "static lower bound")
           issues);
      (* the pristine profile stays clean *)
      Alcotest.(check int) "clean profile has no issues" 0
        (List.length (Alchemist.Sanitize.check p))

(* --- version-4 transform-legality lines ---------------------------- *)

let has_legality_line text =
  List.exists
    (String.starts_with ~prefix:"legality ")
    (String.split_on_char '\n' text)

(* dist_src's SIV loop (a distance bound) plus a global reduction loop
   (legality verdicts): the one profile carries both optional blocks. *)
let legality_src =
  {|int A[64];
int t;
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 20; i = i + 1) {
    A[i + 3] = A[i] + 1;
    s = s + A[i + 3];
  }
  for (i = 0; i < 10; i = i + 1) {
    t = t + i;
  }
  return s + t;
}|}

let test_v4_roundtrip () =
  let prog, p = profile_of sample_src in
  (* the default profiler attaches legality verdicts *)
  Alcotest.(check bool) "profile carries legality" true
    (match p.Profile.static_legality with Some (_ :: _) -> true | _ -> false);
  (* strip race statuses: this test exercises the version-4 path *)
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-4 header" true
    (String.starts_with ~prefix:"alchemist-profile 4\n" text);
  Alcotest.(check bool) "has legality lines" true (has_legality_line text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check string) "byte-identical reserialization" text
        (Pio.to_string p2);
      Alcotest.(check bool) "legality list preserved" true
        (p.Profile.static_legality = p2.Profile.static_legality)

let test_v4_v3_byte_exact () =
  (* Stripping the legality verdicts from a loaded version-4 profile
     must produce the exact bytes the same data would have written as
     version 3 — the legality block is a pure extension. *)
  let prog, p = profile_of legality_src in
  Alcotest.(check bool) "carries distance bounds" true
    (match p.Profile.static_distbounds with Some (_ :: _) -> true | _ -> false);
  Alcotest.(check bool) "carries legality" true
    (match p.Profile.static_legality with Some (_ :: _) -> true | _ -> false);
  p.Profile.static_race <- None;
  let text4 = Pio.to_string p in
  Alcotest.(check bool) "version-4 header" true
    (String.starts_with ~prefix:"alchemist-profile 4\n" text4);
  p.Profile.static_legality <- None;
  let text3 = Pio.to_string p in
  Alcotest.(check bool) "version-3 header after strip" true
    (String.starts_with ~prefix:"alchemist-profile 3\n" text3);
  Alcotest.(check bool) "no legality lines" false (has_legality_line text3);
  (match Pio.read prog text4 with
  | Error msg -> Alcotest.failf "v4 read failed: %s" msg
  | Ok p4 ->
      p4.Profile.static_legality <- None;
      Alcotest.(check string) "v4 minus legality = v3 bytes" text3
        (Pio.to_string p4));
  (* an empty legality list serializes at the lower version too *)
  (match Pio.read prog text3 with
  | Error msg -> Alcotest.failf "v3 read failed: %s" msg
  | Ok p3 ->
      p3.Profile.static_legality <- Some [];
      Alcotest.(check string) "empty legality stays v3" text3
        (Pio.to_string p3));
  (* a declared-v4 file with no legality lines normalizes on round-trip *)
  let fake_v4 =
    "alchemist-profile 4"
    ^ String.sub text3 (String.length "alchemist-profile 3")
        (String.length text3 - String.length "alchemist-profile 3")
  in
  match Pio.read prog fake_v4 with
  | Error msg -> Alcotest.failf "legality-free v4 read failed: %s" msg
  | Ok p3 ->
      Alcotest.(check string) "legality-free v4 normalizes to v3" text3
        (Pio.to_string p3)

let test_legality_malformed_matrix () =
  let prog, p = profile_of sample_src in
  (* keep the file below version 5 so the version-gate cases apply *)
  p.Profile.static_race <- None;
  let text = Pio.to_string p in
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let with_extra extra = text ^ extra ^ "\n" in
  let extra_line = List.length (String.split_on_char '\n' text) in
  let first_legality =
    List.find
      (String.starts_with ~prefix:"legality ")
      (String.split_on_char '\n' text)
  in
  (* unknown verdict tag *)
  expect_error ~label:"bad legality tag" ~needle:"unknown legality verdict"
    (with_extra "legality 3 5 WAW bogus");
  (* unknown kind tag *)
  expect_error ~label:"bad kind in legality" ~needle:"RAR"
    (with_extra "legality 3 5 RAR priv");
  (* negative pc *)
  expect_error ~label:"negative pc" ~needle:"negative pc"
    (with_extra "legality -1 5 WAW priv");
  (* wrong arity falls through to the malformed-line case *)
  expect_error ~label:"legality arity" ~needle:"malformed"
    (with_extra "legality 3 5 WAW");
  (* duplicates are rejected with the offending 1-based line number *)
  expect_error ~label:"duplicate legality" ~needle:"duplicate legality"
    (with_extra first_legality);
  expect_error ~label:"duplicate legality line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra first_legality);
  (* a legality line is rejected in any pre-v4 body *)
  p.Profile.static_legality <- None;
  let v2 = Pio.to_string p in
  expect_error ~label:"legality in v2" ~needle:"version-2"
    (v2 ^ first_legality ^ "\n");
  p.Profile.static_verdicts <- None;
  let v1 = Pio.to_string p in
  expect_error ~label:"legality in v1" ~needle:"version-1"
    (v1 ^ first_legality ^ "\n")

(* A well-formed distbound/legality line naming an edge the profile does
   not record is corruption every downstream lookup would silently
   ignore — the reader must reject it with the offending line number. *)
let test_unrecorded_edge_rejection () =
  let prog, p = profile_of legality_src in
  let text = Pio.to_string p in
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let with_extra extra = text ^ extra ^ "\n" in
  let extra_line = List.length (String.split_on_char '\n' text) in
  (* no edge is recorded between pcs 0 and 1 *)
  expect_error ~label:"unrecorded legality edge"
    ~needle:"legality references unrecorded edge 0 1 WAW"
    (with_extra "legality 0 1 WAW priv");
  expect_error ~label:"unrecorded legality line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra "legality 0 1 WAW priv");
  expect_error ~label:"unrecorded distbound edge"
    ~needle:"distbound references unrecorded edge 0 1 RAW"
    (with_extra "distbound 0 1 RAW 3");
  expect_error ~label:"unrecorded distbound line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra "distbound 0 1 RAW 3");
  (* a stored verdict on an unrecorded edge still parses: the sanitizer
     owns that diagnostic *)
  let extra = "verdict 0 1 RAW may-dep" in
  match Pio.read prog (with_extra extra) with
  | Ok _ -> ()
  | Error msg ->
      (* only acceptable if the verdict tag itself is unknown *)
      Alcotest.failf "verdict on unrecorded edge rejected: %s" msg

(* --- version-5 race-status lines ----------------------------------- *)

let has_race_line text =
  List.exists
    (String.starts_with ~prefix:"race ")
    (String.split_on_char '\n' text)

let test_v5_roundtrip () =
  let prog, p = profile_of sample_src in
  (* the default profiler attaches race statuses *)
  Alcotest.(check bool) "profile carries race statuses" true
    (match p.Profile.static_race with Some (_ :: _) -> true | _ -> false);
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-5 header" true
    (String.starts_with ~prefix:"alchemist-profile 5\n" text);
  Alcotest.(check bool) "has race lines" true (has_race_line text);
  match Pio.read prog text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok p2 ->
      Alcotest.(check string) "byte-identical reserialization" text
        (Pio.to_string p2);
      Alcotest.(check bool) "race statuses preserved" true
        (p.Profile.static_race = p2.Profile.static_race)

let test_v5_v4_byte_exact () =
  (* Stripping the race statuses from a loaded version-5 profile must
     produce the exact bytes the same data would have written as
     version 4 — the race block is a pure extension. *)
  let prog, p = profile_of sample_src in
  let text5 = Pio.to_string p in
  Alcotest.(check bool) "version-5 header" true
    (String.starts_with ~prefix:"alchemist-profile 5\n" text5);
  p.Profile.static_race <- None;
  let text4 = Pio.to_string p in
  Alcotest.(check bool) "version-4 header after strip" true
    (String.starts_with ~prefix:"alchemist-profile 4\n" text4);
  Alcotest.(check bool) "no race lines" false (has_race_line text4);
  (match Pio.read prog text5 with
  | Error msg -> Alcotest.failf "v5 read failed: %s" msg
  | Ok p5 ->
      p5.Profile.static_race <- None;
      Alcotest.(check string) "v5 minus race = v4 bytes" text4
        (Pio.to_string p5));
  (* an empty race list serializes at the lower version too *)
  (match Pio.read prog text4 with
  | Error msg -> Alcotest.failf "v4 read failed: %s" msg
  | Ok p4 ->
      p4.Profile.static_race <- Some [];
      Alcotest.(check string) "empty race list stays v4" text4
        (Pio.to_string p4));
  (* a declared-v5 file with no race lines normalizes on round-trip *)
  let fake_v5 =
    "alchemist-profile 5"
    ^ String.sub text4 (String.length "alchemist-profile 4")
        (String.length text4 - String.length "alchemist-profile 4")
  in
  match Pio.read prog fake_v5 with
  | Error msg -> Alcotest.failf "race-free v5 read failed: %s" msg
  | Ok p4 ->
      Alcotest.(check string) "race-line-free v5 normalizes to v4" text4
        (Pio.to_string p4)

(* One function is never called, so its construct is in range for the
   program but absent from the profile's construct records — the target
   for the unrecorded-construct rejection below. *)
let race_matrix_src =
  {|int g;
    void dead(int i) { g = i; }
    int main() {
      for (int i = 0; i < 10; i = i + 1) g = g + i;
      return g;
    }|}

let test_race_malformed_matrix () =
  let prog, p = profile_of race_matrix_src in
  let text = Pio.to_string p in
  Alcotest.(check bool) "version-5 header" true
    (String.starts_with ~prefix:"alchemist-profile 5\n" text);
  let expect_error ~label ~needle text =
    match Pio.read prog text with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg needle)
          true
          (Testutil.contains msg needle)
  in
  let with_extra extra = text ^ extra ^ "\n" in
  let extra_line = List.length (String.split_on_char '\n' text) in
  (* unknown status tag *)
  expect_error ~label:"bad race tag" ~needle:"unknown race status"
    (with_extra "race 0 bogus");
  (* out-of-range construct id *)
  expect_error ~label:"race cid range" ~needle:"out of range"
    (with_extra "race 9999 racy");
  (* wrong arity falls through to the malformed-line case *)
  expect_error ~label:"race arity" ~needle:"malformed" (with_extra "race 0");
  (* duplicates are rejected with the offending 1-based line number *)
  let first_race =
    List.find
      (String.starts_with ~prefix:"race ")
      (String.split_on_char '\n' text)
  in
  expect_error ~label:"duplicate race" ~needle:"duplicate race"
    (with_extra first_race);
  expect_error ~label:"duplicate race line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra first_race);
  (* a status for an in-range construct the profile never recorded *)
  let dead_cid =
    let found = ref (-1) in
    Array.iter
      (fun (cp : Profile.construct_profile) ->
        if cp.instances = 0 && !found < 0 then found := cp.cid)
      p.Profile.by_cid;
    Alcotest.(check bool) "source has an unexecuted construct" true (!found >= 0);
    !found
  in
  expect_error ~label:"unrecorded construct"
    ~needle:
      (Printf.sprintf "race references unrecorded construct %d" dead_cid)
    (with_extra (Printf.sprintf "race %d race-free" dead_cid));
  expect_error ~label:"unrecorded construct line number"
    ~needle:(Printf.sprintf "line %d" extra_line)
    (with_extra (Printf.sprintf "race %d race-free" dead_cid));
  (* a race line is rejected in any pre-v5 body *)
  p.Profile.static_race <- None;
  let v4 = Pio.to_string p in
  expect_error ~label:"race in v4" ~needle:"version-4"
    (v4 ^ first_race ^ "\n");
  p.Profile.static_legality <- None;
  p.Profile.static_distbounds <- None;
  p.Profile.static_verdicts <- None;
  let v1 = Pio.to_string p in
  expect_error ~label:"race in v1" ~needle:"version-1" (v1 ^ first_race ^ "\n")

let suite =
  [
    ("roundtrip", `Quick, test_roundtrip);
    ("fingerprint stable", `Quick, test_fingerprint_stable);
    ("rejects wrong program", `Quick, test_rejects_wrong_program);
    ("rejects garbage", `Quick, test_rejects_garbage);
    ("malformed matrix", `Quick, test_malformed_matrix);
    ("save/load file", `Quick, test_save_load_file);
    ("loaded profile usable", `Quick, test_loaded_profile_usable);
    ("merge after load", `Quick, test_merge_after_load);
    ("inputs extend the profile", `Quick, test_inputs_extend_profile);
    ("v2 verdict roundtrip", `Quick, test_v2_roundtrip);
    ("v1 files still load", `Quick, test_v1_still_loads);
    ("v2 with zero verdicts", `Quick, test_v2_zero_verdicts);
    ("verdict malformed matrix", `Quick, test_verdict_malformed_matrix);
    ("v3 distbound roundtrip", `Quick, test_v3_roundtrip);
    ("v3/v2 byte exactness", `Quick, test_v3_v2_byte_exact);
    ("distbound malformed matrix", `Quick, test_distbound_malformed_matrix);
    ("seeded corruption trips checker", `Quick, test_seeded_corruption_trips_checker);
    ("v4 legality roundtrip", `Quick, test_v4_roundtrip);
    ("v4/v3 byte exactness", `Quick, test_v4_v3_byte_exact);
    ("legality malformed matrix", `Quick, test_legality_malformed_matrix);
    ("unrecorded edge rejection", `Quick, test_unrecorded_edge_rejection);
    ("v5 race roundtrip", `Quick, test_v5_roundtrip);
    ("v5/v4 byte exactness", `Quick, test_v5_v4_byte_exact);
    ("race malformed matrix", `Quick, test_race_malformed_matrix);
  ]
