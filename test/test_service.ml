(* The registry service: cache-key canonicality (engine permutations
   hit, any profile-determining option change misses), cold/warm/direct
   byte-identity, the on-disk store, reply ordering, and the
   static-facts reuse and validation paths. *)

module Service = Driver.Service
module Cache = Driver.Cache
module Profiler = Alchemist.Profiler
module Pio = Alchemist.Profile_io

let check = Alcotest.check
let fuel = 50_000_000

let family_src mode =
  Printf.sprintf
    {|int mode = %d;
      int acc;
      int out[32];
      int main() {
        for (int i = 0; i < 200 + mode; i++) {
          int s = 0;
          for (int k = 0; k < 10; k++) s += i + k;
          if (mode > 1) acc += s;
          out[i & 31] = s + out[(i + mode) & 31];
        }
        return acc;
      }|}
    mode

let family_prog mode = Vm.Compile.compile_source (family_src mode)

let with_service ?cache ?(workers = 2) f =
  let svc = Service.create ~workers ?cache () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let reply_bytes (r : Service.reply) =
  match r.Service.result with
  | Ok (_, _, bytes) -> bytes
  | Error msg -> Alcotest.fail ("unexpected service error: " ^ msg)

let reply_outcome (r : Service.reply) =
  match r.Service.result with
  | Ok (o, _, _) -> o
  | Error msg -> Alcotest.fail ("unexpected service error: " ^ msg)

(* --- cache keys ----------------------------------------------------------- *)

(* Key canonicality as a qcheck property: two option tuples produce the
   same key exactly when they are equal — the key is a function of
   (code, input, fuel, trace_locals, pool_capacity, scan_limit) and of
   nothing else. *)
let arbitrary_opts =
  QCheck.make
    ~print:(fun (f, t, p, s) ->
      Printf.sprintf "fuel=%s trace=%b pool=%s scan=%s"
        (match f with Some n -> string_of_int n | None -> "-")
        t
        (match p with Some n -> string_of_int n | None -> "-")
        (match s with Some n -> string_of_int n | None -> "-"))
    QCheck.Gen.(
      quad
        (opt (int_range 1 5))
        bool
        (opt (int_range 1 5))
        (opt (int_range 1 5)))

let key_of (fuel, trace_locals, pool_capacity, scan_limit) =
  Cache.key ~code_fp:"c0de" ~input_fp:"1npu7" ?fuel ~trace_locals
    ?pool_capacity ?scan_limit ()

let test_key_canonical_qcheck () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"key equality iff option equality" ~count:500
       (QCheck.pair arbitrary_opts arbitrary_opts)
       (fun (a, b) -> String.equal (key_of a) (key_of b) = (a = b)))

let test_key_ignores_fingerprint_swap () =
  (* code and input fingerprints must both feed the key, in distinct
     positions *)
  let k c i = Cache.key ~code_fp:c ~input_fp:i () in
  check Alcotest.bool "code changes key" false (k "a" "x" = k "b" "x");
  check Alcotest.bool "input changes key" false (k "a" "x" = k "a" "y");
  check Alcotest.bool "swap is not symmetric" false (k "a" "x" = k "x" "a")

let test_engine_permutations_hit () =
  (* the engine, ring, regalloc and prune knobs are proven not to change
     profile bytes, so they share one cache line: first run computes,
     every permutation afterwards hits *)
  let prog = family_prog 0 in
  with_service (fun svc ->
      (* seed the cache first: inserts happen at harvest (on the control
         thread), so in-flight duplicates within one batch all compute *)
      Service.submit svc ~fuel ~spec:"seed" prog;
      let seed =
        match Service.drain svc with [ r ] -> r | _ -> Alcotest.fail "one reply"
      in
      Service.submit svc ~fuel ~engine:Vm.Machine.Switch ~spec:"switch" prog;
      Service.submit svc ~fuel ~engine:Vm.Machine.Register ~spec:"register"
        prog;
      Service.submit svc ~fuel ~engine:Vm.Machine.Register ~ring:false
        ~regalloc:false ~spec:"register-noring" prog;
      Service.submit svc ~fuel ~static_prune:false ~spec:"noprune" prog;
      let rest = Service.drain svc in
      check Alcotest.bool "first computes" true
        (reply_outcome seed = Service.Computed);
      check Alcotest.int "four permutations" 4 (List.length rest);
      List.iter
        (fun r ->
          check Alcotest.bool
            (r.Service.spec ^ " hits")
            true
            (reply_outcome r = Service.Hit);
          check Alcotest.string
            (r.Service.spec ^ " bytes identical")
            (reply_bytes seed) (reply_bytes r))
        rest)

let test_option_changes_miss () =
  let prog = family_prog 0 in
  with_service (fun svc ->
      Service.submit svc ~fuel ~spec:"a" prog;
      Service.submit svc ~fuel:(fuel + 1) ~spec:"b" prog;
      Service.submit svc ~fuel ~pool_capacity:4096 ~spec:"c" prog;
      Service.submit svc ~fuel ~scan_limit:7 ~spec:"d" prog;
      Service.submit svc ~fuel ~trace_locals:true ~spec:"e" prog;
      (* a different input of the same code also misses *)
      Service.submit svc ~fuel ~spec:"f" (family_prog 2);
      let replies = Service.drain svc in
      List.iter
        (fun r ->
          check Alcotest.bool
            (r.Service.spec ^ " computes")
            true
            (reply_outcome r = Service.Computed))
        replies)

(* --- byte identity -------------------------------------------------------- *)

let test_cold_warm_direct_identity () =
  let progs = List.map family_prog [ 0; 1; 2; 3 ] in
  let cache = Cache.create () in
  let pass () =
    with_service ~cache (fun svc ->
        List.iteri
          (fun i prog ->
            Service.submit svc ~fuel ~spec:(string_of_int i) prog)
          progs;
        List.map reply_bytes (Service.drain svc))
  in
  let cold = pass () in
  let warm = pass () in
  let direct =
    List.map
      (fun prog -> Pio.to_string (Profiler.run ~fuel prog).Profiler.profile)
      progs
  in
  check Alcotest.(list string) "warm bytes = cold bytes" cold warm;
  check Alcotest.(list string) "cold bytes = direct profiler bytes" direct cold

let test_facts_reuse_and_validation () =
  (* same code, different inputs: one analysis, shared facts — and the
     profile with facts is byte-identical to the one without *)
  let cache = Cache.create () in
  with_service ~cache (fun svc ->
      List.iter
        (fun m ->
          Service.submit svc ~fuel ~spec:(string_of_int m) (family_prog m))
        [ 0; 1; 2; 3 ];
      ignore (Service.drain svc);
      let snap = Service.telemetry svc in
      let count n = Option.value ~default:(-1) (Obs.find_count snap n) in
      check Alcotest.int "one analysis" 1 (count "service.facts_computed");
      check Alcotest.int "three reuses" 3 (count "service.facts_reused"));
  let p0 = family_prog 0 in
  let facts = Profiler.prepare_facts p0 in
  check Alcotest.string "facts fingerprint is the code fingerprint"
    (Pio.fingerprint p0)
    (Profiler.facts_fingerprint facts);
  check Alcotest.string "facts do not change profile bytes"
    (Pio.to_string (Profiler.run ~fuel p0).Profiler.profile)
    (Pio.to_string (Profiler.run ~fuel ~facts p0).Profiler.profile);
  (* family variants share code, so the same facts are valid across the
     whole family — that is the reuse path; a program whose CODE differs
     must be rejected *)
  check Alcotest.string "facts valid across the input family"
    (Pio.to_string (Profiler.run ~fuel (family_prog 1)).Profiler.profile)
    (Pio.to_string (Profiler.run ~fuel ~facts (family_prog 1)).Profiler.profile);
  let other =
    Vm.Compile.compile_source
      {|int g;
        int main() {
          for (int i = 0; i < 10; i++) g += i;
          return g;
        }|}
  in
  Alcotest.check_raises "facts for a different program rejected"
    (Invalid_argument "Profiler: facts were prepared for a different program")
    (fun () -> ignore (Profiler.run ~fuel ~facts other))

(* --- disk store ----------------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "alchemist_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_disk_store_survives_restart () =
  with_tmpdir (fun dir ->
      let prog = family_prog 0 in
      let bytes_cold =
        with_service ~cache:(Cache.create ~dir ()) (fun svc ->
            Service.submit svc ~fuel ~spec:"cold" prog;
            match Service.drain svc with
            | [ r ] ->
                check Alcotest.bool "cold computes" true
                  (reply_outcome r = Service.Computed);
                reply_bytes r
            | _ -> Alcotest.fail "one reply expected")
      in
      (* a fresh cache + service over the same directory: disk hit *)
      with_service ~cache:(Cache.create ~dir ()) (fun svc ->
          Service.submit svc ~fuel ~spec:"restart" prog;
          match Service.drain svc with
          | [ r ] ->
              check Alcotest.bool "restart disk-hits" true
                (reply_outcome r = Service.Disk_hit);
              check Alcotest.string "disk bytes identical" bytes_cold
                (reply_bytes r)
          | _ -> Alcotest.fail "one reply expected"))

(* --- request lines and ordering ------------------------------------------- *)

let test_feed_ordering_and_errors () =
  with_service (fun svc ->
      check Alcotest.bool "comment skipped" true
        (Service.feed svc "# comment" = `Skip);
      check Alcotest.bool "blank skipped" true (Service.feed svc "  " = `Skip);
      check Alcotest.bool "drain recognized" true
        (Service.feed svc "drain" = `Drain);
      ignore (Service.feed svc "workload:stencil:64");
      ignore (Service.feed svc "workload:no-such-workload");
      ignore (Service.feed svc "workload:stencil:64 bogus_opt=1");
      ignore (Service.feed svc "workload:stencil:64 engine=quantum");
      let replies = Service.drain svc in
      check Alcotest.(list int) "submission order preserved" [ 1; 2; 3; 4 ]
        (List.map (fun (r : Service.reply) -> r.Service.seq) replies);
      let ok (r : Service.reply) = Result.is_ok r.Service.result in
      check Alcotest.(list bool) "errors exactly where submitted"
        [ true; false; false; false ]
        (List.map ok replies);
      (* a repeat in a later batch hits the cache (inserts happen at
         harvest, so the repeat must come after a drain) and agrees *)
      ignore (Service.feed svc "workload:stencil:64");
      match Service.drain svc with
      | [ b ] ->
          check Alcotest.int "repeat seq" 5 b.Service.seq;
          check Alcotest.string "bytes agree"
            (reply_bytes (List.nth replies 0))
            (reply_bytes b);
          check Alcotest.bool "second hits" true
            (reply_outcome b = Service.Hit)
      | _ -> Alcotest.fail "expected exactly one reply in second batch")

let test_ready_streams_prefix () =
  with_service (fun svc ->
      (* an unknown workload resolves instantly: ready must surface it
         without waiting for anything else *)
      ignore (Service.feed svc "workload:no-such-workload");
      (match Service.ready svc with
      | [ r ] -> check Alcotest.bool "error streamed" true (Result.is_error r.Service.result)
      | _ -> Alcotest.fail "expected the resolved head streamed");
      check Alcotest.(list int) "nothing left" []
        (List.map
           (fun (r : Service.reply) -> r.Service.seq)
           (Service.drain svc)))

(* --- LRU eviction --------------------------------------------------------- *)

let test_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "k1" "a";
  Cache.add c "k2" "b";
  ignore (Cache.find c "k1");
  (* k2 is now least recently used *)
  Cache.add c "k3" "c";
  check Alcotest.int "capacity respected" 2 (Cache.length c);
  check Alcotest.(option string) "recently-used survives" (Some "a")
    (Cache.find c "k1");
  check Alcotest.(option string) "LRU evicted" None (Cache.find c "k2");
  let snap = Cache.telemetry c in
  check Alcotest.(option int) "one eviction" (Some 1)
    (Obs.find_count snap "cache.evictions")

let suite =
  [
    ("cache key canonical (qcheck)", `Quick, test_key_canonical_qcheck);
    ("cache key fingerprints", `Quick, test_key_ignores_fingerprint_swap);
    ("engine permutations hit", `Quick, test_engine_permutations_hit);
    ("option changes miss", `Quick, test_option_changes_miss);
    ("cold/warm/direct identity", `Quick, test_cold_warm_direct_identity);
    ("facts reuse and validation", `Quick, test_facts_reuse_and_validation);
    ("disk store survives restart", `Quick, test_disk_store_survives_restart);
    ("feed ordering and errors", `Quick, test_feed_ordering_and_errors);
    ("ready streams prefix", `Quick, test_ready_streams_prefix);
    ("LRU eviction", `Quick, test_lru_eviction);
  ]
