let () =
  Alcotest.run "alchemist"
    [
      ("minic", Test_minic.suite);
      ("minic-extra", Test_minic_extra.suite);
      ("vm", Test_vm.suite);
      ("engines", Test_engines.suite);
      ("verify", Test_verify.suite);
      ("fold", Test_fold.suite);
      ("trace", Test_trace.suite);
      ("cfa", Test_cfa.suite);
      ("static", Test_static.suite);
      ("distance", Test_distance.suite);
      ("legality", Test_legality.suite);
      ("race", Test_race.suite);
      ("indexing", Test_indexing.suite);
      ("shadow", Test_shadow.suite);
      ("obs", Test_obs.suite);
      ("profiler", Test_profiler.suite);
      ("baselines", Test_baselines.suite);
      ("parsim", Test_parsim.suite);
      ("workloads", Test_workloads.suite);
      ("advice", Test_advice.suite);
      ("properties", Test_properties.suite);
      ("explore", Test_explore.suite);
      ("parallel", Test_parallel.suite);
      ("scheduler", Test_scheduler.suite);
      ("service", Test_service.suite);
      ("profile_io", Test_profile_io.suite);
      ("reporting", Test_reporting.suite);
    ]
