(* The work-stealing scheduler: result integrity under parallel
   execution and stealing, error capture, the submit-while-running and
   drain/shutdown lifecycle, and the sched.* telemetry invariants. *)

module Scheduler = Driver.Scheduler

let check = Alcotest.check

let test_submit_await_all () =
  let s = Scheduler.create ~workers:4 () in
  let ps =
    List.init 150 (fun i -> (i, Scheduler.submit s (fun () -> (i * i) + 1)))
  in
  List.iter
    (fun (i, p) ->
      check Alcotest.int
        (Printf.sprintf "job %d" i)
        ((i * i) + 1)
        (Scheduler.await p))
    ps;
  Scheduler.shutdown s

let test_uneven_costs_balance () =
  (* one huge item among many tiny ones: stealing must not strand the
     tail behind it *)
  let s = Scheduler.create ~workers:3 () in
  let work i =
    let n = if i = 0 then 300_000 else 50 in
    let acc = ref 0 in
    for k = 1 to n do
      acc := !acc + k
    done;
    !acc
  in
  let ps = List.init 30 (fun i -> Scheduler.submit s (fun () -> work i)) in
  Scheduler.drain s;
  List.iteri
    (fun i p ->
      check Alcotest.int
        (Printf.sprintf "job %d" i)
        (work i) (Scheduler.await p))
    ps;
  Scheduler.shutdown s

let test_error_capture () =
  let s = Scheduler.create ~workers:2 () in
  let good = Scheduler.submit s (fun () -> 7) in
  let bad = Scheduler.submit s (fun () -> failwith "boom") in
  check Alcotest.int "good job unaffected" 7 (Scheduler.await good);
  (match Scheduler.await_result bad with
  | Error (Failure m, _) -> check Alcotest.string "message kept" "boom" m
  | Error _ -> Alcotest.fail "wrong exception"
  | Ok _ -> Alcotest.fail "failed job returned Ok");
  Alcotest.check_raises "await re-raises" (Failure "boom") (fun () ->
      ignore (Scheduler.await bad));
  Scheduler.shutdown s

let test_submit_while_running () =
  (* the pool is persistent: a second batch goes in after (and during)
     the first, unlike the one-shot Parallel.map *)
  let s = Scheduler.create ~workers:2 () in
  let first = List.init 20 (fun i -> Scheduler.submit s (fun () -> i)) in
  (* jobs submit further jobs while workers are busy (fire-and-forget:
     awaiting a nested job from inside a job could idle every worker) *)
  let nested_lock = Mutex.create () in
  let nested = ref [] in
  let second =
    List.init 20 (fun i ->
        Scheduler.submit s (fun () ->
            let p = Scheduler.submit s (fun () -> 100 + i) in
            Mutex.lock nested_lock;
            nested := p :: !nested;
            Mutex.unlock nested_lock;
            i))
  in
  (* drain covers the nested jobs too: they were pending before their
     parents completed *)
  Scheduler.drain s;
  List.iteri
    (fun i p -> check Alcotest.int "first batch" i (Scheduler.await p))
    first;
  List.iteri
    (fun i p -> check Alcotest.int "second batch" i (Scheduler.await p))
    second;
  let nested_sum =
    List.fold_left (fun a p -> a + Scheduler.await p) 0 !nested
  in
  check Alcotest.int "all nested jobs ran" (20 * 100 + (19 * 20 / 2)) nested_sum;
  Scheduler.shutdown s

let test_poll_and_drain () =
  let s = Scheduler.create ~workers:2 () in
  let p = Scheduler.submit s (fun () -> 1) in
  Scheduler.drain s;
  check Alcotest.bool "drained job polls done" true (Scheduler.poll p);
  (* drain with nothing outstanding returns immediately *)
  Scheduler.drain s;
  Scheduler.shutdown s

let test_shutdown_semantics () =
  let s = Scheduler.create ~workers:2 () in
  let ps = List.init 10 (fun i -> Scheduler.submit s (fun () -> i * 2)) in
  (* queued jobs finish during shutdown *)
  Scheduler.shutdown s;
  List.iteri
    (fun i p -> check Alcotest.int "pre-shutdown job" (i * 2) (Scheduler.await p))
    ps;
  Alcotest.check_raises "post-shutdown submit rejected"
    (Invalid_argument "Scheduler.submit: scheduler is shut down") (fun () ->
      ignore (Scheduler.submit s (fun () -> ())));
  (* idempotent *)
  Scheduler.shutdown s

let test_telemetry_invariants () =
  let s = Scheduler.create ~workers:4 () in
  let n = 120 in
  let ps =
    List.init n (fun i ->
        Scheduler.submit s (fun () ->
            let acc = ref 0 in
            for k = 1 to 2_000 + (i * 37 mod 5_000) do
              acc := !acc + k
            done;
            !acc))
  in
  Scheduler.drain s;
  List.iter (fun p -> ignore (Scheduler.await p)) ps;
  let snap = Scheduler.telemetry s in
  Scheduler.shutdown s;
  let count name = Option.value ~default:(-1) (Obs.find_count snap name) in
  check Alcotest.int "every submission executed exactly once" n
    (count "sched.jobs");
  check Alcotest.int "submitted counter" n (count "sched.submitted");
  (* every job reaches a worker via the injector or a steal *)
  check Alcotest.int "injected + stolen = executed" n
    (count "sched.injected" + count "sched.steals");
  check Alcotest.bool "latency histogram saw every job" true
    (match Obs.find snap "sched.job_latency_ns" with
    | Some (Obs.Dist { count = c; _ }) -> c = n
    | _ -> false);
  (match Obs.find snap "sched.queue_depth" with
  | Some (Obs.Level { last; hwm }) ->
      check Alcotest.int "queue empty after drain" 0 last;
      check Alcotest.bool "queue depth hwm observed" true (hwm > 0)
  | _ -> Alcotest.fail "no queue_depth gauge")

let test_many_workers_stress () =
  (* more workers than jobs, then more jobs than workers, repeatedly —
     shaking out lost-wakeup bugs in the sleep protocol *)
  let s = Scheduler.create ~workers:8 () in
  for round = 1 to 20 do
    let ps = List.init (1 + (round mod 5)) (fun i -> Scheduler.submit s (fun () -> i)) in
    Scheduler.drain s;
    List.iteri
      (fun i p -> check Alcotest.int "round job" i (Scheduler.await p))
      ps
  done;
  Scheduler.shutdown s

let suite =
  [
    ("submit/await values", `Quick, test_submit_await_all);
    ("uneven costs balance", `Quick, test_uneven_costs_balance);
    ("error capture", `Quick, test_error_capture);
    ("submit while running", `Quick, test_submit_while_running);
    ("poll and drain", `Quick, test_poll_and_drain);
    ("shutdown semantics", `Quick, test_shutdown_semantics);
    ("telemetry invariants", `Quick, test_telemetry_invariants);
    ("lost-wakeup stress", `Quick, test_many_workers_stress);
  ]
