(* Unit tests for the reporting-side modules: violation math, report
   formatting details, ranking corner cases, scatter denominators. *)

module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Violation = Alchemist.Violation
module Ranking = Alchemist.Ranking
module Report = Alchemist.Report
module Dep = Shadow.Dependence

let profile src = (Profiler.run_source ~fuel:20_000_000 src).Profiler.profile

let cid_of_loop p prog line =
  Option.get
    (Profile.cid_of_head_pc p (Parsim.Speedup.loop_head_at_line prog line))

(* --- violation math --------------------------------------------------------- *)

let test_violation_threshold_is_mean_duration () =
  (* Construct a loop whose iterations last ~D instructions, with one dep
     at distance < D (violating) and the paper's boundary semantics:
     Tdep <= Tdur violates, Tdep > Tdur does not. *)
  let src =
    {|int a;
      int b;
      int main() {
        for (int i = 0; i < 40; i++) {
          a = a + 1;           // adjacent-iteration chain: Tdep ~ D
          int s = 0;
          for (int k = 0; k < 25; k++) s += k;
          b = s;
        }
        return a + b;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let p = (Profiler.run ~fuel:20_000_000 prog).Profiler.profile in
  let cid = cid_of_loop p prog 4 in
  let cp = Profile.get p cid in
  let mean = Profile.mean_duration cp in
  Alcotest.(check bool) "mean duration positive" true (mean > 0);
  Profile.iter_edges cp
    (fun (k : Profile.edge_key) (s : Profile.edge_stats) ->
      if k.kind = Dep.Raw then
        Alcotest.(check bool)
          (Printf.sprintf "violation iff min<=mean (min=%d mean=%d)" s.min_tdep
             mean)
          (s.min_tdep <= mean)
          (Violation.is_violating cp s))

let test_total_violating_raw_counts_all_constructs () =
  let src =
    {|int x;
      int y;
      void f() { x = x + 1; }
      int main() {
        for (int i = 0; i < 30; i++) { f(); y = y + 1; }
        return x + y;
      }|}
  in
  let p = profile src in
  let total = Violation.total_violating_raw p in
  let by_hand =
    Array.fold_left
      (fun acc (cp : Profile.construct_profile) ->
        acc
        + Profile.fold_edges cp
            (fun (k : Profile.edge_key) s n ->
              if k.kind = Dep.Raw && Violation.is_violating cp s then n + 1
              else n)
            0)
      0 p.Profile.by_cid
  in
  Alcotest.(check int) "sum over constructs" by_hand total;
  Alcotest.(check bool) "nonzero" true (total > 0)

(* --- report formatting -------------------------------------------------------- *)

let test_report_marks_violations_with_star () =
  let src =
    {|int c;
      void tick() { int v = c; int s = 0; for (int k = 0; k < 30; k++) s += v; c = s & 7; }
      int main() { for (int i = 0; i < 20; i++) tick(); return c; }|}
  in
  let p = profile src in
  let text = Report.render ~top:8 p in
  Alcotest.(check bool) "has a violating star" true (Testutil.contains text "  *");
  Alcotest.(check bool) "names the conflict" true (Testutil.contains text "on c")

let test_report_hides_extra_edges () =
  (* max_edges truncation note appears when there are more edges. *)
  let src =
    {|int a[8];
      int g0; int g1; int g2; int g3; int g4;
      void w() { g0 = g1; g1 = g2; g2 = g3; g3 = g4; g4 = g0; a[0] = g0; }
      int main() { for (int i = 0; i < 10; i++) w(); return g4; }|}
  in
  let p = profile src in
  let prog = p.Profile.prog in
  let cid =
    Option.get (Profile.cid_of_head_pc p (Parsim.Speedup.proc_head prog "w"))
  in
  let text = Report.render_construct ~max_edges:2 p ~cid in
  Alcotest.(check bool) "truncation marker" true (Testutil.contains text "more")

let test_line_of_pc_preamble () =
  let p = profile "int main() { return 0; }" in
  Alcotest.(check int) "preamble has line 0" 0 (Report.line_of_pc p 0)

(* --- ranking corners ------------------------------------------------------------ *)

let test_rank_skips_never_executed () =
  let src =
    {|int g;
      void dead() { for (int i = 0; i < 9; i++) g += i; }
      int main() { if (0 > 1) dead(); return g; }|}
  in
  let p = profile src in
  let names = List.map (fun (e : Ranking.entry) -> e.name) (Ranking.rank p) in
  Alcotest.(check bool) "dead not ranked" false (List.mem "Method dead" names)

let test_rank_min_instructions_filter () =
  let src =
    {|int g;
      void tiny() { g++; }
      int main() { tiny(); for (int i = 0; i < 500; i++) g += i; return g; }|}
  in
  let p = profile src in
  let all = Ranking.rank p in
  let filtered = Ranking.rank ~min_instructions:1000 p in
  Alcotest.(check bool) "filter drops tiny constructs" true
    (List.length filtered < List.length all)

let test_remove_with_singletons_keeps_unrelated () =
  let src =
    {|int g;
      void unrelated() { g += 2; }
      void per_iter() { g += 1; }
      int main() {
        for (int i = 0; i < 10; i++) per_iter();
        for (int i = 0; i < 10; i++) unrelated();
        return g;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let p = (Profiler.run ~fuel:20_000_000 prog).Profiler.profile in
  let loop1 = cid_of_loop p prog 5 in
  let after = Ranking.remove_with_singletons p (Ranking.rank p) ~cid:loop1 in
  let names = List.map (fun (e : Ranking.entry) -> e.name) after in
  Alcotest.(check bool) "per_iter removed" false (List.mem "Method per_iter" names);
  Alcotest.(check bool) "unrelated kept" true (List.mem "Method unrelated" names)

(* --- scatter denominators -------------------------------------------------------- *)

let test_scatter_norm_size_of_top_construct () =
  let src =
    "int g; int main() { for (int i = 0; i < 300; i++) g += i; return g; }"
  in
  let p = profile src in
  match Alchemist.Scatter.points ~top:3 p with
  | top :: _ ->
      (* Method main encloses nearly the whole run. *)
      Alcotest.(check bool) "top point near 1.0" true (top.norm_size > 0.95)
  | [] -> Alcotest.fail "no points"

(* --- disasm / index stats ----------------------------------------------------------- *)

let test_disasm_annotates_constructs () =
  let prog =
    Vm.Compile.compile_source
      "int main() { for (int i = 0; i < 3; i++) { if (i) i += 0; } return 0; }"
  in
  let text = Vm.Disasm.to_string prog in
  Alcotest.(check bool) "loop construct noted" true (Testutil.contains text "Loop");
  Alcotest.(check bool) "cond construct noted" true (Testutil.contains text "Cond");
  Alcotest.(check bool) "line annotations" true (Testutil.contains text "[line")

let test_index_tree_stats_string () =
  let tree = Indexing.Index_tree.create () in
  ignore (Indexing.Index_tree.push tree ~label:3 ~is_func:true);
  let s = Indexing.Index_tree.stats tree in
  Alcotest.(check bool) "mentions depth" true (Testutil.contains s "depth=1")

let test_pp_construct_and_entry () =
  let prog =
    Vm.Compile.compile_source "int f() { return 1; } int main() { return f(); }"
  in
  let c =
    Array.to_list prog.Vm.Program.constructs
    |> List.find (fun (c : Vm.Program.construct_info) -> c.cname = "f")
  in
  Alcotest.(check string) "method rendering" "Method f"
    (Format.asprintf "%a" Vm.Program.pp_construct c)

let suite =
  [
    ("violation threshold", `Quick, test_violation_threshold_is_mean_duration);
    ("total violating raw", `Quick, test_total_violating_raw_counts_all_constructs);
    ("report stars violations", `Quick, test_report_marks_violations_with_star);
    ("report truncates edges", `Quick, test_report_hides_extra_edges);
    ("line of preamble pc", `Quick, test_line_of_pc_preamble);
    ("rank skips dead code", `Quick, test_rank_skips_never_executed);
    ("rank min-instructions filter", `Quick, test_rank_min_instructions_filter);
    ("singleton removal keeps unrelated", `Quick, test_remove_with_singletons_keeps_unrelated);
    ("scatter top norm size", `Quick, test_scatter_norm_size_of_top_construct);
    ("disasm annotates constructs", `Quick, test_disasm_annotates_constructs);
    ("index tree stats", `Quick, test_index_tree_stats_string);
    ("pp construct", `Quick, test_pp_construct_and_entry);
  ]
