(* The sharded (-j N) driver: the domain pool itself, byte-identity of
   sharded vs sequential profiling over the whole registry, and the
   algebraic properties of Profile.merge (associativity, commutativity)
   that make shard combination order-insensitive. *)

module W = Workloads.Workload
module Parallel = Driver.Parallel
module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Pio = Alchemist.Profile_io

let fuel = 50_000_000

(* --- the domain pool ---------------------------------------------------- *)

let test_map_results () =
  let xs = Array.init 100 (fun i -> i) in
  let ys = Parallel.map ~jobs:4 (fun i -> (i * i) + 1) xs in
  Alcotest.(check (array int))
    "map computes every element"
    (Array.map (fun i -> (i * i) + 1) xs)
    ys

let test_map_uneven () =
  (* items of wildly different cost still all complete (work dealing) *)
  let xs = Array.init 20 (fun i -> i) in
  let ys =
    Parallel.map ~jobs:3
      (fun i ->
        let n = if i = 0 then 200_000 else 100 in
        let acc = ref 0 in
        for k = 1 to n do
          acc := !acc + k
        done;
        !acc + i)
      xs
  in
  Alcotest.(check int) "expensive item done" (100_000 * 200_001 + 0) ys.(0);
  Alcotest.(check int) "cheap item done" (50 * 101 + 19) ys.(19)

exception Boom of int

let test_map_propagates_exception () =
  let xs = Array.init 32 (fun i -> i) in
  match Parallel.map ~jobs:4 (fun i -> if i = 17 then raise (Boom i) else i) xs with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Boom 17 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_map_cancels_on_failure () =
  (* A poisoned item must stop the pool from draining the whole array:
     workers re-check the cancellation flag before claiming work, so only
     items already in flight when the poison fires still run. *)
  let n = 20_000 in
  let executed = Atomic.make 0 in
  let xs = Array.init n (fun i -> i) in
  (match
     Parallel.map ~jobs:2
       (fun i ->
         if i = 0 then raise (Boom 0);
         ignore (Atomic.fetch_and_add executed 1);
         (* keep each item non-trivial so the queue drains slowly *)
         let acc = ref 0 in
         for k = 1 to 200 do
           acc := !acc + k
         done;
         !acc)
       xs
   with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 0 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  let ran = Atomic.get executed in
  Alcotest.(check bool)
    (Printf.sprintf "cancellation kept most of the array unrun (ran %d/%d)"
       ran n)
    true
    (ran < n / 2)

(* --- sharded runs are byte-identical to sequential ones ------------------ *)

let test_registry_byte_identical () =
  let scale_of (w : W.t) = w.test_scale in
  let seq = Parallel.profile_registry ~jobs:1 ~fuel ~scale_of () in
  let par = Parallel.profile_registry ~jobs:4 ~fuel ~scale_of () in
  Alcotest.(check int) "same workload count" (List.length seq)
    (List.length par);
  List.iter2
    (fun ((w : W.t), (a : Profiler.result)) ((w' : W.t), (b : Profiler.result)) ->
      Alcotest.(check string) "same order" w.name w'.name;
      Alcotest.(check bool)
        (Printf.sprintf "%s: -j4 profile byte-identical to -j1" w.name)
        true
        (Pio.to_string a.Profiler.profile = Pio.to_string b.Profiler.profile))
    seq par

(* --- input families: shard over inputs of one program -------------------- *)

(* Input lives in initialized global data, so variants share code and
   their profiles merge (cf. test_profile_io.ml). *)
let family_src mode =
  Printf.sprintf
    {|int mode = %d;
      int acc;
      int out[32];
      int step(int i) {
        int s = 0;
        for (int k = 0; k < 20; k++) s += i + k;
        if (mode > 1) {
          acc += s;
        }
        if (mode > 3) {
          out[0] = out[0] + s;
        }
        out[i & 31] = s;
        return s;
      }
      int main() {
        for (int i = 0; i < 10 + mode; i++) step(i);
        return acc;
      }|}
    mode

let family_prog mode = Vm.Compile.compile_source (family_src mode)

let test_profile_programs_matches_sequential () =
  let progs = List.map family_prog [ 0; 2; 4; 5 ] in
  let sharded = Parallel.profile_programs ~jobs:4 ~fuel progs in
  let sequential =
    List.map
      (fun prog -> (Profiler.run ~fuel prog).Profiler.profile)
      progs
    |> Parallel.merge_profiles
  in
  Alcotest.(check bool) "sharded merge = sequential merge" true
    (Pio.to_string sharded = Pio.to_string sequential)

(* --- merge is associative and commutative -------------------------------- *)

let family_profile =
  (* memoized: qcheck draws many triples from a small pool of modes *)
  let cache = Hashtbl.create 8 in
  fun mode ->
    match Hashtbl.find_opt cache mode with
    | Some p -> p
    | None ->
        let p = (Profiler.run ~fuel (family_prog mode)).Profiler.profile in
        Hashtbl.replace cache mode p;
        p

let mode_gen = QCheck.int_range 0 5

let test_merge_commutative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"merge commutative" ~count:30
       (QCheck.pair mode_gen mode_gen)
       (fun (i, j) ->
         let a = family_profile i and b = family_profile j in
         Pio.to_string (Profile.merge a b) = Pio.to_string (Profile.merge b a)))

let test_merge_associative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"merge associative" ~count:30
       (QCheck.triple mode_gen mode_gen mode_gen)
       (fun (i, j, k) ->
         let a = family_profile i
         and b = family_profile j
         and c = family_profile k in
         Pio.to_string (Profile.merge (Profile.merge a b) c)
         = Pio.to_string (Profile.merge a (Profile.merge b c))))

let suite =
  [
    ("map results", `Quick, test_map_results);
    ("map uneven costs", `Quick, test_map_uneven);
    ("map propagates exceptions", `Quick, test_map_propagates_exception);
    ("map cancels on failure", `Quick, test_map_cancels_on_failure);
    ("registry -j4 byte-identical", `Slow, test_registry_byte_identical);
    ("input shards match sequential", `Quick, test_profile_programs_matches_sequential);
    ("merge commutative", `Quick, test_merge_commutative);
    ("merge associative", `Quick, test_merge_associative);
  ]
