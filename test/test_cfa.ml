(* Tests for the control-flow analysis substrate: CFG construction,
   dominators, post-dominators, natural loops, and per-predicate ipdom. *)

module Program = Vm.Program
module Instr = Vm.Instr

let compile src = Vm.Compile.compile_source src

let cfg_of src fname =
  let prog = compile src in
  let f = Option.get (Program.find_func prog fname) in
  (prog, Cfa.Cfg.build prog f)

(* --- CFG shape ------------------------------------------------------------ *)

let test_cfg_straightline () =
  let _, cfg = cfg_of "int main() { int x = 1; int y = 2; return x + y; }" "main" in
  (* Straight-line code: entry block flows into the epilogue block (the
     explicit return jumps directly to the Ret). *)
  Alcotest.(check bool) "few blocks" true (Array.length cfg.Cfa.Cfg.blocks <= 3);
  Alcotest.(check bool) "exit exists" true (cfg.Cfa.Cfg.exit_bid >= 0)

let test_cfg_if_diamond () =
  let _, cfg =
    cfg_of "int main() { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }"
      "main"
  in
  let blocks = cfg.Cfa.Cfg.blocks in
  (* Find the block ending in the BrIf: it must have two successors. *)
  let br_block =
    Array.to_list blocks
    |> List.find (fun (b : Cfa.Cfg.block) ->
           match (compile "int main() { return 0; }").Program.code with
           | _ -> b.succs |> List.length = 2)
  in
  Alcotest.(check int) "diamond branch" 2 (List.length br_block.Cfa.Cfg.succs)

let test_cfg_all_pcs_covered () =
  let prog, cfg =
    cfg_of
      {| int main() {
           int s = 0;
           for (int i = 0; i < 4; i++) { if (i % 2) s += i; else s -= i; }
           while (s > 0) { s--; if (s == 1) break; }
           return s;
         } |}
      "main"
  in
  let f = cfg.Cfa.Cfg.func in
  ignore prog;
  for pc = f.Program.entry to f.Program.code_end - 1 do
    let b = Cfa.Cfg.block_at cfg pc in
    Alcotest.(check bool) "pc within its block" true
      (pc >= b.Cfa.Cfg.first && pc <= b.Cfa.Cfg.last)
  done

let test_cfg_succ_pred_symmetry () =
  let _, cfg =
    cfg_of
      "int main() { int s = 0; do { s++; if (s > 3) continue; s += 2; } while (s < 10); return s; }"
      "main"
  in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      List.iter
        (fun s ->
          let sb = cfg.Cfa.Cfg.blocks.(s) in
          Alcotest.(check bool)
            (Printf.sprintf "b%d -> b%d has back pred" b.bid s)
            true
            (List.mem b.bid sb.Cfa.Cfg.preds))
        b.Cfa.Cfg.succs)
    cfg.Cfa.Cfg.blocks

(* --- dominance -------------------------------------------------------------- *)

let test_dominators_diamond () =
  let _, cfg =
    cfg_of "int main() { int x = 0; if (x) { x = 1; } else { x = 2; } return x; }"
      "main"
  in
  let dom = Cfa.Dominance.of_cfg cfg in
  (* Entry dominates everything reachable. *)
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      if dom.Cfa.Dominance.idom.(b.bid) <> -1 then
        Alcotest.(check bool)
          (Printf.sprintf "entry dom b%d" b.bid)
          true
          (Cfa.Dominance.dominates dom cfg.Cfa.Cfg.entry_bid b.bid))
    cfg.Cfa.Cfg.blocks

let test_postdominators_exit () =
  let _, cfg =
    cfg_of
      "int main() { int s = 0; for (int i = 0; i < 3; i++) { if (i) s++; } return s; }"
      "main"
  in
  let pdom = Cfa.Dominance.postdom_of_cfg cfg in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      if pdom.Cfa.Dominance.idom.(b.bid) <> -1 then
        Alcotest.(check bool)
          (Printf.sprintf "exit pdoms b%d" b.bid)
          true
          (Cfa.Dominance.dominates pdom cfg.Cfa.Cfg.exit_bid b.bid))
    cfg.Cfa.Cfg.blocks

let test_dominates_reflexive_antisym () =
  let _, cfg =
    cfg_of "int main() { int x = 0; while (x < 5) { x++; } return x; }" "main"
  in
  let dom = Cfa.Dominance.of_cfg cfg in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      Alcotest.(check bool) "reflexive" true (Cfa.Dominance.dominates dom b.bid b.bid))
    cfg.Cfa.Cfg.blocks

(* --- loops ------------------------------------------------------------------ *)

let loops_of src =
  let _, cfg = cfg_of src "main" in
  let dom = Cfa.Dominance.of_cfg cfg in
  (cfg, Cfa.Loops.analyze cfg dom)

let test_single_loop () =
  let _, loops = loops_of "int main() { int i = 0; while (i < 9) i++; return i; }" in
  Alcotest.(check int) "one loop" 1 (Array.length loops.Cfa.Loops.loops)

let test_nested_loops () =
  let _, loops =
    loops_of
      "int main() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 3; j++) { s++; } } return s; }"
  in
  Alcotest.(check int) "two loops" 2 (Array.length loops.Cfa.Loops.loops);
  let max_depth = Array.fold_left max 0 loops.Cfa.Loops.depth in
  Alcotest.(check int) "nesting depth 2" 2 max_depth

let test_do_while_loop () =
  let _, loops = loops_of "int main() { int i = 0; do { i++; } while (i < 5); return i; }" in
  Alcotest.(check int) "one loop" 1 (Array.length loops.Cfa.Loops.loops)

let test_loop_with_break_continue () =
  let _, loops =
    loops_of
      "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; s += i; } return s; }"
  in
  Alcotest.(check int) "one loop" 1 (Array.length loops.Cfa.Loops.loops)

(* --- analysis: ipdom per predicate ------------------------------------------ *)

let test_ipdom_assigned () =
  let prog =
    compile
      {| int f(int n) {
           int s = 0;
           for (int i = 0; i < n; i++) {
             if (i % 3 == 0) { s += i; if (s > 50) break; }
             else { while (s % 2 == 0 && s > 0) s /= 2; }
           }
           do { s--; } while (s > 10);
           return s;
         }
         int main() { return f(40); } |}
  in
  let a = Cfa.Analysis.analyze prog in
  Array.iteri
    (fun pc instr ->
      if Instr.is_predicate instr then begin
        let ip = a.Cfa.Analysis.ipdom_of_pc.(pc) in
        Alcotest.(check bool) (Printf.sprintf "ipdom(%d) assigned" pc) true (ip >= 0);
        Alcotest.(check bool) (Printf.sprintf "ipdom(%d) <> pc" pc) true (ip <> pc)
      end
      else
        Alcotest.(check int)
          (Printf.sprintf "non-predicate %d has no ipdom" pc)
          (-1)
          a.Cfa.Analysis.ipdom_of_pc.(pc))
    prog.Program.code

let test_ipdom_while_is_exit () =
  (* For a while loop, the predicate's ipdom must be the first pc after the
     loop: executing it must close the last iteration. We verify at runtime:
     track that between the predicate's last execution and reaching the
     ipdom pc, the loop is done. Statically: ipdom pc > all body pcs. *)
  let prog = compile "int main() { int i = 0; while (i < 3) { i++; } return i; }" in
  let a = Cfa.Analysis.analyze prog in
  let br_pc = ref (-1) in
  Array.iteri
    (fun pc i -> if Instr.is_predicate i then br_pc := pc)
    prog.Program.code;
  let ip = a.Cfa.Analysis.ipdom_of_pc.(!br_pc) in
  Alcotest.(check bool) "ipdom after loop body" true (ip > !br_pc)

let test_validate_clean () =
  let srcs =
    [
      "int main() { return 0; }";
      "int main() { int s = 0; for (int i = 0; i < 9; i++) if (i % 2) s++; return s; }";
      "int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); } int main() { return f(10); }";
      "int main() { int i = 0; while (1) { i++; if (i > 4) break; } return i; }";
      "int main() { int s = 0; for (int i = 0; i < 5; i++) { if (i == 2) continue; if (i == 4) return s; s += i; } return -1; }";
    ]
  in
  List.iter
    (fun src ->
      let prog = compile src in
      let a = Cfa.Analysis.analyze prog in
      Alcotest.(check (list string)) "no discrepancies" [] (Cfa.Analysis.validate prog a))
    srcs

(* Runtime cross-check: simulate the indexing stack using ipdom facts and
   verify it is balanced (every pushed predicate is popped exactly once,
   LIFO) on a gnarly control-flow program. *)
let test_ipdom_runtime_balance () =
  let src =
    {| int g;
       int work(int n) {
         int s = 0;
         for (int i = 0; i < n; i++) {
           if (i % 4 == 0) { s += i; if (s > 30) break; }
           else if (i % 4 == 1) { continue; }
           else { int j = 0; while (j < i) { j++; if (j == 3) break; } s += j; }
         }
         return s;
       }
       int main() {
         for (int k = 0; k < 6; k++) g += work(k + 4);
         return g;
       } |}
  in
  let prog = compile src in
  let a = Cfa.Analysis.analyze prog in
  let stack = ref [] in
  let pushes = ref 0 and pops = ref 0 in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr =
        (fun ~pc ->
          let rec pop_matching () =
            match !stack with
            | `Pred p :: rest when a.Cfa.Analysis.ipdom_of_pc.(p) = pc ->
                stack := rest;
                incr pops;
                pop_matching ()
            | _ -> ()
          in
          pop_matching ());
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          match kind with
          | Instr.BrSc -> ()
          | Instr.BrIf ->
              stack := `Pred pc :: !stack;
              incr pushes
          | Instr.BrLoop -> (
              (match !stack with
              | `Pred p :: rest when p = pc ->
                  stack := rest;
                  incr pops
              | _ -> ());
              if not taken then begin
                stack := `Pred pc :: !stack;
                incr pushes
              end));
      on_call = (fun ~pc:_ ~fid -> stack := `Func fid :: !stack);
      on_ret =
        (fun ~pc:_ ~fid ->
          match !stack with
          | `Func f :: rest when f = fid -> stack := rest
          | `Func f :: _ ->
              Alcotest.failf "on_ret fid mismatch: stack has %d, ret %d" f fid
          | `Pred p :: _ ->
              Alcotest.failf "on_ret with pending predicate at pc %d" p
          | [] -> Alcotest.fail "on_ret on empty stack");
    }
  in
  ignore (Vm.Machine.run_hooked hooks prog);
  Alcotest.(check int) "balanced" !pops !pushes;
  Alcotest.(check (list string)) "stack empty at halt"
    []
    (List.map (function `Pred p -> Printf.sprintf "pred@%d" p | `Func f -> Printf.sprintf "func%d" f) !stack)

(* --- edge-case CFGs -------------------------------------------------------- *)

let test_unreachable_block_after_break () =
  (* The statements after the unconditional [break] form a block no path
     reaches: the dominator computation must report it unreachable (not
     dominated by the entry), and downstream analyses must not choke. *)
  let prog, cfg =
    cfg_of
      {| int g;
         int main() {
           int s = 0;
           while (s < 10) { break; g = 5; s = g; }
           return s;
         } |}
      "main"
  in
  let dom = Cfa.Dominance.of_cfg cfg in
  let dead_store =
    Array.to_list
      (Array.mapi (fun pc i -> (pc, i)) prog.Program.code)
    |> List.find_map (fun (pc, i) ->
           match i with Instr.StoreGlobal _ -> Some pc | _ -> None)
    |> Option.get
  in
  let dead_bid = (Cfa.Cfg.block_at cfg dead_store).Cfa.Cfg.bid in
  Alcotest.(check int) "no idom for the unreachable block" (-1)
    dom.Cfa.Dominance.idom.(dead_bid);
  Alcotest.(check bool) "entry does not dominate it" false
    (Cfa.Dominance.dominates dom cfg.Cfa.Cfg.entry_bid dead_bid);
  Alcotest.(check bool) "it still dominates itself" true
    (Cfa.Dominance.dominates dom dead_bid dead_bid);
  (* Loop analysis and the profiler-facing validation stay clean. *)
  ignore (Cfa.Loops.analyze cfg dom);
  Alcotest.(check (list string)) "validate clean" []
    (Cfa.Analysis.validate prog (Cfa.Analysis.analyze prog))

let test_loops_sharing_a_header_merge () =
  (* [continue] adds a second back edge to the while header: two natural
     loops with one header, which must merge into a single loop (body
     depth 1, two back edges) rather than double-counting the nesting. *)
  let prog, cfg =
    cfg_of
      {| int g;
         int main() {
           int s = 0;
           while (s < 20) {
             s = s + 1;
             if (s > 2) { continue; }
             g = g + s;
           }
           return g;
         } |}
      "main"
  in
  ignore prog;
  let loops = Cfa.Loops.analyze cfg (Cfa.Dominance.of_cfg cfg) in
  let with_two =
    Array.to_list loops.Cfa.Loops.loops
    |> List.filter (fun (l : Cfa.Loops.loop) ->
           List.length l.Cfa.Loops.back_edges >= 2)
  in
  (match with_two with
  | [ l ] ->
      List.iter
        (fun bid ->
          Alcotest.(check int)
            (Printf.sprintf "block %d depth" bid)
            1
            loops.Cfa.Loops.depth.(bid))
        l.Cfa.Loops.body
  | _ -> Alcotest.failf "expected one merged loop, got %d" (List.length with_two));
  Alcotest.(check int) "single loop overall" 1
    (Array.length loops.Cfa.Loops.loops)

let test_ipdom_of_early_return_predicate_is_epilogue () =
  (* When the then-arm returns, the only execution point that closes the
     conditional on both paths is the function epilogue — rule (5) must
     pop the construct there, so the ipdom falls back to the [Ret]. *)
  let prog = compile "int main() { int x = 1; if (x) { return 2; } return 3; }" in
  let f = Option.get (Program.find_func prog "main") in
  let a = Cfa.Analysis.analyze prog in
  let brif =
    let found = ref (-1) in
    Array.iteri
      (fun pc i ->
        match i with
        | Instr.Br { kind = Instr.BrIf; _ } -> if !found < 0 then found := pc
        | _ -> ())
      prog.Program.code;
    !found
  in
  Alcotest.(check bool) "program has the predicate" true (brif >= 0);
  Alcotest.(check int) "ipdom is the epilogue"
    f.Program.epilogue
    a.Cfa.Analysis.ipdom_of_pc.(brif);
  Alcotest.(check (list string)) "validate clean" []
    (Cfa.Analysis.validate prog a)

let suite =
  [
    ("cfg straightline", `Quick, test_cfg_straightline);
    ("cfg if diamond", `Quick, test_cfg_if_diamond);
    ("cfg pcs covered", `Quick, test_cfg_all_pcs_covered);
    ("cfg succ/pred symmetry", `Quick, test_cfg_succ_pred_symmetry);
    ("dominators diamond", `Quick, test_dominators_diamond);
    ("postdominators exit", `Quick, test_postdominators_exit);
    ("dominates reflexive", `Quick, test_dominates_reflexive_antisym);
    ("single loop", `Quick, test_single_loop);
    ("nested loops", `Quick, test_nested_loops);
    ("do-while loop", `Quick, test_do_while_loop);
    ("loop with break/continue", `Quick, test_loop_with_break_continue);
    ("ipdom assigned", `Quick, test_ipdom_assigned);
    ("ipdom while is exit", `Quick, test_ipdom_while_is_exit);
    ("validate clean", `Quick, test_validate_clean);
    ("ipdom runtime balance", `Quick, test_ipdom_runtime_balance);
    ("unreachable block", `Quick, test_unreachable_block_after_break);
    ("loops sharing a header", `Quick, test_loops_sharing_a_header_merge);
    ("early-return ipdom is epilogue", `Quick, test_ipdom_of_early_return_predicate_is_epilogue);
  ]
