(* Property tests over randomly generated Mini-C programs (Testgen):
   frontend round trips, differential execution, profiler invariants,
   cross-validation against the flat baseline, and simulator sanity. *)

module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile

let check ?(count = 60) name prop =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name ~count Testgen.arbitrary_program prop)

let fuel = 3_000_000

(* 1. The generator only produces well-typed programs. *)
let test_generated_welltyped () =
  check "generated programs typecheck" (fun p ->
      match Minic.Typecheck.check_result p with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "ill-typed: %s" msg)

(* 2. Pretty-printing round trips through the parser. *)
let test_pretty_roundtrip () =
  check "pretty |> parse |> pretty is stable" (fun p ->
      let printed = Minic.Pretty.program_to_string p in
      match Minic.Diag.wrap (fun () -> Minic.Parser.parse printed) with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s" msg
      | Ok p2 -> Minic.Pretty.program_to_string p2 = printed)

(* 3. Compilation is deterministic. *)
let test_compile_deterministic () =
  check ~count:30 "compilation deterministic" (fun p ->
      let c1 = Vm.Compile.compile p and c2 = Vm.Compile.compile p in
      c1.Vm.Program.code = c2.Vm.Program.code
      && c1.Vm.Program.cid_of_pc = c2.Vm.Program.cid_of_pc)

(* 4. The CFA post-dominator facts validate on every generated program. *)
let test_cfa_validates () =
  check ~count:40 "CFA validates" (fun p ->
      let prog = Vm.Compile.compile p in
      Cfa.Analysis.validate prog (Cfa.Analysis.analyze prog) = [])

(* 5. Differential: hooked and plain execution agree exactly. *)
let test_differential_execution () =
  check "plain vs hooked execution" (fun p ->
      let prog = Vm.Compile.compile p in
      match Vm.Machine.run ~fuel prog with
      | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
      | r1 ->
          let r2 = Vm.Machine.run_hooked ~fuel Vm.Hooks.noop prog in
          r1.Vm.Machine.exit_value = r2.Vm.Machine.exit_value
          && r1.Vm.Machine.output = r2.Vm.Machine.output
          && r1.Vm.Machine.instructions = r2.Vm.Machine.instructions)

(* 6. The profiler never force-pops, never changes semantics, and its
   per-construct totals are consistent with the run. *)
let test_profiler_invariants () =
  check "profiler invariants" (fun p ->
      let prog = Vm.Compile.compile p in
      match Vm.Machine.run ~fuel prog with
      | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
      | plain ->
          let r = Profiler.run ~fuel prog in
          let ok = ref true in
          let fail fmt =
            Printf.ksprintf
              (fun m ->
                ok := false;
                print_endline ("invariant: " ^ m))
              fmt
          in
          if r.Profiler.run.Vm.Machine.output <> plain.Vm.Machine.output then
            fail "profiled run changed output";
          if r.Profiler.stats.Profiler.forced_pops <> 0 then
            fail "forced pops: %d" r.Profiler.stats.Profiler.forced_pops;
          let instr = r.Profiler.stats.Profiler.instructions in
          Array.iter
            (fun (cp : Profile.construct_profile) ->
              if cp.Profile.ttotal > instr then
                fail "construct ttotal %d exceeds run %d" cp.Profile.ttotal instr;
              if cp.Profile.nesting <> 0 then
                fail "nonzero nesting counter at end";
              Profile.iter_edges cp
                (fun (k : Profile.edge_key) (s : Profile.edge_stats) ->
                  if s.Profile.min_tdep < 1 then
                    fail "nonpositive Tdep %d" s.Profile.min_tdep;
                  if s.Profile.count < 1 then fail "zero count";
                  if s.Profile.addrs = [] then fail "edge without address";
                  ignore k))
            r.Profiler.profile.Profile.by_cid;
          !ok)

(* 7. Cross-validation: every dependence edge Alchemist attributes to some
   construct is also seen by the construct-blind flat profiler, with a
   minimum distance no larger than Alchemist's (the flat profiler sees
   every dynamic occurrence; Alchemist only the construct-crossing ones). *)
let test_flat_subsumes () =
  check ~count:40 "flat profiler subsumes alchemist edges" (fun p ->
      let prog = Vm.Compile.compile p in
      match Vm.Machine.run ~fuel prog with
      | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
      | _ ->
          let r = Profiler.run ~fuel prog in
          let flat = Baselines.Flat_profiler.run ~fuel prog in
          let flat_min = Hashtbl.create 64 in
          List.iter
            (fun (e : Baselines.Flat_profiler.edge) ->
              Hashtbl.replace flat_min (e.head_pc, e.tail_pc, e.kind)
                e.min_distance)
            flat.Baselines.Flat_profiler.edges;
          let ok = ref true in
          Array.iter
            (fun (cp : Profile.construct_profile) ->
              Profile.iter_edges cp
                (fun (k : Profile.edge_key) (s : Profile.edge_stats) ->
                  let kind =
                    match k.kind with
                    | Shadow.Dependence.Raw -> `Raw
                    | Shadow.Dependence.War -> `War
                    | Shadow.Dependence.Waw -> `Waw
                  in
                  match Hashtbl.find_opt flat_min (k.head_pc, k.tail_pc, kind) with
                  | None ->
                      ok := false;
                      Printf.printf "edge %d->%d missing from flat profile\n"
                        k.head_pc k.tail_pc
                  | Some m ->
                      if m > s.Profile.min_tdep then begin
                        ok := false;
                        Printf.printf "flat min %d > alchemist min %d\n" m
                          s.Profile.min_tdep
                      end))
            r.Profiler.profile.Profile.by_cid;
          !ok)

(* 8. Simulator sanity on random programs: parallelizing any loop of main
   with zero overheads never beats the core count and never loses more
   than the join bookkeeping. *)
let test_parsim_sanity () =
  check ~count:40 "parsim bounds" (fun p ->
      let prog = Vm.Compile.compile p in
      match Vm.Machine.run ~fuel prog with
      | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
      | _ -> (
          (* first loop in main, if any *)
          let main = Option.get (Vm.Program.find_func prog "main") in
          let loop =
            Array.to_list prog.Vm.Program.constructs
            |> List.find_opt (fun (c : Vm.Program.construct_info) ->
                   c.kind = Vm.Program.CLoop && c.fid = main.Vm.Program.fid)
          in
          match loop with
          | None -> QCheck.assume_fail ()
          | Some c ->
              let g = Parsim.Task_graph.collect ~fuel prog ~head_pc:c.head_pc in
              let s =
                Parsim.Scheduler.simulate
                  ~config:
                    { Parsim.Scheduler.cores = 4; spawn_overhead = 0; join_overhead = 0 }
                  g
              in
              let seq = s.Parsim.Scheduler.seq_time in
              let par = s.Parsim.Scheduler.par_time in
              if par > seq + 1 then
                QCheck.Test.fail_reportf
                  "zero-overhead parallel run slower than sequential: %d > %d"
                  par seq
              else if s.Parsim.Scheduler.speedup > 5.01 then
                QCheck.Test.fail_reportf "speedup beyond backbone+4 workers"
              else true))

(* 9. The indexing stack's pool stays bounded relative to the dynamic
   construct count even at tiny capacity (Theorem 1 in practice). *)
let test_pool_bounded () =
  check ~count:30 "pool bounded at small capacity" (fun p ->
      let prog = Vm.Compile.compile p in
      match Vm.Machine.run ~fuel prog with
      | exception Vm.Machine.Trap _ -> QCheck.assume_fail ()
      | _ ->
          let r = Profiler.run ~fuel ~pool_capacity:8 prog in
          r.Profiler.stats.Profiler.pool_allocated
          <= max 64 (r.Profiler.stats.Profiler.dynamic_constructs / 4))

let suite =
  [
    ("generated programs typecheck", `Slow, test_generated_welltyped);
    ("pretty roundtrip (random)", `Slow, test_pretty_roundtrip);
    ("compile deterministic", `Slow, test_compile_deterministic);
    ("cfa validates (random)", `Slow, test_cfa_validates);
    ("differential execution", `Slow, test_differential_execution);
    ("profiler invariants", `Slow, test_profiler_invariants);
    ("flat subsumes alchemist", `Slow, test_flat_subsumes);
    ("parsim bounds", `Slow, test_parsim_sanity);
    ("pool bounded", `Slow, test_pool_bounded);
  ]
