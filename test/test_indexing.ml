(* Tests for the execution-indexing machinery: construct pool, index tree,
   and the Fig. 5 rules driven by real executions (Fig. 4 examples). *)

module Node = Indexing.Node
module Pool = Indexing.Construct_pool
module Tree = Indexing.Index_tree
module Rules = Indexing.Rules

(* --- construct pool -------------------------------------------------------- *)

let test_pool_reuse () =
  let pool = Pool.create ~capacity:1 () in
  (* A completed instance [10,20) is retirable at time >= 30. *)
  let n = Pool.acquire pool ~now:0 in
  n.Node.tenter <- 10;
  n.Node.texit <- 20;
  Pool.release pool n;
  let n2 = Pool.acquire pool ~now:25 in
  Alcotest.(check bool) "not recycled before window" true (n2 != n);
  Pool.release pool n2;
  (* note: n2 is fresh (tenter=texit=0 from make? acquired node reused fields) *)
  let n3 = Pool.acquire pool ~now:31 in
  Alcotest.(check bool) "head recycled after window" true (n3 == n)

let test_pool_counts () =
  let pool = Pool.create ~capacity:2 () in
  let a = Pool.acquire pool ~now:0 in
  let b = Pool.acquire pool ~now:0 in
  Alcotest.(check int) "allocated" 2 (Pool.allocated pool);
  a.Node.tenter <- 0;
  a.Node.texit <- 1;
  Pool.release pool a;
  b.Node.tenter <- 0;
  b.Node.texit <- 1;
  Pool.release pool b;
  let _ = Pool.acquire pool ~now:100 in
  Alcotest.(check int) "reused" 1 (Pool.reused pool);
  Alcotest.(check int) "no new allocation" 2 (Pool.allocated pool)

(* Staleness safety: a recycled node can never satisfy [covers] for a
   timestamp recorded during its previous lifetime. *)
let test_pool_staleness_qcheck () =
  let gen =
    QCheck.Gen.(
      tup3 (int_range 0 1000) (int_range 1 1000) (int_range 0 2000))
  in
  let prop (tenter, dur, gap) =
    let texit = tenter + dur in
    let pool = Pool.create ~capacity:1 () in
    let n = Pool.acquire pool ~now:tenter in
    n.Node.tenter <- tenter;
    n.Node.texit <- texit;
    Pool.release pool n;
    let now = texit + gap in
    let n2 = Pool.acquire pool ~now in
    if n2 == n then begin
      (* Simulate reuse stamping as Index_tree.push does. *)
      n.Node.tenter <- now;
      n.Node.texit <- 0;
      (* No old timestamp may still fall in the window. *)
      let ok = ref true in
      for th = tenter to texit - 1 do
        if Node.covers n th then ok := false
      done;
      !ok
    end
    else true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"recycled node never covers old timestamps"
       ~count:500 (QCheck.make gen) prop)

(* --- index tree ------------------------------------------------------------ *)

let test_tree_push_pop () =
  let popped = ref [] in
  let t = Tree.create ~on_pop:(fun c -> popped := c.Node.label :: !popped) () in
  Tree.tick t;
  let _a = Tree.push t ~label:1 ~is_func:true in
  Tree.tick t;
  let b = Tree.push t ~label:2 ~is_func:false in
  Alcotest.(check (option int)) "top is b" (Some 2)
    (Option.map (fun c -> c.Node.label) (Tree.top t));
  Alcotest.(check (list int)) "index" [ 1; 2 ] (Tree.index_of_top t);
  Alcotest.(check bool) "parent link" true
    (match b.Node.parent with Some p -> p.Node.label = 1 | None -> false);
  Tree.tick t;
  let b' = Tree.pop t in
  Alcotest.(check bool) "pop returns top" true (b == b');
  Alcotest.(check int) "texit stamped" 3 b'.Node.texit;
  Alcotest.(check int) "tenter stamped" 2 b'.Node.tenter;
  ignore (Tree.pop t);
  Alcotest.(check (list int)) "pop order" [ 1; 2 ] !popped;
  Alcotest.(check int) "empty" 0 (Tree.depth t)

let test_tree_pop_through () =
  let t = Tree.create () in
  let _f = Tree.push t ~label:100 ~is_func:true in
  let _l = Tree.push t ~label:5 ~is_func:false in
  let _g = Tree.push t ~label:7 ~is_func:false in
  (* pop_through for label 5 pops 7 then 5. *)
  Alcotest.(check bool) "found" true (Tree.pop_through t ~label:5);
  Alcotest.(check int) "only func left" 1 (Tree.depth t);
  (* absent label: no pops *)
  Alcotest.(check bool) "not found" false (Tree.pop_through t ~label:5);
  Alcotest.(check int) "depth unchanged" 1 (Tree.depth t);
  (* never crosses a function boundary *)
  let _l2 = Tree.push t ~label:9 ~is_func:false in
  let _f2 = Tree.push t ~label:101 ~is_func:true in
  Alcotest.(check bool) "stops at function" false (Tree.pop_through t ~label:9);
  Alcotest.(check int) "depth unchanged 2" 3 (Tree.depth t)

let test_tree_pop_empty () =
  let t = Tree.create () in
  match Tree.pop t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Fig. 4 style examples, via real executions -------------------------- *)

(* Build an execution-index event trace (pushes with their index paths) for
   a program, by replaying the hooks through Rules. *)
let trace_indices src =
  let prog = Vm.Compile.compile_source src in
  let a = Cfa.Analysis.analyze prog in
  let tree = Tree.create () in
  let rules = Rules.create ~ipdom:a.Cfa.Analysis.ipdom_of_pc ~tree in
  let events = ref [] in
  let name_of label =
    match Vm.Program.construct_at prog label with
    | Some c -> (
        match c.Vm.Program.kind with
        | Vm.Program.CProc -> c.Vm.Program.cname
        | Vm.Program.CLoop -> Printf.sprintf "L%d" c.Vm.Program.loc.Minic.Srcloc.line
        | Vm.Program.CCond -> Printf.sprintf "I%d" c.Vm.Program.loc.Minic.Srcloc.line)
    | None -> Printf.sprintf "pc%d" label
  in
  let snapshot () = List.map name_of (Tree.index_of_top tree) in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr = (fun ~pc -> Rules.on_instr rules ~pc);
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          Rules.on_branch rules ~pc ~kind ~taken;
          if kind <> Vm.Instr.BrSc then events := snapshot () :: !events);
      on_call =
        (fun ~pc ~fid:_ ->
          Rules.on_call rules ~entry_pc:pc;
          events := snapshot () :: !events);
      on_ret = (fun ~pc:_ ~fid:_ -> Rules.on_ret rules);
    }
  in
  ignore (Vm.Machine.run_hooked hooks prog);
  Rules.finish rules;
  (List.rev !events, Rules.forced_pops rules, Tree.depth tree)

(* Fig. 4(a): procedure nesting. *)
let test_fig4a_procedures () =
  let src =
    {| void B() { int s2 = 0; }
       void A() { int s1 = 0; B(); }
       int main() { A(); return 0; } |}
  in
  let indices, forced, depth = trace_indices src in
  Alcotest.(check int) "no forced pops" 0 forced;
  Alcotest.(check int) "stack drained" 0 depth;
  Alcotest.(check bool) "B nested in A" true
    (List.mem [ "main"; "A"; "B" ] indices)

(* Fig. 4(b): nested conditionals — the inner if's index is [C; outer]. *)
let test_fig4b_conditionals () =
  let src =
    {| int main() {
         int x = 1;
         if (x) {
           int s3 = 0;
           if (x) { int s4 = 0; }
         }
         return 0;
       } |}
  in
  let indices, forced, _ = trace_indices src in
  Alcotest.(check int) "no forced pops" 0 forced;
  (* Inner predicate pushes while outer construct is open: index length 3
     (main, outer if, inner if). *)
  Alcotest.(check bool) "inner if nested in outer" true
    (List.exists (fun ix -> List.length ix = 3 && List.hd ix = "main") indices)

(* Fig. 4(c): loop iterations are siblings — when the inner loop runs
   twice within one outer iteration, both pushes see the same index path
   (outer iteration), not increasing depth. *)
let test_fig4c_loop_iterations () =
  let src =
    {| int main() {
         int s = 0;
         for (int i = 0; i < 2; i++) {
           for (int j = 0; j < 2; j++) { s++; }
         }
         return s;
       } |}
  in
  let indices, forced, _ = trace_indices src in
  Alcotest.(check int) "no forced pops" 0 forced;
  (* All inner-loop iteration snapshots have depth exactly 3:
     [main; outer-iter; inner-iter] — siblings, never 4. *)
  let inner = List.filter (fun ix -> List.length ix >= 3) indices in
  Alcotest.(check bool) "inner iterations exist" true (inner <> []);
  List.iter
    (fun ix ->
      Alcotest.(check int) "iterations are siblings, not nested" 3
        (List.length ix))
    inner

(* Break guards must not make later iterations nest deeper (the rule-4
   unwind): depth at each loop-iteration push stays constant. *)
let test_break_guard_iterations_stay_siblings () =
  let src =
    {| int main() {
         int s = 0;
         for (int i = 0; i < 20; i++) {
           if (i == 50) break;   // never taken, but ipdom is the loop exit
           s += i;
         }
         return s;
       } |}
  in
  let indices, forced, depth = trace_indices src in
  Alcotest.(check int) "no forced pops" 0 forced;
  Alcotest.(check int) "drained" 0 depth;
  let max_depth = List.fold_left (fun m ix -> max m (List.length ix)) 0 indices in
  (* main + loop iteration + guard if = 3; without the unwind this would
     grow to ~22. *)
  Alcotest.(check int) "bounded depth" 3 max_depth

let test_continue_guard () =
  let src =
    {| int main() {
         int s = 0;
         for (int i = 0; i < 10; i++) {
           if (i % 2) continue;
           s += i;
         }
         return s;
       } |}
  in
  let indices, forced, depth = trace_indices src in
  Alcotest.(check int) "no forced pops" 0 forced;
  Alcotest.(check int) "drained" 0 depth;
  let max_depth = List.fold_left (fun m ix -> max m (List.length ix)) 0 indices in
  Alcotest.(check int) "bounded depth" 3 max_depth

let test_return_inside_loop () =
  let src =
    {| int find(int a[], int n, int v) {
         for (int i = 0; i < n; i++) {
           if (a[i] == v) return i;
         }
         return -1;
       }
       int a[8];
       int main() {
         for (int i = 0; i < 8; i++) a[i] = i * 3;
         return find(a, 8, 12) + find(a, 8, 99);
       } |}
  in
  let _, forced, depth = trace_indices src in
  Alcotest.(check int) "drained" 0 depth;
  (* The early return jumps over the loop exit; on_ret pops the pending
     loop/if constructs. Those are exactly the "forced" pops. *)
  Alcotest.(check bool) "forced pops bounded" true (forced <= 4)

(* Pool bound (Theorem 1 in practice): a long loop creates millions of
   dynamic instances but the tree allocates O(1) nodes. *)
let test_pool_bound_long_loop () =
  let src =
    {| int g;
       int main() {
         for (int i = 0; i < 20000; i++) { g += i; if (g > 1000000) g = 0; }
         return g;
       } |}
  in
  let prog = Vm.Compile.compile_source src in
  let a = Cfa.Analysis.analyze prog in
  let pops = ref 0 in
  let tree = Tree.create ~pool_capacity:16 ~on_pop:(fun _ -> incr pops) () in
  let rules = Rules.create ~ipdom:a.Cfa.Analysis.ipdom_of_pc ~tree in
  let hooks =
    {
      Vm.Hooks.noop with
      on_instr = (fun ~pc -> Rules.on_instr rules ~pc);
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken -> Rules.on_branch rules ~pc ~kind ~taken);
      on_call = (fun ~pc ~fid:_ -> Rules.on_call rules ~entry_pc:pc);
      on_ret = (fun ~pc:_ ~fid:_ -> Rules.on_ret rules);
    }
  in
  ignore (Vm.Machine.run_hooked hooks prog);
  Rules.finish rules;
  Alcotest.(check bool) "many dynamic instances" true (!pops > 20_000);
  Alcotest.(check bool)
    (Printf.sprintf "bounded allocation (%d nodes)" (Tree.pool_allocated tree))
    true
    (Tree.pool_allocated tree < 64)

(* pool.scan_len must have one observation per acquire — including the
   below-capacity fresh-allocation path, which BENCH_2 showed recording
   nothing — and a nonzero sum once churn forces actual queue scans. *)
let test_pool_scan_len_telemetry () =
  let reg = Obs.Registry.create () in
  let pool = Pool.create ~capacity:2 () in
  Pool.register_obs pool reg;
  let dist () =
    match Obs.find (Obs.Registry.snapshot reg) "pool.scan_len" with
    | Some (Obs.Dist { count; sum; _ }) -> (count, sum)
    | _ -> Alcotest.fail "pool.scan_len not registered"
  in
  (* Two below-capacity acquires: observed as zero-length scans. *)
  let a = Pool.acquire pool ~now:0 in
  let b = Pool.acquire pool ~now:0 in
  Alcotest.(check (pair int int)) "fresh path observed" (2, 0) (dist ());
  (* Churn at capacity: instances [0,10) only retire at now >= 20, so the
     next acquire scans and rotates both entries without reusing. *)
  a.Node.tenter <- 0;
  a.Node.texit <- 10;
  Pool.release pool a;
  b.Node.tenter <- 0;
  b.Node.texit <- 10;
  Pool.release pool b;
  (* now=12 < 20: neither is retirable; scan walks both and allocates. *)
  let _ = Pool.acquire pool ~now:12 in
  let count, sum = dist () in
  Alcotest.(check int) "scan observed per acquire" 3 count;
  Alcotest.(check int) "two entries examined" 2 sum;
  (* now=25 >= 20: head is retirable after examining one entry. *)
  let _ = Pool.acquire pool ~now:25 in
  let count', sum' = dist () in
  Alcotest.(check int) "reuse observed" 4 count';
  Alcotest.(check int) "one more entry examined" 3 sum';
  Alcotest.(check int) "reused" 1 (Pool.reused pool)

(* End-to-end churn through the profiler: a tiny pool capacity on a
   loop-heavy program must take the scan path and report it. *)
let test_pool_churn_profiled () =
  let src =
    {| int g;
       int main() {
         for (int i = 0; i < 5000; i++) { g += i; if (g > 100000) g = 0; }
         return g;
       } |}
  in
  let r =
    Alchemist.Profiler.run ~pool_capacity:8
      (Vm.Compile.compile_source src)
  in
  match Obs.find (Alchemist.Profiler.telemetry r) "pool.scan_len" with
  | Some (Obs.Dist { count; sum; _ }) ->
      Alcotest.(check bool) "count covers acquires" true (count > 5_000);
      Alcotest.(check bool) "scans actually walked entries" true (sum > 0)
  | _ -> Alcotest.fail "pool.scan_len not in profiler telemetry"

let suite =
  [
    ("pool reuse window", `Quick, test_pool_reuse);
    ("pool counts", `Quick, test_pool_counts);
    ("pool scan_len telemetry", `Quick, test_pool_scan_len_telemetry);
    ("pool churn profiled", `Quick, test_pool_churn_profiled);
    ("pool staleness (qcheck)", `Quick, test_pool_staleness_qcheck);
    ("tree push/pop", `Quick, test_tree_push_pop);
    ("tree pop_through", `Quick, test_tree_pop_through);
    ("tree pop empty", `Quick, test_tree_pop_empty);
    ("fig4a procedures", `Quick, test_fig4a_procedures);
    ("fig4b conditionals", `Quick, test_fig4b_conditionals);
    ("fig4c loop iterations", `Quick, test_fig4c_loop_iterations);
    ("break guard siblings", `Quick, test_break_guard_iterations_stay_siblings);
    ("continue guard", `Quick, test_continue_guard);
    ("return inside loop", `Quick, test_return_inside_loop);
    ("pool bound long loop", `Quick, test_pool_bound_long_loop);
  ]
