(* Tests for the benchmark suite: every workload compiles, runs, and its
   profile exhibits the dependence shape the paper reports for the
   original program. *)

module W = Workloads.Workload
module Registry = Workloads.Registry
module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Violation = Alchemist.Violation
module Dep = Shadow.Dependence

let compile_small (w : W.t) = W.compile w ~scale:w.test_scale

let profile_small (w : W.t) =
  Profiler.run ~fuel:100_000_000 (compile_small w)

let cid_of_pc (p : Profile.t) pc = Option.get (Profile.cid_of_head_pc p pc)

(* --- generic per-workload checks -------------------------------------------- *)

let test_all_compile_and_run () =
  List.iter
    (fun (w : W.t) ->
      let prog = compile_small w in
      let r = Vm.Machine.run ~fuel:200_000_000 prog in
      Alcotest.(check bool)
        (w.name ^ " produces output")
        true
        (List.length r.Vm.Machine.output >= 1);
      Alcotest.(check bool)
        (w.name ^ " runs a nontrivial number of instructions")
        true
        (r.Vm.Machine.instructions > 10_000))
    Registry.all

let test_all_deterministic () =
  List.iter
    (fun (w : W.t) ->
      let prog = compile_small w in
      let r1 = Vm.Machine.run ~fuel:200_000_000 prog in
      let r2 = Vm.Machine.run ~fuel:200_000_000 prog in
      Alcotest.(check (list int)) (w.name ^ " deterministic") r1.Vm.Machine.output
        r2.Vm.Machine.output)
    Registry.all

let test_all_sites_locate () =
  List.iter
    (fun (w : W.t) ->
      let prog = compile_small w in
      List.iter
        (fun (s : W.site) ->
          let pc = s.locate prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s heads a construct" w.name s.site_name)
            true
            (Vm.Program.construct_at prog pc <> None);
          (* privatize/reduce lists name real globals *)
          List.iter
            (fun g ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: global %s exists" w.name g)
                true
                (Vm.Program.find_global prog g <> None))
            (s.privatize @ s.reduce))
        (w.sites @ Option.to_list w.prior_work_site))
    Registry.all

let test_all_profile_cleanly () =
  List.iter
    (fun (w : W.t) ->
      let r = profile_small w in
      Alcotest.(check int) (w.name ^ " forced pops") 0
        r.Profiler.stats.Profiler.forced_pops;
      Alcotest.(check bool)
        (w.name ^ " found dynamic constructs")
        true
        (r.Profiler.stats.Profiler.dynamic_constructs > 50))
    Registry.all

let test_scales_differ () =
  List.iter
    (fun (w : W.t) ->
      Alcotest.(check bool) (w.name ^ " default > test scale") true
        (w.default_scale > w.test_scale))
    Registry.all

let test_registry_lookup () =
  Alcotest.(check int) "nine workloads" 9 (List.length Registry.all);
  List.iter
    (fun name -> ignore (Registry.find name))
    Registry.names;
  match Registry.find "nonesuch" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_loc_counts () =
  List.iter
    (fun (w : W.t) ->
      let loc = W.loc w in
      Alcotest.(check bool)
        (Printf.sprintf "%s LOC %d in range" w.name loc)
        true
        (loc > 50 && loc < 400))
    Registry.all

(* --- gzip: the Fig. 2 / Fig. 3 shape ----------------------------------------- *)

(* Profiled once at a scale where the paper's timing geometry holds (the
   zip loop's work between flushes well exceeds a flush's duration). *)
let gzip_profile =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some v -> v
    | None ->
        let w = Registry.find "gzip-1.3.5" in
        let prog = W.compile w ~scale:6_000 in
        let r = Profiler.run ~fuel:100_000_000 prog in
        let v = (prog, r.Profiler.profile) in
        memo := Some v;
        v

let edges_of_kind (p : Profile.t) cid kind =
  let cp = Profile.get p cid in
  Profile.edges_sorted cp
  |> List.filter (fun ((k : Profile.edge_key), _) -> k.kind = kind)

let global_addr prog name = fst (Option.get (Vm.Program.find_global prog name))

(* Map an edge to the names of globals its head pc plausibly touches: we
   instead check head/tail lines through known statements. Simpler: use
   the addresses via a fresh collection pass when needed. For the shape
   assertions we use line positions of known statements. *)

(* Line of the first source line containing [needle]. *)
let line_of_stmt src needle =
  let lines = String.split_on_char '\n' src in
  let rec go i = function
    | [] -> Alcotest.failf "statement %S not found" needle
    | l :: rest -> if Testutil.contains l needle then i else go (i + 1) rest
  in
  go 1 lines

let test_gzip_flush_block_raw_shape () =
  let prog, p = gzip_profile () in
  let src = (Registry.find "gzip-1.3.5").W.source ~scale:6_000 in
  let cid = cid_of_pc p (Parsim.Speedup.proc_head prog "flush_block") in
  let cp = Profile.get p cid in
  Alcotest.(check bool) "flush_block called several times" true
    (cp.instances >= 2);
  let raw = edges_of_kind p cid Dep.Raw in
  Alcotest.(check bool) "has RAW edges" true (raw <> []);
  let violating =
    List.filter (fun (_, s) -> Violation.is_violating cp s) raw
  in
  (* The boxed edges of Fig. 2: the block-length (return-value analog) and
     outcnt dependences flowing into the checksum emitted after the final
     call — and nothing else. (The paper reports 2; we see 2-4 because
     our checksum touches outcnt at two pcs.) *)
  let n = List.length violating in
  Alcotest.(check bool)
    (Printf.sprintf "few violating RAW edges (%d)" n)
    true
    (n >= 2 && n <= 4);
  let checksum_line = line_of_stmt src "int checksum = block_len_out;" in
  let blo_line = line_of_stmt src "block_len_out = len;" in
  List.iter
    (fun ((k : Profile.edge_key), _) ->
      let tl = Alchemist.Report.line_of_pc p k.tail_pc in
      Alcotest.(check bool)
        (Printf.sprintf "violating tail at checksum (line %d)" tl)
        true
        (tl >= checksum_line && tl <= checksum_line + 2))
    violating;
  Alcotest.(check bool) "block_len_out -> checksum is among them" true
    (List.exists
       (fun ((k : Profile.edge_key), _) ->
         Alchemist.Report.line_of_pc p k.head_pc = blo_line
         && Alchemist.Report.line_of_pc p k.tail_pc = checksum_line)
       violating);
  (* And the input_len self-RAW (the paper's line 14 -> 14, Tdep 4.5M >
     Tdur): present, long-distance, not violating. *)
  let il_line = line_of_stmt src "input_len += len;" in
  let self_edges =
    List.filter
      (fun ((k : Profile.edge_key), _) ->
        Alchemist.Report.line_of_pc p k.head_pc = il_line
        && Alchemist.Report.line_of_pc p k.tail_pc = il_line)
      raw
  in
  (match self_edges with
  | [ (_, s) ] ->
      Alcotest.(check bool) "input_len self-RAW exceeds duration" true
        (s.min_tdep > Profile.mean_duration cp)
  | l -> Alcotest.failf "expected 1 input_len self edge, got %d" (List.length l))

let test_gzip_fig3_war_waw_shape () =
  let prog, p = gzip_profile () in
  let cid = cid_of_pc p (Parsim.Speedup.proc_head prog "flush_block") in
  let cp = Profile.get p cid in
  let waw = edges_of_kind p cid Dep.Waw in
  let war = edges_of_kind p cid Dep.War in
  Alcotest.(check bool) "WAW edges exist (outcnt)" true (waw <> []);
  Alcotest.(check bool) "WAR edges exist (flag_buf, last_flags)" true
    (List.length war >= 2);
  Alcotest.(check bool) "some WAW violating" true
    (List.exists (fun (_, s) -> Violation.is_violating cp s) waw);
  ignore prog

(* No WAW on outbuf itself: slots are disjoint; the conflict rides on the
   outcnt index (the paper's observation). We verify by checking that no
   dependence at all was recorded on outbuf element addresses, via a
   dedicated collection pass. *)
let test_gzip_no_waw_on_outbuf () =
  let w = Registry.find "gzip-1.3.5" in
  let prog = compile_small w in
  let base, len = Option.get (Vm.Program.find_global prog "outbuf") in
  let outbuf_waw = ref 0 and outcnt_waw = ref 0 in
  let outcnt_addr = global_addr prog "outcnt" in
  let analysis = Cfa.Analysis.analyze prog in
  let tree = Indexing.Index_tree.create () in
  let rules = Indexing.Rules.create ~ipdom:analysis.Cfa.Analysis.ipdom_of_pc ~tree in
  let on_dep (d : Dep.t) =
    if d.kind = Dep.Waw then begin
      if d.addr >= base && d.addr < base + len then incr outbuf_waw;
      if d.addr = outcnt_addr then incr outcnt_waw
    end
  in
  let shadow = Shadow.Shadow_memory.create ~on_dep () in
  let enclosing () = Option.get (Indexing.Index_tree.top tree) in
  let hooks =
    {
      Vm.Hooks.on_instr = (fun ~pc -> Indexing.Rules.on_instr rules ~pc);
      on_read =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.read shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree) ~node:(enclosing ()));
      on_write =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.write shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree) ~node:(enclosing ()));
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken -> Indexing.Rules.on_branch rules ~pc ~kind ~taken);
      on_call = (fun ~pc ~fid:_ -> Indexing.Rules.on_call rules ~entry_pc:pc);
      on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
      on_frame_release =
        (fun ~base ~size -> Shadow.Shadow_memory.clear_range shadow ~base ~size);
    }
  in
  ignore (Vm.Machine.run_hooked ~trace_locals:false ~fuel:100_000_000 hooks prog);
  (* outbuf slots may be rewritten only after the 8192-entry window wraps;
     at test scale it never wraps, so no WAW at all on the buffer. *)
  Alcotest.(check int) "no WAW on outbuf slots" 0 !outbuf_waw;
  Alcotest.(check bool) "WAW on the outcnt index" true (!outcnt_waw > 0)

let test_gzip_fig6b_removal () =
  let prog, p = gzip_profile () in
  let entries = Alchemist.Ranking.rank p in
  let c1 = cid_of_pc p (Workloads.Workload.loop_in "main" ~nth:0 prog) in
  let after = Alchemist.Ranking.remove_with_singletons p entries ~cid:c1 in
  let names = List.map (fun (e : Alchemist.Ranking.entry) -> e.name) after in
  (* zip runs once per file-loop iteration: removed. *)
  Alcotest.(check bool) "Method zip removed" false
    (List.mem "Method zip" names);
  (* flush_block runs many times per iteration: it must remain. *)
  Alcotest.(check bool) "Method flush_block remains" true
    (List.mem "Method flush_block" names);
  (* Fig. 6(b)'s candidate selection is a human reading a 2D plot: big and
     few violations. We assert the machine-checkable core: among the
     remaining Method/Loop constructs (the kinds Fig. 6 labels), excluding
     the root, flush_block is Pareto-optimal — no other is both at least
     as large and at most as violating — and every strictly larger one
     carries strictly more violating RAW edges. *)
  let fb =
    List.find
      (fun (e : Alchemist.Ranking.entry) -> e.name = "Method flush_block")
      after
  in
  let comparable =
    after
    |> List.filter (fun (e : Alchemist.Ranking.entry) ->
           e.name <> "Method main" && e.name <> "Method flush_block"
           && e.kind <> Vm.Program.CCond)
  in
  List.iter
    (fun (e : Alchemist.Ranking.entry) ->
      if e.ttotal >= fb.ttotal then
        Alcotest.(check bool)
          (Printf.sprintf "%s (bigger) has more violations" e.name)
          true
          (e.violations.Violation.raw_violating
          > fb.violations.Violation.raw_violating))
    comparable

(* --- per-workload dependence shapes (Table IV analogs) ----------------------- *)

let violations_at (w : W.t) (site : W.site) =
  let prog = compile_small w in
  let r = Profiler.run ~fuel:200_000_000 prog in
  let cid = cid_of_pc r.Profiler.profile (site.locate prog) in
  Violation.summarize r.Profiler.profile ~cid

let test_aes_no_violating_raw () =
  let w = Registry.find "aes" in
  let site = List.hd w.sites in
  let v = violations_at w site in
  Alcotest.(check int) "no violating RAW on the block loop" 0
    v.Violation.raw_violating;
  Alcotest.(check bool) "but WAW/WAR conflicts exist (ivec)" true
    (v.Violation.waw_violating + v.Violation.war_violating > 0)

let test_par2_process_data_clean () =
  let w = Registry.find "par2" in
  let site = List.hd w.sites in
  let v = violations_at w site in
  (* The paper's own text says "no violating static RAW" while its Table
     IV lists 1 for this loop; ours is the progress counter. *)
  Alcotest.(check bool)
    (Printf.sprintf "at most the progress counter (%d)" v.Violation.raw_violating)
    true
    (v.Violation.raw_violating <= 2)

let test_par2_open_files_one_conflict () =
  let w = Registry.find "par2" in
  let site = List.nth w.sites 1 in
  let v = violations_at w site in
  (* the file-close counter plus the serial reader chain *)
  Alcotest.(check bool)
    (Printf.sprintf "few violating RAW (%d)" v.Violation.raw_violating)
    true
    (v.Violation.raw_violating >= 1 && v.Violation.raw_violating <= 3)

let test_ogg_main_loop_shape () =
  let w = Registry.find "ogg" in
  let site = List.hd w.sites in
  let v = violations_at w site in
  Alcotest.(check bool)
    (Printf.sprintf "about six violating RAW (%d)" v.Violation.raw_violating)
    true
    (v.Violation.raw_violating >= 4 && v.Violation.raw_violating <= 9);
  Alcotest.(check bool) "WAR/WAW conflicts too" true
    (v.Violation.war_total + v.Violation.waw_total > 0)

let test_bzip2_main_loop_shape () =
  let w = Registry.find "bzip2" in
  let site = List.hd w.sites in
  let v = violations_at w site in
  Alcotest.(check bool)
    (Printf.sprintf "few violating RAW (%d)" v.Violation.raw_violating)
    true
    (v.Violation.raw_violating >= 2 && v.Violation.raw_violating <= 7);
  Alcotest.(check bool)
    (Printf.sprintf "many WAW (%d)" v.Violation.waw_total)
    true
    (v.Violation.waw_total > v.Violation.raw_total)

let test_delaunay_hostile () =
  let w = Registry.find "delaunay" in
  let site = Option.get w.prior_work_site in
  let v = violations_at w site in
  Alcotest.(check bool)
    (Printf.sprintf "many violating RAW (%d)" v.Violation.raw_violating)
    true
    (v.Violation.raw_violating >= 15)

let test_delaunay_worse_than_others () =
  let hostile =
    (violations_at (Registry.find "delaunay")
       (Option.get (Registry.find "delaunay").prior_work_site))
      .Violation.raw_violating
  in
  let benign =
    (violations_at (Registry.find "aes") (List.hd (Registry.find "aes").sites))
      .Violation.raw_violating
  in
  Alcotest.(check bool) "delaunay >> aes" true (hostile > benign + 10)

let suite =
  [
    ("all compile and run", `Slow, test_all_compile_and_run);
    ("all deterministic", `Slow, test_all_deterministic);
    ("all sites locate", `Slow, test_all_sites_locate);
    ("all profile cleanly", `Slow, test_all_profile_cleanly);
    ("scales differ", `Quick, test_scales_differ);
    ("registry lookup", `Quick, test_registry_lookup);
    ("loc counts", `Quick, test_loc_counts);
    ("gzip fig2 RAW shape", `Slow, test_gzip_flush_block_raw_shape);
    ("gzip fig3 WAR/WAW shape", `Slow, test_gzip_fig3_war_waw_shape);
    ("gzip no WAW on outbuf", `Slow, test_gzip_no_waw_on_outbuf);
    ("gzip fig6b removal", `Slow, test_gzip_fig6b_removal);
    ("aes: no violating RAW", `Slow, test_aes_no_violating_raw);
    ("par2: ProcessData clean", `Slow, test_par2_process_data_clean);
    ("par2: OpenSourceFiles one conflict", `Slow, test_par2_open_files_one_conflict);
    ("ogg: main loop shape", `Slow, test_ogg_main_loop_shape);
    ("bzip2: main loop shape", `Slow, test_bzip2_main_loop_shape);
    ("delaunay: hostile", `Slow, test_delaunay_hostile);
    ("delaunay vs aes", `Slow, test_delaunay_worse_than_others);
  ]
