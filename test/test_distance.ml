(* The static dependence-distance engine (Static.Distance) against a
   brute-force oracle.

   The random property compiles single-loop programs of the shape

     for (i = i0; i < B; i = i + s) { A[m1*i + c1] = A[m2*i + c2] + 1; }

   and simulates the loop's subscript values directly: every pair of
   iterations whose write and read addresses collide yields an observed
   iteration distance. A static verdict is consistent iff

     No_dep            -> no pair collides
     Exact_distance d  -> every colliding pair is exactly d apart
     Min_distance d    -> every colliding pair is at least d apart
     Unknown           -> (always consistent)

   checked for all three edge directions (write->read, read->write,
   write->write). The handcrafted table pins each test in the engine —
   strong SIV, non-integer refutation, GCD, bounded enumeration, ZIV,
   value-range disjointness, the power-of-two mask identity and
   write-once const globals — to its exact verdict, so a regression in
   any one test cannot hide behind the others returning Unknown. *)

module Dep = Static.Depend
module Dist = Static.Distance

(* --- shared helpers --------------------------------------------------- *)

(* The store and the first load of the program's only array; the
   templates put both inside the loop body. *)
let event_pcs (prog : Vm.Program.t) =
  let store = ref (-1) and load = ref (-1) in
  Array.iteri
    (fun pc ins ->
      match ins with
      | Vm.Instr.StoreIndex -> store := pc
      | Vm.Instr.LoadIndex -> if !load < 0 then load := pc
      | _ -> ())
    prog.code;
  (!store, !load)

let analyze src =
  let prog = Vm.Compile.compile_source src in
  let dep = Dep.analyze prog in
  let store, load = event_pcs prog in
  (dep, store, load)

(* --- handcrafted table ------------------------------------------------ *)

type expected = V of Dist.verdict | Bounded of int
(* [V]: the exact verdict (whose [Dist.bound] must agree); [Bounded d] is
   shorthand for [V (Exact_distance d)] — kept separate only to make the
   table read as "this one must persist a bound". *)

let handcrafted =
  [
    (* Equal coefficients, offsets 3 apart: strong SIV. *)
    ( "strong SIV exact",
      {|int A[512];
int main() { int i; for (i = 2; i < 32; i = i + 1) { A[i + 3] = A[i] + 1; } return 0; }|},
      Bounded 3 );
    (* The par2 gfexp shape: a wide wrap-around offset in a long loop. *)
    ( "gfexp-style distance 255",
      {|int A[900];
int main() { int i; for (i = 0; i < 300; i = i + 1) { A[i + 255] = A[i] + 1; } return 0; }|},
      Bounded 255 );
    (* 2i+1 vs 2i: the iteration difference would be 1/2. *)
    ( "strong SIV non-integer",
      {|int A[512];
int main() { int i; for (i = 0; i < 20; i = i + 1) { A[2 * i + 1] = A[2 * i] + 1; } return 0; }|},
      V Dist.No_dep );
    (* 2j1 = 4j2 + 1 has no integer solutions: gcd(2,4) does not divide 1. *)
    ( "GCD refutation",
      {|int A[512];
int main() { int i; for (i = 0; i < 20; i = i + 1) { A[2 * i] = A[4 * i + 1] + 1; } return 0; }|},
      V Dist.No_dep );
    (* Different coefficients, solutions exist: bounded enumeration finds
       the closest pair (i = 5 reads what i = 0 wrote). *)
    ( "enumerated minimum",
      {|int A[512];
int main() { int i; for (i = 0; i < 16; i = i + 1) { A[i] = A[2 * i + 5] + 1; } return 0; }|},
      V (Dist.Min_distance 5) );
    ( "ZIV distinct cells",
      {|int A[512];
int main() { int i; for (i = 0; i < 8; i = i + 1) { A[5] = A[9] + 1; } return 0; }|},
      V Dist.No_dep );
    (* Same constant cell every iteration: a real dependence at distance
       1, which no distance test in the engine claims to bound. *)
    ( "ZIV same cell",
      {|int A[512];
int main() { int i; for (i = 0; i < 8; i = i + 1) { A[5] = A[5] + 1; } return 0; }|},
      V Dist.Unknown );
    (* A constant subscript outside the affine side's value range. *)
    ( "constant outside range",
      {|int A[512];
int main() { int i; for (i = 8; i < 20; i = i + 1) { A[3] = A[i] + 1; } return 0; }|},
      V Dist.No_dep );
    (* i & 31 is the identity while i stays in [0, 31], so the masked
       subscript is still affine and strong SIV applies. *)
    ( "power-of-two mask identity",
      {|int A[512];
int main() { int i; for (i = 0; i < 21; i = i + 1) { A[(i & 31) + 16] = A[i] + 1; } return 0; }|},
      Bounded 16 );
    (* G is written exactly once (a const global), so A[G] is a known
       constant cell — and i's range [8, 20] excludes it. *)
    ( "write-once const global",
      {|int G; int A[512];
int main() { int i; G = 7; for (i = 8; i < 20; i = i + 1) { A[G] = A[i] + 1; } return 0; }|},
      V Dist.No_dep );
  ]

let test_handcrafted () =
  List.iter
    (fun (name, src, expected) ->
      let dep, store, load = analyze src in
      let v, why = Dep.distance_verdict dep ~head_pc:store ~tail_pc:load in
      let expected_v =
        match expected with Bounded d -> Dist.Exact_distance d | V v -> v
      in
      Alcotest.(check string)
        (Printf.sprintf "%s verdict (%s)" name why)
        (Dist.verdict_to_string expected_v)
        (Dist.verdict_to_string v);
      let expected_bound =
        match expected with
        | Bounded d -> Some d
        | V (Dist.Exact_distance d) | V (Dist.Min_distance d) ->
            if d >= 1 then Some d else None
        | V _ -> None
      in
      Alcotest.(check (option int))
        (name ^ " bound") expected_bound
        (Dep.distance_bound dep ~head_pc:store ~tail_pc:load))
    handcrafted

(* --- random affine loops vs. brute force ------------------------------ *)

type spec = {
  i0 : int;  (** initial induction value *)
  step : int;  (** positive stride *)
  trip : int;  (** iteration count (>= 1) *)
  le : bool;  (** header uses [<=] instead of [<] *)
  m1 : int;  (** write-subscript coefficient *)
  e1 : int;  (** extra write offset (the base shift keeps indices >= 0) *)
  m2 : int;  (** read-subscript coefficient *)
  e2 : int;  (** extra read offset *)
}

let iters s = List.init s.trip (fun t -> s.i0 + (t * s.step))

(* Offset making [m*i + c] non-negative over all iterations (negative
   coefficients walk the array downward). *)
let offset m extra s =
  let mn = List.fold_left (fun acc i -> min acc (m * i)) 0 (iters s) in
  extra - mn

let subscript m c =
  if m = 0 then string_of_int c
  else if m = 1 then Printf.sprintf "i + %d" c
  else Printf.sprintf "%d * i + %d" m c

let source s =
  let c1 = offset s.m1 s.e1 s and c2 = offset s.m2 s.e2 s in
  let last = s.i0 + ((s.trip - 1) * s.step) in
  let bound = if s.le then last else last + 1 in
  Printf.sprintf
    "int A[512];\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = %d; i %s %d; i = i + %d) {\n\
    \    A[%s] = A[%s] + 1;\n\
    \  }\n\
    \  return 0;\n\
     }\n"
    s.i0
    (if s.le then "<=" else "<")
    bound s.step (subscript s.m1 c1) (subscript s.m2 c2)

(* Iteration distances of every colliding (head, tail) pair. *)
let brute_dists s ~mh ~ch ~mt ~ct =
  let dists = ref [] in
  List.iteri
    (fun th ih ->
      List.iteri
        (fun tt it ->
          if (mh * ih) + ch = (mt * it) + ct then
            dists := abs (th - tt) :: !dists)
        (iters s))
    (iters s);
  !dists

let consistent verdict dists =
  match verdict with
  | Dist.Unknown -> true
  | Dist.No_dep -> dists = []
  | Dist.Exact_distance d -> List.for_all (fun x -> x = d) dists
  | Dist.Min_distance d -> List.for_all (fun x -> x >= d) dists

let gen_spec =
  QCheck.Gen.(
    let m_gen = frequency [ (4, int_range 0 3); (1, int_range (-2) (-1)) ] in
    map
      (fun ((i0, step, (trip, le)), ((m1, e1), (m2, e2))) ->
        { i0; step; trip; le; m1; e1; m2; e2 })
      (pair
         (triple (int_range 0 3) (int_range 1 3)
            (pair (int_range 1 16) bool))
         (pair
            (pair m_gen (int_range 0 4))
            (pair m_gen (int_range 0 4)))))

let arb_spec = QCheck.make ~print:source gen_spec

let test_random_vs_brute_force () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"static distance consistent with simulation"
       ~count:150 arb_spec (fun s ->
         let dep, store, load = analyze (source s) in
         let c1 = offset s.m1 s.e1 s and c2 = offset s.m2 s.e2 s in
         let check what ~head ~tail ~mh ~ch ~mt ~ct =
           let v, why = Dep.distance_verdict dep ~head_pc:head ~tail_pc:tail in
           let dists = brute_dists s ~mh ~ch ~mt ~ct in
           if not (consistent v dists) then
             QCheck.Test.fail_reportf
               "%s: verdict %s (%s) inconsistent with distances {%s} in\n%s"
               what
               (Dist.verdict_to_string v)
               why
               (String.concat ","
                  (List.map string_of_int (List.sort_uniq compare dists)))
               (source s)
           else true
         in
         check "write->read" ~head:store ~tail:load ~mh:s.m1 ~ch:c1 ~mt:s.m2
           ~ct:c2
         && check "read->write" ~head:load ~tail:store ~mh:s.m2 ~ch:c2 ~mt:s.m1
              ~ct:c1
         && check "write->write" ~head:store ~tail:store ~mh:s.m1 ~ch:c1
              ~mt:s.m1 ~ct:c1))

(* The end-to-end invariant the sanitizer enforces: profile a random
   affine loop and cross-check every recorded edge (including its
   observed min Tdep vs. any proven bound) — zero discrepancies. *)
let test_random_profiles_sanitize () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"random affine loops sanitize clean" ~count:60
       arb_spec (fun s ->
         let prog = Vm.Compile.compile_source (source s) in
         let r = Alchemist.Profiler.run ~fuel:2_000_000 prog in
         match Alchemist.Sanitize.check r.Alchemist.Profiler.profile with
         | [] -> true
         | issue :: _ ->
             QCheck.Test.fail_reportf "sanitizer: %s in\n%s"
               (Format.asprintf "%a" Alchemist.Sanitize.pp_issue issue)
               (source s)))

let suite =
  [
    ("handcrafted verdicts", `Quick, test_handcrafted);
    ("random vs brute force", `Quick, test_random_vs_brute_force);
    ("random profiles sanitize", `Quick, test_random_profiles_sanitize);
  ]
