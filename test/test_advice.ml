(* Tests for transformation advice and profile merging. *)

module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Advice = Alchemist.Advice

let profile src = Profiler.run_source ~fuel:50_000_000 src

let cid_of_proc (p : Profile.t) prog name =
  Option.get (Profile.cid_of_head_pc p (Parsim.Speedup.proc_head prog name))

let cid_of_loop (p : Profile.t) prog line =
  Option.get
    (Profile.cid_of_head_pc p (Parsim.Speedup.loop_head_at_line prog line))

(* --- advice --------------------------------------------------------------- *)

let test_spawnable () =
  (* producer finishes long before its result is consumed: a clean future. *)
  let src =
    {|int buf[64];
      int sink;
      void produce() { for (int i = 0; i < 64; i++) buf[i] = i * 3; }
      int main() {
        produce();
        int t = 0;
        for (int k = 0; k < 500; k++) t += k;
        sink = buf[10] + t;
        return sink;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let r = Profiler.run ~fuel:50_000_000 prog in
  let p = r.Profiler.profile in
  let a = Advice.advise p ~cid:(cid_of_proc p prog "produce") in
  Alcotest.(check bool) "parallelizable" true (a.Advice.verdict = `Parallelizable);
  Alcotest.(check bool) "spawnable listed" true
    (List.exists
       (function Advice.Spawnable _ -> true | _ -> false)
       a.Advice.suggestions);
  (* join before the consuming read of buf *)
  Alcotest.(check bool) "join point present" true
    (List.exists
       (function Advice.Join_before { var = Some "buf"; _ } -> true | _ -> false)
       a.Advice.suggestions)

let test_blocking_raw () =
  let src =
    {|int acc;
      void step() {
        int v = acc;
        int s = 0;
        for (int k = 0; k < 40; k++) s += v + k;
        acc = s & 1023;
      }
      int main() {
        for (int i = 0; i < 50; i++) step();
        return acc;
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let r = Profiler.run ~fuel:50_000_000 prog in
  let p = r.Profiler.profile in
  let a = Advice.advise p ~cid:(cid_of_proc p prog "step") in
  Alcotest.(check bool) "not amenable" true (a.Advice.verdict = `Not_amenable);
  Alcotest.(check bool) "names the accumulator" true
    (List.exists
       (function
         | Advice.Blocking_raw { var = Some "acc"; _ } -> true | _ -> false)
       a.Advice.suggestions)

let test_privatize_and_hoist () =
  (* scratch: WAR/WAW conflicts only -> privatize; flags: the construct's
     write is a constant reset -> hoist suggestion. *)
  let src =
    {|int scratch;
      int flags;
      int out[64];
      void work(int i) {
        int v = scratch + flags;
        int s = 0;
        for (int k = 0; k < 60; k++) s += v + k;
        out[i & 63] = s;
        scratch = s & 15;
        flags = 0;
      }
      int main() {
        for (int i = 0; i < 40; i++) {
          work(i);
          scratch = i;
          flags = i & 3;
        }
        return out[5];
      }|}
  in
  let prog = Vm.Compile.compile_source src in
  let r = Profiler.run ~fuel:50_000_000 prog in
  let p = r.Profiler.profile in
  let a = Advice.advise p ~cid:(cid_of_proc p prog "work") in
  let has_hoist =
    List.exists
      (function Advice.Hoist_reset { var = "flags"; _ } -> true | _ -> false)
      a.Advice.suggestions
  in
  Alcotest.(check bool) "hoist the flags reset" true has_hoist;
  let priv = Advice.privatization_list a in
  Alcotest.(check bool) "scratch privatized" true (List.mem "scratch" priv);
  Alcotest.(check bool) "flags in the list too" true (List.mem "flags" priv)

let test_advice_feeds_simulator () =
  (* The privatization list produced by Advice is directly usable by the
     simulator and unlocks the speedup. *)
  let w = Workloads.Registry.find "aes" in
  let prog = Workloads.Workload.compile w ~scale:256 in
  let site = List.hd w.Workloads.Workload.sites in
  let head_pc = site.Workloads.Workload.locate prog in
  let r = Profiler.run ~fuel:50_000_000 prog in
  let p = r.Profiler.profile in
  let a = Advice.advise p ~cid:(Option.get (Profile.cid_of_head_pc p head_pc)) in
  Alcotest.(check bool) "needs transforms" true
    (a.Advice.verdict = `Needs_transforms);
  let priv = Advice.privatization_list a in
  Alcotest.(check bool) "ivec found automatically" true (List.mem "ivec" priv);
  let sim = Parsim.Speedup.analyze ~cores:4 ~privatize:priv prog ~head_pc in
  Alcotest.(check bool) "constraints dropped" true
    (sim.Parsim.Speedup.dropped_privatized > 0)

let test_advice_printable () =
  let src = "int g; int main() { for (int i = 0; i < 9; i++) g += i; return g; }" in
  let prog = Vm.Compile.compile_source src in
  let r = Profiler.run ~fuel:1_000_000 prog in
  let p = r.Profiler.profile in
  let a = Advice.advise p ~cid:(cid_of_loop p prog 1) in
  let s = Format.asprintf "%a" Advice.pp a in
  Alcotest.(check bool) "renders" true (String.length s > 10)

(* --- conflict names in reports -------------------------------------------- *)

let test_report_names_conflicts () =
  let src =
    {|int counter;
      void bump() { counter += 1; }
      int main() { bump(); bump(); return counter; }|}
  in
  let r = profile src in
  let text =
    Alchemist.Report.render ~top:8
      ~kinds:[ Shadow.Dependence.Raw; Shadow.Dependence.Waw ]
      r.Profiler.profile
  in
  Alcotest.(check bool) "mentions counter" true
    (Testutil.contains text "on counter")

let test_name_of_addr () =
  let prog =
    Vm.Compile.compile_source "int x; int a[4]; int main() { return x + a[2]; }"
  in
  let xb, _ = Option.get (Vm.Program.find_global prog "x") in
  let ab, _ = Option.get (Vm.Program.find_global prog "a") in
  Alcotest.(check (option string)) "scalar" (Some "x")
    (Alchemist.Report.name_of_addr prog xb);
  Alcotest.(check (option string)) "array elem" (Some "a[2]")
    (Alchemist.Report.name_of_addr prog (ab + 2));
  Alcotest.(check (option string)) "stack addr" None
    (Alchemist.Report.name_of_addr prog 999_999)

(* --- profile merging -------------------------------------------------------- *)

let test_merge_doubles () =
  let src =
    {|int g;
      void f() { g += 2; }
      int main() { for (int i = 0; i < 20; i++) f(); return g; }|}
  in
  let prog = Vm.Compile.compile_source src in
  let r1 = Profiler.run ~fuel:1_000_000 prog in
  let r2 = Profiler.run ~fuel:1_000_000 prog in
  let m = Profile.merge r1.Profiler.profile r2.Profiler.profile in
  let p1 = r1.Profiler.profile in
  Array.iteri
    (fun cid (cp : Profile.construct_profile) ->
      let single = Profile.get p1 cid in
      Alcotest.(check int)
        (Printf.sprintf "instances double (cid %d)" cid)
        (2 * single.instances) cp.instances;
      Alcotest.(check int)
        (Printf.sprintf "ttotal doubles (cid %d)" cid)
        (2 * single.ttotal) cp.ttotal;
      (* identical runs: same edges, same minima, doubled counts *)
      Alcotest.(check int) "edge sets equal" (Profile.num_edges single)
        (Profile.num_edges cp);
      Profile.iter_edges single
        (fun (key : Profile.edge_key) (s : Profile.edge_stats) ->
          match
            Profile.find_edge cp ~head_pc:key.head_pc ~tail_pc:key.tail_pc
              key.kind
          with
          | None -> Alcotest.fail "edge missing from merged profile"
          | Some d ->
              Alcotest.(check int) "min preserved" s.min_tdep d.min_tdep;
              Alcotest.(check int) "count doubled" (2 * s.count) d.count))
    m.Profile.by_cid

let test_merge_takes_min () =
  (* Different inputs can exercise the same edge at different distances;
     the merge must keep the minimum. We get different distances by
     scaling the workload. *)
  let w = Workloads.Registry.find "aes" in
  ignore w;
  let src_at n =
    Printf.sprintf
      {|int g;
        int sink;
        int n;
        int main() {
          n = %d;
          g = 1;
          for (int k = 0; k < n; k++) sink += k;
          sink += g;
          return sink;
        }|}
      n
  in
  (* Same program text must compile identically for merge; vary behaviour
     via a constant is not possible -- so instead profile the same program
     twice and check merge is idempotent on minima. *)
  let prog = Vm.Compile.compile_source (src_at 50) in
  let r = Profiler.run ~fuel:1_000_000 prog in
  let m = Profile.merge r.Profiler.profile r.Profiler.profile in
  Array.iter
    (fun (cp : Profile.construct_profile) ->
      Profile.iter_edges cp
        (fun _ (s : Profile.edge_stats) ->
          Alcotest.(check bool) "min positive" true (s.min_tdep > 0)))
    m.Profile.by_cid

let test_merge_rejects_different_programs () =
  let p1 = Vm.Compile.compile_source "int main() { return 1; }" in
  let p2 = Vm.Compile.compile_source "int main() { return 2; }" in
  let r1 = Profiler.run p1 and r2 = Profiler.run p2 in
  match Profile.merge r1.Profiler.profile r2.Profiler.profile with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    ("spawnable", `Quick, test_spawnable);
    ("blocking raw", `Quick, test_blocking_raw);
    ("privatize and hoist", `Quick, test_privatize_and_hoist);
    ("advice feeds simulator", `Quick, test_advice_feeds_simulator);
    ("advice printable", `Quick, test_advice_printable);
    ("report names conflicts", `Quick, test_report_names_conflicts);
    ("name_of_addr", `Quick, test_name_of_addr);
    ("merge doubles", `Quick, test_merge_doubles);
    ("merge idempotent minima", `Quick, test_merge_takes_min);
    ("merge rejects different programs", `Quick, test_merge_rejects_different_programs);
  ]
