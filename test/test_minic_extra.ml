(* Additional frontend edge cases: lexical corners, grammar corners,
   scoping rules, and printer stability on tricky nodes. *)

module Ast = Minic.Ast
module Parser = Minic.Parser
module Typecheck = Minic.Typecheck

let parse_ok src =
  match Minic.Diag.wrap (fun () -> Parser.parse src) with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let check_ok src = Typecheck.check (parse_ok src)

let check_fails name src =
  match Typecheck.check_result (parse_ok src) with
  | Ok () -> Alcotest.failf "%s: expected a type error" name
  | Error _ -> ()

let run src =
  Vm.Machine.run ~fuel:5_000_000 (Vm.Compile.compile_source src)

let check_exit name src expected =
  Alcotest.(check int) name expected (run src).Vm.Machine.exit_value

(* --- lexical corners -------------------------------------------------------- *)

let test_adjacent_operators () =
  (* ++ binds greedily: [x++ + y] parses, [x+++y] lexes as [x ++ + y]
     which is a syntax error in statement position. *)
  check_exit "x++ then use" "int main() { int x = 1; x++; return x + 1; }" 3;
  let toks = Minic.Lexer.tokenize "x+++y" in
  Alcotest.(check int) "x ++ + y eof" 5 (Array.length toks)

let test_big_hex () =
  check_exit "large hex" "int main() { return (0x7fffffff >> 24) & 0xff; }" 127

let test_char_escapes_in_ops () =
  check_exit "char arithmetic" "int main() { return 'z' - 'a'; }" 25

let test_comment_tricks () =
  check_exit "comment between tokens"
    "int main() { return 1 /* one */ + /* two */ 2; }" 3;
  check_exit "line comment at eof" "int main() { return 4; } // done" 4;
  check_exit "star inside block comment"
    "int main() { /* * ** *** */ return 5; }" 5

(* --- grammar corners --------------------------------------------------------- *)

let test_else_if_chain () =
  check_exit "chained else if"
    {|int classify(int x) {
        if (x < 0) return -1;
        else if (x == 0) return 0;
        else if (x < 10) return 1;
        else return 2;
      }
      int main() { return classify(-5) + classify(0) + classify(3) + classify(99); }|}
    2

let test_empty_blocks () =
  check_exit "empty everything"
    "int main() { { } if (1) { } else { } while (0) { } { { } } return 6; }" 6

let test_deep_nesting () =
  (* 60 nested parens and 40 nested blocks: no parser stack issues. *)
  let parens = String.concat "" (List.init 60 (fun _ -> "(")) in
  let closes = String.concat "" (List.init 60 (fun _ -> ")")) in
  check_exit "deep parens"
    (Printf.sprintf "int main() { return %s7%s; }" parens closes)
    7;
  let opens = String.concat "" (List.init 40 (fun _ -> "{ ")) in
  let shuts = String.concat "" (List.init 40 (fun _ -> "} ")) in
  check_exit "deep blocks"
    (Printf.sprintf "int main() { %s int x = 9; %s return 3; }" opens shuts)
    3

let test_for_clause_combos () =
  check_exit "no init" "int main() { int i = 0; for (; i < 4; i++) { } return i; }" 4;
  check_exit "no update"
    "int main() { int s = 0; for (int i = 0; i < 4;) { s++; i++; } return s; }" 4;
  check_exit "only cond"
    "int main() { int i = 5; for (; i > 0;) i--; return i; }" 0

let test_do_while_with_continue () =
  (* continue in do-while jumps to the condition *)
  check_exit "do-while continue"
    {|int main() {
        int i = 0;
        int s = 0;
        do {
          i++;
          if (i % 2) continue;
          s += i;
        } while (i < 6);
        return s;
      }|}
    12

(* --- scoping ------------------------------------------------------------------ *)

let test_local_shadows_param () =
  check_ok "int f(int x) { { int x = 5; } return x; } int main() { return f(1); }";
  check_exit "shadow value"
    "int f(int x) { { int x = 5; x = x + 1; } return x; } int main() { return f(7); }"
    7

let test_function_name_not_a_var () =
  check_fails "function as value" "int f() { return 0; } int main() { return f + 1; }"

let test_void_in_value_positions () =
  check_fails "print(void)" "void f() { } int main() { print(f()); return 0; }";
  check_fails "void in arith" "void f() { } int main() { int x = f(); return x; }";
  check_fails "void as condition" "void f() { } int main() { if (f()) return 1; return 0; }"

let test_global_shadowed_by_param () =
  check_exit "param shadows global"
    "int x = 100; int f(int x) { return x; } int main() { return f(3); }" 3

(* --- semantics corners ---------------------------------------------------------- *)

let test_c_division_truncation () =
  (* C99 semantics: truncation toward zero; OCaml matches. *)
  check_exit "-7/2" "int main() { int a = -7; return a / 2; }" (-3);
  check_exit "-7%%2" "int main() { int a = -7; return a % 2; }" (-1);
  check_exit "7/-2" "int main() { int b = -2; return 7 / b; }" (-3)

let test_shift_bounds () =
  (* VM ints are 63-bit OCaml ints: bit 61 is the top positive bit,
     shifting into bit 62 lands on the sign bit (defined, negative). *)
  check_exit "shift 61 ok" "int main() { return (1 << 61) > 0; }" 1;
  check_exit "shift 62 is the sign bit" "int main() { return (1 << 62) < 0; }" 1;
  (match run "int main() { int s = 63; return 1 << s; }" with
  | exception Vm.Machine.Trap _ -> ()
  | _ -> Alcotest.fail "shift by 63 should trap")

let test_index_once_in_op_assign () =
  (* [a[f()] += 1] must evaluate the index expression exactly once. *)
  check_exit "index evaluated once"
    {|int a[8];
      int calls;
      int f() { calls++; return 2; }
      int main() { a[2] = 10; a[f()] += 5; return a[2] * 10 + calls; }|}
    151

let test_aliasing_through_params () =
  check_exit "two refs to one array"
    {|int buf[4];
      int f(int x[], int y[]) { x[0] = 7; return y[0]; }
      int main() { return f(buf, buf); }|}
    7

let test_frames_do_not_leak () =
  (* Uninitialized locals read 0 even after a previous call dirtied the
     same stack slots. *)
  check_exit "fresh frames"
    {|int dirty() { int x = 99; return x; }
      int probe() { int x; return x; }
      int main() { dirty(); return probe(); }|}
    0

let test_deep_recursion_ok () =
  check_exit "recursion below the limit"
    "int f(int n) { if (n == 0) return 0; return f(n - 1); } int main() { return f(9000); }"
    0

let test_print_negative () =
  let r = run "int main() { print(-42); print(0 - 100); return 0; }" in
  Alcotest.(check (list int)) "negative output" [ -42; -100 ] r.Vm.Machine.output

let test_main_int_result () =
  check_exit "void main exits 0"
    "int g; void main() { g = 5; }" 0

(* --- lints ---------------------------------------------------------- *)

let lints src =
  let p = parse_ok src in
  Typecheck.check p;
  List.map (fun (w : Minic.Diag.warning) -> w.wmsg) (Minic.Lint.program p)

let contains_lint msgs needle =
  List.exists (fun m -> Testutil.contains m needle) msgs

let test_lint_fires () =
  let msgs =
    lints
      {|int used_g;
        int unused_g;
        int dead_g;
        int f(int x, int y) { dead_g = x; return x + used_g; }
        int main() {
          int u;
          int d = 1;
          d = 2;
          return f(3, 4);
        }|}
  in
  Alcotest.(check int) "warning count" 5 (List.length msgs);
  Alcotest.(check bool) "unused global" true
    (contains_lint msgs "unused global 'unused_g'");
  Alcotest.(check bool) "dead-store global" true
    (contains_lint msgs "'dead_g' is assigned but never read");
  Alcotest.(check bool) "unused parameter" true
    (contains_lint msgs "unused parameter 'y'");
  Alcotest.(check bool) "unused local" true
    (contains_lint msgs "unused variable 'u'");
  Alcotest.(check bool) "dead-store local" true
    (contains_lint msgs "'d' is assigned but never read")

let test_lint_clean_and_byref () =
  (* A clean program lints clean; passing an array by reference counts
     as both a read and a write, so it is neither unused nor dead. *)
  Alcotest.(check (list string)) "clean" []
    (lints
       {|int buf[4];
         void fill(int a[]) { a[0] = 7; }
         int main() { fill(buf); return buf[0]; }|});
  (* Shadowing: the inner local is dead, the outer one is not. *)
  let msgs =
    lints
      {|int main() {
          int x = 1;
          { int x = 2; x = 3; }
          return x;
        }|}
  in
  Alcotest.(check int) "one warning" 1 (List.length msgs);
  Alcotest.(check bool) "inner x dead" true
    (contains_lint msgs "'x' is assigned but never read")

let test_lint_invariant_subscript () =
  (* [a[k]] inside the loop: k is never assigned there, so the address is
     loop-invariant; [b[i]] uses the induction variable and stays quiet. *)
  let msgs =
    lints
      {|int a[10];
        int b[10];
        int main() {
          int i;
          int k = 3;
          int s = 0;
          for (i = 0; i < 10; i = i + 1) {
            s = s + a[k];
            b[i] = b[i] + 1;
          }
          return s;
        }|}
  in
  Alcotest.(check bool) "invariant subscript warns" true
    (contains_lint msgs "loop-invariant subscript of 'a'");
  Alcotest.(check bool) "induction subscript quiet" false
    (contains_lint msgs "subscript of 'b'")

let test_lint_invariant_subscript_call_blocks_global () =
  (* With a call in the loop the callee may write the global [g], so
     [a[g]] is no longer provably invariant; the local [k] still is. *)
  let msgs =
    lints
      {|int g;
        int a[10];
        int bump() { g = g + 1; return 0; }
        int main() {
          int i;
          int k = 2;
          int s = 0;
          for (i = 0; i < 10; i = i + 1) {
            s = s + a[g] + a[k] + bump();
          }
          return s;
        }|}
  in
  Alcotest.(check bool) "global subscript quiet under calls" false
    (contains_lint msgs "(g never changes");
  Alcotest.(check bool) "local subscript still warns" true
    (contains_lint msgs "(k never changes")

let test_lint_invariant_innermost_only () =
  (* [a[j]] varies in the inner loop (j is its induction variable) and
     only the innermost enclosing loop is judged — no warning even
     though j is invariant across each outer iteration's start. *)
  let msgs =
    lints
      {|int a[10];
        int main() {
          int i; int j;
          int s = 0;
          for (i = 0; i < 3; i = i + 1) {
            for (j = 0; j < 3; j = j + 1) { s = s + a[j]; }
          }
          return s;
        }|}
  in
  Alcotest.(check bool) "inner-variant subscript quiet" false
    (contains_lint msgs "loop-invariant subscript")

let test_lint_constant_condition () =
  let msgs =
    lints
      {|int main() {
          int s = 0;
          while (1 < 2) {
            s = s + 1;
            if (s > 3) break;
          }
          return s;
        }|}
  in
  Alcotest.(check bool) "constant condition warns" true
    (contains_lint msgs "loop condition is provably constant");
  (* A condition reading a variable is not constant; a [for] without a
     condition is the idiomatic infinite loop and stays quiet. *)
  let msgs =
    lints
      {|int main() {
          int s = 0;
          while (s < 4) { s = s + 1; }
          for (;;) { break; }
          return s;
        }|}
  in
  Alcotest.(check bool) "variable condition quiet" false
    (contains_lint msgs "provably constant")

(* One test per accumulate shape: [op=] and [x = x op e] for every
   associative-commutative operator warn when the accumulator is also
   passed to a call in the same loop. *)
let test_lint_reduction_escape_shapes () =
  let warns body =
    contains_lint
      (lints
         (Printf.sprintf
            {|int sink(int v) { return v; }
              int main() {
                int s = 1;
                for (int i = 0; i < 8; i++) {
                  %s
                }
                return s;
              }|}
            body))
      "escapes via call to 'sink'"
  in
  List.iter
    (fun (label, body) ->
      Alcotest.(check bool) label true (warns body))
    [
      ("plus op-assign", "s += i; sink(s);");
      ("times op-assign", "s *= 2; sink(s);");
      ("and op-assign", "s &= i; sink(s);");
      ("or op-assign", "s |= i; sink(s);");
      ("xor op-assign", "s ^= i; sink(s);");
      ("plus rewrite", "s = s + i; sink(s);");
      ("commuted plus", "s = i + s; sink(s);");
      ("accumulate under if", "if (i > 2) { s += i; } sink(s);");
    ];
  List.iter
    (fun (label, body) ->
      Alcotest.(check bool) label false (warns body))
    [
      (* non-associative ops are not reductions *)
      ("minus op-assign quiet", "s -= i; sink(s);");
      ("divide quiet", "s = s / 2; sink(s);");
      ("shift quiet", "s <<= 1; sink(s);");
      (* a second read of the accumulator is not a reduction *)
      ("self-read rhs quiet", "s = s + (s & i); sink(s);");
      ("self-read in call quiet", "s = s + sink(s);");
      (* the induction variable is control, not a reduction *)
      ("induction variable quiet", "sink(i);");
      (* no call: the reduction is fine *)
      ("call-free quiet", "s = s + i;");
      (* the call receives something else *)
      ("other arg quiet", "s = s + i; sink(i);");
    ]

let test_lint_reduction_escape_scopes () =
  (* a call in a nested loop still escapes the outer accumulator ... *)
  let msgs =
    lints
      {|int sink(int v) { return v; }
        int main() {
          int s = 0;
          for (int i = 0; i < 4; i++) {
            s = s + i;
            for (int j = 0; j < 4; j++) { sink(s); }
          }
          return s;
        }|}
  in
  Alcotest.(check bool) "nested call escapes outer accumulator" true
    (contains_lint msgs "accumulator 's'");
  (* ... but a call in a disjoint loop does not *)
  let msgs =
    lints
      {|int sink(int v) { return v; }
        int main() {
          int s = 0;
          for (int i = 0; i < 4; i++) { s = s + i; }
          for (int j = 0; j < 4; j++) { sink(j); }
          return s + sink(s);
        }|}
  in
  Alcotest.(check bool) "disjoint loop stays quiet" false
    (contains_lint msgs "escapes via call")

(* The shared-write lint: a global scalar written in a loop warns
   unless the write is write-first (privatizable) or a reduction-shaped
   accumulate. *)
let test_lint_shared_global_write () =
  let warns body =
    contains_lint
      (lints
         (Printf.sprintf
            {|int g;
              int s;
              int main() {
                for (int i = 0; i < 8; i++) {
                  %s
                }
                return g + s;
              }|}
            body))
      "spawned iterations would race"
  in
  List.iter
    (fun (label, body) -> Alcotest.(check bool) label true (warns body))
    [
      ("read-then-write", "s = s + g; g = i;");
      ("conditional write", "if (i > 2) { g = i; }");
      ("non-associative fold", "g = g - i;");
      ("read via subscript-free rhs", "g = g * 2 + 1;");
    ];
  List.iter
    (fun (label, body) -> Alcotest.(check bool) label false (warns body))
    [
      ("write-first is privatizable", "g = i; s = s + g;");
      ("reduction accumulate", "g = g + i;");
      ("op-assign reduction", "g += i;");
      ("read-only global", "s = s + g;");
      ("local writes quiet", "int t; t = i; s = s + t;");
    ];
  (* judged per innermost loop: the inner loop's write-first global is
     quiet even when scanned from the outer loop *)
  Alcotest.(check bool) "innermost only" false
    (contains_lint
       (lints
          {|int g;
            int s;
            int main() {
              for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) { g = j; s = s + g; }
              }
              return g + s;
            }|})
       "spawned iterations would race")

let suite =
  [
    ("adjacent operators", `Quick, test_adjacent_operators);
    ("big hex", `Quick, test_big_hex);
    ("char arithmetic", `Quick, test_char_escapes_in_ops);
    ("comment tricks", `Quick, test_comment_tricks);
    ("else-if chain", `Quick, test_else_if_chain);
    ("empty blocks", `Quick, test_empty_blocks);
    ("deep nesting", `Quick, test_deep_nesting);
    ("for clause combos", `Quick, test_for_clause_combos);
    ("do-while continue", `Quick, test_do_while_with_continue);
    ("local shadows param", `Quick, test_local_shadows_param);
    ("function name not a var", `Quick, test_function_name_not_a_var);
    ("void in value positions", `Quick, test_void_in_value_positions);
    ("param shadows global", `Quick, test_global_shadowed_by_param);
    ("C division truncation", `Quick, test_c_division_truncation);
    ("shift bounds", `Quick, test_shift_bounds);
    ("op-assign index once", `Quick, test_index_once_in_op_assign);
    ("aliasing through params", `Quick, test_aliasing_through_params);
    ("frames do not leak", `Quick, test_frames_do_not_leak);
    ("deep recursion ok", `Quick, test_deep_recursion_ok);
    ("print negative", `Quick, test_print_negative);
    ("void main exits 0", `Quick, test_main_int_result);
    ("lints fire", `Quick, test_lint_fires);
    ("lints stay quiet", `Quick, test_lint_clean_and_byref);
    ("invariant subscript", `Quick, test_lint_invariant_subscript);
    ( "invariant subscript vs calls",
      `Quick,
      test_lint_invariant_subscript_call_blocks_global );
    ("invariant innermost only", `Quick, test_lint_invariant_innermost_only);
    ("constant loop condition", `Quick, test_lint_constant_condition);
    ( "reduction escape shapes",
      `Quick,
      test_lint_reduction_escape_shapes );
    ( "reduction escape scopes",
      `Quick,
      test_lint_reduction_escape_scopes );
    ("shared global write", `Quick, test_lint_shared_global_write);
  ]
