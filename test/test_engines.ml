(* Differential tests: the closure-threaded engine (Vm.Lower) and the
   register-IR backend (Ir.Exec) against the reference switch
   interpreter. The engines must agree on everything observable —
   results, metric counters, the full hook-event stream (pcs, addresses,
   ordering), canonical profiles, telemetry, and trap (message, pc)
   pairs, including at every fuel level, where fused superinstructions
   (threaded) and tick segments (register) must hand the machine back to
   the reference loop mid-window. *)

module Machine = Vm.Machine
module Profiler = Alchemist.Profiler

let fuel = 10_000_000
let engines = [ Machine.Switch; Machine.Threaded; Machine.Register ]
let ename e = Machine.engine_to_string e

let compile_workload (w : Workloads.Workload.t) =
  Vm.Compile.compile_source (w.source ~scale:w.test_scale)

(* --- result equality --------------------------------------------------- *)

let check_same_result name (a : Machine.result) (b : Machine.result) =
  Alcotest.(check int) (name ^ ": exit_value") a.exit_value b.exit_value;
  Alcotest.(check int) (name ^ ": instructions") a.instructions b.instructions;
  Alcotest.(check (list int)) (name ^ ": output") a.output b.output;
  Alcotest.(check int) (name ^ ": reads") a.metrics.reads b.metrics.reads;
  Alcotest.(check int) (name ^ ": writes") a.metrics.writes b.metrics.writes;
  Alcotest.(check int) (name ^ ": calls") a.metrics.calls b.metrics.calls;
  Alcotest.(check int)
    (name ^ ": branches") a.metrics.branches b.metrics.branches;
  Alcotest.(check int)
    (name ^ ": frames_released") a.metrics.frames_released
    b.metrics.frames_released;
  Alcotest.(check int)
    (name ^ ": max_call_depth") a.metrics.max_call_depth
    b.metrics.max_call_depth;
  Alcotest.(check int)
    (name ^ ": mem_high_water") a.metrics.mem_high_water
    b.metrics.mem_high_water

let test_registry_unhooked () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = compile_workload w in
      let sw = Ir.Engine.run ~engine:Switch ~fuel prog in
      List.iter
        (fun engine ->
          let r = Ir.Engine.run ~engine ~fuel prog in
          check_same_result (w.name ^ " " ^ ename engine) sw r)
        [ Machine.Threaded; Machine.Register ];
      (* regalloc-off ablation: identity-mapped windows, same semantics *)
      let id = Ir.Engine.run ~engine:Register ~regalloc:false ~fuel prog in
      check_same_result (w.name ^ " register/regalloc=off") sw id)
    Workloads.Registry.all

(* The register backend must actually compile every registry workload —
   a silent bail would fall back to the threaded engine and pass every
   differential below vacuously. *)
let test_register_lowering_coverage () =
  let check name prog =
    List.iter
      (fun hooked ->
        match Ir.Lower.lower ~hooked ~pruned:(fun _ -> false) prog with
        | Some lw ->
            Alcotest.(check bool)
              (Printf.sprintf "%s (hooked=%b): nonempty IR" name hooked)
              true
              (Array.length lw.Ir.Lower.instrs > 2)
        | None ->
            Alcotest.failf "%s: register lowering bailed (hooked=%b)" name
              hooked)
      [ false; true ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) -> check w.name (compile_workload w))
    Workloads.Registry.all

(* --- full hook-event stream -------------------------------------------- *)

(* Serialize every hook invocation; engines must produce byte-identical
   logs. This is stronger than comparing profiles: it pins the ordering
   and the original pcs that fused steps and register tick segments are
   required to preserve. *)
let event_log ?(fuel = fuel) ?regalloc ?ring ~engine ~trace_locals prog =
  let buf = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let hooks =
    {
      Vm.Hooks.on_instr = (fun ~pc -> p "i %d\n" pc);
      on_read = (fun ~pc ~addr -> p "r %d %d\n" pc addr);
      on_write = (fun ~pc ~addr -> p "w %d %d\n" pc addr);
      on_branch =
        (fun ~pc ~kind ~cid ~taken ->
          let k =
            match kind with
            | Vm.Instr.BrIf -> "if"
            | Vm.Instr.BrLoop -> "loop"
            | Vm.Instr.BrSc -> "sc"
          in
          p "b %d %s %d %b\n" pc k cid taken);
      on_call = (fun ~pc ~fid -> p "c %d %d\n" pc fid);
      on_ret = (fun ~pc ~fid -> p "t %d %d\n" pc fid);
      on_frame_release = (fun ~base ~size -> p "f %d %d\n" base size);
    }
  in
  let r =
    Ir.Engine.run_hooked ~engine ?regalloc ?ring ~trace_locals ~fuel hooks prog
  in
  p "exit %d %d\n" r.exit_value r.instructions;
  Buffer.contents buf

let event_log_or_trap ?fuel ?regalloc ?ring ~engine ~trace_locals prog =
  match event_log ?fuel ?regalloc ?ring ~engine ~trace_locals prog with
  | log -> log
  | exception Machine.Trap (msg, pc) -> Printf.sprintf "trap %S at %d" msg pc

let check_event_stream name prog =
  List.iter
    (fun trace_locals ->
      let name = Printf.sprintf "%s (trace_locals=%b)" name trace_locals in
      let sw = event_log ~engine:Switch ~trace_locals prog in
      List.iter
        (fun engine ->
          let l = event_log ~engine ~trace_locals prog in
          Alcotest.(check string)
            (Printf.sprintf "%s: %s event stream" name (ename engine))
            sw l)
        [ Machine.Threaded; Machine.Register ])
    [ false; true ]

(* For the registry workloads (millions of events) a literal log would be
   hundreds of MB, so the stream is folded into an order-sensitive
   polynomial hash plus per-hook counts instead. The byte-exact log
   comparison still runs on the Fig. 4 snippets and random programs. *)
let event_signature ~engine ~trace_locals prog =
  let h = ref 0 and n = ref 0 in
  let mix v =
    h := (!h * 1_000_003) + v;
    incr n
  in
  let hooks =
    {
      Vm.Hooks.on_instr = (fun ~pc -> mix (1 + (pc * 8)));
      on_read = (fun ~pc ~addr -> mix (2 + (pc * 8)); mix addr);
      on_write = (fun ~pc ~addr -> mix (3 + (pc * 8)); mix addr);
      on_branch =
        (fun ~pc ~kind ~cid ~taken ->
          mix (4 + (pc * 8));
          mix
            (match kind with
            | Vm.Instr.BrIf -> 0
            | Vm.Instr.BrLoop -> 1
            | Vm.Instr.BrSc -> 2);
          mix cid;
          mix (Bool.to_int taken));
      on_call = (fun ~pc ~fid -> mix (5 + (pc * 8)); mix fid);
      on_ret = (fun ~pc ~fid -> mix (6 + (pc * 8)); mix fid);
      on_frame_release = (fun ~base ~size -> mix (7 + (base * 8)); mix size);
    }
  in
  let r = Ir.Engine.run_hooked ~engine ~trace_locals ~fuel hooks prog in
  (!h, !n, r.exit_value, r.instructions)

let test_registry_event_stream () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = compile_workload w in
      List.iter
        (fun trace_locals ->
          let hs, ns, es, is =
            event_signature ~engine:Switch ~trace_locals prog
          in
          List.iter
            (fun engine ->
              let name =
                Printf.sprintf "%s %s (trace_locals=%b)" w.name (ename engine)
                  trace_locals
              in
              let ht, nt, et, it = event_signature ~engine ~trace_locals prog in
              Alcotest.(check int) (name ^ ": event count") ns nt;
              Alcotest.(check int) (name ^ ": event hash") hs ht;
              Alcotest.(check int) (name ^ ": exit") es et;
              Alcotest.(check int) (name ^ ": instructions") is it)
            [ Machine.Threaded; Machine.Register ])
        [ false; true ])
    Workloads.Registry.all

(* The Fig. 4 construct-nesting snippets: procedure nesting, conditionals
   inside loops, and sibling loop iterations. *)
let fig4_snippets =
  [
    ( "fig4a",
      "int a() { return 1; }\n\
       int b() { return a() + a(); }\n\
       int main() { return b(); }" );
    ( "fig4b",
      "int main() {\n\
      \  int x; int i;\n\
      \  x = 0;\n\
      \  for (i = 0; i < 8; i = i + 1) {\n\
      \    if (i % 2 == 0) { if (i > 3) { x = x + i; } }\n\
      \  }\n\
      \  return x;\n\
       }" );
    ( "fig4c",
      "int g[8];\n\
       int main() {\n\
      \  int i; int j; int s;\n\
      \  s = 0;\n\
      \  for (i = 0; i < 4; i = i + 1) {\n\
      \    for (j = 0; j < 8; j = j + 1) { g[j] = g[j] + i; }\n\
      \    s = s + g[i];\n\
      \  }\n\
      \  return s;\n\
       }" );
  ]

let test_fig4_event_stream () =
  List.iter
    (fun (name, src) -> check_event_stream name (Vm.Compile.compile_source src))
    fig4_snippets

(* --- profiles and telemetry -------------------------------------------- *)

(* Drop instruments that legitimately differ between two runs: wall-clock
   timers, the engine-identity gauge, and the register backend's own
   ir.* compilation stats. Everything else — every counter, histogram
   bucket, and gauge across vm/shadow/pool/tree/profiler — must match
   exactly. *)
let comparable snap =
  Obs.filter
    (fun name v ->
      (match v with Obs.Span _ -> false | _ -> true)
      && name <> "vm.engine"
      && not (String.length name >= 3 && String.sub name 0 3 = "ir."))
    snap

let telemetry_text snap = Obs.render_text (comparable snap)

let test_registry_profiles () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = compile_workload w in
      let sw = Profiler.run ~engine:Switch ~fuel prog in
      List.iter
        (fun engine ->
          let r = Profiler.run ~engine ~fuel prog in
          let name = w.name ^ " " ^ ename engine in
          Alcotest.(check string)
            (name ^ ": canonical profile")
            (Alchemist.Profile_io.to_string sw.profile)
            (Alchemist.Profile_io.to_string r.profile);
          Alcotest.(check string)
            (name ^ ": telemetry")
            (telemetry_text (Profiler.telemetry sw))
            (telemetry_text (Profiler.telemetry r));
          check_same_result (name ^ ": profiled run") sw.run r.run)
        [ Machine.Threaded; Machine.Register ])
    Workloads.Registry.all

let test_engine_gauge () =
  let prog = Vm.Compile.compile_source "int main() { return 7; }" in
  let gauge engine =
    let r = Profiler.run ~engine prog in
    match Obs.find (Profiler.telemetry r) "vm.engine" with
    | Some (Obs.Level { last; _ }) -> last
    | _ -> -1
  in
  Alcotest.(check int) "switch gauge" 0 (gauge Machine.Switch);
  Alcotest.(check int) "threaded gauge" 1 (gauge Machine.Threaded);
  Alcotest.(check int) "register gauge" 2 (gauge Machine.Register)

(* The register engine publishes its compilation telemetry. *)
let test_register_telemetry () =
  let w = Workloads.Registry.find "gzip-1.3.5" in
  let prog = compile_workload w in
  let r = Profiler.run ~engine:Machine.Register ~fuel prog in
  let level name =
    match Obs.find (Profiler.telemetry r) name with
    | Some (Obs.Level { last; _ }) -> last
    | _ -> -1
  in
  (* instrs_per_stack_instr is scaled by 1000; a working lowering emits
     fewer IR instructions than stack pcs (that is the point). *)
  let ratio = level "ir.instrs_per_stack_instr" in
  Alcotest.(check bool) "ir ratio published" true (ratio > 0);
  Alcotest.(check bool) "ir compresses the program" true (ratio < 1000);
  (* 16 physical registers cover every registry workload frame *)
  Alcotest.(check int) "no spills on gzip" 0 (level "ir.spills")

let test_trace_locals_profile () =
  let w = Workloads.Registry.find "gzip-1.3.5" in
  let prog = compile_workload w in
  let sw = Profiler.run ~engine:Switch ~fuel ~trace_locals:true prog in
  List.iter
    (fun engine ->
      let r = Profiler.run ~engine ~fuel ~trace_locals:true prog in
      Alcotest.(check string)
        ("trace_locals profile " ^ ename engine)
        (Alchemist.Profile_io.to_string sw.profile)
        (Alchemist.Profile_io.to_string r.profile))
    [ Machine.Threaded; Machine.Register ]

(* --- superinstruction ablation ----------------------------------------- *)

let test_fusion_off () =
  let w = Workloads.Registry.find "gzip-1.3.5" in
  let prog = compile_workload w in
  let sw =
    Machine.run_hooked ~engine:Switch ~trace_locals:false ~fuel Vm.Hooks.noop
      prog
  in
  let unfused =
    Vm.Lower.exec ~hooked:true ~trace_locals:false ~fuse:false Vm.Hooks.noop
      ~fuel prog
  in
  check_same_result "fuse=false" sw unfused

let test_fusions_installed () =
  let w = Workloads.Registry.find "gzip-1.3.5" in
  let prog = compile_workload w in
  let fs = Vm.Lower.fusions prog in
  Alcotest.(check bool)
    "gzip has superinstruction sites" true
    (List.length fs > 50);
  (* Interiors are straight-line: no fused window spans a control
     transfer except in its final slot. *)
  List.iter
    (fun (f : Vm.Lower.fusion) ->
      for k = 0 to f.length - 2 do
        Alcotest.(check bool)
          (Printf.sprintf "window at %d interior control-free" f.head)
          false
          (Vm.Instr.is_control prog.Vm.Program.code.(f.head + k))
      done)
    fs;
  (* The dominant loop idioms from the workload study are present. *)
  let names = List.map (fun (f : Vm.Lower.fusion) -> f.name) fs in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has " ^ expected) true (List.mem expected names))
    [ "load.l+const+bin+store.l+jmp"; "load.l+const+bin+brz"; "const+bin" ]

(* --- fuel and traps ----------------------------------------------------- *)

let run_outcome ~engine ?regalloc ?(trace_locals = false) ~fuel prog =
  match
    Ir.Engine.run_hooked ~engine ?regalloc ~trace_locals ~fuel Vm.Hooks.noop
      prog
  with
  | r -> Printf.sprintf "exit %d instrs %d" r.exit_value r.instructions
  | exception Machine.Trap (msg, pc) -> Printf.sprintf "trap %S at %d" msg pc

(* Every fuel level from 0 to completion: the threaded engine must trap
   "out of fuel" at exactly the same pc (exercising the fused steps'
   stepwise fallback at every window offset), and the register engine
   must deoptimize — rebuild the architectural stack-machine state and
   resume in the switch loop — at every tick-segment offset. *)
let test_fuel_sweep () =
  let src =
    "int g[6];\n\
     int sum(int n) {\n\
    \  int i; int s;\n\
    \  s = 0;\n\
    \  for (i = 0; i < n; i = i + 1) { g[i] = 2 * i; s = s + g[i]; }\n\
    \  return s;\n\
     }\n\
     int main() { return sum(6) + sum(3); }"
  in
  let prog = Vm.Compile.compile_source src in
  let total = (Machine.run ~engine:Switch prog).instructions in
  for fuel = 0 to total do
    let sw = run_outcome ~engine:Switch ~fuel prog in
    Alcotest.(check string)
      (Printf.sprintf "fuel=%d threaded" fuel)
      sw
      (run_outcome ~engine:Threaded ~fuel prog);
    Alcotest.(check string)
      (Printf.sprintf "fuel=%d register" fuel)
      sw
      (run_outcome ~engine:Register ~fuel prog);
    Alcotest.(check string)
      (Printf.sprintf "fuel=%d register/regalloc=off" fuel)
      sw
      (run_outcome ~engine:Register ~regalloc:false ~fuel prog)
  done

(* Traps raised from inside fused windows / tick segments must carry the
   constituent's original pc and message. *)
let trap_cases =
  [
    ( "div by zero in fused update",
      "int main() { int x; int y; x = 9; y = 0; x = x / y; return x; }" );
    ( "mod by zero in fused const op",
      "int main() { int x; x = 7; x = x % 0; return x; }" );
    ( "load out of bounds in fused index",
      "int g[4];\nint main() { int i; i = 11; return g[i]; }" );
    ( "store out of bounds",
      "int g[4];\nint main() { int i; i = 4 + 3; g[i] = 1; return 0; }" );
    ( "shift out of range in fused op",
      "int main() { int x; x = 1; x = x << 77; return x; }" );
  ]

let test_fused_traps () =
  List.iter
    (fun (name, src) ->
      let prog = Vm.Compile.compile_source src in
      let sw = run_outcome ~engine:Switch ~fuel prog in
      List.iter
        (fun engine ->
          Alcotest.(check string)
            (name ^ " " ^ ename engine)
            sw
            (run_outcome ~engine ~fuel prog))
        [ Machine.Threaded; Machine.Register ];
      (* The trap must actually fire. *)
      Alcotest.(check bool)
        (name ^ " traps") true
        (String.length sw > 4 && String.sub sw 0 4 = "trap"))
    trap_cases

(* --- event ring ---------------------------------------------------------- *)

(* Ring on vs off on the register engine: batching hook delivery through
   the event ring must not change one byte of the event stream. The
   switch log is the reference for both. *)
let test_ring_event_stream () =
  List.iter
    (fun (name, src) ->
      let prog = Vm.Compile.compile_source src in
      List.iter
        (fun trace_locals ->
          let sw = event_log ~engine:Switch ~trace_locals prog in
          List.iter
            (fun ring ->
              Alcotest.(check string)
                (Printf.sprintf "%s ring=%b (trace_locals=%b)" name ring
                   trace_locals)
                sw
                (event_log ~engine:Register ~ring ~trace_locals prog))
            [ true; false ])
        [ false; true ])
    fig4_snippets

(* Fuel-boundary regression: single-step fuel across every tick-segment
   offset. A deoptimization fires mid-ring on most levels, and the
   buffered events must reach the hooks BEFORE the switch resume
   delivers its own — flushing after the stack rebuild (or not at all)
   reorders or drops the tail of the stream. Byte-compare the full
   event log at every fuel level, ring on and off. *)
let test_fuel_ring_sweep () =
  let src =
    "int g[6];\n\
     int sum(int n) {\n\
    \  int i; int s;\n\
    \  s = 0;\n\
    \  for (i = 0; i < n; i = i + 1) { g[i] = 2 * i; s = s + g[i]; }\n\
    \  return s;\n\
     }\n\
     int main() { return sum(6) + sum(3); }"
  in
  let prog = Vm.Compile.compile_source src in
  let total = (Machine.run ~engine:Switch prog).instructions in
  for fuel = 0 to total do
    let sw = event_log_or_trap ~fuel ~engine:Switch ~trace_locals:false prog in
    List.iter
      (fun ring ->
        Alcotest.(check string)
          (Printf.sprintf "fuel=%d ring=%b" fuel ring)
          sw
          (event_log_or_trap ~fuel ~ring ~engine:Register ~trace_locals:false
             prog))
      [ true; false ]
  done

(* Alloc/free churn: a frame with a local array released on every call
   inside a loop, so clear_range fires between batched accesses of the
   same addresses over and over — the shadow freshen memo must be
   invalidated by each release or stale cells would fabricate
   cross-activation edges. Full profile byte-compare across engines and
   ring modes. *)
let test_churn_profile () =
  let src =
    "int acc[4];\n\
     int scratch(int k) {\n\
    \  int b[8]; int i; int s;\n\
    \  s = 0;\n\
    \  for (i = 0; i < 8; i = i + 1) { b[i] = k + i; }\n\
    \  for (i = 0; i < 8; i = i + 1) { s = s + b[i]; }\n\
    \  return s;\n\
     }\n\
     int main() {\n\
    \  int j; int t;\n\
    \  t = 0;\n\
    \  for (j = 0; j < 20; j = j + 1) { t = t + scratch(j); acc[j % 4] = t; }\n\
    \  return t;\n\
     }"
  in
  let prog = Vm.Compile.compile_source src in
  let reference =
    Alchemist.Profile_io.to_string
      (Profiler.run ~engine:Switch ~fuel prog).Profiler.profile
  in
  List.iter
    (fun engine ->
      List.iter
        (fun ring ->
          Alcotest.(check string)
            (Printf.sprintf "churn %s ring=%b" (ename engine) ring)
            reference
            (Alchemist.Profile_io.to_string
               (Profiler.run ~engine ~ring ~fuel prog).Profiler.profile))
        [ true; false ])
    engines

(* --- random program differential ---------------------------------------- *)

let test_qcheck_differential () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"all engines on random programs" ~count:60
       Testgen.arbitrary_program (fun p ->
         let prog = Vm.Compile.compile p in
         (* A tight budget keeps the logs small and makes "out of fuel"
            itself part of the differential surface. *)
         let out engine =
           List.map
             (fun trace_locals ->
               event_log_or_trap ~fuel:200_000 ~engine ~trace_locals prog)
             [ false; true ]
         in
         let sw = out Machine.Switch in
         sw = out Machine.Threaded && sw = out Machine.Register))

(* Register allocation is a pure renaming: coloring on vs. identity
   windows must not change a single observable byte on random
   programs. *)
let test_qcheck_regalloc () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"regalloc on vs off on random programs" ~count:40
       Testgen.arbitrary_program (fun p ->
         let prog = Vm.Compile.compile p in
         let out regalloc =
           event_log_or_trap ~fuel:200_000 ~regalloc ~engine:Machine.Register
             ~trace_locals:false prog
         in
         out true = out false))

(* Random configuration matrix: any (engine, fuel bound, prune mask,
   ring mode) must produce the profile of the reference configuration
   byte-for-byte — or trap identically when the fuel bound bites. Runs
   over the Fig. 4 snippets plus the two smallest-scaled registry
   workloads. *)
let test_qcheck_profile_matrix () =
  let progs =
    List.map
      (fun (name, src) -> (name, Vm.Compile.compile_source src))
      fig4_snippets
    @ (match Workloads.Registry.all with
      | a :: b :: _ ->
          [ (a.Workloads.Workload.name, compile_workload a);
            (b.Workloads.Workload.name, compile_workload b) ]
      | _ -> [])
  in
  let progs = Array.of_list progs in
  let profile_or_trap ~engine ~ring ~static_prune ~fuel prog =
    match Profiler.run ~engine ~ring ~static_prune ~fuel prog with
    | r -> Alchemist.Profile_io.to_string r.Profiler.profile
    | exception Machine.Trap (msg, pc) -> Printf.sprintf "trap %S at %d" msg pc
  in
  let gen =
    QCheck.Gen.(
      tup4 (int_bound (Array.length progs - 1))
        (oneofl [ Machine.Switch; Machine.Threaded; Machine.Register ])
        (tup2 (oneof [ int_range 1 5_000; return 10_000_000 ]) bool)
        bool)
  in
  let print (i, e, (fuel, prune), ring) =
    Printf.sprintf "%s engine=%s fuel=%d prune=%b ring=%b" (fst progs.(i))
      (ename e) fuel prune ring
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"profile identical across engine/fuel/prune/ring"
       ~count:48
       (QCheck.make gen ~print)
       (fun (i, engine, (fuel, static_prune), ring) ->
         let _, prog = progs.(i) in
         profile_or_trap ~engine:Machine.Switch ~ring:true ~static_prune:true
           ~fuel prog
         = profile_or_trap ~engine ~ring ~static_prune ~fuel prog))

let suite =
  [
    ("registry unhooked differential", `Quick, test_registry_unhooked);
    ("register lowering coverage", `Quick, test_register_lowering_coverage);
    ("registry event streams", `Quick, test_registry_event_stream);
    ("fig4 event streams", `Quick, test_fig4_event_stream);
    ("registry profiles byte-identical", `Quick, test_registry_profiles);
    ("vm.engine gauge", `Quick, test_engine_gauge);
    ("register telemetry", `Quick, test_register_telemetry);
    ("trace_locals profile identical", `Quick, test_trace_locals_profile);
    ("fusion off differential", `Quick, test_fusion_off);
    ("fusions installed and well-formed", `Quick, test_fusions_installed);
    ("fuel sweep trap parity", `Quick, test_fuel_sweep);
    ("fused trap pc/message parity", `Quick, test_fused_traps);
    ("ring event streams", `Quick, test_ring_event_stream);
    ("ring fuel-boundary sweep", `Quick, test_fuel_ring_sweep);
    ("alloc/free churn profile", `Quick, test_churn_profile);
    ("qcheck differential", `Quick, test_qcheck_differential);
    ("qcheck regalloc round-trip", `Quick, test_qcheck_regalloc);
    ("qcheck profile config matrix", `Quick, test_qcheck_profile_matrix);
  ]
