(* Tests for shadow-memory dependence detection. *)

module SM = Shadow.Shadow_memory
module Dep = Shadow.Dependence

let node () = Indexing.Node.make ()

let collect () =
  let deps = ref [] in
  let sm = SM.create ~on_dep:(fun d -> deps := d :: !deps) () in
  (sm, fun () -> List.rev !deps)

let kinds ds = List.map (fun d -> d.Dep.kind) ds

let test_raw () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:5 ~pc:10 ~time:1 ~node:n;
  SM.read sm ~addr:5 ~pc:20 ~time:4 ~node:n;
  match got () with
  | [ d ] ->
      Alcotest.(check bool) "kind" true (d.Dep.kind = Dep.Raw);
      Alcotest.(check int) "head pc" 10 d.Dep.head.Dep.pc;
      Alcotest.(check int) "tail pc" 20 d.Dep.tail.Dep.pc;
      Alcotest.(check int) "distance" 3 (Dep.distance d)
  | ds -> Alcotest.failf "expected 1 dep, got %d" (List.length ds)

let test_raw_last_write_only () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:1 ~pc:10 ~time:1 ~node:n;
  SM.write sm ~addr:1 ~pc:11 ~time:2 ~node:n;
  (* WAW between the writes *)
  SM.read sm ~addr:1 ~pc:20 ~time:5 ~node:n;
  let ds = got () in
  Alcotest.(check int) "two deps" 2 (List.length ds);
  let raw = List.find (fun d -> d.Dep.kind = Dep.Raw) ds in
  Alcotest.(check int) "raw head is LAST write" 11 raw.Dep.head.Dep.pc

let test_war_all_reads () =
  let sm, got = collect () in
  let n = node () in
  SM.read sm ~addr:3 ~pc:30 ~time:1 ~node:n;
  SM.read sm ~addr:3 ~pc:31 ~time:2 ~node:n;
  SM.write sm ~addr:3 ~pc:40 ~time:6 ~node:n;
  let ds = got () |> List.filter (fun d -> d.Dep.kind = Dep.War) in
  Alcotest.(check int) "war edges from both read pcs" 2 (List.length ds);
  let heads = List.map (fun d -> d.Dep.head.Dep.pc) ds |> List.sort compare in
  Alcotest.(check (list int)) "heads" [ 30; 31 ] heads

let test_war_latest_per_pc () =
  let sm, got = collect () in
  let n = node () in
  SM.read sm ~addr:3 ~pc:30 ~time:1 ~node:n;
  SM.read sm ~addr:3 ~pc:30 ~time:4 ~node:n;
  (* same static pc again *)
  SM.write sm ~addr:3 ~pc:40 ~time:6 ~node:n;
  let ds = got () |> List.filter (fun d -> d.Dep.kind = Dep.War) in
  match ds with
  | [ d ] ->
      Alcotest.(check int) "latest read kept (min Tdep)" 2 (Dep.distance d)
  | _ -> Alcotest.failf "expected 1 WAR, got %d" (List.length ds)

let test_waw () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:7 ~pc:10 ~time:1 ~node:n;
  SM.write sm ~addr:7 ~pc:12 ~time:9 ~node:n;
  match got () with
  | [ d ] ->
      Alcotest.(check bool) "waw" true (d.Dep.kind = Dep.Waw);
      Alcotest.(check int) "distance" 8 (Dep.distance d)
  | ds -> Alcotest.failf "expected 1 dep, got %d" (List.length ds)

let test_write_clears_reads () =
  let sm, got = collect () in
  let n = node () in
  SM.read sm ~addr:3 ~pc:30 ~time:1 ~node:n;
  SM.write sm ~addr:3 ~pc:40 ~time:2 ~node:n;
  (* WAR *)
  SM.write sm ~addr:3 ~pc:41 ~time:3 ~node:n;
  (* WAW only: the read must not fire a second WAR *)
  let wars = got () |> List.filter (fun d -> d.Dep.kind = Dep.War) in
  Alcotest.(check int) "single WAR" 1 (List.length wars)

let test_distinct_addresses_independent () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:100 ~pc:1 ~time:1 ~node:n;
  SM.read sm ~addr:200 ~pc:2 ~time:2 ~node:n;
  Alcotest.(check (list int)) "no deps" []
    (List.map Dep.distance (got ()))

(* The paper's gzip observation: writes to disjoint buffer slots produce no
   WAW even when the buffer index (a scalar) does conflict. *)
let test_disjoint_buffer_slots () =
  let sm, got = collect () in
  let n = node () in
  (* outbuf[outcnt++] pattern: writes to addr 50,51,52; outcnt at addr 9. *)
  for i = 0 to 2 do
    let t = 1 + (4 * i) in
    SM.read sm ~addr:9 ~pc:5 ~time:t ~node:n;
    SM.write sm ~addr:9 ~pc:6 ~time:(t + 1) ~node:n;
    SM.write sm ~addr:(50 + i) ~pc:7 ~time:(t + 2) ~node:n
  done;
  let ds = got () in
  let on_buffer =
    List.filter
      (fun d -> d.Dep.head.Dep.pc = 7 && d.Dep.kind = Dep.Waw)
      ds
  in
  Alcotest.(check int) "no WAW on disjoint slots" 0 (List.length on_buffer);
  let on_counter = List.filter (fun d -> d.Dep.kind = Dep.Waw) ds in
  Alcotest.(check int) "WAW on the counter" 2 (List.length on_counter)

let test_clear_range () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:64 ~pc:1 ~time:1 ~node:n;
  SM.write sm ~addr:65 ~pc:1 ~time:2 ~node:n;
  SM.clear_range sm ~base:64 ~size:2;
  SM.read sm ~addr:64 ~pc:2 ~time:3 ~node:n;
  SM.write sm ~addr:65 ~pc:3 ~time:4 ~node:n;
  Alcotest.(check int) "history dropped" 0 (List.length (got ()));
  Alcotest.(check bool) "addresses re-tracked" true (SM.tracked_addresses sm >= 2)

(* Regression: a large interior clear_range must honor the range end.
   The old lazy path tagged [base, inf) whenever size exceeded the eager
   limit, wiping history above base+size. *)
let test_clear_range_interior () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:100 ~pc:1 ~time:1 ~node:n;
  SM.write sm ~addr:300 ~pc:2 ~time:2 ~node:n;
  (* size 200 > eager limit, but [50, 250) stops below addr 300 *)
  SM.clear_range sm ~base:50 ~size:200;
  SM.read sm ~addr:100 ~pc:3 ~time:3 ~node:n;
  SM.read sm ~addr:300 ~pc:4 ~time:4 ~node:n;
  match got () with
  | [ d ] ->
      Alcotest.(check bool) "kind" true (d.Dep.kind = Dep.Raw);
      Alcotest.(check int) "surviving head" 2 d.Dep.head.Dep.pc;
      Alcotest.(check int) "surviving tail" 4 d.Dep.tail.Dep.pc
  | ds ->
      Alcotest.failf "expected exactly the dep above the range, got %d"
        (List.length ds)

(* clear_from is the O(1) frame-release path: everything at or above base
   is stale, including addresses far beyond any eager-scrub window. *)
let test_clear_from_suffix () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:10 ~pc:1 ~time:1 ~node:n;
  SM.write sm ~addr:100 ~pc:2 ~time:2 ~node:n;
  SM.write sm ~addr:5000 ~pc:3 ~time:3 ~node:n;
  SM.clear_from sm ~base:64;
  SM.read sm ~addr:100 ~pc:4 ~time:4 ~node:n;
  SM.read sm ~addr:5000 ~pc:5 ~time:5 ~node:n;
  SM.read sm ~addr:10 ~pc:6 ~time:6 ~node:n;
  match got () with
  | [ d ] ->
      Alcotest.(check bool) "kind" true (d.Dep.kind = Dep.Raw);
      Alcotest.(check int) "head below base survives" 1 d.Dep.head.Dep.pc;
      Alcotest.(check int) "tail" 6 d.Dep.tail.Dep.pc
  | ds ->
      Alcotest.failf "expected exactly the dep below base, got %d"
        (List.length ds)

(* Regression for the freshen memo (clear generations): a clear of any
   kind between two accesses of the same address must force the second
   access back through the freshen path — a memo stamp surviving a clear
   would let a lazily cleared cell masquerade as live history (stale
   WAW/RAW from before the clear). *)
let test_clear_invalidates_freshen_memo () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:100 ~pc:1 ~time:1 ~node:n;
  (* stamps the memo for 100 *)
  SM.clear_from sm ~base:64;
  (* lazy suffix tag: the cell still physically holds pc 1 *)
  SM.write sm ~addr:100 ~pc:2 ~time:2 ~node:n;
  Alcotest.(check int) "no stale WAW across clear_from" 0
    (List.length (got ()));
  (* same via the eager clear_range branch, mid-range *)
  SM.write sm ~addr:7 ~pc:3 ~time:3 ~node:n;
  SM.clear_range sm ~base:6 ~size:4;
  SM.write sm ~addr:7 ~pc:4 ~time:4 ~node:n;
  Alcotest.(check int) "no stale WAW across interior clear_range" 0
    (List.length (got ()))

(* The memo itself: repeated accesses to one address between clears run
   the ensure+freshen check once, and a clear re-arms it. The counter is
   a pure function of the access/clear stream, so it is also safe for
   cross-engine telemetry comparison. *)
let test_freshen_memo_counter () =
  let sm, _ = collect () in
  let reg = Obs.Registry.create () in
  SM.register_obs sm reg;
  let checks () =
    match Obs.find (Obs.Registry.snapshot reg) "shadow.freshen_checks" with
    | Some (Obs.Count n) -> n
    | _ -> -1
  in
  let n = node () in
  SM.write sm ~addr:9 ~pc:1 ~time:1 ~node:n;
  SM.read sm ~addr:9 ~pc:2 ~time:2 ~node:n;
  SM.read sm ~addr:9 ~pc:3 ~time:3 ~node:n;
  Alcotest.(check int) "one check for three accesses" 1 (checks ());
  SM.clear_from sm ~base:0;
  SM.write sm ~addr:9 ~pc:4 ~time:4 ~node:n;
  Alcotest.(check int) "clear re-arms the check" 2 (checks ());
  Alcotest.(check int) "events unaffected" 4 (SM.events sm)

(* The no-op fast path of clear_range (range entirely at or above the
   touched high-water mark) must keep real clears working: it skips the
   generation bump, which is sound exactly because untouched addresses
   carry no stamps. *)
let test_noop_clear_keeps_memo_sound () =
  let sm, got = collect () in
  let n = node () in
  SM.write sm ~addr:10 ~pc:1 ~time:1 ~node:n;
  (* far above hi: the no-op path *)
  SM.clear_range sm ~base:100_000 ~size:64;
  SM.read sm ~addr:10 ~pc:2 ~time:2 ~node:n;
  (match got () with
  | [ d ] -> Alcotest.(check bool) "RAW survives a no-op clear" true (d.Dep.kind = Dep.Raw)
  | ds -> Alcotest.failf "expected 1 dep, got %d" (List.length ds));
  (* a real clear afterwards still invalidates *)
  SM.clear_from sm ~base:0;
  SM.write sm ~addr:10 ~pc:3 ~time:3 ~node:n;
  Alcotest.(check int) "then a real clear still clears" 1
    (List.length (got ()))

let test_counters () =
  let sm, _ = collect () in
  let n = node () in
  SM.write sm ~addr:1 ~pc:1 ~time:1 ~node:n;
  SM.read sm ~addr:1 ~pc:2 ~time:2 ~node:n;
  SM.read sm ~addr:2 ~pc:3 ~time:3 ~node:n;
  Alcotest.(check int) "events" 3 (SM.events sm);
  Alcotest.(check int) "deps" 1 (SM.deps_emitted sm);
  Alcotest.(check int) "tracked" 2 (SM.tracked_addresses sm)

(* Property: on a random access sequence over a small address range, every
   emitted dependence has positive-or-zero distance, correct ordering, and
   RAW heads are always the most recent write to that address. *)
let test_random_sequences_qcheck () =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 200)
        (tup3 bool (int_range 0 4) (int_range 0 30)))
  in
  let prop ops =
    let deps = ref [] in
    let sm = SM.create ~on_dep:(fun d -> deps := d :: !deps) () in
    let n = node () in
    let last_write = Array.make 5 None in
    let time = ref 0 in
    let ok = ref true in
    List.iter
      (fun (is_write, addr, pc) ->
        incr time;
        let before = !deps in
        if is_write then SM.write sm ~addr ~pc ~time:!time ~node:n
        else SM.read sm ~addr ~pc ~time:!time ~node:n;
        let new_deps =
          List.filteri (fun i _ -> i < List.length !deps - List.length before) !deps
        in
        List.iter
          (fun d ->
            if Dep.distance d < 0 then ok := false;
            if d.Dep.tail.Dep.time <> !time then ok := false;
            match (d.Dep.kind, last_write.(addr)) with
            | Dep.Raw, Some (wpc, wt) ->
                if d.Dep.head.Dep.pc <> wpc || d.Dep.head.Dep.time <> wt then
                  ok := false
            | Dep.Raw, None -> ok := false
            | _ -> ())
          new_deps;
        if is_write then last_write.(addr) <- Some (pc, !time))
      ops;
    !ok
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"random access sequences" ~count:300
       (QCheck.make gen) prop)

let suite =
  [
    ("raw", `Quick, test_raw);
    ("raw last write only", `Quick, test_raw_last_write_only);
    ("war all reads", `Quick, test_war_all_reads);
    ("war latest per pc", `Quick, test_war_latest_per_pc);
    ("waw", `Quick, test_waw);
    ("write clears reads", `Quick, test_write_clears_reads);
    ("distinct addresses", `Quick, test_distinct_addresses_independent);
    ("disjoint buffer slots", `Quick, test_disjoint_buffer_slots);
    ("clear range", `Quick, test_clear_range);
    ("clear range honors range end", `Quick, test_clear_range_interior);
    ("clear from suffix", `Quick, test_clear_from_suffix);
    ( "clear invalidates freshen memo",
      `Quick,
      test_clear_invalidates_freshen_memo );
    ("freshen memo counter", `Quick, test_freshen_memo_counter);
    ("no-op clear keeps memo sound", `Quick, test_noop_clear_keeps_memo_sound);
    ("counters", `Quick, test_counters);
    ("random sequences (qcheck)", `Quick, test_random_sequences_qcheck);
  ]
