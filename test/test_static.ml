(* Tests for the static dependence engine: the dataflow solver, the
   points-to analysis, verdict classification, instrumentation pruning
   (including the byte-identity guarantee over every registry workload),
   and the profile sanitizer — with seeded bugs proving the sanitizer
   actually fails. *)

module Depend = Static.Depend
module Pts = Static.Points_to
module Rd = Static.Reaching_defs
module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Profile_io = Alchemist.Profile_io
module Sanitize = Alchemist.Sanitize
module Dep = Shadow.Dependence

let compile = Vm.Compile.compile_source

(* --- pc discovery helpers ------------------------------------------------- *)

let pcs_matching (prog : Vm.Program.t) f =
  let acc = ref [] in
  Array.iteri (fun pc i -> if f i then acc := pc :: !acc) prog.code;
  List.rev !acc

let only name = function
  | [ pc ] -> pc
  | l -> Alcotest.failf "expected exactly one %s, found %d" name (List.length l)

let store_global prog name =
  let base, _ = Option.get (Vm.Program.find_global prog name) in
  only
    ("StoreGlobal " ^ name)
    (pcs_matching prog (function
      | Vm.Instr.StoreGlobal a -> a = base
      | _ -> false))

let load_globals prog name =
  let base, _ = Option.get (Vm.Program.find_global prog name) in
  pcs_matching prog (function
    | Vm.Instr.LoadGlobal a -> a = base
    | _ -> false)

let load_global prog name = only ("LoadGlobal " ^ name) (load_globals prog name)

let cproc_of (prog : Vm.Program.t) fname =
  let c =
    Array.to_list prog.constructs
    |> List.find (fun (c : Vm.Program.construct_info) ->
           c.kind = Vm.Program.CProc && c.cname = fname)
  in
  c.Vm.Program.cid

let loop_cid prog line =
  (Option.get (Vm.Program.construct_at prog (Parsim.Speedup.loop_head_at_line prog line)))
    .Vm.Program.cid

(* --- dataflow solver ------------------------------------------------------- *)

module Iset = Set.Make (Int)

(* "Which blocks can this point have passed through": join = union,
   transfer adds the block's own id. On a diamond, the join block's
   input must contain both arms — the solver really joins over all
   flow predecessors, and terminates at the fixpoint despite the
   back-edge of the loop. *)
let test_dataflow_diamond_join () =
  let prog =
    compile
      {|int g;
        int main() {
          for (int i = 0; i < 3; i++) {
            if (i) { g = 1; } else { g = 2; }
          }
          return g;
        }|}
  in
  let func = prog.Vm.Program.funcs.(prog.Vm.Program.main_fid) in
  let cfg = Cfa.Cfg.build prog func in
  let module Solver = Static.Dataflow.Make (struct
    type t = Iset.t

    let equal = Iset.equal
    let join = Iset.union
  end) in
  let facts =
    Solver.solve ~direction:Static.Dataflow.Forward ~cfg
      ~init:(fun _ -> Iset.empty)
      ~transfer:(fun b s -> Iset.add b.Cfa.Cfg.bid s)
  in
  let exit_in = facts.Solver.input.(cfg.Cfa.Cfg.exit_bid) in
  let bid_of pc = cfg.Cfa.Cfg.block_of_pc.(pc - func.Vm.Program.entry) in
  let then_bid, else_bid =
    match
      pcs_matching prog (function
        | Vm.Instr.StoreGlobal a ->
            a = fst (Option.get (Vm.Program.find_global prog "g"))
        | _ -> false)
    with
    | [ a; b ] -> (bid_of a, bid_of b)
    | l -> Alcotest.failf "expected two stores, got %d" (List.length l)
  in
  Alcotest.(check bool) "exit sees then arm" true (Iset.mem then_bid exit_in);
  Alcotest.(check bool) "exit sees else arm" true (Iset.mem else_bid exit_in)

(* --- reaching definitions -------------------------------------------------- *)

let rd_of prog ~mode name =
  let base, _ = Option.get (Vm.Program.find_global prog name) in
  let func = prog.Vm.Program.funcs.(prog.Vm.Program.main_fid) in
  let cfg = Cfa.Cfg.build prog func in
  let is_store pc =
    match prog.Vm.Program.code.(pc) with
    | Vm.Instr.StoreGlobal a -> a = base
    | _ -> false
  in
  Rd.analyze ~mode ~cfg ~gen:is_store ~kills:(fun ~pc ~def:_ -> is_store pc)

let test_reaching_defs_straightline_must () =
  let prog = compile "int g; int main() { g = 1; return g; }" in
  let def = store_global prog "g" and use = load_global prog "g" in
  Alcotest.(check bool) "must reach" true
    (Rd.reaches (rd_of prog ~mode:Rd.Must "g") ~def ~use);
  Alcotest.(check bool) "may reach" true
    (Rd.reaches (rd_of prog ~mode:Rd.May "g") ~def ~use)

let test_reaching_defs_branch_may_not_must () =
  let prog =
    compile
      {|int g;
        int main() { g = 1; if (g > 0) { g = 2; } return g; }|}
  in
  let defs =
    pcs_matching prog (function
      | Vm.Instr.StoreGlobal a ->
          a = fst (Option.get (Vm.Program.find_global prog "g"))
      | _ -> false)
  in
  let first_def = List.nth defs 0 and branch_def = List.nth defs 1 in
  let use =
    match load_globals prog "g" with
    | l -> List.nth l (List.length l - 1) (* the final [return g] load *)
  in
  let may = rd_of prog ~mode:Rd.May "g" and must = rd_of prog ~mode:Rd.Must "g" in
  (* The unconditional store is killed on the taken path, the branch
     store is absent on the fall-through path: both may reach, neither
     must. *)
  Alcotest.(check bool) "first may reach" true (Rd.reaches may ~def:first_def ~use);
  Alcotest.(check bool) "branch may reach" true (Rd.reaches may ~def:branch_def ~use);
  Alcotest.(check bool) "first not must" false (Rd.reaches must ~def:first_def ~use);
  Alcotest.(check bool) "branch not must" false (Rd.reaches must ~def:branch_def ~use)

(* --- points-to -------------------------------------------------------------- *)

let test_points_to_global_scalar () =
  let prog = compile "int x; int main() { x = 3; return x; }" in
  let pts = Pts.analyze prog in
  let base, _ = Option.get (Vm.Program.find_global prog "x") in
  let a = Option.get (Pts.access pts (store_global prog "x")) in
  Alcotest.(check bool) "write" true a.Pts.is_write;
  Alcotest.(check bool) "complete" true a.Pts.complete;
  (match a.Pts.regions with
  | [ Pts.Global { base = b; len = 1 } ] ->
      Alcotest.(check int) "cell address" base b
  | _ -> Alcotest.fail "expected one exact global cell");
  Alcotest.(check bool) "not frame" false a.Pts.own_frame_direct

let test_points_to_array_param_by_reference () =
  let prog =
    compile
      {|int a[8];
        void f(int b[]) { b[0] = 1; }
        int main() { f(a); return a[0]; }|}
  in
  let pts = Pts.analyze prog in
  let base, len = Option.get (Vm.Program.find_global prog "a") in
  let store = only "StoreIndex" (pcs_matching prog (( = ) Vm.Instr.StoreIndex)) in
  let a = Option.get (Pts.access pts store) in
  Alcotest.(check bool) "complete through param" true a.Pts.complete;
  (match a.Pts.regions with
  | [ Pts.Global { base = b; len = l } ] ->
      Alcotest.(check int) "array base" base b;
      Alcotest.(check int) "array extent" len l
  | _ -> Alcotest.fail "expected the global array region");
  Alcotest.(check bool) "param indirection is not own-frame" false
    a.Pts.own_frame_direct

let test_points_to_local_array_own_frame () =
  let prog = compile "int main() { int a[4]; a[1] = 7; return a[1]; }" in
  let pts = Pts.analyze prog in
  let store = only "StoreIndex" (pcs_matching prog (( = ) Vm.Instr.StoreIndex)) in
  let a = Option.get (Pts.access pts store) in
  Alcotest.(check bool) "own frame, direct" true a.Pts.own_frame_direct;
  match a.Pts.regions with
  | [ Pts.Frame { fid; len = 4; _ } ] ->
      Alcotest.(check int) "main's frame" prog.Vm.Program.main_fid fid
  | _ -> Alcotest.fail "expected one frame region of extent 4"

(* --- verdicts ---------------------------------------------------------------- *)

let test_verdicts_scalar_matrix () =
  let prog = compile "int x; int y; int main() { x = 1; y = x + 1; return x + y; }" in
  let d = Depend.analyze prog in
  let sx = store_global prog "x"
  and sy = store_global prog "y"
  and lx = List.hd (load_globals prog "x")
  and ly = load_global prog "y" in
  (* Disjoint cells never alias. *)
  Alcotest.(check bool) "x-store to y-load independent" true
    (Depend.verdict d ~kind:Dep.Raw ~head_pc:sx ~tail_pc:ly
    = Depend.Must_independent);
  (* Same cell, straight line, no kill in between: the RAW holds on
     every execution. *)
  Alcotest.(check bool) "x-store to x-load must-dep" true
    (Depend.verdict d ~kind:Dep.Raw ~head_pc:sx ~tail_pc:lx
    = Depend.Must_dependent);
  (* A RAW must head at a write: a load-headed RAW cannot occur. *)
  Alcotest.(check bool) "load-headed RAW impossible" true
    (Depend.verdict d ~kind:Dep.Raw ~head_pc:lx ~tail_pc:ly
    = Depend.Must_independent);
  (* A WAW self-edge needs the store to execute twice; nothing proves
     that here, so it is neither refuted nor promoted. *)
  Alcotest.(check bool) "WAW self-edge stays may" true
    (Depend.verdict d ~kind:Dep.Waw ~head_pc:sx ~tail_pc:sx
    = Depend.May_dependent);
  Alcotest.(check bool) "WAW across cells impossible" true
    (Depend.verdict d ~kind:Dep.Waw ~head_pc:sx ~tail_pc:sy
    = Depend.Must_independent);
  Alcotest.(check bool) "explain is non-empty" true
    (String.length (Depend.explain d ~kind:Dep.Raw ~head_pc:sx ~tail_pc:ly) > 0)

let test_verdict_killed_on_one_path_is_may () =
  let prog =
    compile "int x; int main() { x = 1; if (x > 0) { x = 2; } return x; }"
  in
  let d = Depend.analyze prog in
  let first_store =
    List.hd
      (pcs_matching prog (function
        | Vm.Instr.StoreGlobal a ->
            a = fst (Option.get (Vm.Program.find_global prog "x"))
        | _ -> false))
  in
  let final_load =
    let l = load_globals prog "x" in
    List.nth l (List.length l - 1)
  in
  Alcotest.(check bool) "killable def downgrades to may-dep" true
    (Depend.verdict d ~kind:Dep.Raw ~head_pc:first_store ~tail_pc:final_load
    = Depend.May_dependent)

let test_verdict_array_accesses_are_may () =
  let prog =
    compile
      {|int a[8];
        int main() {
          for (int i = 0; i < 8; i++) a[i] = i;
          return a[3];
        }|}
  in
  let d = Depend.analyze prog in
  let store = only "StoreIndex" (pcs_matching prog (( = ) Vm.Instr.StoreIndex)) in
  let load = only "LoadIndex" (pcs_matching prog (( = ) Vm.Instr.LoadIndex)) in
  Alcotest.(check bool) "overlapping array extents stay may-dep" true
    (Depend.verdict d ~kind:Dep.Raw ~head_pc:store ~tail_pc:load
    = Depend.May_dependent)

(* --- liveness / called-once / pruning ------------------------------------------- *)

let test_dead_function_not_live () =
  let prog =
    compile
      {|int g;
        void dead() { g = 1; }
        int main() { return 0; }|}
  in
  let d = Depend.analyze prog in
  let dead_fid = (Option.get (Vm.Program.find_func prog "dead")).Vm.Program.fid in
  Alcotest.(check bool) "dead not live" false (Depend.live d dead_fid);
  Alcotest.(check bool) "main live" true
    (Depend.live d prog.Vm.Program.main_fid);
  (* Its store can never execute, so the hook is prunable and the pc is
     impossible as an edge endpoint. *)
  let store = store_global prog "g" in
  Alcotest.(check bool) "dead store pruned" true (Depend.prune_mask d).(store);
  Alcotest.(check bool) "dead store edge impossible" true
    (Depend.verdict d ~kind:Dep.Waw ~head_pc:store ~tail_pc:store
    = Depend.Must_independent)

let test_called_once () =
  let prog =
    compile
      {|int g;
        void once() { g += 1; }
        void many() { g += 2; }
        int main() {
          once();
          for (int i = 0; i < 4; i++) many();
          return g;
        }|}
  in
  let d = Depend.analyze prog in
  let fid name = (Option.get (Vm.Program.find_func prog name)).Vm.Program.fid in
  Alcotest.(check bool) "top-level call is once" true
    (Depend.called_once d (fid "once"));
  Alcotest.(check bool) "call under a loop is not" false
    (Depend.called_once d (fid "many"));
  Alcotest.(check bool) "main is once" true
    (Depend.called_once d prog.Vm.Program.main_fid)

let prune_demo_src =
  {|int lut[4];
    int cfg;
    int out;
    int main() {
      int acc = 0;
      for (int i = 0; i < 100; i++) {
        acc += lut[i & 3];
        acc += cfg;
      }
      out = acc;
      return out;
    }|}

let test_prune_read_only_globals () =
  let prog = compile prune_demo_src in
  let d = Depend.analyze prog in
  let mask = Depend.prune_mask d in
  (* The two loop-body reads (never-written lut, never-written cfg) are
     prunable; out is written then read, so neither its store nor its
     load can be skipped. *)
  Alcotest.(check int) "event pcs" 4 (Depend.event_count d);
  Alcotest.(check int) "pruned pcs" 2 (Depend.pruned_count d);
  Alcotest.(check bool) "cfg read pruned" true mask.(load_global prog "cfg");
  Alcotest.(check bool) "out store kept" false mask.(store_global prog "out");
  Alcotest.(check bool) "out load kept" false mask.(load_global prog "out");
  (* Stats surface the same numbers. *)
  let r = Profiler.run prog in
  Alcotest.(check int) "stats.pruned_pcs" 2 r.Profiler.stats.Profiler.pruned_pcs;
  Alcotest.(check int) "stats.event_pcs" 4 r.Profiler.stats.Profiler.event_pcs

let test_construct_proven_independent () =
  let prog = compile prune_demo_src in
  let d = Depend.analyze prog in
  Alcotest.(check bool) "read-only loop proven independent" true
    (Depend.construct_proven_independent d ~cid:(loop_cid prog 6));
  (* main's procedure body also contains the out store/load: not proven. *)
  Alcotest.(check bool) "enclosing proc not proven" false
    (Depend.construct_proven_independent d ~cid:(cproc_of prog "main"));
  (* A loop with a genuine carried dependence is never proven. *)
  let prog2 =
    compile "int g; int main() { for (int i = 0; i < 9; i++) g += i; return g; }"
  in
  let d2 = Depend.analyze prog2 in
  Alcotest.(check bool) "carried-dep loop not proven" false
    (Depend.construct_proven_independent d2 ~cid:(loop_cid prog2 1))

let test_rank_and_advice_surface_static_proof () =
  let r = Profiler.run_source prune_demo_src in
  let p = r.Profiler.profile in
  let prog = p.Profile.prog in
  let entry =
    List.find
      (fun (e : Alchemist.Ranking.entry) -> e.cid = loop_cid prog 6)
      (Alchemist.Ranking.rank p)
  in
  Alcotest.(check bool) "ranking marks the loop" true entry.static_indep;
  Alcotest.(check bool) "pp_entry shows the marker" true
    (Testutil.contains
       (Format.asprintf "%a" Alchemist.Ranking.pp_entry entry)
       "statically independent");
  let a = Alchemist.Advice.advise p ~cid:(loop_cid prog 6) in
  Alcotest.(check bool) "advice carries the proof bit" true
    (List.exists
       (function
         | Alchemist.Advice.Spawnable { statically_proven; _ } ->
             statically_proven
         | _ -> false)
       a.Alchemist.Advice.suggestions)

(* --- prune byte-identity ---------------------------------------------------- *)

let bytes_of ?engine ?static_prune prog =
  Profile_io.to_string
    (Profiler.run ?engine ?static_prune ~fuel:200_000_000 prog).Profiler.profile

let test_prune_byte_identity_registry () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = Workloads.Workload.compile w ~scale:w.test_scale in
      let off = bytes_of ~static_prune:false prog in
      Alcotest.(check string)
        (w.name ^ ": prune on = off")
        off
        (bytes_of ~static_prune:true prog);
      Alcotest.(check string)
        (w.name ^ ": switch engine pruned")
        off
        (bytes_of ~engine:Vm.Machine.Switch ~static_prune:true prog))
    Workloads.Registry.all

let test_prune_byte_identity_fig4_snippets () =
  (* The Fig. 4 construct-nesting shapes from the paper (procedures,
     nested conditionals, sibling loop iterations) — small enough to run
     both ways per engine. *)
  List.iter
    (fun src ->
      let prog = compile src in
      let off = bytes_of ~static_prune:false prog in
      Alcotest.(check string) "prune on = off" off
        (bytes_of ~static_prune:true prog);
      Alcotest.(check string) "switch = threaded" off
        (bytes_of ~engine:Vm.Machine.Switch prog))
    [
      {| int g;
         void B() { g = g + 1; }
         void A() { int s1 = 0; B(); }
         int main() { A(); return g; } |};
      {| int g;
         int main() {
           int x = 1;
           if (x) {
             g = 2;
             if (x) { g = g + 2; }
           }
           return g;
         } |};
      {| int a[4];
         int main() {
           int s = 0;
           for (int i = 0; i < 2; i++) {
             for (int j = 0; j < 2; j++) { a[j] = a[j] + i; s++; }
           }
           return s + a[0];
         } |};
      prune_demo_src;
    ]

(* --- IR region-hint widening ------------------------------------------------ *)

(* Mini-C return types are [int]/[void], so the points-to loss
   {!Ir.Refine.region_hints} targets — a global ref flowing through a
   call return, which the abstract stack collapses to "anything" — is
   pinned with hand-assembled bytecode. [getref] returns a ref to global
   [a]; [main] stores through it, then reads the unrelated scalar [b].
   Without hints the returned ref is incomplete, vetoing the store's
   prune and (an incomplete write aliases everything) poisoning the
   read's; the IR constant analysis resolves the return to [a], so
   widening must flip both pcs while the stored profile stays
   byte-identical. *)
let ref_return_prog () =
  let dum = Minic.Srcloc.dummy in
  let code =
    [|
      Vm.Instr.Call 0 (* preamble *);
      Vm.Instr.Halt;
      (* main, entry 2 *)
      Vm.Instr.Call 1 (* push getref's ref to [a] *);
      Vm.Instr.Const 1;
      Vm.Instr.Const 42;
      Vm.Instr.StoreIndex (* a[1] = 42 *);
      Vm.Instr.LoadGlobal 4 (* read b *);
      Vm.Instr.Pop;
      Vm.Instr.Const 0;
      Vm.Instr.Ret (* epilogue, pc 9 *);
      (* getref, entry 10 *)
      Vm.Instr.MakeRefGlobal (0, 4);
      Vm.Instr.Ret (* epilogue, pc 11 *);
    |]
  in
  let func fid name entry epilogue code_end =
    {
      Vm.Program.fid;
      name;
      entry;
      epilogue;
      code_end;
      nparams = 0;
      param_is_array = [||];
      frame_slots = 1;
      ret = Minic.Ast.RetInt;
      loc = dum;
    }
  in
  let cproc cid cname fid body_first body_last =
    {
      Vm.Program.cid;
      kind = Vm.Program.CProc;
      head_pc = body_first;
      fid;
      loc = dum;
      cname;
      body_first;
      body_last;
    }
  in
  let cid_of_pc = Array.make (Array.length code) (-1) in
  cid_of_pc.(2) <- 0;
  cid_of_pc.(10) <- 1;
  {
    Vm.Program.code;
    locs = Array.make (Array.length code) dum;
    funcs = [| func 0 "main" 2 9 10; func 1 "getref" 10 11 12 |];
    constructs = [| cproc 0 "main" 0 2 9; cproc 1 "getref" 1 10 11 |];
    cid_of_pc;
    globals_size = 5;
    global_layout = [ ("a", 0, 4); ("b", 4, 1) ];
    global_inits = [];
    main_fid = 0;
  }

let test_refine_widens_ref_return () =
  let prog = ref_return_prog () in
  Vm.Verify.verify_exn prog;
  let store = only "StoreIndex" (pcs_matching prog (( = ) Vm.Instr.StoreIndex)) in
  let read_b = load_global prog "b" in
  let d = Depend.analyze prog in
  let base = Depend.prune_mask d in
  Alcotest.(check bool) "store not prunable without hints" false base.(store);
  Alcotest.(check bool) "read poisoned by incomplete write" false base.(read_b);
  let mask, extra =
    Depend.widen_prune d ~region_hint:(Ir.Refine.region_hints prog)
  in
  Alcotest.(check bool) "store prunable with hints" true mask.(store);
  Alcotest.(check bool) "read prunable with hints" true mask.(read_b);
  Alcotest.(check bool) "widening reports added pcs" true (extra >= 2);
  Array.iteri
    (fun pc p ->
      if p then
        Alcotest.(check bool)
          (Printf.sprintf "monotone at pc %d" pc)
          true mask.(pc))
    base;
  (* The profiler applies the widened mask whenever pruning is on; the
     stored profile must not change — any engine, prune on or off. *)
  let off = bytes_of ~static_prune:false prog in
  List.iter
    (fun engine ->
      Alcotest.(check string) "widened prune is byte-invisible" off
        (bytes_of ~engine ~static_prune:true prog))
    [ Vm.Machine.Switch; Vm.Machine.Threaded; Vm.Machine.Register ]

(* --- sanitizer ---------------------------------------------------------------- *)

let test_sanitizer_clean_on_workload () =
  let w = Workloads.Registry.find "aes" in
  let prog = Workloads.Workload.compile w ~scale:w.Workloads.Workload.test_scale in
  let r = Profiler.run ~fuel:200_000_000 prog in
  Alcotest.(check int) "no issues" 0
    (List.length (Sanitize.check r.Profiler.profile))

let test_sanitizer_flags_impossible_edge () =
  let prog = compile "int x; int y; int main() { x = 1; y = 2; return x + y; }" in
  let r = Profiler.run prog in
  let p = r.Profiler.profile in
  Alcotest.(check int) "clean before seeding" 0 (List.length (Sanitize.check p));
  (* Seed a RAW between two provably disjoint cells — the bug class the
     sanitizer exists for (e.g. a shadow-memory cell collision). *)
  Profile.record_edge p
    ~cid:(cproc_of prog "main")
    ~head_pc:(store_global prog "x")
    ~tail_pc:(load_global prog "y") ~kind:Dep.Raw ~tdep:1
    ~addr:(fst (Option.get (Vm.Program.find_global prog "x")));
  let issues = Sanitize.check p in
  Alcotest.(check bool) "seeded bug detected" true (issues <> []);
  Alcotest.(check bool) "explains impossibility" true
    (List.exists
       (fun (i : Sanitize.issue) ->
         Testutil.contains i.reason "statically impossible")
       issues)

let test_sanitizer_flags_misattributed_frame_edge () =
  let src =
    {|void other() { for (int i = 0; i < 2; i++) { int t = i; } }
      int main() {
        int a[4];
        for (int i = 0; i < 5; i++) { a[0] = a[0] + 1; }
        other();
        return a[0];
      }|}
  in
  let prog = compile src in
  let r = Profiler.run prog in
  let p = r.Profiler.profile in
  let head = only "StoreIndex" (pcs_matching prog (( = ) Vm.Instr.StoreIndex)) in
  let tail =
    match pcs_matching prog (( = ) Vm.Instr.LoadIndex) with
    | pc :: _ -> pc
    | [] -> Alcotest.fail "no LoadIndex"
  in
  let seed cid = Profile.record_edge p ~cid ~head_pc:head ~tail_pc:tail ~kind:Dep.Raw ~tdep:1 ~addr:0 in
  (* An edge on main's own frame attributed to another function's
     construct, and to main's procedure construct (whose activation
     cannot have completed): both violate frame ownership. *)
  seed (loop_cid prog 1);
  seed (cproc_of prog "main");
  let issues = Sanitize.check p in
  Alcotest.(check bool) "wrong function flagged" true
    (List.exists
       (fun (i : Sanitize.issue) ->
         Testutil.contains i.reason "construct of function")
       issues);
  Alcotest.(check bool) "procedure construct flagged" true
    (List.exists
       (fun (i : Sanitize.issue) ->
         Testutil.contains i.reason "procedure construct")
       issues)

let test_sanitizer_flags_corrupt_verdict_list () =
  let prog =
    compile "int g; int main() { for (int i = 0; i < 5; i++) g = g + 1; return g; }"
  in
  let r = Profiler.run prog in
  let p = r.Profiler.profile in
  (match p.Profile.static_verdicts with
  | Some ((key, v) :: rest) ->
      let flipped =
        match v with
        | Depend.Must_dependent -> Depend.May_dependent
        | _ -> Depend.Must_dependent
      in
      p.Profile.static_verdicts <- Some ((key, flipped) :: rest)
  | _ -> Alcotest.fail "expected stored verdicts");
  Alcotest.(check bool) "flipped verdict detected" true
    (List.exists
       (fun (i : Sanitize.issue) -> Testutil.contains i.reason "disagrees")
       (Sanitize.check p));
  (* And an empty verdict list under recorded edges = missing coverage. *)
  p.Profile.static_verdicts <- Some [];
  Alcotest.(check bool) "missing verdicts detected" true
    (List.exists
       (fun (i : Sanitize.issue) -> Testutil.contains i.reason "no stored verdict")
       (Sanitize.check p))

let suite =
  [
    ("dataflow diamond join", `Quick, test_dataflow_diamond_join);
    ("reaching defs straight-line must", `Quick, test_reaching_defs_straightline_must);
    ("reaching defs branch may-not-must", `Quick, test_reaching_defs_branch_may_not_must);
    ("points-to global scalar", `Quick, test_points_to_global_scalar);
    ("points-to array param", `Quick, test_points_to_array_param_by_reference);
    ("points-to local array own-frame", `Quick, test_points_to_local_array_own_frame);
    ("verdict scalar matrix", `Quick, test_verdicts_scalar_matrix);
    ("verdict killed-path is may", `Quick, test_verdict_killed_on_one_path_is_may);
    ("verdict arrays are may", `Quick, test_verdict_array_accesses_are_may);
    ("dead function pruned", `Quick, test_dead_function_not_live);
    ("called once", `Quick, test_called_once);
    ("prune read-only globals", `Quick, test_prune_read_only_globals);
    ("construct proven independent", `Quick, test_construct_proven_independent);
    ("rank/advice static column", `Quick, test_rank_and_advice_surface_static_proof);
    ("prune byte-identity registry", `Slow, test_prune_byte_identity_registry);
    ("prune byte-identity fig4", `Quick, test_prune_byte_identity_fig4_snippets);
    ("refine widens ref-return regions", `Quick, test_refine_widens_ref_return);
    ("sanitizer clean on workload", `Quick, test_sanitizer_clean_on_workload);
    ("sanitizer flags impossible edge", `Quick, test_sanitizer_flags_impossible_edge);
    ("sanitizer flags frame misattribution", `Quick, test_sanitizer_flags_misattributed_frame_edge);
    ("sanitizer flags corrupt verdicts", `Quick, test_sanitizer_flags_corrupt_verdict_list);
  ]
