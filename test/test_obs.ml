(* The Obs telemetry layer: instrument semantics, the snapshot merge
   algebra (associative/commutative, mirroring Profile.merge), and golden
   renderings that pin the text/JSON formats. *)

let check = Alcotest.check

(* --- instruments --------------------------------------------------------- *)

let test_counter () =
  let c = Obs.Counter.make () in
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 40;
  check Alcotest.int "counter accumulates" 42 (Obs.Counter.get c)

let test_gauge_hwm () =
  let g = Obs.Gauge.make () in
  Obs.Gauge.set g 7;
  Obs.Gauge.set g 3;
  check Alcotest.int "level is last" 3 (Obs.Gauge.get g);
  check Alcotest.int "hwm survives drops" 7 (Obs.Gauge.hwm g);
  Obs.Gauge.add g 10;
  check Alcotest.int "add moves level" 13 (Obs.Gauge.get g);
  check Alcotest.int "add raises hwm" 13 (Obs.Gauge.hwm g)

let test_bucket_of () =
  List.iter
    (fun (v, b) ->
      check Alcotest.int (Printf.sprintf "bucket_of %d" v) b
        (Obs.Histogram.bucket_of v))
    [
      (min_int, 0);
      (-1, 0);
      (0, 0);
      (1, 1);
      (2, 2);
      (3, 2);
      (4, 3);
      (7, 3);
      (8, 4);
      (1023, 10);
      (1024, 11);
      (max_int, 62);
    ]

let test_histogram_observe () =
  let h = Obs.Histogram.make () in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 1; 3; 100 ];
  check Alcotest.int "count" 5 (Obs.Histogram.count h);
  check Alcotest.int "sum" 105 (Obs.Histogram.sum h);
  check Alcotest.int "max" 100 (Obs.Histogram.max_value h);
  check Alcotest.int "bucket 0" 1 (Obs.Histogram.bucket h 0);
  check Alcotest.int "bucket 1" 2 (Obs.Histogram.bucket h 1);
  check Alcotest.int "bucket 2" 1 (Obs.Histogram.bucket h 2);
  check Alcotest.int "bucket of 100" 1
    (Obs.Histogram.bucket h (Obs.Histogram.bucket_of 100))

let test_timer_spans () =
  let t = Obs.Timer.make () in
  Obs.Timer.stop t;
  check Alcotest.int "stop before start is a no-op" 0 (Obs.Timer.spans t);
  let v = Obs.Timer.time t (fun () -> 17) in
  check Alcotest.int "time returns the thunk's value" 17 v;
  check Alcotest.int "one span" 1 (Obs.Timer.spans t);
  check Alcotest.bool "non-negative total" true (Obs.Timer.total_ns t >= 0)

(* --- registry ------------------------------------------------------------ *)

let test_registry_snapshot () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "b.count" in
  let g = Obs.Registry.gauge reg "a.level" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 9;
  (match Obs.Registry.snapshot reg with
  | [ ("a.level", Obs.Level { last = 9; hwm = 9 }); ("b.count", Obs.Count 5) ]
    -> ()
  | s -> Alcotest.failf "unexpected snapshot of %d entries" (List.length s));
  (* snapshots are copies: later updates don't retroactively change them *)
  let snap = Obs.Registry.snapshot reg in
  Obs.Counter.add c 100;
  check Alcotest.(option int) "snapshot is immutable" (Some 5)
    (Obs.find_count snap "b.count")

let test_registry_duplicate_name () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.counter reg "x");
  (match Obs.Registry.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on duplicate name")

(* --- merge algebra -------------------------------------------------------- *)

(* Generate arbitrary snapshots over a small name pool so merges hit both
   the disjoint-union and the same-name-combine paths. *)
let histogram_gen =
  QCheck.Gen.(
    map
      (fun vs ->
        let h = Obs.Histogram.make () in
        List.iter (Obs.Histogram.observe h) vs;
        match
          Obs.Registry.(
            let r = create () in
            register_histogram r "h" h;
            snapshot r)
        with
        | [ (_, d) ] -> d
        | _ -> assert false)
      (list_size (int_bound 8) (int_bound 1000)))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Obs.Count (abs n)) small_int;
        map2
          (fun a b -> Obs.Level { last = min a b; hwm = max a b })
          small_int small_int;
        histogram_gen;
        map2
          (fun ns spans -> Obs.Span { ns = abs ns; spans = abs spans })
          small_int small_int;
      ])

let snapshot_gen =
  (* a snapshot is sorted and name-unique; values are type-consistent per
     name (name picks the constructor) so merges never type-clash *)
  QCheck.Gen.(
    let entry name =
      let pick =
        match name with
        (* the register engine's ring counters ride shard merges like any
           other counter; drain order within a shard must never matter to
           the merged totals *)
        | "alpha" | "ir.ring_events" | "ir.ring_drains" ->
            map (fun n -> Obs.Count (abs n)) small_int
        | "beta" ->
            map2
              (fun a b -> Obs.Level { last = min a b; hwm = max a b })
              small_int small_int
        | "ir.ring_depth" -> histogram_gen
        | _ -> value_gen
      in
      map (fun v -> (name, v)) pick
    in
    let names =
      [ "alpha"; "beta"; "ir.ring_events"; "ir.ring_drains"; "ir.ring_depth" ]
    in
    map
      (fun mask ->
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) names)
      (int_bound 31)
    >>= fun chosen ->
    flatten_l (List.map entry chosen))

let snapshot_arb =
  QCheck.make snapshot_gen
    ~print:(fun s -> Obs.render_json (Obs.filter (fun _ _ -> true) s))

let test_merge_commutative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"obs merge commutative" ~count:200
       (QCheck.pair snapshot_arb snapshot_arb)
       (fun (a, b) ->
         Obs.render_json (Obs.merge a b) = Obs.render_json (Obs.merge b a)))

let test_merge_associative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"obs merge associative" ~count:200
       (QCheck.triple snapshot_arb snapshot_arb snapshot_arb)
       (fun (a, b, c) ->
         Obs.render_json (Obs.merge (Obs.merge a b) c)
         = Obs.render_json (Obs.merge a (Obs.merge b c))))

let test_merge_semantics () =
  let a =
    [
      ("count", Obs.Count 3);
      ("level", Obs.Level { last = 5; hwm = 9 });
      ("span", Obs.Span { ns = 10; spans = 1 });
    ]
  and b =
    [
      ("count", Obs.Count 4);
      ("level", Obs.Level { last = 7; hwm = 8 });
      ("only_b", Obs.Count 1);
      ("span", Obs.Span { ns = 5; spans = 2 });
    ]
  in
  match Obs.merge a b with
  | [
   ("count", Obs.Count 7);
   ("level", Obs.Level { last = 7; hwm = 9 });
   ("only_b", Obs.Count 1);
   ("span", Obs.Span { ns = 15; spans = 3 });
  ] ->
      ()
  | s -> Alcotest.failf "unexpected merge result (%d entries)" (List.length s)

let test_merge_type_mismatch () =
  match Obs.merge [ ("x", Obs.Count 1) ] [ ("x", Obs.Level { last = 1; hwm = 1 }) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on metric type mismatch"

let test_merge_all_matches_fold () =
  let mk n =
    [ ("c", Obs.Count n); ("g", Obs.Level { last = n; hwm = n * 2 }) ]
  in
  let parts = List.map mk [ 1; 5; 3 ] in
  check Alcotest.string "merge_all = fold merge"
    (Obs.render_json (List.fold_left Obs.merge [] parts))
    (Obs.render_json (Obs.merge_all parts))

(* --- golden renderings ---------------------------------------------------- *)

(* A deterministic registry (no timers) pins the exact text and JSON
   output; Spans are filtered the way a reproducible caller would. *)
let golden_snapshot () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "vm.instructions" in
  let g = Obs.Registry.gauge reg "tree.depth" in
  let h = Obs.Registry.histogram reg "walk.depth" in
  let t = Obs.Registry.timer reg "wall" in
  Obs.Counter.add c 1234;
  Obs.Gauge.set g 7;
  Obs.Gauge.set g 4;
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 2; 3; 9 ];
  Obs.Timer.time t (fun () -> ());
  Obs.filter (fun _ v -> match v with Obs.Span _ -> false | _ -> true)
    (Obs.Registry.snapshot reg)

let test_golden_text () =
  check Alcotest.string "text rendering"
    "tree.depth                                  4  (hwm 7)\n\
     vm.instructions                          1234\n\
     walk.depth                                  6  sum=17 max=9  | 0:1 1:1 \
     2:3 8:1 |\n"
    (Obs.render_text (golden_snapshot ()))

let test_golden_json () =
  check Alcotest.string "json rendering"
    "{\n\
    \  \"tree.depth\": {\"last\": 4, \"hwm\": 7},\n\
    \  \"vm.instructions\": 1234,\n\
    \  \"walk.depth\": {\"count\": 6, \"sum\": 17, \"max\": 9, \"buckets\": \
     [[0, 1], [1, 1], [2, 3], [8, 1]]}\n\
     }"
    (Obs.render_json (golden_snapshot ()))

(* --- percentile upper bounds --------------------------------------------- *)

let dist_of_values vs =
  let h = Obs.Histogram.make () in
  List.iter (Obs.Histogram.observe h) vs;
  let reg = Obs.Registry.create () in
  Obs.Registry.register_histogram reg "d" h;
  List.assoc "d" (Obs.Registry.snapshot reg)

let test_percentile_clamps_to_max () =
  (* The BENCH_7 artifact: a ring drained 100 times at depth 8192 lands
     in bucket [8192, 16384), whose raw upper edge is 16383 — but the
     histogram saw nothing above 8192, so the reported bound must clamp
     to the observed max. *)
  let d = dist_of_values (List.init 100 (fun _ -> 8192)) in
  check Alcotest.(option int) "p99 clamped" (Some 8192)
    (Obs.percentile_upper d 99);
  check Alcotest.(option int) "p50 clamped too" (Some 8192)
    (Obs.percentile_upper d 50)

let test_percentile_picks_bucket () =
  (* 90 ones and 10 values of 1000: p50 lives in bucket 1 (upper edge
     1), p99 in 1000's bucket, clamped to the exact max. *)
  let d =
    dist_of_values (List.init 90 (fun _ -> 1) @ List.init 10 (fun _ -> 1000))
  in
  check Alcotest.(option int) "p50" (Some 1) (Obs.percentile_upper d 50);
  check Alcotest.(option int) "p99" (Some 1000) (Obs.percentile_upper d 99);
  (* an unclamped bucket edge still applies when max exceeds it *)
  let d2 = dist_of_values [ 5; 5; 5; 900 ] in
  check Alcotest.(option int) "p50 unclamped edge" (Some 7)
    (Obs.percentile_upper d2 50)

let test_percentile_edge_cases () =
  check Alcotest.(option int) "empty dist" None
    (Obs.percentile_upper (dist_of_values []) 99);
  check Alcotest.(option int) "non-dist" None
    (Obs.percentile_upper (Obs.Count 3) 99);
  check Alcotest.(option int) "zeros land in bucket 0" (Some 0)
    (Obs.percentile_upper (dist_of_values [ 0; 0; 0 ]) 99);
  Alcotest.check_raises "pct 0 rejected"
    (Invalid_argument "Obs.percentile_upper: pct 0 not in 1..100") (fun () ->
      ignore (Obs.percentile_upper (dist_of_values [ 1 ]) 0));
  let snap = [ ("h", dist_of_values [ 4; 4; 4; 4 ]) ] in
  check Alcotest.(option int) "dist_percentile_upper finds" (Some 4)
    (Obs.dist_percentile_upper snap "h" 99);
  check Alcotest.(option int) "dist_percentile_upper absent" None
    (Obs.dist_percentile_upper snap "nope" 99)

let suite =
  [
    ("counter", `Quick, test_counter);
    ("gauge hwm", `Quick, test_gauge_hwm);
    ("bucket_of", `Quick, test_bucket_of);
    ("histogram observe", `Quick, test_histogram_observe);
    ("timer spans", `Quick, test_timer_spans);
    ("registry snapshot", `Quick, test_registry_snapshot);
    ("registry duplicate name", `Quick, test_registry_duplicate_name);
    ("merge commutative (qcheck)", `Quick, test_merge_commutative);
    ("merge associative (qcheck)", `Quick, test_merge_associative);
    ("merge semantics", `Quick, test_merge_semantics);
    ("merge type mismatch", `Quick, test_merge_type_mismatch);
    ("merge_all", `Quick, test_merge_all_matches_fold);
    ("golden text", `Quick, test_golden_text);
    ("golden json", `Quick, test_golden_json);
    ("percentile clamps to max", `Quick, test_percentile_clamps_to_max);
    ("percentile picks bucket", `Quick, test_percentile_picks_bucket);
    ("percentile edge cases", `Quick, test_percentile_edge_cases);
  ]
