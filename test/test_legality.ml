(* The transform-legality engine (Static.Privatize / Static.Legality)
   against a brute-force simulation of the transforms it licenses.

   The random property compiles single-loop programs whose body takes
   one of four shapes over two global scalars [g] (the cell under test)
   and [s] (a sum some shapes feed):

     Red op k    g = g OP (i + k);           a single-fold reduction
     Priv k      g = i + k; s = s + g;       write-before-read, live out
     Serial k    s = s + g; g = i + k;       reads last iteration's g
     Masked k    g = (g + (i + k)) & 7;      a fold, then a mask

   and replays the body's memory behaviour directly in OCaml through
   instrumented get/set closures.

   A verdict licenses one source rewrite {e relative to the remaining
   dependence graph} (parsim drops only proven edges; every other
   constraint still orders the schedule), so the oracle simulates
   exactly the licensed rewrite, not an arbitrary iteration reorder:

     privatizable cell -> every iteration's first access must be a
                          write in the sequential replay (an iteration
                          that reads first observes another iteration's
                          value, refuting thread-private copies)
     reduction (op)    -> route the cell's accesses into N per-thread
                          partial accumulators (seeded with op's
                          identity, iterations dealt round-robin) and
                          fold the partials into the initial value at
                          the join: the result must equal the
                          sequential final value, for any partial count
                          and combination order.

   Note the Serial shape: [s] {e is} a legitimate reduction there even
   though it folds in loop-carried values of [g] — [g]'s own RAW edge
   stays a constraint, so admissible schedules see sequential [g]
   values and the partial sums still commute. The oracle's
   everything-else-sequential replay models precisely that.

   The handcrafted table pins each proof in the engine — every
   associative-commutative operator, both claim kinds, and the
   refutation shapes — to its exact claim, so a regression cannot hide
   behind the engine claiming nothing (claims are sound vacuously). *)

module Privatize = Static.Privatize

type shape =
  | Red of Minic.Ast.binop * int
  | Priv of int
  | Serial of int
  | Masked of int

type spec = { i0 : int; step : int; trip : int; shape : shape }

let body = function
  | Red (op, k) ->
      Printf.sprintf "g = g %s (i + %d);" (Minic.Ast.binop_to_string op) k
  | Priv k -> Printf.sprintf "g = i + %d; s = s + g;" k
  | Serial k -> Printf.sprintf "s = s + g; g = i + %d;" k
  | Masked k -> Printf.sprintf "g = (g + (i + %d)) & 7;" k

let source sp =
  let last = sp.i0 + ((sp.trip - 1) * sp.step) in
  Printf.sprintf
    "int g;\n\
     int s;\n\
     int main() {\n\
    \  int i;\n\
    \  g = 3;\n\
    \  s = 0;\n\
    \  for (i = %d; i < %d; i = i + %d) {\n\
    \    %s\n\
    \  }\n\
    \  return g + s;\n\
     }\n"
    sp.i0 (last + 1) sp.step (body sp.shape)

(* --- claims from the engine ------------------------------------------- *)

let loop_head (prog : Vm.Program.t) =
  let found = ref None in
  Array.iter
    (fun (c : Vm.Program.construct_info) ->
      if c.kind = Vm.Program.CLoop && !found = None then found := Some c.head_pc)
    prog.constructs;
  match !found with
  | Some pc -> pc
  | None -> Alcotest.fail "program has no loop construct"

type claim = Claimed_red of Minic.Ast.binop | Claimed_priv | Unclaimed

(* The engine's claim for one global cell of the program's single loop,
   through the same proof entry points [Legality.loop_transforms]
   consults (reduction shadows privatizable, as there). *)
let claim_for prog =
  let pts = Static.Points_to.analyze prog in
  let modref = Static.Modref.analyze prog pts in
  let priv = Privatize.analyze prog pts modref in
  let loop =
    match Privatize.loop_at_header priv ~br_pc:(loop_head prog) with
    | Some l -> l
    | None -> Alcotest.fail "no natural loop at the loop construct's head"
  in
  fun cell ->
    match Privatize.prove_reduction priv loop ~cell with
    | Ok op -> Claimed_red op
    | Error _ -> (
        match Privatize.prove_privatizable priv loop ~cell with
        | Ok () -> Claimed_priv
        | Error _ -> Unclaimed)

let global_addr prog name =
  match Vm.Program.find_global prog name with
  | Some (base, _) -> base
  | None -> Alcotest.failf "no global %s" name

(* --- brute-force simulation ------------------------------------------- *)

(* Replay one iteration of the body through [get]/[set] so the harness
   observes the exact access order the source performs on each cell. *)
let step shape ~get ~set i =
  match shape with
  | Red (op, k) ->
      let v =
        match op with
        | Minic.Ast.Add -> get `G + (i + k)
        | Minic.Ast.Mul -> get `G * (i + k)
        | Minic.Ast.BitAnd -> get `G land (i + k)
        | Minic.Ast.BitOr -> get `G lor (i + k)
        | Minic.Ast.BitXor -> get `G lxor (i + k)
        | Minic.Ast.Sub -> get `G - (i + k)
        | op ->
            Alcotest.failf "unsimulated operator %s"
              (Minic.Ast.binop_to_string op)
      in
      set `G v
  | Priv k ->
      set `G (i + k);
      set `S (get `S + get `G)
  | Serial k ->
      set `S (get `S + get `G);
      set `G (i + k)
  | Masked k -> set `G ((get `G + (i + k)) land 7)

let iters sp = List.init sp.trip (fun t -> sp.i0 + (t * sp.step))

let g_init = 3
let s_init = 0

(* Sequential replay; returns final (g, s) and whether any iteration's
   first access to g / to s was a read. *)
let simulate_seq sp =
  let g = ref g_init and s = ref s_init in
  let g_read_first = ref false and s_read_first = ref false in
  List.iter
    (fun i ->
      let g_touched = ref false and s_touched = ref false in
      let get = function
        | `G ->
            if not !g_touched then begin
              g_touched := true;
              g_read_first := true
            end;
            !g
        | `S ->
            if not !s_touched then begin
              s_touched := true;
              s_read_first := true
            end;
            !s
      in
      let set cell v =
        match cell with
        | `G ->
            g_touched := true;
            g := v
        | `S ->
            s_touched := true;
            s := v
      in
      step sp.shape ~get ~set i)
    (iters sp);
  ((!g, !s), (!g_read_first, !s_read_first))

let identity = function
  | Minic.Ast.Add | Minic.Ast.BitOr | Minic.Ast.BitXor -> 0
  | Minic.Ast.Mul -> 1
  | Minic.Ast.BitAnd -> -1 (* all ones *)
  | op ->
      Alcotest.failf "no identity for claimed operator %s"
        (Minic.Ast.binop_to_string op)

let apply op a b =
  match op with
  | Minic.Ast.Add -> a + b
  | Minic.Ast.Mul -> a * b
  | Minic.Ast.BitAnd -> a land b
  | Minic.Ast.BitOr -> a lor b
  | Minic.Ast.BitXor -> a lxor b
  | op ->
      Alcotest.failf "no apply for claimed operator %s"
        (Minic.Ast.binop_to_string op)

(* The licensed reduction rewrite for [cell]: iterations still run in
   sequential order (every un-dropped dependence is respected), but the
   cell's accesses go to per-thread partials seeded with op's identity,
   dealt round-robin over [threads]; the join folds the partials into
   the initial value in [combine] order. *)
let simulate_reduced sp cell op ~threads ~combine_rev =
  let g = ref g_init and s = ref s_init in
  let partials = Array.make threads (identity op) in
  List.iteri
    (fun t i ->
      let slot = t mod threads in
      let get = function
        | `G -> if cell = `G then partials.(slot) else !g
        | `S -> if cell = `S then partials.(slot) else !s
      in
      let set c v =
        match c with
        | `G -> if cell = `G then partials.(slot) <- v else g := v
        | `S -> if cell = `S then partials.(slot) <- v else s := v
      in
      step sp.shape ~get ~set i)
    (iters sp);
  let parts = Array.to_list partials in
  let parts = if combine_rev then List.rev parts else parts in
  let init = match cell with `G -> g_init | `S -> s_init in
  List.fold_left (apply op) init parts

let check_consistent sp =
  let prog = Vm.Compile.compile_source (source sp) in
  let claim = claim_for prog in
  let (g_seq, s_seq), (g_read_first, s_read_first) = simulate_seq sp in
  let fail_reason = ref None in
  let check cell name addr read_first seq_final =
    match claim addr with
    | Unclaimed -> ()
    | Claimed_priv ->
        if read_first then
          fail_reason :=
            Some
              (Printf.sprintf
                 "%s claimed privatizable but an iteration reads it first"
                 name)
    | Claimed_red op ->
        List.iter
          (fun (threads, combine_rev) ->
            let got = simulate_reduced sp cell op ~threads ~combine_rev in
            if got <> seq_final && !fail_reason = None then
              fail_reason :=
                Some
                  (Printf.sprintf
                     "%s claimed %s-reduction but %d-thread partials give %d, \
                      sequential gives %d"
                     name
                     (Minic.Ast.binop_to_string op)
                     threads got seq_final))
          [ (1, false); (2, false); (3, true); (4, true) ]
  in
  check `G "g" (global_addr prog "g") g_read_first g_seq;
  check `S "s" (global_addr prog "s") s_read_first s_seq;
  !fail_reason

(* --- handcrafted completeness pins ------------------------------------ *)

(* (name, shape, expected claim on g). Soundness alone is vacuous for an
   engine that never claims anything; these pin each proof to firing. *)
let handcrafted =
  [
    ("add reduction", Red (Minic.Ast.Add, 1), `Red);
    ("mul reduction", Red (Minic.Ast.Mul, 1), `Red);
    ("and reduction", Red (Minic.Ast.BitAnd, 3), `Red);
    ("or reduction", Red (Minic.Ast.BitOr, 0), `Red);
    ("xor reduction", Red (Minic.Ast.BitXor, 2), `Red);
    ("write-first privatizable", Priv 1, `Priv);
    ("read-old-value serializes", Serial 1, `Neither);
    ("masked fold is not a reduction", Masked 1, `Neither);
  ]

let test_handcrafted () =
  List.iter
    (fun (name, shape, expected) ->
      let sp = { i0 = 0; step = 1; trip = 6; shape } in
      let prog = Vm.Compile.compile_source (source sp) in
      let claim = claim_for prog in
      let show = function
        | Claimed_red _ -> "reduction"
        | Claimed_priv -> "privatizable"
        | Unclaimed -> "neither"
      in
      let expected =
        match expected with
        | `Red -> "reduction"
        | `Priv -> "privatizable"
        | `Neither -> "neither"
      in
      Alcotest.(check string) name expected (show (claim (global_addr prog "g")));
      (* the privatizable shape's sum is itself a reduction; the serial
         shape's sum is too (g's surviving RAW edge keeps its operand
         values sequential) *)
      match shape with
      | Priv _ | Serial _ ->
          Alcotest.(check string)
            (name ^ ": s is a reduction") "reduction"
            (show (claim (global_addr prog "s")))
      | _ -> ())
    handcrafted

(* Non-associative operators must never be claimed. *)
let test_non_associative_quiet () =
  List.iter
    (fun op ->
      let sp = { i0 = 0; step = 1; trip = 5; shape = Red (op, 1) } in
      let prog = Vm.Compile.compile_source (source sp) in
      Alcotest.(check bool)
        (Minic.Ast.binop_to_string op ^ " not claimed")
        true
        (claim_for prog (global_addr prog "g") = Unclaimed))
    [ Minic.Ast.Sub; Minic.Ast.Div; Minic.Ast.Shl; Minic.Ast.Shr ]

(* --- the random differential ------------------------------------------ *)

let gen_spec =
  QCheck.Gen.(
    let op_gen =
      oneofl
        [ Minic.Ast.Add; Minic.Ast.Mul; Minic.Ast.BitAnd; Minic.Ast.BitOr;
          Minic.Ast.BitXor; Minic.Ast.Sub ]
    in
    let shape_gen =
      frequency
        [
          (3, map2 (fun op k -> Red (op, k)) op_gen (int_range 0 4));
          (2, map (fun k -> Priv k) (int_range 0 4));
          (2, map (fun k -> Serial k) (int_range 0 4));
          (1, map (fun k -> Masked k) (int_range 0 4));
        ]
    in
    map
      (fun ((i0, step, trip), shape) -> { i0; step; trip; shape })
      (pair (triple (int_range 0 3) (int_range 1 3) (int_range 1 10)) shape_gen))

let arb_spec = QCheck.make ~print:source gen_spec

let test_random_vs_brute_force () =
  QCheck.Test.check_exn
    (QCheck.Test.make
       ~name:"legality claims consistent with the licensed rewrite" ~count:150
       arb_spec (fun sp ->
         match check_consistent sp with
         | None -> true
         | Some reason ->
             QCheck.Test.fail_reportf "%s in\n%s" reason (source sp)))

let suite =
  [
    ("handcrafted claims", `Quick, test_handcrafted);
    ("non-associative quiet", `Quick, test_non_associative_quiet);
    ("random vs brute force", `Quick, test_random_vs_brute_force);
  ]
