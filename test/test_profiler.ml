(* End-to-end tests of the Alchemist profiler: dependence distances are
   attributed to the right constructs with the right nesting distinctions. *)

module Profiler = Alchemist.Profiler
module Profile = Alchemist.Profile
module Violation = Alchemist.Violation
module Ranking = Alchemist.Ranking
module Dep = Shadow.Dependence

let profile src = Profiler.run_source ~fuel:50_000_000 src

(* Find the cid of a construct by kind + source line. *)
let find_construct (p : Profile.t) kind line =
  let found = ref None in
  Array.iter
    (fun (c : Vm.Program.construct_info) ->
      if c.kind = kind && c.loc.Minic.Srcloc.line = line then found := Some c.cid)
    p.prog.constructs;
  match !found with
  | Some cid -> cid
  | None -> Alcotest.failf "no %s construct at line %d"
              (match kind with
               | Vm.Program.CProc -> "proc" | Vm.Program.CLoop -> "loop"
               | Vm.Program.CCond -> "cond")
              line

let find_func_construct (p : Profile.t) name =
  let found = ref None in
  Array.iter
    (fun (c : Vm.Program.construct_info) ->
      if c.kind = Vm.Program.CProc && c.cname = name then found := Some c.cid)
    p.prog.constructs;
  Option.get !found

let edge_kinds_of (p : Profile.t) cid =
  let cp = Profile.get p cid in
  Profile.fold_edges cp (fun (k : Profile.edge_key) _ acc -> k.kind :: acc) []

(* --- nesting discrimination (the paper's "Precision" claim) -------------- *)

(* Intra-iteration dependence: head's enclosing instance is still active at
   the tail, so NO construct profile records it. *)
let test_intra_iteration_invisible () =
  let src =
    {|int g;
      int h;
      int main() {
        for (int i = 0; i < 10; i++) {
          g = i;
          h = g;
        }
        return h;
      }|}
  in
  let r = profile src in
  let loop = find_construct r.Profiler.profile Vm.Program.CLoop 4 in
  let cp = Profile.get r.Profiler.profile loop in
  (* g is written then read within the same iteration: no cross-boundary
     RAW on g. The loop counter i itself is loop-carried, so edges may
     exist — check specifically there is no edge whose head is the write
     to g (line 5) and tail the read of g (line 6). *)
  Profile.iter_edges cp
    (fun (k : Profile.edge_key) _ ->
      let hl = Alchemist.Report.line_of_pc r.Profiler.profile k.head_pc in
      let tl = Alchemist.Report.line_of_pc r.Profiler.profile k.tail_pc in
      if k.kind = Dep.Raw && hl = 5 && tl = 6 then
        Alcotest.fail "intra-iteration RAW must not be profiled")

(* Loop-carried dependence: recorded on the loop, not on the function. *)
let test_loop_carried_on_loop_only () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 10; i++) {
          g = g + i;
        }
        return g;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let loop = find_construct p Vm.Program.CLoop 3 in
  let cp = Profile.get p loop in
  let g_edges =
    Profile.fold_edges cp
      (fun (k : Profile.edge_key) _ acc ->
        let hl = Alchemist.Report.line_of_pc p k.head_pc in
        let tl = Alchemist.Report.line_of_pc p k.tail_pc in
        if hl = 4 && tl = 4 && k.kind = Dep.Raw then k :: acc else acc)
      []
  in
  Alcotest.(check bool) "loop-carried RAW on loop" true (g_edges <> []);
  (* The function construct main is still active: no edge on it. *)
  let main_cid = find_func_construct p "main" in
  let main_cp = Profile.get p main_cid in
  Alcotest.(check int) "main has no edges" 0 (Profile.num_edges main_cp)

(* The paper's §III four-cases example: same calling context, different
   loop-boundary crossings — Alchemist distinguishes them via the index
   tree. A() writes, B() reads:
   - same-j-iteration dep -> recorded on Method A only (j-iter active);
   - cross-j dep          -> also on Loop j;
   - cross-i dep          -> also on Loop i. *)
let test_section3_four_cases () =
  let src =
    {|int same[4];
      int crossj[4];
      int crossi[4];
      void A(int i, int j) {
        same[0] = i;
        crossj[j % 2] = i + j;
        crossi[i % 2] = i;
      }
      int sink;
      void B(int i, int j) {
        sink += same[0];
        if (j > 0) sink += crossj[(j + 1) % 2];
        sink += crossi[(i + 1) % 2];
      }
      int main() {
        for (int i = 0; i < 4; i++) {
          crossj[0] = 0;
          crossj[1] = 0;
          for (int j = 0; j < 4; j++) {
            A(i, j);
            B(i, j);
          }
        }
        return sink;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let cid_a = find_func_construct p "A" in
  let loop_j = find_construct p Vm.Program.CLoop 19 in
  let loop_i = find_construct p Vm.Program.CLoop 16 in
  let has_raw_from_line cid line =
    let cp = Profile.get p cid in
    Profile.fold_edges cp
      (fun (k : Profile.edge_key) _ acc ->
        acc
        || (k.kind = Dep.Raw
            && Alchemist.Report.line_of_pc p k.head_pc = line))
      false
  in
  (* Method A sees all three writes as dependence heads. *)
  Alcotest.(check bool) "A: same-iter dep" true (has_raw_from_line cid_a 5);
  Alcotest.(check bool) "A: cross-j dep" true (has_raw_from_line cid_a 6);
  Alcotest.(check bool) "A: cross-i dep" true (has_raw_from_line cid_a 7);
  (* Loop j: crossj and crossi cross its iterations; same[0] does not. *)
  Alcotest.(check bool) "loop j: no same-iter dep" false
    (has_raw_from_line loop_j 5);
  Alcotest.(check bool) "loop j: cross-j dep" true (has_raw_from_line loop_j 6);
  (* Loop i: only crossi crosses i-iterations. *)
  Alcotest.(check bool) "loop i: no same-iter dep" false
    (has_raw_from_line loop_i 5);
  Alcotest.(check bool) "loop i: no cross-j dep" false
    (has_raw_from_line loop_i 6);
  Alcotest.(check bool) "loop i: cross-i dep" true (has_raw_from_line loop_i 7)

(* Procedure-continuation dependence: a call writes a global read after the
   call returns; the Method construct records it. *)
let test_proc_continuation_dep () =
  let src =
    {|int g;
      void produce() { g = 42; }
      int main() {
        produce();
        int x = g;
        return x;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let cid = find_func_construct p "produce" in
  let kinds = edge_kinds_of p cid in
  Alcotest.(check bool) "RAW out of produce" true (List.mem Dep.Raw kinds)

(* WAR and WAW out of a procedure. *)
let test_war_waw_detection () =
  let src =
    {|int g;
      int h;
      int sink;
      void touch() { sink = g; h = 1; }
      int main() {
        touch();
        g = 100;       // WAR vs the read of g in touch
        h = 2;         // WAW vs the write of h in touch
        return g + h + sink;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let cid = find_func_construct p "touch" in
  let kinds = edge_kinds_of p cid in
  Alcotest.(check bool) "WAR" true (List.mem Dep.War kinds);
  Alcotest.(check bool) "WAW" true (List.mem Dep.Waw kinds)

(* --- Tdur and instance counting ------------------------------------------- *)

let test_tdur_and_instances () =
  let src =
    {|int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += i;
        return s;
      }
      int main() {
        int t = 0;
        t += work(50);
        t += work(50);
        return t;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let cid = find_func_construct p "work" in
  let cp = Profile.get p cid in
  Alcotest.(check int) "two instances" 2 cp.instances;
  let mean = Profile.mean_duration cp in
  Alcotest.(check bool) "mean duration plausible" true (mean > 100 && mean < 2000);
  (* main's Ttotal covers nearly the whole run. *)
  let main_cp = Profile.get p (find_func_construct p "main") in
  Alcotest.(check bool) "main covers nearly everything" true
    (main_cp.ttotal > r.Profiler.stats.Profiler.instructions * 9 / 10)

let test_recursion_no_double_count () =
  let src =
    {|int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
      }
      int main() { return fib(14); }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let cid = find_func_construct p "fib" in
  let cp = Profile.get p cid in
  (* Without the §III-B nesting counters Ttotal would be the sum over all
     activations (far larger than the run); with them it is the duration
     of the single outermost call, i.e. < total instructions. *)
  Alcotest.(check bool)
    (Printf.sprintf "ttotal %d <= instructions %d" cp.ttotal
       r.Profiler.stats.Profiler.instructions)
    true
    (cp.ttotal <= r.Profiler.stats.Profiler.instructions);
  Alcotest.(check bool) "many instances" true (cp.instances > 100)

let test_loop_instances_count_iterations () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 7; i++) g += i;
        return g;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let loop = find_construct p Vm.Program.CLoop 3 in
  let cp = Profile.get p loop in
  Alcotest.(check int) "7 iterations = 7 instances" 7 cp.instances

let test_zero_trip_loop () =
  let src =
    {|int main() {
        int g = 0;
        while (g > 0) { g--; }
        return g;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let loop = find_construct p Vm.Program.CLoop 3 in
  let cp = Profile.get p loop in
  Alcotest.(check int) "zero instances" 0 cp.instances

(* --- Tdep values ------------------------------------------------------------ *)

let test_min_tdep_is_minimum () =
  (* g is written each iteration and read at varying distances afterwards;
     the profile must keep the minimum. Construct a case with known gap:
     write at iteration end, read at next iteration start -> small Tdep;
     plus a read far later -> the min must be the small one. *)
  let src =
    {|int g;
      int sink;
      int main() {
        for (int i = 0; i < 5; i++) {
          sink += g;
          g = i;
        }
        int j = 0;
        while (j < 1000) { j++; }
        sink += g;
        return sink;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let loop = find_construct p Vm.Program.CLoop 4 in
  let cp = Profile.get p loop in
  let raw_edges =
    Profile.fold_edges cp
      (fun (k : Profile.edge_key) (s : Profile.edge_stats) acc ->
        if
          k.kind = Dep.Raw
          && Alchemist.Report.line_of_pc p k.head_pc = 6
          && Alchemist.Report.line_of_pc p k.tail_pc = 5
        then s :: acc
        else acc)
      []
  in
  (match raw_edges with
  | [ s ] ->
      Alcotest.(check bool)
        (Printf.sprintf "min tdep small (%d)" s.min_tdep)
        true (s.min_tdep < 30);
      Alcotest.(check bool) "seen multiple times" true (s.count >= 3)
  | l -> Alcotest.failf "expected 1 edge, got %d" (List.length l));
  ignore r

(* --- violations and ranking -------------------------------------------------- *)

let test_parallel_friendly_vs_hostile () =
  (* Two functions called in loops: [indep] works on its own slot (no
     cross-call deps), [chain] each call reads the previous call's result.
     Ranking must show 0 violating RAW for indep's loop and >0 for chain's. *)
  let src =
    {|int out[64];
      int acc;
      void indep(int i) {
        int s = 0;
        for (int k = 0; k < 20; k++) s += i * k;
        out[i] = s;
      }
      void chain(int i) {
        int s = acc;
        for (int k = 0; k < 20; k++) s += k;
        acc = s;
      }
      int main() {
        for (int i = 0; i < 16; i++) indep(i);
        for (int i = 0; i < 16; i++) chain(i);
        return acc + out[3];
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let loop_indep = find_construct p Vm.Program.CLoop 14 in
  let loop_chain = find_construct p Vm.Program.CLoop 15 in
  let v_indep = Violation.summarize p ~cid:loop_indep in
  let v_chain = Violation.summarize p ~cid:loop_chain in
  Alcotest.(check int) "indep loop: no violating RAW" 0
    v_indep.Violation.raw_violating;
  Alcotest.(check bool) "chain loop: violating RAW" true
    (v_chain.Violation.raw_violating > 0)

let test_ranking_order () =
  let src =
    {|int g;
      void big() { for (int i = 0; i < 2000; i++) g += i; }
      void small() { g += 1; }
      int main() { big(); small(); return g; }|}
  in
  let r = profile src in
  let entries = Ranking.rank r.Profiler.profile in
  (* main first (encloses everything), then big's loop / Method big before
     Method small. *)
  let names = List.map (fun (e : Ranking.entry) -> e.name) entries in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not ranked" name
      | n :: _ when n = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 names
  in
  Alcotest.(check int) "main is rank 1" 0 (pos "Method main");
  Alcotest.(check bool) "big before small" true
    (pos "Method big" < pos "Method small")

let test_remove_with_singletons () =
  let src =
    {|int g;
      void once_per_iter() { g += 1; }
      int main() {
        for (int i = 0; i < 10; i++) {
          once_per_iter();
        }
        return g;
      }|}
  in
  let r = profile src in
  let p = r.Profiler.profile in
  let entries = Ranking.rank p in
  let loop = find_construct p Vm.Program.CLoop 4 in
  let after = Ranking.remove_with_singletons p entries ~cid:loop in
  let names = List.map (fun (e : Ranking.entry) -> e.name) after in
  Alcotest.(check bool) "loop removed" false
    (List.exists (fun n -> Testutil.contains n "Loop (main,4)") names);
  Alcotest.(check bool) "per-iteration callee removed too" false
    (List.mem "Method once_per_iter" names);
  Alcotest.(check bool) "main remains" true (List.mem "Method main" names)

(* --- stats / report ----------------------------------------------------------- *)

let test_stats_sane () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 100; i++) g += i;
        return g;
      }|}
  in
  let r = Profiler.run_source ~fuel:50_000_000 ~pool_capacity:16 src in
  let s = r.Profiler.stats in
  Alcotest.(check bool) "instructions counted" true (s.Profiler.instructions > 500);
  Alcotest.(check int) "forced pops" 0 s.Profiler.forced_pops;
  Alcotest.(check bool) "dynamic >= 100" true (s.Profiler.dynamic_constructs >= 100);
  Alcotest.(check int) "static constructs" 2 s.Profiler.static_constructs;
  Alcotest.(check bool) "pool bounded" true (s.Profiler.pool_allocated < 64)

(* Why gzip's bench telemetry shows [pool.reused: 0] with all-zero
   [pool.scan_len]: below capacity the pool always allocates fresh —
   the free-list scan only starts once [allocated = capacity]. The
   same program under a tiny capacity must show the opposite signature
   (reuse > 0, nonzero scan lengths). See DESIGN.md "Index node pool". *)
let test_pool_churn_signatures () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 400; i++) {
          for (int k = 0; k < 3; k++) g += i + k;
        }
        return g;
      }|}
  in
  let scan_sum r =
    match Obs.find (Profiler.telemetry r) "pool.scan_len" with
    | Some (Obs.Dist { sum; _ }) -> sum
    | _ -> Alcotest.fail "no pool.scan_len histogram"
  in
  (* below capacity: every acquire is a fresh allocation, no scans *)
  let roomy = Profiler.run_source ~fuel:50_000_000 ~pool_capacity:100_000 src in
  let s = roomy.Profiler.stats in
  Alcotest.(check int) "below capacity: no reuse" 0 s.Profiler.pool_reused;
  Alcotest.(check bool) "below capacity: pool not full" true
    (s.Profiler.pool_allocated < 100_000);
  Alcotest.(check int) "below capacity: scans never ran" 0 (scan_sum roomy);
  (* at capacity: the free-list scan runs and recycles completed nodes *)
  let tight = Profiler.run_source ~fuel:50_000_000 ~pool_capacity:8 src in
  let s = tight.Profiler.stats in
  Alcotest.(check int) "at capacity: allocation stops at capacity" 8
    s.Profiler.pool_allocated;
  Alcotest.(check bool) "at capacity: reuse happens" true
    (s.Profiler.pool_reused > 0);
  Alcotest.(check bool) "at capacity: scans ran" true (scan_sum tight > 0)

let test_report_renders () =
  let src =
    {|int g;
      void f() { g += 1; }
      int main() {
        for (int i = 0; i < 5; i++) f();
        int x = g;
        return x;
      }|}
  in
  let r = profile src in
  let text = Alchemist.Report.render r.Profiler.profile in
  Alcotest.(check bool) "has header" true (Testutil.contains text "Profile");
  Alcotest.(check bool) "lists main" true (Testutil.contains text "Method main");
  Alcotest.(check bool) "lists f" true (Testutil.contains text "Method f");
  Alcotest.(check bool) "mentions RAW" true (Testutil.contains text "RAW")

let test_scatter_normalization () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 50; i++) g += i;
        return g;
      }|}
  in
  let r = profile src in
  let pts = Alchemist.Scatter.points r.Profiler.profile in
  Alcotest.(check bool) "points exist" true (pts <> []);
  List.iter
    (fun (pt : Alchemist.Scatter.point) ->
      Alcotest.(check bool) "norm size in [0,1]" true
        (pt.norm_size >= 0. && pt.norm_size <= 1.0001);
      Alcotest.(check bool) "norm viol in [0,1]" true
        (pt.norm_violations >= 0. && pt.norm_violations <= 1.0001))
    pts

let test_scatter_svg () =
  let src =
    {|int g;
      int main() {
        for (int i = 0; i < 50; i++) g += i;
        return g;
      }|}
  in
  let r = profile src in
  let pts = Alchemist.Scatter.points r.Profiler.profile in
  let svg = Alchemist.Scatter.to_svg ~title:"t<e>st" pts in
  Alcotest.(check bool) "is svg" true (Testutil.contains svg "<svg");
  Alcotest.(check bool) "escaped title" true (Testutil.contains svg "t&lt;e&gt;st");
  Alcotest.(check bool) "has points" true (Testutil.contains svg "<circle");
  Alcotest.(check bool) "closes" true (Testutil.contains svg "</svg>")

let suite =
  [
    ("intra-iteration invisible", `Quick, test_intra_iteration_invisible);
    ("loop-carried on loop only", `Quick, test_loop_carried_on_loop_only);
    ("section III four cases", `Quick, test_section3_four_cases);
    ("proc continuation dep", `Quick, test_proc_continuation_dep);
    ("war/waw detection", `Quick, test_war_waw_detection);
    ("tdur and instances", `Quick, test_tdur_and_instances);
    ("recursion no double count", `Quick, test_recursion_no_double_count);
    ("loop instances", `Quick, test_loop_instances_count_iterations);
    ("zero-trip loop", `Quick, test_zero_trip_loop);
    ("min tdep", `Quick, test_min_tdep_is_minimum);
    ("parallel friendly vs hostile", `Quick, test_parallel_friendly_vs_hostile);
    ("ranking order", `Quick, test_ranking_order);
    ("remove with singletons", `Quick, test_remove_with_singletons);
    ("stats sane", `Quick, test_stats_sane);
    ("pool churn signatures", `Quick, test_pool_churn_signatures);
    ("report renders", `Quick, test_report_renders);
    ("scatter normalization", `Quick, test_scatter_normalization);
    ("scatter svg", `Quick, test_scatter_svg);
  ]
