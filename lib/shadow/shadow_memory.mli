(** Shadow memory: per-address access history for dependence detection.

    For each address we keep the last write and, per static read pc, the
    latest read since that write. On a read we emit a RAW edge from the
    last write; on a write we emit a WAW edge from the last write and a
    WAR edge from each recorded read. Keeping only the {e latest} access
    per static pc is lossless for the profile, which records the
    {e minimum} [Tdep] per static edge.

    The implementation is allocation-free on the hot path: cells live in
    flat struct-of-arrays tables indexed directly by address (the VM's
    address space is dense and bounded by live memory), per-pc read slots
    come from a reusable arena, and dependence edges are reported through
    an unboxed {!sink} callback instead of a materialized
    {!Dependence.t} record. The boxed [on_dep] interface is kept as a
    compatibility wrapper.

    {!clear_from} drops history for a released stack frame, relying on
    the VM's stack discipline (a released frame is always the top of the
    live address space, so invalidating everything at or above [base] is
    exact): it range-tags [base, ∞) in O(1) amortized by pushing a
    (base, seq) entry on a clear stack, and stale cells are lazily reset
    on their next touch. {!clear_range} honors an arbitrary [base, size)
    exactly: small ranges and interior ranges are scrubbed eagerly;
    ranges that reach the top of the touched address space delegate to
    the O(1) suffix tag.

    Telemetry (cell-table growth, arena occupancy, clear-stack depth,
    freshen/scrub counts) is always on — each update is an int store on a
    pre-allocated {!Obs} instrument — and is published into an
    {!Obs.Registry.t} via {!register_obs}. *)

type t

type sink =
  kind:Dependence.kind ->
  head_pc:int ->
  head_time:int ->
  head_node:Indexing.Node.t ->
  tail_pc:int ->
  tail_time:int ->
  tail_node:Indexing.Node.t ->
  addr:int ->
  unit
(** Unboxed dependence report: one edge, no allocation. *)

val create : ?on_dep:(Dependence.t -> unit) -> ?sink:sink -> unit -> t
(** [on_dep] receives boxed {!Dependence.t} records (compatibility path,
    allocates per edge); [sink] receives the same edges unboxed. Both may
    be given; both are called per edge. *)

val read :
  t -> addr:int -> pc:int -> time:int -> node:Indexing.Node.t -> unit

val write :
  t -> addr:int -> pc:int -> time:int -> node:Indexing.Node.t -> unit

val clear_range : t -> base:int -> size:int -> unit
(** Drops history for exactly [base, base+size) — history above the range
    survives. Costs O(size) unless the range reaches the top of the
    touched address space, in which case it is the O(1) {!clear_from}. *)

val clear_from : t -> base:int -> unit
(** Drops history for [base, ∞) in O(1) amortized (the lazy range-tag).
    This is the frame-release fast path: under the VM's stack discipline
    a released frame is the top of the live address space, so clearing
    everything at or above [base] is exact. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register this instance's telemetry under the ["shadow."] prefix.
    @raise Invalid_argument if the names are already taken. *)

val tracked_addresses : t -> int
(** Number of addresses currently carrying history (bounded-memory test).
    O(address space) — diagnostic, not for the hot path. *)

val events : t -> int
(** Total read/write events processed. *)

val deps_emitted : t -> int
