module Node = Indexing.Node

type sink =
  kind:Dependence.kind ->
  head_pc:int ->
  head_time:int ->
  head_node:Node.t ->
  tail_pc:int ->
  tail_time:int ->
  tail_node:Node.t ->
  addr:int ->
  unit

(* Cells are indexed by address. The four int fields of a cell live in
   one stride-4 array ([cell]) so an access touches a single cache line
   instead of four — on the profiling hot path (one cell probe per
   memory event) the scattered parallel-array layout was measurably
   slower. Boxed node pointers cannot share that array; they stay in a
   parallel [w_node].

   Cell layout at [4*addr]: +0 last-write pc (-1 = no write recorded),
   +1 last-write time, +2 read-chain head (-1 = none; else an arena slot
   index), +3 seq of last touch (for staleness).

   The read arena is a free-listed pool of (pc, time, node) slots
   threaded through the +2 "next" field; layout at [4*slot]: +0 pc,
   +1 time, +2 next (-1 ends a chain), +3 unused padding that keeps the
   slot shift a single [lsl 2].

   Clearing is lazy for large ranges: a clear pushes (base, seq) on a
   stack whose bases and seqs are both strictly increasing (a new clear
   pops every entry with a higher base — its range is covered). A cell is
   stale iff some clear with [base <= addr] happened after the cell's
   last touch; staleness is resolved eagerly at the next touch. *)
type t = {
  (* per-address cells, stride 4: w_pc, w_time, r_head, touch *)
  mutable cell : int array;
  mutable w_node : Node.t array;
  mutable cap : int;
  mutable hi : int; (* highest address ever touched + 1 *)
  (* read arena, stride 4: pc, time, next, pad *)
  mutable rn : int array;
  mutable rn_node : Node.t array;
  mutable free : int;
  (* clear stack: bases and seqs both strictly increasing *)
  mutable cl_base : int array;
  mutable cl_seq : int array;
  mutable cl_n : int;
  mutable last_clear_seq : int;
  mutable seq : int;
  (* Freshen memo: [fr_gen.(addr) = gen] certifies [addr] has been
     ensured and freshened since the last clear of any kind, so an
     access skips both checks outright. [gen] is the clear generation:
     every path that invalidates shadow state ([clear_from] and the
     eager branch of [clear_range]) bumps it, un-stamping every address
     at once — a range cleared between two accesses of one batched
     segment therefore cannot be masked by the memo (stale-cell
     hazard). The no-op fast path of [clear_range] (range entirely at
     or above [hi]) soundly skips the bump: addresses up there have
     never been touched, so no stamp covers them. Stamps start at 0 and
     [gen] at 1, so untouched cells always miss. *)
  mutable fr_gen : int array;
  mutable gen : int;
  dummy : Node.t;
  sink : sink;
  events : Obs.Counter.t;
  deps : Obs.Counter.t;
  (* telemetry: every update is an int store on a pre-allocated record *)
  o_cell_cap : Obs.Gauge.t;
  o_cell_growths : Obs.Counter.t;
  o_arena_cap : Obs.Gauge.t;
  o_arena_growths : Obs.Counter.t;
  o_arena_in_use : Obs.Gauge.t;
  o_clear_depth : Obs.Gauge.t;
  o_freshens : Obs.Counter.t;
  o_fr_checks : Obs.Counter.t;
  o_scrubbed : Obs.Counter.t;
  o_lazy_clears : Obs.Counter.t;
  o_eager_clears : Obs.Counter.t;
}

let no_sink ~kind:_ ~head_pc:_ ~head_time:_ ~head_node:_ ~tail_pc:_
    ~tail_time:_ ~tail_node:_ ~addr:_ =
  ()

let initial_cap = 1024
let arena_cap = 1024

(* Frames up to this size are scrubbed eagerly (exact range semantics);
   larger ones are range-tagged in O(1). *)
let eager_clear_limit = 64

(* Fresh cell block for [n] cells: w_pc and r_head slots hold -1. *)
let make_cells n =
  let a = Array.make (n lsl 2) 0 in
  for i = 0 to n - 1 do
    a.(i lsl 2) <- -1;
    a.((i lsl 2) + 2) <- -1
  done;
  a

let thread_free rn lo hi =
  for i = lo to hi - 2 do
    rn.((i lsl 2) + 2) <- i + 1
  done;
  rn.(((hi - 1) lsl 2) + 2) <- -1

let create ?on_dep ?sink () =
  let dummy = Node.make () in
  let sink =
    match (on_dep, sink) with
    | None, None -> no_sink
    | None, Some s -> s
    | Some f, more ->
        fun ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
            ~tail_node ~addr ->
          f
            {
              Dependence.kind;
              head = { Dependence.pc = head_pc; time = head_time; node = head_node };
              tail = { Dependence.pc = tail_pc; time = tail_time; node = tail_node };
              addr;
            };
          (match more with
          | None -> ()
          | Some s ->
              s ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
                ~tail_node ~addr)
  in
  let rn = Array.make (arena_cap lsl 2) 0 in
  thread_free rn 0 arena_cap;
  {
    cell = make_cells initial_cap;
    w_node = Array.make initial_cap dummy;
    cap = initial_cap;
    hi = 0;
    rn;
    rn_node = Array.make arena_cap dummy;
    free = 0;
    cl_base = Array.make 64 0;
    cl_seq = Array.make 64 0;
    cl_n = 0;
    last_clear_seq = 0;
    seq = 0;
    fr_gen = Array.make initial_cap 0;
    gen = 1;
    dummy;
    sink;
    events = Obs.Counter.make ();
    deps = Obs.Counter.make ();
    o_cell_cap =
      (let g = Obs.Gauge.make () in
       Obs.Gauge.set g initial_cap;
       g);
    o_cell_growths = Obs.Counter.make ();
    o_arena_cap =
      (let g = Obs.Gauge.make () in
       Obs.Gauge.set g arena_cap;
       g);
    o_arena_growths = Obs.Counter.make ();
    o_arena_in_use = Obs.Gauge.make ();
    o_clear_depth = Obs.Gauge.make ();
    o_freshens = Obs.Counter.make ();
    o_fr_checks = Obs.Counter.make ();
    o_scrubbed = Obs.Counter.make ();
    o_lazy_clears = Obs.Counter.make ();
    o_eager_clears = Obs.Counter.make ();
  }

let grow_cells t addr =
  let cap = ref t.cap in
  while addr >= !cap do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let cell = make_cells cap in
  Array.blit t.cell 0 cell 0 (t.cap lsl 2);
  t.cell <- cell;
  let w_node = Array.make cap t.dummy in
  Array.blit t.w_node 0 w_node 0 t.cap;
  t.w_node <- w_node;
  let fr_gen = Array.make cap 0 in
  Array.blit t.fr_gen 0 fr_gen 0 t.cap;
  t.fr_gen <- fr_gen;
  t.cap <- cap;
  Obs.Counter.incr t.o_cell_growths;
  Obs.Gauge.set t.o_cell_cap cap

let[@inline] ensure t addr =
  if addr >= t.cap then grow_cells t addr;
  if addr >= t.hi then t.hi <- addr + 1

let grow_arena t =
  let n = Array.length t.rn_node in
  let cap = 2 * n in
  let rn = Array.make (cap lsl 2) 0 in
  Array.blit t.rn 0 rn 0 (n lsl 2);
  t.rn <- rn;
  let rn_node = Array.make cap t.dummy in
  Array.blit t.rn_node 0 rn_node 0 n;
  t.rn_node <- rn_node;
  thread_free t.rn n cap;
  t.free <- n;
  Obs.Counter.incr t.o_arena_growths;
  Obs.Gauge.set t.o_arena_cap cap

let[@inline] alloc_slot t =
  if t.free < 0 then grow_arena t;
  let i = t.free in
  t.free <- t.rn.((i lsl 2) + 2);
  Obs.Gauge.add t.o_arena_in_use 1;
  i

(* Return a whole read chain to the free list and detach it. *)
let release_chain t addr =
  let i = ref t.cell.((addr lsl 2) + 2) in
  while !i >= 0 do
    let s = !i lsl 2 in
    let next = t.rn.(s + 2) in
    t.rn_node.(!i) <- t.dummy;
    t.rn.(s + 2) <- t.free;
    t.free <- !i;
    Obs.Gauge.add t.o_arena_in_use (-1);
    i := next
  done;
  t.cell.((addr lsl 2) + 2) <- -1

let reset_cell t addr =
  t.cell.(addr lsl 2) <- -1;
  t.w_node.(addr) <- t.dummy;
  if t.cell.((addr lsl 2) + 2) >= 0 then release_chain t addr

(* Topmost clear entry with base <= addr (bases ascend): its seq is the
   newest clear covering [addr]. *)
let covering_clear_seq t addr =
  if t.cl_n = 0 || addr < t.cl_base.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (t.cl_n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.cl_base.(mid) <= addr then lo := mid else hi := mid - 1
    done;
    t.cl_seq.(!lo)
  end

(* Resolve lazy clears: if the cell's last touch predates a covering
   clear, scrub it before use. *)
let[@inline never] freshen_slow t addr =
  if
    (t.cell.(addr lsl 2) >= 0 || t.cell.((addr lsl 2) + 2) >= 0)
    && covering_clear_seq t addr > t.cell.((addr lsl 2) + 3)
  then begin
    Obs.Counter.incr t.o_freshens;
    reset_cell t addr
  end

(* Hot-path accesses below use unsafe indexing: [ensure] has already
   guaranteed [addr < t.cap], so [addr lsl 2 .. (addr lsl 2) + 3] lie
   within [t.cell] (length [4 * t.cap]) and [addr] within [t.w_node];
   arena slot indices come only from the free list and live chains, both
   of which stay below the arena's length by construction. *)
(* Chain lookup for [read]: top level (not nested in [read]) so the
   call allocates no closure — it would otherwise be built once per
   read event. *)
let rec find_slot rn pc i =
  if i < 0 then -1
  else if Array.unsafe_get rn (i lsl 2) = pc then i
  else find_slot rn pc (Array.unsafe_get rn ((i lsl 2) + 2))

let[@inline] freshen t addr =
  if Array.unsafe_get t.cell ((addr lsl 2) + 3) < t.last_clear_seq then
    freshen_slow t addr

let read t ~addr ~pc ~time ~node =
  Obs.Counter.incr t.events;
  t.seq <- t.seq + 1;
  if addr >= t.cap || Array.unsafe_get t.fr_gen addr <> t.gen then begin
    Obs.Counter.incr t.o_fr_checks;
    ensure t addr;
    freshen t addr;
    Array.unsafe_set t.fr_gen addr t.gen
  end;
  let base = addr lsl 2 in
  let cell = t.cell in
  let w_pc = Array.unsafe_get cell base in
  if w_pc >= 0 then begin
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.Raw ~head_pc:w_pc
      ~head_time:(Array.unsafe_get cell (base + 1))
      ~head_node:(Array.unsafe_get t.w_node addr) ~tail_pc:pc ~tail_time:time
      ~tail_node:node ~addr
  end;
  (* update the slot for this static pc in place, or link a new one;
     [t.rn] is read after the sink call above, so a re-entrant sink that
     grew the arena is still observed here *)
  let i = find_slot t.rn pc (Array.unsafe_get t.cell (base + 2)) in
  if i >= 0 then begin
    Array.unsafe_set t.rn ((i lsl 2) + 1) time;
    Array.unsafe_set t.rn_node i node
  end
  else begin
    let i = alloc_slot t in
    let s = i lsl 2 in
    Array.unsafe_set t.rn s pc;
    Array.unsafe_set t.rn (s + 1) time;
    Array.unsafe_set t.rn_node i node;
    Array.unsafe_set t.rn (s + 2) (Array.unsafe_get t.cell (base + 2));
    Array.unsafe_set t.cell (base + 2) i
  end;
  Array.unsafe_set t.cell (base + 3) t.seq

let write t ~addr ~pc ~time ~node =
  Obs.Counter.incr t.events;
  t.seq <- t.seq + 1;
  if addr >= t.cap || Array.unsafe_get t.fr_gen addr <> t.gen then begin
    Obs.Counter.incr t.o_fr_checks;
    ensure t addr;
    freshen t addr;
    Array.unsafe_set t.fr_gen addr t.gen
  end;
  let base = addr lsl 2 in
  let cell = t.cell in
  let w_pc = Array.unsafe_get cell base in
  if w_pc >= 0 then begin
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.Waw ~head_pc:w_pc
      ~head_time:(Array.unsafe_get cell (base + 1))
      ~head_node:(Array.unsafe_get t.w_node addr) ~tail_pc:pc ~tail_time:time
      ~tail_node:node ~addr
  end;
  (* WAR from every recorded read; free the chain as we go *)
  let i = ref (Array.unsafe_get t.cell (base + 2)) in
  while !i >= 0 do
    let s = !i lsl 2 in
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.War
      ~head_pc:(Array.unsafe_get t.rn s)
      ~head_time:(Array.unsafe_get t.rn (s + 1))
      ~head_node:(Array.unsafe_get t.rn_node !i) ~tail_pc:pc ~tail_time:time
      ~tail_node:node ~addr;
    let next = Array.unsafe_get t.rn (s + 2) in
    Array.unsafe_set t.rn_node !i t.dummy;
    Array.unsafe_set t.rn (s + 2) t.free;
    t.free <- !i;
    Obs.Gauge.add t.o_arena_in_use (-1);
    i := next
  done;
  Array.unsafe_set t.cell (base + 2) (-1);
  Array.unsafe_set t.cell base pc;
  Array.unsafe_set t.cell (base + 1) time;
  Array.unsafe_set t.w_node addr node;
  Array.unsafe_set t.cell (base + 3) t.seq

let scrub t ~base ~limit =
  (* Exact eager clear of [base, limit): O(limit - base). *)
  let hi = min limit t.cap in
  for addr = max base 0 to hi - 1 do
    if t.cell.(addr lsl 2) >= 0 || t.cell.((addr lsl 2) + 2) >= 0 then begin
      Obs.Counter.incr t.o_scrubbed;
      reset_cell t addr
    end;
    t.cell.((addr lsl 2) + 3) <- t.seq
  done

let clear_from t ~base =
  (* Range-tag [base, ∞) in O(1): pop covered entries (their bases are
     higher, so the new tag subsumes them), push (base, seq). Bases and
     seqs on the stack both stay strictly increasing. *)
  t.seq <- t.seq + 1;
  t.gen <- t.gen + 1;
  Obs.Counter.incr t.o_lazy_clears;
  while t.cl_n > 0 && t.cl_base.(t.cl_n - 1) >= base do
    t.cl_n <- t.cl_n - 1
  done;
  if t.cl_n = Array.length t.cl_base then begin
    let n = t.cl_n in
    let base' = Array.make (2 * n) 0 and seq' = Array.make (2 * n) 0 in
    Array.blit t.cl_base 0 base' 0 n;
    Array.blit t.cl_seq 0 seq' 0 n;
    t.cl_base <- base';
    t.cl_seq <- seq'
  end;
  t.cl_base.(t.cl_n) <- base;
  t.cl_seq.(t.cl_n) <- t.seq;
  t.cl_n <- t.cl_n + 1;
  t.last_clear_seq <- t.seq;
  Obs.Gauge.set t.o_clear_depth t.cl_n

let clear_range t ~base ~size =
  (* Ranges entirely above every address ever touched carry no shadow
     state: clearing them is a no-op. This is the common case for frame
     releases when locals are not traced — stack frames sit above the
     globals, so [hi] never reaches them — and skipping it avoids an
     O(frame size) scrub per call/return. *)
  if base >= t.hi then ()
  else if size > 0 then
    if size > eager_clear_limit && base + size >= t.hi then
      (* The range covers every address ever touched at or above [base],
         so the O(1) suffix tag is exact. *)
      clear_from t ~base
    else begin
      (* Small ranges, and interior ranges wider than the eager limit:
         scrub exactly [base, base+size). The suffix tag would clear
         [base, ∞), silently dropping live history above an interior
         range — interior ranges must pay O(size) for exact semantics. *)
      t.seq <- t.seq + 1;
      t.gen <- t.gen + 1;
      Obs.Counter.incr t.o_eager_clears;
      scrub t ~base ~limit:(base + size)
    end

let tracked_addresses t =
  let n = ref 0 in
  for addr = 0 to t.hi - 1 do
    if
      (t.cell.(addr lsl 2) >= 0 || t.cell.((addr lsl 2) + 2) >= 0)
      && not
           (t.cell.((addr lsl 2) + 3) < t.last_clear_seq
           && covering_clear_seq t addr > t.cell.((addr lsl 2) + 3))
    then incr n
  done;
  !n

let events t = Obs.Counter.get t.events
let deps_emitted t = Obs.Counter.get t.deps

let register_obs t reg =
  Obs.Registry.register_counter reg "shadow.events" t.events;
  Obs.Registry.register_counter reg "shadow.deps" t.deps;
  Obs.Registry.register_gauge reg "shadow.cell_cap" t.o_cell_cap;
  Obs.Registry.register_counter reg "shadow.cell_growths" t.o_cell_growths;
  Obs.Registry.register_gauge reg "shadow.arena_cap" t.o_arena_cap;
  Obs.Registry.register_counter reg "shadow.arena_growths" t.o_arena_growths;
  Obs.Registry.register_gauge reg "shadow.arena_in_use" t.o_arena_in_use;
  Obs.Registry.register_gauge reg "shadow.clear_stack_depth" t.o_clear_depth;
  Obs.Registry.register_counter reg "shadow.freshens" t.o_freshens;
  Obs.Registry.register_counter reg "shadow.freshen_checks" t.o_fr_checks;
  Obs.Registry.register_counter reg "shadow.cells_scrubbed" t.o_scrubbed;
  Obs.Registry.register_counter reg "shadow.lazy_clears" t.o_lazy_clears;
  Obs.Registry.register_counter reg "shadow.eager_clears" t.o_eager_clears
