module Node = Indexing.Node

type sink =
  kind:Dependence.kind ->
  head_pc:int ->
  head_time:int ->
  head_node:Node.t ->
  tail_pc:int ->
  tail_time:int ->
  tail_node:Node.t ->
  addr:int ->
  unit

(* Cells are flat struct-of-arrays indexed by address. An address has a
   last write iff [w_pc.(a) >= 0] and recorded reads iff [r_head.(a) >= 0]
   (an index into the read arena, a singly linked free-listed pool of
   (pc, time, node) slots threaded through [rn_next]).

   Clearing is lazy for large ranges: a clear pushes (base, seq) on a
   stack whose bases and seqs are both strictly increasing (a new clear
   pops every entry with a higher base — its range is covered). A cell is
   stale iff some clear with [base <= addr] happened after the cell's
   last touch; staleness is resolved eagerly at the next touch. *)
type t = {
  (* per-address cells *)
  mutable w_pc : int array; (* -1 = no write recorded *)
  mutable w_time : int array;
  mutable w_node : Node.t array;
  mutable r_head : int array; (* -1 = no reads; else arena index *)
  mutable touch : int array; (* seq of last touch, for staleness *)
  mutable cap : int;
  mutable hi : int; (* highest address ever touched + 1 *)
  (* read arena *)
  mutable rn_pc : int array;
  mutable rn_time : int array;
  mutable rn_node : Node.t array;
  mutable rn_next : int array;
  mutable free : int;
  (* clear stack: bases and seqs both strictly increasing *)
  mutable cl_base : int array;
  mutable cl_seq : int array;
  mutable cl_n : int;
  mutable last_clear_seq : int;
  mutable seq : int;
  dummy : Node.t;
  sink : sink;
  mutable events : int;
  mutable deps : int;
}

let no_sink ~kind:_ ~head_pc:_ ~head_time:_ ~head_node:_ ~tail_pc:_
    ~tail_time:_ ~tail_node:_ ~addr:_ =
  ()

let initial_cap = 1024
let arena_cap = 1024

(* Frames up to this size are scrubbed eagerly (exact range semantics);
   larger ones are range-tagged in O(1). *)
let eager_clear_limit = 64

let thread_free rn_next lo hi =
  for i = lo to hi - 2 do
    rn_next.(i) <- i + 1
  done;
  rn_next.(hi - 1) <- -1

let create ?on_dep ?sink () =
  let dummy = Node.make () in
  let sink =
    match (on_dep, sink) with
    | None, None -> no_sink
    | None, Some s -> s
    | Some f, more ->
        fun ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
            ~tail_node ~addr ->
          f
            {
              Dependence.kind;
              head = { Dependence.pc = head_pc; time = head_time; node = head_node };
              tail = { Dependence.pc = tail_pc; time = tail_time; node = tail_node };
              addr;
            };
          (match more with
          | None -> ()
          | Some s ->
              s ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
                ~tail_node ~addr)
  in
  let rn_next = Array.make arena_cap 0 in
  thread_free rn_next 0 arena_cap;
  {
    w_pc = Array.make initial_cap (-1);
    w_time = Array.make initial_cap 0;
    w_node = Array.make initial_cap dummy;
    r_head = Array.make initial_cap (-1);
    touch = Array.make initial_cap 0;
    cap = initial_cap;
    hi = 0;
    rn_pc = Array.make arena_cap 0;
    rn_time = Array.make arena_cap 0;
    rn_node = Array.make arena_cap dummy;
    rn_next;
    free = 0;
    cl_base = Array.make 64 0;
    cl_seq = Array.make 64 0;
    cl_n = 0;
    last_clear_seq = 0;
    seq = 0;
    dummy;
    sink;
    events = 0;
    deps = 0;
  }

let grow_cells t addr =
  let cap = ref t.cap in
  while addr >= !cap do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let copy mk a = (* grow [a] to [cap], filling the tail with [mk] *)
    let b = Array.make cap mk in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.w_pc <- copy (-1) t.w_pc;
  t.w_time <- copy 0 t.w_time;
  t.w_node <- copy t.dummy t.w_node;
  t.r_head <- copy (-1) t.r_head;
  t.touch <- copy 0 t.touch;
  t.cap <- cap

let ensure t addr =
  if addr >= t.cap then grow_cells t addr;
  if addr >= t.hi then t.hi <- addr + 1

let grow_arena t =
  let n = Array.length t.rn_pc in
  let cap = 2 * n in
  let copy mk a =
    let b = Array.make cap mk in
    Array.blit a 0 b 0 n;
    b
  in
  t.rn_pc <- copy 0 t.rn_pc;
  t.rn_time <- copy 0 t.rn_time;
  t.rn_node <- copy t.dummy t.rn_node;
  t.rn_next <- copy 0 t.rn_next;
  thread_free t.rn_next n cap;
  t.free <- n

let alloc_slot t =
  if t.free < 0 then grow_arena t;
  let i = t.free in
  t.free <- t.rn_next.(i);
  i

(* Return a whole read chain to the free list and detach it. *)
let release_chain t addr =
  let i = ref t.r_head.(addr) in
  while !i >= 0 do
    let next = t.rn_next.(!i) in
    t.rn_node.(!i) <- t.dummy;
    t.rn_next.(!i) <- t.free;
    t.free <- !i;
    i := next
  done;
  t.r_head.(addr) <- -1

let reset_cell t addr =
  t.w_pc.(addr) <- -1;
  t.w_node.(addr) <- t.dummy;
  if t.r_head.(addr) >= 0 then release_chain t addr

(* Topmost clear entry with base <= addr (bases ascend): its seq is the
   newest clear covering [addr]. *)
let covering_clear_seq t addr =
  if t.cl_n = 0 || addr < t.cl_base.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (t.cl_n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.cl_base.(mid) <= addr then lo := mid else hi := mid - 1
    done;
    t.cl_seq.(!lo)
  end

(* Resolve lazy clears: if the cell's last touch predates a covering
   clear, scrub it before use. *)
let freshen t addr =
  if
    t.touch.(addr) < t.last_clear_seq
    && (t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0)
    && covering_clear_seq t addr > t.touch.(addr)
  then reset_cell t addr

let read t ~addr ~pc ~time ~node =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  ensure t addr;
  freshen t addr;
  if t.w_pc.(addr) >= 0 then begin
    t.deps <- t.deps + 1;
    t.sink ~kind:Dependence.Raw ~head_pc:t.w_pc.(addr)
      ~head_time:t.w_time.(addr) ~head_node:t.w_node.(addr) ~tail_pc:pc
      ~tail_time:time ~tail_node:node ~addr
  end;
  (* update the slot for this static pc in place, or link a new one *)
  let rec find i =
    if i < 0 then -1 else if t.rn_pc.(i) = pc then i else find t.rn_next.(i)
  in
  let i = find t.r_head.(addr) in
  if i >= 0 then begin
    t.rn_time.(i) <- time;
    t.rn_node.(i) <- node
  end
  else begin
    let i = alloc_slot t in
    t.rn_pc.(i) <- pc;
    t.rn_time.(i) <- time;
    t.rn_node.(i) <- node;
    t.rn_next.(i) <- t.r_head.(addr);
    t.r_head.(addr) <- i
  end;
  t.touch.(addr) <- t.seq

let write t ~addr ~pc ~time ~node =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  ensure t addr;
  freshen t addr;
  if t.w_pc.(addr) >= 0 then begin
    t.deps <- t.deps + 1;
    t.sink ~kind:Dependence.Waw ~head_pc:t.w_pc.(addr)
      ~head_time:t.w_time.(addr) ~head_node:t.w_node.(addr) ~tail_pc:pc
      ~tail_time:time ~tail_node:node ~addr
  end;
  (* WAR from every recorded read; free the chain as we go *)
  let i = ref t.r_head.(addr) in
  while !i >= 0 do
    let s = !i in
    t.deps <- t.deps + 1;
    t.sink ~kind:Dependence.War ~head_pc:t.rn_pc.(s) ~head_time:t.rn_time.(s)
      ~head_node:t.rn_node.(s) ~tail_pc:pc ~tail_time:time ~tail_node:node
      ~addr;
    let next = t.rn_next.(s) in
    t.rn_node.(s) <- t.dummy;
    t.rn_next.(s) <- t.free;
    t.free <- s;
    i := next
  done;
  t.r_head.(addr) <- -1;
  t.w_pc.(addr) <- pc;
  t.w_time.(addr) <- time;
  t.w_node.(addr) <- node;
  t.touch.(addr) <- t.seq

let clear_range t ~base ~size =
  if size > 0 then begin
    t.seq <- t.seq + 1;
    if size <= eager_clear_limit then begin
      let hi = min (base + size) t.cap in
      for addr = max base 0 to hi - 1 do
        if t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0 then reset_cell t addr;
        t.touch.(addr) <- t.seq
      done
    end
    else begin
      (* range-tag: pop covered entries, push (base, seq) *)
      while t.cl_n > 0 && t.cl_base.(t.cl_n - 1) >= base do
        t.cl_n <- t.cl_n - 1
      done;
      if t.cl_n = Array.length t.cl_base then begin
        let n = t.cl_n in
        let base' = Array.make (2 * n) 0 and seq' = Array.make (2 * n) 0 in
        Array.blit t.cl_base 0 base' 0 n;
        Array.blit t.cl_seq 0 seq' 0 n;
        t.cl_base <- base';
        t.cl_seq <- seq'
      end;
      t.cl_base.(t.cl_n) <- base;
      t.cl_seq.(t.cl_n) <- t.seq;
      t.cl_n <- t.cl_n + 1;
      t.last_clear_seq <- t.seq
    end
  end

let tracked_addresses t =
  let n = ref 0 in
  for addr = 0 to t.hi - 1 do
    if
      (t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0)
      && not
           (t.touch.(addr) < t.last_clear_seq
           && covering_clear_seq t addr > t.touch.(addr))
    then incr n
  done;
  !n

let events t = t.events
let deps_emitted t = t.deps
