module Node = Indexing.Node

type sink =
  kind:Dependence.kind ->
  head_pc:int ->
  head_time:int ->
  head_node:Node.t ->
  tail_pc:int ->
  tail_time:int ->
  tail_node:Node.t ->
  addr:int ->
  unit

(* Cells are flat struct-of-arrays indexed by address. An address has a
   last write iff [w_pc.(a) >= 0] and recorded reads iff [r_head.(a) >= 0]
   (an index into the read arena, a singly linked free-listed pool of
   (pc, time, node) slots threaded through [rn_next]).

   Clearing is lazy for large ranges: a clear pushes (base, seq) on a
   stack whose bases and seqs are both strictly increasing (a new clear
   pops every entry with a higher base — its range is covered). A cell is
   stale iff some clear with [base <= addr] happened after the cell's
   last touch; staleness is resolved eagerly at the next touch. *)
type t = {
  (* per-address cells *)
  mutable w_pc : int array; (* -1 = no write recorded *)
  mutable w_time : int array;
  mutable w_node : Node.t array;
  mutable r_head : int array; (* -1 = no reads; else arena index *)
  mutable touch : int array; (* seq of last touch, for staleness *)
  mutable cap : int;
  mutable hi : int; (* highest address ever touched + 1 *)
  (* read arena *)
  mutable rn_pc : int array;
  mutable rn_time : int array;
  mutable rn_node : Node.t array;
  mutable rn_next : int array;
  mutable free : int;
  (* clear stack: bases and seqs both strictly increasing *)
  mutable cl_base : int array;
  mutable cl_seq : int array;
  mutable cl_n : int;
  mutable last_clear_seq : int;
  mutable seq : int;
  dummy : Node.t;
  sink : sink;
  events : Obs.Counter.t;
  deps : Obs.Counter.t;
  (* telemetry: every update is an int store on a pre-allocated record *)
  o_cell_cap : Obs.Gauge.t;
  o_cell_growths : Obs.Counter.t;
  o_arena_cap : Obs.Gauge.t;
  o_arena_growths : Obs.Counter.t;
  o_arena_in_use : Obs.Gauge.t;
  o_clear_depth : Obs.Gauge.t;
  o_freshens : Obs.Counter.t;
  o_scrubbed : Obs.Counter.t;
  o_lazy_clears : Obs.Counter.t;
  o_eager_clears : Obs.Counter.t;
}

let no_sink ~kind:_ ~head_pc:_ ~head_time:_ ~head_node:_ ~tail_pc:_
    ~tail_time:_ ~tail_node:_ ~addr:_ =
  ()

let initial_cap = 1024
let arena_cap = 1024

(* Frames up to this size are scrubbed eagerly (exact range semantics);
   larger ones are range-tagged in O(1). *)
let eager_clear_limit = 64

let thread_free rn_next lo hi =
  for i = lo to hi - 2 do
    rn_next.(i) <- i + 1
  done;
  rn_next.(hi - 1) <- -1

let create ?on_dep ?sink () =
  let dummy = Node.make () in
  let sink =
    match (on_dep, sink) with
    | None, None -> no_sink
    | None, Some s -> s
    | Some f, more ->
        fun ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
            ~tail_node ~addr ->
          f
            {
              Dependence.kind;
              head = { Dependence.pc = head_pc; time = head_time; node = head_node };
              tail = { Dependence.pc = tail_pc; time = tail_time; node = tail_node };
              addr;
            };
          (match more with
          | None -> ()
          | Some s ->
              s ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
                ~tail_node ~addr)
  in
  let rn_next = Array.make arena_cap 0 in
  thread_free rn_next 0 arena_cap;
  {
    w_pc = Array.make initial_cap (-1);
    w_time = Array.make initial_cap 0;
    w_node = Array.make initial_cap dummy;
    r_head = Array.make initial_cap (-1);
    touch = Array.make initial_cap 0;
    cap = initial_cap;
    hi = 0;
    rn_pc = Array.make arena_cap 0;
    rn_time = Array.make arena_cap 0;
    rn_node = Array.make arena_cap dummy;
    rn_next;
    free = 0;
    cl_base = Array.make 64 0;
    cl_seq = Array.make 64 0;
    cl_n = 0;
    last_clear_seq = 0;
    seq = 0;
    dummy;
    sink;
    events = Obs.Counter.make ();
    deps = Obs.Counter.make ();
    o_cell_cap =
      (let g = Obs.Gauge.make () in
       Obs.Gauge.set g initial_cap;
       g);
    o_cell_growths = Obs.Counter.make ();
    o_arena_cap =
      (let g = Obs.Gauge.make () in
       Obs.Gauge.set g arena_cap;
       g);
    o_arena_growths = Obs.Counter.make ();
    o_arena_in_use = Obs.Gauge.make ();
    o_clear_depth = Obs.Gauge.make ();
    o_freshens = Obs.Counter.make ();
    o_scrubbed = Obs.Counter.make ();
    o_lazy_clears = Obs.Counter.make ();
    o_eager_clears = Obs.Counter.make ();
  }

let grow_cells t addr =
  let cap = ref t.cap in
  while addr >= !cap do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let copy mk a = (* grow [a] to [cap], filling the tail with [mk] *)
    let b = Array.make cap mk in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.w_pc <- copy (-1) t.w_pc;
  t.w_time <- copy 0 t.w_time;
  t.w_node <- copy t.dummy t.w_node;
  t.r_head <- copy (-1) t.r_head;
  t.touch <- copy 0 t.touch;
  t.cap <- cap;
  Obs.Counter.incr t.o_cell_growths;
  Obs.Gauge.set t.o_cell_cap cap

let ensure t addr =
  if addr >= t.cap then grow_cells t addr;
  if addr >= t.hi then t.hi <- addr + 1

let grow_arena t =
  let n = Array.length t.rn_pc in
  let cap = 2 * n in
  let copy mk a =
    let b = Array.make cap mk in
    Array.blit a 0 b 0 n;
    b
  in
  t.rn_pc <- copy 0 t.rn_pc;
  t.rn_time <- copy 0 t.rn_time;
  t.rn_node <- copy t.dummy t.rn_node;
  t.rn_next <- copy 0 t.rn_next;
  thread_free t.rn_next n cap;
  t.free <- n;
  Obs.Counter.incr t.o_arena_growths;
  Obs.Gauge.set t.o_arena_cap cap

let alloc_slot t =
  if t.free < 0 then grow_arena t;
  let i = t.free in
  t.free <- t.rn_next.(i);
  Obs.Gauge.add t.o_arena_in_use 1;
  i

(* Return a whole read chain to the free list and detach it. *)
let release_chain t addr =
  let i = ref t.r_head.(addr) in
  while !i >= 0 do
    let next = t.rn_next.(!i) in
    t.rn_node.(!i) <- t.dummy;
    t.rn_next.(!i) <- t.free;
    t.free <- !i;
    Obs.Gauge.add t.o_arena_in_use (-1);
    i := next
  done;
  t.r_head.(addr) <- -1

let reset_cell t addr =
  t.w_pc.(addr) <- -1;
  t.w_node.(addr) <- t.dummy;
  if t.r_head.(addr) >= 0 then release_chain t addr

(* Topmost clear entry with base <= addr (bases ascend): its seq is the
   newest clear covering [addr]. *)
let covering_clear_seq t addr =
  if t.cl_n = 0 || addr < t.cl_base.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (t.cl_n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.cl_base.(mid) <= addr then lo := mid else hi := mid - 1
    done;
    t.cl_seq.(!lo)
  end

(* Resolve lazy clears: if the cell's last touch predates a covering
   clear, scrub it before use. *)
let freshen t addr =
  if
    t.touch.(addr) < t.last_clear_seq
    && (t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0)
    && covering_clear_seq t addr > t.touch.(addr)
  then begin
    Obs.Counter.incr t.o_freshens;
    reset_cell t addr
  end

let read t ~addr ~pc ~time ~node =
  Obs.Counter.incr t.events;
  t.seq <- t.seq + 1;
  ensure t addr;
  freshen t addr;
  if t.w_pc.(addr) >= 0 then begin
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.Raw ~head_pc:t.w_pc.(addr)
      ~head_time:t.w_time.(addr) ~head_node:t.w_node.(addr) ~tail_pc:pc
      ~tail_time:time ~tail_node:node ~addr
  end;
  (* update the slot for this static pc in place, or link a new one *)
  let rec find i =
    if i < 0 then -1 else if t.rn_pc.(i) = pc then i else find t.rn_next.(i)
  in
  let i = find t.r_head.(addr) in
  if i >= 0 then begin
    t.rn_time.(i) <- time;
    t.rn_node.(i) <- node
  end
  else begin
    let i = alloc_slot t in
    t.rn_pc.(i) <- pc;
    t.rn_time.(i) <- time;
    t.rn_node.(i) <- node;
    t.rn_next.(i) <- t.r_head.(addr);
    t.r_head.(addr) <- i
  end;
  t.touch.(addr) <- t.seq

let write t ~addr ~pc ~time ~node =
  Obs.Counter.incr t.events;
  t.seq <- t.seq + 1;
  ensure t addr;
  freshen t addr;
  if t.w_pc.(addr) >= 0 then begin
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.Waw ~head_pc:t.w_pc.(addr)
      ~head_time:t.w_time.(addr) ~head_node:t.w_node.(addr) ~tail_pc:pc
      ~tail_time:time ~tail_node:node ~addr
  end;
  (* WAR from every recorded read; free the chain as we go *)
  let i = ref t.r_head.(addr) in
  while !i >= 0 do
    let s = !i in
    Obs.Counter.incr t.deps;
    t.sink ~kind:Dependence.War ~head_pc:t.rn_pc.(s) ~head_time:t.rn_time.(s)
      ~head_node:t.rn_node.(s) ~tail_pc:pc ~tail_time:time ~tail_node:node
      ~addr;
    let next = t.rn_next.(s) in
    t.rn_node.(s) <- t.dummy;
    t.rn_next.(s) <- t.free;
    t.free <- s;
    Obs.Gauge.add t.o_arena_in_use (-1);
    i := next
  done;
  t.r_head.(addr) <- -1;
  t.w_pc.(addr) <- pc;
  t.w_time.(addr) <- time;
  t.w_node.(addr) <- node;
  t.touch.(addr) <- t.seq

let scrub t ~base ~limit =
  (* Exact eager clear of [base, limit): O(limit - base). *)
  let hi = min limit t.cap in
  for addr = max base 0 to hi - 1 do
    if t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0 then begin
      Obs.Counter.incr t.o_scrubbed;
      reset_cell t addr
    end;
    t.touch.(addr) <- t.seq
  done

let clear_from t ~base =
  (* Range-tag [base, ∞) in O(1): pop covered entries (their bases are
     higher, so the new tag subsumes them), push (base, seq). Bases and
     seqs on the stack both stay strictly increasing. *)
  t.seq <- t.seq + 1;
  Obs.Counter.incr t.o_lazy_clears;
  while t.cl_n > 0 && t.cl_base.(t.cl_n - 1) >= base do
    t.cl_n <- t.cl_n - 1
  done;
  if t.cl_n = Array.length t.cl_base then begin
    let n = t.cl_n in
    let base' = Array.make (2 * n) 0 and seq' = Array.make (2 * n) 0 in
    Array.blit t.cl_base 0 base' 0 n;
    Array.blit t.cl_seq 0 seq' 0 n;
    t.cl_base <- base';
    t.cl_seq <- seq'
  end;
  t.cl_base.(t.cl_n) <- base;
  t.cl_seq.(t.cl_n) <- t.seq;
  t.cl_n <- t.cl_n + 1;
  t.last_clear_seq <- t.seq;
  Obs.Gauge.set t.o_clear_depth t.cl_n

let clear_range t ~base ~size =
  if size > 0 then
    if size > eager_clear_limit && base + size >= t.hi then
      (* The range covers every address ever touched at or above [base],
         so the O(1) suffix tag is exact. *)
      clear_from t ~base
    else begin
      (* Small ranges, and interior ranges wider than the eager limit:
         scrub exactly [base, base+size). The suffix tag would clear
         [base, ∞), silently dropping live history above an interior
         range — interior ranges must pay O(size) for exact semantics. *)
      t.seq <- t.seq + 1;
      Obs.Counter.incr t.o_eager_clears;
      scrub t ~base ~limit:(base + size)
    end

let tracked_addresses t =
  let n = ref 0 in
  for addr = 0 to t.hi - 1 do
    if
      (t.w_pc.(addr) >= 0 || t.r_head.(addr) >= 0)
      && not
           (t.touch.(addr) < t.last_clear_seq
           && covering_clear_seq t addr > t.touch.(addr))
    then incr n
  done;
  !n

let events t = Obs.Counter.get t.events
let deps_emitted t = Obs.Counter.get t.deps

let register_obs t reg =
  Obs.Registry.register_counter reg "shadow.events" t.events;
  Obs.Registry.register_counter reg "shadow.deps" t.deps;
  Obs.Registry.register_gauge reg "shadow.cell_cap" t.o_cell_cap;
  Obs.Registry.register_counter reg "shadow.cell_growths" t.o_cell_growths;
  Obs.Registry.register_gauge reg "shadow.arena_cap" t.o_arena_cap;
  Obs.Registry.register_counter reg "shadow.arena_growths" t.o_arena_growths;
  Obs.Registry.register_gauge reg "shadow.arena_in_use" t.o_arena_in_use;
  Obs.Registry.register_gauge reg "shadow.clear_stack_depth" t.o_clear_depth;
  Obs.Registry.register_counter reg "shadow.freshens" t.o_freshens;
  Obs.Registry.register_counter reg "shadow.cells_scrubbed" t.o_scrubbed;
  Obs.Registry.register_counter reg "shadow.lazy_clears" t.o_lazy_clears;
  Obs.Registry.register_counter reg "shadow.eager_clears" t.o_eager_clears
