type region =
  | Global of { base : int; len : int }
  | Frame of { fid : int; off : int; len : int }

type access = {
  pc : int;
  fid : int;
  is_write : bool;
  regions : region list;
  complete : bool;
  own_frame_direct : bool;
}

type t = {
  prog : Vm.Program.t;
  accesses : access option array;
  degraded : bool;
}

let is_event_pc (prog : Vm.Program.t) pc =
  match prog.code.(pc) with
  | Vm.Instr.LoadGlobal _ | Vm.Instr.StoreGlobal _ | Vm.Instr.LoadIndex
  | Vm.Instr.StoreIndex ->
      true
  | _ -> false

let may_overlap a b =
  match (a, b) with
  | Global { base = b1; len = l1 }, Global { base = b2; len = l2 } ->
      b1 < b2 + l2 && b2 < b1 + l1
  | ( Frame { fid = f1; off = o1; len = l1 },
      Frame { fid = f2; off = o2; len = l2 } ) ->
      f1 = f2 && o1 < o2 + l2 && o2 < o1 + l1
  | Global _, Frame _ | Frame _, Global _ -> false

let regions_may_alias a b =
  (not (a.complete && b.complete))
  || List.exists (fun ra -> List.exists (may_overlap ra) b.regions) a.regions

let pp_region ppf = function
  | Global { base; len } -> Format.fprintf ppf "g[%d..%d)" base (base + len)
  | Frame { fid; off; len } ->
      Format.fprintf ppf "f%d[%d..%d)" fid off (off + len)

let region_to_string r = Format.asprintf "%a" pp_region r

(* ---- abstract values --------------------------------------------------- *)

(* A tracked reference: a creation-site region plus whether it was
   reached without passing through a parameter slot or memory. [direct]
   is what distinguishes "this activation's frame" from "some
   activation's frame" under recursion. *)
module Ref = struct
  type t = { region : region; direct : bool }

  let compare (a : t) (b : t) = compare a b
end

module Rset = Set.Make (Ref)

type absval = { refs : Rset.t; top : bool }

let vint = { refs = Rset.empty; top = false }
let vtop = { refs = Rset.empty; top = true }
let vref region = { refs = Rset.singleton { Ref.region; direct = true }; top = false }
let vjoin a b = { refs = Rset.union a.refs b.refs; top = a.top || b.top }
let vequal a b = Rset.equal a.refs b.refs && a.top = b.top
let is_refy v = v.top || not (Rset.is_empty v.refs)

let strip_direct v =
  { v with refs = Rset.map (fun r -> { r with Ref.direct = false }) v.refs }

(* Raised on an inconsistent abstract stack (shape mismatch at a join,
   underflow): possible only for hand-crafted bytecode. The caller
   degrades the whole analysis rather than trusting partial facts. *)
exception Degrade

(* ---- whole-program environment ---------------------------------------- *)

type env = {
  slots : (int * int, absval) Hashtbl.t;  (** (fid, slot) -> may-hold *)
  ret_refs : bool array;  (** fid -> may return a reference *)
  mutable mem_refs : bool;  (** a reference escaped into memory *)
  mutable changed : bool;
}

let slot_val env fid s =
  match Hashtbl.find_opt env.slots (fid, s) with Some v -> v | None -> vint

let record_slot env fid s v =
  let cur = slot_val env fid s in
  let nv = vjoin cur v in
  if not (vequal cur nv) then begin
    Hashtbl.replace env.slots (fid, s) nv;
    env.changed <- true
  end

let record_mem_escape env =
  if not env.mem_refs then begin
    env.mem_refs <- true;
    env.changed <- true
  end

let record_ret_ref env fid =
  if not env.ret_refs.(fid) then begin
    env.ret_refs.(fid) <- true;
    env.changed <- true
  end

(* ---- abstract transfer ------------------------------------------------- *)

(* One instruction over the abstract stack (head = top of stack).
   [record] distinguishes the solver passes (pure) from the recording
   pass that feeds the global environment and, once converged, the
   access table via [observe]. *)
let step env (funcs : Vm.Program.func_info array) fid ~record ~observe instr
    stack =
  let pop = function [] -> raise Degrade | v :: rest -> (v, rest) in
  let mem_val () = if env.mem_refs then vtop else vint in
  match (instr : Vm.Instr.t) with
  | Const _ -> vint :: stack
  | LoadLocal s -> slot_val env fid s :: stack
  | StoreLocal s ->
      let v, st = pop stack in
      (* Defensive: scalar slots never hold references in compiled
         code, but a stored ref must still flow if one ever lands
         here. Stored-then-reloaded references lose directness — a
         slot outlives nothing, but keeping the lattice simple here
         costs no precision on compiler output. *)
      if record && is_refy v then record_slot env fid s (strip_direct v);
      st
  | LoadGlobal a ->
      (* The access target is the static cell, not the loaded value. *)
      observe ~is_write:false (vref (Global { base = a; len = 1 }));
      mem_val () :: stack
  | StoreGlobal a ->
      let v, st = pop stack in
      observe ~is_write:true (vref (Global { base = a; len = 1 }));
      if record && is_refy v then record_mem_escape env;
      st
  | MakeRefGlobal (base, len) -> vref (Global { base; len }) :: stack
  | MakeRefLocal (off, len) -> vref (Frame { fid; off; len }) :: stack
  | LoadIndex ->
      let _idx, st = pop stack in
      let r, st = pop st in
      observe ~is_write:false r;
      mem_val () :: st
  | StoreIndex ->
      let v, st = pop stack in
      let _idx, st = pop st in
      let r, st = pop st in
      observe ~is_write:true r;
      if record && is_refy v then record_mem_escape env;
      st
  | Binop _ ->
      let _, st = pop stack in
      let _, st = pop st in
      vint :: st
  | Unop _ ->
      let _, st = pop stack in
      vint :: st
  | Jmp _ -> stack
  | Br _ -> snd (pop stack)
  | Call fid' ->
      let callee = funcs.(fid') in
      (* Arguments occupy the top [nparams] slots, first parameter
         deepest; the interpreter copies them into callee slots
         [0 .. nparams-1] in that order. *)
      let rec take n st acc =
        if n = 0 then (acc, st)
        else
          match st with
          | [] -> raise Degrade
          | v :: rest -> take (n - 1) rest (v :: acc)
      in
      let args, st = take callee.nparams stack [] in
      if record then
        List.iteri
          (fun i v ->
            if is_refy v then record_slot env callee.fid i (strip_direct v))
          args;
      (if env.ret_refs.(fid') then vtop else vint) :: st
  | Ret ->
      let v, st = pop stack in
      if record && is_refy v then record_ret_ref env fid;
      st
  | Pop -> snd (pop stack)
  | Dup2 -> (
      match stack with
      | a :: b :: _ -> a :: b :: stack
      | _ -> raise Degrade)
  | Print -> snd (pop stack)
  | Halt -> stack

(* ---- per-function solve ------------------------------------------------ *)

module Stack_lat = struct
  type t = absval list option

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> (
        try List.for_all2 vequal x y with Invalid_argument _ -> raise Degrade)
    | _ -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> (
        try Some (List.map2 vjoin x y)
        with Invalid_argument _ -> raise Degrade)
end

module Solver = Dataflow.Make (Stack_lat)

let no_observe ~is_write:_ _ = ()

let solve_function env (code : Vm.Instr.t array) funcs (cfg : Cfa.Cfg.t) =
  let fid = cfg.func.Vm.Program.fid in
  let transfer (b : Cfa.Cfg.block) = function
    | None -> None
    | Some st ->
        let st = ref st in
        for pc = b.first to b.last do
          st :=
            step env funcs fid ~record:false ~observe:no_observe code.(pc) !st
        done;
        Some !st
  in
  let init (b : Cfa.Cfg.block) =
    if b.bid = cfg.entry_bid then Some [] else None
  in
  Solver.solve ~direction:Dataflow.Forward ~cfg ~init ~transfer

(* Walk every reachable block from its fixpoint entry fact, feeding the
   environment ([record]) and optionally the access sink. *)
let record_pass env (code : Vm.Instr.t array) funcs (cfg : Cfa.Cfg.t)
    (facts : Solver.facts) sink =
  let fid = cfg.func.Vm.Program.fid in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      match facts.Solver.input.(b.bid) with
      | None -> ()
      | Some st ->
          let st = ref st in
          for pc = b.first to b.last do
            let observe ~is_write v = sink ~pc ~fid ~is_write v in
            st := step env funcs fid ~record:true ~observe code.(pc) !st
          done)
    cfg.blocks

let access_of_absval ~pc ~fid ~is_write v =
  let complete = not v.top in
  let regions =
    Rset.fold (fun (r : Ref.t) acc -> r.region :: acc) v.refs []
    |> List.sort_uniq compare
  in
  let own_frame_direct =
    complete
    && (not (Rset.is_empty v.refs))
    && Rset.for_all
         (fun (r : Ref.t) ->
           r.direct
           && match r.region with Frame f -> f.fid = fid | Global _ -> false)
         v.refs
  in
  { pc; fid; is_write; regions; complete; own_frame_direct }

let degraded_result (prog : Vm.Program.t) =
  let n = Array.length prog.code in
  let accesses = Array.make n None in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      for pc = f.entry to f.code_end - 1 do
        if is_event_pc prog pc then
          accesses.(pc) <-
            Some
              {
                pc;
                fid = f.fid;
                is_write =
                  (match prog.code.(pc) with
                  | Vm.Instr.StoreGlobal _ | Vm.Instr.StoreIndex -> true
                  | _ -> false);
                regions = [];
                complete = false;
                own_frame_direct = false;
              }
      done)
    prog.funcs;
  { prog; accesses; degraded = true }

let analyze (prog : Vm.Program.t) =
  let funcs = prog.funcs in
  let cfgs = Array.map (Cfa.Cfg.build prog) funcs in
  let env =
    {
      slots = Hashtbl.create 64;
      ret_refs = Array.make (Array.length funcs) false;
      mem_refs = false;
      changed = true;
    }
  in
  try
    (* Outer fixpoint: the per-function stack solutions depend on the
       slot table / escape flags, which the recording passes grow
       monotonically; the reference universe is finite (one entry per
       MakeRef site, doubled by [direct]), so this converges. *)
    let code = prog.code in
    let solve_all () =
      Array.map (fun cfg -> solve_function env code funcs cfg) cfgs
    in
    let facts = ref (solve_all ()) in
    while env.changed do
      env.changed <- false;
      Array.iteri
        (fun i cfg ->
          record_pass env code funcs cfg
            (!facts).(i)
            (fun ~pc:_ ~fid:_ ~is_write:_ _ -> ()))
        cfgs;
      if env.changed then facts := solve_all ()
    done;
    let accesses = Array.make (Array.length prog.code) None in
    Array.iteri
      (fun i cfg ->
        record_pass env code funcs cfg
          (!facts).(i)
          (fun ~pc ~fid ~is_write v ->
            accesses.(pc) <- Some (access_of_absval ~pc ~fid ~is_write v)))
      cfgs;
    { prog; accesses; degraded = false }
  with Degrade -> degraded_result prog

let access t pc = t.accesses.(pc)
