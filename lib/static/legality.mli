(** Transform-legality verdicts for recorded dependence edges.

    {!Depend} says whether an edge can occur; this module says what a
    parallelizing transform may legally do about it. Each loop-carried
    WAR/WAW edge gets one of three verdicts, ordered from strongest to
    weakest claim:

    - [Privatizable]: give each iteration (thread) its own copy of the
      location — legal because {!Privatize.prove_privatizable} shows the
      cell is written before any read on every intra-iteration path and
      definitely written by every back edge, so no value carries between
      iterations and last-value copy-out is well-defined. Removes the
      WAR/WAW edges on the cell.
    - [Reduction]: accumulate into per-thread partials and fold them at
      the join — legal because {!Privatize.prove_reduction} shows the
      loop's only accesses to the cell form a single associative,
      commutative fold. Removes {e all} edges on the cell, RAW
      included.
    - [Serializing]: neither proof holds; the edge genuinely orders
      iterations (the lattice bottom, always safe to claim).

    RAW edges are classified only when the reduction proof applies
    ({!classify} returns [None] otherwise): a RAW edge that is not a
    reduction is simply a dataflow fact, not a transform opportunity.

    Verdicts persist as the version-4 profile section and feed the
    report tags, [Advice.Spawnable]'s removable-edge list, the
    sanitizer's dynamic cross-check, and parsim's legality-aware
    speedup simulation. *)

type verdict = Privatizable | Reduction | Serializing

val verdict_to_string : verdict -> string
(** ["priv"], ["red"], ["serial"] — the tags stored in version-4
    profile files. *)

val verdict_of_string : string -> verdict option

val verdict_rank : verdict -> int
(** [Privatizable] = 0, [Reduction] = 1, [Serializing] = 2. Profile
    merges keep the {e higher} rank: [Serializing] claims least, so
    disagreement (impossible for same-program profiles, possible for a
    corrupted file) degrades toward safety. *)

type t

(** Everything a consumer may want to know about one classified edge. *)
type proof = {
  verdict : verdict;
  reason : string;  (** why this verdict (refutation text for [Serializing]) *)
  cell : int option;  (** the global cell both endpoints address, when exact *)
  span : (int * int) option;
      (** inclusive pc bounds of the proof's loop — the sanitizer's
          dynamic cross-check needs to tell in-loop from out-of-loop
          edge endpoints *)
  op : Minic.Ast.binop option;  (** the fold operator, for [Reduction] *)
  copy_out : bool;
      (** [Privatizable] only: the cell may be read after the loop, so
          the transform must copy the last iteration's value out *)
}

val analyze : Vm.Program.t -> Points_to.t -> Modref.t -> t
(** Shares the {!Points_to} and {!Modref} facts already computed by
    {!Depend.analyze}; classifications are memoized per edge. *)

val privatize : t -> Privatize.t
(** The privatization/reduction proof engine built during {!analyze} —
    shared with {!Race} so both layers argue from the same proofs. *)

val classify :
  t -> kind:Shadow.Dependence.kind -> head_pc:int -> tail_pc:int ->
  verdict option
(** [Some] for every WAR/WAW edge; for RAW edges, [Some Reduction] when
    the proof holds and [None] otherwise. *)

val proof :
  t -> kind:Shadow.Dependence.kind -> head_pc:int -> tail_pc:int ->
  proof option
(** Full detail behind {!classify}, same [None] policy. *)

val explain :
  t -> kind:Shadow.Dependence.kind -> head_pc:int -> tail_pc:int -> string
(** Human-readable justification (report footnotes, sanitizer
    messages); meaningful even when {!classify} returns [None]. *)

val loop_transforms :
  t -> br_pc:int -> (int * int) list * (int * int) list
(** For the natural loop headed by the [BrLoop] predicate at [br_pc]
    (a [CLoop] construct's [head_pc]): the [(base, len)] address ranges
    of its directly-accessed global cells proven [Privatizable] and
    proven [Reduction] — exactly the shape parsim's task-graph
    collection consumes to drop removable constraints. Cells proving
    both ways are reported once, as reductions (the stronger
    transform: it also licenses dropping RAW edges). *)
