(** Static dependence distances between pairs of indexed accesses.

    Classifies a (head, tail) pair of [LoadIndex]/[StoreIndex] pcs with
    the classical test battery (ZIV, strong/weak SIV, GCD, bounded
    enumeration, value-range disjointness) over {!Induction}'s facts.

    Verdicts speak only about subscript {e values} — the caller must
    separately establish that both accesses resolve to the same array
    region before treating [No_dep] as independence or a distance as a
    bound on a recorded edge.

    [No_dep] is execution-invariant (the two subscript value sets never
    meet, on any run). [Exact_distance]/[Min_distance] count loop
    iterations between dynamic instances and are only emitted when the
    loop body provably runs at most once per program
    ({!Induction.loop_entered_once}), which rules out cross-entry
    instances; [d] iterations apart implies at least [d] retired
    instructions apart, the invariant [alchemist check] enforces. *)

type verdict =
  | No_dep  (** the accesses can never touch the same cell *)
  | Exact_distance of int
      (** every dependent pair of instances is exactly this many
          iterations apart (0 = same iteration) *)
  | Min_distance of int
      (** every dependent pair is at least this many iterations apart *)
  | Unknown

val verdict_to_string : verdict -> string

type t

val analyze :
  ?induction:Induction.t -> called_once:(int -> bool) -> Vm.Program.t -> t
(** [called_once fid] must be a sound "this function runs at most once
    per program" predicate (see {!Depend}). *)

val induction : t -> Induction.t

val classify : t -> head_pc:int -> tail_pc:int -> verdict * string
(** Verdict plus a human-readable justification of the deciding test. *)

val no_dep : t -> head_pc:int -> tail_pc:int -> bool
(** [classify] returned [No_dep]: the subscript value sets are disjoint
    on every execution. *)

val bound : t -> head_pc:int -> tail_pc:int -> int option
(** Proven minimum dependence distance in iterations, [>= 1]; [None]
    when nothing non-trivial is proven. *)
