(* Static dependence-distance classification for pairs of indexed
   accesses, built on {!Induction}'s affine subscript facts.

   For two accesses with subscripts [mul*iv + add] over a common loop's
   induction variable (value [init + j*step] in iteration [j]), the
   subscript values coincide only where

     mul_h*init + mul_h*step*j1 + off_h = mul_t*init + mul_t*step*j2 + off_t

   has integer solutions with [j1, j2] in iteration range. The classical
   battery applies, cheapest first:

   - ZIV: both subscripts constant — equal or provably never equal;
   - strong SIV (equal coefficients): [init] cancels, the iteration
     difference is the single value [(off_t - off_h) / (mul*step)] —
     non-integer or >= trip count means the value sets are disjoint,
     otherwise every dependent pair is exactly that far apart;
   - GCD (unequal coefficients): no solutions when
     [gcd(mul_h*step, mul_t*step)] does not divide the constant side;
   - bounded enumeration (a direct Banerjee-style check): with constant
     [init] and trip count, walk the at most [trip] candidate pairs and
     take the minimum iteration distance — exact emptiness or a sound
     lower bound;
   - value-range disjointness as the fallback for everything else.

   Soundness split: [No_dep] verdicts are execution-invariant — they
   assert the two subscript value {e sets} (over constant components)
   never meet, which holds on every run and every loop entry. Distance
   verdicts ([Exact_distance]/[Min_distance]) compare {e iteration}
   numbers and therefore only constrain instances within one execution
   of the loop; they are claimed only when {!Induction.loop_entered_once}
   holds, making cross-entry instances impossible. A distance of [d]
   iterations forces at least [d] header evaluations between the two
   dynamic events, so observed dependence distances in retired
   instructions are bounded below by [d] — the invariant
   [alchemist check] enforces against recorded profiles.

   Verdicts speak only about subscript values: the caller (see
   {!Depend}) must separately establish that both accesses resolve to
   the same array region before treating [No_dep] as independence or a
   distance as a bound for a recorded edge. *)

type verdict =
  | No_dep
  | Exact_distance of int
  | Min_distance of int
  | Unknown

let verdict_to_string = function
  | No_dep -> "no-dep"
  | Exact_distance d -> Printf.sprintf "dist=%d" d
  | Min_distance d -> Printf.sprintf "dist>=%d" d
  | Unknown -> "unknown"

type t = {
  ind : Induction.t;
  called_once : int -> bool;
}

let analyze ?induction ~called_once (prog : Vm.Program.t) =
  let ind =
    match induction with Some i -> i | None -> Induction.analyze prog
  in
  { ind; called_once }

let induction t = t.ind

(* Enumeration cap: [trip] iterations of integer arithmetic. *)
let max_enum_trip = 65536

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

exception Indefinite

(* Offset of an access once its per-iteration phase is folded in: an
   access after the IV update sees [iv + step], i.e. an extra
   [mul*step]. Ambiguous phases admit both, so no fact. *)
let phased_offset ~mul ~step ~add = function
  | Induction.Before -> add
  | Induction.After -> add + (mul * step)
  | Induction.Ambiguous -> raise Indefinite

(* Strong / weak SIV over a common induction variable. [None] = this
   test does not apply; fall through. *)
let siv_classify t (fh : int * int) (ft : int * int) ~slot ~head_pc ~tail_pc =
  match Induction.common_siv t.ind ~head_pc ~tail_pc ~slot with
  | None -> None
  | Some s -> (
      let mul_h, add_h = fh and mul_t, add_t = ft in
      let step = s.Induction.iv.Induction.step in
      try
        let off_h = phased_offset ~mul:mul_h ~step ~add:add_h s.head_phase in
        let off_t = phased_offset ~mul:mul_t ~step ~add:add_t s.tail_phase in
        let once =
          Induction.loop_entered_once s.loop ~called_once:t.called_once
        in
        if mul_h = mul_t then begin
          (* Strong SIV: init cancels; one candidate difference. *)
          let denom = mul_h * step in
          let num = off_t - off_h in
          if num mod denom <> 0 then
            Some (No_dep, "strong SIV: non-integer iteration difference")
          else
            let d = abs (num / denom) in
            match s.iv.Induction.trip with
            | Some trip when d >= trip ->
                Some
                  ( No_dep,
                    Printf.sprintf
                      "strong SIV: distance %d exceeds trip count %d" d trip
                  )
            | _ ->
                if once then
                  Some
                    ( Exact_distance d,
                      Printf.sprintf
                        "strong SIV: dependent iterations %d apart" d )
                else
                  Some
                    ( Unknown,
                      "strong SIV distance needs a single-entry loop" )
        end
        else
          match s.iv.Induction.init with
          | None -> None
          | Some init -> (
              let dh = mul_h * step and dt = mul_t * step in
              let c = ((mul_t - mul_h) * init) + off_t - off_h in
              let g = gcd (abs dh) (abs dt) in
              if g <> 0 && c mod g <> 0 then
                Some (No_dep, "GCD test: no integer solutions")
              else
                match s.iv.Induction.trip with
                | Some trip when trip <= max_enum_trip ->
                    let best = ref max_int in
                    for j1 = 0 to trip - 1 do
                      let num = (dh * j1) - c in
                      if num mod dt = 0 then begin
                        let j2 = num / dt in
                        if j2 >= 0 && j2 < trip then
                          best := min !best (abs (j1 - j2))
                      end
                    done;
                    if !best = max_int then
                      Some (No_dep, "subscript value sets disjoint")
                    else if !best >= 1 && once then
                      Some
                        ( Min_distance !best,
                          Printf.sprintf
                            "dependent iterations at least %d apart" !best )
                    else
                      Some
                        ( Unknown,
                          "weak SIV: equal values in overlapping iterations"
                        )
                | _ -> None)
      with Indefinite -> None)

(* Constant subscript against an affine one: membership of the constant
   in the affine access's value set, when that set is pinned down. *)
let const_vs_affine t k (mul, add) ~slot ~aff_pc =
  match Induction.common_siv t.ind ~head_pc:aff_pc ~tail_pc:aff_pc ~slot with
  | None -> None
  | Some s -> (
      match (s.iv.Induction.init, s.iv.Induction.trip) with
      | Some init, Some trip -> (
          let step = s.Induction.iv.Induction.step in
          try
            let off = phased_offset ~mul ~step ~add s.head_phase in
            let d = mul * step in
            let num = k - (mul * init) - off in
            if num mod d <> 0 then
              Some (No_dep, "constant outside affine value set")
            else
              let j = num / d in
              if j < 0 || j >= trip then
                Some (No_dep, "constant outside affine value set")
              else None
          with Indefinite -> None)
      | _ -> None)

let range_fallback t ~head_pc ~tail_pc =
  match
    (Induction.index_range t.ind head_pc, Induction.index_range t.ind tail_pc)
  with
  | Some (lo_h, hi_h), Some (lo_t, hi_t) when hi_h < lo_t || hi_t < lo_h ->
      Some (No_dep, "subscript value ranges disjoint")
  | _ -> None

let classify t ~head_pc ~tail_pc =
  let av_h = Induction.index_fact t.ind head_pc in
  let av_t = Induction.index_fact t.ind tail_pc in
  let fallback () =
    match range_fallback t ~head_pc ~tail_pc with
    | Some r -> r
    | None -> (Unknown, "no applicable distance test")
  in
  match (av_h, av_t) with
  | Induction.Cst a, Induction.Cst b ->
      if a <> b then (No_dep, "ZIV: constant subscripts differ")
      else (Unknown, "ZIV: same constant cell")
  | Induction.Aff fh, Induction.Aff ft when fh.slot = ft.slot -> (
      match
        siv_classify t (fh.mul, fh.add) (ft.mul, ft.add) ~slot:fh.slot
          ~head_pc ~tail_pc
      with
      | Some r -> r
      | None -> fallback ())
  | Induction.Cst k, Induction.Aff f -> (
      match
        const_vs_affine t k (f.mul, f.add) ~slot:f.slot ~aff_pc:tail_pc
      with
      | Some r -> r
      | None -> fallback ())
  | Induction.Aff f, Induction.Cst k -> (
      match
        const_vs_affine t k (f.mul, f.add) ~slot:f.slot ~aff_pc:head_pc
      with
      | Some r -> r
      | None -> fallback ())
  | _ -> fallback ()

let no_dep t ~head_pc ~tail_pc =
  match classify t ~head_pc ~tail_pc with No_dep, _ -> true | _ -> false

let bound t ~head_pc ~tail_pc =
  match classify t ~head_pc ~tail_pc with
  | (Exact_distance d | Min_distance d), _ when d >= 1 -> Some d
  | _ -> None
