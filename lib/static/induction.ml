(* Loop induction variables and affine array subscripts over the VM IR.

   Three layers of facts, all per-program:

   - write-once constant globals: a global cell with exactly one
     [Const k; StoreGlobal] site in the whole program, and not covered by
     any [MakeRefGlobal] range (an indexed store could rewrite it), acts
     as a symbolic constant for loads the store provably precedes — this
     is how [for (f = 0; f < nfiles; f++)] with [nfiles = <literal>] set
     up earlier in the same function gets a constant trip count;

   - basic induction variables: a local slot whose only store inside a
     natural loop is [s := s (+|-) c] executed exactly once per
     iteration, with a constant initial value recovered from the loop's
     entry edges and a constant bound from the header's exit condition
     when both are visible;

   - affine subscript facts: a per-function abstract interpretation of
     the operand stack in the lattice [Top | Cst k | mul*slot + add],
     mirroring {!Points_to}'s stack dataflow, that records at every
     [LoadIndex]/[StoreIndex] the affine form of the index operand.
     Power-of-two masks ([x & (2^k - 1)]) reduce to the identity when
     the operand's value range — known for induction variables — fits
     the mask, which is the shape every circular-buffer subscript in the
     bundled workloads takes. *)

(* ---- affine values ------------------------------------------------------ *)

type av = Top | Cst of int | Aff of { slot : int; mul : int; add : int }

let norm = function Aff { mul = 0; add; _ } -> Cst add | v -> v
let av_equal (a : av) (b : av) = a = b
let av_join a b = if a = b then a else Top

let av_to_string = function
  | Top -> "?"
  | Cst k -> string_of_int k
  | Aff { slot; mul; add } -> Printf.sprintf "%d*l%d%+d" mul slot add

(* ---- per-loop facts ----------------------------------------------------- *)

type iv = {
  slot : int;
  step : int;  (** value change per iteration; never 0 *)
  update_pc : int;  (** pc of the [StoreLocal] update *)
  init : int option;  (** constant value on loop entry *)
  trip : int option;  (** body executions per loop entry *)
  range : (int * int) option;
      (** inclusive bounds of the slot's value at any pc of the loop
          body, post-update slack included *)
}

type loop_facts = {
  fid : int;
  header_bid : int;
  header_pc : int;  (** pc of the loop's [BrLoop] predicate *)
  depth : int;  (** nesting depth of the header block *)
  member : bool array;  (** by bid *)
  ivs : iv list;
}

type func_facts = {
  cfg : Cfa.Cfg.t;
  dom : Cfa.Dominance.t;
  loops : loop_facts array;
  index_av : av array;  (** by [pc - entry]; [Top] when unknown *)
}

type t = {
  prog : Vm.Program.t;
  funcs : func_facts option array;  (** by fid; [None] when degraded *)
  fid_of_pc : int array;
  const_global : (int, int) Hashtbl.t;  (** cell address -> value *)
  const_store_pc : (int, int) Hashtbl.t;  (** cell address -> store pc *)
}

exception Degrade

(* ---- write-once constant globals ---------------------------------------- *)

let const_globals (prog : Vm.Program.t) =
  let stores = Hashtbl.create 16 in
  let ref_covered = Hashtbl.create 16 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Vm.Instr.StoreGlobal a ->
          Hashtbl.replace stores a
            (pc :: Option.value ~default:[] (Hashtbl.find_opt stores a))
      | Vm.Instr.MakeRefGlobal (base, len) ->
          for a = base to base + len - 1 do
            Hashtbl.replace ref_covered a ()
          done
      | _ -> ())
    prog.code;
  let const_global = Hashtbl.create 16 in
  let const_store_pc = Hashtbl.create 16 in
  Hashtbl.iter
    (fun a sites ->
      match sites with
      | [ pc ] when pc > 0 && not (Hashtbl.mem ref_covered a) -> (
          match prog.code.(pc - 1) with
          | Vm.Instr.Const k ->
              Hashtbl.replace const_global a k;
              Hashtbl.replace const_store_pc a pc
          | _ -> ())
      | _ -> ())
    stores;
  (const_global, const_store_pc)

(* A [LoadGlobal a] at [load_pc] sees the write-once constant iff the
   single store dominates it within the same function: no other store
   site exists, so on every path reaching the load the cell already
   holds [k], and it can never change afterwards. *)
let const_at t ~load_pc a =
  match
    (Hashtbl.find_opt t.const_global a, Hashtbl.find_opt t.const_store_pc a)
  with
  | Some k, Some store_pc when t.fid_of_pc.(store_pc) = t.fid_of_pc.(load_pc)
    -> (
      let fid = t.fid_of_pc.(load_pc) in
      match t.funcs.(fid) with
      | None -> None
      | Some ff ->
          let sb = Cfa.Cfg.block_at ff.cfg store_pc in
          let lb = Cfa.Cfg.block_at ff.cfg load_pc in
          if
            (sb.bid = lb.bid && store_pc < load_pc)
            || (sb.bid <> lb.bid
               && Cfa.Dominance.dominates ff.dom sb.bid lb.bid)
          then Some k
          else None)
  | _ -> None

(* ---- induction-variable recognition ------------------------------------- *)

(* Local slots that may be aliased by a local-array reference: an
   indexed store through [MakeRefLocal] could write them, so they can
   never be trusted as scalar induction variables (calls, by contrast,
   cannot write caller locals). *)
let ref_covered_slots (prog : Vm.Program.t) (f : Vm.Program.func_info) =
  let covered = Hashtbl.create 4 in
  for pc = f.entry to f.code_end - 1 do
    match prog.code.(pc) with
    | Vm.Instr.MakeRefLocal (off, len) ->
        for s = off to off + len - 1 do
          Hashtbl.replace covered s ()
        done
    | _ -> ()
  done;
  covered

(* The recognized update shape: [s := s + c] / [s := s - c] (either
   operand order for [+]). Returns the step. *)
let update_step (code : Vm.Instr.t array) ~store_pc ~slot =
  if store_pc < 3 then None
  else
    match (code.(store_pc - 3), code.(store_pc - 2), code.(store_pc - 1)) with
    | Vm.Instr.LoadLocal s, Vm.Instr.Const c, Vm.Instr.Binop Minic.Ast.Add
      when s = slot ->
        Some c
    | Vm.Instr.Const c, Vm.Instr.LoadLocal s, Vm.Instr.Binop Minic.Ast.Add
      when s = slot ->
        Some c
    | Vm.Instr.LoadLocal s, Vm.Instr.Const c, Vm.Instr.Binop Minic.Ast.Sub
      when s = slot ->
        Some (-c)
    | _ -> None

(* Constant initial value on loop entry: walk backwards from each
   non-back-edge predecessor of the header through unique-predecessor
   chains until a [StoreLocal slot] is found; it must be [Const k] and
   every entry path must agree. Skipping unrelated instructions is sound
   because ref-covered slots were excluded and calls cannot write caller
   locals. *)
let entry_const (prog : Vm.Program.t) (cfg : Cfa.Cfg.t) (lf : loop_facts) slot
    =
  let header = cfg.blocks.(lf.header_bid) in
  let entry_preds =
    List.filter (fun p -> not lf.member.(p)) header.Cfa.Cfg.preds
  in
  let find_in_chain bid0 =
    let rec go bid fuel =
      if fuel = 0 then None
      else
        let b = cfg.blocks.(bid) in
        let rec scan pc =
          if pc < b.Cfa.Cfg.first then None
          else
            match prog.code.(pc) with
            | Vm.Instr.StoreLocal s when s = slot ->
                if pc > 0 then
                  match prog.code.(pc - 1) with
                  | Vm.Instr.Const k -> Some k
                  | _ -> Some min_int (* found the store; not a constant *)
                else Some min_int
            | _ -> scan (pc - 1)
        in
        match scan b.Cfa.Cfg.last with
        | Some v -> Some v
        | None -> (
            match b.Cfa.Cfg.preds with
            | [ p ] -> go p (fuel - 1)
            | _ -> None)
    in
    go bid0 64
  in
  match entry_preds with
  | [] -> None
  | p :: rest -> (
      match find_in_chain p with
      | Some k when k <> min_int ->
          if List.for_all (fun p' -> find_in_chain p' = Some k) rest then
            Some k
          else None
      | _ -> None)

(* Constant loop bound from the header's exit condition: the header
   block of a compiled [for]/[while] ends in
   [<lhs>; <rhs>; Binop rel; BrLoop]; accept [LoadLocal slot] against a
   constant (literal or write-once global) on either side. Returns the
   relation normalized to the slot on the left. *)
let header_bound t (code : Vm.Instr.t array) (header : Cfa.Cfg.block) slot =
  let last = header.Cfa.Cfg.last in
  if last < header.Cfa.Cfg.first + 3 then None
  else
    let rel =
      match code.(last - 1) with
      | Vm.Instr.Binop ((Minic.Ast.Lt | Le | Gt | Ge) as r) -> Some r
      | _ -> None
    in
    let operand pc =
      match code.(pc) with
      | Vm.Instr.LoadLocal s when s = slot -> Some `Slot
      | Vm.Instr.Const k -> Some (`Const k)
      | Vm.Instr.LoadGlobal a -> (
          match const_at t ~load_pc:pc a with
          | Some k -> Some (`Const k)
          | None -> None)
      | _ -> None
    in
    match (rel, operand (last - 3), operand (last - 2)) with
    | Some r, Some `Slot, Some (`Const b) -> Some (r, b)
    | Some r, Some (`Const b), Some `Slot ->
        let flipped =
          match r with
          | Minic.Ast.Lt -> Minic.Ast.Gt
          | Minic.Ast.Le -> Minic.Ast.Ge
          | Minic.Ast.Gt -> Minic.Ast.Lt
          | Minic.Ast.Ge -> Minic.Ast.Le
          | r -> r
        in
        Some (flipped, b)
    | _ -> None

let trip_and_range ~init ~step ~rel ~bound =
  (* [last] is the final value of the variable for which the continue
     condition still holds; the range's slack past [last] covers the
     value after the final update. *)
  let cdiv_floor a b = if a >= 0 then a / b else -((-a + b - 1) / b) in
  match (step > 0, rel) with
  | true, Minic.Ast.Lt when init < bound ->
      let last = init + (cdiv_floor (bound - 1 - init) step * step) in
      Some (((last - init) / step) + 1, (init, last + step))
  | true, Minic.Ast.Le when init <= bound ->
      let last = init + (cdiv_floor (bound - init) step * step) in
      Some (((last - init) / step) + 1, (init, last + step))
  | false, Minic.Ast.Gt when init > bound ->
      let last = init - (cdiv_floor (init - bound - 1) (-step) * -step) in
      Some (((init - last) / -step) + 1, (last + step, init))
  | false, Minic.Ast.Ge when init >= bound ->
      let last = init - (cdiv_floor (init - bound) (-step) * -step) in
      Some (((init - last) / -step) + 1, (last + step, init))
  | true, (Minic.Ast.Lt | Minic.Ast.Le) | false, (Minic.Ast.Gt | Minic.Ast.Ge)
    ->
      (* Condition already false on entry: the body never runs. *)
      Some (0, (init, init))
  | _ -> None (* the step fights the relation: no bounded progress *)

let loop_ivs t (prog : Vm.Program.t) (cfg : Cfa.Cfg.t) dom depth_of
    (l : Cfa.Loops.loop) covered =
  let member = Array.make (Array.length cfg.Cfa.Cfg.blocks) false in
  List.iter (fun b -> member.(b) <- true) l.Cfa.Loops.body;
  let lf =
    {
      fid = cfg.Cfa.Cfg.func.Vm.Program.fid;
      header_bid = l.Cfa.Loops.header;
      header_pc = cfg.Cfa.Cfg.blocks.(l.Cfa.Loops.header).Cfa.Cfg.last;
      depth = depth_of l.Cfa.Loops.header;
      member;
      ivs = [];
    }
  in
  if l.Cfa.Loops.degenerate then lf
  else begin
    let stores = Hashtbl.create 8 in
    List.iter
      (fun bid ->
        let b = cfg.Cfa.Cfg.blocks.(bid) in
        for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
          match prog.code.(pc) with
          | Vm.Instr.StoreLocal s ->
              Hashtbl.replace stores s
                (pc :: Option.value ~default:[] (Hashtbl.find_opt stores s))
          | _ -> ()
        done)
      l.Cfa.Loops.body;
    let ivs =
      Hashtbl.fold
        (fun slot sites acc ->
          match sites with
          | [ store_pc ] when not (Hashtbl.mem covered slot) -> (
              match update_step prog.code ~store_pc ~slot with
              | Some step when step <> 0 ->
                  let ub = (Cfa.Cfg.block_at cfg store_pc).Cfa.Cfg.bid in
                  (* Exactly once per iteration: the update block sits at
                     this loop's depth (not in an inner loop) and
                     dominates every back-edge source. *)
                  if
                    member.(ub)
                    && depth_of ub = lf.depth
                    && List.for_all
                         (fun (u, _) -> Cfa.Dominance.dominates dom ub u)
                         l.Cfa.Loops.back_edges
                  then begin
                    let init = entry_const prog cfg lf slot in
                    let trip, range =
                      match
                        ( init,
                          header_bound t prog.code
                            cfg.Cfa.Cfg.blocks.(lf.header_bid) slot )
                      with
                      | Some init, Some (rel, bound) -> (
                          match trip_and_range ~init ~step ~rel ~bound with
                          | Some (trip, range) -> (Some trip, Some range)
                          | None -> (None, None))
                      | _ -> (None, None)
                    in
                    { slot; step; update_pc = store_pc; init; trip; range }
                    :: acc
                  end
                  else acc
              | _ -> acc)
          | _ -> acc)
        stores []
    in
    { lf with ivs }
  end

(* ---- affine stack interpretation ---------------------------------------- *)

(* Value range of an affine form at a block, resolved through the
   innermost enclosing loop that binds the slot as an induction
   variable. *)
let range_of_av (loops : loop_facts array) ~bid v =
  match norm v with
  | Cst k -> Some (k, k)
  | Aff { slot; mul; add } ->
      Array.to_list loops
      |> List.find_map (fun (lf : loop_facts) ->
             if lf.member.(bid) then
               List.find_map
                 (fun iv ->
                   if iv.slot = slot then
                     Option.map
                       (fun (lo, hi) ->
                         let a = (mul * lo) + add and b = (mul * hi) + add in
                         (min a b, max a b))
                       iv.range
                   else None)
                 lf.ivs
             else None)
  | Top -> None

let is_pow2_mask m = m >= 0 && m land (m + 1) = 0

let av_binop loops ~bid op a b =
  let a = norm a and b = norm b in
  let r =
    match ((op : Minic.Ast.binop), a, b) with
    | Add, Cst x, Cst y -> Cst (x + y)
    | Add, Aff f, Cst k | Add, Cst k, Aff f -> Aff { f with add = f.add + k }
    | Add, Aff f, Aff g when f.slot = g.slot ->
        Aff { f with mul = f.mul + g.mul; add = f.add + g.add }
    | Sub, Cst x, Cst y -> Cst (x - y)
    | Sub, Aff f, Cst k -> Aff { f with add = f.add - k }
    | Sub, Cst k, Aff f -> Aff { slot = f.slot; mul = -f.mul; add = k - f.add }
    | Sub, Aff f, Aff g when f.slot = g.slot ->
        Aff { f with mul = f.mul - g.mul; add = f.add - g.add }
    | Mul, Cst x, Cst y -> Cst (x * y)
    | Mul, Aff f, Cst k | Mul, Cst k, Aff f ->
        Aff { f with mul = f.mul * k; add = f.add * k }
    | Div, Cst x, Cst y when y > 0 && x >= 0 -> Cst (x / y)
    | Mod, Cst x, Cst y when y > 0 && x >= 0 -> Cst (x mod y)
    | Shl, Cst x, Cst y when y >= 0 && y < 62 -> Cst (x lsl y)
    | Shl, Aff f, Cst k when k >= 0 && k < 62 ->
        Aff { f with mul = f.mul lsl k; add = f.add lsl k }
    | Shr, Cst x, Cst y when x >= 0 && y >= 0 && y < 62 -> Cst (x asr y)
    | BitAnd, Cst x, Cst y -> Cst (x land y)
    | BitOr, Cst x, Cst y -> Cst (x lor y)
    | BitXor, Cst x, Cst y -> Cst (x lxor y)
    | BitAnd, (Aff _ as v), Cst m | BitAnd, Cst m, (Aff _ as v)
      when is_pow2_mask m -> (
        (* x & (2^k - 1) is the identity when x provably stays within
           the mask — the circular-buffer subscripts of the workloads. *)
        match range_of_av loops ~bid v with
        | Some (lo, hi) when lo >= 0 && hi <= m -> v
        | _ -> Top)
    | _ -> Top
  in
  norm r

module Av_stack = struct
  type t = av list option

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> (
        try List.for_all2 av_equal x y
        with Invalid_argument _ -> raise Degrade)
    | _ -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> (
        try Some (List.map2 av_join x y)
        with Invalid_argument _ -> raise Degrade)
end

module Av_solver = Dataflow.Make (Av_stack)

(* [iv_update pc] identifies the recognized IV update store at [pc]
   (slot, step): affine stack entries over that slot are rewritten in
   terms of the new value instead of being dropped. Any other store to a
   slot invalidates stale affine entries over it. *)
let step_av t loops ~bid ~iv_update instr ~pc stack =
  let pop = function [] -> raise Degrade | v :: rest -> (v, rest) in
  match (instr : Vm.Instr.t) with
  | Vm.Instr.Const k -> Cst k :: stack
  | LoadLocal s -> Aff { slot = s; mul = 1; add = 0 } :: stack
  | StoreLocal s ->
      let _, st = pop stack in
      let rewrite v =
        match norm v with
        | Aff f when f.slot = s -> (
            match iv_update pc with
            | Some (slot, step) when slot = s ->
                (* new = old + step, so old = new - step *)
                Aff { f with add = f.add - (f.mul * step) }
            | _ -> Top)
        | v -> v
      in
      List.map rewrite st
  | LoadGlobal a -> (
      match const_at t ~load_pc:pc a with
      | Some k -> Cst k :: stack
      | None -> Top :: stack)
  | StoreGlobal _ -> snd (pop stack)
  | MakeRefGlobal _ | MakeRefLocal _ -> Top :: stack
  | LoadIndex ->
      let _idx, st = pop stack in
      let _ref, st = pop st in
      Top :: st
  | StoreIndex ->
      let _v, st = pop stack in
      let _idx, st = pop st in
      snd (pop st)
  | Binop op ->
      let b, st = pop stack in
      let a, st = pop st in
      av_binop loops ~bid op a b :: st
  | Unop Minic.Ast.Neg -> (
      let v, st = pop stack in
      match norm v with
      | Cst k -> Cst (-k) :: st
      | Aff f -> Aff { f with mul = -f.mul; add = -f.add } :: st
      | Top -> Top :: st)
  | Unop _ -> Top :: snd (pop stack)
  | Jmp _ -> stack
  | Br _ -> snd (pop stack)
  | Call fid' ->
      let nparams = t.prog.funcs.(fid').Vm.Program.nparams in
      let rec drop n st = if n = 0 then st else drop (n - 1) (snd (pop st)) in
      Top :: drop nparams stack
  | Ret -> snd (pop stack)
  | Pop -> snd (pop stack)
  | Dup2 -> (
      match stack with a :: b :: _ -> a :: b :: stack | _ -> raise Degrade)
  | Print -> snd (pop stack)
  | Halt -> stack

let solve_function t (loops : loop_facts array) (cfg : Cfa.Cfg.t) =
  let f = cfg.Cfa.Cfg.func in
  let updates = Hashtbl.create 8 in
  Array.iter
    (fun lf ->
      List.iter
        (fun iv -> Hashtbl.replace updates iv.update_pc (iv.slot, iv.step))
        lf.ivs)
    loops;
  let iv_update pc = Hashtbl.find_opt updates pc in
  let index_av = Array.make (f.Vm.Program.code_end - f.Vm.Program.entry) Top in
  let run_block ~observe (b : Cfa.Cfg.block) st =
    let st = ref st in
    for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
      (if observe then
         match (t.prog.code.(pc), !st) with
         | Vm.Instr.LoadIndex, idx :: _ ->
             index_av.(pc - f.Vm.Program.entry) <- norm idx
         | Vm.Instr.StoreIndex, _ :: idx :: _ ->
             index_av.(pc - f.Vm.Program.entry) <- norm idx
         | _ -> ());
      st :=
        step_av t loops ~bid:b.Cfa.Cfg.bid ~iv_update t.prog.code.(pc) ~pc !st
    done;
    !st
  in
  let transfer b = function
    | None -> None
    | Some st -> Some (run_block ~observe:false b st)
  in
  let init (b : Cfa.Cfg.block) =
    if b.Cfa.Cfg.bid = cfg.Cfa.Cfg.entry_bid then Some [] else None
  in
  let facts =
    Av_solver.solve ~direction:Dataflow.Forward ~cfg ~init ~transfer
  in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      match facts.Av_solver.input.(b.Cfa.Cfg.bid) with
      | None -> ()
      | Some st -> ignore (run_block ~observe:true b st))
    cfg.Cfa.Cfg.blocks;
  index_av

(* ---- analysis entry ----------------------------------------------------- *)

let fid_of_pc_table (prog : Vm.Program.t) =
  let a = Array.make (Array.length prog.code) (-1) in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      for pc = f.entry to f.code_end - 1 do
        a.(pc) <- f.fid
      done)
    prog.funcs;
  a

let analyze (prog : Vm.Program.t) =
  let const_global, const_store_pc = const_globals prog in
  let t =
    {
      prog;
      funcs = Array.make (Array.length prog.funcs) None;
      fid_of_pc = fid_of_pc_table prog;
      const_global;
      const_store_pc;
    }
  in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      try
        let cfg = Cfa.Cfg.build prog f in
        let dom = Cfa.Dominance.of_cfg cfg in
        let nl = Cfa.Analysis.loops_of prog cfg dom in
        let depth_of bid = nl.Cfa.Loops.depth.(bid) in
        let covered = ref_covered_slots prog f in
        (* Structural facts first — published early so [const_at] can
           resolve same-function dominance for trip bounds — then the
           CFG fixpoint for subscripts. *)
        t.funcs.(f.fid) <- Some { cfg; dom; loops = [||]; index_av = [||] };
        let loop_facts =
          Array.map
            (fun l -> loop_ivs t prog cfg dom depth_of l covered)
            nl.Cfa.Loops.loops
        in
        t.funcs.(f.fid) <-
          Some { cfg; dom; loops = loop_facts; index_av = [||] };
        let index_av = solve_function t loop_facts cfg in
        t.funcs.(f.fid) <- Some { cfg; dom; loops = loop_facts; index_av }
      with Degrade -> t.funcs.(f.fid) <- None)
    prog.funcs;
  t

(* ---- queries ------------------------------------------------------------ *)

let func_facts t pc =
  let fid =
    if pc >= 0 && pc < Array.length t.fid_of_pc then t.fid_of_pc.(pc) else -1
  in
  if fid < 0 then None else t.funcs.(fid)

let index_fact t pc =
  match func_facts t pc with
  | None -> Top
  | Some ff ->
      let entry = ff.cfg.Cfa.Cfg.func.Vm.Program.entry in
      if pc - entry >= 0 && pc - entry < Array.length ff.index_av then
        ff.index_av.(pc - entry)
      else Top

let index_range t pc =
  match func_facts t pc with
  | None -> None
  | Some ff ->
      let bid = (Cfa.Cfg.block_at ff.cfg pc).Cfa.Cfg.bid in
      range_of_av ff.loops ~bid (index_fact t pc)

(* ---- iteration phase ---------------------------------------------------- *)

type phase = Before | After | Ambiguous

(* Where does an access at [pc] sit relative to the IV update within one
   iteration? Intra-iteration paths are paths in the loop subgraph that
   start at the header and never re-enter it (re-entering starts the
   next iteration). The access is definitely [After] when every such
   path to it passes the update block, definitely [Before] when none
   can. Computed by two reachability sweeps; loop bodies are small. *)
let phase_of ff (lf : loop_facts) (iv : iv) pc =
  let ub = (Cfa.Cfg.block_at ff.cfg iv.update_pc).Cfa.Cfg.bid in
  let ab = (Cfa.Cfg.block_at ff.cfg pc).Cfa.Cfg.bid in
  if ab = ub then if pc > iv.update_pc then After else Before
  else begin
    let n = Array.length ff.cfg.Cfa.Cfg.blocks in
    let sweep ~start ~skip =
      let seen = Array.make n false in
      let q = Queue.create () in
      let push s =
        if lf.member.(s) && s <> lf.header_bid && s <> skip && not seen.(s)
        then begin
          seen.(s) <- true;
          Queue.push s q
        end
      in
      List.iter push start;
      while not (Queue.is_empty q) do
        let b = Queue.pop q in
        List.iter push ff.cfg.Cfa.Cfg.blocks.(b).Cfa.Cfg.succs
      done;
      seen
    in
    let avoiding_update =
      sweep ~start:ff.cfg.Cfa.Cfg.blocks.(lf.header_bid).Cfa.Cfg.succs
        ~skip:ub
    in
    let through_update =
      sweep ~start:ff.cfg.Cfa.Cfg.blocks.(ub).Cfa.Cfg.succs ~skip:(-1)
    in
    if ab = lf.header_bid then Before
    else
      match (avoiding_update.(ab), through_update.(ab)) with
      | true, false -> Before
      | false, true -> After
      | _ -> Ambiguous
  end

type siv = {
  iv : iv;
  loop : loop_facts;
  head_phase : phase;
  tail_phase : phase;
}

(* The innermost loop containing both pcs whose induction variable is
   [slot], with each access's per-iteration phase. *)
let common_siv t ~head_pc ~tail_pc ~slot =
  match (func_facts t head_pc, func_facts t tail_pc) with
  | Some ff, Some ff' when ff == ff' ->
      let hb = (Cfa.Cfg.block_at ff.cfg head_pc).Cfa.Cfg.bid in
      let tb = (Cfa.Cfg.block_at ff.cfg tail_pc).Cfa.Cfg.bid in
      Array.to_list ff.loops
      |> List.filter (fun lf -> lf.member.(hb) && lf.member.(tb))
      |> List.sort (fun a b -> compare b.depth a.depth)
      |> List.find_map (fun lf ->
             List.find_map
               (fun iv ->
                 if iv.slot = slot then
                   Some
                     {
                       iv;
                       loop = lf;
                       head_phase = phase_of ff lf iv head_pc;
                       tail_phase = phase_of ff lf iv tail_pc;
                     }
                 else None)
               lf.ivs)
  | _ -> None

(* Is the loop's body executed at most once per program run? True when
   the enclosing function runs at most once and no outer loop repeats
   the entry. Cross-execution dependence instances are then impossible,
   which is what licenses iteration-distance claims about every dynamic
   instance of a (head, tail) pair. *)
let loop_entered_once (lf : loop_facts) ~called_once =
  called_once lf.fid && lf.depth = 1
