(** Static race detection for profile-advised parallelizations.

    Given the fork-join happens-before structure a spawn advice implies
    ({!Concur}), check every may-happen-in-parallel access pair of the
    construct's region and emit a per-construct verdict. The contract
    is one-sided soundness: {!Race_free} is claimed only when every
    conflicting pair is provably exempt — frame freshness, a
    privatization/reduction proof for the pair's own cell (the advice
    already licenses that rewrite; the exemption mirrors the legality
    engine's relative-verdict semantics), subscript-set disjointness,
    or same-iteration confinement in the spawned loop itself. {!Racy}
    and {!Unknown} may be conservative; precision is benched, soundness
    is regressed (test_race's qcheck differential).

    Statuses persist as the version-5 profile block and feed
    [alchemist verify], advice demotion, the sanitizer cross-check,
    report/ranking tags, and parsim's refusal diagnostic. *)

(** Payload-free verdict summary — what profiles store and merges
    combine. Constructors mirror {!verdict} without the evidence. *)
module Status : sig
  type t = Race_free | Unknown | Racy

  val to_string : t -> string
  (** ["race-free"], ["unknown"], ["racy"] — the version-5 file tags. *)

  val of_string : string -> t option

  val rank : t -> int
  (** [Race_free] = 0, [Unknown] = 1, [Racy] = 2. Merges keep the
      higher rank: disagreement degrades away from licensing. *)
end

type witness = {
  pc1 : int;
  pc2 : int;  (** [pc1 <= pc2]; equal for a self-WAW across units *)
  line1 : int;
  line2 : int;  (** source lines of the two accesses *)
  cell : string;  (** the contested location, named for humans *)
  kind : Shadow.Dependence.kind;
      (** [Waw] when both write; otherwise [Raw] if the lower pc is the
          writer, [War] if it is the reader *)
}

type verdict = Race_free | Racy of witness list | Unknown of string

val kind_to_string : Shadow.Dependence.kind -> string
(** ["RAW"], ["WAR"], ["WAW"]. *)

type t

val analyze :
  Vm.Program.t ->
  Points_to.t ->
  Privatize.t ->
  Distance.t ->
  called_once:(int -> bool) ->
  t
(** Shares the facts {!Depend.analyze} already computed (including
    {!Legality}'s privatization engine); verdicts are memoized per
    construct, so construction is cheap and unprofiled constructs cost
    nothing. *)

val verdict : t -> cid:int -> verdict option
(** [None] for a [CCond] — a conditional has no concurrent units. The
    witness list is capped at 16 entries and deterministic (pairs are
    enumerated in ascending pc order). *)

val status : t -> cid:int -> Status.t option
val status_of_verdict : verdict -> Status.t

val explain : t -> cid:int -> string
(** One-line human justification of the verdict (CLI, reports). *)
