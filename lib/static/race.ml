(* Static race detection for profile-advised parallelizations.

   {!Concur} gives the happens-before model a spawn implies: only the
   construct's units (loop iterations / proc call instances) are
   mutually unordered, so may-happen-in-parallel pairs are exactly the
   pairs of region event pcs executing in different units. This module
   checks every such pair that conflicts (at least one write, regions
   may alias) and produces a per-construct verdict. Soundness is
   one-sided by design: [Race_free] must never be claimed when a
   licensed interleaving can diverge from sequential output (the qcheck
   differential in test_race regresses exactly this); [Racy] and
   [Unknown] are allowed to be conservative, and precision is benched.

   A conflicting pair is exempt — provably not a race — in exactly
   these cases:

   - {b frame freshness}: both accesses provably target the current
     activation's own frame. Distinct activations occupy disjoint
     frames, so the pair can only meet when two units share one
     activation: for a spawned loop that is the loop's own function
     (its single activation is shared by every iteration — such pairs
     stay conflicts), while any callee activation is created inside one
     unit and dies there. For a spawned proc every activation,
     including the proc's own, is per-unit fresh.
   - {b transform legality} (loops only): both accesses resolve to the
     same exact global cell and the (loop, cell) pair carries a
     privatization or reduction proof. The spawn advice this verdict
     guards already licenses rewriting that cell into per-unit private
     state ({!Privatize}), which removes it from shared memory — the
     exemption covers only the proven cell's own edges, mirroring the
     legality engine's relative-verdict semantics.
   - {b subscript disjointness}: both accesses index the same single
     global array and {!Distance.no_dep} proves the subscript value
     sets never meet on any execution (this also covers proven
     distances [d >= trip]: the distance engine demotes those to
     [No_dep], since no dependent pair fits inside one loop entry).
   - {b same-iteration confinement} (loops only): both subscripts are
     affine in an induction variable of {e the spawned loop itself}
     with equal coefficients and equal phase-adjusted offsets, so equal
     subscript values force equal iteration numbers — the pair can only
     meet inside one unit, where program order applies. The check
     verifies the binding loop is the spawned loop: a verdict about an
     inner or outer loop's iterations says nothing about which {e unit}
     the instances belong to and must not exempt anything.

   Everything else that conflicts is a witness, and any event access
   whose address set the points-to layer could not bound makes the
   construct [Unknown] (never [Race_free]). *)

module Status = struct
  type t = Race_free | Unknown | Racy

  let to_string = function
    | Race_free -> "race-free"
    | Unknown -> "unknown"
    | Racy -> "racy"

  let of_string = function
    | "race-free" -> Some Race_free
    | "unknown" -> Some Unknown
    | "racy" -> Some Racy
    | _ -> None

  (* Profile merges keep the higher rank: [Racy] claims least about
     safety, so disagreement between merged files degrades away from
     licensing a transform. *)
  let rank = function Race_free -> 0 | Unknown -> 1 | Racy -> 2
end

type witness = {
  pc1 : int;
  pc2 : int;  (* pc1 <= pc2; equal for a self-WAW across units *)
  line1 : int;
  line2 : int;  (* source lines of the two accesses *)
  cell : string;  (* the contested location, named for humans *)
  kind : Shadow.Dependence.kind;
}

type verdict = Race_free | Racy of witness list | Unknown of string

let kind_to_string = function
  | Shadow.Dependence.Raw -> "RAW"
  | Shadow.Dependence.War -> "WAR"
  | Shadow.Dependence.Waw -> "WAW"

type t = {
  prog : Vm.Program.t;
  pts : Points_to.t;
  priv : Privatize.t;
  dist : Distance.t;
  called_once : int -> bool;
  memo : (int, verdict option) Hashtbl.t;  (* by cid *)
}

let analyze (prog : Vm.Program.t) (pts : Points_to.t) (priv : Privatize.t)
    (dist : Distance.t) ~called_once =
  { prog; pts; priv; dist; called_once; memo = Hashtbl.create 16 }

(* Enough witnesses to name every distinct variable in any realistic
   construct without making the quadratic pair scan pay for hopeless
   cases: the verdict is decided by the first witness. *)
let witness_cap = 16

let exact_global (a : Points_to.access) =
  match a with
  | { Points_to.complete = true;
      regions = [ Points_to.Global { base; len = 1 } ]; _ } ->
      Some base
  | _ -> None

let same_single_array (a : Points_to.access) (b : Points_to.access) =
  a.Points_to.complete && b.Points_to.complete
  &&
  match (a.Points_to.regions, b.Points_to.regions) with
  | ( [ Points_to.Global { base = ba; len = la } ],
      [ Points_to.Global { base = bb; len = lb } ] ) ->
      ba = bb && la = lb
  | _ -> false

let symbol_at t addr =
  List.find_map
    (fun (name, base, len) ->
      if addr >= base && addr < base + len then Some (name, base, len)
      else None)
    t.prog.Vm.Program.global_layout

let named_cell t addr =
  match symbol_at t addr with
  | Some (name, _, 1) -> name
  | Some (name, base, _) -> Printf.sprintf "%s[%d]" name (addr - base)
  | None -> Printf.sprintf "global %d" addr

let describe_cell t (a : Points_to.access) (b : Points_to.access) =
  match (exact_global a, exact_global b) with
  | Some ca, Some cb when ca = cb -> named_cell t ca
  | _ -> (
      let overlapping =
        List.find_map
          (fun ra ->
            List.find_map
              (fun rb ->
                if Points_to.may_overlap ra rb then Some ra else None)
              b.Points_to.regions)
          a.Points_to.regions
      in
      match overlapping with
      | Some (Points_to.Global { base; _ }) -> (
          match symbol_at t base with
          | Some (name, _, 1) -> name
          | Some (name, _, _) -> name ^ "[]"
          | None -> Printf.sprintf "global %d" base)
      | Some (Points_to.Frame { fid; off; _ }) ->
          Printf.sprintf "%s frame+%d"
            t.prog.Vm.Program.funcs.(fid).Vm.Program.name off
      | None -> "?")

(* Same-iteration confinement: both subscripts affine in one induction
   variable of the loop headed at [header_pc], equal coefficients,
   equal phase-adjusted offsets. Then subscript_1(j1) = subscript_2(j2)
   forces [mul*step*(j1 - j2) = 0], i.e. [j1 = j2]: every colliding
   pair of instances lives in one iteration — one unit, where program
   order still applies. The binding-loop identity check is what makes
   this sound: {!Induction.common_siv} may resolve the slot against an
   inner or enclosing loop, whose iteration numbers repeat (or stand
   still) across the {e spawned} loop's units. *)
let same_iteration_confined t ~header_pc ~pc1 ~pc2 =
  let ind = Distance.induction t.dist in
  match (Induction.index_fact ind pc1, Induction.index_fact ind pc2) with
  | ( Induction.Aff { slot = s1; mul = m1; add = a1 },
      Induction.Aff { slot = s2; mul = m2; add = a2 } )
    when s1 = s2 && m1 = m2 && m1 <> 0 -> (
      match Induction.common_siv ind ~head_pc:pc1 ~tail_pc:pc2 ~slot:s1 with
      | Some s when s.Induction.loop.Induction.header_pc = header_pc -> (
          let step = s.Induction.iv.Induction.step in
          let phased add = function
            | Induction.Before -> Some add
            | Induction.After -> Some (add + (m1 * step))
            | Induction.Ambiguous -> None
          in
          match
            (phased a1 s.Induction.head_phase, phased a2 s.Induction.tail_phase)
          with
          | Some o1, Some o2 -> o1 = o2
          | _ -> false)
      | _ -> false)
  | _ -> false

(* Is the conflicting pair provably not a race? See the module header
   for the soundness argument behind each arm. [loop] is [Some] exactly
   for spawned-loop regions whose natural loop was found. *)
let pair_exempt t (region : Concur.region) loop (a : Points_to.access)
    (b : Points_to.access) =
  (* frame freshness *)
  (a.Points_to.own_frame_direct && b.Points_to.own_frame_direct
  && (match region.Concur.kind with
     | Concur.Proc_instances -> true
     | Concur.Loop_iterations -> a.Points_to.fid <> region.Concur.fid))
  (* transform legality, per proven (loop, cell) *)
  || (match (loop, exact_global a, exact_global b) with
     | Some l, Some ca, Some cb when ca = cb -> (
         match Privatize.prove_reduction t.priv l ~cell:ca with
         | Ok _ -> true
         | Error _ -> (
             match Privatize.prove_privatizable t.priv l ~cell:ca with
             | Ok () -> true
             | Error _ -> false))
     | _ -> false)
  (* subscript facts over one common array *)
  || (same_single_array a b
     && (Distance.no_dep t.dist ~head_pc:a.Points_to.pc
           ~tail_pc:b.Points_to.pc
        || (region.Concur.kind = Concur.Loop_iterations
           && loop <> None
           && same_iteration_confined t ~header_pc:region.Concur.header_pc
                ~pc1:a.Points_to.pc ~pc2:b.Points_to.pc)))

let witness_of t (a : Points_to.access) (b : Points_to.access) =
  let kind =
    if a.Points_to.is_write && b.Points_to.is_write then Shadow.Dependence.Waw
    else if a.Points_to.is_write then Shadow.Dependence.Raw
    else Shadow.Dependence.War
  in
  {
    pc1 = a.Points_to.pc;
    pc2 = b.Points_to.pc;
    line1 = Vm.Program.line_of_pc t.prog a.Points_to.pc;
    line2 = Vm.Program.line_of_pc t.prog b.Points_to.pc;
    cell = describe_cell t a b;
    kind;
  }

let classify_uncached t cid =
  let c = t.prog.Vm.Program.constructs.(cid) in
  match Concur.of_construct t.prog c with
  | None -> None  (* CCond: no concurrent units to race *)
  | Some region ->
      Some
        (if t.pts.Points_to.degraded then
           Unknown "points-to analysis degraded: address sets are unbounded"
         else
           match region.Concur.kind with
           | Concur.Proc_instances when t.called_once c.Vm.Program.fid ->
               (* at most one unit ever exists, so nothing is unordered *)
               Race_free
           | _ -> (
               let loop =
                 match region.Concur.kind with
                 | Concur.Loop_iterations ->
                     Privatize.loop_at_header t.priv ~br_pc:c.Vm.Program.head_pc
                 | Concur.Proc_instances -> None
               in
               match (region.Concur.kind, loop) with
               | Concur.Loop_iterations, None ->
                   (* degenerate header-only loop: the body runs at most
                      once per entry, so each entry has one unit *)
                   Race_free
               | _ ->
                   let access pc = Points_to.access t.pts pc in
                   let incomplete_pc = ref (-1) in
                   Array.iter
                     (fun pc ->
                       match access pc with
                       | Some a when not a.Points_to.complete ->
                           if !incomplete_pc < 0 then incomplete_pc := pc
                       | _ -> ())
                     region.Concur.event_pcs;
                   let witnesses = ref [] in
                   let nwit = ref 0 in
                   Concur.iter_mhp_pairs region (fun p q ->
                       (match (access p, access q) with
                       | Some a, Some b
                         when a.Points_to.complete && b.Points_to.complete
                              && (a.Points_to.is_write || b.Points_to.is_write)
                              && (p <> q || a.Points_to.is_write)
                              && Points_to.regions_may_alias a b
                              && not (pair_exempt t region loop a b) ->
                           witnesses := witness_of t a b :: !witnesses;
                           incr nwit
                       | _ -> ());
                       !nwit < witness_cap);
                   if !nwit > 0 then Racy (List.rev !witnesses)
                   else if !incomplete_pc >= 0 then
                     Unknown
                       (Printf.sprintf
                          "the access at pc %d (line %d) has an unbounded \
                           address set"
                          !incomplete_pc
                          (Vm.Program.line_of_pc t.prog !incomplete_pc))
                   else Race_free))

let verdict t ~cid =
  match Hashtbl.find_opt t.memo cid with
  | Some v -> v
  | None ->
      let v = classify_uncached t cid in
      Hashtbl.add t.memo cid v;
      v

let status_of_verdict = function
  | Race_free -> Status.Race_free
  | Racy _ -> Status.Racy
  | Unknown _ -> Status.Unknown

let status t ~cid = Option.map status_of_verdict (verdict t ~cid)

let explain t ~cid =
  match verdict t ~cid with
  | None -> "a conditional has no concurrent units"
  | Some Race_free ->
      "no conflicting access pair survives the happens-before and exemption \
       analysis"
  | Some (Racy ws) ->
      Printf.sprintf "%d conflicting access pair%s may interleave across units"
        (List.length ws)
        (if List.length ws = 1 then "" else "s")
  | Some (Unknown reason) -> reason
