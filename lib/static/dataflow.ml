type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type facts = { input : L.t array; output : L.t array }

  let solve ~direction ~(cfg : Cfa.Cfg.t) ~init ~transfer =
    let blocks = cfg.Cfa.Cfg.blocks in
    let n = Array.length blocks in
    let flow_preds b =
      match direction with
      | Forward -> blocks.(b).Cfa.Cfg.preds
      | Backward -> blocks.(b).Cfa.Cfg.succs
    in
    let flow_succs b =
      match direction with
      | Forward -> blocks.(b).Cfa.Cfg.succs
      | Backward -> blocks.(b).Cfa.Cfg.preds
    in
    let input = Array.init n (fun b -> init blocks.(b)) in
    let output = Array.init n (fun b -> transfer blocks.(b) input.(b)) in
    (* FIFO worklist; [queued] keeps each block at most once in the
       queue, so the ring never outgrows the block count. *)
    let queued = Array.make n true in
    let q = Queue.create () in
    (* Seed in bid order: bids follow pc order, which approximates
       reverse post-order for forward problems and keeps the number of
       revisits low. *)
    for b = 0 to n - 1 do
      Queue.add b q
    done;
    while not (Queue.is_empty q) do
      let b = Queue.pop q in
      queued.(b) <- false;
      let inb =
        List.fold_left
          (fun acc p -> L.join acc output.(p))
          (init blocks.(b)) (flow_preds b)
      in
      input.(b) <- inb;
      let outb = transfer blocks.(b) inb in
      if not (L.equal outb output.(b)) then begin
        output.(b) <- outb;
        List.iter
          (fun s ->
            if not queued.(s) then begin
              queued.(s) <- true;
              Queue.add s q
            end)
          (flow_succs b)
      end
    done;
    { input; output }
end
