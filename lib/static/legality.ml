type verdict = Privatizable | Reduction | Serializing

let verdict_to_string = function
  | Privatizable -> "priv"
  | Reduction -> "red"
  | Serializing -> "serial"

let verdict_of_string = function
  | "priv" -> Some Privatizable
  | "red" -> Some Reduction
  | "serial" -> Some Serializing
  | _ -> None

let verdict_rank = function Privatizable -> 0 | Reduction -> 1 | Serializing -> 2

type proof = {
  verdict : verdict;
  reason : string;
  cell : int option;
  span : (int * int) option;
  op : Minic.Ast.binop option;
  copy_out : bool;
}

type t = {
  prog : Vm.Program.t;
  pts : Points_to.t;
  priv : Privatize.t;
  memo : (int * int * int, proof option) Hashtbl.t;
      (* (kind tag, head_pc, tail_pc) *)
}

let analyze (prog : Vm.Program.t) (pts : Points_to.t) (modref : Modref.t) =
  { prog; pts; priv = Privatize.analyze prog pts modref; memo = Hashtbl.create 64 }

let privatize t = t.priv

let kind_tag = function
  | Shadow.Dependence.Raw -> 0
  | Shadow.Dependence.War -> 1
  | Shadow.Dependence.Waw -> 2

let exact_global (a : Points_to.access) =
  match a with
  | { Points_to.complete = true;
      regions = [ Points_to.Global { base; len = 1 } ]; _ } ->
      Some base
  | _ -> None

let serial reason =
  { verdict = Serializing; reason; cell = None; span = None; op = None;
    copy_out = false }

(* One classification for both RAW and WAR/WAW edges. The shared
   skeleton: resolve both endpoints to one exact global cell, find the
   innermost natural loop containing both pcs, then run the transform
   proofs against that (loop, cell). WAR/WAW edges bottom out at
   [Serializing]; a RAW edge is only meaningful here as a reduction, so
   anything short of that proof yields [None]. *)
let classify_uncached t ~kind ~head_pc ~tail_pc =
  let n = Array.length t.prog.Vm.Program.code in
  let acc pc = if pc < 0 || pc >= n then None else Points_to.access t.pts pc in
  let raw = kind = Shadow.Dependence.Raw in
  let bottom reason = if raw then None else Some (serial reason) in
  if t.pts.Points_to.degraded then bottom "points-to analysis degraded"
  else
    match (acc head_pc, acc tail_pc) with
    | Some h, Some tl -> (
        match (exact_global h, exact_global tl) with
        | Some a, Some b when a = b -> (
            match Privatize.innermost_common_loop t.priv ~pc1:head_pc ~pc2:tail_pc with
            | None -> bottom "endpoints share no natural loop"
            | Some loop -> (
                let span = Some (Privatize.loop_span loop) in
                match Privatize.prove_reduction t.priv loop ~cell:a with
                | Ok op ->
                    Some
                      {
                        verdict = Reduction;
                        reason =
                          Printf.sprintf
                            "single %s-fold accumulator: per-thread partials \
                             commute"
                            (Minic.Ast.binop_to_string op);
                        cell = Some a;
                        span;
                        op = Some op;
                        copy_out = false;
                      }
                | Error red_reason ->
                    if raw then None
                    else (
                      match Privatize.prove_privatizable t.priv loop ~cell:a with
                      | Ok () ->
                          Some
                            {
                              verdict = Privatizable;
                              reason =
                                "cell is definitely written before any read \
                                 on every iteration path";
                              cell = Some a;
                              span;
                              op = None;
                              copy_out =
                                Privatize.cell_live_out t.priv loop ~cell:a;
                            }
                      | Error priv_reason ->
                          Some
                            {
                              verdict = Serializing;
                              reason =
                                Printf.sprintf "not privatizable (%s); not a \
                                                reduction (%s)"
                                  priv_reason red_reason;
                              cell = Some a;
                              span;
                              op = None;
                              copy_out = false;
                            })))
        | Some _, Some _ -> bottom "endpoints address different global cells"
        | _ -> bottom "an endpoint is not an exact single global cell")
    | _ -> bottom "an endpoint is unreachable or not a memory event"

let proof t ~kind ~head_pc ~tail_pc =
  let key = (kind_tag kind, head_pc, tail_pc) in
  match Hashtbl.find_opt t.memo key with
  | Some p -> p
  | None ->
      let p = classify_uncached t ~kind ~head_pc ~tail_pc in
      Hashtbl.add t.memo key p;
      p

let classify t ~kind ~head_pc ~tail_pc =
  Option.map (fun p -> p.verdict) (proof t ~kind ~head_pc ~tail_pc)

let explain t ~kind ~head_pc ~tail_pc =
  match proof t ~kind ~head_pc ~tail_pc with
  | Some p -> p.reason
  | None -> "RAW edge with no reduction proof: a plain dataflow fact"

let loop_transforms t ~br_pc =
  match Privatize.loop_at_header t.priv ~br_pc with
  | None -> ([], [])
  | Some loop ->
      List.fold_left
        (fun (privs, reds) cell ->
          match Privatize.prove_reduction t.priv loop ~cell with
          | Ok _ -> (privs, (cell, 1) :: reds)
          | Error _ -> (
              match Privatize.prove_privatizable t.priv loop ~cell with
              | Ok () -> ((cell, 1) :: privs, reds)
              | Error _ -> (privs, reds)))
        ([], [])
        (List.rev (Privatize.direct_cells t.priv loop))
