(** Induction variables, constant trip counts, and affine subscript facts
    over the VM IR — the ground truth {!Distance} runs its dependence
    tests on.

    All facts are conservative: a missing fact ([Top] / [None]) never
    lies, and every positive fact holds on {e every} execution of the
    program. Three layers:

    - {b write-once constant globals} — one [Const k; StoreGlobal] site
      whole-program, no [MakeRefGlobal] coverage; the value is visible
      to loads the store dominates within the same function;
    - {b induction variables} — per natural loop, local slots updated
      [s := s ± c] exactly once per iteration, with constant init /
      trip / value-range when the loop bound is visible;
    - {b affine subscripts} — a per-function abstract interpretation of
      the operand stack recording [mul*slot + add] (or a constant) for
      the index operand of each [LoadIndex]/[StoreIndex]. *)

type av = Top | Cst of int | Aff of { slot : int; mul : int; add : int }

val av_to_string : av -> string

type iv = {
  slot : int;
  step : int;  (** value change per iteration; never 0 *)
  update_pc : int;  (** pc of the [StoreLocal] update *)
  init : int option;  (** constant value on loop entry *)
  trip : int option;  (** body executions per loop entry *)
  range : (int * int) option;
      (** inclusive bounds of the slot's value at any pc of the loop
          body, post-update slack included *)
}

type loop_facts = {
  fid : int;
  header_bid : int;
  header_pc : int;  (** pc of the loop's [BrLoop] predicate *)
  depth : int;  (** nesting depth of the header block *)
  member : bool array;  (** by bid *)
  ivs : iv list;
}

type func_facts = {
  cfg : Cfa.Cfg.t;
  dom : Cfa.Dominance.t;
  loops : loop_facts array;
  index_av : av array;  (** by [pc - entry]; [Top] when unknown *)
}

type t

val analyze : Vm.Program.t -> t
(** Per-function analysis; a function whose operand-stack shapes defeat
    the interpretation degrades to no-facts rather than failing. *)

val func_facts : t -> int -> func_facts option
(** Facts for the function containing a pc; [None] when out of range or
    degraded. *)

val const_at : t -> load_pc:int -> int -> int option
(** [const_at t ~load_pc addr] is the value a [LoadGlobal addr] at
    [load_pc] always observes, when the cell is a write-once constant
    whose store dominates the load. *)

val index_fact : t -> int -> av
(** Affine form of the subscript at a [LoadIndex]/[StoreIndex] pc. *)

val index_range : t -> int -> (int * int) option
(** Inclusive value range of the subscript at an event pc when every
    component is pinned by constants. Execution-invariant: valid across
    all runs and all entries of the enclosing loops. *)

(** Position of an access relative to the IV update within one
    iteration: [Before]/[After] are definite (hold on every
    intra-iteration path), [Ambiguous] means paths disagree. *)
type phase = Before | After | Ambiguous

type siv = {
  iv : iv;
  loop : loop_facts;
  head_phase : phase;
  tail_phase : phase;
}

val common_siv : t -> head_pc:int -> tail_pc:int -> slot:int -> siv option
(** The innermost loop containing both pcs that binds [slot] as an
    induction variable, with each access's per-iteration phase. *)

val loop_entered_once : loop_facts -> called_once:(int -> bool) -> bool
(** Is the loop's body executed at most once per program run (enclosing
    function called at most once, loop not nested)? Licenses
    iteration-distance claims about every dynamic instance of a pair:
    cross-entry dependence instances are impossible. *)
