(** Loop-carried dependence classifier and instrumentation-pruning
    oracle.

    Built on {!Points_to} (which regions can each memory-event pc
    touch?) and {!Reaching_defs} (which writes must reach which reads?),
    this module answers two questions:

    - {!verdict}: for a [(head_pc, tail_pc, kind)] dependence edge, is
      it {!Must_independent} (cannot occur in any execution),
      {!May_dependent} (cannot be refuted), or {!Must_dependent}
      (occurs in every execution that reaches the tail)? The profile
      sanitizer fails on any dynamic edge classified [Must_independent];
      reports surface all three.
    - {!prune_mask}: which event pcs can skip their shadow-memory hooks
      {e without changing a single profile byte}? A pc is prunable only
      if it can participate in no edge {e and} skipping its shadow
      update cannot corrupt the attribution of anyone else's edges (see
      the per-condition comments in the implementation — the write case
      is strictly harder than the read case).

    Scope and soundness stance: verdicts model the profiler's default
    event set ([trace_locals = false]); [Must_independent] never rests
    on intraprocedural reachability (globals persist across activations,
    so CFG order refutes nothing), only on direction, region
    disjointness, or a pruned endpoint; [Must_dependent] is claimed only
    for exact static global cells within one activation of the enclosing
    function. *)

type verdict = Must_independent | May_dependent | Must_dependent

val verdict_to_string : verdict -> string
(** ["must-indep"], ["may-dep"], ["must-dep"] — the tags stored in
    version-2 profile files. *)

val verdict_of_string : string -> verdict option

type t

val analyze :
  ?analysis:Cfa.Analysis.t -> ?distance_promotion:bool -> Vm.Program.t -> t
(** [analysis] shares an already-computed CFA result (the profiler has
    one); omitted, it is recomputed. [distance_promotion] (default
    [true]) lets {!prune_mask} use distance-engine [No_dep] facts to
    prune same-array accesses; [false] measures the pruning the
    region-disjointness rules achieve alone (the benchmark's coverage
    baseline — profiling runs always leave it on). *)

val points : t -> Points_to.t

val modref : t -> Modref.t
(** Interprocedural mod/ref summaries computed during {!analyze} (they
    also feed the must-reaching-definitions kill function at [Call]
    sites). *)

val legality : t -> Legality.t
(** The transform-legality classifier built on the same {!Points_to}
    and {!Modref} facts — see {!Legality.classify}. *)

val race : t -> Race.t
(** The static race detector built on the same points-to, privatization,
    and distance facts — see {!Race.verdict}. Construction is lazy per
    construct, so carrying it costs nothing until queried. *)

val distance : t -> Distance.t
(** The dependence-distance engine built during {!analyze} (shares its
    [called_once] facts). *)

val degraded : t -> bool

val verdict :
  t -> kind:Shadow.Dependence.kind -> head_pc:int -> tail_pc:int -> verdict

val explain :
  t -> kind:Shadow.Dependence.kind -> head_pc:int -> tail_pc:int -> string
(** Human-readable justification of {!verdict} for the same edge
    (sanitizer failure messages, report footnotes). *)

val prune_mask : t -> bool array
(** Indexed by pc; [true] exactly at event pcs whose hooks may be
    skipped. The array is shared, not copied — treat as read-only. *)

val pruned_count : t -> int

val widen_prune :
  ?distance_promotion:bool ->
  t ->
  region_hint:(int -> (int * int) option) ->
  bool array * int
(** Re-derive the prune mask with externally proven regions substituted
    for incomplete accesses: [region_hint pc = Some (base, len)] asserts
    that whenever the event at [pc] fires, its address lies in the
    global region [base, base+len) — {!Ir.Refine.region_hints} supplies
    such facts from register-IR def-use chains the abstract-stack
    points-to analysis cannot follow. The result is a fresh array, a
    superset of {!prune_mask} (widening is monotone), paired with the
    number of pcs it adds. Verdicts and stored profiles keep using the
    base mask, so applying the widened mask to an engine changes no
    profile byte. *)

val event_count : t -> int
(** Memory-event pcs in live code (denominator for the pruning rate). *)

val called_once : t -> int -> bool
(** The function body executes at most once per program run. *)

val live : t -> int -> bool
(** The function is reachable from [main] through [Call] instructions in
    reachable functions. *)

val construct_proven_independent : t -> cid:int -> bool
(** Every event pc that could head an edge attributed to this construct
    (its body span plus the bodies of all transitively callable
    functions) is pruned — so the construct provably receives no
    dependence edges at all, the strongest "spawnable" evidence the
    static layer can give. *)

val frame_owner : t -> head_pc:int -> tail_pc:int -> int option
(** [Some fid] when both endpoints provably address the {e current}
    activation frame of [fid]. Such an edge is confined to one
    activation (frame release invalidates shadow state), so it can only
    be attributed to completed constructs {e inside} that activation:
    loops and conditionals of [fid], never a [CProc] — the sanitizer's
    frame-ownership check. *)

val distance_bound : t -> head_pc:int -> tail_pc:int -> int option
(** Proven minimum dependence distance in loop iterations ([>= 1])
    between two event pcs, valid for every dynamic edge instance: both
    endpoints resolve to the same single global array and the
    {!Distance} tests prove the separation. Since [d] iterations apart
    implies at least [d] retired instructions apart, any recorded edge
    between the pcs must satisfy [min_tdep >= d] — the invariant the
    sanitizer and [alchemist check] enforce, and the bound persisted in
    version-3 profiles. *)

val distance_verdict :
  t -> head_pc:int -> tail_pc:int -> Distance.verdict * string
(** Raw distance classification with its justification, gated on the
    same same-array requirement as {!distance_bound} ([Unknown]
    otherwise). *)
