module Iset = Set.Make (Int)

type mode = May | Must

(* Both modes use the same carrier: [None] is the fact of a block not
   yet proven reachable, and is the identity of [join] in both modes —
   what differs is only how two reachable facts combine (union vs
   intersection). Initializing every non-entry boundary to [None] makes
   the Must problem start from "top" exactly on the reachable subgraph,
   without a universe set. *)
module L = struct
  type t = Iset.t option

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> Iset.equal x y
    | _ -> false
end

type t = {
  entry : int;  (** first pc of the function *)
  before : Iset.t option array;  (** indexed by [pc - entry] *)
}

let analyze ~mode ~(cfg : Cfa.Cfg.t) ~gen ~kills =
  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y ->
        Some (match mode with May -> Iset.union x y | Must -> Iset.inter x y)
  in
  let module Solver = Dataflow.Make (struct
    include L

    let join = join
  end) in
  let step pc s =
    let s = Iset.filter (fun d -> d = pc || not (kills ~pc ~def:d)) s in
    if gen pc then Iset.add pc (Iset.remove pc s) else Iset.remove pc s
  in
  (* A generating pc kills its own previous incarnation (remove/add keep
     the set canonical either way); a non-generating pc never carries
     itself. *)
  let transfer (b : Cfa.Cfg.block) = function
    | None -> None
    | Some s ->
        let s = ref s in
        for pc = b.first to b.last do
          s := step pc !s
        done;
        Some !s
  in
  let init (b : Cfa.Cfg.block) =
    if b.bid = cfg.entry_bid then Some Iset.empty else None
  in
  let facts = Solver.solve ~direction:Dataflow.Forward ~cfg ~init ~transfer in
  let entry = cfg.func.Vm.Program.entry in
  let before = Array.make (cfg.func.Vm.Program.code_end - entry) None in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      match facts.Solver.input.(b.bid) with
      | None -> ()
      | Some s ->
          let s = ref s in
          for pc = b.first to b.last do
            before.(pc - entry) <- Some !s;
            s := step pc !s
          done)
    cfg.blocks;
  { entry; before }

let before t pc =
  match t.before.(pc - t.entry) with
  | None -> []
  | Some s -> Iset.elements s

let reaches t ~def ~use =
  match t.before.(use - t.entry) with
  | None -> false
  | Some s -> Iset.mem def s
