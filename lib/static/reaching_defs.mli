(** Reaching definitions over one function's CFG.

    Parameterized by the client's notion of "definition" and "kill":
    [gen pc] says whether the instruction at [pc] is a definition of
    interest, [kills ~pc ~def] whether executing [pc] clobbers the value
    produced by the definition at [def] (the dependence classifier feeds
    may-alias facts in here, including the transitive write effects of
    [Call] sites).

    Two modes share the one solver:

    - [May]: the classic union problem — a definition reaches a use if
      {e some} path carries it there unkilled.
    - [Must]: the intersection ("available definitions") problem — the
      definition reaches the use along {e every} path from the function
      entry. This is the mode that licenses [Must_dependent] verdicts:
      if a write must-reach a read of the same address, the dependence
      occurs on every execution that reaches the read. *)

type mode = May | Must

type t

val analyze :
  mode:mode ->
  cfg:Cfa.Cfg.t ->
  gen:(int -> bool) ->
  kills:(pc:int -> def:int -> bool) ->
  t
(** [kills] is never asked about a pc's own definition site: a
    generating pc first kills, then generates, so [kills ~pc:d ~def:d]
    is ignored. *)

val before : t -> int -> int list
(** Definition pcs reaching the program point just before [pc], sorted
    ascending. Empty for a pc the solver proved unreachable. *)

val reaches : t -> def:int -> use:int -> bool
(** [May]: the definition at [def] may reach the point before [use].
    [Must]: it does so on every path; [false] when [use] is unreachable
    (the vacuous case never supports a verdict). *)
