type verdict = Must_independent | May_dependent | Must_dependent

let verdict_to_string = function
  | Must_independent -> "must-indep"
  | May_dependent -> "may-dep"
  | Must_dependent -> "must-dep"

let verdict_of_string = function
  | "must-indep" -> Some Must_independent
  | "may-dep" -> Some May_dependent
  | "must-dep" -> Some Must_dependent
  | _ -> None

type t = {
  prog : Vm.Program.t;
  pts : Points_to.t;
  modref : Modref.t;
  legality : Legality.t;
  race : Race.t;
  dist : Distance.t;
  loop_depth : int array;
  fid_of_pc : int array;  (** -1 for the entry preamble *)
  live : bool array;
  called_once : bool array;
  prune : bool array;
  npruned : int;
  nevents : int;
  must_reach : Reaching_defs.t option array;  (** by fid, live only *)
}

let points t = t.pts
let modref t = t.modref
let legality t = t.legality
let race t = t.race
let distance t = t.dist
let degraded t = t.pts.Points_to.degraded
let prune_mask t = t.prune
let pruned_count t = t.npruned
let event_count t = t.nevents
let called_once t fid = t.called_once.(fid)
let live t fid = t.live.(fid)

(* ---- call graph -------------------------------------------------------- *)

let fid_of_pc_table (prog : Vm.Program.t) =
  let a = Array.make (Array.length prog.code) (-1) in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      for pc = f.entry to f.code_end - 1 do
        a.(pc) <- f.fid
      done)
    prog.funcs;
  a

let callees_in (prog : Vm.Program.t) first last =
  let acc = ref [] in
  for pc = first to last do
    match prog.code.(pc) with
    | Vm.Instr.Call g -> acc := g :: !acc
    | _ -> ()
  done;
  List.sort_uniq compare !acc

(* Functions reachable from [main] via Call instructions in reachable
   code. Event pcs of unreachable functions never execute: they are
   trivially prunable and must not veto anyone else's pruning. *)
let live_fids (prog : Vm.Program.t) =
  let n = Array.length prog.funcs in
  let live = Array.make n false in
  let rec visit fid =
    if not live.(fid) then begin
      live.(fid) <- true;
      let f = prog.funcs.(fid) in
      List.iter visit (callees_in prog f.entry (f.code_end - 1))
    end
  in
  visit prog.main_fid;
  live

(* [called_once.(f)]: every run executes the body of [f] at most once.
   True when f has a single live call site that itself runs at most
   once: either the entry preamble (executed exactly once), or a
   non-loop pc of a called-once function other than f itself. *)
let called_once_tbl (prog : Vm.Program.t) fid_of_pc live loop_depth =
  let n = Array.length prog.funcs in
  let sites = Array.make n [] in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Vm.Instr.Call g ->
          let caller = fid_of_pc.(pc) in
          if caller = -1 || live.(caller) then sites.(g) <- pc :: sites.(g)
      | _ -> ())
    prog.code;
  let once = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun f s ->
        if not once.(f) then
          match s with
          | [ site ] ->
              let caller = fid_of_pc.(site) in
              let ok =
                if caller = -1 then true
                else loop_depth.(site) = 0 && caller <> f && once.(caller)
              in
              if ok then begin
                once.(f) <- true;
                changed := true
              end
          | _ -> ())
      sites
  done;
  once

(* ---- cell-level refinement --------------------------------------------- *)

(* Two accesses to the {e same} global array whose subscript value sets
   provably never meet touch disjoint cells on every execution — the
   distance engine's [No_dep] promotes region-overlapping pairs to
   independent. Identity of the array (single complete [Global] region
   with the same extent) is what turns subscript-value disjointness into
   address disjointness. *)
let same_array_no_dep dist (a : Points_to.access) (b : Points_to.access) =
  a.Points_to.complete && b.Points_to.complete
  && (match (a.Points_to.regions, b.Points_to.regions) with
     | ( [ Points_to.Global { base = ba; len = la } ],
         [ Points_to.Global { base = bb; len = lb } ] ) ->
         ba = bb && la = lb
     | _ -> false)
  && Distance.no_dep dist ~head_pc:a.Points_to.pc ~tail_pc:b.Points_to.pc

(* ---- pruning ----------------------------------------------------------- *)

(* Pruning a pc removes its [on_read]/[on_write] hook call, which (a)
   drops every edge the pc would head or tail, and (b) stops updating
   the shadow cells of the addresses it touches. (a) is harmless only if
   the pc can form no edge; (b) is harmless only if no {e other} pc's
   edge detection consults those cells. Hence:

   - a read is prunable iff its address set is complete and disjoint
     from every live write's (no RAW in, no WAR out — and its
     last-reader shadow entry can only matter to an aliasing write);
   - a write is prunable iff additionally no live {e read} and no other
     live {e write} can alias it (a skipped write leaves a stale
     last-writer cell that would corrupt a later aliasing access's
     attribution, not merely drop an edge), and it cannot form a WAW
     edge with itself: it executes at most once per shadow lifetime of
     its cells. That last fact holds when the pc is outside every
     natural loop and either every region is the current activation's
     own frame (frame release clears the cells between activations) or
     the enclosing function body runs at most once per program. *)
(* The prune derivation proper, over an access {e getter} rather than
   the points-to table directly: [widen_prune] re-runs it with accesses
   whose regions have been sharpened by IR-derived hints, keeping one
   derivation for both the base and the widened mask. *)
let compute_prune_with ?(distance_promotion = true) (prog : Vm.Program.t)
    (pts : Points_to.t) (get : int -> Points_to.access option)
    (dist : Distance.t) fid_of_pc live called_once loop_depth =
  let n = Array.length prog.code in
  let prune = Array.make n false in
  if pts.Points_to.degraded then (prune, 0, 0)
  else begin
    let live_accesses = ref [] in
    for pc = 0 to n - 1 do
      match get pc with
      | Some a when live.(a.Points_to.fid) -> live_accesses := a :: !live_accesses
      | _ -> ()
    done;
    let reads, writes =
      List.partition (fun a -> not a.Points_to.is_write) !live_accesses
    in
    let disjoint a b =
      (not (Points_to.regions_may_alias a b))
      || (distance_promotion && same_array_no_dep dist a b)
    in
    let nevents = ref 0 and npruned = ref 0 in
    for pc = 0 to n - 1 do
      if Points_to.is_event_pc prog pc then begin
        let fid = fid_of_pc.(pc) in
        let dead = fid >= 0 && not live.(fid) in
        let p =
          if dead then true
          else
            match get pc with
            | None -> true (* unreachable within its function: never runs *)
            | Some a when not a.Points_to.is_write ->
                a.Points_to.complete && List.for_all (disjoint a) writes
            | Some a ->
                a.Points_to.complete
                && List.for_all (disjoint a) reads
                && List.for_all
                     (fun w -> w.Points_to.pc = pc || disjoint a w)
                     writes
                && loop_depth.(pc) = 0
                && (a.Points_to.own_frame_direct || called_once.(fid))
        in
        prune.(pc) <- p;
        incr nevents;
        if p then incr npruned
      end
    done;
    (prune, !npruned, !nevents)
  end

let compute_prune ?distance_promotion prog pts dist fid_of_pc live called_once
    loop_depth =
  compute_prune_with ?distance_promotion prog pts (Points_to.access pts) dist
    fid_of_pc live called_once loop_depth

(* ---- analysis entry ---------------------------------------------------- *)

let analyze ?analysis ?(distance_promotion = true) (prog : Vm.Program.t) =
  let pts = Points_to.analyze prog in
  let analysis =
    match analysis with Some a -> a | None -> Cfa.Analysis.analyze prog
  in
  let loop_depth = analysis.Cfa.Analysis.loop_depth_of_pc in
  let fid_of_pc = fid_of_pc_table prog in
  let live = live_fids prog in
  let called_once = called_once_tbl prog fid_of_pc live loop_depth in
  let dist =
    Distance.analyze ~called_once:(fun fid -> called_once.(fid)) prog
  in
  let prune, npruned, nevents =
    compute_prune ~distance_promotion prog pts dist fid_of_pc live called_once
      loop_depth
  in
  let modref = Modref.analyze prog pts in
  let legality = Legality.analyze prog pts modref in
  let race =
    Race.analyze prog pts (Legality.privatize legality) dist
      ~called_once:(fun fid -> called_once.(fid))
  in
  let must_reach = Array.make (Array.length prog.funcs) None in
  if not pts.Points_to.degraded then begin
    Array.iter
      (fun (f : Vm.Program.func_info) ->
        if live.(f.fid) then begin
          let cfg = Cfa.Cfg.build prog f in
          let gen pc =
            match Points_to.access pts pc with
            | Some a -> a.Points_to.is_write
            | None -> false
          in
          let kills ~pc ~def =
            match Points_to.access pts def with
            | None -> true
            | Some target -> (
                match prog.code.(pc) with
                | Vm.Instr.StoreGlobal _ | Vm.Instr.StoreIndex -> (
                    match Points_to.access pts pc with
                    | Some w -> Points_to.regions_may_alias w target
                    | None -> false)
                | Vm.Instr.StoreLocal s ->
                    (* Scalar slots are laid out apart from local
                       arrays, but a kill here is free conservatism. *)
                    Points_to.regions_may_alias
                      {
                        Points_to.pc;
                        fid = f.fid;
                        is_write = true;
                        regions =
                          [ Points_to.Frame { fid = f.fid; off = s; len = 1 } ];
                        complete = true;
                        own_frame_direct = true;
                      }
                      target
                | Vm.Instr.Call g -> Modref.may_write modref g target
                | _ -> false)
          in
          must_reach.(f.fid) <-
            Some (Reaching_defs.analyze ~mode:Reaching_defs.Must ~cfg ~gen ~kills)
        end)
      prog.funcs
  end;
  {
    prog;
    pts;
    modref;
    legality;
    race;
    dist;
    loop_depth;
    fid_of_pc;
    live;
    called_once;
    prune;
    npruned;
    nevents;
    must_reach;
  }

(* ---- hint-widened pruning ---------------------------------------------- *)

(* Re-derive the prune mask with externally proven regions substituted
   for incomplete accesses. [region_hint pc = Some (base, len)] asserts
   that whenever the event at [pc] fires, its address lies in the global
   region [base, base+len) — {!Ir.Refine.region_hints} derives such
   facts from register-IR def-use chains that the abstract-stack
   points-to analysis cannot follow.

   Widening is monotone: upgrading an access from incomplete to a
   concrete region can only turn [regions_may_alias] answers from "may"
   to "no" (an incomplete access aliases everything), so the widened
   mask is a superset of [t.prune]. The stored verdict layer keeps using
   [t.prune]: a widened pc still classifies through its (unwidened)
   points-to record, so profile verdict lines are identical whether or
   not the caller applies the widened mask — the engine-side pruning
   stays behaviorally invisible, as [alchemist check] requires.

   Returns the widened mask and the number of pcs it adds. *)
let widen_prune ?(distance_promotion = true) t
    ~(region_hint : int -> (int * int) option) =
  if t.pts.Points_to.degraded then (Array.copy t.prune, 0)
  else begin
    let get pc =
      match Points_to.access t.pts pc with
      | Some a when not a.Points_to.complete -> (
          match region_hint pc with
          | Some (base, len) ->
              Some
                {
                  a with
                  Points_to.regions = [ Points_to.Global { base; len } ];
                  complete = true;
                }
          | None -> Some a)
      | other -> other
    in
    let prune, npruned, _ =
      compute_prune_with ~distance_promotion t.prog t.pts get t.dist
        t.fid_of_pc t.live t.called_once t.loop_depth
    in
    (* Monotonicity holds by construction; keep the base mask's pcs even
       so, which pins the invariant structurally. *)
    Array.iteri (fun pc p -> if p then prune.(pc) <- true) t.prune;
    (prune, max 0 (npruned - t.npruned))
  end

(* ---- verdicts ---------------------------------------------------------- *)

let exact_global (a : Points_to.access) =
  match a with
  | { complete = true; regions = [ Points_to.Global { base; len = 1 } ]; _ } ->
      Some base
  | _ -> None

let direction_ok kind (h : Points_to.access) (t : Points_to.access) =
  match (kind : Shadow.Dependence.kind) with
  | Raw -> h.is_write && not t.is_write
  | War -> (not h.is_write) && t.is_write
  | Waw -> h.is_write && t.is_write

(* Shared classification returning the reason alongside the verdict. *)
let classify t ~kind ~head_pc ~tail_pc =
  let n = Array.length t.prog.Vm.Program.code in
  let acc pc =
    if pc < 0 || pc >= n then None else Points_to.access t.pts pc
  in
  let event pc = pc >= 0 && pc < n && Points_to.is_event_pc t.prog pc in
  if not (event head_pc) then
    (Must_independent, Printf.sprintf "head pc %d is not a memory-event pc" head_pc)
  else if not (event tail_pc) then
    (Must_independent, Printf.sprintf "tail pc %d is not a memory-event pc" tail_pc)
  else
    match (acc head_pc, acc tail_pc) with
    | None, _ when not t.pts.Points_to.degraded ->
        ( Must_independent,
          Printf.sprintf "head pc %d is unreachable and never executes" head_pc )
    | _, None when not t.pts.Points_to.degraded ->
        ( Must_independent,
          Printf.sprintf "tail pc %d is unreachable and never executes" tail_pc )
    | Some h, Some tl ->
        if not (direction_ok kind h tl) then
          ( Must_independent,
            Printf.sprintf "access directions do not match a %s edge"
              (match kind with Raw -> "RAW" | War -> "WAR" | Waw -> "WAW") )
        else if t.prune.(head_pc) then
          ( Must_independent,
            Printf.sprintf "head pc %d is statically pruned (alias-free)"
              head_pc )
        else if t.prune.(tail_pc) then
          ( Must_independent,
            Printf.sprintf "tail pc %d is statically pruned (alias-free)"
              tail_pc )
        else if not (Points_to.regions_may_alias h tl) then
          ( Must_independent,
            Printf.sprintf "regions are disjoint: {%s} vs {%s}"
              (String.concat ", "
                 (List.map Points_to.region_to_string h.Points_to.regions))
              (String.concat ", "
                 (List.map Points_to.region_to_string tl.Points_to.regions)) )
        else if same_array_no_dep t.dist h tl then
          ( Must_independent,
            Printf.sprintf "same array, disjoint subscripts: %s"
              (snd (Distance.classify t.dist ~head_pc ~tail_pc)) )
        else begin
          let must =
            match (kind : Shadow.Dependence.kind) with
            | War -> false (* head is a read: no last-writer argument *)
            | Raw | Waw -> (
                match (exact_global h, exact_global tl) with
                | Some a, Some b
                  when a = b && h.Points_to.fid = tl.Points_to.fid -> (
                    match t.must_reach.(h.Points_to.fid) with
                    | Some rd ->
                        Reaching_defs.reaches rd ~def:head_pc ~use:tail_pc
                    | None -> false)
                | _ -> false)
          in
          if must then
            ( Must_dependent,
              Printf.sprintf
                "write at pc %d must reach pc %d (same global cell, every path)"
                head_pc tail_pc )
          else (May_dependent, "cannot be statically refuted")
        end
    | _ -> (May_dependent, "points-to analysis degraded")

let verdict t ~kind ~head_pc ~tail_pc =
  fst (classify t ~kind ~head_pc ~tail_pc)

let explain t ~kind ~head_pc ~tail_pc =
  snd (classify t ~kind ~head_pc ~tail_pc)

(* ---- construct-level facts --------------------------------------------- *)

let construct_proven_independent t ~cid =
  let c = t.prog.Vm.Program.constructs.(cid) in
  (not (degraded t))
  &&
  (* Every edge attributed to a construct has its head inside the
     construct's dynamic extent: the body span, or code run on its
     behalf by callees. If all those event pcs are pruned, no edge can
     ever reach this construct. *)
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  let check_range first last =
    let pc = ref first in
    while !ok && !pc <= last do
      if Points_to.is_event_pc t.prog !pc && not t.prune.(!pc) then ok := false;
      incr pc
    done
  in
  let rec check_fid fid =
    if !ok && not (Hashtbl.mem seen fid) then begin
      Hashtbl.add seen fid ();
      let f = t.prog.Vm.Program.funcs.(fid) in
      check_range f.entry (f.code_end - 1);
      if !ok then
        List.iter check_fid (callees_in t.prog f.entry (f.code_end - 1))
    end
  in
  check_range c.body_first c.body_last;
  if !ok then
    List.iter check_fid (callees_in t.prog c.body_first c.body_last);
  !ok

let frame_owner t ~head_pc ~tail_pc =
  let n = Array.length t.prog.Vm.Program.code in
  let acc pc =
    if pc < 0 || pc >= n then None else Points_to.access t.pts pc
  in
  match (acc head_pc, acc tail_pc) with
  | Some h, Some tl
    when h.Points_to.own_frame_direct
         && tl.Points_to.own_frame_direct
         && h.Points_to.fid = tl.Points_to.fid ->
      Some h.Points_to.fid
  | _ -> None

(* ---- iteration-distance bounds ------------------------------------------ *)

(* A distance verdict constrains addresses only when both endpoints hit
   the same array: any dynamic edge between them then has its instances
   related by the subscript equation. *)
let same_single_array t ~head_pc ~tail_pc =
  let n = Array.length t.prog.Vm.Program.code in
  let acc pc =
    if pc < 0 || pc >= n then None else Points_to.access t.pts pc
  in
  match (acc head_pc, acc tail_pc) with
  | Some h, Some tl -> (
      h.Points_to.complete && tl.Points_to.complete
      &&
      match (h.Points_to.regions, tl.Points_to.regions) with
      | ( [ Points_to.Global { base = ba; len = la } ],
          [ Points_to.Global { base = bb; len = lb } ] ) ->
          ba = bb && la = lb
      | _ -> false)
  | _ -> false

let distance_bound t ~head_pc ~tail_pc =
  if degraded t then None
  else if same_single_array t ~head_pc ~tail_pc then
    Distance.bound t.dist ~head_pc ~tail_pc
  else None

let distance_verdict t ~head_pc ~tail_pc =
  if degraded t || not (same_single_array t ~head_pc ~tail_pc) then
    (Distance.Unknown, "endpoints do not target one common array")
  else Distance.classify t.dist ~head_pc ~tail_pc
