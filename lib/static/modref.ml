type summary = {
  mod_regions : Points_to.region list;
  mod_complete : bool;
  ref_regions : Points_to.region list;
  ref_complete : bool;
  escaping_params : bool array;
}

type t = { summaries : summary array }

let summary t fid = t.summaries.(fid)

let callees_in (prog : Vm.Program.t) first last =
  let acc = ref [] in
  for pc = first to last do
    match prog.code.(pc) with
    | Vm.Instr.Call g -> acc := g :: !acc
    | _ -> ()
  done;
  List.sort_uniq compare !acc

(* ---- escaping parameters ----------------------------------------------- *)

(* Per-block abstract operand stack tracking which slots' values sit
   where. The walk is intraprocedural and block-local: each block starts
   from an empty abstract stack, and any value that would be consumed
   below it (possible only at join-carried stack depth, which Mini-C's
   compiler produces solely for short-circuit predicates — never
   reference values) is treated as untracked. A [Slot s] consumed by a
   store, or passed to a callee whose matching parameter escapes, marks
   slot [s] escaping; so does one left on the stack when the block ends
   (it flows somewhere this walk cannot see). *)
type av = Slot of int | Other

let block_bounds (prog : Vm.Program.t) (f : Vm.Program.func_info) =
  (* Leaders: function entry, branch targets, instructions after a
     control transfer. We only need linear spans that reset the
     abstract stack at every leader, not a full CFG. *)
  let leader = Array.make (f.code_end - f.entry) false in
  let mark pc = if pc >= f.entry && pc < f.code_end then leader.(pc - f.entry) <- true in
  mark f.entry;
  for pc = f.entry to f.code_end - 1 do
    match prog.code.(pc) with
    | Vm.Instr.Jmp t | Vm.Instr.Br { target = t; _ } ->
        mark t;
        mark (pc + 1)
    | Vm.Instr.Ret | Vm.Instr.Halt -> mark (pc + 1)
    | _ -> ()
  done;
  leader

let escape_fixpoint (prog : Vm.Program.t) =
  let escapes =
    Array.map
      (fun (f : Vm.Program.func_info) -> Array.make f.nparams false)
      prog.funcs
  in
  let mark_changed = ref true in
  let mark fid slot changed =
    let f = prog.funcs.(fid) in
    if slot >= 0 && slot < f.nparams && not escapes.(fid).(slot) then begin
      escapes.(fid).(slot) <- true;
      changed := true
    end
  in
  while !mark_changed do
    mark_changed := false;
    let changed = mark_changed in
    Array.iter
      (fun (f : Vm.Program.func_info) ->
        let leader = block_bounds prog f in
        let stack = ref [] in
        let push v = stack := v :: !stack in
        let pop () =
          match !stack with
          | v :: rest ->
              stack := rest;
              v
          | [] -> Other
        in
        let escape v = match v with Slot s -> mark f.fid s changed | Other -> () in
        for pc = f.entry to f.code_end - 1 do
          if leader.(pc - f.entry) then begin
            (* a value flowing across a join is out of this walk's sight *)
            List.iter escape !stack;
            stack := []
          end;
          match prog.code.(pc) with
          | Vm.Instr.Const _ | Vm.Instr.LoadGlobal _ | Vm.Instr.MakeRefGlobal _
          | Vm.Instr.MakeRefLocal _ ->
              push Other
          | Vm.Instr.LoadLocal s -> push (Slot s)
          | Vm.Instr.StoreLocal s ->
              (* copying into another slot: the copy can escape later,
                 which the walk cannot track — treat the store of a
                 tracked value into any slot as an escape of its source
                 (free conservatism; direct [x[i]]-style parameter use
                 never stores the reference). Storing into the same slot
                 is a no-op for escape purposes. *)
              let v = pop () in
              (match v with Slot s' when s' = s -> () | _ -> escape v)
          | Vm.Instr.StoreGlobal _ -> escape (pop ())
          | Vm.Instr.LoadIndex ->
              let _idx = pop () in
              let _ref = pop () in
              push Other
          | Vm.Instr.StoreIndex ->
              let v = pop () in
              let _idx = pop () in
              let _ref = pop () in
              escape v
          | Vm.Instr.Binop _ ->
              let _ = pop () in
              let _ = pop () in
              push Other
          | Vm.Instr.Unop _ ->
              let _ = pop () in
              push Other
          | Vm.Instr.Br _ | Vm.Instr.Pop | Vm.Instr.Print ->
              let _ = pop () in
              ()
          | Vm.Instr.Jmp _ | Vm.Instr.Halt -> ()
          | Vm.Instr.Dup2 -> (
              match !stack with
              | a :: b :: _ ->
                  push b;
                  push a
              | _ ->
                  stack := [];
                  push Other;
                  push Other)
          | Vm.Instr.Ret ->
              escape (pop ())
              (* a returned reference is visible to every caller *)
          | Vm.Instr.Call g ->
              let callee = prog.funcs.(g) in
              (* arguments are pushed left to right, so the top of the
                 stack is the last parameter *)
              for slot = callee.nparams - 1 downto 0 do
                let v = pop () in
                match v with
                | Slot s ->
                    if slot < Array.length escapes.(g) && escapes.(g).(slot)
                    then mark f.fid s changed
                | Other -> ()
              done;
              push Other
        done;
        List.iter escape !stack)
      prog.funcs
  done;
  escapes

(* ---- mod/ref fixpoint --------------------------------------------------- *)

let analyze (prog : Vm.Program.t) (pts : Points_to.t) =
  let n = Array.length prog.funcs in
  let degraded = pts.Points_to.degraded in
  let escapes = escape_fixpoint prog in
  let summaries =
    Array.init n (fun fid ->
        {
          mod_regions = [];
          mod_complete = not degraded;
          ref_regions = [];
          ref_complete = not degraded;
          escaping_params = escapes.(fid);
        })
  in
  if not degraded then begin
    let summary_of (f : Vm.Program.func_info) =
      let mods = ref [] and refs = ref [] in
      let mod_c = ref true and ref_c = ref true in
      for pc = f.entry to f.code_end - 1 do
        match Points_to.access pts pc with
        | Some a ->
            let regions, complete =
              if a.Points_to.is_write then (mods, mod_c) else (refs, ref_c)
            in
            if a.Points_to.complete then
              regions := List.rev_append a.Points_to.regions !regions
            else complete := false
        | None -> ()
      done;
      List.iter
        (fun g ->
          let s = summaries.(g) in
          mods := List.rev_append s.mod_regions !mods;
          refs := List.rev_append s.ref_regions !refs;
          if not s.mod_complete then mod_c := false;
          if not s.ref_complete then ref_c := false)
        (callees_in prog f.entry (f.code_end - 1));
      {
        mod_regions = List.sort_uniq compare !mods;
        mod_complete = !mod_c;
        ref_regions = List.sort_uniq compare !refs;
        ref_complete = !ref_c;
        escaping_params = escapes.(f.fid);
      }
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (f : Vm.Program.func_info) ->
          let s = summary_of f in
          if
            s.mod_regions <> summaries.(f.fid).mod_regions
            || s.mod_complete <> summaries.(f.fid).mod_complete
            || s.ref_regions <> summaries.(f.fid).ref_regions
            || s.ref_complete <> summaries.(f.fid).ref_complete
          then begin
            summaries.(f.fid) <- s;
            changed := true
          end)
        prog.funcs
    done
  end;
  { summaries }

let overlaps regions complete (target : Points_to.access) =
  (not complete)
  || (not target.Points_to.complete)
  || List.exists
       (fun r ->
         List.exists (Points_to.may_overlap r) target.Points_to.regions)
       regions

let may_write t fid target =
  let s = t.summaries.(fid) in
  overlaps s.mod_regions s.mod_complete target

let may_read t fid target =
  let s = t.summaries.(fid) in
  overlaps s.ref_regions s.ref_complete target

let cell_overlaps regions complete addr =
  (not complete)
  || List.exists
       (fun r ->
         Points_to.may_overlap r (Points_to.Global { base = addr; len = 1 }))
       regions

let may_write_cell t fid ~addr =
  let s = t.summaries.(fid) in
  cell_overlaps s.mod_regions s.mod_complete addr

let may_read_cell t fid ~addr =
  let s = t.summaries.(fid) in
  cell_overlaps s.ref_regions s.ref_complete addr

let touches_cell t fid ~addr =
  may_write_cell t fid ~addr || may_read_cell t fid ~addr
