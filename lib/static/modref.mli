(** Bottom-up interprocedural mod/ref summaries over the VM IR.

    For every function: the regions its body {e or any transitive
    callee} may write ([mod]) and may read ([ref]), each with a
    completeness bit (an access whose address the points-to layer could
    not bound poisons the corresponding set — a [false] bit means "may
    touch anything"), plus which parameter slots can {e escape} — carry
    a value (in particular an array reference) into memory or into a
    callee that lets it escape.

    Summaries are computed as a whole-program fixpoint over the call
    graph (recursion converges because region sets only grow and are
    deduplicated), reusing {!Points_to} facts for the per-pc region
    sets. They answer the call-site questions the rest of the static
    stack needs:

    - {!Depend}'s must-reaching-definitions kill function ("can this
      [Call] clobber the tracked cell?");
    - {!Privatize}'s transform proofs ("does any callee executed from
      this loop touch the candidate cell at all?") — privatizing or
      reducing a location rewrites only the loop body's direct
      accesses, so a callee that may read {e or} write it vetoes the
      transform. *)

type summary = {
  mod_regions : Points_to.region list;
      (** regions the function or its callees may write (sorted,
          deduplicated); exhaustive iff [mod_complete] *)
  mod_complete : bool;
  ref_regions : Points_to.region list;
      (** regions the function or its callees may read; exhaustive iff
          [ref_complete] *)
  ref_complete : bool;
  escaping_params : bool array;
      (** by parameter slot: the incoming value may be stored into
          memory or passed onward to an escape site (computed over a
          per-block abstract operand stack; any join or untracked flow
          is conservatively an escape) *)
}

type t

val analyze : Vm.Program.t -> Points_to.t -> t
(** Whole-program fixpoint; degraded points-to yields all-incomplete
    summaries (every query answers "may"). *)

val summary : t -> int -> summary
(** By function id. *)

val may_write : t -> int -> Points_to.access -> bool
(** Can calling the function write something aliasing the target
    access? [true] whenever either side is incomplete. *)

val may_read : t -> int -> Points_to.access -> bool

val may_write_cell : t -> int -> addr:int -> bool
(** Can calling the function write the single global cell at [addr]? *)

val may_read_cell : t -> int -> addr:int -> bool

val touches_cell : t -> int -> addr:int -> bool
(** {!may_read_cell} or {!may_write_cell}. *)
