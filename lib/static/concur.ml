(* The concurrency model implied by spawning a construct.

   Advice proposes running a construct's repeating units in parallel:
   the iterations of a [CLoop], or the dynamic call instances of a
   [CProc] turned into futures. The happens-before structure this
   licenses is the classic fork-join shape —

     prologue  -->  spawn  -->  unit_0 ... unit_{n-1}  -->  join  -->  epilogue

   — where the spawn edge orders everything before the construct against
   every unit, the join edge orders every unit against the continuation,
   and {e only the units themselves are mutually unordered}. Two
   instruction instances may therefore happen in parallel exactly when
   both execute inside the construct's dynamic extent, in {e different}
   units. That reduces may-happen-in-parallel enumeration to the cross
   product of one static region with itself: the pcs of the construct's
   body span plus the full bodies of every function its units can
   transitively call (code run on a unit's behalf is part of the unit).

   A [CCond] has no repeating unit — its arms are alternatives, not
   parallel work — so it has no concurrent region at all. *)

type unit_kind = Loop_iterations | Proc_instances

type region = {
  cid : int;
  kind : unit_kind;
  header_pc : int;
      (* the [BrLoop] predicate pc for loops, the entry pc for procs *)
  fid : int;
      (* the function whose single activation all units share: the
         loop's enclosing function, or the spawned procedure itself
         (each instance gets a fresh activation of it — see
         {!Race}'s frame rules) *)
  event_pcs : int array;
      (* memory-event pcs of the region, sorted ascending, deduplicated *)
  callee_fids : int list;  (* transitively callable functions, sorted *)
}

let unit_kind_to_string = function
  | Loop_iterations -> "loop iterations"
  | Proc_instances -> "call instances"

let callees_in (prog : Vm.Program.t) first last =
  let acc = ref [] in
  for pc = first to last do
    match prog.code.(pc) with
    | Vm.Instr.Call g -> acc := g :: !acc
    | _ -> ()
  done;
  List.sort_uniq compare !acc

(* Transitive closure of the callee set, seeded from the construct's
   body span. The same traversal as {!Depend.construct_proven_independent}
   uses for its all-pruned check: a unit's dynamic extent is its body
   span plus everything reachable through [Call]. *)
let closure (prog : Vm.Program.t) ~body_first ~body_last =
  let seen = Hashtbl.create 8 in
  let rec visit fid =
    if not (Hashtbl.mem seen fid) then begin
      Hashtbl.add seen fid ();
      let f = prog.Vm.Program.funcs.(fid) in
      List.iter visit (callees_in prog f.entry (f.code_end - 1))
    end
  in
  List.iter visit (callees_in prog body_first body_last);
  Hashtbl.fold (fun fid () acc -> fid :: acc) seen [] |> List.sort compare

let of_construct (prog : Vm.Program.t) (c : Vm.Program.construct_info) =
  match c.kind with
  | Vm.Program.CCond -> None
  | Vm.Program.CLoop | Vm.Program.CProc ->
      let kind =
        match c.kind with
        | Vm.Program.CLoop -> Loop_iterations
        | _ -> Proc_instances
      in
      let callee_fids = closure prog ~body_first:c.body_first ~body_last:c.body_last in
      let pcs = ref [] in
      let add_range first last =
        for pc = first to last do
          if Points_to.is_event_pc prog pc then pcs := pc :: !pcs
        done
      in
      add_range c.body_first c.body_last;
      List.iter
        (fun fid ->
          let f = prog.Vm.Program.funcs.(fid) in
          add_range f.entry (f.code_end - 1))
        callee_fids;
      let event_pcs =
        Array.of_list (List.sort_uniq compare !pcs)
      in
      Some { cid = c.cid; kind; header_pc = c.head_pc; fid = c.fid;
             event_pcs; callee_fids }

(* Enumerate the unordered may-happen-in-parallel pairs of the region:
   every (p, q) with p <= q, including p = q — the same static access
   can execute in two different units, so self-pairs are real candidates
   (a write racing its own instance in another iteration is the
   canonical WAW). The callback returns [false] to stop early (the
   caller has seen enough witnesses). *)
let iter_mhp_pairs region f =
  let n = Array.length region.event_pcs in
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < n do
    let j = ref !i in
    while !continue && !j < n do
      if not (f region.event_pcs.(!i) region.event_pcs.(!j)) then
        continue := false;
      incr j
    done;
    incr i
  done
