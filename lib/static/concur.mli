(** The concurrency model a spawn advice implies.

    Spawning a construct runs its repeating units — loop iterations, or
    procedure call instances turned into futures — in parallel, under
    fork-join happens-before: the spawn edge orders the prologue before
    every unit, the join edge orders every unit before the epilogue, and
    only the units themselves are mutually unordered. Two instruction
    instances may happen in parallel exactly when both lie in the
    construct's dynamic extent and belong to different units, which
    reduces may-happen-in-parallel enumeration to pairs drawn from one
    static {!region}: the construct's body span plus the full bodies of
    every transitively callable function.

    {!Race} consumes regions to check every conflicting access pair. *)

type unit_kind =
  | Loop_iterations  (** a [CLoop]: one unit per iteration *)
  | Proc_instances  (** a [CProc]: one unit per dynamic call *)

type region = {
  cid : int;
  kind : unit_kind;
  header_pc : int;
      (** the [BrLoop] predicate pc for loops, the entry pc for procs *)
  fid : int;
      (** the function whose single activation every unit shares (the
          loop's enclosing function) — for [Proc_instances] it is the
          spawned procedure itself, of which each unit gets a {e fresh}
          activation *)
  event_pcs : int array;
      (** memory-event pcs of the region, sorted ascending, deduplicated *)
  callee_fids : int list;  (** transitively callable functions, sorted *)
}

val unit_kind_to_string : unit_kind -> string

val of_construct :
  Vm.Program.t -> Vm.Program.construct_info -> region option
(** [None] for [CCond] — branch arms are alternatives, not parallel
    units, so a conditional has no concurrent region. *)

val iter_mhp_pairs : region -> (int -> int -> bool) -> unit
(** Invoke the callback on every unordered may-happen-in-parallel pair
    [(p, q)] with [p <= q], self-pairs included (the same static write
    in two different units is the canonical WAW race). The callback
    returns [false] to stop the enumeration early. *)
