type loop = {
  fid : int;
  cfg : Cfa.Cfg.t;
  l : Cfa.Loops.loop;
  member : bool array;  (* by bid *)
  span_lo : int;
  span_hi : int;
}

type func_facts = { cfg : Cfa.Cfg.t; loops : loop array }

type t = {
  prog : Vm.Program.t;
  pts : Points_to.t;
  modref : Modref.t;
  fid_of_pc : int array;
  funcs : func_facts option array;  (* lazy, by fid *)
  priv_memo : (int * int * int, (unit, string) result) Hashtbl.t;
      (* (fid, header bid, cell) *)
  red_memo : (int * int * int, (Minic.Ast.binop, string) result) Hashtbl.t;
}

let analyze (prog : Vm.Program.t) (pts : Points_to.t) (modref : Modref.t) =
  let fid_of_pc = Array.make (Array.length prog.code) (-1) in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      for pc = f.entry to f.code_end - 1 do
        fid_of_pc.(pc) <- f.fid
      done)
    prog.funcs;
  {
    prog;
    pts;
    modref;
    fid_of_pc;
    funcs = Array.make (Array.length prog.funcs) None;
    priv_memo = Hashtbl.create 32;
    red_memo = Hashtbl.create 32;
  }

let facts t fid =
  match t.funcs.(fid) with
  | Some f -> f
  | None ->
      let fn = t.prog.Vm.Program.funcs.(fid) in
      let cfg = Cfa.Cfg.build t.prog fn in
      let dom = Cfa.Dominance.of_cfg cfg in
      let loops =
        Array.of_list
          (List.filter_map
             (fun (l : Cfa.Loops.loop) ->
               if l.degenerate then None
                 (* header-only: the body runs at most once per entry,
                    so no iteration exists to privatize against *)
               else begin
                 let member = Array.make (Array.length cfg.blocks) false in
                 List.iter (fun bid -> member.(bid) <- true) l.body;
                 let lo = ref max_int and hi = ref min_int in
                 List.iter
                   (fun bid ->
                     let b = cfg.blocks.(bid) in
                     if b.Cfa.Cfg.first < !lo then lo := b.Cfa.Cfg.first;
                     if b.Cfa.Cfg.last > !hi then hi := b.Cfa.Cfg.last)
                   l.body;
                 Some { fid; cfg; l; member; span_lo = !lo; span_hi = !hi }
               end)
             (Array.to_list (Cfa.Analysis.loops_of t.prog cfg dom).loops))
      in
      let f = { cfg; loops } in
      t.funcs.(fid) <- Some f;
      f

let in_loop (loop : loop) pc =
  pc >= loop.cfg.Cfa.Cfg.func.Vm.Program.entry
  && pc < loop.cfg.Cfa.Cfg.func.Vm.Program.code_end
  && loop.member.(loop.cfg.Cfa.Cfg.block_of_pc.(pc - loop.cfg.Cfa.Cfg.func.Vm.Program.entry))

let loop_span (loop : loop) = (loop.span_lo, loop.span_hi)

let loop_size (loop : loop) = Array.fold_left (fun n m -> if m then n + 1 else n) 0 loop.member

let innermost_common_loop t ~pc1 ~pc2 =
  let n = Array.length t.fid_of_pc in
  if pc1 < 0 || pc1 >= n || pc2 < 0 || pc2 >= n then None
  else
    let f1 = t.fid_of_pc.(pc1) and f2 = t.fid_of_pc.(pc2) in
    if f1 < 0 || f1 <> f2 then None
    else
      let { loops; _ } = facts t f1 in
      Array.fold_left
        (fun best loop ->
          if in_loop loop pc1 && in_loop loop pc2 then
            match best with
            | Some b when loop_size b <= loop_size loop -> best
            | _ -> Some loop
          else best)
        None loops

let loop_at_header t ~br_pc =
  let n = Array.length t.fid_of_pc in
  if br_pc < 0 || br_pc >= n then None
  else
    let fid = t.fid_of_pc.(br_pc) in
    if fid < 0 then None
    else
      let { cfg; loops } = facts t fid in
      let bid = (Cfa.Cfg.block_at cfg br_pc).Cfa.Cfg.bid in
      Array.fold_left
        (fun found loop ->
          if loop.l.Cfa.Loops.header = bid then Some loop else found)
        None loops

(* ---- shared precondition: all in-loop accesses to the cell are direct --- *)

let access_may_touch_cell (a : Points_to.access) cell =
  (not a.Points_to.complete)
  || List.exists
       (Points_to.may_overlap (Points_to.Global { base = cell; len = 1 }))
       a.Points_to.regions

(* Every in-loop access to [cell] must be a direct [LoadGlobal]/
   [StoreGlobal] of the loop's own function: those are the instructions
   a source-level transform rewrites. Returns [Error] naming the first
   offender. *)
let check_direct_only t (loop : loop) ~cell =
  if t.pts.Points_to.degraded then Error "points-to analysis degraded"
  else begin
    let bad = ref None in
    let fail pc fmt =
      Printf.ksprintf
        (fun m -> if !bad = None then bad := Some (Printf.sprintf "pc %d: %s" pc m))
        fmt
    in
    Array.iteri
      (fun bid m ->
        if m then begin
          let b = loop.cfg.Cfa.Cfg.blocks.(bid) in
          for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
            match t.prog.Vm.Program.code.(pc) with
            | Vm.Instr.Call g ->
                if Modref.touches_cell t.modref g ~addr:cell then
                  fail pc "callee %s may touch the cell"
                    t.prog.Vm.Program.funcs.(g).Vm.Program.name
            | Vm.Instr.LoadIndex | Vm.Instr.StoreIndex -> (
                match Points_to.access t.pts pc with
                | Some a when access_may_touch_cell a cell ->
                    fail pc "indexed access may alias the cell"
                | _ -> ())
            | _ -> ()
          done
        end)
      loop.member;
    match !bad with Some m -> Error m | None -> Ok ()
  end

(* ---- privatization: must-written-before-read, every iteration ---------- *)

let transfer_block t (loop : loop) ~cell bid entry =
  let b = loop.cfg.Cfa.Cfg.blocks.(bid) in
  let w = ref entry in
  for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
    match t.prog.Vm.Program.code.(pc) with
    | Vm.Instr.StoreGlobal a when a = cell -> w := true
    | _ -> ()
  done;
  !w

let prove_privatizable_uncached t (loop : loop) ~cell =
  match check_direct_only t loop ~cell with
  | Error _ as e -> e
  | Ok () ->
      let nblocks = Array.length loop.cfg.Cfa.Cfg.blocks in
      let header = loop.l.Cfa.Loops.header in
      (* Must-analysis: [entry_written.(bid)] = on every intra-iteration
         path from the header to the entry of [bid], the cell has been
         stored. Top = [true]; the header is pinned [false] (an
         iteration starts with nothing written); meet is AND, so only
         [false] propagates and the fixpoint terminates. *)
      let entry_written = Array.make nblocks true in
      entry_written.(header) <- false;
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun bid m ->
            if m then begin
              let exit = transfer_block t loop ~cell bid entry_written.(bid) in
              List.iter
                (fun s ->
                  if
                    s <> header && loop.member.(s) && entry_written.(s)
                    && not exit
                  then begin
                    entry_written.(s) <- false;
                    changed := true
                  end)
                loop.cfg.Cfa.Cfg.blocks.(bid).Cfa.Cfg.succs
            end)
          loop.member
      done;
      let result = ref (Ok ()) in
      let fail pc fmt =
        Printf.ksprintf
          (fun m ->
            if !result = Ok () then
              result := Error (Printf.sprintf "pc %d: %s" pc m))
          fmt
      in
      (* Read check: a [LoadGlobal cell] at a point the write is not yet
         certain means some path reads the previous iteration's (or the
         pre-loop) value. *)
      Array.iteri
        (fun bid m ->
          if m then begin
            let b = loop.cfg.Cfa.Cfg.blocks.(bid) in
            let w = ref entry_written.(bid) in
            for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
              match t.prog.Vm.Program.code.(pc) with
              | Vm.Instr.LoadGlobal a when a = cell ->
                  if not !w then
                    fail pc "read may execute before the iteration's write"
              | Vm.Instr.StoreGlobal a when a = cell -> w := true
              | _ -> ()
            done
          end)
        loop.member;
      (* Back-edge check: the cell must be definitely overwritten by the
         time any iteration ends, or the value of a non-writing
         iteration would carry — and last-value copy-out would be
         ill-defined for WAW removal. *)
      List.iter
        (fun (u, _) ->
          if not (transfer_block t loop ~cell u entry_written.(u)) then
            fail
              loop.cfg.Cfa.Cfg.blocks.(u).Cfa.Cfg.last
              "an iteration may reach the back edge without writing")
        loop.l.Cfa.Loops.back_edges;
      !result

let prove_privatizable t (loop : loop) ~cell =
  let key = (loop.fid, loop.l.Cfa.Loops.header, cell) in
  match Hashtbl.find_opt t.priv_memo key with
  | Some r -> r
  | None ->
      let r = prove_privatizable_uncached t loop ~cell in
      Hashtbl.add t.priv_memo key r;
      r

(* ---- reduction: one commutative fold of the cell ------------------------ *)

let associative = function
  | Minic.Ast.Add | Minic.Ast.Mul | Minic.Ast.BitAnd | Minic.Ast.BitOr
  | Minic.Ast.BitXor ->
      true
  | _ -> false

(* Symbolic operand-stack value for the fold walk: the loaded
   accumulator, a fold of it under one operator, or anything else. *)
type sv = Acc | Fold of Minic.Ast.binop | Val

(* Walk the straight-line span from the accumulator load [r] up to (not
   including) the store [s], proving the stored value is
   [fold op old_value operands] for a single associative commutative
   [op] whose other operands never involve the accumulator. A pop from
   below the walk's own frame is a value computed before the load; it
   cannot contain the accumulator (the load at [r] is the loop's only
   read of the cell), so it is a plain [Val]. *)
let fold_walk (prog : Vm.Program.t) ~r ~s =
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> Val
  in
  let ok = ref true in
  let refute () = ok := false in
  let pc = ref r in
  while !ok && !pc < s do
    (match prog.code.(!pc) with
    | Vm.Instr.LoadGlobal _ when !pc = r -> push Acc
    | Vm.Instr.Const _ | Vm.Instr.LoadLocal _ | Vm.Instr.LoadGlobal _
    | Vm.Instr.MakeRefGlobal _ | Vm.Instr.MakeRefLocal _ ->
        push Val
    | Vm.Instr.StoreLocal _ | Vm.Instr.StoreGlobal _ | Vm.Instr.Pop
    | Vm.Instr.Print ->
        if pop () <> Val then refute ()
    | Vm.Instr.LoadIndex ->
        if pop () <> Val then refute ();
        if pop () <> Val then refute ();
        push Val
    | Vm.Instr.StoreIndex ->
        if pop () <> Val then refute ();
        if pop () <> Val then refute ();
        if pop () <> Val then refute ()
    | Vm.Instr.Unop _ ->
        if pop () <> Val then refute ();
        push Val
    | Vm.Instr.Binop op -> (
        let b = pop () in
        let a = pop () in
        match (a, b) with
        | Val, Val -> push Val
        | (Acc, Val | Val, Acc) when associative op -> push (Fold op)
        | (Fold op', Val | Val, Fold op') when op' = op -> push (Fold op)
        | _ -> refute ())
    | Vm.Instr.Dup2 -> (
        match !stack with
        | Val :: Val :: _ ->
            push Val;
            push Val
        | _ -> refute ())
    | Vm.Instr.Jmp _ | Vm.Instr.Br _ | Vm.Instr.Call _ | Vm.Instr.Ret
    | Vm.Instr.Halt ->
        (* excluded by the straight-line precondition *)
        refute ());
    incr pc
  done;
  if not !ok then None
  else match !stack with [ Fold op ] -> Some op | _ -> None

let prove_reduction_uncached t (loop : loop) ~cell =
  match check_direct_only t loop ~cell with
  | Error _ as e -> e
  | Ok () -> (
      let loads = ref [] and stores = ref [] in
      Array.iteri
        (fun bid m ->
          if m then begin
            let b = loop.cfg.Cfa.Cfg.blocks.(bid) in
            for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
              match t.prog.Vm.Program.code.(pc) with
              | Vm.Instr.LoadGlobal a when a = cell -> loads := pc :: !loads
              | Vm.Instr.StoreGlobal a when a = cell -> stores := pc :: !stores
              | _ -> ()
            done
          end)
        loop.member;
      match (!loads, !stores) with
      | [ r ], [ s ] when r < s ->
          (* The fold must be one uninterruptible expression: no control
             transfer inside the span, and no branch target entering it
             (compiled expressions are straight-line and entered only at
             their first instruction — this re-checks the property
             instead of assuming it). *)
          let straight = ref true in
          for pc = r + 1 to s - 1 do
            if Vm.Instr.is_control t.prog.Vm.Program.code.(pc) then
              straight := false
          done;
          Array.iteri
            (fun pc instr ->
              match instr with
              | Vm.Instr.Jmp tgt | Vm.Instr.Br { target = tgt; _ } ->
                  if tgt > r && tgt <= s then straight := false
              | _ -> ignore pc)
            t.prog.Vm.Program.code;
          if not !straight then
            Error "accumulator update is not one straight-line expression"
          else (
            match fold_walk t.prog ~r ~s with
            | Some op -> Ok op
            | None ->
                Error
                  "stored value is not a single associative commutative fold \
                   of the accumulator")
      | [], [ _ ] -> Error "cell is written but never read in the loop"
      | [ _ ], [] -> Error "cell is read but never written in the loop"
      | [], [] -> Error "cell is not accessed in the loop"
      | _ ->
          Error
            "cell has multiple in-loop reads or writes (not a single \
             accumulator update)")

let prove_reduction t (loop : loop) ~cell =
  let key = (loop.fid, loop.l.Cfa.Loops.header, cell) in
  match Hashtbl.find_opt t.red_memo key with
  | Some r -> r
  | None ->
      let r = prove_reduction_uncached t loop ~cell in
      Hashtbl.add t.red_memo key r;
      r

let direct_cells t (loop : loop) =
  let cells = ref [] in
  Array.iteri
    (fun bid m ->
      if m then begin
        let b = loop.cfg.Cfa.Cfg.blocks.(bid) in
        for pc = b.Cfa.Cfg.first to b.Cfa.Cfg.last do
          match t.prog.Vm.Program.code.(pc) with
          | Vm.Instr.LoadGlobal a | Vm.Instr.StoreGlobal a ->
              cells := a :: !cells
          | _ -> ()
        done
      end)
    loop.member;
  List.sort_uniq compare !cells

let cell_live_out t (loop : loop) ~cell =
  let live = ref false in
  Array.iteri
    (fun pc _ ->
      if (not !live) && not (in_loop loop pc) then
        match Points_to.access t.pts pc with
        | Some a when (not a.Points_to.is_write) && access_may_touch_cell a cell
          ->
            live := true
        | _ -> ())
    t.prog.Vm.Program.code;
  !live
