(** Per-loop transform proofs: may a global cell be privatized, or
    folded as a reduction, for one natural loop?

    Both proofs share a precondition: {e every} access to the cell from
    inside the loop must be a direct [LoadGlobal]/[StoreGlobal] of the
    loop's own function — the transforms rewrite exactly those
    instructions, so an indexed access that may alias the cell, or a
    callee that may touch it (per {!Modref}), refutes the proof.

    - {!prove_privatizable}: the cell is definitely written before any
      read on every intra-iteration path (a must-written forward
      dataflow over the loop's blocks, started empty at the header),
      and definitely written by the time every back edge is taken — so
      no value ever carries from one iteration to the next and
      last-value copy-out is well-defined. Conditional writes refute
      the back-edge check; reads in the loop predicate refute the
      header check.
    - {!prove_reduction}: the loop contains exactly one store and one
      read of the cell, in one straight-line span, and a symbolic walk
      of that span shows the stored value is the loaded value folded
      with loop-independent operands under a single associative,
      commutative operator ([+], [*], [&], [|], [^] — all exact on the
      VM's modular integers). Iterations then commute, so per-thread
      partials merged at the join preserve the final value; dependences
      of every kind on the cell may be dropped. *)

type t

type loop
(** One natural loop of one function (degenerate header-only loops are
    excluded — their body runs at most once per entry, so there is no
    iteration to carry a dependence). *)

val analyze : Vm.Program.t -> Points_to.t -> Modref.t -> t
(** Per-function CFG/dominance/loop tables are built lazily; proof
    results are memoized per (loop, cell). *)

val innermost_common_loop : t -> pc1:int -> pc2:int -> loop option
(** The innermost natural loop containing both pcs ([None] when they
    sit in different functions or share no loop). *)

val loop_at_header : t -> br_pc:int -> loop option
(** The natural loop whose header block contains the [BrLoop] predicate
    at [br_pc] — the pc a [CLoop] construct is keyed by. *)

val loop_span : loop -> int * int
(** Inclusive pc bounds over the loop's member blocks (the member set
    is contiguous for compiler-emitted loops; the span is exact for
    them and an over-approximation otherwise). *)

val in_loop : loop -> int -> bool
(** Block-precise membership of a pc of the loop's function. *)

val prove_privatizable : t -> loop -> cell:int -> (unit, string) result
(** [Error reason] explains the refutation (reports, lint, tests). *)

val prove_reduction : t -> loop -> cell:int -> (Minic.Ast.binop, string) result
(** [Ok op] is the proven fold operator. *)

val direct_cells : t -> loop -> int list
(** Global cells the loop body reads or writes via direct
    [LoadGlobal]/[StoreGlobal], sorted ascending — the transform
    candidates worth proving. *)

val cell_live_out : t -> loop -> cell:int -> bool
(** Some access outside the loop may read the cell, so a privatization
    must copy the last iteration's value out at the join. Never affects
    the verdict — {!prove_privatizable} guarantees the copy-out value
    is well-defined. *)
