(** Flow-insensitive may-point-to analysis for the VM IR.

    The only pointers Mini-C produces are array references, created at
    [MakeRefGlobal]/[MakeRefLocal] sites and passed around via the
    operand stack and frame slots (array parameters). This analysis
    computes, for every memory-event pc (the four instructions that fire
    [on_read]/[on_write] hooks in the profiler's default mode:
    [LoadGlobal]/[StoreGlobal]/[LoadIndex]/[StoreIndex]), the set of
    {!region}s the access can touch.

    Structure: a per-function abstract interpretation of the operand
    stack (each slot holds a set of reference-creation sites, solved
    with {!Dataflow} to a fixpoint over the CFG), threaded through a
    whole-program fixpoint over a frame-slot table — [Call] binds
    argument values into callee parameter slots, [StoreLocal] records
    defensively stored references — until no slot or escape flag
    changes.

    Soundness escape hatches, all monotone:
    - a reference stored into memory ([StoreGlobal]/[StoreIndex]) sets a
      global escape flag, after which every memory load may produce an
      untracked reference ([top]);
    - a function observed to return a reference marks its call sites as
      producing [top];
    - any inconsistent stack shape (possible only for hand-crafted
      bytecode — the compiler keeps depths consistent at joins) degrades
      the whole analysis: every event pc is reported incomplete. *)

type region =
  | Global of { base : int; len : int }  (** absolute address interval *)
  | Frame of { fid : int; off : int; len : int }
      (** offset interval within {e some} activation frame of [fid] *)

type access = {
  pc : int;
  fid : int;  (** function whose code contains [pc] *)
  is_write : bool;
  regions : region list;
      (** regions the access may touch (each access touches exactly one
          cell of one of them); exhaustive iff [complete] *)
  complete : bool;
      (** [false] when the address can come from an untracked reference
          — treat the access as potentially touching anything *)
  own_frame_direct : bool;
      (** [complete], and every region is a [Frame] of this very
          function reached without parameter indirection — i.e. the
          address provably lies in the {e current} activation's frame
          (recursion included: a ref received as a parameter flips this
          off even when the region fids coincide) *)
}

type t = {
  prog : Vm.Program.t;
  accesses : access option array;
      (** indexed by pc; [Some] exactly at memory-event pcs the solver
          proved reachable within their function ([None] elsewhere —
          including event pcs in unreachable code, which can never
          execute); in degraded mode every event pc is [Some] with
          [complete = false] *)
  degraded : bool;
}

val analyze : Vm.Program.t -> t
val access : t -> int -> access option

val is_event_pc : Vm.Program.t -> int -> bool
(** Does the instruction at [pc] fire a memory hook in the profiler's
    default ([trace_locals = false]) mode? *)

val may_overlap : region -> region -> bool
(** Address intervals can intersect. Distinct-fid frame regions never
    overlap: live frames are disjoint by bump allocation, and dead
    frames are invalidated wholesale ([on_frame_release] →
    [clear_range]), so no cross-frame shadow state survives. *)

val regions_may_alias : access -> access -> bool
(** Both complete and region-disjoint → [false]; anything else → [true]. *)

val pp_region : Format.formatter -> region -> unit
val region_to_string : region -> string
