(** Generic worklist dataflow solver over {!Cfa.Cfg}.

    A client supplies a join-semilattice of facts and a per-block
    transfer function; the solver iterates to the least fixpoint with a
    FIFO worklist. The same machinery runs forward problems (reaching
    definitions, the abstract-stack points-to interpretation) and
    backward ones (liveness-style analyses): [Backward] simply swaps the
    roles of predecessors and successors.

    Fact-flow convention: for every block [b],

    [input b = join (init b) (join over flow-predecessors p of output p)]

    [output b = transfer b (input b)]

    where "flow-predecessor" means CFG predecessor in [Forward] mode and
    CFG successor in [Backward] mode. [init] supplies the boundary fact
    (typically bottom everywhere except the entry/exit block). *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  type facts = {
    input : L.t array;  (** fixpoint fact at block entry (exit if backward) *)
    output : L.t array;  (** fact after the block's transfer function *)
  }
  (** Both arrays are indexed by block id. *)

  val solve :
    direction:direction ->
    cfg:Cfa.Cfg.t ->
    init:(Cfa.Cfg.block -> L.t) ->
    transfer:(Cfa.Cfg.block -> L.t -> L.t) ->
    facts
  (** Least fixpoint. [transfer] must be monotone and [join] must be a
      semilattice join, or the worklist may not terminate. *)
end
