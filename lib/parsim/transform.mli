(** Source-level transforms modelled at simulation time.

    The paper's §IV-B parallelizations required manual WAR/WAW-breaking
    edits (thread-local [BZFILE] copies, per-thread [ivec], private
    [errors] flags, hoisted [last_flags] resets). In the simulator those
    edits correspond to dropping anti-/output-dependence constraints on
    the privatized variables. *)

val privatize_globals : Vm.Program.t -> string list -> (int * int) list
(** Address ranges of the named globals (scalars and arrays).
    @raise Invalid_argument for an unknown name. *)

val all_globals : Vm.Program.t -> string list
(** Names of all globals — "privatize everything" upper-bound ablation. *)

val legality_ranges :
  Static.Legality.t -> head_pc:int -> (int * int) list * (int * int) list
(** [(privatizable, reductions)] address ranges the legality engine
    {e proves} removable for the loop headed at [head_pc] (a [CLoop]
    construct's head; empty for procedure heads) — the honest middle
    ground between no transforms and the hand-named lists above:
    simulated speedup drops only edges a static proof licenses
    dropping. *)
