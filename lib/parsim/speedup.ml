type report = {
  construct : string;
  head_pc : int;
  seq_instructions : int;
  par_instructions : int;
  speedup : float;
  tasks : int;
  constraints : int;
  cross_deps : int;
  dropped_privatized : int;
  stall_time : int;
  race_refusal : string option;
}

let analyze ?fuel ?trace_locals ?(cores = 4) ?spawn_overhead ?join_overhead
    ?(privatize = []) ?(reduce = []) ?legality ?race (prog : Vm.Program.t)
    ~head_pc =
  (* The race gate: a construct the static detector calls racy gets no
     dropped edges at all — not the legality engine's proven ranges, not
     the hand-named lists. Simulating a schedule that ignores ordering
     edges at a construct with a known interference witness would report
     a speedup no real spawn could safely realize. *)
  let race_refusal =
    match race with
    | None -> None
    | Some r -> (
        match Vm.Program.construct_at prog head_pc with
        | Some c
          when Static.Race.status r ~cid:c.Vm.Program.cid
               = Some Static.Race.Status.Racy ->
            Some
              (Printf.sprintf
                 "refusing to drop edges: the static race detector calls %s \
                  racy (%s)"
                 (Format.asprintf "%a" Vm.Program.pp_construct c)
                 (Static.Race.explain r ~cid:c.Vm.Program.cid))
        | _ -> None)
  in
  let proven_priv, proven_red =
    match legality with
    | None -> ([], [])
    | Some l -> Transform.legality_ranges l ~head_pc
  in
  let privatized, reductions =
    if race_refusal <> None then ([], [])
    else
      ( Transform.privatize_globals prog privatize @ proven_priv,
        Transform.privatize_globals prog reduce @ proven_red )
  in
  let g =
    Task_graph.collect ?fuel ?trace_locals ~privatized ~reductions prog ~head_pc
  in
  let config =
    {
      Scheduler.cores;
      spawn_overhead =
        Option.value ~default:Scheduler.default_config.Scheduler.spawn_overhead
          spawn_overhead;
      join_overhead =
        Option.value ~default:Scheduler.default_config.Scheduler.join_overhead
          join_overhead;
    }
  in
  let s = Scheduler.simulate ~config g in
  let construct =
    match Vm.Program.construct_at prog head_pc with
    | Some c -> Format.asprintf "%a" Vm.Program.pp_construct c
    | None -> Printf.sprintf "pc %d" head_pc
  in
  {
    construct;
    head_pc;
    seq_instructions = s.Scheduler.seq_time;
    par_instructions = s.Scheduler.par_time;
    speedup = s.Scheduler.speedup;
    tasks = s.Scheduler.tasks;
    constraints = List.length g.Task_graph.constraints;
    cross_deps = g.Task_graph.cross_deps;
    dropped_privatized = g.Task_graph.dropped_privatized;
    stall_time = s.Scheduler.stall_time;
    race_refusal;
  }

let loop_head_at_line (prog : Vm.Program.t) line =
  let found = ref None in
  Array.iter
    (fun (c : Vm.Program.construct_info) ->
      if
        c.kind = Vm.Program.CLoop
        && c.loc.Minic.Srcloc.line = line
        && !found = None
      then found := Some c.head_pc)
    prog.constructs;
  match !found with
  | Some pc -> pc
  | None -> invalid_arg (Printf.sprintf "Speedup.loop_head_at_line: %d" line)

let proc_head (prog : Vm.Program.t) name =
  match Vm.Program.find_func prog name with
  | Some f -> f.entry
  | None -> invalid_arg (Printf.sprintf "Speedup.proc_head: %s" name)

let pp_report ppf r =
  Format.fprintf ppf
    "%s: seq=%d par=%d speedup=%.2f tasks=%d constraints=%d (deps=%d, \
     privatized=%d, stalls=%d)"
    r.construct r.seq_instructions r.par_instructions r.speedup r.tasks
    r.constraints r.cross_deps r.dropped_privatized r.stall_time;
  Option.iter (fun d -> Format.fprintf ppf "\n  %s" d) r.race_refusal
