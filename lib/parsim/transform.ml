let privatize_globals (prog : Vm.Program.t) names =
  List.map
    (fun name ->
      match Vm.Program.find_global prog name with
      | Some (base, len) -> (base, len)
      | None ->
          invalid_arg (Printf.sprintf "Transform.privatize_globals: %s" name))
    names

let all_globals (prog : Vm.Program.t) =
  List.map (fun (n, _, _) -> n) prog.global_layout

let legality_ranges legality ~head_pc =
  Static.Legality.loop_transforms legality ~br_pc:head_pc
