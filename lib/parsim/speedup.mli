(** End-to-end parallelization what-if analysis (drives Table V).

    [analyze] runs the collection pass for one chosen construct, applies
    the requested privatizations, schedules on [cores] workers, and
    reports sequential vs simulated-parallel time. *)

type report = {
  construct : string;  (** display name of the parallelized construct *)
  head_pc : int;
  seq_instructions : int;
  par_instructions : int;
  speedup : float;
  tasks : int;
  constraints : int;  (** folded scheduling constraints *)
  cross_deps : int;  (** dynamic dependences that crossed instances *)
  dropped_privatized : int;
  stall_time : int;
  race_refusal : string option;
      (** [Some diagnostic] when a [~race] detector was supplied and it
          calls the construct racy — the simulation then dropped {e no}
          edges (neither proven-legal ranges nor hand-named lists), so
          the reported speedup is what the ordering constraints allow *)
}

val analyze :
  ?fuel:int ->
  ?trace_locals:bool ->
  ?cores:int ->
  ?spawn_overhead:int ->
  ?join_overhead:int ->
  ?privatize:string list ->
  ?reduce:string list ->
  ?legality:Static.Legality.t ->
  ?race:Static.Race.t ->
  Vm.Program.t ->
  head_pc:int ->
  report
(** [privatize] names globals given thread-local copies (drops WAR/WAW);
    [reduce] names associative accumulators rewritten as per-thread
    partials (drops all dependence kinds on them). [legality] adds the
    ranges the transform-legality engine {e proves} removable for the
    loop at [head_pc] ({!Transform.legality_ranges}) — with no
    hand-named lists, the simulation then drops exactly the
    proven-removable edges and nothing else. [race] gates every drop on
    the static race detector: when it calls the construct at [head_pc]
    racy, no edges are dropped and [report.race_refusal] carries the
    diagnostic. *)

val loop_head_at_line : Vm.Program.t -> int -> int
(** pc of the loop construct headed at a source line.
    @raise Invalid_argument if there is none. *)

val proc_head : Vm.Program.t -> string -> int
(** pc of a procedure construct. @raise Invalid_argument if unknown. *)

val pp_report : Format.formatter -> report -> unit
