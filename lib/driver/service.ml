(* The profile-registry service: the control-plane logic shared by
   [alchemist serve] and [alchemist profile-all].

   One control thread (the caller) parses requests, consults the
   content-addressed cache, and submits misses to the work-stealing
   scheduler; worker domains only ever run the profiler. Replies keep
   submission order: a FIFO of slots is harvested from the front, each
   slot either already resolved (parse error, cache hit) or waiting on
   a scheduler promise. Harvesting is where the cache insert and the
   optional [save=] write happen — exactly once per reply, on the
   control thread, so the cache needs no locking.

   Incremental re-profiling: static facts (CFA + dependence analysis +
   prune mask) depend only on the code, so they are memoized per code
   fingerprint and shared — immutable — across worker domains. A
   request whose input data changed misses the profile cache but
   reuses the facts, skipping the static pipeline. *)

type outcome = Hit | Disk_hit | Computed

type reply = {
  seq : int;
  spec : string;
  result : (outcome * string * string, string) result;
      (* Ok (outcome, key, profile bytes) | Error message *)
  save : string option;
}

type slot =
  | Resolved of reply
  | Running of {
      seq : int;
      spec : string;
      key : string;
      save : string option;
      promise : string Scheduler.promise;
    }

type t = {
  sched : Scheduler.t;
  cache : Cache.t;
  facts : (string, Alchemist.Profiler.facts) Hashtbl.t;
  slots : slot Queue.t;
  mutable seq : int;
  obs : Obs.Registry.t;
  requests_c : Obs.Counter.t;
  errors_c : Obs.Counter.t;
  facts_computed_c : Obs.Counter.t;
  facts_reused_c : Obs.Counter.t;
}

let create ?workers ?cache () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let obs = Obs.Registry.create () in
  {
    sched = Scheduler.create ?workers ();
    cache;
    facts = Hashtbl.create 16;
    slots = Queue.create ();
    seq = 0;
    obs;
    requests_c = Obs.Registry.counter obs "service.requests";
    errors_c = Obs.Registry.counter obs "service.errors";
    facts_computed_c = Obs.Registry.counter obs "service.facts_computed";
    facts_reused_c = Obs.Registry.counter obs "service.facts_reused";
  }

let cache t = t.cache
let scheduler t = t.sched

let facts_for t prog code_fp =
  match Hashtbl.find_opt t.facts code_fp with
  | Some f ->
      Obs.Counter.incr t.facts_reused_c;
      f
  | None ->
      let f = Alchemist.Profiler.prepare_facts prog in
      Obs.Counter.incr t.facts_computed_c;
      Hashtbl.add t.facts code_fp f;
      f

(* --- submission ----------------------------------------------------------- *)

let submit t ?fuel ?(engine = Vm.Machine.Threaded) ?ring ?regalloc
    ?(trace_locals = false) ?static_prune ?pool_capacity ?scan_limit ?save
    ~spec prog =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  Obs.Counter.incr t.requests_c;
  let code_fp = Alchemist.Profile_io.fingerprint prog in
  let input_fp = Alchemist.Profile_io.input_fingerprint prog in
  let key =
    Cache.key ~code_fp ~input_fp ?fuel ~trace_locals ?pool_capacity ?scan_limit
      ()
  in
  match Cache.find_located t.cache key with
  | Some (bytes, where) ->
      let outcome = match where with `Memory -> Hit | `Disk -> Disk_hit in
      Queue.push
        (Resolved { seq; spec; result = Ok (outcome, key, bytes); save })
        t.slots
  | None ->
      (* Facts reuse only applies when the static layer runs at all. *)
      let facts = if trace_locals then None else Some (facts_for t prog code_fp) in
      let promise =
        Scheduler.submit t.sched (fun () ->
            let r =
              Alchemist.Profiler.run ~engine ?ring ?regalloc ?fuel ?facts
                ~trace_locals ?static_prune ?pool_capacity ?scan_limit prog
            in
            Alchemist.Profile_io.to_string r.Alchemist.Profiler.profile)
      in
      Queue.push (Running { seq; spec; key; save; promise }) t.slots

(* --- request lines -------------------------------------------------------- *)

(* Grammar (one request per line):
     <spec> [fuel=N] [engine=switch|threaded|register] [ring=B] [regalloc=B]
            [trace_locals=B] [prune=B] [pool_capacity=N] [scan_limit=N]
            [save=PATH]
   where <spec> is workload:NAME[:SCALE] or a Mini-C file path, and B is
   0/1/true/false. Blank lines and #-comments are skipped; the bare word
   "drain" is a control line handled by the caller. *)

exception Bad_request of string

let parse_bool k = function
  | "1" | "true" -> true
  | "0" | "false" -> false
  | v -> raise (Bad_request (Printf.sprintf "%s: bad boolean %S" k v))

let parse_int k v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> raise (Bad_request (Printf.sprintf "%s: bad integer %S" k v))

let compile_spec spec =
  match String.split_on_char ':' spec with
  | [ "workload"; name ] ->
      let w = Workloads.Registry.find name in
      Workloads.Workload.compile w ~scale:w.Workloads.Workload.default_scale
  | [ "workload"; name; scale ] ->
      let w = Workloads.Registry.find name in
      Workloads.Workload.compile w ~scale:(parse_int "scale" scale)
  | _ ->
      let ic = open_in_bin spec in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Vm.Compile.compile (Minic.Frontend.load src)

let feed t line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then `Skip
  else if line = "drain" then `Drain
  else begin
    let spec, opts =
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [] -> assert false
      | spec :: opts -> (spec, opts)
    in
    match
      let fuel = ref None
      and engine = ref Vm.Machine.Threaded
      and ring = ref None
      and regalloc = ref None
      and trace_locals = ref false
      and static_prune = ref None
      and pool_capacity = ref None
      and scan_limit = ref None
      and save = ref None in
      List.iter
        (fun opt ->
          match String.index_opt opt '=' with
          | None -> raise (Bad_request (Printf.sprintf "bad option %S" opt))
          | Some i -> (
              let k = String.sub opt 0 i
              and v = String.sub opt (i + 1) (String.length opt - i - 1) in
              match k with
              | "fuel" -> fuel := Some (parse_int k v)
              | "engine" -> (
                  match v with
                  | "switch" -> engine := Vm.Machine.Switch
                  | "threaded" -> engine := Vm.Machine.Threaded
                  | "register" -> engine := Vm.Machine.Register
                  | _ ->
                      raise
                        (Bad_request (Printf.sprintf "engine: unknown %S" v)))
              | "ring" -> ring := Some (parse_bool k v)
              | "regalloc" -> regalloc := Some (parse_bool k v)
              | "trace_locals" -> trace_locals := parse_bool k v
              | "prune" -> static_prune := Some (parse_bool k v)
              | "pool_capacity" -> pool_capacity := Some (parse_int k v)
              | "scan_limit" -> scan_limit := Some (parse_int k v)
              | "save" -> save := Some v
              | _ -> raise (Bad_request (Printf.sprintf "unknown option %S" k))))
        opts;
      let prog = compile_spec spec in
      (prog, !fuel, !engine, !ring, !regalloc, !trace_locals, !static_prune,
       !pool_capacity, !scan_limit, !save)
    with
    | prog, fuel, engine, ring, regalloc, trace_locals, static_prune,
      pool_capacity, scan_limit, save ->
        submit t ?fuel ~engine ?ring ?regalloc ~trace_locals ?static_prune
          ?pool_capacity ?scan_limit ?save ~spec prog;
        `Queued
    | exception e ->
        let msg =
          match e with
          | Bad_request m -> m
          | Not_found -> "unknown workload (try: alchemist workloads)"
          | Minic.Diag.Error (m, loc) ->
              Printf.sprintf "at %s: %s" (Minic.Srcloc.to_string loc) m
          | Sys_error m -> m
          | e -> Printexc.to_string e
        in
        t.seq <- t.seq + 1;
        Obs.Counter.incr t.requests_c;
        Queue.push
          (Resolved { seq = t.seq; spec; result = Error msg; save = None })
          t.slots;
        `Queued
  end

(* --- harvesting ----------------------------------------------------------- *)

let finalize t (reply : reply) =
  (match reply.result with
  | Ok (Computed, key, bytes) -> Cache.add t.cache key bytes
  | Ok _ | Error _ -> ());
  (match (reply.save, reply.result) with
  | Some path, Ok (_, _, bytes) ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc bytes)
  | _ -> ());
  (match reply.result with
  | Error _ -> Obs.Counter.incr t.errors_c
  | Ok _ -> ());
  reply

let resolve t = function
  | Resolved r -> finalize t r
  | Running { seq; spec; key; save; promise } ->
      let result =
        match Scheduler.await_result promise with
        | Ok bytes -> Ok (Computed, key, bytes)
        | Error (e, _) ->
            Error
              (match e with
              | Vm.Machine.Trap (msg, pc) ->
                  Printf.sprintf "runtime trap at pc %d: %s" pc msg
              | e -> Printexc.to_string e)
      in
      finalize t { seq; spec; result; save }

let slot_done = function
  | Resolved _ -> true
  | Running { promise; _ } -> Scheduler.poll promise

let ready t =
  let acc = ref [] in
  while (not (Queue.is_empty t.slots)) && slot_done (Queue.peek t.slots) do
    acc := resolve t (Queue.pop t.slots) :: !acc
  done;
  List.rev !acc

let drain t =
  Scheduler.drain t.sched;
  let acc = ref [] in
  while not (Queue.is_empty t.slots) do
    acc := resolve t (Queue.pop t.slots) :: !acc
  done;
  List.rev !acc

let shutdown t = Scheduler.shutdown t.sched

(* --- rendering ------------------------------------------------------------ *)

let outcome_name = function
  | Hit -> "hit"
  | Disk_hit -> "disk-hit"
  | Computed -> "miss"

let render_reply (r : reply) =
  match r.result with
  | Ok (outcome, key, bytes) ->
      Printf.sprintf "ok %d %s key=%s %s bytes=%d%s" r.seq r.spec key
        (outcome_name outcome) (String.length bytes)
        (match r.save with Some p -> " saved=" ^ p | None -> "")
  | Error msg -> Printf.sprintf "error %d %s: %s" r.seq r.spec msg

let telemetry t =
  Obs.merge_all
    [
      Obs.Registry.snapshot t.obs;
      Scheduler.telemetry t.sched;
      Cache.telemetry t.cache;
    ]
