(* Content-addressed profile cache.

   The key hashes exactly the run components that determine the
   canonical profile bytes: the program's code fingerprint, its input
   fingerprint (initialized global data), and the options that change
   what the profiler observes — fuel (execution length), trace_locals
   (which memory events exist and whether the static layer runs), and
   the pool capacity / scan limit (node recycling changes the
   time-window check, hence edge attribution). The execution engine,
   event ring, register allocation and static pruning are deliberately
   NOT in the key: the repo's differential tests and [alchemist check]
   enforce that they never change profile bytes, so runs that differ
   only in those knobs share a cache line — that is the point of
   content addressing over an engine-tagged key.

   Not thread-safe: the cache belongs to the service's control thread,
   which looks up before submitting a job and inserts when it harvests
   the result. Worker domains never touch it. *)

type entry = { bytes : string; mutable tick : int }

type t = {
  table : (string, entry) Hashtbl.t;
  capacity : int;
  dir : string option;
  mutable clock : int;
  obs : Obs.Registry.t;
  hits : Obs.Counter.t;
  disk_hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  insertions : Obs.Counter.t;
  evictions : Obs.Counter.t;
  entries : Obs.Gauge.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) ?dir () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  let obs = Obs.Registry.create () in
  {
    table = Hashtbl.create 64;
    capacity;
    dir;
    clock = 0;
    obs;
    hits = Obs.Registry.counter obs "cache.hits";
    disk_hits = Obs.Registry.counter obs "cache.disk_hits";
    misses = Obs.Registry.counter obs "cache.misses";
    insertions = Obs.Registry.counter obs "cache.insertions";
    evictions = Obs.Registry.counter obs "cache.evictions";
    entries = Obs.Registry.gauge obs "cache.entries";
  }

let key ~code_fp ~input_fp ?fuel ?(trace_locals = false) ?pool_capacity
    ?scan_limit () =
  let opt = function None -> "none" | Some n -> string_of_int n in
  Alchemist.Profile_io.hash_string
    (Printf.sprintf
       "alchemist-cache-key 1\ncode %s\ninput %s\nfuel %s\ntrace_locals %b\n\
        pool_capacity %s\nscan_limit %s\n"
       code_fp input_fp (opt fuel) trace_locals (opt pool_capacity)
       (opt scan_limit))

(* --- disk store ----------------------------------------------------------- *)

let disk_path dir k = Filename.concat dir (k ^ ".prof")

let disk_read dir k =
  let path = disk_path dir k in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

let disk_write dir k bytes =
  (* Write-then-rename so a concurrent reader (another alchemist
     process sharing the store) never sees a torn file. *)
  let path = disk_path dir k in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes);
  Sys.rename tmp path

(* --- lookup / insertion --------------------------------------------------- *)

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let insert t k bytes =
  (match Hashtbl.find_opt t.table k with
  | Some e ->
      e.tick <- t.clock (* refresh; bytes are content-addressed, equal *)
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        (* Evict the least-recently-used entry. O(capacity), but
           eviction is rare and capacity is small; an intrusive list
           is not worth the code. *)
        let victim = ref None in
        Hashtbl.iter
          (fun k' e' ->
            match !victim with
            | Some (_, tick) when e'.tick >= tick -> ()
            | _ -> victim := Some (k', e'.tick))
          t.table;
        match !victim with
        | Some (k', _) ->
            Hashtbl.remove t.table k';
            Obs.Counter.incr t.evictions
        | None -> ()
      end;
      let e = { bytes; tick = 0 } in
      touch t e;
      Hashtbl.add t.table k e;
      Obs.Counter.incr t.insertions;
      Obs.Gauge.set t.entries (Hashtbl.length t.table))

let find_located t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      touch t e;
      Obs.Counter.incr t.hits;
      Some (e.bytes, `Memory)
  | None -> (
      match Option.bind t.dir (fun d -> disk_read d k) with
      | Some bytes ->
          Obs.Counter.incr t.disk_hits;
          insert t k bytes;
          Some (bytes, `Disk)
      | None ->
          Obs.Counter.incr t.misses;
          None)

let find t k = Option.map fst (find_located t k)

let add t k bytes =
  insert t k bytes;
  match t.dir with
  | Some d ->
      if not (Sys.file_exists (disk_path d k)) then disk_write d k bytes
  | None -> ()

let mem t k =
  Hashtbl.mem t.table k
  || match t.dir with Some d -> Sys.file_exists (disk_path d k) | None -> false

let length t = Hashtbl.length t.table
let telemetry t = Obs.Registry.snapshot t.obs
