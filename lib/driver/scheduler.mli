(** A persistent work-stealing job scheduler over OCaml 5 domains.

    Where {!Parallel.map} is one-shot (spawn domains, deal one array,
    join), this is a service: a fixed pool of worker domains accepts
    jobs continuously through {!submit} — including while earlier jobs
    are still running — and hands each caller a {!promise} for its
    result. [alchemist serve] and the sharded drivers are clients.

    Topology: one global injector queue for submissions plus a deque
    per worker. A worker runs jobs LIFO off its own deque; when empty
    it steals the top {e half} of a sibling's deque, then falls back to
    grabbing up to half of the injector in one batch. Batched handoff
    fans a submission burst across the pool in O(log n) transfers, and
    stealing keeps uneven job costs balanced without a central cursor.

    Telemetry ({!telemetry}): per-worker [sched.jobs], [sched.steals],
    [sched.steal_batches], [sched.injected] counters and a
    [sched.job_latency_ns] submit-to-completion histogram (percentiles
    via {!Obs.dist_percentile_upper}), merged with the shared
    [sched.submitted] counter and [sched.queue_depth] /
    [sched.workers] gauges. Worker instruments live on their own
    domains, so snapshots are exact at quiescent points (after
    {!drain}) and approximate — never torn — mid-flight. *)

type t

type 'a promise
(** The eventual result of a submitted job. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val create : ?workers:int -> unit -> t
(** Spawns the worker domains (default {!default_workers}), idle until
    jobs arrive. *)

val workers : t -> int

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueues a job; returns immediately. Jobs may be submitted from any
    domain, at any time before {!shutdown}, including while the pool is
    busy. An exception raised by the job is captured (with its
    backtrace) and re-raised by {!await}.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a promise -> 'a
(** Blocks until the job completes; re-raises its exception with the
    original backtrace if it failed. *)

val await_result : 'a promise -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await} but never raises for a failed job. *)

val poll : 'a promise -> bool
(** [true] once the job has completed (successfully or not) — a
    non-blocking check, used by [serve] to stream leading results while
    later jobs are still running. *)

val drain : t -> unit
(** Blocks until every job submitted so far has completed. The pool
    stays alive; more jobs may be submitted afterwards. *)

val shutdown : t -> unit
(** Stops accepting jobs, lets already-queued jobs finish, and joins
    the worker domains. Idempotent. *)

val telemetry : t -> Obs.snapshot
(** Merged scheduler metrics (see above). Take it at a quiescent point
    (typically right after {!drain}) for exact counts. *)
