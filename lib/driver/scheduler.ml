(* A persistent work-stealing job scheduler over OCaml 5 domains.


   Topology: one global injector queue (submissions from outside the
   pool) plus one deque per worker domain. A worker runs jobs off the
   bottom of its own deque; when empty it steals the top half of a
   sibling's deque, and only then falls back to grabbing a batch from
   the injector. Stealing from the top takes the oldest (hence, under
   LIFO execution, typically largest) runs of work; batching both the
   steal and the injector grab amortizes the handoff, so one submission
   burst fans out across the pool in O(log n) transfers instead of n.

   Sleeping without Condition.timedwait (which the stdlib does not
   have) requires that every transition from "no work anywhere" to
   "work somewhere" signal under the same mutex the sleepers check
   under. All queue/deque occupancy accounting therefore lives in a
   single [available] count guarded by the global mutex: pushes
   increment it and signal; claims decrement it. A worker sleeps only
   on the predicate [available = 0 && not stop] under that mutex, so a
   wakeup can never be lost. The per-deque mutexes guard only the deque
   contents; the window where a deque holds a job whose [available]
   increment has not landed yet merely causes a spurious wakeup-and-
   retry, never a missed one. Jobs are coarse (whole profiling runs),
   so the few extra mutex transitions per job are noise. *)

type job = { run : unit -> unit; born_ns : int }

module Deque = struct
  (* A growable ring buffer, each instance guarded by its own mutex.
     Owner pushes and pops at the bottom (LIFO); thieves take from the
     top (FIFO end). *)
  type t = {
    mutable buf : job option array;
    mutable top : int;  (* index of the oldest element *)
    mutable len : int;
    lock : Mutex.t;
  }

  let create () =
    { buf = Array.make 64 None; top = 0; len = 0; lock = Mutex.create () }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.top + i) mod n)
    done;
    d.buf <- buf;
    d.top <- 0

  (* All three take [d.lock] themselves; callers never hold it. *)
  let push_bottom d j =
    Mutex.lock d.lock;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.top + d.len) mod Array.length d.buf) <- Some j;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  let pop_bottom d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let i = (d.top + d.len - 1) mod Array.length d.buf in
        let j = d.buf.(i) in
        d.buf.(i) <- None;
        d.len <- d.len - 1;
        j
      end
    in
    Mutex.unlock d.lock;
    r

  (* Take ceil(len/2) elements from the top, oldest first. *)
  let steal_top_half d =
    Mutex.lock d.lock;
    let k = (d.len + 1) / 2 in
    let taken =
      List.init k (fun _ ->
          let j = d.buf.(d.top) in
          d.buf.(d.top) <- None;
          d.top <- (d.top + 1) mod Array.length d.buf;
          d.len <- d.len - 1;
          Option.get j)
    in
    Mutex.unlock d.lock;
    taken
end

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  mutable state : 'a state;
  pm : Mutex.t;
  pc : Condition.t;
}

type worker_stats = {
  w_obs : Obs.Registry.t;
  w_jobs : Obs.Counter.t;
  w_steals : Obs.Counter.t;
  w_steal_batches : Obs.Counter.t;
  w_injected : Obs.Counter.t;
  w_latency : Obs.Histogram.t;  (* submit-to-completion, nanoseconds *)
}

type t = {
  nworkers : int;
  injector : job Queue.t;
  deques : Deque.t array;
  m : Mutex.t;  (* guards injector, available, pending, stop, shared_obs *)
  work_cv : Condition.t;  (* available > 0 or stop *)
  idle_cv : Condition.t;  (* pending = 0 *)
  mutable available : int;  (* jobs queued anywhere, not yet claimed *)
  mutable pending : int;  (* jobs submitted, not yet completed *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  stats : worker_stats array;
  shared_obs : Obs.Registry.t;  (* updated only under [m] *)
  submitted_c : Obs.Counter.t;
  depth_g : Obs.Gauge.t;
}

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* --- worker loop --------------------------------------------------------- *)

let worker_loop t ix =
  let st = t.stats.(ix) in
  let own = t.deques.(ix) in
  (* Claim accounting: any job moved out of a queue/deque into execution
     decrements [available] under [m]. *)
  let claimed k =
    Mutex.lock t.m;
    t.available <- t.available - k;
    Obs.Gauge.set t.depth_g t.available;
    Mutex.unlock t.m
  in
  let offered k =
    Mutex.lock t.m;
    t.available <- t.available + k;
    Obs.Gauge.set t.depth_g t.available;
    if k > 1 then Condition.broadcast t.work_cv
    else Condition.signal t.work_cv;
    Mutex.unlock t.m
  in
  let finished () =
    Mutex.lock t.m;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.idle_cv;
    Mutex.unlock t.m
  in
  let execute j =
    Obs.Counter.incr st.w_jobs;
    j.run ();
    (* submit-to-completion latency: queueing + execution, which is
       what a serve client experiences *)
    Obs.Histogram.observe st.w_latency (Obs.now_ns () - j.born_ns);
    finished ()
  in
  (* Keep the first stolen/grabbed job for ourselves, park the rest in
     our own deque (so siblings can steal them back), and re-advertise
     the parked count. *)
  let adopt = function
    | [] -> None
    | j :: rest ->
        List.iter (Deque.push_bottom own) rest;
        let parked = List.length rest in
        if parked > 0 then offered parked;
        Some j
  in
  let try_steal () =
    let found = ref None in
    let v = ref ((ix + 1) mod t.nworkers) in
    while Option.is_none !found && !v <> ix do
      (match Deque.steal_top_half t.deques.(!v) with
      | [] -> ()
      | jobs ->
          claimed (List.length jobs);
          Obs.Counter.incr st.w_steal_batches;
          Obs.Counter.add st.w_steals (List.length jobs);
          found := adopt jobs);
      v := (!v + 1) mod t.nworkers
    done;
    !found
  in
  (* Grab up to half the injector (at least one job): the first waker
     takes a big bite and the rest of the pool steals it back — the
     fan-out that makes the steal path the common path. *)
  let try_inject () =
    Mutex.lock t.m;
    let n = Queue.length t.injector in
    let r =
      if n = 0 then None
      else begin
        let k = max 1 ((n + 1) / 2) in
        let jobs = List.init k (fun _ -> Queue.pop t.injector) in
        t.available <- t.available - k;
        Obs.Gauge.set t.depth_g t.available;
        Obs.Counter.add st.w_injected k;
        Some jobs
      end
    in
    Mutex.unlock t.m;
    Option.bind r adopt
  in
  let rec next_job () =
    match Deque.pop_bottom own with
    | Some j ->
        claimed 1;
        Some j
    | None -> (
        match try_steal () with
        | Some j -> Some j
        | None -> (
            match try_inject () with
            | Some j -> Some j
            | None ->
                (* Sleep until work appears or we are told to stop. *)
                Mutex.lock t.m;
                while t.available = 0 && not t.stop do
                  Condition.wait t.work_cv t.m
                done;
                let stopping = t.stop && t.available = 0 in
                Mutex.unlock t.m;
                if stopping then None else next_job ()))
  in
  let rec loop () =
    match next_job () with
    | Some j ->
        execute j;
        loop ()
    | None -> ()
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let create ?(workers = default_workers ()) () =
  let nworkers = max 1 workers in
  let stats =
    Array.init nworkers (fun _ ->
        let w_obs = Obs.Registry.create () in
        {
          w_obs;
          w_jobs = Obs.Registry.counter w_obs "sched.jobs";
          w_steals = Obs.Registry.counter w_obs "sched.steals";
          w_steal_batches = Obs.Registry.counter w_obs "sched.steal_batches";
          w_injected = Obs.Registry.counter w_obs "sched.injected";
          w_latency = Obs.Registry.histogram w_obs "sched.job_latency_ns";
        })
  in
  let shared_obs = Obs.Registry.create () in
  let submitted_c = Obs.Registry.counter shared_obs "sched.submitted" in
  let depth_g = Obs.Registry.gauge shared_obs "sched.queue_depth" in
  let workers_g = Obs.Registry.gauge shared_obs "sched.workers" in
  Obs.Gauge.set workers_g nworkers;
  let t =
    {
      nworkers;
      injector = Queue.create ();
      deques = Array.init nworkers (fun _ -> Deque.create ());
      m = Mutex.create ();
      work_cv = Condition.create ();
      idle_cv = Condition.create ();
      available = 0;
      pending = 0;
      stop = false;
      domains = [||];
      stats;
      shared_obs;
      submitted_c;
      depth_g;
    }
  in
  t.domains <-
    Array.init nworkers (fun ix -> Domain.spawn (fun () -> worker_loop t ix));
  t

let workers t = t.nworkers

let fulfill p v =
  Mutex.lock p.pm;
  p.state <- v;
  Condition.broadcast p.pc;
  Mutex.unlock p.pm

let submit t f =
  let p = { state = Pending; pm = Mutex.create (); pc = Condition.create () } in
  let run () =
    match f () with
    | v -> fulfill p (Done v)
    | exception e -> fulfill p (Failed (e, Printexc.get_raw_backtrace ()))
  in
  let job = { run; born_ns = Obs.now_ns () } in
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Scheduler.submit: scheduler is shut down"
  end;
  Queue.push job t.injector;
  t.available <- t.available + 1;
  t.pending <- t.pending + 1;
  Obs.Counter.incr t.submitted_c;
  Obs.Gauge.set t.depth_g t.available;
  Condition.signal t.work_cv;
  Mutex.unlock t.m;
  p

let is_pending p = match p.state with Pending -> true | _ -> false

let await_result p =
  Mutex.lock p.pm;
  while is_pending p do
    Condition.wait p.pc p.pm
  done;
  let s = p.state in
  Mutex.unlock p.pm;
  match s with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let await p =
  match await_result p with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let poll p =
  Mutex.lock p.pm;
  let done_ = not (is_pending p) in
  Mutex.unlock p.pm;
  done_

let drain t =
  Mutex.lock t.m;
  while t.pending > 0 do
    Condition.wait t.idle_cv t.m
  done;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  if not already then Array.iter Domain.join t.domains

let telemetry t =
  (* Meaningful at quiescent points (after [drain]): worker instruments
     are plain int cells owned by their domains, so a mid-flight
     snapshot is approximate, never torn. *)
  Mutex.lock t.m;
  let shared = Obs.Registry.snapshot t.shared_obs in
  Mutex.unlock t.m;
  Obs.merge_all
    (shared :: Array.to_list (Array.map (fun s -> Obs.Registry.snapshot s.w_obs) t.stats))
