let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let map ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then Array.map f xs
    else begin
      let results = Array.make n None in
      let errors = Array.make n None in
      let next = Atomic.make 0 in
      (* First error cancels the run: workers re-check the flag before
         claiming the next index, so a poisoned item stops the remaining
         work instead of draining the whole queue. *)
      let cancelled = Atomic.make false in
      (* Work-dealing: domains pull the next unclaimed index, so a few
         expensive items do not serialize behind a static partition. *)
      let rec worker () =
        if not (Atomic.get cancelled) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f xs.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                errors.(i) <- Some (e, bt);
                Atomic.set cancelled true);
            worker ()
          end
        end
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors;
      Array.map (function Some v -> v | None -> assert false) results
    end

let merge_profiles = function
  | [] -> invalid_arg "Parallel.merge_profiles: empty list"
  | p :: ps -> List.fold_left Alchemist.Profile.merge p ps

(* Each shard gets its own registry (no cross-domain contention) with a
   [driver.shard_wall] timer wrapped around the profiled execution; the
   caller can merge shard snapshots with [Obs.merge_all]. *)
let timed_run ?engine ?ring ?fuel ?trace_locals ?static_prune prog =
  let obs = Obs.Registry.create () in
  let shard_wall = Obs.Registry.timer obs "driver.shard_wall" in
  Obs.Timer.start shard_wall;
  let r =
    Alchemist.Profiler.run ?engine ?ring ?fuel ?trace_locals ?static_prune ~obs
      prog
  in
  Obs.Timer.stop shard_wall;
  r

let profile_programs ?(jobs = default_jobs ()) ?engine ?ring ?fuel
    ?trace_locals ?static_prune ?obs = function
  | [] -> invalid_arg "Parallel.profile_programs: empty list"
  | progs ->
      let results =
        map ~jobs
          (fun prog ->
            (timed_run ?engine ?ring ?fuel ?trace_locals ?static_prune prog)
              .Alchemist.Profiler.profile)
          (Array.of_list progs)
      in
      let merge () = merge_profiles (Array.to_list results) in
      (match obs with
      | None -> merge ()
      | Some reg ->
          let mt = Obs.Registry.timer reg "driver.merge_wall" in
          Obs.Counter.add
            (Obs.Registry.counter reg "driver.shards")
            (Array.length results);
          Obs.Timer.time mt merge)

let profile_registry ?(jobs = default_jobs ()) ?engine ?ring ?fuel
    ?static_prune
    ?(scale_of = fun (w : Workloads.Workload.t) -> w.default_scale) () =
  let compiled =
    List.map
      (fun (w : Workloads.Workload.t) ->
        (w, Workloads.Workload.compile w ~scale:(scale_of w)))
      Workloads.Registry.all
    |> Array.of_list
  in
  map ~jobs
    (fun ((w : Workloads.Workload.t), prog) ->
      (w, timed_run ?engine ?ring ?fuel ?static_prune prog))
    compiled
  |> Array.to_list
