let default_jobs () = Scheduler.default_workers ()

let map ?sched ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    let jobs = max 1 (min jobs n) in
    if jobs = 1 && Option.is_none sched then Array.map f xs
    else begin
      (* A client of the work-stealing scheduler: submit every item,
         await in index order. Stealing keeps uneven item costs
         balanced exactly as the old atomic cursor did, with the same
         cancellation contract on top. The pool is one-shot unless the
         caller lends its own ([sched]), e.g. profile-all reusing the
         serve pool so its telemetry shows up in one place. *)
      let own_sched = Option.is_none sched in
      let sched =
        match sched with
        | Some s -> s
        | None -> Scheduler.create ~workers:jobs ()
      in
      (* First error cancels the run: workers check the flag before
         starting an item, so a poisoned item stops the remaining work
         instead of draining the whole queue (items already in flight
         finish). *)
      let cancelled = Atomic.make false in
      let promises =
        Array.map
          (fun x ->
            Scheduler.submit sched (fun () ->
                if Atomic.get cancelled then None
                else
                  match f x with
                  | v -> Some v
                  | exception e ->
                      let bt = Printexc.get_raw_backtrace () in
                      Atomic.set cancelled true;
                      Printexc.raise_with_backtrace e bt))
          xs
      in
      let results = Array.map Scheduler.await_result promises in
      if own_sched then Scheduler.shutdown sched;
      (* Re-raise the first failure in index order (skipped items can
         precede it; they are unobservable once we raise). *)
      Array.iter
        (function
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
        results;
      Array.map
        (function Ok (Some v) -> v | Ok None | Error _ -> assert false)
        results
    end

let merge_profiles = function
  | [] -> invalid_arg "Parallel.merge_profiles: empty list"
  | p :: ps -> List.fold_left Alchemist.Profile.merge p ps

(* Each shard gets its own registry (no cross-domain contention) with a
   [driver.shard_wall] timer wrapped around the profiled execution; the
   caller can merge shard snapshots with [Obs.merge_all]. *)
let timed_run ?engine ?ring ?fuel ?trace_locals ?static_prune prog =
  let obs = Obs.Registry.create () in
  let shard_wall = Obs.Registry.timer obs "driver.shard_wall" in
  Obs.Timer.start shard_wall;
  let r =
    Alchemist.Profiler.run ?engine ?ring ?fuel ?trace_locals ?static_prune ~obs
      prog
  in
  Obs.Timer.stop shard_wall;
  r

let profile_programs ?(jobs = default_jobs ()) ?engine ?ring ?fuel
    ?trace_locals ?static_prune ?obs = function
  | [] -> invalid_arg "Parallel.profile_programs: empty list"
  | progs ->
      let results =
        map ~jobs
          (fun prog ->
            (timed_run ?engine ?ring ?fuel ?trace_locals ?static_prune prog)
              .Alchemist.Profiler.profile)
          (Array.of_list progs)
      in
      let merge () = merge_profiles (Array.to_list results) in
      (match obs with
      | None -> merge ()
      | Some reg ->
          let mt = Obs.Registry.timer reg "driver.merge_wall" in
          Obs.Counter.add
            (Obs.Registry.counter reg "driver.shards")
            (Array.length results);
          Obs.Timer.time mt merge)

let profile_registry ?sched ?(jobs = default_jobs ()) ?engine ?ring ?fuel
    ?static_prune
    ?(scale_of = fun (w : Workloads.Workload.t) -> w.default_scale) () =
  let compiled =
    List.map
      (fun (w : Workloads.Workload.t) ->
        (w, Workloads.Workload.compile w ~scale:(scale_of w)))
      Workloads.Registry.all
    |> Array.of_list
  in
  map ?sched ~jobs
    (fun ((w : Workloads.Workload.t), prog) ->
      (w, timed_run ?engine ?ring ?fuel ?static_prune prog))
    compiled
  |> Array.to_list
