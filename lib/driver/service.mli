(** The profile-registry service: request parsing, content-addressed
    caching and incremental re-profiling over the work-stealing
    {!Scheduler} — the engine behind [alchemist serve] and
    [alchemist profile-all].

    Single control thread (the caller) + worker domains: the control
    thread parses requests, consults the {!Cache}, memoizes static
    facts per code fingerprint ({!Alchemist.Profiler.prepare_facts} —
    reused when only a program's input data changes), and submits
    cache misses to the scheduler. Replies come back in submission
    order regardless of completion order; harvesting a reply performs
    its cache insert and optional [save=] file write on the control
    thread, which is why the cache needs no locking.

    Request lines ({!feed}):
    {v
    <spec> [fuel=N] [engine=switch|threaded|register] [ring=B]
           [regalloc=B] [trace_locals=B] [prune=B] [pool_capacity=N]
           [scan_limit=N] [save=PATH]
    v}
    with [<spec>] a [workload:NAME[:SCALE]] or a Mini-C file path and
    [B] one of [0/1/true/false]. Blank lines and [#] comments are
    skipped; the bare word [drain] is a control line returned to the
    caller. Malformed requests become in-order [error] replies, never
    exceptions. *)

type t

type outcome =
  | Hit  (** served from the in-memory cache *)
  | Disk_hit  (** served from the on-disk store *)
  | Computed  (** profiled by a worker domain *)

type reply = {
  seq : int;  (** 1-based submission number *)
  spec : string;
  result : (outcome * string * string, string) result;
      (** [Ok (outcome, cache key, canonical profile bytes)] or an
          error message (parse failure, unknown workload, runtime
          trap) *)
  save : string option;  (** where the bytes were also written *)
}

val create : ?workers:int -> ?cache:Cache.t -> unit -> t
(** Spawns the scheduler pool. [cache] defaults to a fresh in-memory
    {!Cache.create}; pass one with a [dir] for the on-disk store, or
    share one cache across services (e.g. the bench's cold/warm pair)
    — the cache is only ever touched from the calling thread. *)

val submit :
  t ->
  ?fuel:int ->
  ?engine:Vm.Machine.engine ->
  ?ring:bool ->
  ?regalloc:bool ->
  ?trace_locals:bool ->
  ?static_prune:bool ->
  ?pool_capacity:int ->
  ?scan_limit:int ->
  ?save:string ->
  spec:string ->
  Vm.Program.t ->
  unit
(** Structured submission of an already-compiled program ([spec] is
    only a label for the reply). Engine, ring, regalloc and prune
    select how a miss is computed but are not part of the cache key —
    profile bytes are proven independent of them. *)

val feed : t -> string -> [ `Queued | `Drain | `Skip ]
(** Parses one request line (grammar above). [`Queued] covers both
    accepted requests and malformed ones (which queue an error
    reply). *)

val ready : t -> reply list
(** Harvests (without blocking) the longest completed prefix of
    submission order — used to stream leading results while later jobs
    run. *)

val drain : t -> reply list
(** Waits for every outstanding job and harvests all remaining
    replies, in submission order. *)

val shutdown : t -> unit
(** Shuts the scheduler pool down (queued jobs finish first). *)

val render_reply : reply -> string
(** The serve wire format:
    [ok <seq> <spec> key=<key> <hit|disk-hit|miss> bytes=<n> [saved=<path>]]
    or [error <seq> <spec>: <message>]. *)

val cache : t -> Cache.t
val scheduler : t -> Scheduler.t

val telemetry : t -> Obs.snapshot
(** Service counters ([service.requests], [service.errors],
    [service.facts_computed], [service.facts_reused]) merged with
    {!Scheduler.telemetry} and {!Cache.telemetry}. *)
