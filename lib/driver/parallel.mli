(** Multi-domain sharded profiling.

    Profiling runs are embarrassingly parallel: each run owns its VM,
    shadow memory, index tree and profile, and shares nothing mutable
    with its siblings. This module shards independent runs across OCaml 5
    [Domain]s and combines their results with {!Alchemist.Profile.merge}.

    Because [merge] is associative and commutative (see [profile.ml]) and
    {!Alchemist.Profile_io.write} is canonical, a sharded run serializes
    to byte-identical output regardless of job count or completion
    order — the property [test_parallel.ml] pins down. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1: one domain per
    core, counting the caller (which also works). *)

val map : ?sched:Scheduler.t -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element, distributing work
    over a one-shot [jobs]-worker {!Scheduler} pool (work-stealing, so
    uneven item costs balance automatically). The first failure cancels
    the run: no worker starts a new item once any [f] has raised (items
    already in flight finish), and the first exception (in index order)
    is re-raised with its backtrace after the pool has shut down.
    [jobs <= 1] runs sequentially in the calling domain.
    [sched] lends an existing pool instead: [jobs] is then ignored, the
    pool is left running, and its telemetry accumulates the submitted
    items — how [profile-all] surfaces scheduler metrics. *)

val merge_profiles : Alchemist.Profile.t list -> Alchemist.Profile.t
(** Folds {!Alchemist.Profile.merge} over the list.
    @raise Invalid_argument on the empty list, or if the profiles belong
    to different programs. *)

val profile_programs :
  ?jobs:int ->
  ?engine:Vm.Machine.engine ->
  ?ring:bool ->
  ?fuel:int ->
  ?trace_locals:bool ->
  ?static_prune:bool ->
  ?obs:Obs.Registry.t ->
  Vm.Program.t list ->
  Alchemist.Profile.t
(** Profiles each program on its own domain and merges the results into
    one profile. Intended for input families: the same source template
    compiled with different initialized global data yields identical code
    (hence mergeable profiles) exercising different paths — the paper's
    "completeness is a function of the test inputs" caveat, §IV.
    When [obs] is given, the driver records a ["driver.merge_wall"] timer
    around the merge fold and a ["driver.shards"] counter into it (shard
    telemetry itself stays per-run; see {!profile_registry}).
    [engine] selects the VM engine per shard (default
    threaded; profiles are engine-independent). [ring] and [static_prune]
    are passed through to {!Alchemist.Profiler.run} (default on; profiles
    are byte-identical either way). Ring telemetry counters ([ir.*]) are
    ordinary registry instruments, so shard snapshots merge with
    {!Obs.merge_all} like every other counter — merge order never
    changes a merged total (the qcheck merge laws in test_obs cover
    them).
    @raise Invalid_argument on the empty list or on programs with
    differing code. *)

val profile_registry :
  ?sched:Scheduler.t ->
  ?jobs:int ->
  ?engine:Vm.Machine.engine ->
  ?ring:bool ->
  ?fuel:int ->
  ?static_prune:bool ->
  ?scale_of:(Workloads.Workload.t -> int) ->
  unit ->
  (Workloads.Workload.t * Alchemist.Profiler.result) list
(** Profiles every registry workload, one run per domain. Compilation is
    sequential (it is cheap and keeps compiler state off the worker
    domains); only the profiled execution is sharded. [scale_of] picks the
    input size per workload (default [default_scale]). Results are in
    registry order, independent of completion order.

    Each run's [result.obs] registry is private to its shard (created on
    the worker domain, so domains never contend on instruments) and
    carries a ["driver.shard_wall"] timer around the profiled execution
    in addition to the profiler's own metrics. *)
