(** Content-addressed profile cache: key = hash of everything that
    determines the canonical profile bytes, value = those bytes.

    The {!key} covers the program's code fingerprint, its input
    fingerprint ({!Alchemist.Profile_io.input_fingerprint}: the
    initialized global data), and the profile-determining options —
    fuel, [trace_locals], pool capacity and scan limit. The execution
    engine, event ring, register allocation and static pruning are
    deliberately excluded: the repo's differential tests enforce that
    they never change profile bytes, so runs differing only in those
    knobs hit the same cache line. Re-profiling a program family after
    an input change is automatically incremental: the new key misses,
    but the static facts (keyed by code fingerprint alone — see
    {!Alchemist.Profiler.prepare_facts}) are reused by the service.

    An in-memory LRU (entry-count bounded) optionally backed by an
    on-disk store ([dir], conventionally [_cache/]) holding one
    [<key>.prof] file per entry, written via rename so concurrent
    readers never see torn files. Memory misses fall through to disk
    and re-populate memory.

    Not thread-safe by design: the service confines the cache to its
    control thread (lookup before submitting a job, insert when
    harvesting its result); worker domains never touch it. *)

type t

val default_capacity : int
(** 256 entries. *)

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [dir], when given, enables the on-disk store (the directory is
    created if missing).
    @raise Invalid_argument if [capacity < 1]. *)

val key :
  code_fp:string ->
  input_fp:string ->
  ?fuel:int ->
  ?trace_locals:bool ->
  ?pool_capacity:int ->
  ?scan_limit:int ->
  unit ->
  string
(** The cache key for a run of the program with the given fingerprints
    under the given profile-determining options. Omitted options must
    stay omitted (not spelled as their defaults) for keys to agree —
    the service and bench always pass them through verbatim from the
    request. *)

val find : t -> string -> string option
(** Cached profile bytes, if present (memory first, then disk). Counts
    a hit, disk hit, or miss. *)

val find_located : t -> string -> (string * [ `Memory | `Disk ]) option
(** Like {!find}, also reporting where the bytes were found (a [`Disk]
    hit has just re-populated memory). *)

val add : t -> string -> string -> unit
(** [add t key bytes] inserts (and persists, when a [dir] was given).
    Inserting an existing key refreshes its recency; content addressing
    makes the bytes necessarily equal. *)

val mem : t -> string -> bool
(** Presence check (memory or disk) with no telemetry or recency
    effect. *)

val length : t -> int
(** In-memory entry count. *)

val telemetry : t -> Obs.snapshot
(** [cache.hits], [cache.disk_hits], [cache.misses],
    [cache.insertions], [cache.evictions] counters and the
    [cache.entries] gauge. *)
