(* The VM runtime core shared by both execution engines (the switch
   interpreter in [Machine] and the closure-threaded engine in [Lower]):
   the mutable machine state, the unboxed value representation, the
   operand-stack and memory primitives, and the operator evaluators.

   Keeping this in one module is what makes the engines differentially
   testable down to the metric: both manipulate the exact same state with
   the exact same primitives, so any divergence is a dispatch bug, not a
   semantics drift. *)

exception Trap of string * int
exception Halted of int

type metrics = {
  reads : int;
  writes : int;
  calls : int;
  branches : int;
  frames_released : int;
  max_call_depth : int;
  mem_high_water : int;
}

type result = {
  exit_value : int;
  instructions : int;
  output : int list;
  metrics : metrics;
}

(* Values are unboxed: the payload lives in an [int array] and a one-byte
   tag in a parallel [Bytes.t] ('\000' = integer, '\001' = array
   reference). An array reference packs (base, len) into a single int as
   [base lor (len lsl 31)] — base fits 31 bits (2^31 memory slots is far
   beyond any workload here), leaving 32 bits for the length. The
   interpreter hot loop therefore never allocates: no boxed [value]
   constructors, no per-call argument array. *)

let tag_int = '\000'
let tag_ref = '\001'
let ref_shift = 31
let ref_mask = (1 lsl ref_shift) - 1
let pack_ref base len = base lor (len lsl ref_shift)
let ref_base v = v land ref_mask
let ref_len v = v lsr ref_shift

type state = {
  prog : Program.t;
  mutable mem : int array;
  mutable mem_tag : Bytes.t;
  mutable stack : int array;  (* operand stack *)
  mutable stack_tag : Bytes.t;
  mutable sp : int;
  mutable frame_base : int;
  mutable stack_top : int;  (* next free memory address *)
  (* call records, struct-of-arrays: return pc, saved frame base, fid *)
  mutable call_ret : int array;
  mutable call_base : int array;
  mutable call_fid : int array;
  mutable depth : int;
  max_depth : int;
  mutable out : int list;
  mutable instructions : int;
  (* telemetry: plain int counters so the hot loop stays allocation-free;
     published as a [metrics] record in the result *)
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_calls : int;
  mutable n_branches : int;
  mutable n_frames_released : int;
  mutable depth_hwm : int;
  mutable mem_hwm : int;
}

let trap st pc fmt =
  ignore st;
  Printf.ksprintf (fun msg -> raise (Trap (msg, pc))) fmt

let ensure_mem st needed =
  let n = Array.length st.mem in
  if needed > n then begin
    let cap = max (2 * n) needed in
    let mem = Array.make cap 0 in
    Array.blit st.mem 0 mem 0 n;
    st.mem <- mem;
    let mem_tag = Bytes.make cap tag_int in
    Bytes.blit st.mem_tag 0 mem_tag 0 n;
    st.mem_tag <- mem_tag
  end

let[@inline never] grow_stack st =
  let stack = Array.make (2 * st.sp) 0 in
  Array.blit st.stack 0 stack 0 st.sp;
  st.stack <- stack;
  let stack_tag = Bytes.make (2 * st.sp) tag_int in
  Bytes.blit st.stack_tag 0 stack_tag 0 st.sp;
  st.stack_tag <- stack_tag

let[@inline] push st v tag =
  if st.sp = Array.length st.stack then grow_stack st;
  st.stack.(st.sp) <- v;
  Bytes.unsafe_set st.stack_tag st.sp tag;
  st.sp <- st.sp + 1

(* Pops a slot and returns its index; the caller reads value and tag from
   the (still valid) popped position. *)
let[@inline] pop_slot st pc =
  if st.sp = 0 then trap st pc "operand stack underflow";
  st.sp <- st.sp - 1;
  st.sp

let[@inline] pop_int st pc =
  let i = pop_slot st pc in
  if Bytes.unsafe_get st.stack_tag i <> tag_int then
    trap st pc "expected integer, found array reference";
  st.stack.(i)

let[@inline] pop_ref st pc =
  let i = pop_slot st pc in
  if Bytes.unsafe_get st.stack_tag i <> tag_ref then
    trap st pc "expected array reference, found integer";
  st.stack.(i)

let eval_binop st pc (op : Minic.Ast.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap st pc "division by zero" else a / b
  | Mod -> if b = 0 then trap st pc "modulo by zero" else a mod b
  | Shl ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a lsl b
  | Shr ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a asr b
  | BitAnd -> a land b
  | BitOr -> a lor b
  | BitXor -> a lxor b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | LogAnd | LogOr ->
      trap st pc "short-circuit operator reached the interpreter"

let eval_unop (op : Minic.Ast.unop) a =
  match op with
  | Neg -> -a
  | LogNot -> if a = 0 then 1 else 0
  | BitNot -> lnot a

let create ?(max_depth = 10_000) (prog : Program.t) =
  let mem_cap = max prog.globals_size 1024 in
  let st =
    {
      prog;
      mem = Array.make mem_cap 0;
      mem_tag = Bytes.make mem_cap tag_int;
      stack = Array.make 256 0;
      stack_tag = Bytes.make 256 tag_int;
      sp = 0;
      frame_base = 0;
      stack_top = prog.globals_size;
      call_ret = Array.make 64 0;
      call_base = Array.make 64 0;
      call_fid = Array.make 64 0;
      depth = 0;
      max_depth;
      out = [];
      instructions = 0;
      n_reads = 0;
      n_writes = 0;
      n_calls = 0;
      n_branches = 0;
      n_frames_released = 0;
      depth_hwm = 0;
      mem_hwm = 0;
    }
  in
  ensure_mem st prog.globals_size;
  List.iter (fun (addr, v) -> st.mem.(addr) <- v) prog.global_inits;
  st

let[@inline never] grow_call_records st =
  let grow a =
    let b = Array.make (2 * st.depth) 0 in
    Array.blit a 0 b 0 st.depth;
    b
  in
  st.call_ret <- grow st.call_ret;
  st.call_base <- grow st.call_base;
  st.call_fid <- grow st.call_fid

let finish st exit_value =
  {
    exit_value;
    instructions = st.instructions;
    output = List.rev st.out;
    metrics =
      {
        reads = st.n_reads;
        writes = st.n_writes;
        calls = st.n_calls;
        branches = st.n_branches;
        frames_released = st.n_frames_released;
        max_call_depth = st.depth_hwm;
        mem_high_water = st.mem_hwm;
      };
  }
