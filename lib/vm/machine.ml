exception Trap of string * int

type metrics = {
  reads : int;
  writes : int;
  calls : int;
  branches : int;
  frames_released : int;
  max_call_depth : int;
  mem_high_water : int;
}

type result = {
  exit_value : int;
  instructions : int;
  output : int list;
  metrics : metrics;
}

exception Halted of int

(* Values are unboxed: the payload lives in an [int array] and a one-byte
   tag in a parallel [Bytes.t] ('\000' = integer, '\001' = array
   reference). An array reference packs (base, len) into a single int as
   [base lor (len lsl 31)] — base fits 31 bits (2^31 memory slots is far
   beyond any workload here), leaving 32 bits for the length. The
   interpreter hot loop therefore never allocates: no boxed [value]
   constructors, no per-call argument array. *)

let tag_int = '\000'
let tag_ref = '\001'
let ref_shift = 31
let ref_mask = (1 lsl ref_shift) - 1
let pack_ref base len = base lor (len lsl ref_shift)
let ref_base v = v land ref_mask
let ref_len v = v lsr ref_shift

type state = {
  prog : Program.t;
  mutable mem : int array;
  mutable mem_tag : Bytes.t;
  mutable stack : int array;  (* operand stack *)
  mutable stack_tag : Bytes.t;
  mutable sp : int;
  mutable frame_base : int;
  mutable stack_top : int;  (* next free memory address *)
  (* call records, struct-of-arrays: return pc, saved frame base, fid *)
  mutable call_ret : int array;
  mutable call_base : int array;
  mutable call_fid : int array;
  mutable depth : int;
  max_depth : int;
  mutable out : int list;
  mutable instructions : int;
  (* telemetry: plain int counters so the hot loop stays allocation-free;
     published as a [metrics] record in the result *)
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_calls : int;
  mutable n_branches : int;
  mutable n_frames_released : int;
  mutable depth_hwm : int;
  mutable mem_hwm : int;
}

let trap st pc fmt =
  ignore st;
  Printf.ksprintf (fun msg -> raise (Trap (msg, pc))) fmt

let ensure_mem st needed =
  let n = Array.length st.mem in
  if needed > n then begin
    let cap = max (2 * n) needed in
    let mem = Array.make cap 0 in
    Array.blit st.mem 0 mem 0 n;
    st.mem <- mem;
    let mem_tag = Bytes.make cap tag_int in
    Bytes.blit st.mem_tag 0 mem_tag 0 n;
    st.mem_tag <- mem_tag
  end

let push st v tag =
  if st.sp = Array.length st.stack then begin
    let stack = Array.make (2 * st.sp) 0 in
    Array.blit st.stack 0 stack 0 st.sp;
    st.stack <- stack;
    let stack_tag = Bytes.make (2 * st.sp) tag_int in
    Bytes.blit st.stack_tag 0 stack_tag 0 st.sp;
    st.stack_tag <- stack_tag
  end;
  st.stack.(st.sp) <- v;
  Bytes.unsafe_set st.stack_tag st.sp tag;
  st.sp <- st.sp + 1

(* Pops a slot and returns its index; the caller reads value and tag from
   the (still valid) popped position. *)
let pop_slot st pc =
  if st.sp = 0 then trap st pc "operand stack underflow";
  st.sp <- st.sp - 1;
  st.sp

let pop_int st pc =
  let i = pop_slot st pc in
  if Bytes.unsafe_get st.stack_tag i <> tag_int then
    trap st pc "expected integer, found array reference";
  st.stack.(i)

let pop_ref st pc =
  let i = pop_slot st pc in
  if Bytes.unsafe_get st.stack_tag i <> tag_ref then
    trap st pc "expected array reference, found integer";
  st.stack.(i)

let eval_binop st pc (op : Minic.Ast.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap st pc "division by zero" else a / b
  | Mod -> if b = 0 then trap st pc "modulo by zero" else a mod b
  | Shl ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a lsl b
  | Shr ->
      if b < 0 || b > 62 then trap st pc "shift amount %d out of range" b
      else a asr b
  | BitAnd -> a land b
  | BitOr -> a lor b
  | BitXor -> a lxor b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | LogAnd | LogOr ->
      trap st pc "short-circuit operator reached the interpreter"

let eval_unop (op : Minic.Ast.unop) a =
  match op with
  | Neg -> -a
  | LogNot -> if a = 0 then 1 else 0
  | BitNot -> lnot a

let exec ~hooked ?(trace_locals = true) (hooks : Hooks.t) ?fuel
    ?(max_depth = 10_000) (prog : Program.t) =
  let hook_locals = hooked && trace_locals in
  let mem_cap = max prog.globals_size 1024 in
  let st =
    {
      prog;
      mem = Array.make mem_cap 0;
      mem_tag = Bytes.make mem_cap tag_int;
      stack = Array.make 256 0;
      stack_tag = Bytes.make 256 tag_int;
      sp = 0;
      frame_base = 0;
      stack_top = prog.globals_size;
      call_ret = Array.make 64 0;
      call_base = Array.make 64 0;
      call_fid = Array.make 64 0;
      depth = 0;
      max_depth;
      out = [];
      instructions = 0;
      n_reads = 0;
      n_writes = 0;
      n_calls = 0;
      n_branches = 0;
      n_frames_released = 0;
      depth_hwm = 0;
      mem_hwm = 0;
    }
  in
  ensure_mem st prog.globals_size;
  List.iter (fun (addr, v) -> st.mem.(addr) <- v) prog.global_inits;
  let code = prog.code in
  let funcs = prog.funcs in
  let fuel = match fuel with Some f -> f | None -> max_int in
  let pc = ref 0 in
  let exit_value =
    try
     while true do
       let p = !pc in
       if st.instructions >= fuel then trap st p "out of fuel";
       st.instructions <- st.instructions + 1;
       if hooked then hooks.on_instr ~pc:p;
       (match code.(p) with
        | Const n ->
            push st n tag_int;
            incr pc
        | LoadLocal s ->
            let addr = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            if hook_locals then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreLocal s ->
            let addr = st.frame_base + s in
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            if hook_locals then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            incr pc
        | LoadGlobal addr ->
            st.n_reads <- st.n_reads + 1;
            if hooked then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreGlobal addr ->
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            if hooked then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            incr pc
        | MakeRefGlobal (base, len) ->
            push st (pack_ref base len) tag_ref;
            incr pc
        | MakeRefLocal (off, len) ->
            push st (pack_ref (st.frame_base + off) len) tag_ref;
            incr pc
        | LoadIndex ->
            let idx = pop_int st p in
            let r = pop_ref st p in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_reads <- st.n_reads + 1;
            if hooked then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreIndex ->
            let i = pop_slot st p in
            let v = st.stack.(i) in
            let vtag = Bytes.unsafe_get st.stack_tag i in
            let idx = pop_int st p in
            let r = pop_ref st p in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_writes <- st.n_writes + 1;
            if hooked then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- v;
            Bytes.unsafe_set st.mem_tag addr vtag;
            incr pc
        | Binop op ->
            let b = pop_int st p in
            let a = pop_int st p in
            push st (eval_binop st p op a b) tag_int;
            incr pc
        | Unop op ->
            let a = pop_int st p in
            push st (eval_unop op a) tag_int;
            incr pc
        | Jmp target -> pc := target
        | Br { target; kind; cid } ->
            let v = pop_int st p in
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            if hooked then hooks.on_branch ~pc:p ~kind ~cid ~taken;
            pc := if taken then target else p + 1
        | Dup2 ->
            if st.sp < 2 then trap st p "dup2 on short stack";
            let i = st.sp - 2 in
            let a = st.stack.(i) and ta = Bytes.unsafe_get st.stack_tag i in
            let b = st.stack.(i + 1)
            and tb = Bytes.unsafe_get st.stack_tag (i + 1) in
            push st a ta;
            push st b tb;
            incr pc
        | Call fid ->
            if st.depth >= st.max_depth then trap st p "call stack overflow";
            let f = funcs.(fid) in
            (* Arguments sit on top of the operand stack, first param
               deepest; leave them in place and copy straight into the
               callee frame below — no intermediate array. *)
            if st.sp < f.nparams then trap st p "operand stack underflow";
            st.sp <- st.sp - f.nparams;
            (* Push the call record. *)
            if st.depth = Array.length st.call_ret then begin
              let grow a =
                let b = Array.make (2 * st.depth) 0 in
                Array.blit a 0 b 0 st.depth;
                b
              in
              st.call_ret <- grow st.call_ret;
              st.call_base <- grow st.call_base;
              st.call_fid <- grow st.call_fid
            end;
            st.call_ret.(st.depth) <- p + 1;
            st.call_base.(st.depth) <- st.frame_base;
            st.call_fid.(st.depth) <- fid;
            st.depth <- st.depth + 1;
            (* Fresh zeroed frame. *)
            let base = st.stack_top in
            ensure_mem st (base + f.frame_slots);
            Array.fill st.mem base f.frame_slots 0;
            Bytes.fill st.mem_tag base f.frame_slots tag_int;
            st.frame_base <- base;
            st.stack_top <- base + f.frame_slots;
            st.n_calls <- st.n_calls + 1;
            if st.depth > st.depth_hwm then st.depth_hwm <- st.depth;
            if st.stack_top > st.mem_hwm then st.mem_hwm <- st.stack_top;
            if hooked then hooks.on_call ~pc:f.entry ~fid;
            for i = 0 to f.nparams - 1 do
              if hook_locals then hooks.on_write ~pc:f.entry ~addr:(base + i);
              st.mem.(base + i) <- st.stack.(st.sp + i);
              Bytes.unsafe_set st.mem_tag (base + i)
                (Bytes.unsafe_get st.stack_tag (st.sp + i))
            done;
            pc := f.entry
        | Ret ->
            let i = pop_slot st p in
            let v = st.stack.(i) in
            let vtag = Bytes.unsafe_get st.stack_tag i in
            st.depth <- st.depth - 1;
            let ret_pc = st.call_ret.(st.depth) in
            let saved_base = st.call_base.(st.depth) in
            let fid = st.call_fid.(st.depth) in
            let f = funcs.(fid) in
            if hooked then begin
              hooks.on_ret ~pc:p ~fid;
              hooks.on_frame_release ~base:st.frame_base ~size:f.frame_slots
            end;
            st.n_frames_released <- st.n_frames_released + 1;
            st.stack_top <- st.frame_base;
            st.frame_base <- saved_base;
            push st v vtag;
            pc := ret_pc
        | Pop ->
            ignore (pop_slot st p);
            incr pc
        | Print ->
            let v = pop_int st p in
            st.out <- v :: st.out;
            incr pc
        | Halt ->
            let v = if st.sp > 0 then pop_int st p else 0 in
            raise (Halted v))
      done;
      assert false
    with Halted v -> v
  in
  {
    exit_value;
    instructions = st.instructions;
    output = List.rev st.out;
    metrics =
      {
        reads = st.n_reads;
        writes = st.n_writes;
        calls = st.n_calls;
        branches = st.n_branches;
        frames_released = st.n_frames_released;
        max_call_depth = st.depth_hwm;
        mem_high_water = st.mem_hwm;
      };
  }

let run ?fuel ?max_depth prog =
  exec ~hooked:false Hooks.noop ?fuel ?max_depth prog

let run_hooked ?trace_locals ?fuel ?max_depth hooks prog =
  exec ~hooked:true ?trace_locals hooks ?fuel ?max_depth prog
