open Vmstate

exception Trap = Vmstate.Trap

type metrics = Vmstate.metrics = {
  reads : int;
  writes : int;
  calls : int;
  branches : int;
  frames_released : int;
  max_call_depth : int;
  mem_high_water : int;
}

type result = Vmstate.result = {
  exit_value : int;
  instructions : int;
  output : int list;
  metrics : metrics;
}

type engine = Switch | Threaded | Register

let engine_to_string = function
  | Switch -> "switch"
  | Threaded -> "threaded"
  | Register -> "register"

let engine_of_string = function
  | "switch" -> Some Switch
  | "threaded" -> Some Threaded
  | "register" -> Some Register
  | _ -> None

(* The reference switch loop, continuable from any machine state: one
   [match] per executed instruction, [hooked]/[trace_locals] tested at
   run time. Kept as the semantic baseline the closure-threaded engine
   ([Lower]) and the register-IR backend ([Ir.Exec]) are differentially
   tested against — see test/test_engines.ml. The register backend also
   re-enters it mid-run (via {!switch_resume}) when fuel runs out inside
   a tick segment, so "out of fuel" traps at the exact constituent pc. *)
let switch_loop ~hooked ~hook_locals ~pruned (hooks : Hooks.t) ~fuel
    (st : state) (prog : Program.t) pc0 =
  let code = prog.code in
  let funcs = prog.funcs in
  let pc = ref pc0 in
  let exit_value =
    try
     while true do
       let p = !pc in
       if st.instructions >= fuel then trap st p "out of fuel";
       st.instructions <- st.instructions + 1;
       if hooked then hooks.on_instr ~pc:p;
       (match code.(p) with
        | Const n ->
            push st n tag_int;
            incr pc
        | LoadLocal s ->
            let addr = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            if hook_locals then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreLocal s ->
            let addr = st.frame_base + s in
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            if hook_locals then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            incr pc
        | LoadGlobal addr ->
            st.n_reads <- st.n_reads + 1;
            if hooked && not (pruned p) then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreGlobal addr ->
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            if hooked && not (pruned p) then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            incr pc
        | MakeRefGlobal (base, len) ->
            push st (pack_ref base len) tag_ref;
            incr pc
        | MakeRefLocal (off, len) ->
            push st (pack_ref (st.frame_base + off) len) tag_ref;
            incr pc
        | LoadIndex ->
            let idx = pop_int st p in
            let r = pop_ref st p in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_reads <- st.n_reads + 1;
            if hooked && not (pruned p) then hooks.on_read ~pc:p ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            incr pc
        | StoreIndex ->
            let i = pop_slot st p in
            let v = st.stack.(i) in
            let vtag = Bytes.unsafe_get st.stack_tag i in
            let idx = pop_int st p in
            let r = pop_ref st p in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st p "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_writes <- st.n_writes + 1;
            if hooked && not (pruned p) then hooks.on_write ~pc:p ~addr;
            st.mem.(addr) <- v;
            Bytes.unsafe_set st.mem_tag addr vtag;
            incr pc
        | Binop op ->
            let b = pop_int st p in
            let a = pop_int st p in
            push st (eval_binop st p op a b) tag_int;
            incr pc
        | Unop op ->
            let a = pop_int st p in
            push st (eval_unop op a) tag_int;
            incr pc
        | Jmp target -> pc := target
        | Br { target; kind; cid } ->
            let v = pop_int st p in
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            if hooked then hooks.on_branch ~pc:p ~kind ~cid ~taken;
            pc := if taken then target else p + 1
        | Dup2 ->
            if st.sp < 2 then trap st p "dup2 on short stack";
            let i = st.sp - 2 in
            let a = st.stack.(i) and ta = Bytes.unsafe_get st.stack_tag i in
            let b = st.stack.(i + 1)
            and tb = Bytes.unsafe_get st.stack_tag (i + 1) in
            push st a ta;
            push st b tb;
            incr pc
        | Call fid ->
            if st.depth >= st.max_depth then trap st p "call stack overflow";
            let f = funcs.(fid) in
            (* Arguments sit on top of the operand stack, first param
               deepest; leave them in place and copy straight into the
               callee frame below — no intermediate array. *)
            if st.sp < f.nparams then trap st p "operand stack underflow";
            st.sp <- st.sp - f.nparams;
            (* Push the call record. *)
            if st.depth = Array.length st.call_ret then grow_call_records st;
            st.call_ret.(st.depth) <- p + 1;
            st.call_base.(st.depth) <- st.frame_base;
            st.call_fid.(st.depth) <- fid;
            st.depth <- st.depth + 1;
            (* Fresh zeroed frame. *)
            let base = st.stack_top in
            ensure_mem st (base + f.frame_slots);
            Array.fill st.mem base f.frame_slots 0;
            Bytes.fill st.mem_tag base f.frame_slots tag_int;
            st.frame_base <- base;
            st.stack_top <- base + f.frame_slots;
            st.n_calls <- st.n_calls + 1;
            if st.depth > st.depth_hwm then st.depth_hwm <- st.depth;
            if st.stack_top > st.mem_hwm then st.mem_hwm <- st.stack_top;
            if hooked then hooks.on_call ~pc:f.entry ~fid;
            for i = 0 to f.nparams - 1 do
              if hook_locals then hooks.on_write ~pc:f.entry ~addr:(base + i);
              st.mem.(base + i) <- st.stack.(st.sp + i);
              Bytes.unsafe_set st.mem_tag (base + i)
                (Bytes.unsafe_get st.stack_tag (st.sp + i))
            done;
            pc := f.entry
        | Ret ->
            let i = pop_slot st p in
            let v = st.stack.(i) in
            let vtag = Bytes.unsafe_get st.stack_tag i in
            st.depth <- st.depth - 1;
            let ret_pc = st.call_ret.(st.depth) in
            let saved_base = st.call_base.(st.depth) in
            let fid = st.call_fid.(st.depth) in
            let f = funcs.(fid) in
            if hooked then begin
              hooks.on_ret ~pc:p ~fid;
              hooks.on_frame_release ~base:st.frame_base ~size:f.frame_slots
            end;
            st.n_frames_released <- st.n_frames_released + 1;
            st.stack_top <- st.frame_base;
            st.frame_base <- saved_base;
            push st v vtag;
            pc := ret_pc
        | Pop ->
            ignore (pop_slot st p);
            incr pc
        | Print ->
            let v = pop_int st p in
            st.out <- v :: st.out;
            incr pc
        | Halt ->
            let v = if st.sp > 0 then pop_int st p else 0 in
            raise (Halted v))
      done;
      assert false
    with Halted v -> v
  in
  exit_value

let resolve_prune ~hook_locals prune =
  (* Prune verdicts model the default event set only: under the -O0
     local-tracing model, frame slots form edges the mask never
     considered, so the mask is dropped rather than trusted. *)
  let prune = if hook_locals then None else prune in
  match prune with
  | Some m -> fun p -> Array.unsafe_get m p
  | None -> fun _ -> false

let exec_switch ~hooked ?(trace_locals = true) ?prune (hooks : Hooks.t) ?fuel
    ?max_depth (prog : Program.t) =
  let hook_locals = hooked && trace_locals in
  let pruned = resolve_prune ~hook_locals prune in
  let st = Vmstate.create ?max_depth prog in
  let fuel = match fuel with Some f -> f | None -> max_int in
  Vmstate.finish st
    (switch_loop ~hooked ~hook_locals ~pruned hooks ~fuel st prog 0)

let switch_resume ~hooked ?(trace_locals = true) ?prune (hooks : Hooks.t)
    ~fuel st (prog : Program.t) ~pc =
  let hook_locals = hooked && trace_locals in
  let pruned = resolve_prune ~hook_locals prune in
  switch_loop ~hooked ~hook_locals ~pruned hooks ~fuel st prog pc

let exec ?(engine = Threaded) ~hooked ?trace_locals ?prune (hooks : Hooks.t)
    ?fuel ?max_depth prog =
  match engine with
  | Switch ->
      exec_switch ~hooked ?trace_locals ?prune hooks ?fuel ?max_depth prog
  | Threaded ->
      Lower.exec ~hooked ?trace_locals ?prune hooks ?fuel ?max_depth prog
  | Register ->
      (* The register backend lives above this library (lib/ir depends on
         lib/vm); dispatch through [Ir.Engine] instead. *)
      invalid_arg "Machine.exec: register engine requires Ir.Engine"

let run ?engine ?fuel ?max_depth prog =
  exec ?engine ~hooked:false Hooks.noop ?fuel ?max_depth prog

let run_hooked ?engine ?trace_locals ?prune ?fuel ?max_depth hooks prog =
  exec ?engine ~hooked:true ?trace_locals ?prune hooks ?fuel ?max_depth prog
