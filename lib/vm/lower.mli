(** The closure-threaded execution engine.

    {!exec} pre-lowers a {!Program.t} once into a flat array of closures
    — one [unit -> int] step function per pc, returning the next pc —
    then drives [pc <- steps.(pc) ()] with zero per-step decoding.
    Specialization happens at lowering time: hook-vs-nohook and
    trace-locals-vs-not select the closure variant, immediates and
    branch/call metadata are captured in closure environments, the
    {!Hooks.t} record is resolved into its fields once, and a peephole
    pass fuses the workloads' dominant straight-line sequences into
    superinstructions.

    Fusion is transparent: a fused step fires each constituent's hooks
    with the original pcs, in the reference engine's order, and advances
    the instruction clock by the constituent count — profiles and
    telemetry are bit-identical to {!Machine.run_hooked} with the switch
    engine. Fused closures only replace the *head* pc of a window;
    branching into the middle of a window runs the unfused tail. Near
    fuel exhaustion a fused step falls back to single-instruction
    execution so "out of fuel" traps at the exact pc.

    Use {!Machine.run} / {!Machine.run_hooked} with [~engine] rather than
    calling this directly; this interface exists for the dispatcher,
    white-box tests and the ablation bench. *)

type fusion = { head : int; length : int; name : string }

val fusions : Program.t -> fusion list
(** The superinstruction windows the peephole pass would install, in
    program order (introspection for tests, docs and the bench). *)

val exec :
  hooked:bool ->
  ?trace_locals:bool ->
  ?prune:bool array ->
  ?fuse:bool ->
  Hooks.t ->
  ?fuel:int ->
  ?max_depth:int ->
  Program.t ->
  Vmstate.result
(** Lower and run. [fuse] (default [true]) enables the superinstruction
    pass; the ablation bench sets it to [false] to isolate the win from
    threaded dispatch alone. Fusion is also disabled automatically when
    locals are traced ([hooked && trace_locals]) — the -O0 model fires a
    memory event per local access, which defeats the fused bodies'
    purpose; that configuration runs the plain threaded code.

    [prune] (see {!Machine.run_hooked}) is resolved at lowering time:
    a pruned event pc gets a closure whose memory hook is a no-op —
    fused windows included (their event hook fires at an interior pc,
    which is the one consulted). Ignored when locals are traced. *)
