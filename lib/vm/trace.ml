(* Events are packed into a flat int buffer:
     tag; payload...
   with tags:
     0 instr pc | 1 read pc addr | 2 write pc addr
     3 branch pc kind taken cid | 4 call pc fid | 5 ret pc fid
     6 release base size *)

type t = {
  mutable buf : int array;
  mutable len : int;
  mutable nevents : int;
  mutable res : Machine.result option;
  locals : bool;  (* recorded with trace_locals? *)
}

let push t v =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- v;
  t.len <- t.len + 1

let ev t tag =
  t.nevents <- t.nevents + 1;
  push t tag

let kind_code = function
  | Instr.BrIf -> 0
  | Instr.BrLoop -> 1
  | Instr.BrSc -> 2

let kind_of_code = function
  | 0 -> Instr.BrIf
  | 1 -> Instr.BrLoop
  | _ -> Instr.BrSc

let record ?trace_locals ?fuel prog =
  let locals = Option.value trace_locals ~default:true in
  let t =
    { buf = Array.make 65536 0; len = 0; nevents = 0; res = None; locals }
  in
  let hooks =
    {
      Hooks.on_instr =
        (fun ~pc ->
          ev t 0;
          push t pc);
      on_read =
        (fun ~pc ~addr ->
          ev t 1;
          push t pc;
          push t addr);
      on_write =
        (fun ~pc ~addr ->
          ev t 2;
          push t pc;
          push t addr);
      on_branch =
        (fun ~pc ~kind ~cid ~taken ->
          ev t 3;
          push t pc;
          push t (kind_code kind);
          push t (if taken then 1 else 0);
          push t cid);
      on_call =
        (fun ~pc ~fid ->
          ev t 4;
          push t pc;
          push t fid);
      on_ret =
        (fun ~pc ~fid ->
          ev t 5;
          push t pc;
          push t fid);
      on_frame_release =
        (fun ~base ~size ->
          ev t 6;
          push t base;
          push t size);
    }
  in
  let res = Machine.run_hooked ?trace_locals ?fuel hooks prog in
  t.res <- Some res;
  (t, res)

let replay t (hooks : Hooks.t) =
  let i = ref 0 in
  let next () =
    let v = t.buf.(!i) in
    incr i;
    v
  in
  while !i < t.len do
    match next () with
    | 0 -> hooks.on_instr ~pc:(next ())
    | 1 ->
        let pc = next () in
        hooks.on_read ~pc ~addr:(next ())
    | 2 ->
        let pc = next () in
        hooks.on_write ~pc ~addr:(next ())
    | 3 ->
        let pc = next () in
        let kind = kind_of_code (next ()) in
        let taken = next () <> 0 in
        let cid = next () in
        hooks.on_branch ~pc ~kind ~cid ~taken
    | 4 ->
        let pc = next () in
        hooks.on_call ~pc ~fid:(next ())
    | 5 ->
        let pc = next () in
        hooks.on_ret ~pc ~fid:(next ())
    | 6 ->
        let base = next () in
        hooks.on_frame_release ~base ~size:(next ())
    | tag -> invalid_arg (Printf.sprintf "Trace.replay: bad tag %d" tag)
  done

let events t = t.nevents
let words t = t.len
let result t = Option.get t.res
let traced_locals t = t.locals
