type branch_kind = BrIf | BrLoop | BrSc

type t =
  | Const of int
  | LoadLocal of int
  | StoreLocal of int
  | LoadGlobal of int
  | StoreGlobal of int
  | MakeRefGlobal of int * int
  | MakeRefLocal of int * int
  | LoadIndex
  | StoreIndex
  | Binop of Minic.Ast.binop
  | Unop of Minic.Ast.unop
  | Jmp of int
  | Br of { target : int; kind : branch_kind; cid : int }
  | Call of int
  | Ret
  | Pop
  | Dup2
  | Print
  | Halt

let kind_to_string = function
  | BrIf -> "if"
  | BrLoop -> "loop"
  | BrSc -> "sc"

let to_string = function
  | Const n -> Printf.sprintf "const %d" n
  | LoadLocal s -> Printf.sprintf "load.l %d" s
  | StoreLocal s -> Printf.sprintf "store.l %d" s
  | LoadGlobal a -> Printf.sprintf "load.g %d" a
  | StoreGlobal a -> Printf.sprintf "store.g %d" a
  | MakeRefGlobal (b, l) -> Printf.sprintf "ref.g %d:%d" b l
  | MakeRefLocal (o, l) -> Printf.sprintf "ref.l %d:%d" o l
  | LoadIndex -> "load.ix"
  | StoreIndex -> "store.ix"
  | Binop op -> Format.asprintf "bin %a" Minic.Ast.pp_binop op
  | Unop op -> Format.asprintf "un %a" Minic.Ast.pp_unop op
  | Jmp t -> Printf.sprintf "jmp %d" t
  | Br { target; kind; cid } ->
      Printf.sprintf "brz[%s,c%d] %d" (kind_to_string kind) cid target
  | Call fid -> Printf.sprintf "call f%d" fid
  | Ret -> "ret"
  | Pop -> "pop"
  | Dup2 -> "dup2"
  | Print -> "print"
  | Halt -> "halt"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_predicate = function
  | Br { kind = BrIf | BrLoop; _ } -> true
  | _ -> false

let is_control = function
  | Jmp _ | Br _ | Call _ | Ret | Halt -> true
  | _ -> false
