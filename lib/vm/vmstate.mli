(** The VM runtime core shared by both execution engines: mutable machine
    state, the unboxed value representation (int payload + one-byte tag),
    operand-stack and memory primitives, and the operator evaluators.

    {!Machine} (the reference switch interpreter) and {!Lower} (the
    closure-threaded engine) both execute on this state with these
    primitives, which is what makes them differentially testable down to
    the individual metric counter. User code should go through
    {!Machine.run} / {!Machine.run_hooked}; this interface exists for the
    engines and for white-box tests. *)

exception Trap of string * int
(** Runtime error (division by zero, out-of-bounds index, stack overflow,
    fuel exhausted) with the offending pc. Re-exported as
    {!Machine.Trap}. *)

exception Halted of int
(** Internal: raised by [Halt] to unwind the engine loop. *)

type metrics = {
  reads : int;
  writes : int;
  calls : int;
  branches : int;
  frames_released : int;
  max_call_depth : int;
  mem_high_water : int;
}

type result = {
  exit_value : int;
  instructions : int;
  output : int list;
  metrics : metrics;
}

(** {2 Value representation} *)

val tag_int : char
val tag_ref : char

val pack_ref : int -> int -> int
(** [pack_ref base len] — an array reference as a single int. *)

val ref_base : int -> int
val ref_len : int -> int

(** {2 Machine state} *)

type state = {
  prog : Program.t;
  mutable mem : int array;
  mutable mem_tag : Bytes.t;
  mutable stack : int array;
  mutable stack_tag : Bytes.t;
  mutable sp : int;
  mutable frame_base : int;
  mutable stack_top : int;
  mutable call_ret : int array;
  mutable call_base : int array;
  mutable call_fid : int array;
  mutable depth : int;
  max_depth : int;
  mutable out : int list;
  mutable instructions : int;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_calls : int;
  mutable n_branches : int;
  mutable n_frames_released : int;
  mutable depth_hwm : int;
  mutable mem_hwm : int;
}

val create : ?max_depth:int -> Program.t -> state
(** Fresh state with globals laid out and initialized ([max_depth]
    defaults to 10_000). *)

val finish : state -> int -> result
(** Assemble the public result from the final state and exit value. *)

(** {2 Primitives (identical across engines)} *)

val trap : state -> int -> ('a, unit, string, 'b) format4 -> 'a
val ensure_mem : state -> int -> unit
val push : state -> int -> char -> unit

val pop_slot : state -> int -> int
(** Pops a slot and returns its index; the caller reads value and tag
    from the (still valid) popped position. *)

val pop_int : state -> int -> int
val pop_ref : state -> int -> int
val eval_binop : state -> int -> Minic.Ast.binop -> int -> int -> int
val eval_unop : Minic.Ast.unop -> int -> int

val grow_call_records : state -> unit
(** Doubles the call-record arrays (cold path of [Call]). *)
