(** The bytecode interpreter — public entry points for both execution
    engines.

    Three engines share the same semantics (differentially tested in
    test/test_engines.ml):

    - {!Threaded} (the default): the closure-threaded engine in {!Lower}.
      The program is pre-lowered once into a flat array of closures with
      hook configuration, per-pc metadata and superinstruction fusion
      baked in; the hot loop does zero per-step decoding.
    - {!Switch}: the reference interpreter — one [match] per executed
      instruction. Slower, but structurally close to the operational
      semantics; kept as the baseline every threaded-engine change is
      checked against.
    - {!Register}: the register-IR backend in [Ir.Exec] — stack bytecode
      compiled to three-address code over allocated registers. It lives
      in a library above this one, so selecting it here raises; dispatch
      through [Ir.Engine.run] / [Ir.Engine.run_hooked], which accept all
      three engines.

    Both produce identical results, metrics, hook-event streams and trap
    behavior; {!run} is the plain interpreter (the "native" baseline of
    Table III), {!run_hooked} additionally drives a {!Hooks.t} — the
    substrate on which Alchemist's profiler runs. *)

exception Trap of string * int
(** Runtime error (division by zero, out-of-bounds index, stack overflow,
    fuel exhausted) with the offending pc. *)

type metrics = Vmstate.metrics = {
  reads : int;  (** load instructions executed (locals, globals, indexed) *)
  writes : int;  (** store instructions executed *)
  calls : int;
  branches : int;
  frames_released : int;
  max_call_depth : int;
  mem_high_water : int;  (** peak [stack_top]: live memory words *)
}
(** Execution telemetry counted unconditionally in the interpreter loop
    (plain int increments — no allocation, no observable slowdown). The
    profiler republishes these through its [Obs] registry. *)

type result = Vmstate.result = {
  exit_value : int;  (** return value of [main] *)
  instructions : int;  (** retired instruction count — the clock *)
  output : int list;  (** values printed, in order *)
  metrics : metrics;
}

type engine = Switch | Threaded | Register

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

val switch_resume :
  hooked:bool ->
  ?trace_locals:bool ->
  ?prune:bool array ->
  Hooks.t ->
  fuel:int ->
  Vmstate.state ->
  Program.t ->
  pc:int ->
  int
(** Continues the reference switch loop from an existing machine state at
    [pc] and runs to completion, returning [main]'s exit value. This is
    the register backend's deoptimization path: when fuel would expire
    inside a tick segment, [Ir.Exec] materializes the architectural state
    (operand stack, frame slots) and hands off here so the "out of fuel"
    trap — or any nearer trap — fires at exactly the reference pc.
    @raise Trap as {!run}. *)

val exec :
  ?engine:engine ->
  hooked:bool ->
  ?trace_locals:bool ->
  ?prune:bool array ->
  Hooks.t ->
  ?fuel:int ->
  ?max_depth:int ->
  Program.t ->
  result
(** Generalized entry point behind {!run} / {!run_hooked}; exported for
    [Ir.Engine], which layers the register backend on top.
    @raise Invalid_argument when [engine] is {!Register} — that engine
    is dispatched by [Ir.Engine], not here. *)

val run : ?engine:engine -> ?fuel:int -> ?max_depth:int -> Program.t -> result
(** Executes the program. [engine] selects the execution engine (default
    {!Threaded}), [fuel] bounds the number of executed instructions
    (default: unlimited), [max_depth] the call depth (default 10_000).
    @raise Trap on runtime errors. *)

val run_hooked :
  ?engine:engine ->
  ?trace_locals:bool ->
  ?prune:bool array ->
  ?fuel:int ->
  ?max_depth:int ->
  Hooks.t ->
  Program.t ->
  result
(** Same as {!run}, firing instrumentation callbacks. Both engines emit
    the exact same event stream (pcs, addresses, ordering) and the same
    instruction-count clock — superinstruction fusion in the threaded
    engine is event-transparent.

    [trace_locals] (default [true]) controls whether scalar frame slots
    generate memory events. Mini-C never takes the address of a scalar
    local, so an optimizing C compiler would keep them in registers — the
    binaries the paper profiled do not exhibit stack traffic for them.
    The profiler passes [false] to match that; pass [true] to model an
    unoptimized (-O0) binary (see the ablation bench).

    [prune] is a per-pc mask of memory-event pcs whose [on_read]/[on_write]
    hooks are skipped (all other hooks and the VM metrics counters still
    fire) — the static pruning oracle ({!Static.Depend.prune_mask})
    guarantees the skipped events cannot change the resulting profile.
    Both engines honor the mask identically: the switch engine tests it
    per event, the threaded engine specializes it away at lowering time.
    Ignored when locals are traced — the mask only models the default
    event set. *)
