(** Bytecode instruction set.

    Mini-C compiles to a stack machine over a single flat code array, so a
    program counter (pc) uniquely identifies a static instruction — pcs are
    the "program points" that dependence edges connect, and instruction
    retirement count is the paper's timestamp.

    Memory model: one flat integer address space. Globals live at the
    bottom; every function activation bump-allocates a fresh block for its
    locals (paper's stack, but with per-activation shadow invalidation so
    address reuse cannot manufacture false dependences). Operand-stack
    slots are registers: they never generate memory events. *)

type branch_kind =
  | BrIf  (** [if]/[else] predicate — starts a conditional construct *)
  | BrLoop  (** loop predicate — each evaluation starts a new iteration *)
  | BrSc  (** short-circuit [&&]/[||] — not a profiled construct *)

type t =
  | Const of int  (** push literal *)
  | LoadLocal of int  (** push frame slot; memory read *)
  | StoreLocal of int  (** pop into frame slot; memory write *)
  | LoadGlobal of int  (** push global at address; memory read *)
  | StoreGlobal of int  (** pop into global address; memory write *)
  | MakeRefGlobal of int * int  (** [base, len]: push reference *)
  | MakeRefLocal of int * int  (** [offset, len]: push frame-based ref *)
  | LoadIndex  (** pop index, pop ref; push element; memory read *)
  | StoreIndex  (** pop value, pop index, pop ref; memory write *)
  | Binop of Minic.Ast.binop  (** arithmetic only, never [LogAnd]/[LogOr] *)
  | Unop of Minic.Ast.unop
  | Jmp of int
  | Br of { target : int; kind : branch_kind; cid : int }
      (** pop; jump to [target] if zero. [cid] is the static construct id
          for [BrIf]/[BrLoop] predicates, [-1] for [BrSc]. *)
  | Call of int  (** function id; pops the arguments *)
  | Ret  (** pop return value, release frame, push value at caller *)
  | Pop  (** discard top of operand stack *)
  | Dup2  (** duplicate the top two stack slots (for [a[i] op= e]) *)
  | Print  (** pop and record on the output channel *)
  | Halt

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_predicate : t -> bool
(** [true] for [Br] with kind [BrIf] or [BrLoop]. *)

val is_control : t -> bool
(** [true] for instructions that transfer control ([Jmp], [Br], [Call],
    [Ret], [Halt]). The superinstruction pass ({!Lower}) only fuses
    windows whose interior is control-free. *)
