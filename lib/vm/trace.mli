(** Whole-execution event traces (the ParaMeter-style alternative the
    paper contrasts itself with in §V: "Alchemist is a profiler that does
    not record the whole trace").

    {!record} captures every instrumentation event of a run into a
    compact integer buffer; {!replay} feeds them back into any
    {!Hooks.t}, so the full profiling stack can run offline from a
    recording. The point of carrying both paths is the ablation: trace
    size grows linearly with execution length, while Alchemist's online
    index tree stays within the Theorem 1 bound — and the offline replay
    produces bit-identical profiles (differentially tested). *)

type t

val record :
  ?trace_locals:bool -> ?fuel:int -> Program.t -> t * Machine.result
(** Execute and capture all events. *)

val replay : t -> Hooks.t -> unit
(** Drive the hooks with the recorded events, in order. *)

val events : t -> int
(** Number of recorded events. *)

val words : t -> int
(** Buffer footprint in machine words — the memory a whole-trace profiler
    pays, to contrast with the construct pool's bounded footprint. *)

val result : t -> Machine.result
(** The traced execution's outcome. *)

val traced_locals : t -> bool
(** Whether the recording ran with [trace_locals] (the -O0 stack-traffic
    model) — consumers that model only the default event set (the static
    verdict layer) check this before trusting the replayed stream. *)
